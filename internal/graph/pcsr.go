package graph

import (
	"runtime"
	"sort"
	"sync"

	"graphalytics/internal/telemetry"
)

// Parallel CSR construction: the multi-worker counterpart of buildCSRW.
//
// The pipeline is the textbook parallel counting sort, kept bit-exact
// with the sequential builder:
//
//  1. the arc array is split into one contiguous chunk per worker and
//     each worker builds a private degree histogram;
//  2. the histograms are merged into the global prefix-sum index, and
//     in the same pass each worker's histogram is turned into its
//     exclusive within-vertex offset, giving every (worker, vertex)
//     pair a disjoint scatter region;
//  3. workers scatter their chunk's arcs (and weights) into the shared
//     edge array without synchronization — regions never overlap;
//  4. vertices are partitioned into arc-balanced ranges and each range
//     worker sorts its adjacency lists by (target, weight), exactly the
//     sequential comparator;
//  5. with dedup, each range worker compacts duplicates in place and a
//     final parallel pass copies the surviving prefix of every vertex
//     into freshly sized arrays.
//
// Scatter order differs from the sequential builder, but the per-vertex
// sort normalizes it (equal keys are identical values), and dedup keeps
// the first entry of each equal-target run — the smallest weight, same
// as the sequential path — so index/edges/weights come out byte-identical.

// parallelArcThreshold is the arc count below which buildCSRWP falls
// back to the sequential builder: fan-out overhead dominates under it.
// A var so tests can force the parallel path onto tiny graphs.
var parallelArcThreshold = 1 << 15

// buildWorkers resolves a worker-count option: <= 0 means GOMAXPROCS.
func buildWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// buildCSRWP is buildCSRW executed by a worker pool. workers <= 0 uses
// GOMAXPROCS; workers == 1, tiny inputs, and inputs too large for the
// int32 scatter offsets take the sequential path unchanged.
func buildCSRWP(n int, srcs, dsts []VertexID, ws []float64, dedup bool, workers int) ([]int64, []VertexID, []float64) {
	workers = buildWorkers(workers)
	if m := len(srcs); workers > m/(parallelArcThreshold/4+1) {
		workers = m / (parallelArcThreshold/4 + 1)
	}
	if workers <= 1 || n == 0 || len(srcs) < parallelArcThreshold || int64(len(srcs)) >= 1<<31 {
		return buildCSRW(n, srcs, dsts, ws, dedup)
	}
	m := len(srcs)

	hsp := telemetry.StartSpan("ingest", "csr-histogram")
	hsp.SetAttr("arcs", m)
	hsp.SetAttr("workers", workers)
	// 1. Per-worker degree histograms over contiguous arc chunks.
	// int32 is enough: a within-vertex offset is bounded by the arc
	// count, which the gate above keeps under 1<<31.
	counts := make([][]int32, workers)
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		counts[w] = make([]int32, n)
		lo, hi := w*chunk, min((w+1)*chunk, m)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(hist []int32, part []VertexID) {
			defer wg.Done()
			for _, s := range part {
				hist[s]++
			}
		}(counts[w], srcs[lo:hi])
	}
	wg.Wait()

	// 2. Merge histograms into the prefix-sum index, then rewrite each
	// histogram into the worker's exclusive within-vertex offset.
	index := make([]int64, n+1)
	vchunk := (n + workers - 1) / workers
	forEachVertexChunk := func(fn func(lo, hi int)) {
		for w := 0; w < workers; w++ {
			lo, hi := w*vchunk, min((w+1)*vchunk, n)
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	forEachVertexChunk(func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var t int64
			for w := 0; w < workers; w++ {
				t += int64(counts[w][v])
			}
			index[v+1] = t
		}
	})
	for v := 0; v < n; v++ {
		index[v+1] += index[v]
	}
	forEachVertexChunk(func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var run int32
			for w := 0; w < workers; w++ {
				c := counts[w][v]
				counts[w][v] = run
				run += c
			}
		}
	})

	hsp.End()

	// 3. Parallel scatter: worker w owns [index[v]+off, …) per vertex.
	ssp := telemetry.StartSpan("ingest", "csr-scatter")
	edges := make([]VertexID, m)
	var weights []float64
	if ws != nil {
		weights = make([]float64, m)
	}
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, m)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(off []int32, srcs, dsts []VertexID, wsPart []float64) {
			defer wg.Done()
			for i, s := range srcs {
				at := index[s] + int64(off[s])
				off[s]++
				edges[at] = dsts[i]
				if weights != nil {
					weights[at] = wsPart[i]
				}
			}
		}(counts[w], srcs[lo:hi], dsts[lo:hi], wsSlice(ws, lo, hi))
	}
	wg.Wait()
	ssp.End()

	// 4. Per-vertex adjacency sort over arc-balanced vertex ranges.
	sosp := telemetry.StartSpan("ingest", "csr-sort")
	ranges := balancedVertexRanges(index, n, workers)
	for _, r := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				s, e := index[v], index[v+1]
				adj := edges[s:e]
				if weights == nil {
					sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
					continue
				}
				sort.Sort(&edgeWeightSort{adj: adj, ws: weights[s:e]})
			}
		}(r[0], r[1])
	}
	wg.Wait()
	sosp.End()
	if !dedup {
		return index, edges, weights
	}

	dsp := telemetry.StartSpan("ingest", "csr-dedup")
	defer dsp.End()
	// 5. Parallel dedup: compact each adjacency in place recording the
	// surviving degree, prefix-sum the new index, then copy survivors
	// into exactly sized arrays. (In-place global compaction would let
	// one range's writes overrun its neighbor's reads.)
	newDeg := make([]int32, n)
	for _, r := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				s, e := index[v], index[v+1]
				k := s
				var last VertexID
				first := true
				for i := s; i < e; i++ {
					u := edges[i]
					if first || u != last {
						edges[k] = u
						if weights != nil {
							weights[k] = weights[i]
						}
						k++
						last = u
						first = false
					}
				}
				newDeg[v] = int32(k - s)
			}
		}(r[0], r[1])
	}
	wg.Wait()
	newIndex := make([]int64, n+1)
	for v := 0; v < n; v++ {
		newIndex[v+1] = newIndex[v] + int64(newDeg[v])
	}
	kept := newIndex[n]
	outEdges := make([]VertexID, kept)
	var outWeights []float64
	if weights != nil {
		outWeights = make([]float64, kept)
	}
	for _, r := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				s, d, deg := index[v], newIndex[v], int64(newDeg[v])
				copy(outEdges[d:d+deg], edges[s:s+deg])
				if weights != nil {
					copy(outWeights[d:d+deg], weights[s:s+deg])
				}
			}
		}(r[0], r[1])
	}
	wg.Wait()
	return newIndex, outEdges, outWeights
}

// wsSlice slices a possibly-nil weight array.
func wsSlice(ws []float64, lo, hi int) []float64 {
	if ws == nil {
		return nil
	}
	return ws[lo:hi]
}

// balancedVertexRanges partitions [0, n) into up to parts contiguous
// ranges of roughly equal arc mass (by the CSR index), so adjacency
// sort/dedup work divides evenly even on skewed degree distributions.
func balancedVertexRanges(index []int64, n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, 0, parts)
	start := 0
	for p := 1; p <= parts && start < n; p++ {
		end := n
		if p < parts {
			target := index[n] * int64(p) / int64(parts)
			end = sort.Search(n, func(v int) bool { return index[v] >= target })
		}
		if end <= start {
			continue
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}
