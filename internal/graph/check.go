package graph

import "fmt"

// Validate checks the graph's structural invariants and returns the
// first violation found (nil if the graph is well formed). It is meant
// for loaders, fuzzing harnesses, and tests:
//
//   - index arrays are monotone and sized n+1;
//   - adjacency lists are sorted and in range;
//   - undirected graphs are symmetric (u ∈ adj(v) ⇔ v ∈ adj(u));
//   - directed graphs with reverse adjacency have matching in/out arcs;
//   - the label table, when present, has one entry per vertex with no
//     duplicates.
func (g *Graph) Validate() error {
	n := g.n
	if len(g.outIndex) != n+1 {
		return fmt.Errorf("graph: outIndex has %d entries, want %d", len(g.outIndex), n+1)
	}
	if g.outIndex[0] != 0 {
		return fmt.Errorf("graph: outIndex[0] = %d, want 0", g.outIndex[0])
	}
	for v := 0; v < n; v++ {
		if g.outIndex[v+1] < g.outIndex[v] {
			return fmt.Errorf("graph: outIndex not monotone at %d", v)
		}
	}
	if g.outIndex[n] != int64(len(g.outEdges)) {
		return fmt.Errorf("graph: outIndex[n] = %d, edges = %d", g.outIndex[n], len(g.outEdges))
	}
	for v := 0; v < n; v++ {
		adj := g.OutNeighbors(VertexID(v))
		for i, u := range adj {
			if int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-neighbor %d >= n", v, u)
			}
			if i > 0 && adj[i-1] > u {
				return fmt.Errorf("graph: adjacency of %d not sorted at %d", v, i)
			}
		}
	}
	if !g.directed {
		var err error
		g.Arcs(func(u, v VertexID) {
			if err == nil && !g.HasArc(v, u) {
				err = fmt.Errorf("graph: undirected graph missing reverse arc (%d,%d)", v, u)
			}
		})
		if err != nil {
			return err
		}
	} else if g.inIndex != nil {
		if len(g.inIndex) != n+1 {
			return fmt.Errorf("graph: inIndex has %d entries, want %d", len(g.inIndex), n+1)
		}
		if g.inIndex[n] != int64(len(g.inEdges)) {
			return fmt.Errorf("graph: inIndex[n] = %d, in-edges = %d", g.inIndex[n], len(g.inEdges))
		}
		var outArcs, inArcs int64
		outArcs = int64(len(g.outEdges))
		inArcs = int64(len(g.inEdges))
		if outArcs != inArcs {
			return fmt.Errorf("graph: %d out-arcs vs %d in-arcs", outArcs, inArcs)
		}
		// Spot-check arc consistency: every in-arc must exist forward.
		var err error
		for v := 0; v < n && err == nil; v++ {
			for _, u := range g.InNeighbors(VertexID(v)) {
				if !g.HasArc(u, VertexID(v)) {
					err = fmt.Errorf("graph: in-arc (%d<-%d) has no forward arc", v, u)
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	if g.labels != nil {
		if len(g.labels) != n {
			return fmt.Errorf("graph: %d labels for %d vertices", len(g.labels), n)
		}
		seen := make(map[int64]VertexID, n)
		for v, l := range g.labels {
			if prev, dup := seen[l]; dup {
				return fmt.Errorf("graph: label %d used by vertices %d and %d", l, prev, v)
			}
			seen[l] = VertexID(v)
		}
	}
	return nil
}
