package graph

import (
	"testing"
	"testing/quick"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	for _, g := range []*Graph{
		randomTestGraph(50, 200, 1, true),
		randomTestGraph(50, 200, 2, false),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
	// With labels.
	b := NewBuilder(Directed(false))
	b.AddEdge(10, 20)
	b.AddEdge(20, 30)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("labeled graph: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph { return randomTestGraph(30, 120, 3, true) }

	g := fresh()
	g.outEdges[0] = VertexID(g.n + 5) // out of range
	if err := g.Validate(); err == nil {
		t.Error("out-of-range neighbor accepted")
	}

	g = fresh()
	adj := g.OutNeighbors(0)
	if len(adj) >= 2 {
		adj[0], adj[1] = adj[1], adj[0] // break sortedness
		if err := g.Validate(); err == nil {
			t.Error("unsorted adjacency accepted")
		}
	}

	g = fresh()
	g.outIndex[1] = g.outIndex[2] + 1 // break monotonicity
	if err := g.Validate(); err == nil {
		t.Error("non-monotone index accepted")
	}

	g = fresh()
	g.labels = make([]int64, g.n)
	for i := range g.labels {
		g.labels[i] = 7 // duplicate labels
	}
	if err := g.Validate(); err == nil {
		t.Error("duplicate labels accepted")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	// Hand-build a broken "undirected" graph with a one-way arc.
	g := &Graph{directed: false, n: 2}
	g.outIndex = []int64{0, 1, 1}
	g.outEdges = []VertexID{1}
	g.inIndex, g.inEdges = g.outIndex, g.outEdges
	if err := g.Validate(); err == nil {
		t.Error("asymmetric undirected graph accepted")
	}
}

// Property: everything the generators and transforms produce validates.
func TestQuickGeneratedGraphsValidate(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		g := randomTestGraph(40, 160, seed, directed)
		if g.Validate() != nil {
			return false
		}
		if Undirect(g).Validate() != nil {
			return false
		}
		perm := RandomOrder(g, uint64(seed)+1)
		return Remap(g, perm).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
