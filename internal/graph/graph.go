// Package graph provides the core in-memory graph representation used by
// every component of the Graphalytics reproduction: a compressed sparse
// row (CSR) structure with optional reverse adjacency, dense internal
// vertex IDs, and an external label mapping.
//
// Design notes:
//
//   - Vertex IDs are dense uint32 indices in [0, NumVertices). External
//     (file-level) identifiers are kept in an optional label table so that
//     graphs loaded from arbitrary edge lists round-trip exactly.
//   - Adjacency lists are always sorted ascending. Sortedness is relied
//     upon by triangle counting, deterministic algorithm specifications,
//     and merge-based set operations throughout the repository.
//   - Undirected graphs are stored symmetrized: each undirected edge
//     appears as two arcs. NumEdges reports logical edges (arcs/2 for
//     undirected graphs), while NumArcs reports stored arcs.
package graph

import (
	"fmt"
)

// VertexID is a dense internal vertex index in [0, NumVertices).
type VertexID uint32

// NoVertex is a sentinel meaning "no vertex" (e.g. unreachable BFS parent).
const NoVertex = VertexID(^uint32(0))

// Graph is an immutable CSR graph. Construct one with a Builder or one of
// the loader/generator functions; a zero Graph is an empty graph.
type Graph struct {
	name     string
	directed bool

	n int // number of vertices

	outIndex []int64 // len n+1; outEdges[outIndex[v]:outIndex[v+1]] sorted
	outEdges []VertexID

	// Reverse adjacency. For undirected graphs these alias the out arrays.
	inIndex []int64
	inEdges []VertexID

	// Optional per-arc weights, parallel to outEdges/inEdges. nil means
	// the graph is unweighted (algorithms treat every arc as weight 1).
	// For undirected graphs inWeights aliases outWeights.
	outWeights []float64
	inWeights  []float64

	// labels maps internal ID -> external ID. nil means identity.
	labels []int64
}

// Name returns the human-readable dataset name ("" if unset).
func (g *Graph) Name() string { return g.name }

// SetName sets the dataset name used in reports.
func (g *Graph) SetName(name string) { g.name = name }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumArcs returns the number of stored arcs (directed edges). For an
// undirected graph this is twice NumEdges.
func (g *Graph) NumArcs() int64 { return int64(len(g.outEdges)) }

// NumEdges returns the number of logical edges: arcs for a directed
// graph, arcs/2 for an undirected (symmetrized) graph.
func (g *Graph) NumEdges() int64 {
	if g.directed {
		return int64(len(g.outEdges))
	}
	return int64(len(g.outEdges)) / 2
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outIndex[v+1] - g.outIndex[v])
}

// InDegree returns the in-degree of v. For undirected graphs it equals
// OutDegree. It panics if the graph was built without reverse adjacency.
func (g *Graph) InDegree(v VertexID) int {
	if g.inIndex == nil {
		panic("graph: InDegree on a graph built without reverse adjacency")
	}
	return int(g.inIndex[v+1] - g.inIndex[v])
}

// HasReverse reports whether reverse (in-) adjacency is available.
func (g *Graph) HasReverse() bool { return g.inIndex != nil }

// Weighted reports whether the graph carries per-arc weights.
func (g *Graph) Weighted() bool { return g.outWeights != nil }

// OutWeights returns the weights parallel to OutNeighbors(v), or nil if
// the graph is unweighted. The returned slice aliases internal storage
// and must not be modified.
func (g *Graph) OutWeights(v VertexID) []float64 {
	if g.outWeights == nil {
		return nil
	}
	return g.outWeights[g.outIndex[v]:g.outIndex[v+1]]
}

// InWeights returns the weights parallel to InNeighbors(v), or nil if
// the graph is unweighted. It panics if the graph was built without
// reverse adjacency.
func (g *Graph) InWeights(v VertexID) []float64 {
	if g.inWeights == nil {
		return nil
	}
	if g.inIndex == nil {
		panic("graph: InWeights on a graph built without reverse adjacency")
	}
	return g.inWeights[g.inIndex[v]:g.inIndex[v+1]]
}

// WeightAt reads index i of a weight slice returned by OutWeights /
// InWeights, treating a nil slice (unweighted graph) as unit weights.
func WeightAt(ws []float64, i int) float64 {
	if ws == nil {
		return 1
	}
	return ws[i]
}

// OutNeighbors returns the sorted out-neighbors of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outEdges[g.outIndex[v]:g.outIndex[v+1]]
}

// InNeighbors returns the sorted in-neighbors of v. The returned slice
// aliases internal storage and must not be modified. It panics if the
// graph was built without reverse adjacency.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if g.inIndex == nil {
		panic("graph: InNeighbors on a graph built without reverse adjacency")
	}
	return g.inEdges[g.inIndex[v]:g.inIndex[v+1]]
}

// Neighborhood appends the sorted union of in- and out-neighbors of v
// (excluding v itself) to buf and returns it. For undirected graphs this
// is just the adjacency list minus self-loops. The union is the
// neighborhood used by the local clustering coefficient specification.
func (g *Graph) Neighborhood(v VertexID, buf []VertexID) []VertexID {
	out := g.OutNeighbors(v)
	if !g.directed || g.inIndex == nil {
		for _, u := range out {
			if u != v && (len(buf) == 0 || buf[len(buf)-1] != u) {
				buf = append(buf, u)
			}
		}
		return buf
	}
	in := g.InNeighbors(v)
	i, j := 0, 0
	last := NoVertex
	appendOne := func(u VertexID) {
		if u != v && u != last {
			buf = append(buf, u)
			last = u
		}
	}
	for i < len(out) && j < len(in) {
		switch {
		case out[i] < in[j]:
			appendOne(out[i])
			i++
		case out[i] > in[j]:
			appendOne(in[j])
			j++
		default:
			appendOne(out[i])
			i++
			j++
		}
	}
	for ; i < len(out); i++ {
		appendOne(out[i])
	}
	for ; j < len(in); j++ {
		appendOne(in[j])
	}
	return buf
}

// HasArc reports whether the arc u->v exists, by binary search over the
// sorted adjacency of u.
func (g *Graph) HasArc(u, v VertexID) bool {
	adj := g.OutNeighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// Label returns the external identifier of internal vertex v.
func (g *Graph) Label(v VertexID) int64 {
	if g.labels == nil {
		return int64(v)
	}
	return g.labels[v]
}

// Labels returns the external label table (nil means identity mapping).
// The returned slice must not be modified.
func (g *Graph) Labels() []int64 { return g.labels }

// MaxDegree returns the maximum out-degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.OutDegree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// Arcs calls fn for every stored arc (u, v). Iteration order is by source
// vertex, then ascending target.
func (g *Graph) Arcs(fn func(u, v VertexID)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			fn(VertexID(u), v)
		}
	}
}

// Edges calls fn once per logical edge. For undirected graphs each edge
// {u,v} is reported once with u <= v; for directed graphs it is the same
// as Arcs.
func (g *Graph) Edges(fn func(u, v VertexID)) {
	if g.directed {
		g.Arcs(fn)
		return
	}
	g.Arcs(func(u, v VertexID) {
		if u <= v {
			fn(u, v)
		}
	})
}

// ArcsW calls fn for every stored arc with its weight (1 for unweighted
// graphs). Iteration order matches Arcs.
func (g *Graph) ArcsW(fn func(u, v VertexID, w float64)) {
	for u := 0; u < g.n; u++ {
		adj := g.OutNeighbors(VertexID(u))
		ws := g.OutWeights(VertexID(u))
		for i, v := range adj {
			fn(VertexID(u), v, WeightAt(ws, i))
		}
	}
}

// EdgesW calls fn once per logical edge with its weight (1 for
// unweighted graphs). Edge order matches Edges.
func (g *Graph) EdgesW(fn func(u, v VertexID, w float64)) {
	if g.directed {
		g.ArcsW(fn)
		return
	}
	g.ArcsW(func(u, v VertexID, w float64) {
		if u <= v {
			fn(u, v, w)
		}
	})
}

// MemoryFootprint returns an estimate of the heap bytes held by the
// graph's CSR arrays. Used by the System Monitor and platform memory
// budgets.
func (g *Graph) MemoryFootprint() int64 {
	b := int64(len(g.outIndex))*8 + int64(len(g.outEdges))*4
	if g.inIndex != nil && g.directed {
		b += int64(len(g.inIndex))*8 + int64(len(g.inEdges))*4
	}
	if g.outWeights != nil {
		b += int64(len(g.outWeights)) * 8
		if g.directed && g.inWeights != nil {
			b += int64(len(g.inWeights)) * 8
		}
	}
	if g.labels != nil {
		b += int64(len(g.labels)) * 8
	}
	return b
}

// String returns a short description like "patents (directed, 3774768 vertices, 16518948 edges)".
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	if g.outWeights != nil {
		kind += ", weighted"
	}
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s (%s, %d vertices, %d edges)", name, kind, g.n, g.NumEdges())
}
