package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Round-trip and rejection tests for the weighted edge-list (.e third
// column) and binary (GALB bit3) formats.

func buildWeighted(t *testing.T, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(Directed(directed), Dedup(), WithReverse(), WithName("wtest"))
	b.AddEdgeWeighted(10, 20, 0.5)
	b.AddEdgeWeighted(20, 30, 2.25)
	b.AddEdgeWeighted(30, 10, 1)
	b.AddEdgeWeighted(10, 30, 0.125)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameWeightedGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size mismatch: got %v, want %v", got, want)
	}
	if got.Weighted() != want.Weighted() {
		t.Fatalf("Weighted() = %v, want %v", got.Weighted(), want.Weighted())
	}
	type arc struct {
		u, v int64
		w    float64
	}
	collect := func(g *Graph) []arc {
		var out []arc
		g.ArcsW(func(u, v VertexID, w float64) {
			out = append(out, arc{g.Label(u), g.Label(v), w})
		})
		return out
	}
	ga, wa := collect(got), collect(want)
	if len(ga) != len(wa) {
		t.Fatalf("arcs: got %d, want %d", len(ga), len(wa))
	}
	gm := map[arc]bool{}
	for _, a := range ga {
		gm[a] = true
	}
	for _, a := range wa {
		if !gm[a] {
			t.Fatalf("missing arc %+v after round-trip", a)
		}
	}
}

func TestWeightedEdgeListRoundTrip(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := buildWeighted(t, directed)
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "0.5") {
			t.Fatalf("weighted edge list missing weights:\n%s", buf.String())
		}
		back, err := ReadGraph(strings.NewReader(buf.String()), nil, LoadOptions{Directed: directed, Name: "wtest"})
		if err != nil {
			t.Fatal(err)
		}
		if !back.Weighted() {
			t.Fatal("round-tripped graph lost its weights")
		}
		sameWeightedGraph(t, back, g)
	}
}

func TestUnweightedEdgeListStaysUnweighted(t *testing.T) {
	back, err := ReadGraph(strings.NewReader("0 1\n1 2\n"), nil, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Weighted() {
		t.Error("unweighted .e file produced a weighted graph")
	}
	if ws := back.OutWeights(0); ws != nil {
		t.Errorf("OutWeights on unweighted graph = %v, want nil", ws)
	}
	if w := WeightAt(nil, 3); w != 1 {
		t.Errorf("WeightAt(nil) = %v, want unit weight", w)
	}
}

func TestMixedAndMalformedWeightColumns(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"mixed-weighted-first", "0 1 0.5\n1 2\n", "no weight"},
		{"mixed-unweighted-first", "0 1\n1 2 0.5\n", "weight column"},
		{"malformed-weight", "0 1 banana\n", "bad edge weight"},
		{"negative-weight", "0 1 -2\n", "non-negative"},
		{"nan-weight", "0 1 NaN\n", "non-negative"},
		{"inf-weight", "0 1 +Inf\n", "non-negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadGraph(strings.NewReader(c.data), nil, LoadOptions{})
			if err == nil {
				t.Fatalf("%q loaded without error", c.data)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Errorf("error %q does not carry a line number", err)
			}
		})
	}
}

func TestWeightedBinaryRoundTrip(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := buildWeighted(t, directed)
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Weighted() {
			t.Fatal("binary round-trip lost weights")
		}
		sameWeightedGraph(t, back, g)
		if directed && back.HasReverse() {
			// The rebuilt reverse adjacency carries weights too.
			if back.InWeights(back.InNeighbors(0)[0]) == nil {
				t.Error("reverse adjacency rebuilt without weights")
			}
		}
	}
}

func TestWeightedBinaryTruncatedWeights(t *testing.T) {
	g := buildWeighted(t, true)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-20] // chop into the weights block
	if _, err := ReadBinary(bytes.NewReader(cut)); err == nil {
		t.Error("truncated weight block accepted")
	}
}

func TestWeightedBuilderSemantics(t *testing.T) {
	// Mixing unweighted and weighted adds: earlier unweighted edges get
	// unit weights.
	b := NewBuilder(Directed(true))
	b.AddEdgeID(0, 1)
	b.AddEdgeIDWeighted(1, 2, 3.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("mixed adds should produce a weighted graph")
	}
	if w := g.OutWeights(0)[0]; w != 1 {
		t.Errorf("backfilled weight = %v, want 1", w)
	}
	if w := g.OutWeights(1)[0]; w != 3.5 {
		t.Errorf("weight = %v, want 3.5", w)
	}

	// Duplicate arcs deduplicate to the smallest weight regardless of
	// insertion order.
	b2 := NewBuilder(Directed(true), Dedup())
	b2.AddEdgeIDWeighted(0, 1, 5)
	b2.AddEdgeIDWeighted(0, 1, 2)
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g2.OutDegree(0) != 1 || g2.OutWeights(0)[0] != 2 {
		t.Errorf("dedup kept weight %v (deg %d), want smallest (2)", g2.OutWeights(0), g2.OutDegree(0))
	}

	// Undirected graphs symmetrize the weight.
	b3 := NewBuilder(Directed(false))
	b3.AddEdgeWeighted(0, 1, 0.75)
	g3, err := b3.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g3.OutWeights(0)[0] != 0.75 || g3.OutWeights(1)[0] != 0.75 {
		t.Errorf("symmetrized weights = %v / %v, want 0.75 both ways",
			g3.OutWeights(0), g3.OutWeights(1))
	}
}

func TestSaveFilesWeightedRoundTrip(t *testing.T) {
	g := buildWeighted(t, false)
	prefix := t.TempDir() + "/w"
	if err := g.SaveFiles(prefix); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeList(prefix+".e", prefix+".v", LoadOptions{Name: "wtest"})
	if err != nil {
		t.Fatal(err)
	}
	sameWeightedGraph(t, back, g)
}
