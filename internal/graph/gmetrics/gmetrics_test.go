package gmetrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphalytics/internal/graph"
)

func buildUndirected(t *testing.T, edges [][2]int64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Directed(false), graph.DropSelfLoops())
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestTriangleGraph(t *testing.T) {
	g := buildUndirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 0}})
	c := Measure(g)
	if c.Vertices != 3 || c.Edges != 3 {
		t.Fatalf("size = %d/%d", c.Vertices, c.Edges)
	}
	if math.Abs(c.GlobalCC-1) > 1e-12 {
		t.Errorf("GlobalCC = %v, want 1", c.GlobalCC)
	}
	if math.Abs(c.AvgCC-1) > 1e-12 {
		t.Errorf("AvgCC = %v, want 1", c.AvgCC)
	}
}

func TestPathGraphNoTriangles(t *testing.T) {
	g := buildUndirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 3}})
	c := Measure(g)
	if c.GlobalCC != 0 || c.AvgCC != 0 {
		t.Errorf("path graph CC = %v/%v, want 0/0", c.GlobalCC, c.AvgCC)
	}
}

// A "kite": triangle 0-1-2 plus pendant 2-3. Known closed-form values.
func TestKiteGraph(t *testing.T) {
	g := buildUndirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	c := Measure(g)
	// Wedges: deg0=2:1, deg1=2:1, deg2=3:3, deg3=1:0 => 5 wedges, 1 triangle.
	want := 3.0 * 1.0 / 5.0
	if math.Abs(c.GlobalCC-want) > 1e-12 {
		t.Errorf("GlobalCC = %v, want %v", c.GlobalCC, want)
	}
	// LCC: v0=1, v1=1, v2=1/3, v3=0 (degree<2) => avg = (1+1+1/3+0)/4
	wantAvg := (1 + 1 + 1.0/3.0) / 4
	if math.Abs(c.AvgCC-wantAvg) > 1e-12 {
		t.Errorf("AvgCC = %v, want %v", c.AvgCC, wantAvg)
	}
}

func TestCompleteGraphCC(t *testing.T) {
	var edges [][2]int64
	n := int64(7)
	for i := int64(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int64{i, j})
		}
	}
	g := buildUndirected(t, edges)
	c := Measure(g)
	if math.Abs(c.GlobalCC-1) > 1e-12 || math.Abs(c.AvgCC-1) > 1e-12 {
		t.Errorf("K7 CC = %v/%v, want 1/1", c.GlobalCC, c.AvgCC)
	}
}

func TestAssortativityStar(t *testing.T) {
	// Star graphs are maximally disassortative: r should be negative
	// (-1 exactly for a star in the limit; with 5 leaves, exactly -1).
	g := buildUndirected(t, [][2]int64{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	r := Assortativity(g)
	if math.Abs(r-(-1)) > 1e-9 {
		t.Errorf("star assortativity = %v, want -1", r)
	}
}

func TestAssortativityRegularGraphDegenerate(t *testing.T) {
	// Cycle: all degrees equal -> zero variance -> defined as 0.
	g := buildUndirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if r := Assortativity(g); r != 0 {
		t.Errorf("cycle assortativity = %v, want 0", r)
	}
}

func TestAssortativityRange(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := graph.NewBuilder(graph.Directed(false), graph.DropSelfLoops())
	for i := 0; i < 500; i++ {
		b.AddEdge(int64(r.Intn(100)), int64(r.Intn(100)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Assortativity(g)
	if a < -1 || a > 1 || math.IsNaN(a) {
		t.Errorf("assortativity out of range: %v", a)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildUndirected(t, [][2]int64{{0, 1}, {0, 2}, {0, 3}})
	h := DegreeHistogram(g)
	if h[3] != 1 || h[1] != 3 {
		t.Errorf("histogram = %v, want {3:1, 1:3}", h)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(g.NumVertices()) {
		t.Errorf("histogram total = %d, want %d", total, g.NumVertices())
	}
}

func TestDirectedGraphMeasuredOnUndirectedView(t *testing.T) {
	// Directed triangle: 0->1->2->0. Undirected view is a triangle.
	b := graph.NewBuilder(graph.Directed(true), graph.WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 2)
	b.AddEdgeID(2, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := Measure(g)
	if math.Abs(c.GlobalCC-1) > 1e-12 {
		t.Errorf("GlobalCC = %v, want 1 (undirected view)", c.GlobalCC)
	}
	if c.Edges != 3 {
		t.Errorf("Edges = %d, want 3", c.Edges)
	}
}

// Property: 0 <= AvgCC, GlobalCC <= 1 on arbitrary graphs, and triangle
// totals agree between per-vertex counts and transitivity arithmetic.
func TestQuickCCRanges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(graph.Directed(false), graph.DropSelfLoops())
		n := 30
		b.SetNumVertices(n)
		for i := 0; i < 120; i++ {
			b.AddEdgeID(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		c := Measure(g)
		return c.GlobalCC >= 0 && c.GlobalCC <= 1+1e-12 &&
			c.AvgCC >= 0 && c.AvgCC <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle counts are invariant under vertex relabeling.
func TestQuickTrianglesPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(graph.Directed(false), graph.DropSelfLoops())
		n := 25
		b.SetNumVertices(n)
		for i := 0; i < 90; i++ {
			b.AddEdgeID(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		perm := graph.RandomOrder(g, uint64(seed)*3+1)
		g2 := graph.Remap(g, perm)
		return sum(TriangleCounts(g)) == sum(TriangleCounts(g2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
