// Package gmetrics computes the structural graph characteristics reported
// in Table 1 of the Graphalytics paper: vertex/edge counts, global
// clustering coefficient (transitivity), average local clustering
// coefficient, and degree assortativity, plus degree histograms used by
// the degree-distribution fitting experiment (§2.2).
//
// All metrics are defined on the undirected simple view of the graph,
// matching how the paper characterizes the SNAP datasets.
package gmetrics

import (
	"math"
	"runtime"
	"sync"

	"graphalytics/internal/graph"
)

// Characteristics mirrors one row of Table 1.
type Characteristics struct {
	Name          string  // dataset name
	Vertices      int     // |V|
	Edges         int64   // |E| (undirected)
	GlobalCC      float64 // transitivity: 3*triangles / wedges
	AvgCC         float64 // mean local clustering coefficient
	Assortativity float64 // degree Pearson correlation over edges
}

// Measure computes all Table 1 characteristics of g. Directed graphs are
// measured on their undirected simple view.
func Measure(g *graph.Graph) Characteristics {
	u := graph.Undirect(g)
	tri := TriangleCounts(u)
	var triangles, wedges float64
	var sumLCC float64
	for v := 0; v < u.NumVertices(); v++ {
		d := float64(u.OutDegree(graph.VertexID(v)))
		t := float64(tri[v])
		triangles += t
		w := d * (d - 1) / 2
		wedges += w
		if w > 0 {
			sumLCC += t / w
		}
	}
	triangles /= 3 // each triangle counted at all three corners
	c := Characteristics{
		Name:          g.Name(),
		Vertices:      u.NumVertices(),
		Edges:         u.NumEdges(),
		Assortativity: Assortativity(u),
	}
	if wedges > 0 {
		c.GlobalCC = 3 * triangles / wedges
	}
	if u.NumVertices() > 0 {
		c.AvgCC = sumLCC / float64(u.NumVertices())
	}
	return c
}

// TriangleCounts returns, for each vertex of an undirected graph, the
// number of triangles it participates in. Computed in parallel with
// sorted-adjacency intersection.
func TriangleCounts(g *graph.Graph) []int64 {
	n := g.NumVertices()
	counts := make([]int64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				adj := g.OutNeighbors(graph.VertexID(v))
				var t int64
				for _, u := range adj {
					if u == graph.VertexID(v) {
						continue
					}
					t += intersectCount(adj, g.OutNeighbors(u), graph.VertexID(v), u)
				}
				counts[v] = t / 2 // each triangle at v found via both other corners
			}
		}(lo, hi)
	}
	wg.Wait()
	return counts
}

// intersectCount counts common elements of two sorted lists, skipping the
// vertices a and b themselves (excludes self-loops from triangles).
func intersectCount(x, y []graph.VertexID, a, b graph.VertexID) int64 {
	var c int64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			if x[i] != a && x[i] != b {
				c++
			}
			i++
			j++
		}
	}
	return c
}

// GlobalCC returns the transitivity (3×triangles/wedges) of the
// undirected view of g.
func GlobalCC(g *graph.Graph) float64 { return Measure(g).GlobalCC }

// AverageLocalCC returns the mean local clustering coefficient of the
// undirected view of g.
func AverageLocalCC(g *graph.Graph) float64 { return Measure(g).AvgCC }

// Assortativity returns the degree assortativity coefficient: the
// Pearson correlation of the degrees at the two endpoints of each edge
// (both orientations), on an undirected graph. Returns 0 for degenerate
// graphs (no edges or zero degree variance).
func Assortativity(g *graph.Graph) float64 {
	u := graph.Undirect(g)
	var m float64
	var sumX, sumY, sumXY, sumX2, sumY2 float64
	u.Arcs(func(a, b graph.VertexID) {
		dx := float64(u.OutDegree(a))
		dy := float64(u.OutDegree(b))
		sumX += dx
		sumY += dy
		sumXY += dx * dy
		sumX2 += dx * dx
		sumY2 += dy * dy
		m++
	})
	if m == 0 {
		return 0
	}
	num := sumXY/m - (sumX/m)*(sumY/m)
	den := math.Sqrt(sumX2/m-(sumX/m)*(sumX/m)) * math.Sqrt(sumY2/m-(sumY/m)*(sumY/m))
	if den == 0 {
		return 0
	}
	return num / den
}

// DegreeHistogram returns a map degree -> number of vertices with that
// degree (out-degree of the undirected view; isolated vertices counted at
// degree 0).
func DegreeHistogram(g *graph.Graph) map[int]int64 {
	u := graph.Undirect(g)
	h := make(map[int]int64)
	for v := 0; v < u.NumVertices(); v++ {
		h[u.OutDegree(graph.VertexID(v))]++
	}
	return h
}

// Degrees returns the degree of every vertex of the undirected view.
func Degrees(g *graph.Graph) []int {
	u := graph.Undirect(g)
	d := make([]int, u.NumVertices())
	for v := range d {
		d[v] = u.OutDegree(graph.VertexID(v))
	}
	return d
}
