package graph

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTripBinary(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() || a.Directed() != b.Directed() {
		t.Fatalf("shape differs: %v vs %v", a, b)
	}
	if a.Name() != b.Name() {
		t.Fatalf("name differs: %q vs %q", a.Name(), b.Name())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if !reflect.DeepEqual(a.OutNeighbors(VertexID(v)), b.OutNeighbors(VertexID(v))) {
			t.Fatalf("adjacency of %d differs", v)
		}
		if a.Label(VertexID(v)) != b.Label(VertexID(v)) {
			t.Fatalf("label of %d differs", v)
		}
	}
}

func TestBinaryRoundTripDirected(t *testing.T) {
	g := randomTestGraph(200, 900, 3, true)
	g.SetName("bin-directed")
	back := roundTripBinary(t, g)
	assertSameGraph(t, g, back)
	if !back.HasReverse() {
		t.Error("reverse adjacency not rebuilt")
	}
	if !reflect.DeepEqual(back.InNeighbors(5), g.InNeighbors(5)) {
		t.Error("reverse adjacency differs")
	}
}

func TestBinaryRoundTripUndirected(t *testing.T) {
	g := randomTestGraph(150, 500, 5, false)
	g.SetName("bin-undirected")
	back := roundTripBinary(t, g)
	assertSameGraph(t, g, back)
	if back.Directed() {
		t.Error("directedness lost")
	}
}

func TestBinaryRoundTripLabels(t *testing.T) {
	b := NewBuilder(Directed(false), WithName("labeled"))
	b.AddEdge(1000, -5)
	b.AddEdge(-5, 99)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	back := roundTripBinary(t, g)
	assertSameGraph(t, g, back)
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := randomTestGraph(100, 300, 7, true)
	path := filepath.Join(t.TempDir(), "g.galb")
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, back)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("GALB\x02\x00\x00"),               // bad version
		[]byte("GALB\x01\x00\x00\x05\x00"),       // degree sum mismatch
		append([]byte("GALB\x01\x00\x00"), 0xff), // truncated varints
	}
	for i, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Degree-sum mismatch specifically returns ErrBadFormat.
	var buf bytes.Buffer
	buf.WriteString("GALB")
	buf.WriteByte(1)
	buf.WriteByte(0)
	buf.WriteByte(0) // name len 0
	buf.WriteByte(2) // n = 2
	buf.WriteByte(9) // arcs = 9 (will not match degrees)
	buf.WriteByte(1) // deg(0) = 1
	buf.WriteByte(1) // deg(1) = 1
	if _, err := ReadBinary(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("degree mismatch err = %v", err)
	}
}

func TestBinaryCompactness(t *testing.T) {
	// The binary form should be several times smaller than the text form
	// for a realistic graph.
	g := randomTestGraph(1000, 8000, 9, false)
	var bin, txt bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Errorf("binary %d bytes !< text %d bytes", bin.Len(), txt.Len())
	}
}

// Property: binary round trip is the identity on arbitrary graphs.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		g := randomTestGraph(60, 240, seed, directed)
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumArcs() != g.NumArcs() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			if !reflect.DeepEqual(back.OutNeighbors(VertexID(v)), g.OutNeighbors(VertexID(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
