package graph

import (
	"bytes"
	"fmt"
	"log/slog"
	"slices"
	"sync"
	"time"

	"graphalytics/internal/telemetry"
)

// Parallel text ingest (the .v/.e loader's multi-worker path):
//
//  1. the file is split into newline-aligned byte chunks, one per
//     worker, and each chunk is parsed independently into external-ID
//     arc arrays (weights included once the chunk sees its first edge
//     line);
//  2. chunk outcomes are reconciled in file order: the first decided
//     chunk fixes the file-level weighted/unweighted mode, later
//     chunks that disagree fail at their first edge line, and the
//     first error in file order wins — so a malformed line reports
//     the same line number no matter how many workers parsed the file
//     (each chunk counts its lines; prefix sums recover absolute
//     numbers);
//  3. external IDs densify either through the two-pass dense-ID fast
//     path (a .v file froze the interning table, workers do read-only
//     lookups, the rare unlisted endpoint is interned in a sequential
//     file-order fixup) or through the sharded interner (below);
//  4. the dense arc arrays feed Builder.AddEdges / BuildParallel.
//
// The sharded interner preserves the sequential loader's
// first-occurrence label order without a global lock: each chunk
// worker tags every locally-new external ID with its global endpoint
// position (2*arc+side, i.e. "src before dst"), buckets it by ID hash;
// each shard worker merges its buckets in chunk order keeping the
// smallest position per ID; the positions — unique by construction —
// are sorted once, and an ID's dense vertex number is the rank of its
// first position. That is exactly the order the sequential map-based
// interner assigns.

// vertexFileError marks an ingest error as originating in the .v file
// so LoadEdgeList can qualify it with the right path.
type vertexFileError struct{ err error }

func (e *vertexFileError) Error() string { return e.err.Error() }
func (e *vertexFileError) Unwrap() error { return e.err }

// ingest runs the parallel load pipeline into b and builds the graph.
// vdata is only consulted when haveVerts is true.
func ingest(b *Builder, edata, vdata []byte, haveVerts bool, workers int) (*Graph, error) {
	start := time.Now()
	if haveVerts {
		sp := telemetry.StartSpan("ingest", "parse-vertices")
		sp.SetAttr("bytes", len(vdata))
		err := ingestVertices(b, vdata, workers)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	parseStart := time.Now()
	if err := ingestEdges(b, edata, workers); err != nil {
		return nil, err
	}
	parseDur := time.Since(parseStart)
	sp := telemetry.StartSpan("ingest", "build-csr")
	sp.SetAttr("workers", workers)
	buildStart := time.Now()
	g, err := b.BuildParallel(workers)
	sp.End()
	if err != nil {
		return nil, err
	}
	slog.Debug("graph: ingest complete",
		"vertices", g.NumVertices(), "edges", g.NumEdges(), "workers", workers,
		"bytes", len(edata)+len(vdata),
		"parse", parseDur, "build", time.Since(buildStart), "total", time.Since(start))
	return g, nil
}

// splitLines splits data into up to parts newline-aligned chunks of
// roughly equal byte size. Every chunk but the last ends just past a
// '\n'; concatenating the chunks reproduces data exactly.
func splitLines(data []byte, parts int) [][]byte {
	if parts < 1 {
		parts = 1
	}
	var out [][]byte
	start := 0
	for p := 1; p < parts && start < len(data); p++ {
		target := len(data) * p / parts
		if target <= start {
			continue
		}
		nl := bytes.IndexByte(data[target:], '\n')
		if nl < 0 {
			break
		}
		out = append(out, data[start:target+nl+1])
		start = target + nl + 1
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// countLines counts text lines the way the sequential reader does: one
// per newline, plus a final unterminated line.
func countLines(data []byte) int {
	n := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

// runWorkers invokes fn(0..n-1) on n goroutines and waits.
func runWorkers(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// ---------------------------------------------------------------------
// Vertex files.

type vertexChunk struct {
	ids     []int64
	lines   int
	err     error // bare error; "line %d: " is prefixed at reconcile
	errLine int
}

// ingestVertices parses .v chunks in parallel and interns the IDs
// sequentially in file order (the interning table must reproduce the
// file's first-occurrence order exactly).
func ingestVertices(b *Builder, vdata []byte, workers int) error {
	chunks := splitLines(vdata, workers)
	results := make([]vertexChunk, len(chunks))
	runWorkers(len(chunks), func(i int) {
		results[i] = parseVertexChunk(chunks[i])
	})
	lineBase := 0
	for _, r := range results {
		if r.err != nil {
			return &vertexFileError{fmt.Errorf("line %d: %w", lineBase+r.errLine, r.err)}
		}
		for _, id := range r.ids {
			b.AddVertex(id)
		}
		lineBase += r.lines
	}
	return nil
}

func parseVertexChunk(data []byte) vertexChunk {
	var c vertexChunk
	for len(data) > 0 {
		var raw []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			raw, data = data[:nl], data[nl+1:]
		} else {
			raw, data = data, nil
		}
		c.lines++
		id, isData, err := parseVertexLine(raw)
		if err != nil {
			c.err, c.errLine = err, c.lines
			c.lines += countLines(data)
			break
		}
		if isData {
			c.ids = append(c.ids, id)
		}
	}
	return c
}

// ---------------------------------------------------------------------
// Edge files.

type edgeChunk struct {
	lines      int
	srcs, dsts []int64
	ws         []float64 // non-nil iff the chunk decided weighted
	decided    bool
	weighted   bool
	firstLine  int    // relative line of the first edge line
	firstText  []byte // trimmed first edge line, for mismatch errors
	err        error  // bare error; "line %d: " is prefixed at reconcile
	errLine    int
}

func (c *edgeChunk) fail(err error, line int, rest []byte) {
	c.err, c.errLine = err, line
	c.lines += countLines(rest)
}

func parseEdgeChunk(data []byte) edgeChunk {
	var c edgeChunk
	for len(data) > 0 {
		var raw []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			raw, data = data[:nl], data[nl+1:]
		} else {
			raw, data = data, nil
		}
		c.lines++
		l, err := splitEdgeLine(raw)
		if err != nil {
			c.fail(err, c.lines, data)
			break
		}
		if !l.data {
			continue
		}
		if !c.decided {
			c.decided, c.weighted = true, l.weightField != nil
			c.firstLine, c.firstText = c.lines, l.text
		}
		if l.weightField == nil {
			if c.weighted {
				c.fail(fmt.Errorf("edge %q has no weight but earlier edges are weighted", l.text), c.lines, data)
				break
			}
		} else {
			if !c.weighted {
				c.fail(fmt.Errorf("edge %q has a weight column but earlier edges do not", l.text), c.lines, data)
				break
			}
			w, werr := l.weight()
			if werr != nil {
				c.fail(werr, c.lines, data)
				break
			}
			c.ws = append(c.ws, w)
		}
		c.srcs = append(c.srcs, l.src)
		c.dsts = append(c.dsts, l.dst)
	}
	return c
}

// ingestEdges parses .e chunks in parallel, reconciles the chunk
// outcomes in file order, densifies the external IDs, and hands the
// arc arrays to the builder.
func ingestEdges(b *Builder, edata []byte, workers int) error {
	psp := telemetry.StartSpan("ingest", "parse-edges")
	psp.SetAttr("bytes", len(edata))
	psp.SetAttr("workers", workers)
	chunks := splitLines(edata, workers)
	results := make([]edgeChunk, len(chunks))
	runWorkers(len(chunks), func(i int) {
		results[i] = parseEdgeChunk(chunks[i])
	})
	psp.End()

	// File-order reconciliation: the first decided chunk fixes the
	// weighted mode; a disagreeing chunk fails at its first edge line
	// (before any internal error it may also hold, which is what the
	// sequential reader would hit first); otherwise the first internal
	// error wins. Line numbers translate through per-chunk line counts.
	var decided, weighted bool
	lineBase := 0
	total := 0
	offsets := make([]int, len(results))
	for i := range results {
		r := &results[i]
		if r.decided {
			switch {
			case !decided:
				decided, weighted = true, r.weighted
			case r.weighted != weighted:
				if weighted {
					return fmt.Errorf("line %d: edge %q has no weight but earlier edges are weighted", lineBase+r.firstLine, r.firstText)
				}
				return fmt.Errorf("line %d: edge %q has a weight column but earlier edges do not", lineBase+r.firstLine, r.firstText)
			}
		}
		if r.err != nil {
			return fmt.Errorf("line %d: %w", lineBase+r.errLine, r.err)
		}
		lineBase += r.lines
		offsets[i] = total
		total += len(r.srcs)
	}

	srcs := make([]VertexID, total)
	dsts := make([]VertexID, total)
	var ws []float64
	if weighted {
		ws = make([]float64, total)
		runWorkers(len(results), func(i int) {
			copy(ws[offsets[i]:], results[i].ws)
		})
	}
	isp := telemetry.StartSpan("ingest", "intern")
	isp.SetAttr("arcs", total)
	if b.useLabels {
		// The builder is in label mode (a .v file interned vertices):
		// resolve against the frozen table and install the dense
		// arrays directly.
		isp.SetAttr("mode", "frozen")
		internFrozen(b, results, offsets, srcs, dsts)
		b.srcs, b.dsts, b.weights = srcs, dsts, ws
		b.hasEdges = total > 0
		isp.End()
		return nil
	}
	isp.SetAttr("mode", "sharded")
	b.SetLabels(internSharded(results, offsets, srcs, dsts, workers))
	isp.End()
	b.AddEdges(srcs, dsts, ws)
	return nil
}

// internFrozen is the two-pass dense-ID fast path used when a .v file
// populated the interning table: workers resolve endpoints against the
// frozen table concurrently, and endpoints missing from it (edges
// naming vertices the .v file omitted) are interned afterwards in
// file order, exactly as the sequential loader would.
func internFrozen(b *Builder, results []edgeChunk, offsets []int, srcs, dsts []VertexID) {
	misses := make([][]int, len(results))
	runWorkers(len(results), func(i int) {
		r := &results[i]
		base := offsets[i]
		m := b.ext2int
		for j := range r.srcs {
			if id, ok := m[r.srcs[j]]; ok {
				srcs[base+j] = id
			} else {
				misses[i] = append(misses[i], 2*j)
			}
			if id, ok := m[r.dsts[j]]; ok {
				dsts[base+j] = id
			} else {
				misses[i] = append(misses[i], 2*j+1)
			}
		}
	})
	for i := range results {
		r := &results[i]
		for _, p := range misses[i] {
			j := p / 2
			if p%2 == 0 {
				srcs[offsets[i]+j] = b.intern(r.srcs[j])
			} else {
				dsts[offsets[i]+j] = b.intern(r.dsts[j])
			}
		}
	}
}

// shardPending is one locally-new external ID tagged with its global
// first-occurrence endpoint position within the chunk.
type shardPending struct {
	ext int64
	pos int64
}

func shardOf(ext int64, shards int) int {
	x := uint64(ext) * 0x9E3779B97F4A7C15
	x ^= x >> 32
	return int(x % uint64(shards))
}

// internSharded densifies external IDs with per-shard maps while
// reproducing the sequential first-occurrence order (see the package
// comment at the top of this file). It fills srcs/dsts and returns the
// label table.
func internSharded(results []edgeChunk, offsets []int, srcs, dsts []VertexID, workers int) []int64 {
	shards := workers
	// Phase 1: per-chunk local dedup, bucketed by shard. Positions are
	// 2*arc+side so src interns before dst, like the sequential loader.
	buckets := make([][][]shardPending, len(results))
	runWorkers(len(results), func(i int) {
		r := &results[i]
		seen := make(map[int64]struct{}, 1024)
		bk := make([][]shardPending, shards)
		base := 2 * int64(offsets[i])
		note := func(ext int64, pos int64) {
			if _, ok := seen[ext]; ok {
				return
			}
			seen[ext] = struct{}{}
			s := shardOf(ext, shards)
			bk[s] = append(bk[s], shardPending{ext: ext, pos: pos})
		}
		for j := range r.srcs {
			note(r.srcs[j], base+2*int64(j))
			note(r.dsts[j], base+2*int64(j)+1)
		}
		buckets[i] = bk
	})

	// Phase 2: per-shard merge in chunk order keeps the smallest
	// (first-in-file) position per external ID.
	shardMaps := make([]map[int64]int64, shards)
	runWorkers(shards, func(s int) {
		m := make(map[int64]int64)
		for i := range buckets {
			for _, p := range buckets[i][s] {
				if _, ok := m[p.ext]; !ok {
					m[p.ext] = p.pos
				}
			}
		}
		shardMaps[s] = m
	})

	// Phase 3: sort the (unique) first positions once; an ID's dense
	// number is the rank of its first position. Shard maps are
	// rewritten in place from position to dense ID.
	nv := 0
	for _, m := range shardMaps {
		nv += len(m)
	}
	positions := make([]int64, 0, nv)
	for _, m := range shardMaps {
		for _, pos := range m {
			positions = append(positions, pos)
		}
	}
	slices.Sort(positions)
	labels := make([]int64, nv)
	runWorkers(shards, func(s int) {
		for ext, pos := range shardMaps[s] {
			rank, _ := slices.BinarySearch(positions, pos)
			labels[rank] = ext
			shardMaps[s][ext] = int64(rank)
		}
	})

	// Phase 4: map the external arc arrays to dense IDs.
	runWorkers(len(results), func(i int) {
		r := &results[i]
		base := offsets[i]
		for j := range r.srcs {
			srcs[base+j] = VertexID(shardMaps[shardOf(r.srcs[j], shards)][r.srcs[j]])
			dsts[base+j] = VertexID(shardMaps[shardOf(r.dsts[j], shards)][r.dsts[j]])
		}
	})
	return labels
}
