package graph

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// The acceptance oracle of the parallel builder: buildCSRWP must
// produce byte-identical index/edges/weights arrays to buildCSRW for
// every worker count, on every input shape.

func randomArcs(t *testing.T, n, m int, seed int64, weighted bool) ([]VertexID, []VertexID, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	srcs := make([]VertexID, m)
	dsts := make([]VertexID, m)
	var ws []float64
	if weighted {
		ws = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		srcs[i] = VertexID(r.Intn(n))
		dsts[i] = VertexID(r.Intn(n))
		if weighted {
			// Coarse weights so duplicate (target, weight) pairs occur.
			ws[i] = float64(r.Intn(8)) / 4
		}
	}
	return srcs, dsts, ws
}

func csrIdentical(t *testing.T, label string, wantIdx []int64, wantE []VertexID, wantW []float64,
	gotIdx []int64, gotE []VertexID, gotW []float64) {
	t.Helper()
	if !slices.Equal(wantIdx, gotIdx) {
		t.Fatalf("%s: index arrays differ", label)
	}
	if !slices.Equal(wantE, gotE) {
		t.Fatalf("%s: edge arrays differ", label)
	}
	if !slices.Equal(wantW, gotW) {
		t.Fatalf("%s: weight arrays differ", label)
	}
}

func TestParallelCSRMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		n, m     int
		weighted bool
		dedup    bool
	}{
		{"unweighted", 700, 50000, false, false},
		{"unweighted-dedup", 700, 50000, false, true},
		{"weighted", 500, 50000, true, false},
		{"weighted-dedup", 300, 50000, true, true},
		{"dense-dup-heavy", 40, 40000, true, true},
		{"sparse", 20000, 40000, false, true},
	}
	for _, c := range cases {
		for _, workers := range []int{2, 3, 7, 16} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				srcs, dsts, ws := randomArcs(t, c.n, c.m, int64(c.n+c.m+workers), c.weighted)
				wi, we, ww := buildCSRW(c.n, slices.Clone(srcs), slices.Clone(dsts), slices.Clone(ws), c.dedup)
				gi, ge, gw := buildCSRWP(c.n, srcs, dsts, ws, c.dedup, workers)
				csrIdentical(t, c.name, wi, we, ww, gi, ge, gw)
			})
		}
	}
}

// TestParallelCSRSmallShapes forces the parallel path onto inputs below
// the fan-out threshold to exercise its edge shapes: hub vertices,
// empty adjacencies, all-duplicate arcs.
func TestParallelCSRSmallShapes(t *testing.T) {
	old := parallelArcThreshold
	parallelArcThreshold = 0
	defer func() { parallelArcThreshold = old }()

	type arcs struct {
		srcs, dsts []VertexID
		ws         []float64
	}
	hub := arcs{}
	for i := 0; i < 200; i++ {
		hub.srcs = append(hub.srcs, 3)
		hub.dsts = append(hub.dsts, VertexID(i%5))
		hub.ws = append(hub.ws, float64(i%3))
	}
	cases := []struct {
		name  string
		n     int
		a     arcs
		dedup bool
	}{
		{"hub-vertex", 10, hub, true},
		{"no-arcs", 5, arcs{}, true},
		{"single-arc", 4, arcs{srcs: []VertexID{2}, dsts: []VertexID{0}, ws: []float64{1.5}}, false},
		{"all-duplicates", 3, arcs{
			srcs: []VertexID{1, 1, 1, 1},
			dsts: []VertexID{2, 2, 2, 2},
			ws:   []float64{4, 2, 3, 2},
		}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wi, we, ww := buildCSRW(c.n, slices.Clone(c.a.srcs), slices.Clone(c.a.dsts), slices.Clone(c.a.ws), c.dedup)
			gi, ge, gw := buildCSRWP(c.n, slices.Clone(c.a.srcs), slices.Clone(c.a.dsts), slices.Clone(c.a.ws), c.dedup, 4)
			csrIdentical(t, c.name, wi, we, ww, gi, ge, gw)
		})
	}
}

func TestBalancedVertexRanges(t *testing.T) {
	// A skewed index: vertex 0 owns nearly all arcs.
	index := []int64{0, 900, 910, 920, 930, 1000}
	ranges := balancedVertexRanges(index, 5, 3)
	// Ranges must cover [0, n) exactly, in order, without overlap.
	next := 0
	for _, r := range ranges {
		if r[0] != next || r[1] <= r[0] {
			t.Fatalf("bad range %v (expected start %d)", r, next)
		}
		next = r[1]
	}
	if next != 5 {
		t.Fatalf("ranges end at %d, want 5", next)
	}
}

func TestFromWeightedArcsWorkersMatchesSequential(t *testing.T) {
	for _, directed := range []bool{true, false} {
		srcs, dsts, ws := randomArcs(t, 400, 60000, 99, true)
		seq := FromWeightedArcs("seq", 400, slices.Clone(srcs), slices.Clone(dsts), slices.Clone(ws), directed)
		par := FromWeightedArcsWorkers("seq", 400, srcs, dsts, ws, directed, 8)
		if diff := graphDiff(seq, par); diff != "" {
			t.Fatalf("directed=%v: %s", directed, diff)
		}
	}
}

// graphDiff reports the first CSR-level difference between two graphs
// ("" when byte-identical).
func graphDiff(a, b *Graph) string {
	switch {
	case a.n != b.n:
		return fmt.Sprintf("vertex count %d != %d", a.n, b.n)
	case a.directed != b.directed:
		return "directedness differs"
	case !slices.Equal(a.labels, b.labels):
		return "label tables differ"
	case !slices.Equal(a.outIndex, b.outIndex):
		return "out index differs"
	case !slices.Equal(a.outEdges, b.outEdges):
		return "out edges differ"
	case !slices.Equal(a.outWeights, b.outWeights):
		return "out weights differ"
	case (a.inIndex == nil) != (b.inIndex == nil):
		return "reverse adjacency presence differs"
	case !slices.Equal(a.inIndex, b.inIndex):
		return "in index differs"
	case !slices.Equal(a.inEdges, b.inEdges):
		return "in edges differ"
	case !slices.Equal(a.inWeights, b.inWeights):
		return "in weights differ"
	}
	return ""
}
