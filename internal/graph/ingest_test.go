package graph

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// loadBoth loads the same in-memory .e/.v pair with the sequential and
// a parallel loader and requires identical outcomes: equal errors, or
// byte-identical graphs.
func loadBoth(t *testing.T, edata, vdata string, opts LoadOptions, workers int) (*Graph, *Graph) {
	t.Helper()
	read := func(w int) (*Graph, error) {
		o := opts
		o.Workers = w
		var verts *strings.Reader
		if vdata != "" {
			verts = strings.NewReader(vdata)
		}
		if verts == nil {
			return ReadGraph(strings.NewReader(edata), nil, o)
		}
		return ReadGraph(strings.NewReader(edata), verts, o)
	}
	seq, seqErr := read(1)
	par, parErr := read(workers)
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("workers=%d: sequential err %v, parallel err %v", workers, seqErr, parErr)
	}
	if seqErr != nil {
		if seqErr.Error() != parErr.Error() {
			t.Fatalf("workers=%d: error mismatch:\n  sequential: %v\n  parallel:   %v", workers, seqErr, parErr)
		}
		return nil, nil
	}
	if diff := graphDiff(seq, par); diff != "" {
		t.Fatalf("workers=%d: %s", workers, diff)
	}
	return seq, par
}

// randomEdgeText synthesizes an .e corpus with the loader's whole
// surface: sparse/negative external IDs, comments, CRLF endings, extra
// whitespace, duplicate edges, self loops, and (optionally) weights
// with trailing property columns.
func randomEdgeText(seed int64, lines int, weighted bool) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	id := func() int64 {
		switch r.Intn(4) {
		case 0:
			return int64(r.Intn(50)) // dense collisions
		case 1:
			return -int64(r.Intn(1000)) // negative IDs
		case 2:
			return int64(r.Intn(1_000_000_000)) * 1000 // sparse
		default:
			return int64(r.Intn(5000))
		}
	}
	for i := 0; i < lines; i++ {
		switch r.Intn(12) {
		case 0:
			b.WriteString("# comment line\n")
			continue
		case 1:
			b.WriteString("%% also a comment\n")
			continue
		case 2:
			b.WriteString("   \n")
			continue
		}
		u, v := id(), id()
		if r.Intn(20) == 0 {
			v = u // self loop
		}
		sep := " "
		if r.Intn(5) == 0 {
			sep = "\t"
		}
		b.WriteString(strconv.FormatInt(u, 10))
		b.WriteString(sep)
		b.WriteString(strconv.FormatInt(v, 10))
		if weighted {
			fmt.Fprintf(&b, " %g", float64(r.Intn(1000))/8)
			if r.Intn(6) == 0 {
				b.WriteString(" 1234567890") // trailing property column
			}
		}
		if r.Intn(7) == 0 {
			b.WriteString("\r")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func TestParallelLoadMatchesSequential(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		for _, directed := range []bool{false, true} {
			for _, workers := range []int{2, 3, 8} {
				name := fmt.Sprintf("weighted=%v/directed=%v/workers=%d", weighted, directed, workers)
				t.Run(name, func(t *testing.T) {
					edata := randomEdgeText(int64(workers), 3000, weighted)
					// Strip the trailing newline on some variants so the
					// final unterminated line is covered too.
					if workers%2 == 1 {
						edata = strings.TrimSuffix(edata, "\n")
					}
					g, _ := loadBoth(t, edata, "", LoadOptions{Directed: directed, Name: "rand"}, workers)
					if g.NumVertices() == 0 || g.NumEdges() == 0 {
						t.Fatal("degenerate corpus")
					}
				})
			}
		}
	}
}

func TestParallelLoadWithVertexFile(t *testing.T) {
	// The .v file fixes the interning table (two-pass dense-ID fast
	// path), including isolated vertices and property columns; one
	// edge endpoint is deliberately missing from it to exercise the
	// sequential miss fixup.
	var vb strings.Builder
	vb.WriteString("# ids with property columns\n")
	for i := 0; i < 900; i++ {
		fmt.Fprintf(&vb, "%d name-%d\n", i*7, i)
	}
	r := rand.New(rand.NewSource(7))
	var eb strings.Builder
	for i := 0; i < 2500; i++ {
		fmt.Fprintf(&eb, "%d %d 0.5\n", r.Intn(900)*7, r.Intn(900)*7)
	}
	eb.WriteString("123456789 0 2.25\n") // endpoint absent from the .v file
	for _, workers := range []int{2, 5, 8} {
		g, _ := loadBoth(t, eb.String(), vb.String(), LoadOptions{Directed: true, Name: "vfile"}, workers)
		if g.NumVertices() != 901 {
			t.Fatalf("vertices = %d, want 900 listed + 1 interned miss", g.NumVertices())
		}
		// The miss interns after every listed vertex, like the
		// sequential loader.
		if g.Label(VertexID(900)) != 123456789 {
			t.Fatalf("label[900] = %d, want the missing endpoint", g.Label(VertexID(900)))
		}
	}
}

func TestShardedInternFirstOccurrenceOrder(t *testing.T) {
	// Without a .v file, labels must densify in first-occurrence order
	// (src before dst, file order) — the sequential interner's order.
	edata := "500 7\n7 -3\n-3 500\n900 901\n"
	for _, workers := range []int{1, 2, 4, 8} {
		g, err := ReadGraph(strings.NewReader(edata), nil, LoadOptions{Directed: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{500, 7, -3, 900, 901}
		for i, w := range want {
			if g.Label(VertexID(i)) != w {
				t.Fatalf("workers=%d: label order %v, want %v at %d",
					workers, g.Labels(), w, i)
			}
		}
	}
}

// TestDeterministicParseErrors pins the satellite guarantee: a
// malformed line reports the same line number and message no matter
// how many workers parsed the file.
func TestDeterministicParseErrors(t *testing.T) {
	pad := func(lines int) string {
		var b strings.Builder
		for i := 0; i < lines; i++ {
			fmt.Fprintf(&b, "%d %d\n", i, i+1)
		}
		return b.String()
	}
	padW := func(lines int) string {
		var b strings.Builder
		for i := 0; i < lines; i++ {
			fmt.Fprintf(&b, "%d %d 1.5\n", i, i+1)
		}
		return b.String()
	}
	cases := []struct {
		name  string
		edata string
		want  string
	}{
		{"malformed-weight-mid-file", padW(1500) + "3 4 banana\n" + padW(40), "line 1501: bad edge weight \"banana\""},
		{"bad-edge-line", pad(700) + "oops\n" + pad(800), "line 701: bad edge line \"oops\""},
		{"weight-appears-late", pad(1200) + "5 6 2.5\n" + pad(100), "line 1201: edge \"5 6 2.5\" has a weight column but earlier edges do not"},
		{"weight-disappears-late", padW(990) + "8 9\n" + padW(500), "line 991: edge \"8 9\" has no weight but earlier edges are weighted"},
		{"negative-weight", padW(2000) + "1 2 -4\n", "line 2001: edge weight -4 must be finite and non-negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for workers := 1; workers <= 9; workers++ {
				_, err := ReadGraph(strings.NewReader(c.edata), nil, LoadOptions{Workers: workers})
				if err == nil {
					t.Fatalf("workers=%d: no error", workers)
				}
				if err.Error() != c.want {
					t.Fatalf("workers=%d: error %q, want %q", workers, err, c.want)
				}
			}
		})
	}
}

func TestDeterministicVertexFileErrors(t *testing.T) {
	var vb strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&vb, "%d\n", i)
	}
	vb.WriteString("notanid\n")
	for workers := 1; workers <= 6; workers++ {
		_, err := ReadGraph(strings.NewReader("0 1\n"), strings.NewReader(vb.String()),
			LoadOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		want := `line 1001: bad vertex id "notanid"`
		if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err, want)
		}
	}
}

// TestLoadEdgeListWrapsBuildError pins the satellite fix: builder
// errors surface path-qualified like every other load error.
func TestLoadEdgeListWrapsBuildError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.e")
	if err := os.WriteFile(path, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		_, err := LoadEdgeList(path, "", LoadOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: empty graph loaded", workers)
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("workers=%d: error %q not qualified with %q", workers, err, path)
		}
		if !strings.Contains(err.Error(), "empty graph") {
			t.Errorf("workers=%d: error %q does not surface the builder error", workers, err)
		}
	}
}

func TestLoadEdgeListParallelFiles(t *testing.T) {
	// End-to-end through real files: LoadEdgeList with and without a
	// .v file, sequential vs parallel, byte-identical.
	dir := t.TempDir()
	edata := randomEdgeText(42, 4000, true)
	epath := filepath.Join(dir, "g.e")
	if err := os.WriteFile(epath, []byte(edata), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, err := LoadEdgeList(epath, "", LoadOptions{Directed: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := LoadEdgeList(epath, "", LoadOptions{Directed: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if diff := graphDiff(seq, par); diff != "" {
		t.Fatal(diff)
	}
	// Vertex-file errors stay qualified with the vertex path.
	vpath := filepath.Join(dir, "g.v")
	if err := os.WriteFile(vpath, []byte("0\nbad\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadEdgeList(epath, vpath, LoadOptions{Workers: 8})
	if err == nil || !strings.Contains(err.Error(), vpath) {
		t.Fatalf("vertex error not qualified with the .v path: %v", err)
	}
}
