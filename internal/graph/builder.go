package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable CSR Graph.
//
// Edges may be added with arbitrary external int64 vertex identifiers;
// the builder densifies them to internal IDs. Use AddEdgeID to add edges
// that already use dense IDs (faster, no remapping).
//
// Edges may optionally carry float64 weights (AddEdgeWeighted /
// AddEdgeIDWeighted). The first weighted add switches the builder into
// weighted mode; unweighted adds before or after contribute weight 1.
// Duplicate arcs deduplicate to the smallest weight, which is
// deterministic regardless of input order.
//
// The zero Builder builds a directed graph; use NewBuilder to configure.
type Builder struct {
	directed   bool
	dedup      bool
	dropLoops  bool
	buildIn    bool
	name       string
	srcs, dsts []VertexID
	weights    []float64 // nil until the first weighted add
	ext2int    map[int64]VertexID
	labels     []int64
	maxID      VertexID
	hasEdges   bool
	useLabels  bool
}

// BuilderOption configures a Builder.
type BuilderOption func(*Builder)

// Directed sets whether the built graph is directed. Undirected graphs
// are stored symmetrized (each edge as two arcs).
func Directed(d bool) BuilderOption { return func(b *Builder) { b.directed = d } }

// Dedup removes duplicate arcs during Build.
func Dedup() BuilderOption { return func(b *Builder) { b.dedup = true } }

// DropSelfLoops removes self-loop arcs during Build.
func DropSelfLoops() BuilderOption { return func(b *Builder) { b.dropLoops = true } }

// WithReverse builds reverse (in-) adjacency for directed graphs.
// Undirected graphs always have reverse adjacency (aliasing the forward
// arrays) regardless of this option.
func WithReverse() BuilderOption { return func(b *Builder) { b.buildIn = true } }

// WithName sets the dataset name of the built graph.
func WithName(name string) BuilderOption { return func(b *Builder) { b.name = name } }

// NewBuilder returns a Builder with the given options applied.
func NewBuilder(opts ...BuilderOption) *Builder {
	b := &Builder{directed: true}
	for _, o := range opts {
		o(b)
	}
	return b
}

// AddEdge adds an edge between external vertex identifiers. The first
// call to AddEdge switches the builder into label mode; mixing AddEdge
// and AddEdgeID is not allowed.
func (b *Builder) AddEdge(src, dst int64) {
	if !b.useLabels {
		if b.hasEdges {
			panic("graph: mixing AddEdge and AddEdgeID")
		}
		b.useLabels = true
		b.ext2int = make(map[int64]VertexID)
	}
	b.hasEdges = true
	b.srcs = append(b.srcs, b.intern(src))
	b.dsts = append(b.dsts, b.intern(dst))
	if b.weights != nil {
		b.weights = append(b.weights, 1)
	}
}

// AddEdgeWeighted adds a weighted edge between external vertex
// identifiers. See AddEdge for the label-mode rules.
func (b *Builder) AddEdgeWeighted(src, dst int64, w float64) {
	b.materializeWeights()
	b.AddEdge(src, dst)
	b.weights[len(b.weights)-1] = w
}

// AddVertex registers an external vertex identifier even if it has no
// edges (needed to honor .v vertex files containing isolated vertices).
// Only valid in label mode (or before any AddEdgeID call).
func (b *Builder) AddVertex(id int64) {
	if b.hasEdges && !b.useLabels {
		panic("graph: AddVertex after AddEdgeID")
	}
	if b.ext2int == nil {
		b.ext2int = make(map[int64]VertexID)
	}
	b.useLabels = true
	b.intern(id)
}

func (b *Builder) intern(ext int64) VertexID {
	if id, ok := b.ext2int[ext]; ok {
		return id
	}
	id := VertexID(len(b.labels))
	b.ext2int[ext] = id
	b.labels = append(b.labels, ext)
	return id
}

// AddEdgeID adds an edge between dense internal IDs. The vertex count of
// the built graph is max ID + 1 unless SetNumVertices was called.
func (b *Builder) AddEdgeID(src, dst VertexID) {
	if b.useLabels {
		panic("graph: mixing AddEdgeID and AddEdge")
	}
	b.hasEdges = true
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	if b.weights != nil {
		b.weights = append(b.weights, 1)
	}
	if src > b.maxID {
		b.maxID = src
	}
	if dst > b.maxID {
		b.maxID = dst
	}
}

// AddEdgeIDWeighted adds a weighted edge between dense internal IDs.
func (b *Builder) AddEdgeIDWeighted(src, dst VertexID, w float64) {
	b.materializeWeights()
	b.AddEdgeID(src, dst)
	b.weights[len(b.weights)-1] = w
}

// AddEdges appends a batch of dense-ID arcs in one call — the shard
// feed of the parallel ingest pipeline, and the fast path for
// generators that already hold whole arc arrays. ws is optional
// per-arc weights: nil adds unweighted arcs (unit weights if the
// builder is already weighted); non-nil must be parallel to srcs. On a
// builder with no buffered edges the slices are adopted, not copied,
// so callers must not reuse them. ID mode only.
func (b *Builder) AddEdges(srcs, dsts []VertexID, ws []float64) {
	if b.useLabels {
		panic("graph: AddEdges is only valid in ID mode")
	}
	if len(srcs) != len(dsts) || (ws != nil && len(ws) != len(srcs)) {
		panic("graph: AddEdges slice length mismatch")
	}
	if len(srcs) == 0 {
		return
	}
	if ws != nil {
		b.materializeWeights()
	}
	if b.srcs == nil {
		b.srcs, b.dsts = srcs, dsts
		if ws != nil {
			b.weights = ws
		} else if b.weights != nil {
			// Weighted mode was entered with zero edges buffered;
			// credit the batch with unit weights.
			b.weights = make([]float64, len(srcs))
			for i := range b.weights {
				b.weights[i] = 1
			}
		}
	} else {
		b.srcs = append(b.srcs, srcs...)
		b.dsts = append(b.dsts, dsts...)
		if ws != nil {
			b.weights = append(b.weights, ws...)
		} else if b.weights != nil {
			for range srcs {
				b.weights = append(b.weights, 1)
			}
		}
	}
	b.hasEdges = true
	for _, v := range srcs {
		if v > b.maxID {
			b.maxID = v
		}
	}
	for _, v := range dsts {
		if v > b.maxID {
			b.maxID = v
		}
	}
}

// SetLabels installs an externally built label table for a graph
// assembled in ID mode: internal vertex v gets external label
// labels[v], and the vertex count becomes len(labels). The parallel
// loader's sharded interner uses this to hand its densification to the
// builder. The builder takes ownership of the slice. Panics in label
// mode (AddEdge/AddVertex interning owns the table there).
func (b *Builder) SetLabels(labels []int64) {
	if b.useLabels {
		panic("graph: SetLabels after AddEdge/AddVertex")
	}
	b.labels = labels
}

// materializeWeights switches the builder into weighted mode, crediting
// every previously added (unweighted) edge with weight 1.
func (b *Builder) materializeWeights() {
	if b.weights == nil {
		b.weights = make([]float64, len(b.srcs), cap(b.srcs))
		for i := range b.weights {
			b.weights[i] = 1
		}
	}
}

// SetNumVertices forces the vertex count (ID mode only). Vertices in
// [0, n) with no edges become isolated vertices.
func (b *Builder) SetNumVertices(n int) {
	if b.useLabels {
		panic("graph: SetNumVertices is only valid in ID mode")
	}
	if n > 0 {
		if VertexID(n-1) > b.maxID {
			b.maxID = VertexID(n - 1)
		}
	}
}

// Grow preallocates capacity for n additional edges.
func (b *Builder) Grow(n int) {
	if cap(b.srcs)-len(b.srcs) < n {
		srcs := make([]VertexID, len(b.srcs), len(b.srcs)+n)
		copy(srcs, b.srcs)
		b.srcs = srcs
		dsts := make([]VertexID, len(b.dsts), len(b.dsts)+n)
		copy(dsts, b.dsts)
		b.dsts = dsts
		if b.weights != nil {
			ws := make([]float64, len(b.weights), len(b.weights)+n)
			copy(ws, b.weights)
			b.weights = ws
		}
	}
}

// NumBufferedEdges returns the number of edges added so far.
func (b *Builder) NumBufferedEdges() int { return len(b.srcs) }

// ErrEmptyGraph is returned by Build when no vertices were added.
var ErrEmptyGraph = errors.New("graph: empty graph")

// Build constructs the CSR graph. The builder must not be reused after
// Build.
func (b *Builder) Build() (*Graph, error) { return b.build(1) }

// BuildParallel is Build with the CSR construction (degree histograms,
// scatter, per-vertex sort/dedup) fanned out over workers. workers <= 0
// uses GOMAXPROCS; workers == 1 is exactly the sequential Build. The
// produced graph is byte-identical to Build's for any worker count.
func (b *Builder) BuildParallel(workers int) (*Graph, error) {
	return b.build(buildWorkers(workers))
}

func (b *Builder) build(workers int) (*Graph, error) {
	var n int
	switch {
	case b.useLabels:
		n = len(b.labels)
	case b.labels != nil:
		// SetLabels fixed the vertex count in ID mode.
		n = len(b.labels)
		if b.hasEdges && int(b.maxID) >= n {
			return nil, fmt.Errorf("graph: edge ID %d out of range of %d labels", b.maxID, n)
		}
	case b.hasEdges || b.maxID > 0:
		n = int(b.maxID) + 1
	}
	if n == 0 {
		return nil, ErrEmptyGraph
	}

	srcs, dsts, ws := b.srcs, b.dsts, b.weights
	if b.dropLoops {
		k := 0
		for i := range srcs {
			if srcs[i] != dsts[i] {
				srcs[k], dsts[k] = srcs[i], dsts[i]
				if ws != nil {
					ws[k] = ws[i]
				}
				k++
			}
		}
		srcs, dsts = srcs[:k], dsts[:k]
		if ws != nil {
			ws = ws[:k]
		}
	}

	g := &Graph{name: b.name, directed: b.directed, n: n}
	if !b.directed {
		// Symmetrize: append the reversed arcs.
		m := len(srcs)
		srcs = append(srcs, dsts[:m]...)
		dsts = append(dsts, srcs[:m]...)
		if ws != nil {
			ws = append(ws, ws[:m]...)
		}
	}

	g.outIndex, g.outEdges, g.outWeights = buildCSRWP(n, srcs, dsts, ws, b.dedup || !b.directed, workers)
	if !b.directed {
		g.inIndex, g.inEdges = g.outIndex, g.outEdges
		g.inWeights = g.outWeights
	} else if b.buildIn {
		g.inIndex, g.inEdges, g.inWeights = buildCSRWP(n, dsts, srcs, ws, b.dedup, workers)
	}
	if b.labels != nil {
		g.labels = b.labels
	}
	// Release builder storage.
	b.srcs, b.dsts, b.weights, b.ext2int = nil, nil, nil, nil
	return g, nil
}

// buildCSR builds an unweighted CSR (index, edges) pair; see buildCSRW.
func buildCSR(n int, srcs, dsts []VertexID, dedup bool) ([]int64, []VertexID) {
	index, edges, _ := buildCSRW(n, srcs, dsts, nil, dedup)
	return index, edges
}

// buildCSRW builds a CSR (index, edges, weights) triple from parallel
// src/dst/weight arrays using counting sort by source, then sorts each
// adjacency list (by target, then weight) and optionally deduplicates.
// A nil ws builds an unweighted CSR (nil weights returned). Duplicate
// arcs keep the smallest weight.
func buildCSRW(n int, srcs, dsts []VertexID, ws []float64, dedup bool) ([]int64, []VertexID, []float64) {
	index := make([]int64, n+1)
	for _, s := range srcs {
		index[s+1]++
	}
	for i := 0; i < n; i++ {
		index[i+1] += index[i]
	}
	edges := make([]VertexID, len(srcs))
	var weights []float64
	if ws != nil {
		weights = make([]float64, len(srcs))
	}
	cursor := make([]int64, n)
	for i, s := range srcs {
		at := index[s] + cursor[s]
		edges[at] = dsts[i]
		if weights != nil {
			weights[at] = ws[i]
		}
		cursor[s]++
	}
	for v := 0; v < n; v++ {
		lo, hi := index[v], index[v+1]
		adj := edges[lo:hi]
		if weights == nil {
			sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
			continue
		}
		wadj := weights[lo:hi]
		sort.Sort(&edgeWeightSort{adj: adj, ws: wadj})
	}
	if !dedup {
		return index, edges, weights
	}
	// In-place dedup per vertex, then compact. Weighted duplicates keep
	// the first (smallest) weight thanks to the (target, weight) sort.
	w := int64(0)
	newIndex := make([]int64, n+1)
	for v := 0; v < n; v++ {
		start := w
		var last VertexID
		first := true
		for i := index[v]; i < index[v+1]; i++ {
			u := edges[i]
			if first || u != last {
				edges[w] = u
				if weights != nil {
					weights[w] = weights[i]
				}
				w++
				last = u
				first = false
			}
		}
		newIndex[v] = start
	}
	newIndex[n] = w
	// Shift starts: newIndex currently holds start offsets; already correct.
	if weights != nil {
		weights = weights[:w:w]
	}
	return newIndex, edges[:w:w], weights
}

// edgeWeightSort sorts an adjacency slice and its parallel weights by
// (target, weight).
type edgeWeightSort struct {
	adj []VertexID
	ws  []float64
}

func (s *edgeWeightSort) Len() int { return len(s.adj) }
func (s *edgeWeightSort) Less(i, j int) bool {
	if s.adj[i] != s.adj[j] {
		return s.adj[i] < s.adj[j]
	}
	return s.ws[i] < s.ws[j]
}
func (s *edgeWeightSort) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// FromArcs builds a directed graph with reverse adjacency directly from
// dense arc arrays, taking ownership of the slices. It is the fast path
// used by generators. n must be at least max(id)+1.
func FromArcs(name string, n int, srcs, dsts []VertexID, directed bool) *Graph {
	return FromWeightedArcsWorkers(name, n, srcs, dsts, nil, directed, 1)
}

// FromWeightedArcs is FromArcs with optional per-arc weights (nil builds
// an unweighted graph). It takes ownership of all slices.
func FromWeightedArcs(name string, n int, srcs, dsts []VertexID, ws []float64, directed bool) *Graph {
	return FromWeightedArcsWorkers(name, n, srcs, dsts, ws, directed, 1)
}

// FromWeightedArcsWorkers is FromWeightedArcs with the CSR construction
// fanned out over workers (<= 0 uses GOMAXPROCS, 1 is the sequential
// path); the result is byte-identical for any worker count.
func FromWeightedArcsWorkers(name string, n int, srcs, dsts []VertexID, ws []float64, directed bool, workers int) *Graph {
	g := &Graph{name: name, directed: directed, n: n}
	if !directed {
		m := len(srcs)
		srcs = append(srcs, dsts[:m]...)
		dsts = append(dsts, srcs[:m]...)
		if ws != nil {
			ws = append(ws, ws[:m]...)
		}
		g.outIndex, g.outEdges, g.outWeights = buildCSRWP(n, srcs, dsts, ws, true, workers)
		g.inIndex, g.inEdges = g.outIndex, g.outEdges
		g.inWeights = g.outWeights
		return g
	}
	g.outIndex, g.outEdges, g.outWeights = buildCSRWP(n, srcs, dsts, ws, false, workers)
	g.inIndex, g.inEdges, g.inWeights = buildCSRWP(n, dsts, srcs, ws, false, workers)
	return g
}
