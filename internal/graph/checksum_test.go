package graph

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func checksumTestGraph(name string) *Graph {
	return FromArcs(name, 5,
		[]VertexID{0, 1, 2, 3, 0},
		[]VertexID{1, 2, 3, 4, 4},
		false)
}

func TestChecksummedRoundTrip(t *testing.T) {
	g := checksumTestGraph("sum")
	var buf bytes.Buffer
	sum, err := g.WriteBinaryChecksummed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum == ([32]byte{}) {
		t.Fatal("zero checksum returned")
	}
	if err := VerifyBinary(buf.Bytes()); err != nil {
		t.Fatalf("VerifyBinary: %v", err)
	}
	back, err := ReadBinaryVerify(buf.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, back)
}

// Plain readers must keep reading checksummed images: the footer is
// trailing bytes the v1 payload parser never consumes.
func TestChecksummedBackwardCompatible(t *testing.T) {
	g := checksumTestGraph("compat")
	var buf bytes.Buffer
	if _, err := g.WriteBinaryChecksummed(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("plain ReadBinary on checksummed image: %v", err)
	}
	assertSameGraph(t, g, back)
}

func TestChecksummedDetectsCorruption(t *testing.T) {
	g := checksumTestGraph("rot")
	var buf bytes.Buffer
	if _, err := g.WriteBinaryChecksummed(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte past the header.
	data[len(data)/2] ^= 0xff
	if err := VerifyBinary(data); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyBinary on corrupted image = %v, want ErrChecksum", err)
	}
	if _, err := ReadBinaryVerify(data, 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadBinaryVerify on corrupted image = %v, want ErrChecksum", err)
	}
}

func TestChecksummedRejectsMissingFooter(t *testing.T) {
	g := checksumTestGraph("plain")
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := VerifyBinary(buf.Bytes()); err == nil {
		t.Fatal("VerifyBinary accepted an unchecksummed image")
	}
}

func TestSaveLoadBinaryChecksummed(t *testing.T) {
	g := checksumTestGraph("disk")
	path := filepath.Join(t.TempDir(), "g.galb")
	if _, err := g.SaveBinaryChecksummed(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinaryVerify(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, back)
}

func TestContentHash(t *testing.T) {
	a := checksumTestGraph("same")
	b := checksumTestGraph("same")
	ha, err := a.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("equal graphs hash differently")
	}
	c := checksumTestGraph("other")
	hc, err := c.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hc {
		t.Fatal("renamed graph hashes equal — name must be part of the content")
	}
}
