package graph

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The Graphalytics on-disk format is a pair of text files:
//
//	<name>.v   one external vertex identifier per line
//	<name>.e   one edge per line: "<src> <dst> [<weight>]"
//	           (whitespace separated)
//
// Lines starting with '#' or '%' are comments. The .v file is optional
// when loading; without it, the vertex set is the set of edge endpoints.
//
// The optional third column is an LDBC-style float64 edge weight, used
// by the weighted workloads (SSSP). Weight presence is auto-detected
// from the first edge line; files mixing weighted and unweighted lines,
// or carrying malformed or negative/non-finite weights, are rejected
// with a line-numbered error.
//
// Loading is a parallel ingest pipeline by default (see ingest.go):
// newline-aligned byte chunks parsed by a worker pool, concurrent
// interning, and parallel CSR construction. Workers == 1 selects the
// original streaming sequential loader; both paths produce
// byte-identical graphs and identical (first-in-file-order,
// line-numbered) errors.

// LoadOptions configures graph loading.
type LoadOptions struct {
	Directed  bool   // interpret edges as directed arcs
	Name      string // dataset name; defaults to the file base name
	DropLoops bool   // drop self-loop edges
	// Workers sets ingest parallelism: chunked parsing, concurrent
	// interning, and parallel CSR construction. 0 selects GOMAXPROCS;
	// 1 selects the sequential streaming loader. The parallel path
	// reads the whole file into memory (chunk workers need random
	// access); when peak memory matters more than load time — e.g. an
	// edge file near the machine's RAM — use Workers: 1, which streams
	// through a fixed-size buffer.
	Workers int
}

func (opts LoadOptions) builder() *Builder {
	bopts := []BuilderOption{Directed(opts.Directed), Dedup(), WithName(opts.Name)}
	if opts.Directed {
		bopts = append(bopts, WithReverse())
	}
	if opts.DropLoops {
		bopts = append(bopts, DropSelfLoops())
	}
	return NewBuilder(bopts...)
}

// LoadEdgeList reads a graph from edgePath (.e format) and, if vertexPath
// is non-empty, the vertex file (.v format).
func LoadEdgeList(edgePath, vertexPath string, opts LoadOptions) (*Graph, error) {
	if opts.Name == "" {
		opts.Name = strings.TrimSuffix(filepath.Base(edgePath), filepath.Ext(edgePath))
	}
	workers := buildWorkers(opts.Workers)
	b := opts.builder()

	if workers > 1 {
		var vdata []byte
		if vertexPath != "" {
			var err error
			if vdata, err = os.ReadFile(vertexPath); err != nil {
				return nil, fmt.Errorf("graph: open vertex file: %w", err)
			}
		}
		edata, err := os.ReadFile(edgePath)
		if err != nil {
			return nil, fmt.Errorf("graph: open edge file: %w", err)
		}
		g, err := ingest(b, edata, vdata, vertexPath != "", workers)
		return wrapLoadErr(g, err, edgePath, vertexPath)
	}

	if vertexPath != "" {
		vf, err := os.Open(vertexPath)
		if err != nil {
			return nil, fmt.Errorf("graph: open vertex file: %w", err)
		}
		defer vf.Close()
		if err := readVertices(vf, b); err != nil {
			return nil, fmt.Errorf("graph: %s: %w", vertexPath, err)
		}
	} else {
		// Force label mode so edge files with sparse IDs densify.
		b.useLabels = true
		b.ext2int = make(map[int64]VertexID)
	}

	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, fmt.Errorf("graph: open edge file: %w", err)
	}
	defer ef.Close()
	if err := readEdges(ef, b); err != nil {
		return nil, fmt.Errorf("graph: %s: %w", edgePath, err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", edgePath, err)
	}
	return g, nil
}

// wrapLoadErr qualifies an ingest error with the file it came from:
// vertex errors with the vertex path, everything else (edge parse,
// interning, Build) with the edge path.
func wrapLoadErr(g *Graph, err error, edgePath, vertexPath string) (*Graph, error) {
	if err == nil {
		return g, nil
	}
	var verr *vertexFileError
	if vertexPath != "" && errors.As(err, &verr) {
		return nil, fmt.Errorf("graph: %s: %w", vertexPath, verr.err)
	}
	return nil, fmt.Errorf("graph: %s: %w", edgePath, err)
}

// ReadGraph parses a graph from in-memory readers (vertices may be nil).
func ReadGraph(edges io.Reader, vertices io.Reader, opts LoadOptions) (*Graph, error) {
	workers := buildWorkers(opts.Workers)
	b := opts.builder()
	if workers > 1 {
		var vdata []byte
		if vertices != nil {
			var err error
			if vdata, err = io.ReadAll(vertices); err != nil {
				return nil, err
			}
		}
		edata, err := io.ReadAll(edges)
		if err != nil {
			return nil, err
		}
		g, err := ingest(b, edata, vdata, vertices != nil, workers)
		if err != nil {
			var verr *vertexFileError
			if errors.As(err, &verr) {
				return nil, verr.err
			}
			return nil, err
		}
		return g, nil
	}
	if vertices != nil {
		if err := readVertices(vertices, b); err != nil {
			return nil, err
		}
	} else {
		b.useLabels = true
		b.ext2int = make(map[int64]VertexID)
	}
	if err := readEdges(edges, b); err != nil {
		return nil, err
	}
	return b.Build()
}

func readVertices(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		id, data, err := parseVertexLine(sc.Bytes())
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if data {
			b.AddVertex(id)
		}
	}
	return sc.Err()
}

// parseVertexLine parses one .v line: the leading field is the vertex
// identifier, further property columns are ignored. data is false for
// blank and comment lines.
func parseVertexLine(raw []byte) (id int64, data bool, err error) {
	text := bytes.TrimSpace(raw)
	if len(text) == 0 || text[0] == '#' || text[0] == '%' {
		return 0, false, nil
	}
	// Vertex files may carry property columns; the first field is the ID.
	if i := bytes.IndexAny(text, " \t"); i >= 0 {
		text = text[:i]
	}
	id, perr := strconv.ParseInt(string(text), 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("bad vertex id %q", text)
	}
	return id, true, nil
}

// edgeReader tracks the weighted/unweighted decision made on the first
// edge line so later lines that disagree produce a clear error.
type edgeReader struct {
	b        *Builder
	decided  bool
	weighted bool
}

func readEdges(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16*1024*1024)
	er := &edgeReader{b: b}
	line := 0
	for sc.Scan() {
		line++
		if err := er.parseEdgeLine(sc.Bytes(), line); err != nil {
			return err
		}
	}
	return sc.Err()
}

func (er *edgeReader) parseEdgeLine(raw []byte, line int) error {
	l, err := splitEdgeLine(raw)
	if err != nil {
		return fmt.Errorf("line %d: %w", line, err)
	}
	if !l.data {
		return nil
	}
	if !er.decided {
		er.decided = true
		er.weighted = l.weightField != nil
	}
	if l.weightField == nil {
		if er.weighted {
			return fmt.Errorf("line %d: edge %q has no weight but earlier edges are weighted", line, l.text)
		}
		er.b.AddEdge(l.src, l.dst)
		return nil
	}
	if !er.weighted {
		return fmt.Errorf("line %d: edge %q has a weight column but earlier edges do not", line, l.text)
	}
	w, err := l.weight()
	if err != nil {
		return fmt.Errorf("line %d: %w", line, err)
	}
	er.b.AddEdgeWeighted(l.src, l.dst, w)
	return nil
}

// edgeLine is the mode-independent parse of one .e line: the weight
// column is captured but not validated, because whether it may appear
// at all depends on the file-level weighted/unweighted decision.
type edgeLine struct {
	src, dst    int64
	weightField []byte // first column after dst; nil = none
	text        []byte // trimmed line, for error messages
	data        bool   // false for blank and comment lines
}

// splitEdgeLine parses one .e line (without its newline; a trailing
// '\r' is treated as whitespace). Columns after the weight are ignored
// — some exports carry timestamps or properties after it.
func splitEdgeLine(raw []byte) (edgeLine, error) {
	s := bytes.TrimSpace(raw)
	if len(s) == 0 || s[0] == '#' || s[0] == '%' {
		return edgeLine{}, nil
	}
	src, rest, ok := cutInt(s)
	if !ok {
		return edgeLine{}, fmt.Errorf("bad edge line %q", s)
	}
	dst, rest, ok := cutInt(rest)
	if !ok {
		return edgeLine{}, fmt.Errorf("bad edge line %q", s)
	}
	l := edgeLine{src: src, dst: dst, text: s, data: true}
	rest = bytes.TrimSpace(rest)
	if len(rest) > 0 {
		field := rest
		if i := bytes.IndexAny(field, " \t,"); i >= 0 {
			field = field[:i]
		}
		l.weightField = field
	}
	return l, nil
}

// weight parses and validates the line's weight column.
func (l edgeLine) weight() (float64, error) {
	w, err := strconv.ParseFloat(string(l.weightField), 64)
	if err != nil {
		return 0, fmt.Errorf("bad edge weight %q", l.weightField)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("edge weight %v must be finite and non-negative", w)
	}
	return w, nil
}

// cutInt parses a leading base-10 integer from s and returns the value,
// the remainder after separators, and whether parsing succeeded. It is a
// fast path replacement for Split+ParseInt on hot loader loops.
func cutInt(s []byte) (int64, []byte, bool) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == ',') {
		i++
	}
	start := i
	neg := false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
		digits++
	}
	if digits == 0 {
		return 0, s[start:], false
	}
	if neg {
		v = -v
	}
	return v, s[i:], true
}

// WriteEdgeList writes the graph to w in .e format (one logical edge per
// line, external labels). Undirected graphs write each edge once.
// Weighted graphs write the weight as a third column, so weighted
// graphs round-trip through the text format.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	if g.Weighted() {
		g.EdgesW(func(u, v VertexID, wt float64) {
			if err != nil {
				return
			}
			_, err = fmt.Fprintf(bw, "%d %d %s\n", g.Label(u), g.Label(v),
				strconv.FormatFloat(wt, 'g', -1, 64))
		})
	} else {
		g.Edges(func(u, v VertexID) {
			if err != nil {
				return
			}
			_, err = fmt.Fprintf(bw, "%d %d\n", g.Label(u), g.Label(v))
		})
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteVertexList writes the graph's vertex set to w in .v format.
func (g *Graph) WriteVertexList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for v := 0; v < g.n; v++ {
		if _, err := fmt.Fprintf(bw, "%d\n", g.Label(VertexID(v))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFiles writes <prefix>.v and <prefix>.e files for the graph.
func (g *Graph) SaveFiles(prefix string) error {
	vf, err := os.Create(prefix + ".v")
	if err != nil {
		return err
	}
	if err := g.WriteVertexList(vf); err != nil {
		vf.Close()
		return err
	}
	if err := vf.Close(); err != nil {
		return err
	}
	ef, err := os.Create(prefix + ".e")
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(ef); err != nil {
		ef.Close()
		return err
	}
	return ef.Close()
}
