package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The Graphalytics on-disk format is a pair of text files:
//
//	<name>.v   one external vertex identifier per line
//	<name>.e   one edge per line: "<src> <dst> [<weight>]"
//	           (whitespace separated)
//
// Lines starting with '#' or '%' are comments. The .v file is optional
// when loading; without it, the vertex set is the set of edge endpoints.
//
// The optional third column is an LDBC-style float64 edge weight, used
// by the weighted workloads (SSSP). Weight presence is auto-detected
// from the first edge line; files mixing weighted and unweighted lines,
// or carrying malformed or negative/non-finite weights, are rejected
// with a line-numbered error.

// LoadOptions configures graph loading.
type LoadOptions struct {
	Directed  bool   // interpret edges as directed arcs
	Name      string // dataset name; defaults to the file base name
	DropLoops bool   // drop self-loop edges
}

// LoadEdgeList reads a graph from edgePath (.e format) and, if vertexPath
// is non-empty, the vertex file (.v format).
func LoadEdgeList(edgePath, vertexPath string, opts LoadOptions) (*Graph, error) {
	name := opts.Name
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(edgePath), filepath.Ext(edgePath))
	}
	bopts := []BuilderOption{Directed(opts.Directed), Dedup(), WithName(name)}
	if opts.Directed {
		bopts = append(bopts, WithReverse())
	}
	if opts.DropLoops {
		bopts = append(bopts, DropSelfLoops())
	}
	b := NewBuilder(bopts...)

	if vertexPath != "" {
		vf, err := os.Open(vertexPath)
		if err != nil {
			return nil, fmt.Errorf("graph: open vertex file: %w", err)
		}
		defer vf.Close()
		if err := readVertices(vf, b); err != nil {
			return nil, fmt.Errorf("graph: %s: %w", vertexPath, err)
		}
	} else {
		// Force label mode so edge files with sparse IDs densify.
		b.useLabels = true
		b.ext2int = make(map[int64]VertexID)
	}

	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, fmt.Errorf("graph: open edge file: %w", err)
	}
	defer ef.Close()
	if err := readEdges(ef, b); err != nil {
		return nil, fmt.Errorf("graph: %s: %w", edgePath, err)
	}
	return b.Build()
}

// ReadGraph parses a graph from in-memory readers (vertices may be nil).
func ReadGraph(edges io.Reader, vertices io.Reader, opts LoadOptions) (*Graph, error) {
	bopts := []BuilderOption{Directed(opts.Directed), Dedup(), WithName(opts.Name)}
	if opts.Directed {
		bopts = append(bopts, WithReverse())
	}
	if opts.DropLoops {
		bopts = append(bopts, DropSelfLoops())
	}
	b := NewBuilder(bopts...)
	if vertices != nil {
		if err := readVertices(vertices, b); err != nil {
			return nil, err
		}
	} else {
		b.useLabels = true
		b.ext2int = make(map[int64]VertexID)
	}
	if err := readEdges(edges, b); err != nil {
		return nil, err
	}
	return b.Build()
}

func readVertices(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		// Vertex files may carry property columns; the first field is the ID.
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			text = text[:i]
		}
		id, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad vertex id %q", line, text)
		}
		b.AddVertex(id)
	}
	return sc.Err()
}

// edgeReader tracks the weighted/unweighted decision made on the first
// edge line so later lines that disagree produce a clear error.
type edgeReader struct {
	b        *Builder
	decided  bool
	weighted bool
}

func readEdges(r io.Reader, b *Builder) error {
	br := bufio.NewReaderSize(r, 1<<20)
	er := &edgeReader{b: b}
	line := 0
	for {
		text, err := br.ReadString('\n')
		if len(text) > 0 {
			line++
			if perr := er.parseEdgeLine(text, line); perr != nil {
				return perr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func (er *edgeReader) parseEdgeLine(text string, line int) error {
	s := strings.TrimSpace(text)
	if s == "" || s[0] == '#' || s[0] == '%' {
		return nil
	}
	src, rest, ok := cutInt(s)
	if !ok {
		return fmt.Errorf("line %d: bad edge line %q", line, s)
	}
	dst, rest, ok := cutInt(rest)
	if !ok {
		return fmt.Errorf("line %d: bad edge line %q", line, s)
	}
	rest = strings.TrimSpace(rest)
	if !er.decided {
		er.decided = true
		er.weighted = rest != ""
	}
	if rest == "" {
		if er.weighted {
			return fmt.Errorf("line %d: edge %q has no weight but earlier edges are weighted", line, s)
		}
		er.b.AddEdge(src, dst)
		return nil
	}
	if !er.weighted {
		return fmt.Errorf("line %d: edge %q has a weight column but earlier edges do not", line, s)
	}
	// The weight is the first remaining field; further columns are ignored
	// (some exports carry timestamps or properties after the weight).
	field := rest
	if i := strings.IndexAny(field, " \t,"); i >= 0 {
		field = field[:i]
	}
	w, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return fmt.Errorf("line %d: bad edge weight %q", line, field)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("line %d: edge weight %v must be finite and non-negative", line, w)
	}
	er.b.AddEdgeWeighted(src, dst, w)
	return nil
}

// cutInt parses a leading base-10 integer from s and returns the value,
// the remainder after separators, and whether parsing succeeded. It is a
// fast path replacement for Split+ParseInt on hot loader loops.
func cutInt(s string) (int64, string, bool) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == ',') {
		i++
	}
	start := i
	neg := false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
		digits++
	}
	if digits == 0 {
		return 0, s[start:], false
	}
	if neg {
		v = -v
	}
	return v, s[i:], true
}

// WriteEdgeList writes the graph to w in .e format (one logical edge per
// line, external labels). Undirected graphs write each edge once.
// Weighted graphs write the weight as a third column, so weighted
// graphs round-trip through the text format.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	if g.Weighted() {
		g.EdgesW(func(u, v VertexID, wt float64) {
			if err != nil {
				return
			}
			_, err = fmt.Fprintf(bw, "%d %d %s\n", g.Label(u), g.Label(v),
				strconv.FormatFloat(wt, 'g', -1, 64))
		})
	} else {
		g.Edges(func(u, v VertexID) {
			if err != nil {
				return
			}
			_, err = fmt.Fprintf(bw, "%d %d\n", g.Label(u), g.Label(v))
		})
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteVertexList writes the graph's vertex set to w in .v format.
func (g *Graph) WriteVertexList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for v := 0; v < g.n; v++ {
		if _, err := fmt.Fprintf(bw, "%d\n", g.Label(VertexID(v))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFiles writes <prefix>.v and <prefix>.e files for the graph.
func (g *Graph) SaveFiles(prefix string) error {
	vf, err := os.Create(prefix + ".v")
	if err != nil {
		return err
	}
	if err := g.WriteVertexList(vf); err != nil {
		vf.Close()
		return err
	}
	if err := vf.Close(); err != nil {
		return err
	}
	ef, err := os.Create(prefix + ".e")
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(ef); err != nil {
		ef.Close()
		return err
	}
	return ef.Close()
}
