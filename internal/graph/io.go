package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The Graphalytics on-disk format is a pair of text files:
//
//	<name>.v   one external vertex identifier per line
//	<name>.e   one edge per line: "<src> <dst>" (whitespace separated)
//
// Lines starting with '#' or '%' are comments. The .v file is optional
// when loading; without it, the vertex set is the set of edge endpoints.

// LoadOptions configures graph loading.
type LoadOptions struct {
	Directed  bool   // interpret edges as directed arcs
	Name      string // dataset name; defaults to the file base name
	DropLoops bool   // drop self-loop edges
}

// LoadEdgeList reads a graph from edgePath (.e format) and, if vertexPath
// is non-empty, the vertex file (.v format).
func LoadEdgeList(edgePath, vertexPath string, opts LoadOptions) (*Graph, error) {
	name := opts.Name
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(edgePath), filepath.Ext(edgePath))
	}
	bopts := []BuilderOption{Directed(opts.Directed), Dedup(), WithName(name)}
	if opts.Directed {
		bopts = append(bopts, WithReverse())
	}
	if opts.DropLoops {
		bopts = append(bopts, DropSelfLoops())
	}
	b := NewBuilder(bopts...)

	if vertexPath != "" {
		vf, err := os.Open(vertexPath)
		if err != nil {
			return nil, fmt.Errorf("graph: open vertex file: %w", err)
		}
		defer vf.Close()
		if err := readVertices(vf, b); err != nil {
			return nil, fmt.Errorf("graph: %s: %w", vertexPath, err)
		}
	} else {
		// Force label mode so edge files with sparse IDs densify.
		b.useLabels = true
		b.ext2int = make(map[int64]VertexID)
	}

	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, fmt.Errorf("graph: open edge file: %w", err)
	}
	defer ef.Close()
	if err := readEdges(ef, b); err != nil {
		return nil, fmt.Errorf("graph: %s: %w", edgePath, err)
	}
	return b.Build()
}

// ReadGraph parses a graph from in-memory readers (vertices may be nil).
func ReadGraph(edges io.Reader, vertices io.Reader, opts LoadOptions) (*Graph, error) {
	bopts := []BuilderOption{Directed(opts.Directed), Dedup(), WithName(opts.Name)}
	if opts.Directed {
		bopts = append(bopts, WithReverse())
	}
	if opts.DropLoops {
		bopts = append(bopts, DropSelfLoops())
	}
	b := NewBuilder(bopts...)
	if vertices != nil {
		if err := readVertices(vertices, b); err != nil {
			return nil, err
		}
	} else {
		b.useLabels = true
		b.ext2int = make(map[int64]VertexID)
	}
	if err := readEdges(edges, b); err != nil {
		return nil, err
	}
	return b.Build()
}

func readVertices(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		// Vertex files may carry property columns; the first field is the ID.
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			text = text[:i]
		}
		id, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad vertex id %q", line, text)
		}
		b.AddVertex(id)
	}
	return sc.Err()
}

func readEdges(r io.Reader, b *Builder) error {
	br := bufio.NewReaderSize(r, 1<<20)
	line := 0
	for {
		text, err := br.ReadString('\n')
		if len(text) > 0 {
			line++
			if perr := parseEdgeLine(text, line, b); perr != nil {
				return perr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func parseEdgeLine(text string, line int, b *Builder) error {
	s := strings.TrimSpace(text)
	if s == "" || s[0] == '#' || s[0] == '%' {
		return nil
	}
	src, rest, ok := cutInt(s)
	if !ok {
		return fmt.Errorf("line %d: bad edge line %q", line, s)
	}
	dst, _, ok := cutInt(rest)
	if !ok {
		return fmt.Errorf("line %d: bad edge line %q", line, s)
	}
	b.AddEdge(src, dst)
	return nil
}

// cutInt parses a leading base-10 integer from s and returns the value,
// the remainder after separators, and whether parsing succeeded. It is a
// fast path replacement for Split+ParseInt on hot loader loops.
func cutInt(s string) (int64, string, bool) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == ',') {
		i++
	}
	start := i
	neg := false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
		digits++
	}
	if digits == 0 {
		return 0, s[start:], false
	}
	if neg {
		v = -v
	}
	return v, s[i:], true
}

// WriteEdgeList writes the graph to w in .e format (one logical edge per
// line, external labels). Undirected graphs write each edge once.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	g.Edges(func(u, v VertexID) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d %d\n", g.Label(u), g.Label(v))
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteVertexList writes the graph's vertex set to w in .v format.
func (g *Graph) WriteVertexList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for v := 0; v < g.n; v++ {
		if _, err := fmt.Fprintf(bw, "%d\n", g.Label(VertexID(v))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFiles writes <prefix>.v and <prefix>.e files for the graph.
func (g *Graph) SaveFiles(prefix string) error {
	vf, err := os.Create(prefix + ".v")
	if err != nil {
		return err
	}
	if err := g.WriteVertexList(vf); err != nil {
		vf.Close()
		return err
	}
	if err := vf.Close(); err != nil {
		return err
	}
	ef, err := os.Create(prefix + ".e")
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(ef); err != nil {
		ef.Close()
		return err
	}
	return ef.Close()
}
