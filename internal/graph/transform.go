package graph

import "sort"

// Undirect returns an undirected (symmetrized, deduplicated) view of g as
// a new graph. If g is already undirected it is returned unchanged.
func Undirect(g *Graph) *Graph {
	if !g.directed {
		return g
	}
	srcs := make([]VertexID, 0, g.NumArcs())
	dsts := make([]VertexID, 0, g.NumArcs())
	g.Arcs(func(u, v VertexID) {
		if u != v {
			srcs = append(srcs, u)
			dsts = append(dsts, v)
		}
	})
	out := FromArcs(g.name, g.n, srcs, dsts, false)
	out.labels = g.labels
	return out
}

// Remap returns a new graph whose vertex v is the old vertex perm[v];
// that is, perm is the new-order listing of old IDs (a permutation).
// External labels follow their vertices. Remapping is used by the
// access-locality ablation (§2.1 "poor access locality").
func Remap(g *Graph, perm []VertexID) *Graph {
	if len(perm) != g.n {
		panic("graph: Remap permutation has wrong length")
	}
	inv := make([]VertexID, g.n) // old -> new
	for newID, oldID := range perm {
		inv[oldID] = VertexID(newID)
	}
	srcs := make([]VertexID, 0, g.NumArcs())
	dsts := make([]VertexID, 0, g.NumArcs())
	g.Arcs(func(u, v VertexID) {
		srcs = append(srcs, inv[u])
		dsts = append(dsts, inv[v])
	})
	var out *Graph
	if g.directed {
		out = FromArcs(g.name, g.n, srcs, dsts, true)
	} else {
		// Arcs already contain both directions; rebuild directly to avoid
		// re-symmetrizing.
		out = &Graph{name: g.name, directed: false, n: g.n}
		out.outIndex, out.outEdges = buildCSR(g.n, srcs, dsts, true)
		out.inIndex, out.inEdges = out.outIndex, out.outEdges
	}
	if g.labels != nil {
		labels := make([]int64, g.n)
		for newID, oldID := range perm {
			labels[newID] = g.labels[oldID]
		}
		out.labels = labels
	}
	return out
}

// DegreeOrder returns a permutation that sorts vertices by descending
// out-degree (ties by ID). Used by the locality ablation.
func DegreeOrder(g *Graph) []VertexID {
	perm := make([]VertexID, g.n)
	for i := range perm {
		perm[i] = VertexID(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		di, dj := g.OutDegree(perm[i]), g.OutDegree(perm[j])
		if di != dj {
			return di > dj
		}
		return perm[i] < perm[j]
	})
	return perm
}

// BFSOrder returns a permutation listing vertices in BFS discovery order
// from source (unreached vertices appended in ID order). BFS ordering
// improves cache locality of frontier expansion.
func BFSOrder(g *Graph, source VertexID) []VertexID {
	perm := make([]VertexID, 0, g.n)
	seen := make([]bool, g.n)
	queue := []VertexID{source}
	seen[source] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		perm = append(perm, v)
		for _, u := range g.OutNeighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if !seen[v] {
			perm = append(perm, VertexID(v))
		}
	}
	return perm
}

// RandomOrder returns a deterministic pseudo-random permutation of the
// vertices derived from seed.
func RandomOrder(g *Graph, seed uint64) []VertexID {
	perm := make([]VertexID, g.n)
	for i := range perm {
		perm[i] = VertexID(i)
	}
	// Fisher-Yates with SplitMix64 stream.
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := g.n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// InducedSubgraph returns the subgraph induced by keep (a vertex
// predicate). Kept vertices are renumbered densely in ascending old-ID
// order; labels follow.
func InducedSubgraph(g *Graph, keep func(VertexID) bool) *Graph {
	newID := make([]VertexID, g.n)
	n := 0
	for v := 0; v < g.n; v++ {
		if keep(VertexID(v)) {
			newID[v] = VertexID(n)
			n++
		} else {
			newID[v] = NoVertex
		}
	}
	var srcs, dsts []VertexID
	g.Arcs(func(u, v VertexID) {
		if newID[u] != NoVertex && newID[v] != NoVertex {
			srcs = append(srcs, newID[u])
			dsts = append(dsts, newID[v])
		}
	})
	var out *Graph
	if g.directed {
		out = FromArcs(g.name, n, srcs, dsts, true)
	} else {
		out = &Graph{name: g.name, directed: false, n: n}
		out.outIndex, out.outEdges = buildCSR(n, srcs, dsts, true)
		out.inIndex, out.inEdges = out.outIndex, out.outEdges
	}
	if g.labels != nil {
		labels := make([]int64, 0, n)
		for v := 0; v < g.n; v++ {
			if newID[v] != NoVertex {
				labels = append(labels, g.labels[v])
			}
		}
		out.labels = labels
	}
	return out
}

// AddVertices returns a copy of g with extra isolated vertices appended
// (used by the EVO forest-fire algorithm to grow the graph).
func AddVertices(g *Graph, extra int) *Graph {
	srcs := make([]VertexID, 0, g.NumArcs())
	dsts := make([]VertexID, 0, g.NumArcs())
	g.Arcs(func(u, v VertexID) {
		srcs = append(srcs, u)
		dsts = append(dsts, v)
	})
	n := g.n + extra
	var out *Graph
	if g.directed {
		out = FromArcs(g.name, n, srcs, dsts, true)
	} else {
		out = &Graph{name: g.name, directed: false, n: n}
		out.outIndex, out.outEdges = buildCSR(n, srcs, dsts, true)
		out.inIndex, out.inEdges = out.outIndex, out.outEdges
	}
	if g.labels != nil {
		labels := make([]int64, n)
		copy(labels, g.labels)
		maxLabel := int64(-1)
		for _, l := range g.labels {
			if l > maxLabel {
				maxLabel = l
			}
		}
		for i := g.n; i < n; i++ {
			maxLabel++
			labels[i] = maxLabel
		}
		out.labels = labels
	}
	return out
}

// WithEdges returns a copy of g with the given extra arcs added (dense
// IDs; targets may reference vertices up to n-1 of g). For undirected
// graphs pass each new edge once.
func WithEdges(g *Graph, srcs, dsts []VertexID) *Graph {
	as := make([]VertexID, 0, int(g.NumArcs())+2*len(srcs))
	ad := make([]VertexID, 0, int(g.NumArcs())+2*len(srcs))
	g.Arcs(func(u, v VertexID) {
		as = append(as, u)
		ad = append(ad, v)
	})
	as = append(as, srcs...)
	ad = append(ad, dsts...)
	if !g.directed {
		as = append(as, dsts...)
		ad = append(ad, srcs...)
	}
	var out *Graph
	if g.directed {
		out = FromArcs(g.name, g.n, as, ad, true)
	} else {
		out = &Graph{name: g.name, directed: false, n: g.n}
		out.outIndex, out.outEdges = buildCSR(g.n, as, ad, true)
		out.inIndex, out.inEdges = out.outIndex, out.outEdges
	}
	out.labels = g.labels
	return out
}
