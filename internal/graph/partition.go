package graph

// Partitioner assigns vertices to workers/machines. Partitioning quality
// directly drives the "excessive network utilization" choke point (§2.1):
// every cross-partition message in the BSP and dataflow engines is
// counted as network traffic.
type Partitioner interface {
	// Name identifies the strategy in reports.
	Name() string
	// Parts returns the number of partitions.
	Parts() int
	// Assign returns the partition of v in [0, Parts()).
	Assign(v VertexID) int
}

// HashPartitioner assigns vertices by a multiplicative hash of their ID.
// This is the Giraph/GraphX default and has no locality.
type HashPartitioner struct {
	parts int
}

// NewHashPartitioner returns a HashPartitioner over parts partitions.
func NewHashPartitioner(parts int) *HashPartitioner {
	if parts <= 0 {
		parts = 1
	}
	return &HashPartitioner{parts: parts}
}

// Name implements Partitioner.
func (p *HashPartitioner) Name() string { return "hash" }

// Parts implements Partitioner.
func (p *HashPartitioner) Parts() int { return p.parts }

// Assign implements Partitioner.
func (p *HashPartitioner) Assign(v VertexID) int {
	x := uint64(v) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return int(x % uint64(p.parts))
}

// RangePartitioner assigns contiguous vertex ID ranges to partitions.
// With locality-friendly vertex orderings (BFS order), ranges keep many
// edges internal.
type RangePartitioner struct {
	parts int
	n     int
}

// NewRangePartitioner returns a RangePartitioner for n vertices over
// parts partitions.
func NewRangePartitioner(parts, n int) *RangePartitioner {
	if parts <= 0 {
		parts = 1
	}
	if n <= 0 {
		n = 1
	}
	return &RangePartitioner{parts: parts, n: n}
}

// Name implements Partitioner.
func (p *RangePartitioner) Name() string { return "range" }

// Parts implements Partitioner.
func (p *RangePartitioner) Parts() int { return p.parts }

// Assign implements Partitioner.
func (p *RangePartitioner) Assign(v VertexID) int {
	part := int(uint64(v) * uint64(p.parts) / uint64(p.n))
	if part >= p.parts {
		part = p.parts - 1
	}
	return part
}

// GreedyPartitioner implements Linear Deterministic Greedy (LDG)
// streaming partitioning: each vertex goes to the partition holding most
// of its already-placed neighbors, weighted by remaining capacity. It is
// an example of the "advanced graph partitioning" direction the paper
// lists for taming network utilization.
type GreedyPartitioner struct {
	parts  int
	assign []int32
}

// NewGreedyPartitioner computes an LDG assignment of g into parts
// partitions. The computation is deterministic.
func NewGreedyPartitioner(g *Graph, parts int) *GreedyPartitioner {
	if parts <= 0 {
		parts = 1
	}
	n := g.NumVertices()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	capacity := float64(n)/float64(parts) + 1
	sizes := make([]int, parts)
	scores := make([]float64, parts)
	for v := 0; v < n; v++ {
		for i := range scores {
			scores[i] = 0
		}
		for _, u := range g.OutNeighbors(VertexID(v)) {
			if a := assign[u]; a >= 0 {
				scores[a]++
			}
		}
		if g.Directed() && g.HasReverse() {
			for _, u := range g.InNeighbors(VertexID(v)) {
				if a := assign[u]; a >= 0 {
					scores[a]++
				}
			}
		}
		best, bestScore := 0, -1.0
		for p := 0; p < parts; p++ {
			s := scores[p] * (1 - float64(sizes[p])/capacity)
			if s > bestScore {
				best, bestScore = p, s
			}
		}
		assign[v] = int32(best)
		sizes[best]++
	}
	return &GreedyPartitioner{parts: parts, assign: assign}
}

// Name implements Partitioner.
func (p *GreedyPartitioner) Name() string { return "greedy-ldg" }

// Parts implements Partitioner.
func (p *GreedyPartitioner) Parts() int { return p.parts }

// Assign implements Partitioner.
func (p *GreedyPartitioner) Assign(v VertexID) int { return int(p.assign[v]) }

// CutFraction returns the fraction of arcs whose endpoints land in
// different partitions under p — the benchmark's proxy for network load.
func CutFraction(g *Graph, p Partitioner) float64 {
	if g.NumArcs() == 0 {
		return 0
	}
	var cut int64
	g.Arcs(func(u, v VertexID) {
		if p.Assign(u) != p.Assign(v) {
			cut++
		}
	})
	return float64(cut) / float64(g.NumArcs())
}
