package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderDirected(t *testing.T) {
	b := NewBuilder(Directed(true), WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(0, 2)
	b.AddEdgeID(2, 1)
	b.AddEdgeID(1, 0)
	g := mustBuild(t, b)

	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2}) {
		t.Errorf("OutNeighbors(0) = %v, want [1 2]", got)
	}
	if got := g.InNeighbors(1); !reflect.DeepEqual(got, []VertexID{0, 2}) {
		t.Errorf("InNeighbors(1) = %v, want [0 2]", got)
	}
	if g.OutDegree(1) != 1 || g.InDegree(0) != 1 {
		t.Errorf("degree mismatch: out(1)=%d in(0)=%d", g.OutDegree(1), g.InDegree(0))
	}
}

func TestBuilderUndirectedSymmetrizes(t *testing.T) {
	b := NewBuilder(Directed(false))
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 2)
	g := mustBuild(t, b)

	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.NumArcs() != 4 {
		t.Fatalf("NumArcs = %d, want 4", g.NumArcs())
	}
	if got := g.OutNeighbors(1); !reflect.DeepEqual(got, []VertexID{0, 2}) {
		t.Errorf("OutNeighbors(1) = %v, want [0 2]", got)
	}
	// Undirected graphs expose reverse adjacency aliasing forward.
	if !g.HasReverse() {
		t.Error("undirected graph should report HasReverse")
	}
	if got := g.InNeighbors(1); !reflect.DeepEqual(got, []VertexID{0, 2}) {
		t.Errorf("InNeighbors(1) = %v, want [0 2]", got)
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(Directed(true), Dedup(), DropSelfLoops())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 1)
	b.AddEdgeID(1, 2)
	g := mustBuild(t, b)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup + loop drop)", g.NumEdges())
	}
	if g.HasArc(1, 1) {
		t.Error("self-loop should have been dropped")
	}
}

func TestBuilderExternalLabels(t *testing.T) {
	b := NewBuilder(Directed(false))
	b.AddEdge(100, 200)
	b.AddEdge(200, 700)
	g := mustBuild(t, b)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	seen := map[int64]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		seen[g.Label(VertexID(v))] = true
	}
	for _, want := range []int64{100, 200, 700} {
		if !seen[want] {
			t.Errorf("label %d missing", want)
		}
	}
}

func TestBuilderIsolatedVertices(t *testing.T) {
	b := NewBuilder(Directed(true), WithReverse())
	b.AddVertex(5)
	b.AddVertex(9)
	b.AddEdge(5, 7)
	g := mustBuild(t, b)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3 (9 is isolated)", g.NumVertices())
	}
}

func TestBuilderEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err != ErrEmptyGraph {
		t.Fatalf("Build on empty = %v, want ErrEmptyGraph", err)
	}
}

func TestSetNumVertices(t *testing.T) {
	b := NewBuilder(Directed(true), WithReverse())
	b.SetNumVertices(10)
	b.AddEdgeID(0, 1)
	g := mustBuild(t, b)
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestHasArc(t *testing.T) {
	b := NewBuilder(Directed(true))
	for i := VertexID(1); i < 20; i += 2 {
		b.AddEdgeID(0, i)
	}
	g := mustBuild(t, b)
	for i := VertexID(0); i < 20; i++ {
		want := i%2 == 1
		if got := g.HasArc(0, i); got != want {
			t.Errorf("HasArc(0,%d) = %v, want %v", i, got, want)
		}
	}
}

func TestNeighborhoodUnion(t *testing.T) {
	b := NewBuilder(Directed(true), WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(0, 2)
	b.AddEdgeID(3, 0)
	b.AddEdgeID(2, 0) // 2 is both in- and out-neighbor
	b.AddEdgeID(0, 0) // self loop excluded from neighborhood
	g := mustBuild(t, b)
	got := g.Neighborhood(0, nil)
	want := []VertexID{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighborhood(0) = %v, want %v", got, want)
	}
}

func TestEdgesIterUndirectedOncePerEdge(t *testing.T) {
	b := NewBuilder(Directed(false))
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 2)
	b.AddEdgeID(0, 2)
	g := mustBuild(t, b)
	count := 0
	g.Edges(func(u, v VertexID) {
		if u > v {
			t.Errorf("Edges emitted u>v: %d %d", u, v)
		}
		count++
	})
	if count != 3 {
		t.Fatalf("Edges visited %d, want 3", count)
	}
}

func TestReadGraphAndRoundTrip(t *testing.T) {
	edges := "# comment\n1 2\n2 3\n3 1\n\n% another comment\n4 1\n"
	verts := "1\n2\n3\n4\n5\n"
	g, err := ReadGraph(strings.NewReader(edges), strings.NewReader(verts), LoadOptions{Directed: true, Name: "t"})
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}

	var eb, vb bytes.Buffer
	if err := g.WriteEdgeList(&eb); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	if err := g.WriteVertexList(&vb); err != nil {
		t.Fatalf("WriteVertexList: %v", err)
	}
	g2, err := ReadGraph(bytes.NewReader(eb.Bytes()), bytes.NewReader(vb.Bytes()), LoadOptions{Directed: true})
	if err != nil {
		t.Fatalf("ReadGraph round-trip: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}
	// Edge sets over labels must match.
	set := func(g *Graph) map[[2]int64]bool {
		m := map[[2]int64]bool{}
		g.Arcs(func(u, v VertexID) { m[[2]int64{g.Label(u), g.Label(v)}] = true })
		return m
	}
	if !reflect.DeepEqual(set(g), set(g2)) {
		t.Fatal("edge sets differ after round trip")
	}
}

func TestReadGraphBadInput(t *testing.T) {
	if _, err := ReadGraph(strings.NewReader("1 x\n"), nil, LoadOptions{}); err == nil {
		t.Error("expected error for malformed edge line")
	}
	if _, err := ReadGraph(strings.NewReader("1\n"), nil, LoadOptions{}); err == nil {
		t.Error("expected error for single-field edge line")
	}
	if _, err := ReadGraph(strings.NewReader(""), nil, LoadOptions{}); err == nil {
		t.Error("expected ErrEmptyGraph for empty input")
	}
}

func TestCutInt(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		rest string
		ok   bool
	}{
		{"42 7", 42, " 7", true},
		{"  -3,9", -3, ",9", true},
		{"+8", 8, "", true},
		{"x", 0, "x", false},
		{"", 0, "", false},
	}
	for _, c := range cases {
		v, restB, ok := cutInt([]byte(c.in))
		rest := string(restB)
		if v != c.want || rest != c.rest || ok != c.ok {
			t.Errorf("cutInt(%q) = (%d,%q,%v), want (%d,%q,%v)", c.in, v, rest, ok, c.want, c.rest, c.ok)
		}
	}
}

func TestUndirect(t *testing.T) {
	b := NewBuilder(Directed(true), WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 0) // reciprocal pair collapses to one undirected edge
	b.AddEdgeID(1, 2)
	b.AddEdgeID(2, 2) // self loop dropped
	g := mustBuild(t, b)
	u := Undirect(g)
	if u.Directed() {
		t.Fatal("Undirect returned a directed graph")
	}
	if u.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", u.NumEdges())
	}
	if Undirect(u) != u {
		t.Error("Undirect of undirected graph should be identity")
	}
}

func TestRemapPreservesStructure(t *testing.T) {
	b := NewBuilder(Directed(true), WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 2)
	b.AddEdgeID(2, 0)
	b.AddEdgeID(0, 3)
	g := mustBuild(t, b)
	perm := []VertexID{3, 2, 1, 0} // reverse order
	r := Remap(g, perm)
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatal("Remap changed graph size")
	}
	// old arc (0,1) must appear as (newOf0,newOf1) = (3,2)
	if !r.HasArc(3, 2) {
		t.Error("Remap lost arc (0,1)->(3,2)")
	}
	if !r.HasArc(1, 3) { // old (2,0) -> new (1,3)
		t.Error("Remap lost arc (2,0)->(1,3)")
	}
}

func TestOrderingsArePermutations(t *testing.T) {
	g := randomTestGraph(50, 200, 1, true)
	check := func(name string, perm []VertexID) {
		t.Helper()
		if len(perm) != g.NumVertices() {
			t.Fatalf("%s: len = %d", name, len(perm))
		}
		seen := make([]bool, g.NumVertices())
		for _, v := range perm {
			if seen[v] {
				t.Fatalf("%s: duplicate vertex %d", name, v)
			}
			seen[v] = true
		}
	}
	check("DegreeOrder", DegreeOrder(g))
	check("BFSOrder", BFSOrder(g, 0))
	check("RandomOrder", RandomOrder(g, 42))
}

func TestDegreeOrderSorted(t *testing.T) {
	g := randomTestGraph(60, 300, 7, true)
	perm := DegreeOrder(g)
	for i := 1; i < len(perm); i++ {
		if g.OutDegree(perm[i-1]) < g.OutDegree(perm[i]) {
			t.Fatalf("DegreeOrder not descending at %d", i)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(Directed(true), WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 2)
	b.AddEdgeID(2, 3)
	b.AddEdgeID(3, 0)
	g := mustBuild(t, b)
	s := InducedSubgraph(g, func(v VertexID) bool { return v != 3 })
	if s.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", s.NumVertices())
	}
	if s.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (edges touching 3 removed)", s.NumEdges())
	}
}

func TestAddVerticesAndWithEdges(t *testing.T) {
	b := NewBuilder(Directed(false))
	b.AddEdgeID(0, 1)
	g := mustBuild(t, b)
	g2 := AddVertices(g, 2)
	if g2.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g2.NumVertices())
	}
	if g2.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g2.NumEdges())
	}
	g3 := WithEdges(g2, []VertexID{2, 3}, []VertexID{0, 2})
	if g3.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g3.NumEdges())
	}
	if !g3.HasArc(0, 2) || !g3.HasArc(2, 0) {
		t.Error("WithEdges on undirected graph must add both arcs")
	}
}

func TestPartitioners(t *testing.T) {
	g := randomTestGraph(200, 1000, 3, true)
	parts := 8
	for _, p := range []Partitioner{
		NewHashPartitioner(parts),
		NewRangePartitioner(parts, g.NumVertices()),
		NewGreedyPartitioner(g, parts),
	} {
		if p.Parts() != parts {
			t.Errorf("%s: Parts = %d", p.Name(), p.Parts())
		}
		sizes := make([]int, parts)
		for v := 0; v < g.NumVertices(); v++ {
			a := p.Assign(VertexID(v))
			if a < 0 || a >= parts {
				t.Fatalf("%s: Assign out of range: %d", p.Name(), a)
			}
			sizes[a]++
		}
		cf := CutFraction(g, p)
		if cf < 0 || cf > 1 {
			t.Errorf("%s: CutFraction = %v", p.Name(), cf)
		}
	}
}

func TestGreedyBeatsHashOnClusteredGraph(t *testing.T) {
	// Ring of dense cliques: greedy should cut far fewer edges than hash.
	b := NewBuilder(Directed(false))
	cliques, size := 8, 16
	for c := 0; c < cliques; c++ {
		base := VertexID(c * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdgeID(base+VertexID(i), base+VertexID(j))
			}
		}
		next := VertexID(((c + 1) % cliques) * size)
		b.AddEdgeID(base, next)
	}
	g := mustBuild(t, b)
	hash := CutFraction(g, NewHashPartitioner(4))
	greedy := CutFraction(g, NewGreedyPartitioner(g, 4))
	if greedy >= hash {
		t.Errorf("greedy cut %.3f should beat hash cut %.3f on clustered graph", greedy, hash)
	}
}

// randomTestGraph builds a deterministic random graph for tests.
func randomTestGraph(n, m int, seed int64, directed bool) *Graph {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(Directed(directed), Dedup(), DropSelfLoops(), WithReverse())
	b.SetNumVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdgeID(VertexID(r.Intn(n)), VertexID(r.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Property: adjacency lists are always sorted and within range.
func TestQuickAdjacencySorted(t *testing.T) {
	f := func(edges []uint16, directedFlag bool) bool {
		if len(edges) < 2 {
			return true
		}
		b := NewBuilder(Directed(directedFlag), Dedup(), WithReverse())
		n := 64
		b.SetNumVertices(n)
		for i := 0; i+1 < len(edges); i += 2 {
			b.AddEdgeID(VertexID(int(edges[i])%n), VertexID(int(edges[i+1])%n))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			adj := g.OutNeighbors(VertexID(v))
			if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
				return false
			}
			for _, u := range adj {
				if int(u) >= g.NumVertices() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: undirected graphs are symmetric (u in adj(v) <=> v in adj(u)).
func TestQuickUndirectedSymmetry(t *testing.T) {
	f := func(edges []uint16) bool {
		if len(edges) < 2 {
			return true
		}
		b := NewBuilder(Directed(false))
		n := 48
		b.SetNumVertices(n)
		for i := 0; i+1 < len(edges); i += 2 {
			b.AddEdgeID(VertexID(int(edges[i])%n), VertexID(int(edges[i+1])%n))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		sym := true
		g.Arcs(func(u, v VertexID) {
			if !g.HasArc(v, u) {
				sym = false
			}
		})
		return sym
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Remap by any permutation preserves degree multiset.
func TestQuickRemapDegrees(t *testing.T) {
	f := func(seed int64) bool {
		g := randomTestGraph(40, 160, seed, true)
		perm := RandomOrder(g, uint64(seed)+1)
		r := Remap(g, perm)
		d1 := make([]int, 0, g.NumVertices())
		d2 := make([]int, 0, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			d1 = append(d1, g.OutDegree(VertexID(v)))
			d2 = append(d2, r.OutDegree(VertexID(v)))
		}
		sort.Ints(d1)
		sort.Ints(d2)
		return reflect.DeepEqual(d1, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	g := randomTestGraph(100, 400, 9, true)
	if g.MemoryFootprint() <= 0 {
		t.Error("MemoryFootprint should be positive")
	}
	if !strings.Contains(g.String(), "vertices") {
		t.Errorf("String() = %q", g.String())
	}
}
