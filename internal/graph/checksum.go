package graph

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
)

// Checksummed GALB: the artifact cache stores graphs with a content
// hash computed on write, so a cached graph can be verified on read
// before a corrupted file silently poisons a campaign. The layout is
// the v1 GALB payload followed by a footer:
//
//	sumMagic "GASH" (4 bytes)
//	sha256   32 bytes (over the payload, footer excluded)
//
// Plain ReadBinary still reads checksummed files (it consumes exactly
// the payload and ignores trailing bytes), so the footer is backward
// compatible; LoadBinaryVerify additionally recomputes and compares
// the hash.

const sumMagic = "GASH"

// ErrChecksum reports a checksummed binary graph whose content hash no
// longer matches its payload (bit rot, truncation, tampering).
var ErrChecksum = errors.New("graph: content checksum mismatch")

// WriteBinaryChecksummed serializes g to w with a trailing content
// checksum and returns the payload's SHA-256.
func (g *Graph) WriteBinaryChecksummed(w io.Writer) ([32]byte, error) {
	h := sha256.New()
	if err := g.WriteBinary(io.MultiWriter(w, h)); err != nil {
		return [32]byte{}, err
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	if _, err := w.Write([]byte(sumMagic)); err != nil {
		return sum, err
	}
	_, err := w.Write(sum[:])
	return sum, err
}

// SaveBinaryChecksummed writes the graph to path in the checksummed
// binary format and returns the payload's SHA-256.
func (g *Graph) SaveBinaryChecksummed(path string) ([32]byte, error) {
	f, err := os.Create(path)
	if err != nil {
		return [32]byte{}, err
	}
	sum, err := g.WriteBinaryChecksummed(f)
	if err != nil {
		f.Close()
		return sum, err
	}
	return sum, f.Close()
}

// splitChecksummed separates a checksummed binary image into payload
// and stored sum.
func splitChecksummed(data []byte) (payload []byte, sum [32]byte, err error) {
	footer := len(sumMagic) + len(sum)
	if len(data) < footer {
		return nil, sum, fmt.Errorf("%w: file too short for checksum footer", ErrBadFormat)
	}
	cut := len(data) - footer
	if string(data[cut:cut+len(sumMagic)]) != sumMagic {
		return nil, sum, fmt.Errorf("%w: missing checksum footer", ErrBadFormat)
	}
	copy(sum[:], data[cut+len(sumMagic):])
	return data[:cut], sum, nil
}

// VerifyBinary checks a checksummed binary graph image without parsing
// it: it recomputes the payload hash and compares it to the footer.
func VerifyBinary(data []byte) error {
	payload, want, err := splitChecksummed(data)
	if err != nil {
		return err
	}
	if sha256.Sum256(payload) != want {
		return ErrChecksum
	}
	return nil
}

// ReadBinaryVerify deserializes a checksummed binary graph image after
// verifying its content hash. workers parallelizes the reverse
// rebuild as in ReadBinaryWorkers (<= 0 uses GOMAXPROCS).
func ReadBinaryVerify(data []byte, workers int) (*Graph, error) {
	if err := VerifyBinary(data); err != nil {
		return nil, err
	}
	payload, _, _ := splitChecksummed(data)
	return ReadBinaryWorkers(bytes.NewReader(payload), workers)
}

// LoadBinaryVerify reads a checksummed binary graph file, verifying
// the content hash before parsing.
func LoadBinaryVerify(path string, workers int) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadBinaryVerify(data, workers)
}

// ContentHash returns the SHA-256 of the graph's deterministic binary
// serialization — the content fingerprint the incremental campaign
// engine uses when no generator identity is known. Equal hashes mean
// byte-identical CSR structure (direction, name, adjacency, weights,
// labels).
func (g *Graph) ContentHash() ([32]byte, error) {
	h := sha256.New()
	if err := g.WriteBinary(h); err != nil {
		return [32]byte{}, err
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}
