package graph

import (
	"strings"
	"testing"
)

// FuzzParseEdgeLine fuzzes the shared .e line parser (the single
// source of truth for both the sequential reader and the parallel
// chunk workers) and differentially checks the two loaders on a small
// file built from the line: same error text or byte-identical graph.
func FuzzParseEdgeLine(f *testing.F) {
	for _, seed := range []string{
		"1 2",
		"1\t2",
		"# comment",
		"% also a comment",
		"",
		"   ",
		"1 2 0.5",
		"1 2 0.5 1234567890", // trailing property column
		"1 2\r",              // CRLF
		"1 2 3.25\r",
		"999999999999 3",  // sparse IDs
		"-5 7",            // negative IDs
		"3,4,1.5",         // comma separators
		"1 2 banana",      // malformed weight
		"0 1 -1",          // negative weight
		"0 1 NaN",         // non-finite weight
		"0 1 +Inf",        // non-finite weight
		"7 8 1e-3",        // scientific notation
		"x y",             // malformed line
		"5",               // missing dst
		"+1 +2 +0.0",      // explicit signs
		"00 01 00.5",      // leading zeros
		"1 2 0.5,extra",   // comma after weight
		"\t 9 \t 10 \t 2", // whitespace soup
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		// The line parser must never panic, whatever the bytes.
		l, err := splitEdgeLine([]byte(line))
		if err == nil && l.data && l.weightField != nil {
			_, _ = l.weight()
		}

		// Differential: a file of the line repeated (so the second
		// occurrence also exercises the post-decision path) must load
		// identically under the sequential and parallel pipelines.
		data := line + "\n" + line + "\n"
		seq, seqErr := ReadGraph(strings.NewReader(data), nil, LoadOptions{Workers: 1})
		par, parErr := ReadGraph(strings.NewReader(data), nil, LoadOptions{Workers: 4})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("outcome mismatch: sequential err %v, parallel err %v", seqErr, parErr)
		}
		if seqErr != nil {
			if seqErr.Error() != parErr.Error() {
				t.Fatalf("error mismatch:\n  sequential: %v\n  parallel:   %v", seqErr, parErr)
			}
			return
		}
		if diff := graphDiff(seq, par); diff != "" {
			t.Fatalf("graph mismatch: %s", diff)
		}
	})
}
