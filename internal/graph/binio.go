package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Binary graph format ("GALB"): a compact CSR serialization that loads
// an order of magnitude faster than the text .v/.e pair, used by the
// dataset cache for large preconfigured graphs.
//
// Layout (all integers varint unless noted):
//
//	magic   "GALB" (4 bytes)
//	version u8 (=1)
//	flags   u8 (bit0 directed, bit1 has-labels, bit2 has-reverse,
//	        bit3 has-weights)
//	name    uvarint length + bytes
//	n       uvarint vertex count
//	arcs    uvarint arc count
//	degrees n × uvarint (out-degree per vertex)
//	edges   per vertex: sorted adjacency delta-encoded (first value
//	        absolute, then gaps)
//	[weights arcs × float64 LE, in edge order (if bit3)]
//	[labels n × varint (if bit1)]
//
// The reverse adjacency (and its weights) is rebuilt on load when bit2
// is set (it is derivable, so it is not stored).

const binMagic = "GALB"

// ErrBadFormat reports a malformed binary graph file.
var ErrBadFormat = errors.New("graph: bad binary format")

// WriteBinary serializes g to w in the binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	flags := byte(0)
	if g.directed {
		flags |= 1
	}
	if g.labels != nil {
		flags |= 2
	}
	if g.directed && g.inIndex != nil {
		flags |= 4
	}
	if g.outWeights != nil {
		flags |= 8
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(g.name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(g.name); err != nil {
		return err
	}
	if err := putUvarint(uint64(g.n)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(g.outEdges))); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		if err := putUvarint(uint64(g.OutDegree(VertexID(v)))); err != nil {
			return err
		}
	}
	for v := 0; v < g.n; v++ {
		prev := uint64(0)
		for i, u := range g.OutNeighbors(VertexID(v)) {
			if i == 0 {
				if err := putUvarint(uint64(u)); err != nil {
					return err
				}
			} else if err := putUvarint(uint64(u) - prev); err != nil {
				return err
			}
			prev = uint64(u)
		}
	}
	if g.outWeights != nil {
		var wbuf [8]byte
		for _, wt := range g.outWeights {
			binary.LittleEndian.PutUint64(wbuf[:], math.Float64bits(wt))
			if _, err := bw.Write(wbuf[:]); err != nil {
				return err
			}
		}
	}
	if g.labels != nil {
		for _, l := range g.labels {
			if err := putVarint(l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph from r, with the reverse-adjacency
// rebuild parallelized over all cores (see ReadBinaryWorkers).
func ReadBinary(r io.Reader) (*Graph, error) { return ReadBinaryWorkers(r, 0) }

// ReadBinaryWorkers is ReadBinary with the weight-section decode and
// the reverse-adjacency rebuild fanned out over workers (<= 0 uses
// GOMAXPROCS). The varint edge stream itself is inherently sequential
// — each delta depends on its predecessor — so it always streams. The
// result is byte-identical for any worker count.
func ReadBinaryWorkers(r io.Reader, workers int) (*Graph, error) {
	workers = buildWorkers(workers)
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("%w: absurd name length %d", ErrBadFormat, nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	arcs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n64 > 1<<32 || arcs > 1<<40 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d arcs=%d", ErrBadFormat, n64, arcs)
	}
	n := int(n64)

	g := &Graph{
		name:     string(nameBytes),
		directed: flags&1 != 0,
		n:        n,
	}
	g.outIndex = make([]int64, n+1)
	for v := 0; v < n; v++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		g.outIndex[v+1] = g.outIndex[v] + int64(d)
	}
	if uint64(g.outIndex[n]) != arcs {
		return nil, fmt.Errorf("%w: degree sum %d != arc count %d", ErrBadFormat, g.outIndex[n], arcs)
	}
	g.outEdges = make([]VertexID, arcs)
	for v := 0; v < n; v++ {
		prev := uint64(0)
		for i := g.outIndex[v]; i < g.outIndex[v+1]; i++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if i == g.outIndex[v] {
				prev = d
			} else {
				prev += d
			}
			if prev >= uint64(n) {
				return nil, fmt.Errorf("%w: edge target %d out of range", ErrBadFormat, prev)
			}
			g.outEdges[i] = VertexID(prev)
		}
	}
	if flags&8 != 0 {
		// The weight section is a flat float64 block: stream it in
		// fixed-size reads and convert each block off the wire.
		g.outWeights = make([]float64, arcs)
		const blk = 1 << 16 // floats per read
		var buf []byte
		for off := 0; off < len(g.outWeights); off += blk {
			end := min(off+blk, len(g.outWeights))
			need := (end - off) * 8
			if cap(buf) < need {
				buf = make([]byte, need)
			}
			if _, err := io.ReadFull(br, buf[:need]); err != nil {
				return nil, fmt.Errorf("%w: truncated weights: %v", ErrBadFormat, err)
			}
			for i := off; i < end; i++ {
				g.outWeights[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[(i-off)*8:]))
			}
		}
	}
	if flags&2 != 0 {
		g.labels = make([]int64, n)
		for v := 0; v < n; v++ {
			l, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			g.labels[v] = l
		}
	}
	if !g.directed {
		g.inIndex, g.inEdges = g.outIndex, g.outEdges
		g.inWeights = g.outWeights
	} else if flags&4 != 0 {
		// Rebuild the reverse adjacency (with weights when present):
		// materialize the per-arc source array straight from the CSR
		// index (in parallel) and counting-sort by target. outEdges and
		// outWeights are read-only inputs here, so they feed the build
		// without a copy.
		srcs := make([]VertexID, arcs)
		fillSources(g.outIndex, srcs, n, workers)
		g.inIndex, g.inEdges, g.inWeights = buildCSRWP(n, g.outEdges, srcs, g.outWeights, false, workers)
	}
	return g, nil
}

// fillSources expands the CSR index into a per-arc source array.
func fillSources(index []int64, srcs []VertexID, n, workers int) {
	ranges := balancedVertexRanges(index, n, workers)
	var wg sync.WaitGroup
	for _, vr := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				for i := index[v]; i < index[v+1]; i++ {
					srcs[i] = VertexID(v)
				}
			}
		}(vr[0], vr[1])
	}
	wg.Wait()
}

// SaveBinary writes the graph to path in the binary format.
func (g *Graph) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a binary graph file, with the reverse-adjacency
// rebuild parallelized over all cores (see ReadBinaryWorkers).
func LoadBinary(path string) (*Graph, error) { return LoadBinaryWorkers(path, 0) }

// LoadBinaryWorkers is LoadBinary with ReadBinaryWorkers parallelism.
func LoadBinaryWorkers(path string, workers int) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinaryWorkers(f, workers)
}
