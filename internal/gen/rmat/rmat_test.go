package rmat

import (
	"testing"

	"graphalytics/internal/graph"
	"graphalytics/internal/graph/gmetrics"
	"graphalytics/internal/stats"
)

func TestGenerateBasic(t *testing.T) {
	g, err := Generate(Config{Scale: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices())
	}
	if g.Directed() {
		t.Error("Graph500 graph must be undirected")
	}
	// Dedup + loop removal shrink the edge count, but it should stay in
	// the same ballpark as scale * edgefactor.
	m := g.NumEdges()
	if m < 1024*8 || m > 1024*16 {
		t.Errorf("edges = %d, want within [8n, 16n]", m)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Scale: 0}); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := Generate(Config{Scale: 31}); err == nil {
		t.Error("scale 31 should fail")
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	a, err := Generate(Config{Scale: 9, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Scale: 9, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("worker count changed the graph")
	}
	same := true
	a.Arcs(func(u, v graph.VertexID) {
		if !b.HasArc(u, v) {
			same = false
		}
	})
	if !same {
		t.Fatal("worker count changed the edge set")
	}
}

func TestSkewedDegrees(t *testing.T) {
	// R-MAT's defining property: heavy-tailed, skewed degrees. The max
	// degree should far exceed the mean, and a power law should fit far
	// better than a Poisson.
	g, err := Generate(Config{Scale: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	degs := gmetrics.Degrees(g)
	s, err := stats.NewSample(degs)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Describe()
	if float64(d.Max) < 8*d.Mean {
		t.Errorf("max degree %d vs mean %.1f: not skewed enough for R-MAT", d.Max, d.Mean)
	}
	zeta := s.FitZeta()
	pois := s.FitPoisson()
	if zeta.LogLikelihood <= pois.LogLikelihood {
		t.Error("power law should fit R-MAT degrees better than Poisson")
	}
}

func TestNoSelfLoops(t *testing.T) {
	g, err := Generate(Config{Scale: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.HasArc(graph.VertexID(v), graph.VertexID(v)) {
			t.Fatalf("self loop at %d", v)
		}
	}
}

func TestName(t *testing.T) {
	g, err := Generate(Config{Scale: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "graph500-8" {
		t.Errorf("name = %q", g.Name())
	}
}
