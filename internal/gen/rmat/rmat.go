// Package rmat implements the Graph500 Kronecker/R-MAT synthetic graph
// generator used for the paper's "Graph500 23" workload. The paper
// notes R-MAT "requires extensions to represent well the detailed
// interconnections ... present in the real graphs" — which is exactly
// why Graphalytics complements it with Datagen — but keeps it as a
// workload because Graph500 is the de-facto standard.
//
// The recursive quadrant probabilities follow the Graph500 reference
// (A=0.57, B=0.19, C=0.19, D=0.05) with multiplicative noise per level,
// and the edge factor defaults to 16.
package rmat

import (
	"fmt"
	"runtime"
	"sync"

	"graphalytics/internal/graph"
	"graphalytics/internal/xrand"
)

// Config parameterizes the generator.
type Config struct {
	// Scale is log2 of the vertex count ("Graph500 23" means scale 23).
	Scale int
	// EdgeFactor is edges per vertex (default 16).
	EdgeFactor int
	// A, B, C are the R-MAT quadrant probabilities (D = 1-A-B-C).
	// Zero values select the Graph500 defaults.
	A, B, C float64
	// Seed drives edge placement.
	Seed uint64
	// Noise perturbs quadrant probabilities per recursion level to avoid
	// the degree "staircase" artifact (default 0.1; set negative for 0).
	Noise float64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Name is the dataset name (default "graph500-<scale>").
	Name string
	// Weighted attaches a deterministic, seed-derived float64 weight in
	// (0, 1] to every edge (the Graph500 SSSP-kernel style of uniform
	// weights). Unit weights (an unweighted graph) by default.
	Weighted bool
}

func (c Config) withDefaults() Config {
	if c.EdgeFactor <= 0 {
		c.EdgeFactor = 16
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
	if c.Noise == 0 {
		c.Noise = 0.1
	} else if c.Noise < 0 {
		c.Noise = 0
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("graph500-%d", c.Scale)
	}
	return c
}

// Stamp returns the canonical parameter string for content-addressed
// dataset fingerprints: every parameter that changes the output
// (defaults applied first, so "0" and "explicit default" stamp equal),
// excluding Workers — generation is bit-identical at any parallelism.
func (c Config) Stamp() string {
	d := c.withDefaults()
	return fmt.Sprintf("scale=%d,ef=%d,a=%g,b=%g,c=%g,seed=%d,noise=%g,name=%s,weighted=%t",
		d.Scale, d.EdgeFactor, d.A, d.B, d.C, d.Seed, d.Noise, d.Name, d.Weighted)
}

// Generate produces an undirected R-MAT graph (Graph500 graphs are made
// undirected for BFS). Self-loops and duplicate edges are removed, so
// the realized edge count is slightly below Scale×EdgeFactor.
func Generate(cfg Config) (*graph.Graph, error) {
	c := cfg.withDefaults()
	if c.Scale < 1 || c.Scale > 30 {
		return nil, fmt.Errorf("rmat: scale must be in [1,30], got %d", c.Scale)
	}
	n := 1 << c.Scale
	m := int64(n) * int64(c.EdgeFactor)

	srcs := make([]graph.VertexID, m)
	dsts := make([]graph.VertexID, m)
	var wg sync.WaitGroup
	workers := c.Workers
	chunk := (m + int64(workers) - 1) / int64(workers)
	for w := 0; w < workers; w++ {
		lo := int64(w) * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				u, v := edge(c, uint64(i))
				srcs[i], dsts[i] = u, v
			}
		}(lo, hi)
	}
	wg.Wait()

	// Drop self-loops, then build the deduplicated undirected CSR.
	k := 0
	for i := range srcs {
		if srcs[i] != dsts[i] {
			srcs[k], dsts[k] = srcs[i], dsts[i]
			k++
		}
	}
	// CSR construction shares the generator's worker budget: the arc
	// arrays feed the parallel builder, which is bit-identical to the
	// sequential one.
	var ws []float64
	if c.Weighted {
		ws = edgeWeights(c.Seed, srcs[:k], dsts[:k])
	}
	g := graph.FromWeightedArcsWorkers(c.Name, n, srcs[:k], dsts[:k], ws, false, c.Workers)
	return g, nil
}

// edgeWeights derives one deterministic weight per edge via the shared
// xrand.EdgeWeight derivation (seeded, topology-independent).
func edgeWeights(seed uint64, srcs, dsts []graph.VertexID) []float64 {
	ws := make([]float64, len(srcs))
	for i := range ws {
		ws[i] = xrand.EdgeWeight(seed, uint64(srcs[i]), uint64(dsts[i]))
	}
	return ws
}

// edge places edge i by the recursive quadrant walk. All randomness is a
// pure function of (seed, i, level), making generation deterministic and
// embarrassingly parallel.
func edge(c Config, i uint64) (graph.VertexID, graph.VertexID) {
	var u, v uint64
	a, b, cc := c.A, c.B, c.C
	for level := 0; level < c.Scale; level++ {
		r := xrand.Float64(xrand.Mix3(c.Seed, i, uint64(level)))
		// Noise: perturb quadrant probabilities smoothly per level.
		na, nb, nc := a, b, cc
		if c.Noise > 0 {
			mu := xrand.Float64(xrand.Mix4(c.Seed, i, uint64(level), 7))
			f := 1 + c.Noise*(2*mu-1)
			na, nb, nc = a*f, b*f, cc*f
			tot := na + nb + nc + (1 - a - b - cc)
			na, nb, nc = na/tot, nb/tot, nc/tot
		}
		u <<= 1
		v <<= 1
		switch {
		case r < na:
			// quadrant A: (0,0)
		case r < na+nb:
			v |= 1
		case r < na+nb+nc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return graph.VertexID(u), graph.VertexID(v)
}
