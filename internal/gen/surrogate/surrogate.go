// Package surrogate generates deterministic synthetic stand-ins for the
// five SNAP graphs of Table 1 (Amazon, Youtube, LiveJournal, Patents,
// Wikipedia). The real datasets cannot be downloaded in this offline
// environment, so each surrogate is generated with Datagen using a
// degree-distribution plugin matched to the graph's mean degree and
// shape, then rewired toward the published average clustering
// coefficient and assortativity sign (§2.2's planned extension, built in
// package rewire).
//
// Surrogates default to 1/DefaultScaleDiv of the published vertex count
// so the full benchmark matrix runs on a laptop; set the
// GRAPHALYTICS_SCALE_DIV environment variable (or the ScaleDiv field) to
// change the scale.
package surrogate

import (
	"fmt"
	"os"
	"strconv"

	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/gen/dist"
	"graphalytics/internal/gen/rewire"
	"graphalytics/internal/graph"
)

// Spec describes one Table 1 dataset and how to synthesize its surrogate.
type Spec struct {
	Name     string
	Vertices int     // published vertex count
	Edges    int64   // published edge count
	GlobalCC float64 // published global clustering coefficient
	AvgCC    float64 // published average clustering coefficient
	Asrt     float64 // published degree assortativity

	// zetaS picks the power-law exponent of the degree plugin (heavier
	// tails for web-like graphs); 0 means use a geometric plugin.
	zetaS float64
}

// Table1 lists the five datasets with the characteristics published in
// Table 1 of the paper.
var Table1 = []Spec{
	{Name: "amazon", Vertices: 300_000, Edges: 1_200_000, GlobalCC: 0.2361, AvgCC: 0.4198, Asrt: 0.0027, zetaS: 2.6},
	{Name: "youtube", Vertices: 1_100_000, Edges: 3_000_000, GlobalCC: 0.0062, AvgCC: 0.0808, Asrt: -0.0369, zetaS: 2.0},
	{Name: "livejournal", Vertices: 4_000_000, Edges: 35_000_000, GlobalCC: 0.1253, AvgCC: 0.2843, Asrt: 0.0452, zetaS: 2.2},
	{Name: "patents", Vertices: 3_800_000, Edges: 16_500_000, GlobalCC: 0.0671, AvgCC: 0.0757, Asrt: 0.1332, zetaS: 0},
	{Name: "wikipedia", Vertices: 2_400_000, Edges: 5_000_000, GlobalCC: 0.0022, AvgCC: 0.0526, Asrt: -0.0853, zetaS: 1.9},
}

// DefaultScaleDiv is the default downscale factor for surrogate sizes.
const DefaultScaleDiv = 64

// Options controls surrogate generation.
type Options struct {
	// ScaleDiv divides the published vertex count (0 reads the
	// GRAPHALYTICS_SCALE_DIV environment variable, falling back to
	// DefaultScaleDiv).
	ScaleDiv int
	// Seed for the generator (0 selects a fixed default).
	Seed uint64
	// Rewire enables the hill-climbing pass toward the published AvgCC
	// and assortativity sign. Costs extra time; benchmark graphs enable
	// it, unit tests may not.
	Rewire bool
	// MaxSwaps bounds rewiring work (0 = package default).
	MaxSwaps int
}

// ScaleDiv resolves the effective downscale factor.
func (o Options) scaleDiv() int {
	if o.ScaleDiv > 0 {
		return o.ScaleDiv
	}
	if env := os.Getenv("GRAPHALYTICS_SCALE_DIV"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v > 0 {
			return v
		}
	}
	return DefaultScaleDiv
}

// Find returns the Spec with the given name.
func Find(name string) (Spec, error) {
	for _, s := range Table1 {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("surrogate: unknown dataset %q", name)
}

// Stamp returns the canonical parameter string for content-addressed
// dataset fingerprints: the spec identity and every option that changes
// the output, with the scale divisor and seed resolved first so the
// environment-variable and explicit forms stamp equal.
func Stamp(spec Spec, opts Options) string {
	seed := opts.Seed
	if seed == 0 {
		seed = 0x6a1ba1 + uint64(len(spec.Name))
	}
	return fmt.Sprintf("name=%s,v=%d,e=%d,zeta=%g,div=%d,seed=%d,rewire=%t,swaps=%d",
		spec.Name, spec.Vertices, spec.Edges, spec.zetaS,
		opts.scaleDiv(), seed, opts.Rewire, opts.MaxSwaps)
}

// Generate synthesizes the surrogate for spec under opts.
func Generate(spec Spec, opts Options) (*graph.Graph, error) {
	div := opts.scaleDiv()
	seed := opts.Seed
	if seed == 0 {
		seed = 0x6a1ba1 + uint64(len(spec.Name))
	}
	n := spec.Vertices / div
	if n < 64 {
		n = 64
	}
	meanDeg := 2 * float64(spec.Edges) / float64(spec.Vertices)

	var dd dist.Distribution
	var err error
	if spec.zetaS > 0 {
		// Power-law plugin with the exponent solved so that the truncated
		// mean matches the published mean degree (heavy tail like the
		// spec's family, correct density).
		dd, err = zetaWithMean(meanDeg)
	} else {
		dd, err = dist.NewGeometric(1/meanDeg, 0)
	}
	if err != nil {
		return nil, err
	}

	g, err := datagen.Generate(datagen.Config{
		Persons: n,
		Seed:    seed,
		Degrees: dd,
		Name:    spec.Name,
	})
	if err != nil {
		return nil, err
	}
	if !opts.Rewire {
		return g, nil
	}
	res, err := rewire.Rewire(g, rewire.Target{
		AvgCC:         spec.AvgCC,
		Assortativity: spec.Asrt,
		Seed:          seed + 1,
		MaxSwaps:      opts.MaxSwaps,
	})
	if err != nil {
		return nil, err
	}
	res.Graph.SetName(spec.Name)
	return res.Graph, nil
}

// zetaWithMean solves for the exponent s of a cutoff-truncated Zeta
// whose mean equals want, by bisection (the truncated mean is strictly
// decreasing in s).
func zetaWithMean(want float64) (dist.Distribution, error) {
	const cutoff = 2048
	lo, hi := 1.05, 8.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		z, err := dist.NewZeta(mid, cutoff)
		if err != nil {
			return nil, err
		}
		if z.Mean() > want {
			lo = mid
		} else {
			hi = mid
		}
	}
	return dist.NewZeta((lo+hi)/2, cutoff)
}
