package surrogate

import (
	"math"
	"testing"

	"graphalytics/internal/graph/gmetrics"
)

func TestFind(t *testing.T) {
	s, err := Find("patents")
	if err != nil {
		t.Fatal(err)
	}
	if s.Vertices != 3_800_000 {
		t.Errorf("patents vertices = %d", s.Vertices)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestTable1Complete(t *testing.T) {
	if len(Table1) != 5 {
		t.Fatalf("Table1 has %d entries, want 5", len(Table1))
	}
	names := map[string]bool{}
	for _, s := range Table1 {
		names[s.Name] = true
		if s.Vertices <= 0 || s.Edges <= 0 {
			t.Errorf("%s: bad size", s.Name)
		}
	}
	for _, want := range []string{"amazon", "youtube", "livejournal", "patents", "wikipedia"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestGenerateScaledSize(t *testing.T) {
	spec, _ := Find("amazon")
	g, err := Generate(spec, Options{ScaleDiv: 64})
	if err != nil {
		t.Fatal(err)
	}
	wantN := spec.Vertices / 64
	if g.NumVertices() != wantN {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), wantN)
	}
	// Mean degree should be in the ballpark of the published one.
	wantDeg := 2 * float64(spec.Edges) / float64(spec.Vertices)
	gotDeg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if gotDeg < wantDeg/3 || gotDeg > wantDeg*3 {
		t.Errorf("mean degree %.2f, published %.2f", gotDeg, wantDeg)
	}
}

func TestGenerateWithRewireApproachesTargets(t *testing.T) {
	spec, _ := Find("amazon") // highest AvgCC target: rewiring must raise it
	plain, err := Generate(spec, Options{ScaleDiv: 256})
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := Generate(spec, Options{ScaleDiv: 256, Rewire: true, MaxSwaps: 40000})
	if err != nil {
		t.Fatal(err)
	}
	ccPlain := gmetrics.Measure(plain).AvgCC
	ccRewired := gmetrics.Measure(rewired).AvgCC
	distPlain := math.Abs(ccPlain - spec.AvgCC)
	distRewired := math.Abs(ccRewired - spec.AvgCC)
	if distRewired >= distPlain {
		t.Errorf("rewiring did not approach target CC %.3f: %.3f -> %.3f",
			spec.AvgCC, ccPlain, ccRewired)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := Find("wikipedia")
	a, err := Generate(spec, Options{ScaleDiv: 256})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, Options{ScaleDiv: 256})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumArcs() != b.NumArcs() || a.NumVertices() != b.NumVertices() {
		t.Fatal("surrogate generation is not deterministic")
	}
}

func TestScaleDivEnvOverride(t *testing.T) {
	t.Setenv("GRAPHALYTICS_SCALE_DIV", "128")
	var o Options
	if got := o.scaleDiv(); got != 128 {
		t.Errorf("scaleDiv = %d, want 128 from env", got)
	}
	t.Setenv("GRAPHALYTICS_SCALE_DIV", "bogus")
	if got := o.scaleDiv(); got != DefaultScaleDiv {
		t.Errorf("scaleDiv = %d, want default on bogus env", got)
	}
	o.ScaleDiv = 32
	if got := o.scaleDiv(); got != 32 {
		t.Errorf("explicit ScaleDiv should win, got %d", got)
	}
}
