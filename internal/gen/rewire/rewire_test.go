package rewire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph/gmetrics"
	"graphalytics/internal/xrand"
)

func testGraph(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRewireRejectsDirected(t *testing.T) {
	b := graph.NewBuilder(graph.Directed(true), graph.WithReverse())
	b.AddEdgeID(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rewire(g, Target{AvgCC: 0.1}); err != ErrNotUndirected {
		t.Fatalf("err = %v, want ErrNotUndirected", err)
	}
}

func TestRewirePreservesDegreeSequence(t *testing.T) {
	g := testGraph(t, 800, 3)
	res, err := Rewire(g, Target{AvgCC: 0.3, MaxSwaps: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(DegreeSequence(g), DegreeSequence(res.Graph)) {
		t.Fatal("rewiring changed the degree sequence")
	}
	if res.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), res.Graph.NumEdges())
	}
}

func TestRewireRaisesClustering(t *testing.T) {
	g := testGraph(t, 600, 5)
	before := gmetrics.Measure(g).AvgCC
	target := before + 0.15
	res, err := Rewire(g, Target{AvgCC: target, MaxSwaps: 60000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	after := gmetrics.Measure(res.Graph).AvgCC
	if after <= before+0.05 {
		t.Errorf("avg CC barely moved: %.4f -> %.4f (target %.4f)", before, after, target)
	}
	// The incrementally tracked value must match a from-scratch recompute.
	if math.Abs(res.AvgCC-after) > 1e-9 {
		t.Errorf("tracked avgCC %.6f != recomputed %.6f", res.AvgCC, after)
	}
}

func TestRewireLowersClustering(t *testing.T) {
	g := testGraph(t, 600, 7)
	before := gmetrics.Measure(g).AvgCC
	if before < 0.02 {
		t.Skip("generator produced too little clustering to lower")
	}
	res, err := Rewire(g, Target{AvgCC: 0, MaxSwaps: 60000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	after := gmetrics.Measure(res.Graph).AvgCC
	if after >= before {
		t.Errorf("avg CC did not drop: %.4f -> %.4f", before, after)
	}
}

func TestRewireAssortativitySign(t *testing.T) {
	g := testGraph(t, 600, 9)
	res, err := Rewire(g, Target{AvgCC: -1, Assortativity: 0.3, MaxSwaps: 60000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := gmetrics.Assortativity(res.Graph)
	if got <= gmetrics.Assortativity(g) {
		t.Errorf("assortativity did not increase: %.4f -> %.4f", gmetrics.Assortativity(g), got)
	}
	if math.Abs(res.Assortativity-got) > 1e-9 {
		t.Errorf("tracked assortativity %.6f != recomputed %.6f", res.Assortativity, got)
	}
}

func TestRewireTracksTrianglesExactly(t *testing.T) {
	// After an arbitrary number of swaps, the incremental LCC must equal
	// a from-scratch computation — this exercises the local triangle
	// delta logic on many random swaps.
	g := testGraph(t, 300, 11)
	res, err := Rewire(g, Target{AvgCC: 0.5, MaxSwaps: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := gmetrics.Measure(res.Graph).AvgCC
	if math.Abs(res.AvgCC-want) > 1e-9 {
		t.Fatalf("incremental avgCC %.9f != recomputed %.9f", res.AvgCC, want)
	}
}

func TestRewireDeterministic(t *testing.T) {
	g := testGraph(t, 400, 13)
	r1, err := Rewire(g, Target{AvgCC: 0.3, MaxSwaps: 3000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Rewire(g, Target{AvgCC: 0.3, MaxSwaps: 3000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r1.SwapsAccepted != r2.SwapsAccepted || r1.AvgCC != r2.AvgCC {
		t.Fatal("rewiring is not deterministic for equal seeds")
	}
}

func TestRewireConvergedFlag(t *testing.T) {
	g := testGraph(t, 300, 15)
	cur := gmetrics.Measure(g).AvgCC
	res, err := Rewire(g, Target{AvgCC: cur, AvgCCTolerance: 0.05, MaxSwaps: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("already-on-target graph should converge immediately")
	}
	if res.SwapsAccepted != 0 {
		t.Errorf("no swaps should be needed, got %d", res.SwapsAccepted)
	}
}

// Property: any rewiring run preserves the degree sequence and keeps the
// graph simple (no loops, no duplicate edges).
func TestQuickRewireInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := datagen.Generate(datagen.Config{Persons: 150, Seed: seed%1000 + 2})
		if err != nil {
			return false
		}
		res, err := Rewire(g, Target{AvgCC: xrand.Float64(seed) * 0.5, MaxSwaps: 800, Seed: seed})
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(DegreeSequence(g), DegreeSequence(res.Graph)) {
			return false
		}
		ok := true
		res.Graph.Arcs(func(u, v graph.VertexID) {
			if u == v {
				ok = false
			}
		})
		return ok && res.Graph.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
