// Package rewire implements the graph post-processing step the paper
// plans for Datagen (§2.2): "extend the current windowed based edge
// generation process ... to allow the generation of graphs with a target
// average clustering coefficient, but also to decide whether the
// assortativity is positive or negative, while preserving the degree
// distribution ... a post processing step where the graph is iteratively
// rewired until the desired values are achieved, in a hill climbing
// fashion" (cf. Herrera & Zufiria 2011; Volz 2004).
//
// The rewirer performs degree-preserving double-edge swaps
// (a,b),(c,d) → (a,d),(c,b) and accepts a swap when it reduces the
// objective |avgCC − target| (+ an assortativity penalty). Because swaps
// preserve every vertex degree, the LCC denominators and the
// assortativity moments are constant; only per-vertex triangle counts
// (O(degree) local updates) and the Σ deg(u)·deg(v) edge term (O(1))
// change, which makes hill climbing cheap.
package rewire

import (
	"errors"
	"math"
	"sort"

	"graphalytics/internal/graph"
	"graphalytics/internal/xrand"
)

// Target describes the desired structural characteristics.
type Target struct {
	// AvgCC is the desired average local clustering coefficient.
	// Set to a negative value to leave clustering unconstrained.
	AvgCC float64
	// AvgCCTolerance stops the search when |avgCC - AvgCC| falls below
	// it (default 0.005).
	AvgCCTolerance float64
	// Assortativity selects the desired sign: >0 drives positive
	// assortativity, <0 negative, 0 unconstrained. The magnitude sets
	// the target value.
	Assortativity float64
	// MaxSwaps bounds the number of attempted swaps (default 50×edges).
	MaxSwaps int
	// Seed drives candidate selection.
	Seed uint64
}

// Result reports the outcome of a rewiring run.
type Result struct {
	Graph          *graph.Graph
	SwapsAttempted int
	SwapsAccepted  int
	AvgCC          float64
	Assortativity  float64
	Converged      bool
}

// ErrNotUndirected is returned when the input graph is directed.
var ErrNotUndirected = errors.New("rewire: input graph must be undirected")

// Rewire hill-climbs g (undirected) toward the target and returns the
// rewired graph. The input graph is not modified.
func Rewire(g *graph.Graph, target Target) (Result, error) {
	if g.Directed() {
		return Result{}, ErrNotUndirected
	}
	if target.AvgCCTolerance <= 0 {
		target.AvgCCTolerance = 0.005
	}
	st := newState(g, target.Seed)
	if target.MaxSwaps <= 0 {
		target.MaxSwaps = 50 * len(st.edges)
	}

	res := Result{}
	for res.SwapsAttempted = 0; res.SwapsAttempted < target.MaxSwaps; res.SwapsAttempted++ {
		if st.objective(target) <= st.tolerance(target) {
			res.Converged = true
			break
		}
		if st.trySwap(target) {
			res.SwapsAccepted++
		}
	}
	res.Graph = st.build(g)
	res.AvgCC = st.avgCC()
	res.Assortativity = st.assortativity()
	if st.objective(target) <= st.tolerance(target) {
		res.Converged = true
	}
	return res, nil
}

// state holds the mutable adjacency and the incrementally maintained
// statistics during rewiring.
type state struct {
	n      int
	adj    []map[graph.VertexID]struct{}
	edges  [][2]graph.VertexID // one entry per undirected edge
	eindex map[[2]graph.VertexID]int
	deg    []int   // constant throughout
	tri    []int64 // triangles per vertex
	rng    *xrand.Rand

	// Assortativity moments over arcs (2 per edge). Only sumXY changes.
	sumXY   float64
	sumX    float64
	sumX2   float64
	arcs    float64
	ccDenom []float64 // 1 / (d(d-1)/2) per vertex, 0 if d < 2
	sumLCC  float64
}

func newState(g *graph.Graph, seed uint64) *state {
	n := g.NumVertices()
	st := &state{
		n:   n,
		adj: make([]map[graph.VertexID]struct{}, n),
		deg: make([]int, n),
		tri: make([]int64, n),
		rng: xrand.New(seed, 0x5e1f),
	}
	for v := 0; v < n; v++ {
		st.adj[v] = make(map[graph.VertexID]struct{})
	}
	st.eindex = make(map[[2]graph.VertexID]int)
	g.Edges(func(u, v graph.VertexID) {
		if u == v {
			return
		}
		if _, dup := st.adj[u][v]; dup {
			return
		}
		st.adj[u][v] = struct{}{}
		st.adj[v][u] = struct{}{}
		st.eindex[canonEdge(u, v)] = len(st.edges)
		st.edges = append(st.edges, [2]graph.VertexID{u, v})
	})
	for v := 0; v < n; v++ {
		st.deg[v] = len(st.adj[v])
	}
	// Triangle counts.
	for _, e := range st.edges {
		u, v := e[0], e[1]
		c := st.commonNeighbors(u, v)
		// Each common neighbor w closes one triangle (u,v,w): credit all
		// three corners once per edge; dividing by edge multiplicity is
		// handled by crediting only via the (u,v) edge here — each
		// triangle has 3 edges, so each corner is credited 3 times in
		// total across its triangle's edges. Normalize afterwards.
		st.tri[u] += int64(c)
		st.tri[v] += int64(c)
		for _, w := range st.commonList(u, v) {
			st.tri[w]++
		}
	}
	// Each triangle was counted once per its 3 edges at every corner it
	// touches: corner u of triangle (u,v,w) is credited by edges (u,v),
	// (u,w) [as endpoint] and (v,w) [as common neighbor] = 3 times.
	for v := range st.tri {
		st.tri[v] /= 3
	}

	st.ccDenom = make([]float64, n)
	for v := 0; v < n; v++ {
		d := float64(st.deg[v])
		if d >= 2 {
			st.ccDenom[v] = 2 / (d * (d - 1))
		}
		st.sumLCC += float64(st.tri[v]) * st.ccDenom[v]
	}
	for _, e := range st.edges {
		dx, dy := float64(st.deg[e[0]]), float64(st.deg[e[1]])
		st.sumXY += 2 * dx * dy
		st.sumX += dx + dy
		st.sumX2 += dx*dx + dy*dy
		st.arcs += 2
	}
	return st
}

func (st *state) commonNeighbors(u, v graph.VertexID) int {
	a, b := st.adj[u], st.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	c := 0
	for w := range a {
		if w == u || w == v {
			continue
		}
		if _, ok := b[w]; ok {
			c++
		}
	}
	return c
}

// commonList returns the common neighbors of u and v in ascending order.
// Sorting matters: the callers accumulate floating-point sums per
// element, and map iteration order would otherwise make rounding — and
// therefore hill-climbing accept decisions — nondeterministic.
func (st *state) commonList(u, v graph.VertexID) []graph.VertexID {
	a, b := st.adj[u], st.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []graph.VertexID
	for w := range a {
		if w == u || w == v {
			continue
		}
		if _, ok := b[w]; ok {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (st *state) avgCC() float64 {
	if st.n == 0 {
		return 0
	}
	return st.sumLCC / float64(st.n)
}

func (st *state) assortativity() float64 {
	if st.arcs == 0 {
		return 0
	}
	m := st.arcs
	mean := st.sumX / m
	varX := st.sumX2/m - mean*mean
	if varX <= 0 {
		return 0
	}
	return (st.sumXY/m - mean*mean) / varX
}

func (st *state) objective(t Target) float64 {
	obj := 0.0
	if t.AvgCC >= 0 {
		obj += math.Abs(st.avgCC() - t.AvgCC)
	}
	if t.Assortativity != 0 {
		obj += 0.5 * math.Abs(st.assortativity()-t.Assortativity)
	}
	return obj
}

func (st *state) tolerance(t Target) float64 {
	tol := 0.0
	if t.AvgCC >= 0 {
		tol += t.AvgCCTolerance
	}
	if t.Assortativity != 0 {
		tol += 0.02
	}
	return tol
}

// trySwap proposes a degree-preserving double-edge swap (a,b),(c,d) →
// (a,d),(c,b), applies it if the objective improves, and reports whether
// it was accepted. When clustering must increase, half the proposals are
// triangle-closing (Herrera & Zufiria style): they pick two neighbors of
// a common vertex and wire them together, which random proposals almost
// never achieve on sparse graphs.
func (st *state) trySwap(t Target) bool {
	if len(st.edges) < 2 {
		return false
	}
	var i, j int
	var a, b, c, d graph.VertexID
	var ok bool
	if t.AvgCC >= 0 && st.avgCC() < t.AvgCC && st.rng.Intn(2) == 0 {
		i, j, a, b, c, d, ok = st.proposeTriangle()
	} else {
		i, j, a, b, c, d, ok = st.proposeRandom()
	}
	if !ok {
		return false
	}
	before := st.objective(t)
	st.applySwap(i, j, a, b, c, d)
	if st.objective(t) < before {
		return true
	}
	// Revert: swap back. The reverse swap is (a,d),(c,b) → (a,b),(c,d).
	st.applySwap(i, j, a, d, c, b)
	return false
}

// proposeRandom picks two independent random edges.
func (st *state) proposeRandom() (i, j int, a, b, c, d graph.VertexID, ok bool) {
	i = st.rng.Intn(len(st.edges))
	j = st.rng.Intn(len(st.edges))
	if i == j {
		return
	}
	a, b = st.edges[i][0], st.edges[i][1]
	c, d = st.edges[j][0], st.edges[j][1]
	// Optionally flip edge j's orientation to explore both pairings.
	if st.rng.Intn(2) == 1 {
		c, d = d, c
	}
	if a == c || a == d || b == c || b == d {
		return
	}
	if _, exists := st.adj[a][d]; exists {
		return
	}
	if _, exists := st.adj[c][b]; exists {
		return
	}
	return i, j, a, b, c, d, true
}

// proposeTriangle picks a wedge u–w–v and proposes the swap that creates
// the closing edge (u,v): remove (u,x) and (y,v), add (u,v) and (y,x).
func (st *state) proposeTriangle() (i, j int, a, b, c, d graph.VertexID, ok bool) {
	// A random edge gives the wedge center w and one endpoint u.
	e := st.edges[st.rng.Intn(len(st.edges))]
	w, u := e[0], e[1]
	if st.rng.Intn(2) == 1 {
		w, u = u, w
	}
	wn := st.sortedNeighbors(w)
	if len(wn) < 2 {
		return
	}
	v := wn[st.rng.Intn(len(wn))]
	if v == u || v == w {
		return
	}
	if _, exists := st.adj[u][v]; exists {
		return
	}
	un := st.sortedNeighbors(u)
	x := un[st.rng.Intn(len(un))]
	if x == v || x == w || x == u {
		return
	}
	vn := st.sortedNeighbors(v)
	y := vn[st.rng.Intn(len(vn))]
	if y == u || y == x || y == w || y == v {
		return
	}
	if _, exists := st.adj[y][x]; exists {
		return
	}
	// Swap (u,x),(y,v) -> (u,v),(y,x).
	i, iok := st.eindex[canonEdge(u, x)]
	j, jok := st.eindex[canonEdge(y, v)]
	if !iok || !jok || i == j {
		return
	}
	return i, j, u, x, y, v, true
}

// sortedNeighbors returns v's neighbors in ascending order (map
// iteration order would break determinism).
func (st *state) sortedNeighbors(v graph.VertexID) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(st.adj[v]))
	for u := range st.adj[v] {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func canonEdge(u, v graph.VertexID) [2]graph.VertexID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.VertexID{u, v}
}

// applySwap removes edges (a,b),(c,d) and inserts (a,d),(c,b), updating
// edge slots i and j and all incremental statistics.
func (st *state) applySwap(i, j int, a, b, c, d graph.VertexID) {
	st.removeEdgeStats(a, b)
	st.removeEdgeStats(c, d)
	delete(st.adj[a], b)
	delete(st.adj[b], a)
	delete(st.adj[c], d)
	delete(st.adj[d], c)
	st.adj[a][d] = struct{}{}
	st.adj[d][a] = struct{}{}
	st.adj[c][b] = struct{}{}
	st.adj[b][c] = struct{}{}
	st.addEdgeStats(a, d)
	st.addEdgeStats(c, b)
	delete(st.eindex, canonEdge(a, b))
	delete(st.eindex, canonEdge(c, d))
	st.edges[i] = [2]graph.VertexID{a, d}
	st.edges[j] = [2]graph.VertexID{c, b}
	st.eindex[canonEdge(a, d)] = i
	st.eindex[canonEdge(c, b)] = j
	// Degree-dependent assortativity moments: only the cross term moves.
	da, db := float64(st.deg[a]), float64(st.deg[b])
	dc, dd := float64(st.deg[c]), float64(st.deg[d])
	st.sumXY += 2 * (da*dd + dc*db - da*db - dc*dd)
}

// removeEdgeStats updates triangle counts and ΣLCC for removing edge
// (u,v). Must be called while (u,v) is still present in adj.
func (st *state) removeEdgeStats(u, v graph.VertexID) {
	for _, w := range st.commonList(u, v) {
		st.bumpTri(w, -1)
		st.bumpTri(u, -1)
		st.bumpTri(v, -1)
	}
}

// addEdgeStats updates triangle counts for inserting edge (u,v). Must be
// called after (u,v) was inserted into adj.
func (st *state) addEdgeStats(u, v graph.VertexID) {
	for _, w := range st.commonList(u, v) {
		st.bumpTri(w, +1)
		st.bumpTri(u, +1)
		st.bumpTri(v, +1)
	}
}

func (st *state) bumpTri(v graph.VertexID, delta int64) {
	st.sumLCC -= float64(st.tri[v]) * st.ccDenom[v]
	st.tri[v] += delta
	st.sumLCC += float64(st.tri[v]) * st.ccDenom[v]
}

// build materializes the rewired adjacency as a new undirected graph.
func (st *state) build(orig *graph.Graph) *graph.Graph {
	srcs := make([]graph.VertexID, 0, len(st.edges))
	dsts := make([]graph.VertexID, 0, len(st.edges))
	for _, e := range st.edges {
		srcs = append(srcs, e[0])
		dsts = append(dsts, e[1])
	}
	g := graph.FromArcs(orig.Name(), st.n, srcs, dsts, false)
	return g
}

// DegreeSequence returns the sorted degree sequence of an undirected
// graph; tests use it to verify rewiring preserves degrees.
func DegreeSequence(g *graph.Graph) []int {
	out := make([]int, g.NumVertices())
	for v := range out {
		out[v] = g.OutDegree(graph.VertexID(v))
	}
	sort.Ints(out)
	return out
}
