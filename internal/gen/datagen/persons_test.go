package datagen

import (
	"strings"
	"testing"

	"graphalytics/internal/graph"
)

func TestPersonsDeterministicAndBounded(t *testing.T) {
	cfg := Config{Persons: 1000, Seed: 5}
	a, err := Persons(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Persons(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1000 {
		t.Fatalf("persons = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("person table not deterministic")
		}
		if a[i].Degree < 1 {
			t.Fatalf("person %d target degree %d", i, a[i].Degree)
		}
	}
	if _, err := Persons(Config{Persons: 1}); err == nil {
		t.Error("Persons(1) should fail")
	}
}

func TestPersonsAttributesSpread(t *testing.T) {
	persons, err := Persons(Config{Persons: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	unis := map[uint32]bool{}
	interests := map[uint32]bool{}
	for _, p := range persons {
		unis[p.University] = true
		interests[p.Interest] = true
	}
	if len(unis) < 10 || len(interests) < 5 {
		t.Errorf("attributes not spread: %d universities, %d interests", len(unis), len(interests))
	}
}

func TestWritePersonsCSV(t *testing.T) {
	persons, err := Persons(Config{Persons: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WritePersons(&sb, persons); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 51 {
		t.Fatalf("CSV lines = %d, want header + 50", len(lines))
	}
	if lines[0] != "id|university|interest|targetDegree" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0|") {
		t.Errorf("first row = %q", lines[1])
	}
}

// The attribute table must agree with the graph the generator builds:
// persons in the same university-window are more likely to be connected,
// so sampling edges should find many university-homophilous pairs.
func TestPersonsConsistentWithEdges(t *testing.T) {
	cfg := Config{Persons: 3000, Seed: 11}
	persons, err := Persons(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same, total := 0, 0
	g.Edges(func(u, v graph.VertexID) {
		total++
		if persons[u].University == persons[v].University {
			same++
		}
	})
	frac := float64(same) / float64(total)
	// Random pairing would give ~1/universities ≈ 2%; correlated
	// windowed generation gives far more.
	if frac < 0.10 {
		t.Errorf("university homophily %.3f; correlated generation should exceed 0.10", frac)
	}
}
