package datagen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ClusterSim models the two deployment targets of the Figure 3
// scalability experiment:
//
//   - the "Single" machine: one node with many cores and one disk;
//   - the "Cluster": several nodes, each with fewer cores but its own
//     disk, plus a per-job startup overhead (Hadoop job launch).
//
// Generation CPU work is real (the datagen passes run for the node's
// share of the blocks); disk I/O is simulated with a token-bucket
// bandwidth model per node, because this environment has no 2 TB HDDs to
// saturate. The crossover the paper reports — single node wins while
// generation is CPU-bound, the cluster wins once it becomes I/O-bound —
// is produced by exactly the two forces the paper names: aggregate disk
// bandwidth versus startup overhead and per-node CPU.
type ClusterSim struct {
	// Nodes is the number of machines (1 = the single-machine target).
	Nodes int
	// CoresPerNode bounds generation workers per node.
	CoresPerNode int
	// DiskMBps is the simulated sustained write bandwidth per node disk.
	DiskMBps float64
	// StartupOverhead is paid once per node (job scheduling, JVM spin-up
	// in the original; a fixed cost here).
	StartupOverhead time.Duration
	// BytesPerEdge is the on-disk edge record size (default 16: two
	// decimal IDs plus separators, roughly the TSV the original writes).
	BytesPerEdge int
}

// SimResult reports one scalability measurement (one point of Figure 3).
type SimResult struct {
	Persons   int
	Edges     int64
	Bytes     int64
	Elapsed   time.Duration
	Nodes     int
	IOLimited bool // true if the disk model added wait time
}

// Run generates cfg's graph under the simulated deployment and returns
// timing. The person range is partitioned across nodes; each node runs
// the real generator for its share and pushes the edges through its
// disk-bandwidth model.
func (s ClusterSim) Run(cfg Config) (SimResult, error) {
	if s.Nodes <= 0 {
		s.Nodes = 1
	}
	if s.CoresPerNode <= 0 {
		s.CoresPerNode = 1
	}
	if s.BytesPerEdge <= 0 {
		s.BytesPerEdge = 16
	}
	c := cfg.withDefaults()
	if c.Persons <= 1 {
		return SimResult{}, fmt.Errorf("datagen: need at least 2 persons, got %d", c.Persons)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var totalEdges, totalBytes atomic.Int64
	var ioLimited atomic.Bool
	errs := make([]error, s.Nodes)

	perNode := (c.Persons + s.Nodes - 1) / s.Nodes
	for node := 0; node < s.Nodes; node++ {
		lo := node * perNode
		hi := lo + perNode
		if hi > c.Persons {
			hi = c.Persons
		}
		if hi-lo < 2 {
			continue
		}
		wg.Add(1)
		go func(node, lo, hi int) {
			defer wg.Done()
			// Per-node job startup.
			if s.StartupOverhead > 0 {
				time.Sleep(s.StartupOverhead)
			}
			nodeCfg := c
			nodeCfg.Persons = hi - lo
			// Offset the seed per node so person attributes differ per
			// shard, mirroring how the Hadoop Datagen assigns disjoint
			// person ranges to reducers.
			nodeCfg.Seed = c.Seed + uint64(node)*0x9e37
			nodeCfg.Workers = s.CoresPerNode

			disk := newDiskModel(s.DiskMBps)
			var edges, bytes int64
			var mu sync.Mutex
			_, err := GenerateEdges(nodeCfg, func(u, v uint32) {
				mu.Lock()
				edges++
				bytes += int64(s.BytesPerEdge)
				mu.Unlock()
				disk.write(int64(s.BytesPerEdge))
			})
			if err != nil {
				errs[node] = err
				return
			}
			if disk.waited() {
				ioLimited.Store(true)
			}
			disk.drain()
			totalEdges.Add(edges)
			totalBytes.Add(bytes)
		}(node, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return SimResult{}, err
		}
	}
	return SimResult{
		Persons:   c.Persons,
		Edges:     totalEdges.Load(),
		Bytes:     totalBytes.Load(),
		Elapsed:   time.Since(start),
		Nodes:     s.Nodes,
		IOLimited: ioLimited.Load(),
	}, nil
}

// diskModel is a token-bucket write-bandwidth limiter. Writes accumulate
// a byte debt; whenever the debt implies more time than has elapsed, the
// writer sleeps the difference. Zero bandwidth disables the model.
type diskModel struct {
	mbps    float64
	start   time.Time
	mu      sync.Mutex
	written int64
	slept   bool
}

func newDiskModel(mbps float64) *diskModel {
	return &diskModel{mbps: mbps, start: time.Now()}
}

func (d *diskModel) write(n int64) {
	if d.mbps <= 0 {
		return
	}
	d.mu.Lock()
	d.written += n
	need := time.Duration(float64(d.written) / (d.mbps * 1e6) * float64(time.Second))
	elapsed := time.Since(d.start)
	d.mu.Unlock()
	if need > elapsed {
		// Sleep in coarse steps to avoid timer spam on tiny writes.
		if need-elapsed > time.Millisecond {
			d.slept = true
			time.Sleep(need - elapsed)
		}
	}
}

// drain blocks until all written bytes fit under the bandwidth budget.
func (d *diskModel) drain() {
	if d.mbps <= 0 {
		return
	}
	d.mu.Lock()
	need := time.Duration(float64(d.written) / (d.mbps * 1e6) * float64(time.Second))
	elapsed := time.Since(d.start)
	d.mu.Unlock()
	if need > elapsed {
		d.slept = true
		time.Sleep(need - elapsed)
	}
}

func (d *diskModel) waited() bool { return d.slept }
