package datagen

import (
	"testing"
	"time"

	"graphalytics/internal/gen/dist"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph/gmetrics"
	"graphalytics/internal/stats"
)

func TestGenerateBasic(t *testing.T) {
	g, err := Generate(Config{Persons: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d, want 2000", g.NumVertices())
	}
	if g.Directed() {
		t.Error("person-knows-person graph must be undirected")
	}
	if g.NumEdges() < 1000 {
		t.Errorf("suspiciously few edges: %d", g.NumEdges())
	}
	// No self loops.
	for v := 0; v < g.NumVertices(); v++ {
		if g.HasArc(graph.VertexID(v), graph.VertexID(v)) {
			t.Fatalf("self loop at %d", v)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Persons: 1}); err == nil {
		t.Error("Persons=1 should fail")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	cfgs := []Config{
		{Persons: 3000, Seed: 42, Workers: 1},
		{Persons: 3000, Seed: 42, Workers: 4},
		{Persons: 3000, Seed: 42, Workers: 16},
	}
	var ref *graph.Graph
	for i, cfg := range cfgs {
		g, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = g
			continue
		}
		if !sameGraph(ref, g) {
			t.Fatalf("worker count %d produced a different graph", cfg.Workers)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(Config{Persons: 1500, Seed: 1})
	b, _ := Generate(Config{Persons: 1500, Seed: 2})
	if sameGraph(a, b) {
		t.Error("different seeds produced identical graphs")
	}
}

func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		return false
	}
	same := true
	a.Arcs(func(u, v graph.VertexID) {
		if !b.HasArc(u, v) {
			same = false
		}
	})
	return same
}

// The Figure 1 claim: generated degree distributions track the plugged-in
// model. Verified with a KS test against the generating model.
func TestFigure1ZetaDegrees(t *testing.T) {
	z, err := dist.NewZeta(1.7, 100)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(Config{Persons: 20000, Seed: 5, Degrees: z})
	if err != nil {
		t.Fatal(err)
	}
	degs := gmetrics.Degrees(g)
	s, err := stats.NewSample(degs)
	if err != nil {
		t.Fatal(err)
	}
	ks := s.KSDistance(stats.NewZeta(1.7))
	if ks > 0.15 {
		t.Errorf("zeta degree KS = %v, want < 0.15", ks)
	}
}

func TestFigure1GeometricDegrees(t *testing.T) {
	gd, err := dist.NewGeometric(0.12, 100)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(Config{Persons: 20000, Seed: 6, Degrees: gd})
	if err != nil {
		t.Fatal(err)
	}
	degs := gmetrics.Degrees(g)
	s, err := stats.NewSample(degs)
	if err != nil {
		t.Fatal(err)
	}
	ks := s.KSDistance(stats.NewGeometric(0.12))
	if ks > 0.15 {
		t.Errorf("geometric degree KS = %v, want < 0.15", ks)
	}
}

// §2.2: "The current output of Datagen has an average clustering
// coefficient of about 0.1 with a negative degree assortativity" — the
// windowed correlated process must produce non-trivial clustering.
func TestCorrelatedStructureEmerges(t *testing.T) {
	g, err := Generate(Config{Persons: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c := gmetrics.Measure(g)
	if c.AvgCC < 0.01 {
		t.Errorf("avg CC = %v; windowed generation should create clustering", c.AvgCC)
	}
}

func TestGenerateEdgesMatchesGenerate(t *testing.T) {
	cfg := Config{Persons: 2000, Seed: 9}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	st, err := GenerateEdges(cfg, func(u, v uint32) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges != count {
		t.Fatalf("stats edges %d != sink calls %d", st.Edges, count)
	}
	// The stream keeps cross-pass duplicate pairs that CSR construction
	// removes, so streamed >= materialized but within a few percent.
	if st.Edges < g.NumEdges() {
		t.Fatalf("streamed %d edges < materialized %d", st.Edges, g.NumEdges())
	}
	if float64(st.Edges-g.NumEdges()) > 0.05*float64(g.NumEdges()) {
		t.Fatalf("streamed %d edges, materialized %d: >5%% duplicates", st.Edges, g.NumEdges())
	}
}

func TestClusterSimSingleVsCluster(t *testing.T) {
	cfg := Config{Persons: 4000, Seed: 11}
	single := ClusterSim{Nodes: 1, CoresPerNode: 4, DiskMBps: 0}
	res, err := single.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges == 0 || res.Bytes == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.IOLimited {
		t.Error("unlimited disk should not be IO limited")
	}

	cluster := ClusterSim{Nodes: 4, CoresPerNode: 2, DiskMBps: 0, StartupOverhead: 10 * time.Millisecond}
	cres, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Elapsed < 10*time.Millisecond {
		t.Errorf("cluster run did not pay startup overhead: %v", cres.Elapsed)
	}
	if cres.Nodes != 4 {
		t.Errorf("nodes = %d", cres.Nodes)
	}
}

func TestClusterSimIOBound(t *testing.T) {
	// Tiny bandwidth forces the disk model to throttle.
	cfg := Config{Persons: 3000, Seed: 13}
	sim := ClusterSim{Nodes: 1, CoresPerNode: 4, DiskMBps: 0.2}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IOLimited {
		t.Error("0.2 MB/s disk should be the bottleneck")
	}
	wantMin := time.Duration(float64(res.Bytes) / (0.2 * 1e6) * float64(time.Second))
	if res.Elapsed < wantMin/2 {
		t.Errorf("elapsed %v below bandwidth floor %v", res.Elapsed, wantMin)
	}
}

func TestSplitBudget(t *testing.T) {
	b := splitBudget(20, [3]float64{0.45, 0.45, 0.10})
	if b[0] != 9 || b[1] != 9 || b[2] != 2 {
		t.Errorf("splitBudget(20) = %v, want [9 9 2]", b)
	}
	total := int32(0)
	for _, x := range splitBudget(7, [3]float64{0.45, 0.45, 0.10}) {
		total += x
	}
	if total != 7 {
		t.Errorf("budget not conserved: %d", total)
	}
}

func TestDegreesBoundedByWindow(t *testing.T) {
	z, _ := dist.NewZeta(1.5, 100000) // heavy tail, must be capped
	g, err := Generate(Config{Persons: 2000, Seed: 3, Degrees: z, Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Realized degree can exceed the per-pass budget cap only via
	// incoming edges; it stays well below 3 windows' worth.
	if md := g.MaxDegree(); md > 150 {
		t.Errorf("max degree %d exceeds 3×window", md)
	}
}
