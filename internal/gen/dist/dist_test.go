package dist

import (
	"math"
	"testing"

	"graphalytics/internal/stats"
)

func TestZetaMatchesModel(t *testing.T) {
	d, err := NewZeta(1.7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "zeta" {
		t.Errorf("name = %q", d.Name())
	}
	// The quantile must invert the truncated, renormalized model CDF.
	model := stats.NewZeta(1.7)
	norm := model.CDF(200)
	for _, k := range []int{1, 2, 5, 10, 50} {
		u := model.CDF(k) / norm
		if got := d.Quantile(u - 1e-9); got != k {
			t.Errorf("Quantile(CDF(%d)) = %d", k, got)
		}
	}
}

func TestZetaRejectsInvalidExponent(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1} {
		if _, err := NewZeta(s, 0); err == nil {
			t.Errorf("NewZeta(%v) should fail", s)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	d, err := NewGeometric(0.12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Mean(); math.Abs(m-1/0.12) > 0.01 {
		t.Errorf("mean = %v, want %v", m, 1/0.12)
	}
	if _, err := NewGeometric(0, 0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NewGeometric(1.5, 0); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestQuantileEdges(t *testing.T) {
	d, err := NewGeometric(0.5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if q := d.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %d", q)
	}
	if q := d.Quantile(1); q != 64 {
		t.Errorf("Quantile(1) = %d", q)
	}
	prev := 0
	for u := 0.0; u < 1; u += 0.01 {
		q := d.Quantile(u)
		if q < prev {
			t.Fatalf("Quantile not monotone at u=%v: %d < %d", u, q, prev)
		}
		prev = q
	}
}

func TestSampleDeterministic(t *testing.T) {
	d, err := NewZeta(1.7, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if Sample(d, 42, i) != Sample(d, 42, i) {
			t.Fatal("Sample not deterministic")
		}
	}
	// Different streams must not all collapse to one value.
	seen := map[int]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Sample(d, 42, i)] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct degrees in 1000 samples", len(seen))
	}
}

func TestFacebookMeanSolved(t *testing.T) {
	for _, want := range []float64{30, 190} {
		d := NewFacebook(want)
		if d.Name() != "facebook" {
			t.Errorf("name = %q", d.Name())
		}
		if m := d.Mean(); math.Abs(m-want)/want > 0.05 {
			t.Errorf("facebook mean = %v, want ~%v", m, want)
		}
	}
	if d := NewFacebook(0); math.Abs(d.Mean()-190)/190 > 0.05 {
		t.Errorf("default facebook mean = %v, want ~190", d.Mean())
	}
}
