// Package dist provides the pluggable degree-distribution interface of
// the Datagen reimplementation (§2.2): "the user of the benchmark can
// configure the degree distribution". A Distribution is a sampleable,
// truncated discrete model built on the fitted families of
// internal/stats (Zeta, Geometric, discrete Weibull), exposed through a
// deterministic inverse-CDF sampler so that graph generation stays
// bit-identical across worker counts and runs.
package dist

import (
	"fmt"
	"math"
	"sort"

	"graphalytics/internal/stats"
	"graphalytics/internal/xrand"
)

// DefaultMaxDegree caps the support of distributions constructed with
// maxDegree = 0. Degree samples beyond any realistic window would be
// clamped by Datagen anyway; the cap keeps the inverse-CDF table small.
const DefaultMaxDegree = 1 << 16

// Distribution is a degree-distribution plugin: a discrete distribution
// over degrees {1, ..., max} with deterministic inverse-CDF sampling.
type Distribution interface {
	// Name identifies the plugin family ("zeta", "geometric", "facebook").
	Name() string
	// Mean returns the mean degree of the (truncated) distribution.
	Mean() float64
	// Quantile returns the smallest degree k with CDF(k) >= u, for
	// u in [0, 1).
	Quantile(u float64) int
}

// Sample draws the degree for stream element i deterministically from
// (seed, i), via SplitMix64 → uniform → inverse CDF. Equal inputs yield
// equal degrees on every platform and worker count.
func Sample(d Distribution, seed, i uint64) int {
	return d.Quantile(xrand.Float64(xrand.Mix2(seed, i)))
}

// table is a truncated discrete distribution materialized as a
// cumulative table: cdf[k-1] = P(X <= k) after renormalization to the
// support {1, ..., len(cdf)}.
type table struct {
	name string
	cdf  []float64
	mean float64
}

// newTable truncates model to {1, ..., max}, renormalizes, and
// precomputes the CDF and mean.
func newTable(name string, model stats.Model, max int) (*table, error) {
	if max <= 0 {
		max = DefaultMaxDegree
	}
	cdf := make([]float64, max)
	var cum, mean float64
	for k := 1; k <= max; k++ {
		p := model.PMF(k)
		cum += p
		mean += float64(k) * p
		cdf[k-1] = cum
	}
	if cum <= 0 || math.IsNaN(cum) {
		return nil, fmt.Errorf("dist: %s has no mass on {1..%d}", name, max)
	}
	for i := range cdf {
		cdf[i] /= cum
	}
	return &table{name: name, cdf: cdf, mean: mean / cum}, nil
}

// Name implements Distribution.
func (t *table) Name() string { return t.name }

// Mean implements Distribution.
func (t *table) Mean() float64 { return t.mean }

// Quantile implements Distribution.
func (t *table) Quantile(u float64) int {
	if u <= 0 {
		return 1
	}
	if u >= 1 {
		return len(t.cdf)
	}
	// Smallest index with cdf[idx] >= u; degree is idx+1.
	idx := sort.SearchFloat64s(t.cdf, u)
	if idx >= len(t.cdf) {
		idx = len(t.cdf) - 1
	}
	return idx + 1
}

// NewZeta returns the Zeta(s) power-law plugin truncated at maxDegree
// (0 = DefaultMaxDegree). Figure 1 uses s = 1.7. s must exceed 1.
func NewZeta(s float64, maxDegree int) (Distribution, error) {
	if s <= 1 {
		return nil, fmt.Errorf("dist: zeta exponent must exceed 1, got %v", s)
	}
	return newTable("zeta", stats.NewZeta(s), maxDegree)
}

// NewGeometric returns the Geometric(p) plugin truncated at maxDegree
// (0 = DefaultMaxDegree). Figure 1 uses p = 0.12. p must lie in (0, 1].
func NewGeometric(p float64, maxDegree int) (Distribution, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("dist: geometric parameter must lie in (0, 1], got %v", p)
	}
	return newTable("geometric", stats.NewGeometric(p), maxDegree)
}

// NewFacebook returns the Facebook-like default plugin Datagen ships
// with: a discrete Weibull body (the family fitted to measured Facebook
// friend counts) with its scale solved so the mean matches the requested
// mean degree. mean <= 0 selects the measured Facebook mean of ~190.
func NewFacebook(mean float64) Distribution {
	if mean <= 0 {
		mean = 190
	}
	// Shape 0.65 gives the heavy-but-not-power-law tail of the measured
	// distribution; bisect the scale q in (0, 1) to hit the target mean
	// (the truncated mean is strictly increasing in q).
	const beta = 0.65
	max := int(mean * 40)
	if max < 256 {
		max = 256
	}
	lo, hi := 0.0, 1.0
	var best *table
	for i := 0; i < 60; i++ {
		q := (lo + hi) / 2
		t, err := newTable("facebook", stats.NewWeibull(q, beta), max)
		if err != nil {
			// No mass only when q collapses to 0 or 1; tighten inward.
			lo = q / 2
			hi = (1 + hi) / 2
			continue
		}
		best = t
		if t.mean < mean {
			lo = q
		} else {
			hi = q
		}
	}
	return best
}
