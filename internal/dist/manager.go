package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"graphalytics/internal/artifact"
	"graphalytics/internal/core"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/report"
	"graphalytics/internal/stamp"
	"graphalytics/internal/telemetry"
)

// DefaultLeaseTimeout is how long a lease may go without progress
// before the manager re-leases its cell. Progress keepalives arrive
// every LeaseTimeout/4, so only a dead or wedged runner trips it.
const DefaultLeaseTimeout = 2 * time.Minute

// ManagerOptions configures a campaign manager.
type ManagerOptions struct {
	// Platforms maps platform names to the construction recipe shipped
	// in leases, so runners build engines identical to the manager's
	// configuration.
	Platforms map[string]PlatformSpec
	// Graphs holds the campaign datasets by name; the manager serves
	// their serialized form to runners that miss them in their local
	// caches.
	Graphs map[string]*graph.Graph
	// Artifacts, when non-nil, additionally serves platform ETL blobs
	// by fingerprint (the remote shared artifact store).
	Artifacts *artifact.Cache
	// LeaseTimeout is the progress deadline per lease (0 =
	// DefaultLeaseTimeout). A cell whose runner sends neither progress
	// nor a result within it is re-queued for another runner.
	LeaseTimeout time.Duration
	// Binary is the manager's binary/kernel version folded into leases
	// (defaults to stamp.BinaryVersion()); mismatched runners are
	// accepted with a warning, since the lease pins the fingerprint
	// identity either way.
	Binary string
}

// Manager is the distributed campaign manager: it implements
// core.CellExecutor as a remote lease pool. Pending cells queue until a
// connected runner with a free slot supports their platform; each lease
// carries the full cell recipe, and the runner streams progress
// keepalives and finally the finished report row back. A runner that
// dies (connection drop) or stalls (lease timeout) has its in-flight
// cells silently re-queued — cell-level idempotence is already
// guaranteed by the campaign's journal and stamp store, and exactly one
// result per cell ever reaches the report because completion is
// resolved per task, not per lease.
type Manager struct {
	opts ManagerOptions
	ln   net.Listener

	mu         sync.Mutex
	runners    map[*runnerConn]bool
	queue      []*task
	nextLease  uint64
	fpGraphs   map[string]*graph.Graph // fingerprint hex → dataset
	blobs      map[string][]byte       // fingerprint hex → serialized GALB
	closed     bool
	waitWarned bool
	stats      Stats
}

// Stats is a snapshot of the manager's lease accounting.
type Stats struct {
	// Runners is the number of currently connected runners.
	Runners int
	// Leases counts leases ever granted (including re-leases).
	Leases int
	// Releases counts cells re-queued after a runner died or stalled.
	Releases int
	// StaleResults counts results that arrived for a lease no longer
	// current (a zombie runner finishing after its lease timed out);
	// they are dropped, never double-recorded.
	StaleResults int
}

// task is one cell awaiting (or undergoing) remote execution.
type task struct {
	spec     core.CellSpec
	done     chan taskOutcome // buffered 1; receives exactly one outcome
	finished bool             // guarded by Manager.mu
}

type taskOutcome struct {
	r   report.RunResult
	err error
}

// runnerConn is the manager's view of one connected runner.
type runnerConn struct {
	fc        *frameConn
	name      string
	binary    string
	slots     int
	platforms map[string]bool
	leases    map[uint64]*leaseState // guarded by Manager.mu
	lastGraph string                 // graph fingerprint of the last lease (affinity)
	dropped   bool                   // guarded by Manager.mu
	// suspect marks a runner whose lease timed out without progress: it
	// receives no further leases until it sends another frame (which
	// proves the process is alive, not wedged). Without this, dataset
	// affinity would re-lease the starved cell straight back to the
	// silent runner, forever.
	suspect bool // guarded by Manager.mu
}

type leaseState struct {
	t     *task
	timer *time.Timer
}

// NewManager validates opts and returns an idle manager; call Serve to
// start accepting runners.
func NewManager(opts ManagerOptions) (*Manager, error) {
	if len(opts.Platforms) == 0 {
		return nil, errors.New("dist: manager needs at least one platform spec")
	}
	if len(opts.Graphs) == 0 {
		return nil, errors.New("dist: manager needs the campaign graphs")
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = DefaultLeaseTimeout
	}
	if opts.Binary == "" {
		opts.Binary = stamp.BinaryVersion()
	}
	return &Manager{
		opts:     opts,
		runners:  make(map[*runnerConn]bool),
		fpGraphs: make(map[string]*graph.Graph),
		blobs:    make(map[string][]byte),
	}, nil
}

// Serve starts listening for runner connections on addr.
func (m *Manager) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: manager listen: %w", err)
	}
	m.ln = ln
	slog.Info("dist: manager listening for runners", "addr", ln.Addr().String())
	go m.acceptLoop()
	return nil
}

// Addr returns the listening address (for tests binding port 0).
func (m *Manager) Addr() net.Addr { return m.ln.Addr() }

// StatsSnapshot returns the current lease accounting.
func (m *Manager) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Runners = len(m.runners)
	return s
}

// Close stops accepting runners, says goodbye to the connected ones,
// and fails any still-queued cells. Call it after the campaign ends.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := make([]*runnerConn, 0, len(m.runners))
	for rc := range m.runners {
		conns = append(conns, rc)
	}
	queued := m.queue
	m.queue = nil
	m.mu.Unlock()

	if m.ln != nil {
		m.ln.Close()
	}
	// The runner closes its side once it drains; closing here would race
	// its read of the bye and turn a graceful shutdown into a spurious
	// connection-lost error. The manager's read loop reaps the
	// connection when the runner hangs up.
	for _, rc := range conns {
		if err := rc.fc.send(&Msg{Type: TypeBye}); err != nil {
			rc.fc.Close()
		}
	}
	for _, t := range queued {
		m.complete(t, taskOutcome{err: errors.New("dist: manager closed with cell still queued")})
	}
	return nil
}

// ExecuteCell implements core.CellExecutor: it queues the cell for the
// lease pool and blocks until some runner delivers a result, the
// context is cancelled, or the manager closes. Runner death never
// surfaces as an error here — the cell is re-leased; only a
// runner-reported execution failure (or cancellation) propagates, so
// the campaign's retry policy sees the same error classes as local
// execution.
func (m *Manager) ExecuteCell(ctx context.Context, spec core.CellSpec) (report.RunResult, error) {
	t := &task{spec: spec, done: make(chan taskOutcome, 1)}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return report.RunResult{}, errors.New("dist: manager is closed")
	}
	if _, ok := m.opts.Graphs[spec.Graph]; !ok {
		m.mu.Unlock()
		return report.RunResult{}, fmt.Errorf("dist: manager has no dataset %q", spec.Graph)
	}
	m.fpGraphs[spec.GraphFP.String()] = m.opts.Graphs[spec.Graph]
	m.queue = append(m.queue, t)
	m.mu.Unlock()
	m.dispatch()

	select {
	case out := <-t.done:
		return out.r, out.err
	case <-ctx.Done():
		m.mu.Lock()
		t.finished = true
		for i, q := range m.queue {
			if q == t {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		return report.RunResult{}, ctx.Err()
	}
}

// complete delivers a task outcome exactly once. Callers must have
// marked t.finished under the lock (or be the only possible completer).
func (m *Manager) complete(t *task, out taskOutcome) {
	select {
	case t.done <- out:
	default:
	}
}

// acceptLoop admits runner connections until the listener closes.
func (m *Manager) acceptLoop() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		go m.handleRunner(conn)
	}
}

// handleRunner performs the hello exchange and then serves one runner
// until its connection breaks.
func (m *Manager) handleRunner(conn net.Conn) {
	fc := newFrameConn(conn)
	hello, _, err := fc.recv()
	if err != nil || hello.Type != TypeHello {
		_ = fc.send(&Msg{Type: TypeError, Err: "expected hello"})
		fc.Close()
		return
	}
	if hello.Version != ProtocolVersion {
		_ = fc.send(&Msg{Type: TypeError,
			Err: fmt.Sprintf("protocol version %d, manager speaks %d", hello.Version, ProtocolVersion)})
		fc.Close()
		return
	}
	if err := fc.send(&Msg{Type: TypeHello, Version: ProtocolVersion, Binary: m.opts.Binary}); err != nil {
		fc.Close()
		return
	}

	rc := &runnerConn{
		fc:        fc,
		name:      hello.Runner,
		binary:    hello.Binary,
		slots:     hello.Slots,
		platforms: make(map[string]bool, len(hello.Platforms)),
		leases:    make(map[uint64]*leaseState),
	}
	if rc.name == "" {
		rc.name = conn.RemoteAddr().String()
	}
	if rc.slots <= 0 {
		rc.slots = 1
	}
	for _, p := range hello.Platforms {
		rc.platforms[p] = true
	}
	if rc.binary != m.opts.Binary {
		// Accepted but flagged: the lease pins the fingerprint identity,
		// yet kernels will run code the manager did not benchmark.
		slog.Warn("dist: runner binary differs from manager",
			"runner", rc.name, "runner_binary", rc.binary, "manager_binary", m.opts.Binary)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		_ = fc.send(&Msg{Type: TypeBye})
		fc.Close()
		return
	}
	m.runners[rc] = true
	m.waitWarned = false
	n := len(m.runners)
	m.mu.Unlock()
	telemetry.Metrics.Gauge("dist_runners", "connected campaign runners").Set(float64(n))
	slog.Info("dist: runner joined", "runner", rc.name, "slots", rc.slots,
		"platforms", hello.Platforms, "runners", n)
	m.dispatch()

	for {
		msg, _, err := fc.recv()
		if err != nil {
			m.dropRunner(rc, err)
			return
		}
		m.mu.Lock()
		wasSuspect := rc.suspect
		rc.suspect = false
		m.mu.Unlock()
		if wasSuspect {
			slog.Info("dist: suspect runner spoke again; leasing to it resumes", "runner", rc.name)
		}
		switch msg.Type {
		case TypeProgress:
			m.handleProgress(rc, msg)
		case TypeResult:
			m.handleResult(rc, msg)
		case TypeFetch:
			go m.serveFetch(rc, msg)
		case TypeBye:
			m.dropRunner(rc, nil)
			return
		default:
			slog.Debug("dist: ignoring unexpected frame", "runner", rc.name, "type", msg.Type)
		}
	}
}

// dispatch assigns queued cells to capable runners with free slots,
// preferring a runner that last worked on the same dataset (it already
// holds the graph — no artifact transfer). Sends happen outside the
// manager lock; a failed send drops the runner, which re-queues the
// cell.
func (m *Manager) dispatch() {
	for {
		m.mu.Lock()
		var (
			rc  *runnerConn
			t   *task
			idx = -1
		)
		for i, queued := range m.queue {
			if cand := m.pickRunnerLocked(queued.spec); cand != nil {
				rc, t, idx = cand, queued, i
				break
			}
		}
		if t == nil {
			if len(m.queue) > 0 && len(m.runners) == 0 && !m.waitWarned {
				m.waitWarned = true
				slog.Info("dist: cells queued, waiting for runners to connect",
					"queued", len(m.queue))
			}
			m.mu.Unlock()
			return
		}
		m.queue = append(m.queue[:idx], m.queue[idx+1:]...)
		m.nextLease++
		id := m.nextLease
		ls := &leaseState{t: t}
		ls.timer = time.AfterFunc(m.opts.LeaseTimeout, func() { m.onLeaseTimeout(rc, id) })
		rc.leases[id] = ls
		rc.lastGraph = t.spec.GraphFP.String()
		m.stats.Leases++
		lease := m.leaseFor(id, t.spec)
		runnerName := rc.name
		m.mu.Unlock()

		telemetry.Metrics.Counter("dist_leases_total", "cells leased to runners (including re-leases)").Inc()
		slog.Debug("dist: leasing cell", "lease", id, "runner", runnerName,
			"platform", t.spec.Platform, "graph", t.spec.Graph, "algorithm", string(t.spec.Algorithm))
		if err := rc.fc.send(&Msg{Type: TypeLease, Lease: lease}); err != nil {
			m.dropRunner(rc, fmt.Errorf("lease send: %w", err))
		}
	}
}

// pickRunnerLocked returns a runner with a free slot that supports the
// cell's platform, preferring dataset affinity. Callers hold m.mu.
func (m *Manager) pickRunnerLocked(spec core.CellSpec) *runnerConn {
	var fallback *runnerConn
	want := spec.GraphFP.String()
	for rc := range m.runners {
		if rc.dropped || rc.suspect || len(rc.leases) >= rc.slots || !rc.platforms[spec.Platform] {
			continue
		}
		if rc.lastGraph == want {
			return rc
		}
		if fallback == nil {
			fallback = rc
		}
	}
	return fallback
}

// leaseFor assembles the wire lease for one cell.
func (m *Manager) leaseFor(id uint64, spec core.CellSpec) *Lease {
	return &Lease{
		ID:       id,
		Platform: m.opts.Platforms[spec.Platform],
		Graph: GraphRef{
			Name:  spec.Graph,
			FP:    spec.GraphFP.String(),
			Edges: spec.GraphEdges,
		},
		Algorithm:   string(spec.Algorithm),
		Params:      spec.Params,
		TimeoutNS:   int64(spec.Timeout),
		Validate:    spec.Validate,
		Reps:        spec.Reps,
		Warmup:      spec.Warmup,
		MonitorNS:   int64(spec.MonitorInterval),
		Binary:      spec.Binary,
		CellFP:      spec.CellFP.String(),
		KeepaliveNS: int64(m.opts.LeaseTimeout / 4),
	}
}

// handleProgress resets the lease deadline: any sign of life from the
// leaseholder defers re-leasing.
func (m *Manager) handleProgress(rc *runnerConn, msg *Msg) {
	m.mu.Lock()
	ls, ok := rc.leases[msg.LeaseID]
	if ok {
		ls.timer.Reset(m.opts.LeaseTimeout)
	}
	m.mu.Unlock()
	if ok {
		slog.Debug("dist: progress", "runner", rc.name, "lease", msg.LeaseID,
			"phase", msg.Phase, "elapsed", time.Duration(msg.ElapsedNS), "heap", msg.HeapBytes)
	}
}

// handleResult completes the leased cell. A result for a lease that is
// no longer current (timed out and re-leased, or the task cancelled) is
// counted and dropped: exactly one outcome per cell ever reaches the
// campaign.
func (m *Manager) handleResult(rc *runnerConn, msg *Msg) {
	m.mu.Lock()
	ls, ok := rc.leases[msg.LeaseID]
	if !ok || msg.Result == nil {
		m.stats.StaleResults++
		m.mu.Unlock()
		telemetry.Metrics.Counter("dist_stale_results_total",
			"results dropped because their lease was no longer current").Inc()
		slog.Debug("dist: dropping stale result", "runner", rc.name, "lease", msg.LeaseID)
		return
	}
	delete(rc.leases, msg.LeaseID)
	ls.timer.Stop()
	t := ls.t
	if t.finished {
		m.mu.Unlock()
		return
	}
	t.finished = true
	m.mu.Unlock()

	r := *msg.Result
	slog.Debug("dist: cell result", "runner", rc.name, "lease", msg.LeaseID,
		"cell", r.Platform+"/"+r.Graph+"/"+string(r.Algorithm), "status", string(r.Status))
	m.complete(t, taskOutcome{r: r, err: execErrOf(r)})
	m.dispatch()
}

// execErrOf reconstructs the raw execution error the campaign's retry
// policy classifies, from the wire result's status — the same mapping
// the local pool's runCell produces in reverse.
func execErrOf(r report.RunResult) error {
	switch r.Status {
	case report.StatusSuccess, report.StatusInvalid:
		// Validation failures are recorded, not retried — exactly like
		// the local pool, whose runCell returns nil for them.
		return nil
	case report.StatusOOM:
		return fmt.Errorf("dist: runner reported %s: %w", r.Err, platform.ErrOutOfMemory)
	case report.StatusTimeout:
		return fmt.Errorf("dist: runner reported timeout: %w", context.DeadlineExceeded)
	default:
		if r.Err != "" {
			return errors.New(r.Err)
		}
		return fmt.Errorf("dist: runner reported status %s", r.Status)
	}
}

// onLeaseTimeout fires when a lease went LeaseTimeout without progress:
// the cell is re-queued for another runner and the silent runner is
// marked suspect — still connected (it may only be wedged, and its
// eventual stale answer is dropped by handleResult), but excluded from
// dispatch until it proves itself alive with another frame.
func (m *Manager) onLeaseTimeout(rc *runnerConn, id uint64) {
	m.mu.Lock()
	ls, ok := rc.leases[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	delete(rc.leases, id)
	rc.suspect = true
	t := ls.t
	requeue := !t.finished
	if requeue {
		m.queue = append(m.queue, t)
		m.stats.Releases++
	}
	m.mu.Unlock()
	if !requeue {
		return
	}
	telemetry.Metrics.Counter("dist_releases_total",
		"cells re-leased after a runner died or stalled").Inc()
	slog.Warn("dist: lease timed out without progress; re-leasing cell",
		"runner", rc.name, "lease", id,
		"cell", t.spec.Platform+"/"+t.spec.Graph+"/"+string(t.spec.Algorithm))
	m.dispatch()
}

// dropRunner removes a dead or departing runner and re-queues its
// in-flight cells.
func (m *Manager) dropRunner(rc *runnerConn, cause error) {
	m.mu.Lock()
	if rc.dropped {
		m.mu.Unlock()
		return
	}
	rc.dropped = true
	delete(m.runners, rc)
	var requeued int
	for id, ls := range rc.leases {
		ls.timer.Stop()
		if !ls.t.finished {
			m.queue = append(m.queue, ls.t)
			m.stats.Releases++
			requeued++
		}
		delete(rc.leases, id)
	}
	n := len(m.runners)
	closed := m.closed
	m.mu.Unlock()

	rc.fc.Close()
	telemetry.Metrics.Gauge("dist_runners", "connected campaign runners").Set(float64(n))
	if requeued > 0 {
		telemetry.Metrics.Counter("dist_releases_total",
			"cells re-leased after a runner died or stalled").Add(int64(requeued))
	}
	if closed {
		return
	}
	if cause != nil && !errors.Is(cause, io.EOF) {
		slog.Warn("dist: runner lost; re-leasing its cells",
			"runner", rc.name, "requeued", requeued, "err", cause)
	} else {
		slog.Info("dist: runner left", "runner", rc.name, "requeued", requeued)
	}
	if requeued > 0 {
		m.dispatch()
	}
}

// serveFetch answers an artifact fetch: graphs from the campaign's
// datasets (serialized once, then cached in memory), ETL blobs from the
// manager's artifact cache. A miss answers Found=false — the runner
// regenerates locally.
func (m *Manager) serveFetch(rc *runnerConn, msg *Msg) {
	var payload []byte
	switch msg.Kind {
	case "graph":
		payload = m.graphBlob(msg.FP)
	case "etl":
		payload = m.etlBlob(msg.FP)
	}
	reply := &Msg{Type: TypeBlob, ReqID: msg.ReqID, Kind: msg.Kind, FP: msg.FP, Found: payload != nil}
	var err error
	if payload != nil {
		telemetry.Metrics.Counter("dist_blob_bytes_total",
			"artifact bytes served to runners").Add(int64(len(payload)))
		err = rc.fc.sendBlob(reply, payload)
	} else {
		err = rc.fc.send(reply)
	}
	if err != nil {
		m.dropRunner(rc, fmt.Errorf("blob send: %w", err))
	}
}

// graphBlob returns the serialized GALB for a dataset fingerprint,
// caching the serialization (one per dataset, not per fetch).
func (m *Manager) graphBlob(fpHex string) []byte {
	m.mu.Lock()
	if blob, ok := m.blobs[fpHex]; ok {
		m.mu.Unlock()
		return blob
	}
	g := m.fpGraphs[fpHex]
	m.mu.Unlock()
	if g == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		slog.Warn("dist: serializing graph for runner failed", "graph", g.Name(), "err", err)
		return nil
	}
	blob := buf.Bytes()
	m.mu.Lock()
	m.blobs[fpHex] = blob
	m.mu.Unlock()
	return blob
}

// etlBlob reads a cached ETL artifact for serving, or nil.
func (m *Manager) etlBlob(fpHex string) []byte {
	if m.opts.Artifacts == nil {
		return nil
	}
	fp, err := stamp.Parse(fpHex)
	if err != nil {
		return nil
	}
	rc, hit, err := m.opts.Artifacts.OpenETL(fp)
	if err != nil || !hit {
		return nil
	}
	defer rc.Close()
	blob, err := io.ReadAll(rc)
	if err != nil {
		return nil
	}
	return blob
}
