package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/artifact"
	"graphalytics/internal/core"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
	"graphalytics/internal/stamp"
)

func testGraph(t *testing.T, n int, name string) *graph.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: n, Seed: 1, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// --- protocol ---

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	fa, fb := newFrameConn(a), newFrameConn(b)
	defer fa.Close()
	defer fb.Close()

	go func() {
		_ = fa.send(&Msg{Type: TypeHello, Runner: "r1", Platforms: []string{"pregel"}, Slots: 2, Version: ProtocolVersion})
		_ = fa.sendBlob(&Msg{Type: TypeBlob, ReqID: 7, Kind: "graph", Found: true}, []byte("payload-bytes"))
		_ = fa.send(&Msg{Type: TypeBlob, ReqID: 8, Kind: "etl", Found: false})
	}()

	m, _, err := fb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeHello || m.Runner != "r1" || m.Slots != 2 || len(m.Platforms) != 1 {
		t.Fatalf("hello round-trip mangled: %+v", m)
	}
	m, payload, err := fb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.ReqID != 7 || !m.Found || !bytes.Equal(payload, []byte("payload-bytes")) {
		t.Fatalf("blob round-trip mangled: %+v payload=%q", m, payload)
	}
	m, payload, err = fb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.ReqID != 8 || m.Found || payload != nil {
		t.Fatalf("not-found blob mangled: %+v payload=%q", m, payload)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// --- distributed campaign helpers ---

// startManager builds a manager for the given platforms/graphs on a
// random localhost port.
func startManager(t *testing.T, plats []platform.Platform, graphs []*graph.Graph, leaseTimeout time.Duration) *Manager {
	t.Helper()
	specs := make(map[string]PlatformSpec, len(plats))
	for _, p := range plats {
		specs[p.Name()] = PlatformSpec{Name: p.Name()}
	}
	byName := make(map[string]*graph.Graph, len(graphs))
	for _, g := range graphs {
		byName[g.Name()] = g
	}
	mgr, err := NewManager(ManagerOptions{Platforms: specs, Graphs: byName, LeaseTimeout: leaseTimeout})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return mgr
}

// startRunner connects a real in-process runner with its own cache.
func startRunner(t *testing.T, ctx context.Context, addr, name string, slots int) {
	t.Helper()
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stamps, err := stamp.OpenStore(cache.StampStorePath())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stamps.Close() })
	r, err := Connect(addr, RunnerOptions{Name: name, Slots: slots, Cache: cache, Stamps: stamps})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	t.Cleanup(func() {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("runner did not exit after manager close")
		}
	})
}

// normalize strips everything time- or machine-dependent from a result
// row and renders it as canonical JSON, so reports from local and
// distributed runs can be compared byte-for-byte: coordinates, status,
// validation, and structural metadata must match; runtimes, samples,
// and provenance may not.
func normalize(t *testing.T, rs []report.RunResult) []string {
	t.Helper()
	out := make([]string, len(rs))
	for i, r := range rs {
		r.Runtime = 0
		r.LoadTime = 0
		r.KTEPS = 0
		r.Reps = nil
		r.Resources = nil
		r.Attempts = 0
		r.Provenance = ""
		r.Counters = platform.Counters{}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// --- end-to-end ---

// TestDistributedMatchesLocal runs the same small matrix locally and
// through a manager with two runner processes, and requires the
// collated reports to agree on everything except runtimes.
func TestDistributedMatchesLocal(t *testing.T) {
	g := testGraph(t, 250, "distsmoke")
	algs := []algo.Kind{algo.BFS, algo.CONN, algo.STATS}
	mkBench := func() *core.Benchmark {
		return &core.Benchmark{
			// graphdb exercises the ETL artifact path, pregel the plain
			// in-memory load path.
			Platforms:  []platform.Platform{pregel.New(pregel.Options{}), graphdb.New(graphdb.Options{})},
			Graphs:     []*graph.Graph{g},
			Algorithms: algs,
			Validate:   true,
			Params:     algo.Params{Source: 0, Seed: 3},
		}
	}

	local, err := mkBench().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bench := mkBench()
	mgr := startManager(t, bench.Platforms, bench.Graphs, 0)
	addr := mgr.Addr().String()
	startRunner(t, ctx, addr, "r1", 2)
	startRunner(t, ctx, addr, "r2", 2)
	bench.Executor = mgr

	remote, err := bench.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	ln, rn := normalize(t, local.Results), normalize(t, remote.Results)
	if len(ln) != len(rn) {
		t.Fatalf("result counts differ: local %d, distributed %d", len(ln), len(rn))
	}
	for i := range ln {
		if ln[i] != rn[i] {
			t.Errorf("cell %d differs:\n local: %s\nremote: %s", i, ln[i], rn[i])
		}
	}
	for _, r := range remote.Results {
		if r.Status != report.StatusSuccess {
			t.Errorf("%s: status %s (%s)", r.Cell(), r.Status, r.Err)
		}
		if r.Runtime <= 0 {
			t.Errorf("%s: runtime not recorded", r.Cell())
		}
	}
}

// fakeRunner speaks the raw protocol so tests can misbehave precisely.
type fakeRunner struct {
	fc     *frameConn
	leases chan *Lease
}

func dialFake(t *testing.T, addr, name string, platforms []string) *fakeRunner {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFrameConn(conn)
	err = fc.send(&Msg{Type: TypeHello, Runner: name, Platforms: platforms, Slots: 1, Version: ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	reply, _, err := fc.recv()
	if err != nil || reply.Type != TypeHello {
		t.Fatalf("fake runner handshake failed: %v %+v", err, reply)
	}
	f := &fakeRunner{fc: fc, leases: make(chan *Lease, 4)}
	go func() {
		for {
			m, _, err := fc.recv()
			if err != nil {
				close(f.leases)
				return
			}
			if m.Type == TypeLease {
				f.leases <- m.Lease
			}
		}
	}()
	return f
}

func (f *fakeRunner) awaitLease(t *testing.T) *Lease {
	t.Helper()
	select {
	case l, ok := <-f.leases:
		if !ok {
			t.Fatal("fake runner connection closed before lease arrived")
		}
		return l
	case <-time.After(10 * time.Second):
		t.Fatal("no lease arrived at fake runner")
	}
	return nil
}

// TestRunnerDeathReleasesCell kills a runner mid-lease (connection
// drop) and asserts the cell is re-leased to a healthy runner and
// lands in the report exactly once.
func TestRunnerDeathReleasesCell(t *testing.T) {
	g := testGraph(t, 150, "deathsmoke")
	bench := &core.Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.BFS},
		Validate:   true,
	}
	mgr := startManager(t, bench.Platforms, bench.Graphs, 0)
	addr := mgr.Addr().String()

	// The doomed runner is the only one connected, so it gets the lease.
	doomed := dialFake(t, addr, "doomed", []string{"pregel"})

	bench.Executor = mgr
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	benchDone := make(chan *report.Report, 1)
	benchErr := make(chan error, 1)
	go func() {
		rep, err := bench.Run(ctx)
		benchErr <- err
		benchDone <- rep
	}()

	lease := doomed.awaitLease(t)
	if lease.Graph.Name != "deathsmoke" || lease.Algorithm != string(algo.BFS) {
		t.Fatalf("unexpected lease: %+v", lease)
	}
	doomed.fc.Close() // mid-lease death

	// A healthy runner picks up the re-leased cell.
	startRunner(t, ctx, addr, "healthy", 1)

	if err := <-benchErr; err != nil {
		t.Fatal(err)
	}
	rep := <-benchDone
	if len(rep.Results) != 1 {
		t.Fatalf("results = %d, want exactly 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Status != report.StatusSuccess || !r.Validation.Valid {
		t.Fatalf("re-leased cell: status %s (%s)", r.Status, r.Err)
	}
	if s := mgr.StatsSnapshot(); s.Releases < 1 || s.Leases < 2 {
		t.Errorf("stats = %+v, want >=1 release and >=2 leases", s)
	}
}

// TestLeaseTimeoutDropsZombieResult starves a lease of progress until
// the manager re-leases it, then has the zombie deliver its result
// late and asserts the zombie's row never reaches the report.
func TestLeaseTimeoutDropsZombieResult(t *testing.T) {
	g := testGraph(t, 150, "zombiesmoke")
	bench := &core.Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.BFS},
	}
	mgr := startManager(t, bench.Platforms, bench.Graphs, 300*time.Millisecond)
	addr := mgr.Addr().String()

	zombie := dialFake(t, addr, "zombie", []string{"pregel"})

	bench.Executor = mgr
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	benchDone := make(chan *report.Report, 1)
	benchErr := make(chan error, 1)
	go func() {
		rep, err := bench.Run(ctx)
		benchErr <- err
		benchDone <- rep
	}()

	lease := zombie.awaitLease(t)
	// Silence: no progress, no result — the manager re-leases after
	// 300ms. Then connect a healthy runner to execute it for real.
	time.Sleep(600 * time.Millisecond)
	startRunner(t, ctx, addr, "healthy", 1)

	if err := <-benchErr; err != nil {
		t.Fatal(err)
	}
	rep := <-benchDone

	// The zombie wakes up and delivers a poison row for its dead lease.
	poison := &report.RunResult{
		Platform: "pregel", Graph: "zombiesmoke", Algorithm: algo.BFS,
		Status: report.StatusError, Err: "ZOMBIE",
	}
	if err := zombie.fc.send(&Msg{Type: TypeResult, LeaseID: lease.ID, Result: poison}); err != nil {
		t.Fatalf("zombie send: %v", err)
	}
	// The drop is synchronous with the manager's read loop; poll the
	// counter briefly.
	deadline := time.Now().Add(5 * time.Second)
	for mgr.StatsSnapshot().StaleResults == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	if len(rep.Results) != 1 {
		t.Fatalf("results = %d, want exactly 1", len(rep.Results))
	}
	if r := rep.Results[0]; r.Status != report.StatusSuccess || r.Err == "ZOMBIE" {
		t.Fatalf("zombie result reached the report: %+v", r)
	}
	s := mgr.StatsSnapshot()
	if s.StaleResults < 1 {
		t.Errorf("stale result was not counted: %+v", s)
	}
	if s.Releases < 1 {
		t.Errorf("lease timeout did not release the cell: %+v", s)
	}
}

// TestRunnerReusesCachedGraph asserts the second campaign against the
// same runner cache skips the graph transfer (the content-addressed
// artifact store is shared between leases and campaigns).
func TestRunnerReusesCachedGraph(t *testing.T) {
	g := testGraph(t, 150, "cachesmoke")
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := stamp.OfGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.StoreGraph(fp, g); err != nil {
		t.Fatal(err)
	}
	stamps, err := stamp.OpenStore(cache.StampStorePath())
	if err != nil {
		t.Fatal(err)
	}
	defer stamps.Close()

	bench := &core.Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.BFS},
	}
	mgr := startManager(t, bench.Platforms, bench.Graphs, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := Connect(mgr.Addr().String(), RunnerOptions{Name: "warm", Cache: cache, Stamps: stamps})
	if err != nil {
		t.Fatal(err)
	}
	go r.Run(ctx)

	bench.Executor = mgr
	rep, err := bench.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Status != report.StatusSuccess {
		t.Fatalf("warm-cache cell failed: %+v", rep.Results[0])
	}
	// The graph was pre-seeded: the manager must not have served it.
	if n := mgr.StatsSnapshot(); n.Leases != 1 {
		t.Errorf("leases = %d, want 1", n.Leases)
	}
}
