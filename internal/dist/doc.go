// Package dist distributes a benchmark campaign across processes: a
// manager leases matrix cells to runner processes over a streamed,
// length-prefixed JSON protocol, and merges the results they stream
// back through the same deterministic collation a local campaign uses.
//
// The manager side (Manager) implements core.CellExecutor, so the
// campaign engine in internal/core is shared verbatim between local and
// distributed execution — restore, journaling, stamping, retry
// classification, and report collation all behave identically; only the
// mechanism that turns one pending cell into a report row differs. The
// runner side (Runner) executes each lease as a single-cell local
// campaign with the manager's binary identity and dataset fingerprints,
// which makes remote results content-addressed under exactly the stamps
// a local run would have produced.
//
// The wire protocol is five message kinds — hello, lease, progress,
// result, bye — plus fetch/blob for the remote artifact store: a runner
// that misses a graph or ETL artifact in its local content-addressed
// cache fetches it from the manager over the same connection and stores
// it for future leases and future campaigns. Fault tolerance is
// lease-scoped: a runner that disconnects or stops sending progress has
// its in-flight cells re-queued for other runners, and stale results
// from resurrected runners are dropped, so every cell lands in the
// report exactly once. See docs/ARCHITECTURE.md for the protocol
// specification and docs/OPERATIONS.md for how to operate a distributed
// campaign.
package dist
