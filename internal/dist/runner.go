package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/artifact"
	"graphalytics/internal/core"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/dataflow"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/mapreduce"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
	"graphalytics/internal/stamp"
)

// AllPlatforms is the default runner capability set: every engine in
// the tree.
var AllPlatforms = []string{"pregel", "mapreduce", "dataflow", "graphdb"}

// RunnerOptions configures a campaign runner process.
type RunnerOptions struct {
	// Name identifies the runner in manager logs (defaults to the local
	// connection address).
	Name string
	// Slots is how many leases the runner accepts concurrently
	// (0 = 1). The manager never leases beyond it.
	Slots int
	// Platforms restricts which platforms this runner accepts leases
	// for (nil = AllPlatforms).
	Platforms []string
	// Cache is the runner's local artifact cache: graphs and ETL blobs
	// land here under their content address, so later leases (and later
	// campaigns) skip the transfer. Required.
	Cache *artifact.Cache
	// Stamps, when non-nil, is the runner's stamped result store —
	// normally opened at Cache.StampStorePath(). A re-leased cell the
	// runner already executed restores from it instead of re-running.
	Stamps *stamp.Store
}

// Runner is the worker side of a distributed campaign: it connects to a
// manager, announces its capabilities, and turns each lease into a
// 1×1×1 local campaign — same kernels, same monitor, same validation,
// same stamping — so the result rows it streams back are
// indistinguishable from rows the manager would have produced itself.
type Runner struct {
	opts RunnerOptions
	fc   *frameConn

	mu      sync.Mutex
	graphs  map[string]*graph.Graph // fingerprint hex → loaded dataset
	pending map[uint64]chan fetched // ReqID → waiter
	nextReq uint64

	managerBinary string
	slots         chan struct{} // semaphore: one token per concurrent lease
	wg            sync.WaitGroup
}

type fetched struct {
	payload []byte
	found   bool
}

// Connect dials the manager and performs the hello exchange.
func Connect(addr string, opts RunnerOptions) (*Runner, error) {
	if opts.Cache == nil {
		return nil, errors.New("dist: runner needs an artifact cache")
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.Platforms == nil {
		opts.Platforms = AllPlatforms
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: connecting to manager: %w", err)
	}
	fc := newFrameConn(conn)
	hello := &Msg{
		Type:      TypeHello,
		Runner:    opts.Name,
		Platforms: opts.Platforms,
		Slots:     opts.Slots,
		Binary:    stamp.BinaryVersion(),
		Version:   ProtocolVersion,
	}
	if err := fc.send(hello); err != nil {
		fc.Close()
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	reply, _, err := fc.recv()
	if err != nil {
		fc.Close()
		return nil, fmt.Errorf("dist: waiting for manager hello: %w", err)
	}
	if reply.Type == TypeError {
		fc.Close()
		return nil, fmt.Errorf("dist: manager rejected runner: %s", reply.Err)
	}
	if reply.Type != TypeHello {
		fc.Close()
		return nil, fmt.Errorf("dist: expected hello from manager, got %q", reply.Type)
	}
	r := &Runner{
		opts:          opts,
		fc:            fc,
		graphs:        make(map[string]*graph.Graph),
		pending:       make(map[uint64]chan fetched),
		managerBinary: reply.Binary,
		slots:         make(chan struct{}, opts.Slots),
	}
	slog.Info("dist: connected to manager", "addr", addr,
		"slots", opts.Slots, "platforms", opts.Platforms)
	return r, nil
}

// Run serves leases until the manager says bye, the connection breaks,
// or ctx is cancelled. It returns nil on a graceful bye.
func (r *Runner) Run(ctx context.Context) error {
	defer r.fc.Close()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-ctx.Done()
		r.fc.Close() // unblocks the read loop on cancellation
	}()

	for {
		msg, payload, err := r.fc.recv()
		if err != nil {
			r.wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: manager connection lost: %w", err)
		}
		switch msg.Type {
		case TypeLease:
			lease := msg.Lease
			if lease == nil {
				continue
			}
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.slots <- struct{}{}
				defer func() { <-r.slots }()
				r.executeLease(ctx, lease)
			}()
		case TypeBlob:
			r.mu.Lock()
			ch, ok := r.pending[msg.ReqID]
			delete(r.pending, msg.ReqID)
			r.mu.Unlock()
			if ok {
				ch <- fetched{payload: payload, found: msg.Found}
			}
		case TypeBye:
			slog.Info("dist: manager said bye; draining")
			r.wg.Wait()
			return nil
		case TypeError:
			r.wg.Wait()
			return fmt.Errorf("dist: manager error: %s", msg.Err)
		default:
			slog.Debug("dist: ignoring unexpected frame", "type", msg.Type)
		}
	}
}

// fetch requests one artifact from the manager and waits for the blob.
func (r *Runner) fetch(ctx context.Context, kind, fpHex string) ([]byte, bool, error) {
	ch := make(chan fetched, 1)
	r.mu.Lock()
	r.nextReq++
	id := r.nextReq
	r.pending[id] = ch
	r.mu.Unlock()
	if err := r.fc.send(&Msg{Type: TypeFetch, ReqID: id, Kind: kind, FP: fpHex}); err != nil {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return nil, false, err
	}
	select {
	case f := <-ch:
		return f.payload, f.found, nil
	case <-ctx.Done():
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return nil, false, ctx.Err()
	}
}

// getGraph resolves a lease's dataset: in-memory memo, then the local
// artifact cache, then a fetch from the manager (stored into the cache
// for the next lease and the next campaign).
func (r *Runner) getGraph(ctx context.Context, ref GraphRef) (*graph.Graph, stamp.Fingerprint, error) {
	fp, err := stamp.Parse(ref.FP)
	if err != nil {
		return nil, stamp.Fingerprint{}, fmt.Errorf("dist: lease graph fingerprint: %w", err)
	}
	r.mu.Lock()
	g := r.graphs[ref.FP]
	r.mu.Unlock()
	if g != nil {
		return g, fp, nil
	}

	g, hit, err := r.opts.Cache.LoadGraph(fp, runtime.NumCPU())
	if err != nil {
		slog.Warn("dist: cached graph unreadable; refetching", "fp", ref.FP, "err", err)
	}
	if !hit || err != nil {
		payload, found, ferr := r.fetch(ctx, "graph", ref.FP)
		if ferr != nil {
			return nil, fp, ferr
		}
		if !found {
			return nil, fp, fmt.Errorf("dist: manager has no graph %s (%s)", ref.Name, ref.FP)
		}
		slog.Info("dist: fetched graph from manager", "graph", ref.Name,
			"bytes", len(payload))
		g, err = graph.ReadBinary(bytes.NewReader(payload))
		if err != nil {
			return nil, fp, fmt.Errorf("dist: decoding fetched graph %s: %w", ref.Name, err)
		}
		if err := r.opts.Cache.StoreGraph(fp, g); err != nil {
			slog.Warn("dist: caching fetched graph failed", "graph", ref.Name, "err", err)
		}
	}
	g.SetName(ref.Name)
	r.mu.Lock()
	r.graphs[ref.FP] = g
	r.mu.Unlock()
	return g, fp, nil
}

// BuildPlatform constructs the engine a PlatformSpec describes — the
// runner-side mirror of the driver's platform construction, so the
// platform configuration stamp (and therefore the cell fingerprint)
// matches the manager's.
func BuildPlatform(spec PlatformSpec) (platform.Platform, error) {
	switch spec.Name {
	case "pregel":
		return pregel.New(pregel.Options{Workers: spec.Workers, MemoryBudget: spec.Memory}), nil
	case "mapreduce":
		return mapreduce.New(mapreduce.Options{Workers: spec.Workers}), nil
	case "dataflow":
		return dataflow.New(dataflow.Options{Parts: spec.Workers, MemoryBudget: spec.Memory}), nil
	case "graphdb":
		return graphdb.New(graphdb.Options{MemoryBudget: spec.Memory}), nil
	default:
		return nil, fmt.Errorf("dist: unknown platform %q in lease", spec.Name)
	}
}

// prefetchETL pulls the platform's cached ETL artifact from the manager
// when the runner does not hold it, so platforms with an expensive
// transformation (graphdb) skip the local ETL exactly as a local
// campaign with a warm cache would.
func (r *Runner) prefetchETL(ctx context.Context, p platform.Platform, graphFP stamp.Fingerprint, binary string) {
	cl, ok := p.(platform.CachedLoader)
	if !ok {
		return
	}
	fp := stamp.ETL(graphFP, p.Name(), platform.StampConfigOf(p), cl.ETLVersion(), binary)
	if rc, hit, err := r.opts.Cache.OpenETL(fp); err == nil && hit {
		rc.Close()
		return
	}
	payload, found, err := r.fetch(ctx, "etl", fp.String())
	if err != nil || !found {
		return // regenerate locally; a miss is not an error
	}
	err = r.opts.Cache.StoreETL(fp, func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
	if err != nil {
		slog.Warn("dist: caching fetched ETL failed", "fp", fp.String(), "err", err)
		return
	}
	slog.Info("dist: fetched ETL artifact from manager",
		"platform", p.Name(), "bytes", len(payload))
}

// executeLease turns one lease into a single-cell local campaign and
// streams the result back. Keepalive progress frames flow every
// KeepaliveNS for as long as the cell runs.
func (r *Runner) executeLease(ctx context.Context, lease *Lease) {
	start := time.Now()
	slog.Info("dist: lease accepted", "lease", lease.ID,
		"platform", lease.Platform.Name, "graph", lease.Graph.Name, "algorithm", lease.Algorithm)

	stopKeepalive := r.startKeepalive(ctx, lease, start)
	result, err := r.runLease(ctx, lease)
	stopKeepalive()
	if ctx.Err() != nil {
		return // connection is going down; nothing to send
	}
	if err != nil {
		slog.Warn("dist: lease failed before producing a cell",
			"lease", lease.ID, "err", err)
		result = &report.RunResult{
			Platform:   lease.Platform.Name,
			Graph:      lease.Graph.Name,
			Algorithm:  algo.Kind(lease.Algorithm),
			Status:     report.StatusError,
			Err:        err.Error(),
			GraphEdges: lease.Graph.Edges,
		}
	}
	if serr := r.fc.send(&Msg{Type: TypeResult, LeaseID: lease.ID, Result: result}); serr != nil {
		slog.Warn("dist: sending result failed", "lease", lease.ID, "err", serr)
		return
	}
	slog.Info("dist: lease done", "lease", lease.ID,
		"status", string(result.Status), "elapsed", time.Since(start).Round(time.Millisecond))
}

// startKeepalive streams progress frames for an in-flight lease until
// the returned stop function is called.
func (r *Runner) startKeepalive(ctx context.Context, lease *Lease, start time.Time) func() {
	interval := time.Duration(lease.KeepaliveNS)
	if interval <= 0 {
		interval = 15 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				_ = r.fc.send(&Msg{
					Type:      TypeProgress,
					LeaseID:   lease.ID,
					Phase:     "run",
					ElapsedNS: int64(time.Since(start)),
					HeapBytes: ms.HeapAlloc,
				})
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// runLease executes the cell: resolve the dataset, mirror the
// platform, and run a 1×1×1 campaign through the exact engine a local
// run uses — stamping included, so a cell this runner has already
// executed (a re-lease after a dropped result) restores instead of
// re-running.
func (r *Runner) runLease(ctx context.Context, lease *Lease) (*report.RunResult, error) {
	g, graphFP, err := r.getGraph(ctx, lease.Graph)
	if err != nil {
		return nil, err
	}
	p, err := BuildPlatform(lease.Platform)
	if err != nil {
		return nil, err
	}
	r.prefetchETL(ctx, p, graphFP, lease.Binary)

	bench := core.Benchmark{
		Platforms:       []platform.Platform{p},
		Graphs:          []*graph.Graph{g},
		Algorithms:      []algo.Kind{algo.Kind(lease.Algorithm)},
		Params:          lease.Params,
		Timeout:         time.Duration(lease.TimeoutNS),
		Validate:        lease.Validate,
		Reps:            lease.Reps,
		Warmup:          lease.Warmup,
		MonitorInterval: time.Duration(lease.MonitorNS),
		Parallelism:     1,
		BinaryVersion:   lease.Binary,
		GraphStamps:     map[string]stamp.Fingerprint{g.Name(): graphFP},
		Stamps:          r.opts.Stamps,
		Artifacts:       r.opts.Cache,
	}
	rep, err := bench.Run(ctx)
	if err != nil {
		return nil, err
	}
	if len(rep.Results) != 1 {
		return nil, fmt.Errorf("dist: lease produced %d results, want 1", len(rep.Results))
	}
	result := rep.Results[0]
	if lease.CellFP != "" && r.opts.Stamps != nil && result.Status == report.StatusSuccess {
		if fp, perr := stamp.Parse(lease.CellFP); perr == nil && !r.opts.Stamps.Has(fp) {
			// The cell succeeded but was stamped under a different
			// fingerprint than the manager computed: configuration drift
			// between manager and runner.
			slog.Warn("dist: cell fingerprint drift between manager and runner",
				"lease", lease.ID, "manager_fp", lease.CellFP)
		}
	}
	return &result, nil
}
