package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"graphalytics/internal/algo"
	"graphalytics/internal/report"
)

// ProtocolVersion is the dist wire protocol version. A manager rejects
// runners speaking a different version during the hello exchange; bump
// it whenever a message or the framing changes incompatibly.
const ProtocolVersion = 1

// maxFrame bounds one JSON frame (not blob payloads, which are bounded
// separately by maxBlob). Control messages are small; a larger frame is
// a corrupt stream or a port collision, not a bigger campaign.
const maxFrame = 16 << 20

// maxBlob bounds one artifact transfer (a serialized graph or ETL
// blob).
const maxBlob = int64(8) << 30

// Message types. Every frame is one Msg; the "blob" frame is followed
// by exactly Size raw bytes of artifact payload outside the JSON.
const (
	// TypeHello opens a connection in both directions: the runner
	// announces its capabilities (platforms, slots, binary fingerprint),
	// the manager answers with its own identity and accepts or rejects.
	TypeHello = "hello"
	// TypeLease assigns one matrix cell to a runner (manager → runner).
	TypeLease = "lease"
	// TypeProgress is the runner's keepalive for an in-flight lease:
	// phase, elapsed time, and a coarse monitor sample. Receiving it
	// resets the manager's lease timeout.
	TypeProgress = "progress"
	// TypeResult delivers the finished cell (runner → manager): the full
	// report.RunResult including repetition statistics and provenance.
	TypeResult = "result"
	// TypeFetch requests a missing artifact by content address (runner →
	// manager): Kind "graph" or "etl", FP the fingerprint hex.
	TypeFetch = "fetch"
	// TypeBlob answers a fetch (manager → runner). When Found, exactly
	// Size raw payload bytes follow the frame on the wire.
	TypeBlob = "blob"
	// TypeBye announces a graceful close. The manager sends it when the
	// campaign is over; a runner that receives it drains and exits.
	TypeBye = "bye"
	// TypeError reports a fatal protocol-level problem before closing.
	TypeError = "error"
)

// Msg is the wire envelope: one JSON object per length-prefixed frame.
// Fields are a union over message types; unused fields stay empty and
// are omitted from the encoding.
type Msg struct {
	Type string `json:"type"`

	// hello (runner → manager): capabilities.
	Runner    string   `json:"runner,omitempty"`
	Platforms []string `json:"platforms,omitempty"`
	Slots     int      `json:"slots,omitempty"`
	// hello (both directions): identity and compatibility.
	Binary  string `json:"binary,omitempty"`
	Version int    `json:"version,omitempty"`

	// lease (manager → runner).
	Lease *Lease `json:"lease,omitempty"`

	// progress / result (runner → manager).
	LeaseID   uint64            `json:"lease_id,omitempty"`
	Phase     string            `json:"phase,omitempty"`
	ElapsedNS int64             `json:"elapsed_ns,omitempty"`
	HeapBytes uint64            `json:"heap_bytes,omitempty"`
	Result    *report.RunResult `json:"result,omitempty"`

	// fetch / blob.
	ReqID uint64 `json:"req_id,omitempty"`
	Kind  string `json:"kind,omitempty"`
	FP    string `json:"fp,omitempty"`
	Found bool   `json:"found,omitempty"`
	Size  int64  `json:"size,omitempty"`

	// error / bye.
	Err string `json:"err,omitempty"`
}

// Lease is one cell assignment: the complete, self-contained recipe a
// runner needs to reproduce the cell a local campaign would have run —
// coordinates, platform construction parameters, dataset content
// address, the repetition protocol, and the fingerprint identity that
// keeps manager- and runner-side stamp stores coherent.
type Lease struct {
	ID uint64 `json:"id"`
	// Platform carries the engine construction parameters, so every
	// runner builds an identical platform.
	Platform PlatformSpec `json:"platform"`
	// Graph references the dataset by name and content address. A
	// runner that does not hold the artifact fetches it from the
	// manager over this same connection.
	Graph GraphRef `json:"graph"`
	// Algorithm is the workload name.
	Algorithm string `json:"algorithm"`
	// Params are the raw campaign algorithm parameters (defaults are
	// applied runner-side against the graph's vertex count, exactly as
	// a local campaign does).
	Params algo.Params `json:"params"`
	// Execution protocol.
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
	Validate  bool  `json:"validate,omitempty"`
	Reps      int   `json:"reps,omitempty"`
	Warmup    int   `json:"warmup,omitempty"`
	MonitorNS int64 `json:"monitor_ns,omitempty"`
	// Binary is the manager's binary/kernel version: the runner folds
	// it into its fingerprints so stamps recorded remotely match the
	// manager's content addresses.
	Binary string `json:"binary,omitempty"`
	// CellFP is the manager-computed cell fingerprint (diagnostic: a
	// runner whose own derivation disagrees logs the drift).
	CellFP string `json:"cell_fp,omitempty"`
	// KeepaliveNS is how often the runner must send progress to keep
	// the lease alive (derived from the manager's lease timeout).
	KeepaliveNS int64 `json:"keepalive_ns,omitempty"`
}

// PlatformSpec is the constructor recipe for one platform: everything a
// runner needs to build an engine whose configuration stamp equals the
// manager's.
type PlatformSpec struct {
	// Name selects the engine ("pregel", "mapreduce", "dataflow",
	// "graphdb").
	Name string `json:"name"`
	// Memory is the engine memory budget in bytes (0 = unlimited).
	Memory int64 `json:"memory,omitempty"`
	// Workers is the kernel worker budget (pregel BSP workers,
	// mapreduce slots, dataflow partitions; 0 = all cores). graphdb is
	// single-threaded by design and ignores it.
	Workers int `json:"workers,omitempty"`
}

// GraphRef addresses one dataset.
type GraphRef struct {
	// Name is the dataset name as it appears in reports.
	Name string `json:"name"`
	// FP is the dataset fingerprint hex — the content address for
	// cache lookup and fetch.
	FP string `json:"fp"`
	// Edges is |E|, for missing-value rows and sanity checks.
	Edges int64 `json:"edges,omitempty"`
}

// frameConn wraps a duplex stream with length-prefixed JSON framing:
// each frame is a 4-byte big-endian payload length followed by one
// JSON-encoded Msg. Blob payloads ride as raw bytes immediately after
// their announcing frame, written under the same lock so concurrent
// senders can never interleave a frame into the middle of a payload.
// Reads are single-consumer (one read loop per connection); writes are
// safe for concurrent use.
type frameConn struct {
	r  io.Reader
	w  io.Writer
	c  io.Closer
	wm sync.Mutex
}

func newFrameConn(rwc io.ReadWriteCloser) *frameConn {
	return &frameConn{r: rwc, w: rwc, c: rwc}
}

// send writes one frame.
func (fc *frameConn) send(m *Msg) error {
	fc.wm.Lock()
	defer fc.wm.Unlock()
	return writeFrame(fc.w, m)
}

// sendBlob writes a blob frame followed by its raw payload atomically
// with respect to other senders.
func (fc *frameConn) sendBlob(m *Msg, payload []byte) error {
	m.Size = int64(len(payload))
	fc.wm.Lock()
	defer fc.wm.Unlock()
	if err := writeFrame(fc.w, m); err != nil {
		return err
	}
	_, err := fc.w.Write(payload)
	return err
}

// recv reads the next frame. For a found blob frame it also consumes
// the raw payload so the stream stays in sync whether or not anyone is
// waiting for the bytes.
func (fc *frameConn) recv() (*Msg, []byte, error) {
	m, err := readFrame(fc.r)
	if err != nil {
		return nil, nil, err
	}
	if m.Type == TypeBlob && m.Found {
		if m.Size < 0 || m.Size > maxBlob {
			return nil, nil, fmt.Errorf("dist: blob size %d out of range", m.Size)
		}
		payload := make([]byte, m.Size)
		if _, err := io.ReadFull(fc.r, payload); err != nil {
			return nil, nil, fmt.Errorf("dist: reading blob payload: %w", err)
		}
		return m, payload, nil
	}
	return m, nil, nil
}

func (fc *frameConn) Close() error { return fc.c.Close() }

func writeFrame(w io.Writer, m *Msg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encoding %s frame: %w", m.Type, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("dist: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m Msg
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("dist: decoding frame: %w", err)
	}
	return &m, nil
}
