package datasets

import (
	"os"
	"path/filepath"
	"testing"

	"graphalytics/internal/graph"
)

func TestCatalogStandardEntries(t *testing.T) {
	c := NewCatalog()
	names := c.Names()
	want := []string{"amazon", "graph500-14", "livejournal", "patents", "smoke", "snb-1000", "wikipedia", "youtube"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestDescribeUnknown(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Describe("nope"); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := c.Open("nope"); err == nil {
		t.Error("Open of unknown dataset should fail")
	}
}

func TestOpenWithoutCache(t *testing.T) {
	c := NewCatalog()
	g, err := c.Open("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Errorf("smoke vertices = %d", g.NumVertices())
	}
}

func TestOpenCachesAndReloads(t *testing.T) {
	dir := t.TempDir()
	c := NewCatalog().WithCache(dir)
	g1, err := c.Open("smoke")
	if err != nil {
		t.Fatal(err)
	}
	// Cache files exist.
	for _, suffix := range []string{".v", ".e", ".properties"} {
		if _, err := os.Stat(filepath.Join(dir, "smoke"+suffix)); err != nil {
			t.Fatalf("cache file smoke%s missing: %v", suffix, err)
		}
	}
	// Second open loads from cache and matches.
	g2, err := c.Open("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("cache round trip changed shape: %v vs %v", g1, g2)
	}
	same := true
	g1.Arcs(func(u, v graph.VertexID) {
		if !g2.HasArc(uint32ID(g2, g1, u), uint32ID(g2, g1, v)) {
			same = false
		}
	})
	if !same {
		t.Fatal("cache round trip changed edges")
	}
}

// uint32ID maps a vertex of a to the vertex of b with the same external
// label (the cache round-trips labels, not internal order).
func uint32ID(b, a *graph.Graph, v graph.VertexID) graph.VertexID {
	label := a.Label(v)
	for w := 0; w < b.NumVertices(); w++ {
		if b.Label(graph.VertexID(w)) == label {
			return graph.VertexID(w)
		}
	}
	return graph.NoVertex
}

func TestCorruptCacheRegenerates(t *testing.T) {
	dir := t.TempDir()
	c := NewCatalog().WithCache(dir)
	if _, err := c.Open("smoke"); err != nil {
		t.Fatal(err)
	}
	// Truncate the edge file: sidecar counts no longer match, so Open
	// must fall back to regeneration and rewrite the cache.
	if err := os.WriteFile(filepath.Join(dir, "smoke.e"), []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := c.Open("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Errorf("regenerated vertices = %d", g.NumVertices())
	}
}

func TestRegisterCustom(t *testing.T) {
	c := NewCatalog()
	c.Register(Entry{
		Name:        "custom",
		Description: "test entry",
		Generate: func() (*graph.Graph, error) {
			b := graph.NewBuilder(graph.Directed(false))
			b.AddEdgeID(0, 1)
			return b.Build()
		},
	})
	g, err := c.Open("custom")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("custom edges = %d", g.NumEdges())
	}
}
