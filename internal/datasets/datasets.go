// Package datasets implements the Datasets database of the Graphalytics
// architecture (Figure 2): "a database for Datasets, which includes
// preconfigured graphs ready to be used with Graphalytics", together
// with the configuration files the paper pairs with each graph ("We
// also provide configuration files associated with these graphs").
//
// A Catalog maps dataset names to deterministic generator recipes, and
// optionally caches materialized graphs in a directory as .v/.e file
// pairs plus a .properties sidecar, so repeated benchmark runs skip
// regeneration ("Add graphs" step of §2.3).
package datasets

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"graphalytics/internal/config"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/gen/rmat"
	"graphalytics/internal/gen/surrogate"
	"graphalytics/internal/graph"
)

// Entry is one preconfigured dataset.
type Entry struct {
	// Name is the catalog key.
	Name string
	// Description explains provenance and intended use.
	Description string
	// Directed reports the edge interpretation.
	Directed bool
	// Generate materializes the graph.
	Generate func() (*graph.Graph, error)
}

// Catalog is a named collection of datasets with optional caching.
type Catalog struct {
	entries  map[string]Entry
	cacheDir string // "" = no cache
}

// NewCatalog returns a catalog preloaded with the standard Graphalytics
// workloads: the three Figure 4 graphs (at benchmark scale), the five
// Table 1 surrogates, and a tiny smoke-test graph.
func NewCatalog() *Catalog {
	c := &Catalog{entries: map[string]Entry{}}
	c.Register(Entry{
		Name:        "graph500-14",
		Description: "Graph500 R-MAT graph, scale 14, edge factor 16 (scaled stand-in for the paper's Graph500 23)",
		Generate: func() (*graph.Graph, error) {
			return rmat.Generate(rmat.Config{Scale: 14, Seed: 1})
		},
	})
	c.Register(Entry{
		Name:        "snb-1000",
		Description: "Datagen person-knows-person graph (scaled stand-in for LDBC SNB SF1000)",
		Generate: func() (*graph.Graph, error) {
			return datagen.Generate(datagen.Config{Persons: 5000, Seed: 2, Name: "snb-1000"})
		},
	})
	c.Register(Entry{
		Name:        "smoke",
		Description: "tiny social graph for smoke tests",
		Generate: func() (*graph.Graph, error) {
			return datagen.Generate(datagen.Config{Persons: 500, Seed: 3, Name: "smoke"})
		},
	})
	for _, spec := range surrogate.Table1 {
		spec := spec
		c.Register(Entry{
			Name:        spec.Name,
			Description: fmt.Sprintf("synthetic surrogate for the SNAP %s graph (Table 1)", spec.Name),
			Generate: func() (*graph.Graph, error) {
				return surrogate.Generate(spec, surrogate.Options{})
			},
		})
	}
	return c
}

// WithCache enables materialized-graph caching under dir.
func (c *Catalog) WithCache(dir string) *Catalog {
	c.cacheDir = dir
	return c
}

// Register adds (or replaces) a dataset.
func (c *Catalog) Register(e Entry) {
	c.entries[e.Name] = e
}

// Names lists the catalog's datasets sorted by name.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns the entry for name.
func (c *Catalog) Describe(name string) (Entry, error) {
	e, ok := c.entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	return e, nil
}

// Open materializes the named dataset, using and populating the cache
// when one is configured.
func (c *Catalog) Open(name string) (*graph.Graph, error) {
	e, err := c.Describe(name)
	if err != nil {
		return nil, err
	}
	if c.cacheDir == "" {
		return e.Generate()
	}
	prefix := filepath.Join(c.cacheDir, name)
	if g, err := c.openCached(e, prefix); err == nil {
		return g, nil
	}
	g, err := e.Generate()
	if err != nil {
		return nil, err
	}
	if err := c.writeCache(e, g, prefix); err != nil {
		return nil, fmt.Errorf("datasets: caching %s: %w", name, err)
	}
	return g, nil
}

// openCached loads a previously materialized graph, verifying its
// sidecar properties.
func (c *Catalog) openCached(e Entry, prefix string) (*graph.Graph, error) {
	props, err := config.LoadFile(prefix + ".properties")
	if err != nil {
		return nil, err
	}
	directed, err := props.Bool("graph.directed", false)
	if err != nil {
		return nil, err
	}
	g, err := graph.LoadEdgeList(prefix+".e", prefix+".v", graph.LoadOptions{
		Directed: directed,
		Name:     e.Name,
	})
	if err != nil {
		return nil, err
	}
	wantV, err := props.Int("graph.vertices", -1)
	if err != nil {
		return nil, err
	}
	wantE, err := props.Int64("graph.edges", -1)
	if err != nil {
		return nil, err
	}
	if g.NumVertices() != wantV || g.NumEdges() != wantE {
		return nil, fmt.Errorf("datasets: cache mismatch for %s: %d/%d vs recorded %d/%d",
			e.Name, g.NumVertices(), g.NumEdges(), wantV, wantE)
	}
	return g, nil
}

// writeCache materializes g and its .properties sidecar.
func (c *Catalog) writeCache(e Entry, g *graph.Graph, prefix string) error {
	if err := os.MkdirAll(filepath.Dir(prefix), 0o755); err != nil {
		return err
	}
	if err := g.SaveFiles(prefix); err != nil {
		return err
	}
	props := config.New()
	props.Set("graph.name", e.Name)
	props.Set("graph.directed", strconv.FormatBool(g.Directed()))
	props.Set("graph.vertices", strconv.Itoa(g.NumVertices()))
	props.Set("graph.edges", strconv.FormatInt(g.NumEdges(), 10))
	props.Set("graph.description", e.Description)
	f, err := os.Create(prefix + ".properties")
	if err != nil {
		return err
	}
	if err := props.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
