package pregel

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/platformtest"
)

func TestConformance(t *testing.T) {
	platformtest.Conformance(t, New(Options{}))
}

func TestConformanceSingleWorker(t *testing.T) {
	platformtest.Conformance(t, New(Options{Workers: 1}))
}

func TestConformanceNoCombiners(t *testing.T) {
	platformtest.Conformance(t, New(Options{DisableCombiners: true}))
}

func TestCountersPopulated(t *testing.T) {
	platformtest.CountersPopulated(t, New(Options{}))
}

func TestName(t *testing.T) {
	if New(Options{}).Name() != "pregel" {
		t.Error("name")
	}
}

func TestMemoryBudgetLoadFailure(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{MemoryBudget: 100}) // absurdly small
	if _, err := p.LoadGraph(g); !errors.Is(err, platform.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestMemoryBudgetRunFailure(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits the graph but not STATS's neighborhood messages.
	budget := g.MemoryFootprint() + 200_000
	p := New(Options{MemoryBudget: budget})
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatalf("load should fit: %v", err)
	}
	defer loaded.Close()
	_, err = loaded.Run(context.Background(), algo.STATS, algo.Params{})
	if !errors.Is(err, platform.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory for STATS under tight budget", err)
	}
}

func TestContextCancellation(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{})
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loaded.Run(ctx, algo.CD, algo.Params{}); err == nil {
		t.Fatal("cancelled context should abort the run")
	}
}

func TestCombinerReducesMessages(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) platform.Counters {
		p := New(Options{DisableCombiners: disable, Workers: 4})
		loaded, err := p.LoadGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters
	}
	with := run(false)
	without := run(true)
	if with.Messages >= without.Messages {
		t.Errorf("combiner should reduce messages: with=%d without=%d", with.Messages, without.Messages)
	}
}

func TestActiveVertexDecay(t *testing.T) {
	// The "skewed execution intensity" choke point: per-superstep active
	// counts must be recorded and BFS activity must decay to zero.
	g, err := datagen.Generate(datagen.Config{Persons: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{})
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), algo.BFS, algo.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	steps := res.Counters.ActivePerStep
	if len(steps) < 3 {
		t.Fatalf("expected several supersteps, got %v", steps)
	}
	if steps[len(steps)-1] != 0 {
		t.Errorf("final superstep should have zero active vertices: %v", steps)
	}
}

func TestPartitionerOptionAffectsNetwork(t *testing.T) {
	// Range partitioning on a BFS-ordered social graph keeps more
	// messages local than hash partitioning (the partitioning ablation).
	g, err := datagen.Generate(datagen.Config{Persons: 3000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ordered := graph.Remap(g, graph.BFSOrder(g, 0))
	run := func(part graph.Partitioner) int64 {
		p := New(Options{Workers: 8, Partitioner: part})
		loaded, err := p.LoadGraph(ordered)
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.NetworkBytes
	}
	hash := run(graph.NewHashPartitioner(8))
	greedy := run(graph.NewGreedyPartitioner(ordered, 8))
	if greedy >= hash {
		t.Errorf("greedy partitioning should cut network bytes: hash=%d greedy=%d", hash, greedy)
	}
}

func TestWorkerBusyRecorded(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{Workers: 4})
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), algo.CD, algo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counters.WorkerBusy) != 4 {
		t.Fatalf("WorkerBusy len = %d, want 4", len(res.Counters.WorkerBusy))
	}
	var total time.Duration
	for _, d := range res.Counters.WorkerBusy {
		total += d
	}
	if total == 0 {
		t.Error("worker busy time not recorded")
	}
}

func TestUnsupportedKind(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 100, Seed: 8})
	p := New(Options{})
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if _, err := loaded.Run(context.Background(), algo.Kind("PAGERANK"), algo.Params{}); !errors.Is(err, platform.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}
