package pregel

import (
	"context"
	"sort"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/xrand"
)

// ------------------------------ BFS ------------------------------

// runBFS is the vertex-centric BFS: the frontier expands one level per
// superstep; visited vertices absorb further messages. The combiner
// collapses duplicate frontier messages to one.
func (l *loaded) runBFS(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	counters := &platform.Counters{}
	depth := make(algo.BFSOutput, n)
	for i := range depth {
		depth[i] = -1
	}
	if err := l.mem.Alloc(int64(n) * 8); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 8)

	e := newEngine[struct{}](l, counters, func(struct{}) int64 { return 1 },
		func(a, _ struct{}) struct{} { return a })
	compute := func(c *VCtx[struct{}], v graph.VertexID, msgs []struct{}) {
		switch {
		case c.Superstep() == 0:
			if v == p.Source {
				depth[v] = 0
				c.SendToOutNeighbors(v, struct{}{})
			}
		case depth[v] == -1 && len(msgs) > 0:
			depth[v] = int64(c.Superstep())
			c.SendToOutNeighbors(v, struct{}{})
		}
		c.VoteToHalt(v)
	}
	if err := e.Run(ctx, compute, nil); err != nil {
		return nil, err
	}
	return &platform.Result{Output: depth, Counters: *counters}, nil
}

// ------------------------------ CONN ------------------------------

// runConn is HashMin label propagation: every vertex repeatedly adopts
// the minimum label among itself and its neighbors (both directions for
// weak connectivity) until a global fixpoint. The min combiner collapses
// message traffic.
func (l *loaded) runConn(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	counters := &platform.Counters{}
	labels := make(algo.ConnOutput, n)
	if err := l.mem.Alloc(int64(n) * 4); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 4)

	e := newEngine[graph.VertexID](l, counters, func(graph.VertexID) int64 { return 4 },
		func(a, b graph.VertexID) graph.VertexID {
			if a < b {
				return a
			}
			return b
		})
	compute := func(c *VCtx[graph.VertexID], v graph.VertexID, msgs []graph.VertexID) {
		if c.Superstep() == 0 {
			labels[v] = v
			c.SendToAllNeighbors(v, v)
			c.VoteToHalt(v)
			return
		}
		min := labels[v]
		for _, m := range msgs {
			if m < min {
				min = m
			}
		}
		if min < labels[v] {
			labels[v] = min
			c.SendToAllNeighbors(v, min)
		}
		c.VoteToHalt(v)
	}
	if err := e.Run(ctx, compute, nil); err != nil {
		return nil, err
	}
	return &platform.Result{Output: labels, Counters: *counters}, nil
}

// ------------------------------ CD ------------------------------

// runCD runs Leung label propagation for exactly CDIterations rounds.
// Votes are tallied with algo.TallyVotes, the shared kernel, so label
// elections are bit-identical to the reference.
func (l *loaded) runCD(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	counters := &platform.Counters{}
	labels := make([]int64, n)
	scores := make([]float64, n)
	degs := make([]int32, n)
	if err := l.mem.Alloc(int64(n) * 20); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 20)
	var buf []graph.VertexID
	for v := 0; v < n; v++ {
		labels[v] = int64(v)
		scores[v] = 1
		buf = l.g.Neighborhood(graph.VertexID(v), buf[:0])
		degs[v] = int32(len(buf))
	}

	e := newEngine[algo.Vote](l, counters, func(algo.Vote) int64 { return 20 }, nil)
	compute := func(c *VCtx[algo.Vote], v graph.VertexID, msgs []algo.Vote) {
		step := c.Superstep()
		if step == 0 {
			if degs[v] == 0 {
				c.VoteToHalt(v)
				return
			}
			c.SendToAllNeighbors(v, algo.Vote{Label: labels[v], Score: scores[v], Degree: degs[v]})
			return
		}
		win, maxScore, ok := algo.TallyVotes(msgs, p.CDPreference)
		if ok {
			s := maxScore
			if win != labels[v] {
				s -= p.CDDelta
			}
			if s < 0 {
				s = 0
			}
			labels[v] = win
			scores[v] = s
		}
		if step < p.CDIterations {
			c.SendToAllNeighbors(v, algo.Vote{Label: labels[v], Score: scores[v], Degree: degs[v]})
		} else {
			c.VoteToHalt(v)
		}
	}
	master := func(step int, agg map[string]any) (map[string]any, bool) {
		return nil, step >= p.CDIterations
	}
	if err := e.Run(ctx, compute, master); err != nil {
		return nil, err
	}
	return &platform.Result{Output: algo.CDOutput(labels), Counters: *counters}, nil
}

// ------------------------------ STATS ------------------------------

// statsMsg carries either a neighborhood announcement (reply=false) or a
// closed-pair count back to the asking vertex (reply=true). Neighborhood
// exchange is what makes STATS the most network-hungry workload on BSP
// platforms, exactly as Figure 4 shows for Giraph.
type statsMsg struct {
	from  graph.VertexID
	nbh   []graph.VertexID
	count int64
	reply bool
}

func statsMsgBytes(m statsMsg) int64 {
	if m.reply {
		return 16
	}
	return 16 + 4*int64(len(m.nbh))
}

func (l *loaded) runStats(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	counters := &platform.Counters{}
	links := make([]int64, n)
	if err := l.mem.Alloc(int64(n) * 8); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 8)

	var meanLCC float64
	e := newEngine[statsMsg](l, counters, statsMsgBytes, nil)
	e.AggMerge = map[string]func(a, b any) any{
		"lccSum": func(a, b any) any { return a.(float64) + b.(float64) },
	}
	compute := func(c *VCtx[statsMsg], v graph.VertexID, msgs []statsMsg) {
		switch c.Superstep() {
		case 0:
			nbh := l.g.Neighborhood(v, nil)
			if len(nbh) >= 2 {
				for _, u := range nbh {
					c.Send(u, statsMsg{from: v, nbh: nbh})
				}
				c.CountEdges(int64(len(nbh)))
			}
		case 1:
			out := l.g.OutNeighbors(v)
			for _, m := range msgs {
				cnt := algo.CountClosedPairs(out, m.nbh, v)
				c.Send(m.from, statsMsg{from: v, count: cnt, reply: true})
			}
			c.VoteToHalt(v)
		case 2:
			var sum int64
			for _, m := range msgs {
				sum += m.count
			}
			links[v] = sum
			d := float64(len(l.g.Neighborhood(v, nil)))
			if d >= 2 {
				c.Aggregate("lccSum", float64(sum)/(d*(d-1)))
			}
			c.VoteToHalt(v)
		default:
			c.VoteToHalt(v)
		}
	}
	master := func(step int, agg map[string]any) (map[string]any, bool) {
		if step == 2 {
			if s, ok := agg["lccSum"].(float64); ok {
				meanLCC = s / float64(n)
			}
			return nil, true
		}
		return nil, false
	}
	if err := e.Run(ctx, compute, master); err != nil {
		return nil, err
	}
	out := algo.StatsOutput{Vertices: n, Edges: l.g.NumEdges(), MeanLCC: meanLCC}
	return &platform.Result{Output: out, Counters: *counters}, nil
}

// ------------------------------ EVO ------------------------------

// evoMsg is a burn request for one fire.
type evoMsg struct{ fire uint32 }

// evoAggCand aggregates the per-fire candidate lists the master
// truncates against each fire's burn cap.
type evoAggCand map[uint32][]graph.VertexID

// runEvo executes all forest fires simultaneously, two supersteps per
// fire level: requests travel in one step, the master's cap verdict is
// published through an aggregator, and approved candidates burn and
// spread in the next.
func (l *loaded) runEvo(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	k := p.EvoNewVertices
	counters := &platform.Counters{}

	// Ambassador map: vertex -> fires it seeds.
	ambassadors := make(map[graph.VertexID][]uint32)
	for f := 0; f < k; f++ {
		a := graph.VertexID(xrand.Mix3(p.Seed, uint64(n+f), 0) % uint64(n))
		ambassadors[a] = append(ambassadors[a], uint32(f))
	}

	burnedBy := make([][]uint32, n) // fires that burned each vertex
	pending := make([][]uint32, n)  // candidacies awaiting master verdict
	if err := l.mem.Alloc(int64(n) * 48); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 48)

	burnedCount := make([]int, k)
	dead := make([]bool, k)
	for f := range burnedCount {
		burnedCount[f] = 1 // the ambassador
	}

	e := newEngine[evoMsg](l, counters, func(evoMsg) int64 { return 4 }, nil)
	e.AggMerge = map[string]func(a, b any) any{
		"cand": func(a, b any) any {
			am, bm := a.(evoAggCand), b.(evoAggCand)
			for f, vs := range bm {
				am[f] = append(am[f], vs...)
			}
			return am
		},
	}

	hasFire := func(list []uint32, f uint32) bool {
		for _, x := range list {
			if x == f {
				return true
			}
		}
		return false
	}
	spread := func(c *VCtx[evoMsg], v graph.VertexID, f uint32) {
		picks := algo.FirePicks(l.g, graph.VertexID(n+int(f)), v, p)
		for _, w := range picks {
			c.Send(w, evoMsg{fire: f})
		}
		c.CountEdges(int64(len(picks)))
	}

	compute := func(c *VCtx[evoMsg], v graph.VertexID, msgs []evoMsg) {
		if c.Superstep() == 0 {
			for _, f := range ambassadors[v] {
				burnedBy[v] = append(burnedBy[v], f)
				spread(c, v, f)
			}
			c.VoteToHalt(v)
			return
		}
		// Phase C: resolve pending candidacies against the verdict.
		if len(pending[v]) > 0 {
			allowed, _ := c.AggValue("allow").(map[uint32]map[graph.VertexID]bool)
			for _, f := range pending[v] {
				if allowed != nil && allowed[f] != nil && allowed[f][v] {
					burnedBy[v] = append(burnedBy[v], f)
					spread(c, v, f)
				}
			}
			pending[v] = pending[v][:0]
		}
		// Phase B: register candidacies for incoming burn requests.
		cands := evoAggCand{}
		for _, m := range msgs {
			if hasFire(burnedBy[v], m.fire) || hasFire(pending[v], m.fire) {
				continue
			}
			pending[v] = append(pending[v], m.fire)
			cands[m.fire] = append(cands[m.fire], v)
		}
		if len(cands) > 0 {
			c.Aggregate("cand", cands)
			// Stay active to receive the verdict next superstep.
			return
		}
		c.VoteToHalt(v)
	}

	master := func(step int, agg map[string]any) (map[string]any, bool) {
		cands, _ := agg["cand"].(evoAggCand)
		allow := make(map[uint32]map[graph.VertexID]bool)
		for f, vs := range cands {
			if dead[f] {
				continue
			}
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			// Deduplicate (a vertex may be targeted by several burners).
			uniq := vs[:0]
			var last graph.VertexID
			for i, v := range vs {
				if i == 0 || v != last {
					uniq = append(uniq, v)
					last = v
				}
			}
			room := p.EvoMaxBurn - burnedCount[f]
			if len(uniq) >= room {
				uniq = uniq[:room]
				dead[f] = true
			}
			set := make(map[graph.VertexID]bool, len(uniq))
			for _, v := range uniq {
				set[v] = true
			}
			burnedCount[f] += len(uniq)
			allow[f] = set
		}
		return map[string]any{"allow": allow}, false
	}

	if err := e.Run(ctx, compute, master); err != nil {
		return nil, err
	}

	out := algo.EvoOutput{NewVertices: k}
	for v := 0; v < n; v++ {
		for _, f := range burnedBy[v] {
			out.Edges = append(out.Edges, [2]graph.VertexID{graph.VertexID(n + int(f)), graph.VertexID(v)})
		}
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	return &platform.Result{Output: out, Counters: *counters}, nil
}
