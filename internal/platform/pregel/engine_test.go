package pregel

import (
	"context"
	"testing"

	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Directed(false))
	for i := 0; i < n-1; i++ {
		b.AddEdgeID(graph.VertexID(i), graph.VertexID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEngineAggregatorSumsAcrossWorkers(t *testing.T) {
	g := lineGraph(t, 100)
	e := &Engine[struct{}]{
		G:       g,
		Workers: 4,
		AggMerge: map[string]func(a, b any) any{
			"sum": func(a, b any) any { return a.(int) + b.(int) },
		},
	}
	var got int
	compute := func(c *VCtx[struct{}], v graph.VertexID, msgs []struct{}) {
		c.Aggregate("sum", 1)
		c.VoteToHalt(v)
	}
	master := func(step int, agg map[string]any) (map[string]any, bool) {
		got, _ = agg["sum"].(int)
		return nil, true
	}
	if err := e.Run(context.Background(), compute, master); err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("aggregated sum = %d, want 100", got)
	}
}

func TestEngineMasterPublishesToNextSuperstep(t *testing.T) {
	g := lineGraph(t, 10)
	e := &Engine[int]{G: g, Workers: 2, MsgBytes: func(int) int64 { return 8 }}
	sawPublished := false
	compute := func(c *VCtx[int], v graph.VertexID, msgs []int) {
		if c.Superstep() == 1 {
			if val, ok := c.AggValue("broadcast").(string); ok && val == "hello" {
				sawPublished = true
			}
			c.VoteToHalt(v)
			return
		}
		if c.Superstep() == 0 && v == 0 {
			// Keep one vertex active into superstep 1 via a self message.
			c.Send(0, 1)
		}
		c.VoteToHalt(v)
	}
	master := func(step int, agg map[string]any) (map[string]any, bool) {
		if step == 0 {
			return map[string]any{"broadcast": "hello"}, false
		}
		return nil, true
	}
	if err := e.Run(context.Background(), compute, master); err != nil {
		t.Fatal(err)
	}
	if !sawPublished {
		t.Error("master-published value never reached a vertex")
	}
}

func TestEngineHaltAndWake(t *testing.T) {
	g := lineGraph(t, 5)
	e := &Engine[int]{G: g, Workers: 1, MsgBytes: func(int) int64 { return 8 }}
	computeCalls := make(map[graph.VertexID]int)
	compute := func(c *VCtx[int], v graph.VertexID, msgs []int) {
		computeCalls[v]++
		if c.Superstep() == 0 && v == 0 {
			c.Send(1, 42) // wake vertex 1 only
		}
		c.VoteToHalt(v)
	}
	if err := e.Run(context.Background(), compute, nil); err != nil {
		t.Fatal(err)
	}
	if computeCalls[1] != 2 {
		t.Errorf("vertex 1 computed %d times, want 2 (superstep 0 + wake)", computeCalls[1])
	}
	for _, v := range []graph.VertexID{2, 3, 4} {
		if computeCalls[v] != 1 {
			t.Errorf("vertex %d computed %d times, want 1", v, computeCalls[v])
		}
	}
}

func TestEngineMaxSuperstepsBound(t *testing.T) {
	g := lineGraph(t, 4)
	e := &Engine[int]{G: g, Workers: 1, MaxSupersteps: 3, MsgBytes: func(int) int64 { return 8 }}
	counters := &platform.Counters{}
	e.Counters = counters
	// A ping-pong program that never halts.
	compute := func(c *VCtx[int], v graph.VertexID, msgs []int) {
		c.Send(v, 1)
	}
	if err := e.Run(context.Background(), compute, nil); err != nil {
		t.Fatal(err)
	}
	if counters.Supersteps != 3 {
		t.Errorf("supersteps = %d, want MaxSupersteps bound 3", counters.Supersteps)
	}
}

func TestEngineCombinerDeliversSingleMessage(t *testing.T) {
	g := lineGraph(t, 3)
	e := &Engine[int]{
		G: g, Workers: 2,
		MsgBytes: func(int) int64 { return 8 },
		Combiner: func(a, b int) int { return a + b },
	}
	var delivered []int
	compute := func(c *VCtx[int], v graph.VertexID, msgs []int) {
		if c.Superstep() == 0 {
			// Everybody sends 1 to vertex 0 three times.
			for i := 0; i < 3; i++ {
				c.Send(0, 1)
			}
			c.VoteToHalt(v)
			return
		}
		if v == 0 {
			delivered = append(delivered, msgs...)
		}
		c.VoteToHalt(v)
	}
	if err := e.Run(context.Background(), compute, nil); err != nil {
		t.Fatal(err)
	}
	// 3 senders × 3 messages, combined per (sender-worker, dest): with 2
	// workers vertex 0 receives at most 2 messages whose sum is 9.
	if len(delivered) > 2 {
		t.Errorf("delivered %d messages, combiner should collapse them", len(delivered))
	}
	sum := 0
	for _, m := range delivered {
		sum += m
	}
	if sum != 9 {
		t.Errorf("combined sum = %d, want 9", sum)
	}
}

func TestEngineNetworkAccounting(t *testing.T) {
	g := lineGraph(t, 64)
	e := &Engine[int]{G: g, Workers: 4, MsgBytes: func(int) int64 { return 8 }}
	counters := &platform.Counters{}
	e.Counters = counters
	compute := func(c *VCtx[int], v graph.VertexID, msgs []int) {
		if c.Superstep() == 0 {
			c.SendToOutNeighbors(v, 1)
		}
		c.VoteToHalt(v)
	}
	if err := e.Run(context.Background(), compute, nil); err != nil {
		t.Fatal(err)
	}
	if counters.Messages == 0 || counters.MessageBytes != counters.Messages*8 {
		t.Errorf("message accounting: %+v", counters)
	}
	if counters.NetworkBytes == 0 || counters.NetworkBytes > counters.MessageBytes {
		t.Errorf("network bytes %d out of range (total %d)", counters.NetworkBytes, counters.MessageBytes)
	}
	if counters.EdgesTraversed == 0 {
		t.Error("edges traversed not counted")
	}
}
