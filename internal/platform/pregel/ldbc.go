package pregel

// The three LDBC Graphalytics workloads (PR, SSSP, LCC) as vertex
// programs, following the same engine idioms as the paper's five in
// algorithms.go: shared kernels from internal/algo where outputs must
// match the reference, combiners where messages fold, and aggregators
// for the global quantities (PageRank's dangling mass).

import (
	"context"
	"math"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// ------------------------------ PR ------------------------------

// runPageRank runs the fixed-iteration LDBC PageRank. Every vertex
// stays active for the whole run (each iteration rebases on the global
// dangling mass, so even message-less vertices recompute): superstep 0
// initializes and scatters, supersteps 1..T update. The dangling mass
// of iteration t reaches iteration t+1 through the "dangling"
// aggregator; the sum combiner folds rank contributions sender-side.
func (l *loaded) runPageRank(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	counters := &platform.Counters{}
	ranks := make(algo.PROutput, n)
	if err := l.mem.Alloc(int64(n) * 8); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 8)

	d := p.PRDamping
	inv := 1.0 / float64(n)
	e := newEngine[float64](l, counters, func(float64) int64 { return 8 },
		func(a, b float64) float64 { return a + b })
	e.AggMerge = map[string]func(a, b any) any{
		"dangling": func(a, b any) any { return a.(float64) + b.(float64) },
	}
	scatter := func(c *VCtx[float64], v graph.VertexID) {
		if deg := l.g.OutDegree(v); deg > 0 {
			c.SendToOutNeighbors(v, d*ranks[v]/float64(deg))
		} else {
			c.Aggregate("dangling", ranks[v])
		}
	}
	compute := func(c *VCtx[float64], v graph.VertexID, msgs []float64) {
		step := c.Superstep()
		if step == 0 {
			ranks[v] = inv
			scatter(c, v)
			return
		}
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		dangling, _ := c.AggValue("dangling").(float64)
		ranks[v] = (1-d)*inv + d*dangling*inv + sum
		if step < p.PRIterations {
			scatter(c, v)
		} else {
			c.VoteToHalt(v)
		}
	}
	master := func(step int, agg map[string]any) (map[string]any, bool) {
		return nil, step >= p.PRIterations
	}
	if err := e.Run(ctx, compute, master); err != nil {
		return nil, err
	}
	return &platform.Result{Output: ranks, Counters: *counters}, nil
}

// ------------------------------ SSSP ------------------------------

// runSSSP is label-correcting shortest paths: the source seeds distance
// 0 and every improvement propagates dist+w along out-edges until the
// global fixpoint — the weighted generalization of the BFS frontier.
// The min combiner collapses candidate distances sender-side.
func (l *loaded) runSSSP(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	counters := &platform.Counters{}
	dist := make(algo.SSSPOutput, n)
	inf := math.Inf(1)
	for i := range dist {
		dist[i] = inf
	}
	if err := l.mem.Alloc(int64(n) * 8); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 8)

	e := newEngine[float64](l, counters, func(float64) int64 { return 8 },
		func(a, b float64) float64 { return math.Min(a, b) })
	relax := func(c *VCtx[float64], v graph.VertexID) {
		adj := l.g.OutNeighbors(v)
		ws := l.g.OutWeights(v)
		for i, u := range adj {
			c.Send(u, dist[v]+graph.WeightAt(ws, i))
		}
		c.CountEdges(int64(len(adj)))
	}
	compute := func(c *VCtx[float64], v graph.VertexID, msgs []float64) {
		if c.Superstep() == 0 {
			if v == p.Source {
				dist[v] = 0
				relax(c, v)
			}
			c.VoteToHalt(v)
			return
		}
		best := dist[v]
		for _, m := range msgs {
			if m < best {
				best = m
			}
		}
		if best < dist[v] {
			dist[v] = best
			relax(c, v)
		}
		c.VoteToHalt(v)
	}
	if err := e.Run(ctx, compute, nil); err != nil {
		return nil, err
	}
	return &platform.Result{Output: dist, Counters: *counters}, nil
}

// ------------------------------ LCC ------------------------------

// runLCC is the per-vertex variant of runStats: the same two-superstep
// neighborhood exchange (announce N(v), reply with closed-pair counts),
// but every vertex keeps its own coefficient instead of folding into a
// mean aggregator. It shares statsMsg and the CountClosedPairs kernel,
// so numerators match the reference bit-for-bit.
func (l *loaded) runLCC(ctx context.Context, p algo.Params) (*platform.Result, error) {
	n := l.g.NumVertices()
	counters := &platform.Counters{}
	lcc := make(algo.LCCOutput, n)
	if err := l.mem.Alloc(int64(n) * 8); err != nil {
		return nil, err
	}
	defer l.mem.Free(int64(n) * 8)

	e := newEngine[statsMsg](l, counters, statsMsgBytes, nil)
	compute := func(c *VCtx[statsMsg], v graph.VertexID, msgs []statsMsg) {
		switch c.Superstep() {
		case 0:
			nbh := l.g.Neighborhood(v, nil)
			if len(nbh) >= 2 {
				for _, u := range nbh {
					c.Send(u, statsMsg{from: v, nbh: nbh})
				}
				c.CountEdges(int64(len(nbh)))
			}
		case 1:
			out := l.g.OutNeighbors(v)
			for _, m := range msgs {
				cnt := algo.CountClosedPairs(out, m.nbh, v)
				c.Send(m.from, statsMsg{from: v, count: cnt, reply: true})
			}
			c.VoteToHalt(v)
		case 2:
			var sum int64
			for _, m := range msgs {
				sum += m.count
			}
			d := float64(len(l.g.Neighborhood(v, nil)))
			if d >= 2 {
				lcc[v] = float64(sum) / (d * (d - 1))
			}
			c.VoteToHalt(v)
		default:
			c.VoteToHalt(v)
		}
	}
	if err := e.Run(ctx, compute, nil); err != nil {
		return nil, err
	}
	return &platform.Result{Output: lcc, Counters: *counters}, nil
}
