package pregel

import (
	"context"
	"fmt"
	"runtime"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// Options configures the BSP platform.
type Options struct {
	// Workers is the number of BSP workers (default GOMAXPROCS).
	Workers int
	// MemoryBudget bounds the engine's live bytes (graph + state +
	// in-flight messages); 0 = unlimited.
	MemoryBudget int64
	// DisableCombiners turns off sender-side message combining (the
	// network-utilization ablation).
	DisableCombiners bool
	// Partitioner overrides the default hash partitioner (the
	// partitioning ablation).
	Partitioner graph.Partitioner
}

// Platform is the Giraph-analogue platform.
type Platform struct {
	opts Options
}

// New returns a BSP platform with the given options.
func New(opts Options) *Platform {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Platform{opts: opts}
}

// Name implements platform.Platform.
func (p *Platform) Name() string { return "pregel" }

// StampConfig implements platform.ConfigStamper: every option that
// changes results or resource behaviour, canonically rendered.
func (p *Platform) StampConfig() string {
	part := "hash"
	if p.opts.Partitioner != nil {
		part = p.opts.Partitioner.Name()
	}
	return fmt.Sprintf("pregel/workers=%d,mem=%d,combiners=%t,partitioner=%s",
		p.opts.Workers, p.opts.MemoryBudget, !p.opts.DisableCombiners, part)
}

// ConcurrencyLimit implements platform.ConcurrencyHinter: a
// memory-budgeted engine serializes its jobs so concurrent loads do
// not double-count against one budget.
func (p *Platform) ConcurrencyLimit() int {
	if p.opts.MemoryBudget > 0 {
		return 1
	}
	return 0
}

// LoadGraph implements platform.Platform. The BSP engine keeps the CSR
// resident; loading fails if it alone exceeds the memory budget.
func (p *Platform) LoadGraph(g *graph.Graph) (platform.Loaded, error) {
	mem := platform.NewMemoryTracker(p.Name(), p.opts.MemoryBudget)
	if err := mem.Alloc(g.MemoryFootprint()); err != nil {
		return nil, err
	}
	return &loaded{p: p, g: g, mem: mem, graphBytes: g.MemoryFootprint()}, nil
}

type loaded struct {
	p          *Platform
	g          *graph.Graph
	mem        *platform.MemoryTracker
	graphBytes int64
}

// Graph implements platform.Loaded.
func (l *loaded) Graph() *graph.Graph { return l.g }

// Close implements platform.Loaded.
func (l *loaded) Close() error {
	l.mem.Free(l.graphBytes)
	return nil
}

// Run implements platform.Loaded.
func (l *loaded) Run(ctx context.Context, kind algo.Kind, params algo.Params) (*platform.Result, error) {
	params = params.WithDefaults(l.g.NumVertices())
	var res *platform.Result
	var err error
	switch kind {
	case algo.BFS:
		res, err = l.runBFS(ctx, params)
	case algo.CONN:
		res, err = l.runConn(ctx, params)
	case algo.CD:
		res, err = l.runCD(ctx, params)
	case algo.STATS:
		res, err = l.runStats(ctx, params)
	case algo.EVO:
		res, err = l.runEvo(ctx, params)
	case algo.PR:
		res, err = l.runPageRank(ctx, params)
	case algo.SSSP:
		res, err = l.runSSSP(ctx, params)
	case algo.LCC:
		res, err = l.runLCC(ctx, params)
	default:
		return nil, fmt.Errorf("%w: %s on %s", platform.ErrUnsupported, kind, l.p.Name())
	}
	if err != nil {
		return nil, err
	}
	res.Counters.PeakMemoryBytes = l.mem.Peak()
	return res, nil
}

// newEngine builds an engine wired to the platform options.
func newEngine[M any](l *loaded, counters *platform.Counters, msgBytes func(M) int64, combiner func(a, b M) M) *Engine[M] {
	if l.p.opts.DisableCombiners {
		combiner = nil
	}
	return &Engine[M]{
		G:           l.g,
		Workers:     l.p.opts.Workers,
		Partitioner: l.p.opts.Partitioner,
		Combiner:    combiner,
		MsgBytes:    msgBytes,
		Mem:         l.mem,
		Counters:    counters,
	}
}
