// Package pregel implements the Giraph analogue: a Pregel-model bulk
// synchronous parallel (BSP) engine (§3.2: "computation is
// vertex-centric and progresses in steps separated by synchronization
// barriers. All vertices execute the same function in parallel during a
// computation step, using as input messages received from other
// vertices") together with vertex-centric implementations of all five
// Graphalytics algorithms.
//
// Fidelity notes (what makes this engine behave like Giraph in the
// Figure 4/5 experiments):
//
//   - vertex state and adjacency stay resident in compact arrays; only
//     messages are produced per superstep — the reason the BSP engine is
//     the fastest distributed platform in the matrix;
//   - vertices are hash-partitioned across workers; messages crossing a
//     partition boundary are counted as network traffic (choke point
//     §2.1 "excessive network utilization");
//   - optional sender-side combiners reduce message volume (ablation);
//   - per-worker busy times and per-superstep active-vertex counts are
//     recorded (choke point §2.1 "skewed execution intensity");
//   - all message effects are order-insensitive or internally sorted, so
//     results are identical to the sequential reference regardless of
//     scheduling.
package pregel

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/telemetry"
)

// ComputeFunc is the vertex program executed each superstep. msgs holds
// the messages delivered to v this superstep (nil in superstep 0).
type ComputeFunc[M any] func(c *VCtx[M], v graph.VertexID, msgs []M)

// Engine is a BSP execution engine for message type M.
type Engine[M any] struct {
	// G is the loaded graph.
	G *graph.Graph
	// Workers is the number of BSP workers (partitions).
	Workers int
	// Partitioner maps vertices to workers (nil = hash).
	Partitioner graph.Partitioner
	// Combiner, when non-nil, merges messages addressed to the same
	// vertex at the sender side (Giraph message combiner).
	Combiner func(a, b M) M
	// MsgBytes estimates the payload size of a message for memory and
	// network accounting.
	MsgBytes func(M) int64
	// Mem enforces the platform memory budget.
	Mem *platform.MemoryTracker
	// Counters receives the run's metrics.
	Counters *platform.Counters
	// MaxSupersteps bounds execution (safety).
	MaxSupersteps int

	// AggMerge registers aggregator merge functions by name.
	AggMerge map[string]func(a, b any) any

	partOf   []int32
	byPart   [][]graph.VertexID
	localIdx []int32 // vertex -> index within its partition's vertex list
	inbox    [][]M
	next     [][]M
	halted   []bool
	aggPrev  map[string]any
	aggCur   map[string]any
	step     int

	liveMsgBytes int64
}

// VCtx is the per-worker compute context handed to vertex programs.
type VCtx[M any] struct {
	e       *Engine[M]
	worker  int
	outbox  [][]targeted[M]  // per destination worker
	combuf  []*combineBuf[M] // per destination worker, when combining
	lagg    map[string]any   // worker-local aggregations
	haltReq []graph.VertexID // vertices voting to halt this superstep
	sent    int64
	sentB   int64
	netB    int64
	edges   int64
}

type targeted[M any] struct {
	dst graph.VertexID
	msg M
}

// combineBuf is a dense sender-side combining store for one destination
// partition (Giraph's primitive-array message store): one slot per
// destination-partition vertex, addressed by local index.
type combineBuf[M any] struct {
	vals    []M
	present []bool
	touched []int32 // local indices written this superstep
}

func newCombineBuf[M any](size int) *combineBuf[M] {
	return &combineBuf[M]{vals: make([]M, size), present: make([]bool, size)}
}

// reset clears the buffer for the next superstep (O(touched)).
func (b *combineBuf[M]) reset() {
	var zero M
	for _, li := range b.touched {
		b.present[li] = false
		b.vals[li] = zero
	}
	b.touched = b.touched[:0]
}

// Superstep returns the current superstep number (0-based).
func (c *VCtx[M]) Superstep() int { return c.e.step }

// Graph returns the graph being processed.
func (c *VCtx[M]) Graph() *graph.Graph { return c.e.G }

// Send delivers m to dst at the next superstep.
func (c *VCtx[M]) Send(dst graph.VertexID, m M) {
	w := c.e.workerOf(dst)
	size := c.e.MsgBytes(m)
	if c.combuf != nil {
		buf := c.combuf[w]
		li := c.e.localIdx[dst]
		if buf.present[li] {
			buf.vals[li] = c.e.Combiner(buf.vals[li], m)
			return // combined: no new message materialized
		}
		buf.present[li] = true
		buf.vals[li] = m
		buf.touched = append(buf.touched, li)
		c.sent++
		c.sentB += size
		if w != c.worker {
			c.netB += size
		}
		return
	}
	if w != c.worker {
		c.netB += size
	}
	c.outbox[w] = append(c.outbox[w], targeted[M]{dst: dst, msg: m})
	c.sent++
	c.sentB += size
}

// SendToOutNeighbors sends m along every out-edge of v.
func (c *VCtx[M]) SendToOutNeighbors(v graph.VertexID, m M) {
	for _, u := range c.e.G.OutNeighbors(v) {
		c.Send(u, m)
	}
	c.edges += int64(c.e.G.OutDegree(v))
}

// SendToAllNeighbors sends m to N(v) = out ∪ in (the CD/CONN
// neighborhood for directed graphs).
func (c *VCtx[M]) SendToAllNeighbors(v graph.VertexID, m M) {
	if !c.e.G.Directed() {
		c.SendToOutNeighbors(v, m)
		return
	}
	var buf []graph.VertexID
	buf = c.e.G.Neighborhood(v, buf)
	for _, u := range buf {
		c.Send(u, m)
	}
	c.edges += int64(len(buf))
}

// VoteToHalt deactivates v until a message wakes it.
func (c *VCtx[M]) VoteToHalt(v graph.VertexID) {
	c.haltReq = append(c.haltReq, v)
}

// Aggregate folds value into the named aggregator (visible to vertices
// and the master hook after this superstep).
func (c *VCtx[M]) Aggregate(name string, value any) {
	if cur, ok := c.lagg[name]; ok {
		c.lagg[name] = c.e.AggMerge[name](cur, value)
	} else {
		c.lagg[name] = value
	}
}

// AggValue returns the named aggregator's value from the previous
// superstep (nil if absent).
func (c *VCtx[M]) AggValue(name string) any { return c.e.aggPrev[name] }

// CountEdges adds n to the traversed-edge counter without sending.
func (c *VCtx[M]) CountEdges(n int64) { c.edges += n }

// MasterFunc runs after each superstep with the aggregated values; it
// returns replacement aggregator values to publish (may be the same map)
// and whether the computation should stop.
type MasterFunc func(step int, agg map[string]any) (publish map[string]any, stop bool)

// Run executes the BSP loop until no vertex is active and no message is
// in flight, the master stops it, or MaxSupersteps is hit.
func (e *Engine[M]) Run(ctx context.Context, compute ComputeFunc[M], master MasterFunc) error {
	n := e.G.NumVertices()
	if e.Workers <= 0 {
		e.Workers = runtime.GOMAXPROCS(0)
	}
	if e.Partitioner == nil {
		e.Partitioner = graph.NewHashPartitioner(e.Workers)
	}
	if e.MaxSupersteps <= 0 {
		e.MaxSupersteps = 2*n + 10
	}
	if e.MsgBytes == nil {
		e.MsgBytes = func(M) int64 { return 8 }
	}
	if e.Counters == nil {
		e.Counters = &platform.Counters{}
	}

	e.partOf = make([]int32, n)
	e.byPart = make([][]graph.VertexID, e.Workers)
	e.localIdx = make([]int32, n)
	for v := 0; v < n; v++ {
		p := e.Partitioner.Assign(graph.VertexID(v)) % e.Workers
		e.partOf[v] = int32(p)
		e.localIdx[v] = int32(len(e.byPart[p]))
		e.byPart[p] = append(e.byPart[p], graph.VertexID(v))
	}
	e.inbox = make([][]M, n)
	e.next = make([][]M, n)
	e.halted = make([]bool, n)
	e.aggPrev = map[string]any{}
	e.aggCur = map[string]any{}
	var engineBytes int64
	if e.Mem != nil {
		// Engine bookkeeping: partition maps + inbox headers + halt flags.
		engineBytes = int64(n) * (4 + 4 + 48 + 1)
		if err := e.Mem.Alloc(engineBytes); err != nil {
			e.Mem.Free(engineBytes)
			return err
		}
		defer e.Mem.Free(engineBytes)
		defer func() {
			e.Mem.Free(e.liveMsgBytes)
			e.liveMsgBytes = 0
		}()
	}
	if len(e.Counters.WorkerBusy) < e.Workers {
		e.Counters.WorkerBusy = make([]time.Duration, e.Workers)
	}

	ctxs := make([]*VCtx[M], e.Workers)
	for w := 0; w < e.Workers; w++ {
		ctxs[w] = &VCtx[M]{e: e, worker: w}
		if e.Combiner != nil {
			ctxs[w].combuf = make([]*combineBuf[M], e.Workers)
			for dw := 0; dw < e.Workers; dw++ {
				ctxs[w].combuf[dw] = newCombineBuf[M](len(e.byPart[dw]))
			}
		}
	}
	if e.Combiner != nil && e.Mem != nil {
		// Dense combining stores: Workers × n slots.
		combBytes := int64(e.Workers) * int64(n) * (e.MsgBytes(*new(M)) + 1)
		if err := e.Mem.Alloc(combBytes); err != nil {
			e.Mem.Free(combBytes)
			return err
		}
		defer e.Mem.Free(combBytes)
	}

	for e.step = 0; e.step < e.MaxSupersteps; e.step++ {
		if err := platform.CheckContextPhase(ctx, "pregel/superstep"); err != nil {
			return err
		}
		active := e.countActive()
		e.Counters.ActivePerStep = append(e.Counters.ActivePerStep, active)
		if active == 0 {
			break
		}
		e.Counters.Supersteps++
		ssp := telemetry.StartSpan("pregel", "superstep")
		ssp.SetAttr("step", e.step)
		ssp.SetAttr("active", active)
		ssp.SetAttr("workers", e.Workers)

		// Compute phase. Each worker probes the context every CheckStride
		// vertices so even one huge superstep stays interruptible.
		var wg sync.WaitGroup
		werr := make([]error, e.Workers)
		for w := 0; w < e.Workers; w++ {
			c := ctxs[w]
			c.outbox = make([][]targeted[M], e.Workers)
			c.lagg = map[string]any{}
			c.haltReq = c.haltReq[:0]
			wg.Add(1)
			go func(w int, c *VCtx[M]) {
				defer wg.Done()
				start := time.Now()
				for i, v := range e.byPart[w] {
					if i%platform.CheckStride == 0 && ctx.Err() != nil {
						werr[w] = platform.CheckContextPhase(ctx, "pregel/compute")
						break
					}
					msgs := e.inbox[v]
					if e.halted[v] && len(msgs) == 0 {
						continue
					}
					e.halted[v] = false
					compute(c, v, msgs)
				}
				e.Counters.WorkerBusy[w] += time.Since(start)
			}(w, c)
		}
		wg.Wait()
		if err := firstError(werr); err != nil {
			ssp.SetAttr("error", err.Error())
			ssp.End()
			return err
		}

		// Apply halt votes and clear consumed inboxes.
		for _, c := range ctxs {
			for _, v := range c.haltReq {
				e.halted[v] = true
			}
		}
		if e.Mem != nil {
			e.Mem.Free(e.liveMsgBytes)
			e.liveMsgBytes = 0
		}
		for v := range e.inbox {
			e.inbox[v] = nil
		}

		// Aggregator merge in worker order (deterministic).
		for _, c := range ctxs {
			for name, val := range c.lagg {
				if cur, ok := e.aggCur[name]; ok {
					e.aggCur[name] = e.AggMerge[name](cur, val)
				} else {
					e.aggCur[name] = val
				}
			}
		}

		// Deliver phase: per destination worker, drain source workers in
		// fixed order so per-vertex message order is deterministic.
		var totalSent, totalB, netB, edges int64
		for _, c := range ctxs {
			totalSent += c.sent
			totalB += c.sentB
			netB += c.netB
			edges += c.edges
			c.sent, c.sentB, c.netB, c.edges = 0, 0, 0, 0
		}
		e.Counters.Messages += totalSent
		e.Counters.MessageBytes += totalB
		e.Counters.NetworkBytes += netB
		e.Counters.EdgesTraversed += edges
		if e.Mem != nil {
			e.liveMsgBytes = totalB
			if err := e.Mem.Alloc(totalB); err != nil {
				return err
			}
		}
		var dwg sync.WaitGroup
		derr := make([]error, e.Workers)
		for dw := 0; dw < e.Workers; dw++ {
			dwg.Add(1)
			go func(dw int) {
				defer dwg.Done()
				for _, c := range ctxs {
					if c.combuf != nil {
						// Deterministic order: sorted local indices.
						buf := c.combuf[dw]
						if len(buf.touched) == 0 {
							continue
						}
						sort.Slice(buf.touched, func(i, j int) bool { return buf.touched[i] < buf.touched[j] })
						verts := e.byPart[dw]
						for i, li := range buf.touched {
							if i%platform.CheckStride == 0 && ctx.Err() != nil {
								derr[dw] = platform.CheckContextPhase(ctx, "pregel/deliver")
								return
							}
							v := verts[li]
							e.next[v] = append(e.next[v], buf.vals[li])
						}
						buf.reset()
						continue
					}
					for i, t := range c.outbox[dw] {
						if i%platform.CheckStride == 0 && ctx.Err() != nil {
							derr[dw] = platform.CheckContextPhase(ctx, "pregel/deliver")
							return
						}
						e.next[t.dst] = append(e.next[t.dst], t.msg)
					}
				}
			}(dw)
		}
		dwg.Wait()
		if err := firstError(derr); err != nil {
			ssp.SetAttr("error", err.Error())
			ssp.End()
			return err
		}
		e.inbox, e.next = e.next, e.inbox
		ssp.SetAttr("messages", totalSent)
		ssp.End()

		// Master hook sees aggregated values, publishes for the next step.
		e.aggPrev = e.aggCur
		e.aggCur = map[string]any{}
		if master != nil {
			publish, stop := master(e.step, e.aggPrev)
			if publish != nil {
				e.aggPrev = publish
			}
			if stop {
				break
			}
		}
	}
	return nil
}

func (e *Engine[M]) workerOf(v graph.VertexID) int { return int(e.partOf[v]) }

// firstError returns the lowest-indexed non-nil error from a per-worker
// error slice (deterministic pick under concurrent interruption).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine[M]) countActive() int64 {
	var active int64
	for v := 0; v < len(e.halted); v++ {
		if !e.halted[v] || len(e.inbox[v]) > 0 {
			active++
		}
	}
	return active
}
