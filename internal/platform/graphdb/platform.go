package graphdb

import (
	"context"
	"fmt"
	"sort"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/xrand"
)

// Options configures the graph database platform.
type Options struct {
	// MemoryBudget bounds the record-store bytes; ETL fails beyond it
	// (0 = unlimited).
	MemoryBudget int64
	// PageCachePages sets the page cache capacity in 8 KiB pages
	// (default 8192 = 64 MiB).
	PageCachePages int
}

// Platform is the Neo4j analogue.
type Platform struct {
	opts Options
}

// New returns a graph database platform.
func New(opts Options) *Platform {
	return &Platform{opts: opts}
}

// Name implements platform.Platform.
func (p *Platform) Name() string { return "graphdb" }

// StampConfig implements platform.ConfigStamper. PageCachePages changes
// hit/miss counters (part of the stored result), so it invalidates too.
func (p *Platform) StampConfig() string {
	return fmt.Sprintf("graphdb/mem=%d,pages=%d",
		p.opts.MemoryBudget, p.opts.PageCachePages)
}

// ConcurrencyLimit implements platform.ConcurrencyHinter: the record
// store and its page cache are sized for one resident graph, so a
// memory-budgeted database serializes its jobs.
func (p *Platform) ConcurrencyLimit() int {
	if p.opts.MemoryBudget > 0 {
		return 1
	}
	return 0
}

// LoadGraph implements platform.Platform: it builds the record stores.
// Unlike the distributed platforms, the whole store must fit in one
// machine's budget or the import fails.
func (p *Platform) LoadGraph(g *graph.Graph) (platform.Loaded, error) {
	mem := platform.NewMemoryTracker(p.Name(), p.opts.MemoryBudget)
	store := BuildStore(g, p.opts.PageCachePages)
	if err := mem.Alloc(store.Bytes()); err != nil {
		return nil, err
	}
	return &loaded{p: p, g: g, store: store, mem: mem}, nil
}

type loaded struct {
	p     *Platform
	g     *graph.Graph
	store *Store
	mem   *platform.MemoryTracker
}

// Graph implements platform.Loaded.
func (l *loaded) Graph() *graph.Graph { return l.g }

// Close implements platform.Loaded.
func (l *loaded) Close() error {
	l.mem.Free(l.store.Bytes())
	return nil
}

// Run implements platform.Loaded.
func (l *loaded) Run(ctx context.Context, kind algo.Kind, params algo.Params) (*platform.Result, error) {
	params = params.WithDefaults(l.g.NumVertices())
	counters := &platform.Counters{}
	h0, m0 := l.store.CacheStats()
	start := time.Now()

	var out any
	var err error
	switch kind {
	case algo.BFS:
		out, err = l.runBFS(ctx, params)
	case algo.CONN:
		out, err = l.runConn(ctx)
	case algo.CD:
		out, err = l.runCD(ctx, params)
	case algo.STATS:
		out, err = l.runStats(ctx)
	case algo.EVO:
		out, err = l.runEvo(ctx, params)
	case algo.PR:
		out, err = l.runPageRank(ctx, params)
	case algo.SSSP:
		out, err = l.runSSSP(ctx, params)
	case algo.LCC:
		out, err = l.runLCC(ctx)
	default:
		return nil, fmt.Errorf("%w: %s on %s", platform.ErrUnsupported, kind, l.p.Name())
	}
	if err != nil {
		return nil, err
	}
	h1, m1 := l.store.CacheStats()
	counters.CacheHits = h1 - h0
	counters.CacheMisses = m1 - m0
	counters.EdgesTraversed = (h1 - h0) + (m1 - m0) // record touches
	counters.Supersteps = 1                         // one transaction scope
	counters.WorkerBusy = []time.Duration{time.Since(start)}
	counters.PeakMemoryBytes = l.mem.Peak()
	return &platform.Result{Output: out, Counters: *counters}, nil
}

// runBFS: classic queue traversal over the store (out-direction).
func (l *loaded) runBFS(ctx context.Context, p algo.Params) (algo.BFSOutput, error) {
	n := l.store.NumNodes()
	depth := make(algo.BFSOutput, n)
	for i := range depth {
		depth[i] = -1
	}
	if int(p.Source) >= n {
		return depth, nil
	}
	depth[p.Source] = 0
	frontier := []graph.VertexID{p.Source}
	expanded := 0
	for level := int64(1); len(frontier) > 0; level++ {
		var next []graph.VertexID
		for _, v := range frontier {
			if expanded%platform.CheckStride == 0 {
				if err := platform.CheckContextPhase(ctx, "graphdb/bfs"); err != nil {
					return nil, err
				}
			}
			expanded++
			l.store.Expand(v, func(other graph.VertexID, outgoing bool) {
				if outgoing && depth[other] == -1 {
					depth[other] = level
					next = append(next, other)
				}
			})
		}
		frontier = next
	}
	return depth, nil
}

// runConn: ascending-scan traversal labeling. The first unvisited vertex
// of each component is its minimum ID, so the labels equal the HashMin
// fixpoint the other platforms compute.
func (l *loaded) runConn(ctx context.Context) (algo.ConnOutput, error) {
	n := l.store.NumNodes()
	labels := make(algo.ConnOutput, n)
	visited := make([]bool, n)
	var stack []graph.VertexID
	pops := 0
	for v := 0; v < n; v++ {
		if visited[v] {
			continue
		}
		root := graph.VertexID(v)
		visited[v] = true
		labels[v] = root
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			if pops%platform.CheckStride == 0 {
				if err := platform.CheckContextPhase(ctx, "graphdb/conn"); err != nil {
					return nil, err
				}
			}
			pops++
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l.store.Expand(u, func(other graph.VertexID, _ bool) {
				if !visited[other] {
					visited[other] = true
					labels[other] = root
					stack = append(stack, other)
				}
			})
		}
	}
	return labels, nil
}

// runCD: per-iteration gather of neighbor states through the store.
func (l *loaded) runCD(ctx context.Context, p algo.Params) (algo.CDOutput, error) {
	n := l.store.NumNodes()
	labels := make([]int64, n)
	scores := make([]float64, n)
	degs := make([]int32, n)
	var buf []graph.VertexID
	for v := 0; v < n; v++ {
		labels[v] = int64(v)
		scores[v] = 1
		buf = l.store.Neighborhood(graph.VertexID(v), buf[:0])
		degs[v] = int32(len(buf))
	}
	newLabels := make([]int64, n)
	newScores := make([]float64, n)
	votes := make([]algo.Vote, 0, 64)
	for iter := 0; iter < p.CDIterations; iter++ {
		for v := 0; v < n; v++ {
			if v%platform.CheckStride == 0 {
				if err := platform.CheckContextPhase(ctx, "graphdb/cd"); err != nil {
					return nil, err
				}
			}
			buf = l.store.Neighborhood(graph.VertexID(v), buf[:0])
			votes = votes[:0]
			for _, u := range buf {
				votes = append(votes, algo.Vote{Label: labels[u], Score: scores[u], Degree: degs[u]})
			}
			win, maxScore, ok := algo.TallyVotes(votes, p.CDPreference)
			if !ok {
				newLabels[v] = labels[v]
				newScores[v] = scores[v]
				continue
			}
			s := maxScore
			if win != labels[v] {
				s -= p.CDDelta
			}
			if s < 0 {
				s = 0
			}
			newLabels[v] = win
			newScores[v] = s
		}
		labels, newLabels = newLabels, labels
		scores, newScores = newScores, scores
	}
	return algo.CDOutput(labels), nil
}

// runStats: neighborhood intersections through the store.
func (l *loaded) runStats(ctx context.Context) (algo.StatsOutput, error) {
	n := l.store.NumNodes()
	var sum float64
	var nbh, out []graph.VertexID
	for v := 0; v < n; v++ {
		if v%platform.CheckStride == 0 {
			if err := platform.CheckContextPhase(ctx, "graphdb/stats"); err != nil {
				return algo.StatsOutput{}, err
			}
		}
		nbh = l.store.Neighborhood(graph.VertexID(v), nbh[:0])
		d := len(nbh)
		if d < 2 {
			continue
		}
		var links int64
		for _, u := range nbh {
			out = l.store.OutNeighbors(u, out[:0])
			links += algo.CountClosedPairs(out, nbh, u)
		}
		sum += float64(links) / (float64(d) * float64(d-1))
	}
	return algo.StatsOutput{Vertices: n, Edges: l.g.NumEdges(), MeanLCC: sum / float64(n)}, nil
}

// runEvo: the reference fire spec executed with store-gathered adjacency.
func (l *loaded) runEvo(ctx context.Context, p algo.Params) (algo.EvoOutput, error) {
	n := l.store.NumNodes()
	k := p.EvoNewVertices
	out := algo.EvoOutput{NewVertices: k}

	var outN, inN []graph.VertexID
	for f := 0; f < k; f++ {
		newV := graph.VertexID(n + f)
		a := graph.VertexID(xrand.Mix3(p.Seed, uint64(newV), 0) % uint64(n))
		burned := map[graph.VertexID]bool{a: true}
		level := []graph.VertexID{a}
		for len(level) > 0 && len(burned) < p.EvoMaxBurn {
			if err := platform.CheckContextPhase(ctx, "graphdb/evo"); err != nil {
				return algo.EvoOutput{}, err
			}
			var next []graph.VertexID
			inNext := map[graph.VertexID]bool{}
			for _, u := range level {
				outN = l.store.OutNeighbors(u, outN[:0])
				if l.store.directed {
					inN = l.store.InNeighbors(u, inN[:0])
				} else {
					inN = outN
				}
				for _, w := range algo.FirePicksFromLists(newV, u, outN, inN, p) {
					if burned[w] || inNext[w] {
						continue
					}
					inNext[w] = true
					next = append(next, w)
				}
			}
			sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
			if room := p.EvoMaxBurn - len(burned); len(next) > room {
				next = next[:room]
			}
			for _, w := range next {
				burned[w] = true
			}
			level = next
		}
		targets := make([]graph.VertexID, 0, len(burned))
		for w := range burned {
			targets = append(targets, w)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, w := range targets {
			out.Edges = append(out.Edges, [2]graph.VertexID{newV, w})
		}
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	return out, nil
}
