// Package graphdb implements the Neo4j analogue: a single-machine,
// non-distributed property-graph database with Neo4j's physical layout —
// a node store, a relationship store with per-node doubly-linked
// relationship chains, and a page cache through which every record
// access flows. The five Graphalytics algorithms run as single-threaded
// traversals over the store's Core-API-style primitives.
//
// Fidelity notes (why this platform lands where Figure 4 puts Neo4j):
//
//   - record-chain traversal has no sequential locality: following a
//     relationship chain hops across the relationship store, so page
//     cache misses track the "poor access locality" choke point (§2.1);
//   - the store must fit in one machine's memory: ETL fails on graphs
//     beyond the budget ("Neo4j is not able to process graphs larger
//     than the memory of a single machine", §3.2);
//   - execution is single-threaded, so it is competitive on small
//     graphs and falls behind the distributed engines as graphs grow.
package graphdb

import (
	"sort"

	"graphalytics/internal/graph"
)

const (
	relRecordBytes  = 16
	nodeRecordBytes = 4
	defaultPageSize = 8192
)

// relRecord is one relationship in the relationship store. Chains:
// srcNext links the next relationship of the src node, dstNext the next
// of the dst node (Neo4j's doubly-linked relationship chains).
type relRecord struct {
	src, dst         graph.VertexID
	srcNext, dstNext int32
}

// Store is the record-store database instance.
type Store struct {
	directed bool
	nodes    []int32 // firstRel per node (-1 = none)
	rels     []relRecord
	// weights is the relationship property store (one float64 per
	// relationship), nil for unweighted graphs — Neo4j keeps properties
	// in a separate store file the same way.
	weights []float64
	cache   *pageCache
}

// BuildStore ingests g into record stores (the ETL step).
func BuildStore(g *graph.Graph, pageCachePages int) *Store {
	n := g.NumVertices()
	s := &Store{
		directed: g.Directed(),
		nodes:    make([]int32, n),
		cache:    newPageCache(pageCachePages),
	}
	for i := range s.nodes {
		s.nodes[i] = -1
	}
	// One relationship per logical edge, appended in edge order; chains
	// are built by prepending (Neo4j inserts at the chain head).
	weighted := g.Weighted()
	g.EdgesW(func(u, v graph.VertexID, w float64) {
		id := int32(len(s.rels))
		s.rels = append(s.rels, relRecord{
			src:     u,
			dst:     v,
			srcNext: s.nodes[u],
			dstNext: s.nodes[v],
		})
		if weighted {
			s.weights = append(s.weights, w)
		}
		s.nodes[u] = id
		if v != u {
			s.nodes[v] = id
		}
	})
	return s
}

// Bytes returns the store's record footprint (including the
// relationship property store when the graph is weighted).
func (s *Store) Bytes() int64 {
	b := int64(len(s.nodes))*nodeRecordBytes + int64(len(s.rels))*relRecordBytes
	if s.weights != nil {
		b += int64(len(s.weights)) * 8
	}
	return b
}

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return len(s.nodes) }

// NumRels returns the relationship count.
func (s *Store) NumRels() int { return len(s.rels) }

// rel reads relationship record i through the page cache.
func (s *Store) rel(i int32) relRecord {
	s.cache.touch(int64(i) * relRecordBytes)
	return s.rels[i]
}

// firstRel reads node v's chain head through the page cache.
func (s *Store) firstRel(v graph.VertexID) int32 {
	s.cache.touch(int64(len(s.rels))*relRecordBytes + int64(v)*nodeRecordBytes)
	return s.nodes[v]
}

// Expand calls fn for every relationship of v with the other endpoint
// and the direction (outgoing = v is the relationship's src). For
// undirected stores every relationship reports outgoing = true.
// Traversal order is chain order (reverse insertion), like Neo4j.
func (s *Store) Expand(v graph.VertexID, fn func(other graph.VertexID, outgoing bool)) {
	for relID := s.firstRel(v); relID >= 0; {
		r := s.rel(relID)
		switch {
		case r.src == v && r.dst == v: // self loop
			fn(v, true)
			relID = r.srcNext
		case r.src == v:
			fn(r.dst, !s.directed || true)
			relID = r.srcNext
		default:
			fn(r.src, !s.directed)
			relID = r.dstNext
		}
	}
}

// ExpandW is Expand with each relationship's weight property (1 for
// unweighted stores). Reading the property touches the property store
// through the page cache, like Neo4j property chain loads.
func (s *Store) ExpandW(v graph.VertexID, fn func(other graph.VertexID, w float64, outgoing bool)) {
	for relID := s.firstRel(v); relID >= 0; {
		r := s.rel(relID)
		w := s.relWeight(relID)
		switch {
		case r.src == v && r.dst == v: // self loop
			fn(v, w, true)
			relID = r.srcNext
		case r.src == v:
			fn(r.dst, w, !s.directed || true)
			relID = r.srcNext
		default:
			fn(r.src, w, !s.directed)
			relID = r.dstNext
		}
	}
}

// relWeight reads relationship i's weight property through the page
// cache (1 for unweighted stores, with no property-store access).
func (s *Store) relWeight(i int32) float64 {
	if s.weights == nil {
		return 1
	}
	// The property store sits after the node store in the page space.
	s.cache.touch(int64(len(s.rels))*relRecordBytes +
		int64(len(s.nodes))*nodeRecordBytes + int64(i)*8)
	return s.weights[i]
}

// OutNeighbors gathers v's out-neighbors (all neighbors for undirected
// stores), sorted ascending, appended to buf.
func (s *Store) OutNeighbors(v graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	s.Expand(v, func(other graph.VertexID, outgoing bool) {
		if outgoing {
			buf = append(buf, other)
		}
	})
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}

// InNeighbors gathers v's in-neighbors sorted ascending, appended to buf.
func (s *Store) InNeighbors(v graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	s.Expand(v, func(other graph.VertexID, outgoing bool) {
		if !outgoing || !s.directed {
			buf = append(buf, other)
		}
	})
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}

// Neighborhood gathers N(v) = out ∪ in, self excluded, sorted and
// deduplicated, appended to buf.
func (s *Store) Neighborhood(v graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	s.Expand(v, func(other graph.VertexID, _ bool) {
		if other != v {
			buf = append(buf, other)
		}
	})
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	out := buf[:0]
	var last graph.VertexID
	for i, x := range buf {
		if i > 0 && x == last {
			continue
		}
		out = append(out, x)
		last = x
	}
	return out
}

// CacheStats returns page-cache hits and misses so far.
func (s *Store) CacheStats() (hits, misses int64) { return s.cache.hits, s.cache.misses }

// pageCache simulates Neo4j's page cache with a direct-mapped page
// table: each page offset maps to one slot; a differing resident page is
// a miss (and is replaced). The structure keeps real per-access
// bookkeeping cost while staying O(1), and its miss counts expose access
// locality.
type pageCache struct {
	slots  []int64
	hits   int64
	misses int64
}

func newPageCache(pages int) *pageCache {
	if pages <= 0 {
		pages = 8192
	}
	c := &pageCache{slots: make([]int64, pages)}
	for i := range c.slots {
		c.slots[i] = -1
	}
	return c
}

func (c *pageCache) touch(byteOffset int64) {
	page := byteOffset / defaultPageSize
	slot := page % int64(len(c.slots))
	if c.slots[slot] == page {
		c.hits++
		return
	}
	c.misses++
	c.slots[slot] = page
}
