package graphdb

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/platform"
)

func etlRoundTrip(t *testing.T, weighted bool) {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: 300, Seed: 7, Weighted: weighted})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{PageCachePages: 8})
	live, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	var blob bytes.Buffer
	if err := p.WriteETL(live, &blob); err != nil {
		t.Fatal(err)
	}
	restored, err := p.ReadETL(g, &blob)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	ls, rs := live.(*loaded).store, restored.(*loaded).store
	if rs.directed != ls.directed {
		t.Errorf("directed = %v, want %v", rs.directed, ls.directed)
	}
	if !reflect.DeepEqual(rs.nodes, ls.nodes) {
		t.Error("node stores differ after ETL round trip")
	}
	if !reflect.DeepEqual(rs.rels, ls.rels) {
		t.Error("relationship stores differ after ETL round trip")
	}
	if !reflect.DeepEqual(rs.weights, ls.weights) {
		t.Error("property stores differ after ETL round trip")
	}
}

func TestETLRoundTripUnweighted(t *testing.T) { etlRoundTrip(t, false) }
func TestETLRoundTripWeighted(t *testing.T)   { etlRoundTrip(t, true) }

// A cached load still has to fit: ReadETL applies the same memory
// budget as live ETL.
func TestETLReadEnforcesBudget(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{})
	live, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	var blob bytes.Buffer
	if err := p.WriteETL(live, &blob); err != nil {
		t.Fatal(err)
	}
	tiny := New(Options{MemoryBudget: 1024})
	if _, err := tiny.ReadETL(g, &blob); !errors.Is(err, platform.ErrOutOfMemory) {
		t.Fatalf("ReadETL under a 1KB budget = %v, want ErrOutOfMemory", err)
	}
}

func TestETLRejectsGarbage(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{})
	for name, blob := range map[string][]byte{
		"empty":     nil,
		"bad-magic": []byte("NOPE\x01\x00aaaaaaaaaaaaaaaa"),
		"truncated": append([]byte(etlMagic), etlVersion, 0),
	} {
		if _, err := p.ReadETL(g, bytes.NewReader(blob)); !errors.Is(err, errETL) {
			t.Errorf("%s: err = %v, want errETL", name, err)
		}
	}
}

func TestETLRejectsMismatchedGraph(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{})
	live, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	var blob bytes.Buffer
	if err := p.WriteETL(live, &blob); err != nil {
		t.Fatal(err)
	}
	other, err := datagen.Generate(datagen.Config{Persons: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadETL(other, &blob); !errors.Is(err, errETL) {
		t.Fatalf("blob for a different graph accepted: %v", err)
	}
}
