package graphdb

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/platformtest"
)

func TestConformance(t *testing.T) {
	platformtest.Conformance(t, New(Options{}))
}

func TestName(t *testing.T) {
	if New(Options{}).Name() != "graphdb" {
		t.Error("name")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := BuildStore(g, 0)
	if s.NumNodes() != g.NumVertices() {
		t.Fatalf("nodes = %d, want %d", s.NumNodes(), g.NumVertices())
	}
	if int64(s.NumRels()) != g.NumEdges() {
		t.Fatalf("rels = %d, want %d", s.NumRels(), g.NumEdges())
	}
	// Store adjacency must equal CSR adjacency for every vertex.
	var buf []graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		buf = s.OutNeighbors(graph.VertexID(v), buf[:0])
		want := g.OutNeighbors(graph.VertexID(v))
		if !reflect.DeepEqual(append([]graph.VertexID{}, buf...), append([]graph.VertexID{}, want...)) {
			t.Fatalf("vertex %d adjacency: store %v vs CSR %v", v, buf, want)
		}
	}
}

func TestStoreDirectedChains(t *testing.T) {
	b := graph.NewBuilder(graph.Directed(true), graph.WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(2, 1)
	b.AddEdgeID(1, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := BuildStore(g, 0)
	var buf []graph.VertexID
	if got := s.OutNeighbors(1, buf); len(got) != 1 || got[0] != 3 {
		t.Errorf("out(1) = %v, want [3]", got)
	}
	if got := s.InNeighborsTest(1); len(got) != 2 {
		t.Errorf("in(1) = %v, want [0 2]", got)
	}
	if got := s.Neighborhood(1, nil); len(got) != 3 {
		t.Errorf("N(1) = %v, want 3 members", got)
	}
}

// InNeighborsTest exposes InNeighbors for the test above.
func (s *Store) InNeighborsTest(v graph.VertexID) []graph.VertexID {
	return s.InNeighbors(v, nil)
}

func TestPageCacheCounters(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{PageCachePages: 2}) // tiny cache: misses guaranteed
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), algo.BFS, algo.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.CacheMisses == 0 {
		t.Error("tiny page cache must report misses")
	}
	if res.Counters.EdgesTraversed == 0 {
		t.Error("record touches not counted")
	}
}

func TestCacheLocalityAblation(t *testing.T) {
	// BFS-ordered relabeling improves page-cache hit rate over random
	// order — the §2.1 "poor access locality" choke point, measurable.
	g, err := datagen.Generate(datagen.Config{Persons: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	run := func(g2 *graph.Graph) float64 {
		p := New(Options{PageCachePages: 8})
		loaded, err := p.LoadGraph(g2)
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		res, err := loaded.Run(context.Background(), algo.BFS, algo.Params{Source: 0})
		if err != nil {
			t.Fatal(err)
		}
		total := res.Counters.CacheHits + res.Counters.CacheMisses
		return float64(res.Counters.CacheHits) / float64(total)
	}
	random := run(graph.Remap(g, graph.RandomOrder(g, 9)))
	ordered := run(graph.Remap(g, graph.BFSOrder(g, 0)))
	if ordered <= random {
		t.Errorf("BFS-ordered hit rate %.3f should beat random %.3f", ordered, random)
	}
}

func TestLoadOOM(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{MemoryBudget: 1024})
	if _, err := p.LoadGraph(g); !errors.Is(err, platform.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestContextCancellation(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 2000, Seed: 5})
	loaded, err := New(Options{}).LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loaded.Run(ctx, algo.CD, algo.Params{}); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestUnsupportedKind(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 100, Seed: 6})
	loaded, _ := New(Options{}).LoadGraph(g)
	defer loaded.Close()
	if _, err := loaded.Run(context.Background(), algo.Kind("XX"), algo.Params{}); !errors.Is(err, platform.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}
