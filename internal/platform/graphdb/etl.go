package graphdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// ETL blob format for the artifact cache. The graph database is the one
// platform whose ETL does real work (building record stores with
// per-node relationship chains), so its output is worth persisting:
//
//	magic    "GDBE" (4 bytes)
//	version  u8 (1)
//	flags    u8 (bit0 = directed, bit1 = weighted)
//	numNodes u64 LE
//	numRels  u64 LE
//	nodes    numNodes × i32 LE (firstRel per node)
//	rels     numRels × (src u32, dst u32, srcNext i32, dstNext i32) LE
//	weights  numRels × f64 LE (weighted stores only)
//
// The page cache is deliberately NOT serialized: it is runtime state,
// and a restored store starts cold exactly like a freshly built one, so
// cached loads keep the same hit/miss behaviour as live ETL.

const (
	etlMagic   = "GDBE"
	etlVersion = 1

	etlFlagDirected = 1 << 0
	etlFlagWeighted = 1 << 1
)

// errETL reports a malformed or mismatched ETL blob.
var errETL = errors.New("graphdb: bad ETL blob")

// ETLVersion implements platform.CachedLoader.
func (p *Platform) ETLVersion() string { return "graphdb-etl-v1" }

// WriteETL implements platform.CachedLoader: it serializes the record
// stores of a graph loaded by this platform.
func (p *Platform) WriteETL(l platform.Loaded, w io.Writer) error {
	ld, ok := l.(*loaded)
	if !ok {
		return fmt.Errorf("graphdb: WriteETL: not a graphdb-loaded graph (%T)", l)
	}
	s := ld.store
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags byte
	if s.directed {
		flags |= etlFlagDirected
	}
	if s.weights != nil {
		flags |= etlFlagWeighted
	}
	header := make([]byte, 0, 22)
	header = append(header, etlMagic...)
	header = append(header, etlVersion, flags)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(s.nodes)))
	header = binary.LittleEndian.AppendUint64(header, uint64(len(s.rels)))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	var buf [16]byte
	for _, first := range s.nodes {
		binary.LittleEndian.PutUint32(buf[:4], uint32(first))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, r := range s.rels {
		binary.LittleEndian.PutUint32(buf[0:], uint32(r.src))
		binary.LittleEndian.PutUint32(buf[4:], uint32(r.dst))
		binary.LittleEndian.PutUint32(buf[8:], uint32(r.srcNext))
		binary.LittleEndian.PutUint32(buf[12:], uint32(r.dstNext))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, wt := range s.weights {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(wt))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadETL implements platform.CachedLoader: it reconstructs the record
// stores from a WriteETL blob and applies the same memory budget as
// LoadGraph (a cached load still has to fit).
func (p *Platform) ReadETL(g *graph.Graph, r io.Reader) (platform.Loaded, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header := make([]byte, 22)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("%w: header: %w", errETL, err)
	}
	if string(header[:4]) != etlMagic {
		return nil, fmt.Errorf("%w: bad magic", errETL)
	}
	if header[4] != etlVersion {
		return nil, fmt.Errorf("%w: version %d", errETL, header[4])
	}
	flags := header[5]
	numNodes := binary.LittleEndian.Uint64(header[6:14])
	numRels := binary.LittleEndian.Uint64(header[14:22])
	if int(numNodes) != g.NumVertices() {
		return nil, fmt.Errorf("%w: %d nodes for a %d-vertex graph", errETL, numNodes, g.NumVertices())
	}
	s := &Store{
		directed: flags&etlFlagDirected != 0,
		nodes:    make([]int32, numNodes),
		rels:     make([]relRecord, numRels),
		cache:    newPageCache(p.opts.PageCachePages),
	}
	var buf [16]byte
	for i := range s.nodes {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("%w: node store: %w", errETL, err)
		}
		s.nodes[i] = int32(binary.LittleEndian.Uint32(buf[:4]))
	}
	for i := range s.rels {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: relationship store: %w", errETL, err)
		}
		s.rels[i] = relRecord{
			src:     graph.VertexID(binary.LittleEndian.Uint32(buf[0:])),
			dst:     graph.VertexID(binary.LittleEndian.Uint32(buf[4:])),
			srcNext: int32(binary.LittleEndian.Uint32(buf[8:])),
			dstNext: int32(binary.LittleEndian.Uint32(buf[12:])),
		}
	}
	if flags&etlFlagWeighted != 0 {
		s.weights = make([]float64, numRels)
		for i := range s.weights {
			if _, err := io.ReadFull(br, buf[:8]); err != nil {
				return nil, fmt.Errorf("%w: property store: %w", errETL, err)
			}
			s.weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
		}
	}
	mem := platform.NewMemoryTracker(p.Name(), p.opts.MemoryBudget)
	if err := mem.Alloc(s.Bytes()); err != nil {
		return nil, err
	}
	return &loaded{p: p, g: g, store: s, mem: mem}, nil
}
