package graphdb

// The three LDBC Graphalytics workloads (PR, SSSP, LCC) as
// single-threaded traversals over the record store, following the
// idioms of platform.go: every adjacency and property access flows
// through the page cache, so the cache counters keep exposing the
// access-locality choke point on the new workloads too.

import (
	"container/heap"
	"context"
	"math"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// runPageRank: fixed-iteration LDBC PageRank over the store. Out-degrees
// are gathered once through the relationship chains (a full store scan,
// like a Cypher aggregation), then each iteration scatters rank shares
// along out-relationships.
func (l *loaded) runPageRank(ctx context.Context, p algo.Params) (algo.PROutput, error) {
	n := l.store.NumNodes()
	d := p.PRDamping
	inv := 1.0 / float64(n)
	outdeg := make([]int, n)
	for v := 0; v < n; v++ {
		l.store.Expand(graph.VertexID(v), func(_ graph.VertexID, outgoing bool) {
			if outgoing {
				outdeg[v]++
			}
		})
	}
	ranks := make(algo.PROutput, n)
	for v := range ranks {
		ranks[v] = inv
	}
	next := make(algo.PROutput, n)
	for iter := 0; iter < p.PRIterations; iter++ {
		if err := platform.CheckContextPhase(ctx, "graphdb/pagerank"); err != nil {
			return nil, err
		}
		var dangling float64
		for v := 0; v < n; v++ {
			if outdeg[v] == 0 {
				dangling += ranks[v]
			}
		}
		base := (1-d)*inv + d*dangling*inv
		for v := range next {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			if v%platform.CheckStride == 0 && v > 0 {
				if err := platform.CheckContextPhase(ctx, "graphdb/pagerank"); err != nil {
					return nil, err
				}
			}
			if outdeg[v] == 0 {
				continue
			}
			share := d * ranks[v] / float64(outdeg[v])
			l.store.Expand(graph.VertexID(v), func(other graph.VertexID, outgoing bool) {
				if outgoing {
					next[other] += share
				}
			})
		}
		ranks, next = next, ranks
	}
	return ranks, nil
}

// runSSSP: Dijkstra over the store, reading each relationship's weight
// property through the page cache.
func (l *loaded) runSSSP(ctx context.Context, p algo.Params) (algo.SSSPOutput, error) {
	n := l.store.NumNodes()
	dist := make(algo.SSSPOutput, n)
	inf := math.Inf(1)
	for i := range dist {
		dist[i] = inf
	}
	if int(p.Source) >= n {
		return dist, nil
	}
	dist[p.Source] = 0
	pq := &storeDistHeap{{v: p.Source, d: 0}}
	pops := 0
	for pq.Len() > 0 {
		// Counter-based amortization: the old pq.Len()%1024 probe could
		// starve when the heap size oscillated across the boundary.
		if pops%1024 == 0 {
			if err := platform.CheckContextPhase(ctx, "graphdb/sssp"); err != nil {
				return nil, err
			}
		}
		pops++
		it := heap.Pop(pq).(storeDistItem)
		if it.d > dist[it.v] {
			continue // stale entry
		}
		l.store.ExpandW(it.v, func(other graph.VertexID, w float64, outgoing bool) {
			if !outgoing {
				return
			}
			if nd := it.d + w; nd < dist[other] {
				dist[other] = nd
				heap.Push(pq, storeDistItem{v: other, d: nd})
			}
		})
	}
	return dist, nil
}

// runLCC: per-vertex neighborhood intersections through the store — the
// per-vertex variant of runStats.
func (l *loaded) runLCC(ctx context.Context) (algo.LCCOutput, error) {
	n := l.store.NumNodes()
	lcc := make(algo.LCCOutput, n)
	var nbh, out []graph.VertexID
	for v := 0; v < n; v++ {
		if v%platform.CheckStride == 0 {
			if err := platform.CheckContextPhase(ctx, "graphdb/lcc"); err != nil {
				return nil, err
			}
		}
		nbh = l.store.Neighborhood(graph.VertexID(v), nbh[:0])
		d := len(nbh)
		if d < 2 {
			continue
		}
		var links int64
		for _, u := range nbh {
			out = l.store.OutNeighbors(u, out[:0])
			links += algo.CountClosedPairs(out, nbh, u)
		}
		lcc[v] = float64(links) / (float64(d) * float64(d-1))
	}
	return lcc, nil
}

// storeDistItem / storeDistHeap: the Dijkstra frontier, vertex-ID
// tie-broken for a deterministic pop order.
type storeDistItem struct {
	v graph.VertexID
	d float64
}

type storeDistHeap []storeDistItem

func (h storeDistHeap) Len() int { return len(h) }
func (h storeDistHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}
func (h storeDistHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *storeDistHeap) Push(x any)   { *h = append(*h, x.(storeDistItem)) }
func (h *storeDistHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
