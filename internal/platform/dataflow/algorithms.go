package dataflow

import (
	"context"
	"sort"
	"sync/atomic"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/xrand"
)

// ------------------------------ BFS ------------------------------

func (l *loaded) runBFS(ctx context.Context, env *Env, p algo.Params) (algo.BFSOutput, error) {
	n := l.g.NumVertices()
	depths, err := MapVertices(ctx, env, n, 8, func(v graph.VertexID) int64 {
		if v == p.Source {
			return 0
		}
		return -1
	})
	if err != nil {
		return nil, err
	}
	active := make([]bool, n)
	if int(p.Source) < n {
		active[p.Source] = true
	}

	for iter := 0; iter < p.MaxIterations; iter++ {
		if err := platform.CheckContext(ctx); err != nil {
			return nil, err
		}
		env.Counters.Supersteps++
		msgs, err := AggregateMessages(ctx, env, depths, 8, 8,
			func(c *Ctx[int64], u, v graph.VertexID, du, dv int64) {
				if active[u] && dv == -1 {
					c.SendToDst(v, du+1)
				}
			},
			func(a, b int64) int64 {
				if a < b {
					return a
				}
				return b
			})
		if err != nil {
			return nil, err
		}
		if len(msgs) == 0 {
			break
		}
		nextActive := make([]bool, n)
		depths, err = JoinVertices(ctx, env, depths, 8, msgs, func(v graph.VertexID, d int64, m int64) int64 {
			if d == -1 {
				nextActive[v] = true
				return m
			}
			return d
		})
		if err != nil {
			return nil, err
		}
		active = nextActive
	}
	return algo.BFSOutput(depths), nil
}

// ------------------------------ CONN ------------------------------

func (l *loaded) runConn(ctx context.Context, env *Env, p algo.Params) (algo.ConnOutput, error) {
	n := l.g.NumVertices()
	labels, err := MapVertices(ctx, env, n, 4, func(v graph.VertexID) graph.VertexID { return v })
	if err != nil {
		return nil, err
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}

	min := func(a, b graph.VertexID) graph.VertexID {
		if a < b {
			return a
		}
		return b
	}
	for iter := 0; iter < p.MaxIterations; iter++ {
		if err := platform.CheckContext(ctx); err != nil {
			return nil, err
		}
		env.Counters.Supersteps++
		msgs, err := AggregateMessages(ctx, env, labels, 4, 4,
			func(c *Ctx[graph.VertexID], u, v graph.VertexID, du, dv graph.VertexID) {
				if active[u] && du < dv {
					c.SendToDst(v, du)
				}
				if active[v] && dv < du {
					c.SendToSrc(u, dv)
				}
			}, min)
		if err != nil {
			return nil, err
		}
		if len(msgs) == 0 {
			break
		}
		nextActive := make([]bool, n)
		var changed atomic.Bool // join closures run chunked in parallel
		labels, err = JoinVertices(ctx, env, labels, 4, msgs, func(v graph.VertexID, d graph.VertexID, m graph.VertexID) graph.VertexID {
			if m < d {
				nextActive[v] = true
				changed.Store(true)
				return m
			}
			return d
		})
		if err != nil {
			return nil, err
		}
		active = nextActive
		if !changed.Load() {
			break
		}
	}
	return algo.ConnOutput(labels), nil
}

// ------------------------------ CD ------------------------------

// cdVD is the CD vertex attribute.
type cdVD struct {
	label  int64
	score  float64
	degree int32
}

func (l *loaded) runCD(ctx context.Context, env *Env, p algo.Params) (algo.CDOutput, error) {
	n := l.g.NumVertices()
	// Degrees are gathered up front: the MapVertices closure runs
	// chunked in parallel, so it cannot share a scratch buffer.
	degs := make([]int32, n)
	var buf []graph.VertexID
	for v := 0; v < n; v++ {
		buf = l.g.Neighborhood(graph.VertexID(v), buf[:0])
		degs[v] = int32(len(buf))
	}
	verts, err := MapVertices(ctx, env, n, 20, func(v graph.VertexID) cdVD {
		return cdVD{label: int64(v), score: 1, degree: degs[v]}
	})
	if err != nil {
		return nil, err
	}

	for iter := 0; iter < p.CDIterations; iter++ {
		if err := platform.CheckContext(ctx); err != nil {
			return nil, err
		}
		env.Counters.Supersteps++
		// Votes travel once per unordered neighbor pair (canonical arcs),
		// merged by list concatenation; TallyVotes canonicalizes order.
		msgs, err := AggregateMessages(ctx, env, verts, 20, 20,
			func(c *Ctx[[]algo.Vote], u, v graph.VertexID, du, dv cdVD) {
				if !CanonicalArc(l.g, u, v) {
					return
				}
				c.SendToDst(v, []algo.Vote{{Label: du.label, Score: du.score, Degree: du.degree}})
				c.SendToSrc(u, []algo.Vote{{Label: dv.label, Score: dv.score, Degree: dv.degree}})
			},
			func(a, b []algo.Vote) []algo.Vote { return append(a, b...) })
		if err != nil {
			return nil, err
		}
		verts, err = JoinVertices(ctx, env, verts, 20, msgs, func(v graph.VertexID, d cdVD, votes []algo.Vote) cdVD {
			win, maxScore, ok := algo.TallyVotes(votes, p.CDPreference)
			if !ok {
				return d
			}
			s := maxScore
			if win != d.label {
				s -= p.CDDelta
			}
			if s < 0 {
				s = 0
			}
			return cdVD{label: win, score: s, degree: d.degree}
		})
		if err != nil {
			return nil, err
		}
	}
	out := make(algo.CDOutput, n)
	for v := 0; v < n; v++ {
		out[v] = verts[v].label
	}
	return out, nil
}

// ------------------------------ STATS ------------------------------

func (l *loaded) runStats(ctx context.Context, env *Env, p algo.Params) (algo.StatsOutput, error) {
	n := l.g.NumVertices()
	// Round 1: collect neighbor IDs (both directions), dedup + sort.
	empty, err := MapVertices(ctx, env, n, 24, func(graph.VertexID) []graph.VertexID { return nil })
	if err != nil {
		return algo.StatsOutput{}, err
	}
	env.Counters.Supersteps++
	collected, err := AggregateMessages(ctx, env, empty, 24, 24,
		func(c *Ctx[[]graph.VertexID], u, v graph.VertexID, _, _ []graph.VertexID) {
			c.SendToDst(v, []graph.VertexID{u})
			c.SendToSrc(u, []graph.VertexID{v})
		},
		func(a, b []graph.VertexID) []graph.VertexID { return append(a, b...) })
	if err != nil {
		return algo.StatsOutput{}, err
	}
	nbh, err := JoinVertices(ctx, env, empty, 24, collected, func(v graph.VertexID, _ []graph.VertexID, ids []graph.VertexID) []graph.VertexID {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out := ids[:0]
		var last graph.VertexID
		for i, x := range ids {
			if x == v {
				continue
			}
			if i > 0 && x == last && len(out) > 0 {
				continue
			}
			out = append(out, x)
			last = x
		}
		return out
	})
	if err != nil {
		return algo.StatsOutput{}, err
	}
	// Neighborhood-list bytes are summed after the join: the join
	// closures run in parallel and cannot share an accumulator.
	nbhBytes := int64(0)
	for _, ids := range nbh {
		nbhBytes += int64(len(ids)) * 4
	}
	if err := env.allocRetained(nbhBytes); err != nil {
		return algo.StatsOutput{}, err
	}

	// Round 2: per canonical neighbor pair, exchange closed-pair counts.
	env.Counters.Supersteps++
	counts, err := AggregateMessages(ctx, env, nbh, 24, 8,
		func(c *Ctx[int64], u, v graph.VertexID, nu, nv []graph.VertexID) {
			if !CanonicalArc(l.g, u, v) {
				return
			}
			if len(nv) >= 2 {
				c.SendToDst(v, algo.CountClosedPairs(l.g.OutNeighbors(u), nv, u))
			}
			if len(nu) >= 2 {
				c.SendToSrc(u, algo.CountClosedPairs(l.g.OutNeighbors(v), nu, v))
			}
		},
		func(a, b int64) int64 { return a + b })
	if err != nil {
		return algo.StatsOutput{}, err
	}
	var sum float64
	for v := 0; v < n; v++ {
		d := float64(len(nbh[v]))
		if d >= 2 {
			sum += float64(counts[graph.VertexID(v)]) / (d * (d - 1))
		}
	}
	return algo.StatsOutput{Vertices: n, Edges: l.g.NumEdges(), MeanLCC: sum / float64(n)}, nil
}

// ------------------------------ EVO ------------------------------

// evoVD is the EVO vertex attribute: the fires that burned the vertex.
type evoVD struct {
	burned []uint32
}

func (l *loaded) runEvo(ctx context.Context, env *Env, p algo.Params) (algo.EvoOutput, error) {
	n := l.g.NumVertices()
	k := p.EvoNewVertices

	verts, err := MapVertices(ctx, env, n, 32, func(graph.VertexID) evoVD { return evoVD{} })
	if err != nil {
		return algo.EvoOutput{}, err
	}

	burnedCount := make([]int, k)
	dead := make([]bool, k)
	allowed := make(map[graph.VertexID][]uint32)
	for f := 0; f < k; f++ {
		a := graph.VertexID(xrand.Mix3(p.Seed, uint64(n+f), 0) % uint64(n))
		allowed[a] = append(allowed[a], uint32(f))
		burnedCount[f] = 1
	}

	has := func(list []uint32, f uint32) bool {
		for _, x := range list {
			if x == f {
				return true
			}
		}
		return false
	}

	for level := 0; level < p.MaxIterations && len(allowed) > 0; level++ {
		if err := platform.CheckContext(ctx); err != nil {
			return algo.EvoOutput{}, err
		}
		env.Counters.Supersteps++

		// Burn the approved vertices (new dataset version) and compute
		// the driver-side spread targets for this level.
		spread := make(map[graph.VertexID][]uint32) // target -> requesting fires
		levelAllowed := allowed
		verts, err = JoinVertices(ctx, env, verts, 32, levelAllowed, func(v graph.VertexID, d evoVD, fires []uint32) evoVD {
			nb := append(append([]uint32(nil), d.burned...), fires...)
			return evoVD{burned: nb}
		})
		if err != nil {
			return algo.EvoOutput{}, err
		}
		// Deterministic spread: iterate burning vertices in ascending ID
		// order, fires ascending.
		burnVs := make([]graph.VertexID, 0, len(levelAllowed))
		for v := range levelAllowed {
			burnVs = append(burnVs, v)
		}
		sort.Slice(burnVs, func(i, j int) bool { return burnVs[i] < burnVs[j] })
		for _, v := range burnVs {
			fires := append([]uint32(nil), levelAllowed[v]...)
			sort.Slice(fires, func(i, j int) bool { return fires[i] < fires[j] })
			for _, f := range fires {
				picks := algo.FirePicks(l.g, graph.VertexID(n+int(f)), v, p)
				env.Counters.Messages += int64(len(picks))
				env.Counters.MessageBytes += int64(len(picks)) * 4
				env.Counters.EdgesTraversed += int64(len(picks))
				for _, w := range picks {
					if !has(spread[w], f) {
						spread[w] = append(spread[w], f)
					}
				}
			}
		}

		// Candidate resolution against local burn state, then the cap
		// verdict (driver master logic, same as every other platform).
		cands := make(map[uint32][]graph.VertexID)
		for w, fires := range spread {
			for _, f := range fires {
				if has(verts[w].burned, f) {
					continue
				}
				cands[f] = append(cands[f], w)
			}
		}
		allowed = make(map[graph.VertexID][]uint32)
		fireIDs := make([]int, 0, len(cands))
		for f := range cands {
			fireIDs = append(fireIDs, int(f))
		}
		sort.Ints(fireIDs)
		for _, fi := range fireIDs {
			f := uint32(fi)
			if dead[f] {
				continue
			}
			vs := cands[f]
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			room := p.EvoMaxBurn - burnedCount[f]
			if len(vs) >= room {
				vs = vs[:room]
				dead[f] = true
			}
			burnedCount[f] += len(vs)
			for _, v := range vs {
				allowed[v] = append(allowed[v], f)
			}
		}
	}

	out := algo.EvoOutput{NewVertices: k}
	for v := 0; v < n; v++ {
		for _, f := range verts[v].burned {
			out.Edges = append(out.Edges, [2]graph.VertexID{graph.VertexID(n + int(f)), graph.VertexID(v)})
		}
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	return out, nil
}
