package dataflow

import (
	"context"
	"fmt"
	"runtime"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// Options configures the dataflow platform.
type Options struct {
	// Parts is the number of dataset partitions (default GOMAXPROCS).
	Parts int
	// MemoryBudget bounds resident dataset bytes (graph + retained
	// versions + triplet mirrors + messages); 0 = unlimited. GraphX's
	// Figure 4 failures come from this bound.
	MemoryBudget int64
	// RetainWindow is the number of dataset versions lineage keeps
	// alive (default 3).
	RetainWindow int
}

// Platform is the GraphX analogue.
type Platform struct {
	opts Options
}

// New returns a dataflow platform.
func New(opts Options) *Platform {
	if opts.Parts <= 0 {
		opts.Parts = runtime.GOMAXPROCS(0)
	}
	if opts.RetainWindow <= 0 {
		opts.RetainWindow = 3
	}
	return &Platform{opts: opts}
}

// Name implements platform.Platform.
func (p *Platform) Name() string { return "dataflow" }

// StampConfig implements platform.ConfigStamper.
func (p *Platform) StampConfig() string {
	return fmt.Sprintf("dataflow/parts=%d,mem=%d,retain=%d",
		p.opts.Parts, p.opts.MemoryBudget, p.opts.RetainWindow)
}

// ConcurrencyLimit implements platform.ConcurrencyHinter: a
// memory-budgeted engine serializes its jobs so concurrent loads do
// not double-count against one budget.
func (p *Platform) ConcurrencyLimit() int {
	if p.opts.MemoryBudget > 0 {
		return 1
	}
	return 0
}

// LoadGraph implements platform.Platform. The edge structure is held as
// an immutable dataset; dataflow tuple representation costs ~2× the raw
// CSR (edge objects with src/dst fields rather than packed arrays).
func (p *Platform) LoadGraph(g *graph.Graph) (platform.Loaded, error) {
	mem := platform.NewMemoryTracker(p.Name(), p.opts.MemoryBudget)
	edgeBytes := 2 * g.MemoryFootprint()
	if err := mem.Alloc(edgeBytes); err != nil {
		return nil, err
	}
	return &loaded{p: p, g: g, mem: mem, edgeBytes: edgeBytes}, nil
}

type loaded struct {
	p         *Platform
	g         *graph.Graph
	mem       *platform.MemoryTracker
	edgeBytes int64
}

// Graph implements platform.Loaded.
func (l *loaded) Graph() *graph.Graph { return l.g }

// Close implements platform.Loaded.
func (l *loaded) Close() error {
	l.mem.Free(l.edgeBytes)
	return nil
}

// Run implements platform.Loaded.
func (l *loaded) Run(ctx context.Context, kind algo.Kind, params algo.Params) (*platform.Result, error) {
	params = params.WithDefaults(l.g.NumVertices())
	counters := &platform.Counters{}
	env := NewEnv(l.g, l.p.opts.Parts, l.mem, counters)
	env.RetainWindow = l.p.opts.RetainWindow
	defer env.releaseAll()

	var out any
	var err error
	switch kind {
	case algo.BFS:
		out, err = l.runBFS(ctx, env, params)
	case algo.CONN:
		out, err = l.runConn(ctx, env, params)
	case algo.CD:
		out, err = l.runCD(ctx, env, params)
	case algo.STATS:
		out, err = l.runStats(ctx, env, params)
	case algo.EVO:
		out, err = l.runEvo(ctx, env, params)
	case algo.PR:
		out, err = l.runPageRank(ctx, env, params)
	case algo.SSSP:
		out, err = l.runSSSP(ctx, env, params)
	case algo.LCC:
		out, err = l.runLCC(ctx, env, params)
	default:
		return nil, fmt.Errorf("%w: %s on %s", platform.ErrUnsupported, kind, l.p.Name())
	}
	if err != nil {
		return nil, err
	}
	counters.PeakMemoryBytes = l.mem.Peak()
	return &platform.Result{Output: out, Counters: *counters}, nil
}
