// Package dataflow implements the GraphX analogue: graph computations
// expressed over immutable, partitioned datasets with a
// Pregel-on-dataflow API built from aggregateMessages + joinVertices
// (§3.2: "GraphX represents graphs as Spark resilient distributed
// datasets (RDDs) ... supports iterative algorithms implemented
// according to the Pregel programming model").
//
// Fidelity notes (why this platform lands where Figure 4 puts GraphX —
// a few times slower than the BSP engine and the first to die on large
// workloads):
//
//   - datasets are immutable: every iteration materializes a NEW vertex
//     attribute array (joinVertices) instead of updating in place;
//   - every aggregateMessages materializes a triplet view: the vertex
//     attributes are mirrored to the edge partitions (arcs × attr-size
//     bytes), exactly GraphX's vertex-replication cost;
//   - lineage retention: the last RetainWindow vertex versions stay
//     referenced ("cached RDDs awaiting unpersist"), multiplying the
//     resident footprint;
//   - an enforced memory budget turns that footprint into the observable
//     OOM failures that appear as missing values in Figure 4.
package dataflow

import (
	"context"
	"runtime"
	"sync"
	"time"

	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// Env is the execution environment shared by one algorithm run.
type Env struct {
	G        *graph.Graph
	Parts    int
	Mem      *platform.MemoryTracker
	Counters *platform.Counters
	// RetainWindow is how many dataset versions lineage keeps alive.
	RetainWindow int

	retained []int64 // byte sizes of retained versions (FIFO)
}

// NewEnv returns an environment over g.
func NewEnv(g *graph.Graph, parts int, mem *platform.MemoryTracker, counters *platform.Counters) *Env {
	if parts <= 0 {
		parts = runtime.GOMAXPROCS(0)
	}
	return &Env{G: g, Parts: parts, Mem: mem, Counters: counters, RetainWindow: 3}
}

// allocRetained accounts a new dataset version and evicts versions
// falling out of the lineage window.
func (e *Env) allocRetained(bytes int64) error {
	if e.Mem == nil {
		return nil
	}
	if err := e.Mem.Alloc(bytes); err != nil {
		return err
	}
	e.retained = append(e.retained, bytes)
	for len(e.retained) > e.RetainWindow {
		e.Mem.Free(e.retained[0])
		e.retained = e.retained[1:]
	}
	return nil
}

// releaseAll frees every retained version (end of run).
func (e *Env) releaseAll() {
	if e.Mem == nil {
		e.retained = nil
		return
	}
	for _, b := range e.retained {
		e.Mem.Free(b)
	}
	e.retained = nil
}

// Ctx is the per-arc message context handed to send functions.
type Ctx[M any] struct {
	env     *Env
	part    int
	acc     map[graph.VertexID]M
	merge   func(M, M) M
	msgSize int64
	sent    int64
	sentB   int64
	netB    int64
	edges   int64
}

func (c *Ctx[M]) deliver(dst graph.VertexID, m M) {
	if old, ok := c.acc[dst]; ok {
		c.acc[dst] = c.merge(old, m)
	} else {
		c.acc[dst] = m
	}
	c.sent++
	c.sentB += c.msgSize
	// Messages leave the edge partition for the vertex partition; only
	// collocated ones stay local (hash placement, like GraphX routing).
	if int(uint64(dst)*0x9e3779b97f4a7c15>>32)%c.env.Parts != c.part {
		c.netB += c.msgSize
	}
}

// SendToSrc delivers a message to the arc's source vertex.
func (c *Ctx[M]) SendToSrc(u graph.VertexID, m M) { c.deliver(u, m) }

// SendToDst delivers a message to the arc's destination vertex.
func (c *Ctx[M]) SendToDst(v graph.VertexID, m M) { c.deliver(v, m) }

// SendFunc produces messages for one arc (u -> v).
type SendFunc[VD, M any] func(c *Ctx[M], u, v graph.VertexID, du, dv VD)

// SendFuncW produces messages for one arc (u -> v) with its edge weight
// (1 on unweighted graphs) — the triplet view of a weighted property
// graph, used by the weighted workloads (SSSP).
type SendFuncW[VD, M any] func(c *Ctx[M], u, v graph.VertexID, w float64, du, dv VD)

// AggregateMessages scans all arcs (triplet view) and returns the merged
// message per vertex. verts is the current vertex attribute dataset;
// vdSize and msgSize are the per-element sizes used for memory and
// network accounting. merge must be commutative and associative (or the
// caller must canonicalize afterwards, as the CD vote-list merge does).
func AggregateMessages[VD, M any](ctx context.Context, env *Env, verts []VD, vdSize, msgSize int64, send SendFunc[VD, M], merge func(M, M) M) (map[graph.VertexID]M, error) {
	return AggregateMessagesW(ctx, env, verts, vdSize, msgSize,
		func(c *Ctx[M], u, v graph.VertexID, _ float64, du, dv VD) { send(c, u, v, du, dv) }, merge)
}

// AggregateMessagesW is AggregateMessages with edge weights exposed to
// the send function. The triplet scan is chunked across env.Parts
// workers, each probing ctx every CheckStride source vertices, so even
// one scan over a huge arc set stays interruptible.
func AggregateMessagesW[VD, M any](ctx context.Context, env *Env, verts []VD, vdSize, msgSize int64, send SendFuncW[VD, M], merge func(M, M) M) (map[graph.VertexID]M, error) {
	n := env.G.NumVertices()
	arcs := env.G.NumArcs()

	// Triplet view: vertex attributes are mirrored into edge partitions.
	// The mirrors live for the duration of the scan.
	mirrorBytes := arcs * vdSize
	if env.Mem != nil {
		if err := env.Mem.Alloc(mirrorBytes); err != nil {
			env.Mem.Free(mirrorBytes)
			return nil, err
		}
	}
	defer func() {
		if env.Mem != nil {
			env.Mem.Free(mirrorBytes)
		}
	}()

	parts := env.Parts
	ctxs := make([]*Ctx[M], parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	chunk := (n + parts - 1) / parts
	for p := 0; p < parts; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > n {
			hi = n
		}
		ctxs[p] = &Ctx[M]{env: env, part: p, acc: make(map[graph.VertexID]M), merge: merge, msgSize: msgSize}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			c := ctxs[p]
			for u := lo; u < hi; u++ {
				if (u-lo)%platform.CheckStride == 0 && ctx.Err() != nil {
					errs[p] = platform.CheckContextPhase(ctx, "dataflow/aggregate")
					break
				}
				adj := env.G.OutNeighbors(graph.VertexID(u))
				ws := env.G.OutWeights(graph.VertexID(u))
				for i, v := range adj {
					send(c, graph.VertexID(u), v, graph.WeightAt(ws, i), verts[u], verts[v])
					c.edges++
				}
			}
			busyAdd(env.Counters, p, parts, time.Since(t0))
		}(p, lo, hi)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var msgBytes int64
	for _, c := range ctxs {
		env.Counters.Messages += c.sent
		env.Counters.MessageBytes += c.sentB
		env.Counters.NetworkBytes += c.netB
		env.Counters.EdgesTraversed += c.edges
		msgBytes += c.sentB
	}

	out, err := shuffleMerge(ctx, env, ctxs, merge)
	if err != nil {
		return nil, err
	}
	// Merged message dataset is retained until joined.
	if env.Mem != nil {
		if err := env.Mem.Alloc(int64(len(out)) * (msgSize + 8)); err != nil {
			env.Mem.Free(int64(len(out)) * (msgSize + 8))
			return nil, err
		}
		env.Mem.Free(int64(len(out)) * (msgSize + 8))
	}
	return out, nil
}

// shuffleMerge combines the per-partition accumulators into one message
// dataset. Each source partition buckets its accumulator by destination
// shard (parallel), then each shard merges its buckets in ascending
// partition order (parallel) — per key that is the exact merge order the
// old sequential loop used, so the result is unchanged for any Parts.
func shuffleMerge[M any](ctx context.Context, env *Env, ctxs []*Ctx[M], merge func(M, M) M) (map[graph.VertexID]M, error) {
	parts := env.Parts
	if parts == 1 {
		// Single partition: its accumulator already is the merged dataset.
		return ctxs[0].acc, nil
	}
	type kv struct {
		v graph.VertexID
		m M
	}
	shardOf := func(v graph.VertexID) int {
		return int(uint64(v)*0x9e3779b97f4a7c15>>32) % parts
	}
	buckets := make([][][]kv, parts) // [src partition][dst shard]
	errs := make([]error, parts)
	var bwg sync.WaitGroup
	for p := 0; p < parts; p++ {
		bwg.Add(1)
		go func(p int) {
			defer bwg.Done()
			b := make([][]kv, parts)
			cnt := 0
			for v, m := range ctxs[p].acc {
				if cnt%platform.CheckStride == 0 && ctx.Err() != nil {
					errs[p] = platform.CheckContextPhase(ctx, "dataflow/shuffle")
					return
				}
				cnt++
				s := shardOf(v)
				b[s] = append(b[s], kv{v, m})
			}
			buckets[p] = b
		}(p)
	}
	bwg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}

	shards := make([]map[graph.VertexID]M, parts)
	var mwg sync.WaitGroup
	for s := 0; s < parts; s++ {
		mwg.Add(1)
		go func(s int) {
			defer mwg.Done()
			shard := make(map[graph.VertexID]M)
			cnt := 0
			for p := 0; p < parts; p++ {
				for _, e := range buckets[p][s] {
					if cnt%platform.CheckStride == 0 && ctx.Err() != nil {
						errs[s] = platform.CheckContextPhase(ctx, "dataflow/shuffle")
						return
					}
					cnt++
					if old, ok := shard[e.v]; ok {
						shard[e.v] = merge(old, e.m)
					} else {
						shard[e.v] = e.m
					}
				}
			}
			shards[s] = shard
		}(s)
	}
	mwg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}

	total := 0
	for _, shard := range shards {
		total += len(shard)
	}
	out := make(map[graph.VertexID]M, total)
	for _, shard := range shards {
		for v, m := range shard {
			out[v] = m
		}
	}
	return out, nil
}

// JoinVertices materializes the next immutable vertex dataset: a full
// copy of verts with f applied to vertices that received a message. The
// copy and the per-message joins are chunked across env.Parts workers;
// f may be called concurrently and must not mutate state shared across
// calls (per-vertex writes to distinct slice elements are fine).
func JoinVertices[VD, M any](ctx context.Context, env *Env, verts []VD, vdSize int64, msgs map[graph.VertexID]M, f func(v graph.VertexID, d VD, m M) VD) ([]VD, error) {
	if err := env.allocRetained(int64(len(verts)) * vdSize); err != nil {
		return nil, err
	}
	next := make([]VD, len(verts))
	if err := forChunks(env.Parts, len(verts), func(_, lo, hi int) error {
		if ctx.Err() != nil {
			return platform.CheckContextPhase(ctx, "dataflow/join")
		}
		copy(next[lo:hi], verts[lo:hi])
		return nil
	}); err != nil {
		return nil, err
	}
	keys := make([]graph.VertexID, 0, len(msgs))
	for v := range msgs {
		keys = append(keys, v)
	}
	if err := forChunks(env.Parts, len(keys), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if (i-lo)%platform.CheckStride == 0 && ctx.Err() != nil {
				return platform.CheckContextPhase(ctx, "dataflow/join")
			}
			v := keys[i]
			next[v] = f(v, verts[v], msgs[v])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return next, nil
}

// MapVertices materializes a fresh dataset with f applied everywhere,
// chunked across env.Parts workers; f may be called concurrently.
func MapVertices[VD any](ctx context.Context, env *Env, n int, vdSize int64, f func(v graph.VertexID) VD) ([]VD, error) {
	if err := env.allocRetained(int64(n) * vdSize); err != nil {
		return nil, err
	}
	out := make([]VD, n)
	if err := forChunks(env.Parts, n, func(_, lo, hi int) error {
		for v := lo; v < hi; v++ {
			if (v-lo)%platform.CheckStride == 0 && ctx.Err() != nil {
				return platform.CheckContextPhase(ctx, "dataflow/map")
			}
			out[v] = f(graph.VertexID(v))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// forChunks runs body over one contiguous chunk of [0, n) per partition
// concurrently and returns the lowest-partition error. Bodies do their
// own amortized context checks when they loop.
func forChunks(parts, n int, body func(part, lo, hi int) error) error {
	if parts < 1 {
		parts = 1
	}
	chunk := (n + parts - 1) / parts
	if chunk < 1 {
		chunk = 1
	}
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			errs[p] = body(p, lo, hi)
		}(p, lo, hi)
	}
	wg.Wait()
	return firstError(errs)
}

// firstError returns the lowest-indexed non-nil error from a per-worker
// error slice (deterministic pick under concurrent interruption).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CanonicalArc reports whether (u, v) is the canonical arc of its
// unordered pair: true when u < v or when the reciprocal arc does not
// exist. Algorithms that must interact once per neighbor pair (CD
// votes, STATS counts) send only along canonical arcs.
func CanonicalArc(g *graph.Graph, u, v graph.VertexID) bool {
	return u < v || !g.HasArc(v, u)
}

var busyMu sync.Mutex

func busyAdd(c *platform.Counters, w, workers int, d time.Duration) {
	if c == nil {
		return
	}
	busyMu.Lock()
	defer busyMu.Unlock()
	if len(c.WorkerBusy) < workers {
		grown := make([]time.Duration, workers)
		copy(grown, c.WorkerBusy)
		c.WorkerBusy = grown
	}
	c.WorkerBusy[w] += d
}
