// Package dataflow implements the GraphX analogue: graph computations
// expressed over immutable, partitioned datasets with a
// Pregel-on-dataflow API built from aggregateMessages + joinVertices
// (§3.2: "GraphX represents graphs as Spark resilient distributed
// datasets (RDDs) ... supports iterative algorithms implemented
// according to the Pregel programming model").
//
// Fidelity notes (why this platform lands where Figure 4 puts GraphX —
// a few times slower than the BSP engine and the first to die on large
// workloads):
//
//   - datasets are immutable: every iteration materializes a NEW vertex
//     attribute array (joinVertices) instead of updating in place;
//   - every aggregateMessages materializes a triplet view: the vertex
//     attributes are mirrored to the edge partitions (arcs × attr-size
//     bytes), exactly GraphX's vertex-replication cost;
//   - lineage retention: the last RetainWindow vertex versions stay
//     referenced ("cached RDDs awaiting unpersist"), multiplying the
//     resident footprint;
//   - an enforced memory budget turns that footprint into the observable
//     OOM failures that appear as missing values in Figure 4.
package dataflow

import (
	"runtime"
	"sync"
	"time"

	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// Env is the execution environment shared by one algorithm run.
type Env struct {
	G        *graph.Graph
	Parts    int
	Mem      *platform.MemoryTracker
	Counters *platform.Counters
	// RetainWindow is how many dataset versions lineage keeps alive.
	RetainWindow int

	retained []int64 // byte sizes of retained versions (FIFO)
}

// NewEnv returns an environment over g.
func NewEnv(g *graph.Graph, parts int, mem *platform.MemoryTracker, counters *platform.Counters) *Env {
	if parts <= 0 {
		parts = runtime.GOMAXPROCS(0)
	}
	return &Env{G: g, Parts: parts, Mem: mem, Counters: counters, RetainWindow: 3}
}

// allocRetained accounts a new dataset version and evicts versions
// falling out of the lineage window.
func (e *Env) allocRetained(bytes int64) error {
	if e.Mem == nil {
		return nil
	}
	if err := e.Mem.Alloc(bytes); err != nil {
		return err
	}
	e.retained = append(e.retained, bytes)
	for len(e.retained) > e.RetainWindow {
		e.Mem.Free(e.retained[0])
		e.retained = e.retained[1:]
	}
	return nil
}

// releaseAll frees every retained version (end of run).
func (e *Env) releaseAll() {
	if e.Mem == nil {
		e.retained = nil
		return
	}
	for _, b := range e.retained {
		e.Mem.Free(b)
	}
	e.retained = nil
}

// Ctx is the per-arc message context handed to send functions.
type Ctx[M any] struct {
	env     *Env
	part    int
	acc     map[graph.VertexID]M
	merge   func(M, M) M
	msgSize int64
	sent    int64
	sentB   int64
	netB    int64
	edges   int64
}

func (c *Ctx[M]) deliver(dst graph.VertexID, m M) {
	if old, ok := c.acc[dst]; ok {
		c.acc[dst] = c.merge(old, m)
	} else {
		c.acc[dst] = m
	}
	c.sent++
	c.sentB += c.msgSize
	// Messages leave the edge partition for the vertex partition; only
	// collocated ones stay local (hash placement, like GraphX routing).
	if int(uint64(dst)*0x9e3779b97f4a7c15>>32)%c.env.Parts != c.part {
		c.netB += c.msgSize
	}
}

// SendToSrc delivers a message to the arc's source vertex.
func (c *Ctx[M]) SendToSrc(u graph.VertexID, m M) { c.deliver(u, m) }

// SendToDst delivers a message to the arc's destination vertex.
func (c *Ctx[M]) SendToDst(v graph.VertexID, m M) { c.deliver(v, m) }

// SendFunc produces messages for one arc (u -> v).
type SendFunc[VD, M any] func(c *Ctx[M], u, v graph.VertexID, du, dv VD)

// SendFuncW produces messages for one arc (u -> v) with its edge weight
// (1 on unweighted graphs) — the triplet view of a weighted property
// graph, used by the weighted workloads (SSSP).
type SendFuncW[VD, M any] func(c *Ctx[M], u, v graph.VertexID, w float64, du, dv VD)

// AggregateMessages scans all arcs (triplet view) and returns the merged
// message per vertex. verts is the current vertex attribute dataset;
// vdSize and msgSize are the per-element sizes used for memory and
// network accounting. merge must be commutative and associative (or the
// caller must canonicalize afterwards, as the CD vote-list merge does).
func AggregateMessages[VD, M any](env *Env, verts []VD, vdSize, msgSize int64, send SendFunc[VD, M], merge func(M, M) M) (map[graph.VertexID]M, error) {
	return AggregateMessagesW(env, verts, vdSize, msgSize,
		func(c *Ctx[M], u, v graph.VertexID, _ float64, du, dv VD) { send(c, u, v, du, dv) }, merge)
}

// AggregateMessagesW is AggregateMessages with edge weights exposed to
// the send function.
func AggregateMessagesW[VD, M any](env *Env, verts []VD, vdSize, msgSize int64, send SendFuncW[VD, M], merge func(M, M) M) (map[graph.VertexID]M, error) {
	n := env.G.NumVertices()
	arcs := env.G.NumArcs()

	// Triplet view: vertex attributes are mirrored into edge partitions.
	// The mirrors live for the duration of the scan.
	mirrorBytes := arcs * vdSize
	if env.Mem != nil {
		if err := env.Mem.Alloc(mirrorBytes); err != nil {
			env.Mem.Free(mirrorBytes)
			return nil, err
		}
	}
	defer func() {
		if env.Mem != nil {
			env.Mem.Free(mirrorBytes)
		}
	}()

	parts := env.Parts
	ctxs := make([]*Ctx[M], parts)
	var wg sync.WaitGroup
	chunk := (n + parts - 1) / parts
	start := time.Now()
	_ = start
	for p := 0; p < parts; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > n {
			hi = n
		}
		ctxs[p] = &Ctx[M]{env: env, part: p, acc: make(map[graph.VertexID]M), merge: merge, msgSize: msgSize}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			c := ctxs[p]
			for u := lo; u < hi; u++ {
				adj := env.G.OutNeighbors(graph.VertexID(u))
				ws := env.G.OutWeights(graph.VertexID(u))
				for i, v := range adj {
					send(c, graph.VertexID(u), v, graph.WeightAt(ws, i), verts[u], verts[v])
					c.edges++
				}
			}
			busyAdd(env.Counters, p, parts, time.Since(t0))
		}(p, lo, hi)
	}
	wg.Wait()

	// Shuffle-merge partition accumulators (fixed order).
	out := make(map[graph.VertexID]M)
	var msgBytes int64
	for _, c := range ctxs {
		for v, m := range c.acc {
			if old, ok := out[v]; ok {
				out[v] = merge(old, m)
			} else {
				out[v] = m
			}
		}
		env.Counters.Messages += c.sent
		env.Counters.MessageBytes += c.sentB
		env.Counters.NetworkBytes += c.netB
		env.Counters.EdgesTraversed += c.edges
		msgBytes += c.sentB
	}
	// Merged message dataset is retained until joined.
	if env.Mem != nil {
		if err := env.Mem.Alloc(int64(len(out)) * (msgSize + 8)); err != nil {
			env.Mem.Free(int64(len(out)) * (msgSize + 8))
			return nil, err
		}
		env.Mem.Free(int64(len(out)) * (msgSize + 8))
	}
	return out, nil
}

// JoinVertices materializes the next immutable vertex dataset: a full
// copy of verts with f applied to vertices that received a message.
func JoinVertices[VD, M any](env *Env, verts []VD, vdSize int64, msgs map[graph.VertexID]M, f func(v graph.VertexID, d VD, m M) VD) ([]VD, error) {
	if err := env.allocRetained(int64(len(verts)) * vdSize); err != nil {
		return nil, err
	}
	next := make([]VD, len(verts))
	copy(next, verts)
	for v, m := range msgs {
		next[v] = f(v, verts[v], m)
	}
	return next, nil
}

// MapVertices materializes a fresh dataset with f applied everywhere.
func MapVertices[VD any](env *Env, n int, vdSize int64, f func(v graph.VertexID) VD) ([]VD, error) {
	if err := env.allocRetained(int64(n) * vdSize); err != nil {
		return nil, err
	}
	out := make([]VD, n)
	for v := 0; v < n; v++ {
		out[v] = f(graph.VertexID(v))
	}
	return out, nil
}

// CanonicalArc reports whether (u, v) is the canonical arc of its
// unordered pair: true when u < v or when the reciprocal arc does not
// exist. Algorithms that must interact once per neighbor pair (CD
// votes, STATS counts) send only along canonical arcs.
func CanonicalArc(g *graph.Graph, u, v graph.VertexID) bool {
	return u < v || !g.HasArc(v, u)
}

var busyMu sync.Mutex

func busyAdd(c *platform.Counters, w, workers int, d time.Duration) {
	if c == nil {
		return
	}
	busyMu.Lock()
	defer busyMu.Unlock()
	if len(c.WorkerBusy) < workers {
		grown := make([]time.Duration, workers)
		copy(grown, c.WorkerBusy)
		c.WorkerBusy = grown
	}
	c.WorkerBusy[w] += d
}
