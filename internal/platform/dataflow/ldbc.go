package dataflow

// The three LDBC Graphalytics workloads (PR, SSSP, LCC) over the
// dataflow primitives, following the idioms of algorithms.go: every
// iteration materializes a new immutable vertex dataset, the triplet
// scan mirrors attributes into edge partitions, and the weighted scan
// (AggregateMessagesW) exposes the edge property the way GraphX triplet
// views carry edge attributes.

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// ------------------------------ PR ------------------------------

// runPageRank: fixed-iteration LDBC PageRank. Each iteration is one
// aggregateMessages (rank/outdeg contributions along out-arcs) plus one
// full dataset materialization; the dangling mass is a driver-side
// reduction over the current rank dataset, the way a Spark driver
// collects a scalar between iterations.
func (l *loaded) runPageRank(ctx context.Context, env *Env, p algo.Params) (algo.PROutput, error) {
	n := l.g.NumVertices()
	d := p.PRDamping
	inv := 1.0 / float64(n)
	ranks, err := MapVertices(ctx, env, n, 8, func(graph.VertexID) float64 { return inv })
	if err != nil {
		return nil, err
	}
	for iter := 0; iter < p.PRIterations; iter++ {
		if err := platform.CheckContext(ctx); err != nil {
			return nil, err
		}
		env.Counters.Supersteps++
		var dangling float64
		for v := 0; v < n; v++ {
			if v%platform.CheckStride == 0 && ctx.Err() != nil {
				return nil, platform.CheckContextPhase(ctx, "dataflow/pr-dangling")
			}
			if l.g.OutDegree(graph.VertexID(v)) == 0 {
				dangling += ranks[v]
			}
		}
		contribs, err := AggregateMessages(ctx, env, ranks, 8, 8,
			func(c *Ctx[float64], u, v graph.VertexID, du, _ float64) {
				c.SendToDst(v, du/float64(l.g.OutDegree(u)))
			},
			func(a, b float64) float64 { return a + b })
		if err != nil {
			return nil, err
		}
		base := (1-d)*inv + d*dangling*inv
		ranks, err = MapVertices(ctx, env, n, 8, func(v graph.VertexID) float64 {
			return base + d*contribs[v]
		})
		if err != nil {
			return nil, err
		}
	}
	return algo.PROutput(ranks), nil
}

// ------------------------------ SSSP ------------------------------

// runSSSP: the weighted generalization of runBFS. Active vertices relax
// their out-arcs through the weighted triplet scan; the min merge and
// the join keep only improvements, and the loop runs to the fixpoint.
func (l *loaded) runSSSP(ctx context.Context, env *Env, p algo.Params) (algo.SSSPOutput, error) {
	n := l.g.NumVertices()
	inf := math.Inf(1)
	dists, err := MapVertices(ctx, env, n, 8, func(v graph.VertexID) float64 {
		if v == p.Source {
			return 0
		}
		return inf
	})
	if err != nil {
		return nil, err
	}
	active := make([]bool, n)
	if int(p.Source) < n {
		active[p.Source] = true
	}

	for iter := 0; iter < p.MaxIterations; iter++ {
		if err := platform.CheckContext(ctx); err != nil {
			return nil, err
		}
		env.Counters.Supersteps++
		msgs, err := AggregateMessagesW(ctx, env, dists, 8, 8,
			func(c *Ctx[float64], u, v graph.VertexID, w float64, du, dv float64) {
				if active[u] && du+w < dv {
					c.SendToDst(v, du+w)
				}
			},
			func(a, b float64) float64 { return math.Min(a, b) })
		if err != nil {
			return nil, err
		}
		if len(msgs) == 0 {
			break
		}
		nextActive := make([]bool, n)
		var improved atomic.Bool // join closures run chunked in parallel
		dists, err = JoinVertices(ctx, env, dists, 8, msgs, func(v graph.VertexID, d, m float64) float64 {
			if m < d {
				nextActive[v] = true
				improved.Store(true)
				return m
			}
			return d
		})
		if err != nil {
			return nil, err
		}
		active = nextActive
		if !improved.Load() {
			break
		}
	}
	return algo.SSSPOutput(dists), nil
}

// ------------------------------ LCC ------------------------------

// runLCC: the per-vertex variant of runStats — the same two rounds
// (neighborhood exchange along canonical arcs, then closed-pair counts)
// with the final division kept per vertex instead of folded into a
// mean.
func (l *loaded) runLCC(ctx context.Context, env *Env, p algo.Params) (algo.LCCOutput, error) {
	n := l.g.NumVertices()
	// Round 1: collect neighbor IDs (both directions), dedup + sort.
	empty, err := MapVertices(ctx, env, n, 24, func(graph.VertexID) []graph.VertexID { return nil })
	if err != nil {
		return nil, err
	}
	env.Counters.Supersteps++
	collected, err := AggregateMessages(ctx, env, empty, 24, 24,
		func(c *Ctx[[]graph.VertexID], u, v graph.VertexID, _, _ []graph.VertexID) {
			c.SendToDst(v, []graph.VertexID{u})
			c.SendToSrc(u, []graph.VertexID{v})
		},
		func(a, b []graph.VertexID) []graph.VertexID { return append(a, b...) })
	if err != nil {
		return nil, err
	}
	nbh, err := JoinVertices(ctx, env, empty, 24, collected, func(v graph.VertexID, _ []graph.VertexID, ids []graph.VertexID) []graph.VertexID {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out := ids[:0]
		var last graph.VertexID
		for i, x := range ids {
			if x == v {
				continue
			}
			if i > 0 && x == last && len(out) > 0 {
				continue
			}
			out = append(out, x)
			last = x
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	// Summed after the join: the closures run in parallel and cannot
	// share an accumulator.
	nbhBytes := int64(0)
	for _, ids := range nbh {
		nbhBytes += int64(len(ids)) * 4
	}
	if err := env.allocRetained(nbhBytes); err != nil {
		return nil, err
	}

	// Round 2: per canonical neighbor pair, exchange closed-pair counts.
	env.Counters.Supersteps++
	counts, err := AggregateMessages(ctx, env, nbh, 24, 8,
		func(c *Ctx[int64], u, v graph.VertexID, nu, nv []graph.VertexID) {
			if !CanonicalArc(l.g, u, v) {
				return
			}
			if len(nv) >= 2 {
				c.SendToDst(v, algo.CountClosedPairs(l.g.OutNeighbors(u), nv, u))
			}
			if len(nu) >= 2 {
				c.SendToSrc(u, algo.CountClosedPairs(l.g.OutNeighbors(v), nu, v))
			}
		},
		func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, err
	}
	lcc := make(algo.LCCOutput, n)
	for v := 0; v < n; v++ {
		d := float64(len(nbh[v]))
		if d >= 2 {
			lcc[v] = float64(counts[graph.VertexID(v)]) / (d * (d - 1))
		}
	}
	return lcc, nil
}
