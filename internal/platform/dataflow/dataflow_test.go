package dataflow

import (
	"context"
	"errors"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/platformtest"
)

func TestConformance(t *testing.T) {
	platformtest.Conformance(t, New(Options{}))
}

func TestConformanceSinglePartition(t *testing.T) {
	platformtest.Conformance(t, New(Options{Parts: 1}))
}

func TestCountersPopulated(t *testing.T) {
	platformtest.CountersPopulated(t, New(Options{}))
}

func TestName(t *testing.T) {
	if New(Options{}).Name() != "dataflow" {
		t.Error("name")
	}
}

func TestLoadOOM(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{MemoryBudget: 1000})
	if _, err := p.LoadGraph(g); !errors.Is(err, platform.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestRunOOMOnTightBudget(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits the edge dataset but not the iteration state: the
	// GraphX failure mode ("GraphX is unable to process some of the
	// workloads", §3.3).
	budget := 2*g.MemoryFootprint() + 50_000
	p := New(Options{MemoryBudget: budget})
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatalf("load should succeed: %v", err)
	}
	defer loaded.Close()
	if _, err := loaded.Run(context.Background(), algo.STATS, algo.Params{}); !errors.Is(err, platform.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestDataflowUsesMoreMemoryThanCSR(t *testing.T) {
	// The immutability + mirroring overhead must be visible: peak memory
	// of a CONN run should exceed several times the raw CSR bytes.
	g, err := datagen.Generate(datagen.Config{Persons: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{})
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.PeakMemoryBytes < 2*g.MemoryFootprint() {
		t.Errorf("peak %d bytes should exceed 2× CSR %d", res.Counters.PeakMemoryBytes, g.MemoryFootprint())
	}
}

func TestContextCancellation(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 2000, Seed: 4})
	p := New(Options{})
	loaded, _ := p.LoadGraph(g)
	defer loaded.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loaded.Run(ctx, algo.CD, algo.Params{}); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestUnsupportedKind(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 100, Seed: 5})
	loaded, _ := New(Options{}).LoadGraph(g)
	defer loaded.Close()
	if _, err := loaded.Run(context.Background(), algo.Kind("XX"), algo.Params{}); !errors.Is(err, platform.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestCanonicalArc(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Undirected graph: exactly one canonical arc per pair.
	count := 0
	g.Arcs(func(u, v graph.VertexID) {
		if CanonicalArc(g, u, v) {
			count++
		}
	})
	if int64(count) != g.NumEdges() {
		t.Errorf("canonical arcs = %d, want %d (one per undirected edge)", count, g.NumEdges())
	}
}
