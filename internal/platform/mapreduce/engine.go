// Package mapreduce implements the Hadoop MapReduce analogue: a real
// map / sort-shuffle / reduce engine on which the five Graphalytics
// algorithms run as chains of jobs that carry the whole graph through
// every iteration.
//
// Fidelity notes (why this platform lands where Figure 4 puts Hadoop —
// one to two orders of magnitude slower than the BSP engine, but
// unkillable):
//
//   - every job physically serializes all intermediate records to byte
//     buffers, sorts each reduce partition, and deserializes on the
//     other side — iteration state (including adjacency lists) pays the
//     full materialization cost every round, exactly like HDFS-backed
//     Hadoop iterations;
//   - every job pays a configurable scheduling overhead (YARN container
//     launch in the original);
//   - there is no memory budget: state streams through buffers, so the
//     engine processes any graph if given enough time ("MapReduce does
//     not need to keep graph data in memory during processing and thus
//     does not crash", §3.3).
package mapreduce

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"graphalytics/internal/platform"
	"graphalytics/internal/telemetry"
)

// Record is one key/value pair. Values are opaque bytes: jobs encode and
// decode them with the codec in this package, paying real serialization
// cost.
type Record struct {
	Key   int64
	Value []byte
}

// Emit receives output records from mappers and reducers.
type Emit func(key int64, value []byte)

// TaskCtx gives mappers/reducers access to job counters.
type TaskCtx struct {
	mu       sync.Mutex
	counters map[string]int64
}

// Inc adds delta to a named job counter (Hadoop counter analogue).
func (t *TaskCtx) Inc(name string, delta int64) {
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Job is one MapReduce job.
type Job struct {
	// Name appears in traces.
	Name string
	// Map is invoked once per input record.
	Map func(tc *TaskCtx, r Record, emit Emit)
	// Reduce is invoked once per distinct key with all values for it
	// (sorted bytewise).
	Reduce func(tc *TaskCtx, key int64, values [][]byte, emit Emit)
}

// JobResult carries a job's output and counters.
type JobResult struct {
	Output   []Record
	Counters map[string]int64
}

// Cluster executes jobs.
type Cluster struct {
	// Workers is the number of map/reduce slots (default GOMAXPROCS).
	Workers int
	// RoundOverhead is paid once per job (scheduling, container launch).
	RoundOverhead time.Duration
	// Counters accumulates engine metrics across jobs of one algorithm.
	Counters *platform.Counters
}

// Run executes one job over input.
func (c *Cluster) Run(ctx context.Context, input []Record, job Job) (*JobResult, error) {
	if err := platform.CheckContextPhase(ctx, "mapreduce/submit"); err != nil {
		return nil, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if c.Counters == nil {
		c.Counters = &platform.Counters{}
	}
	if c.RoundOverhead > 0 {
		time.Sleep(c.RoundOverhead)
	}
	c.Counters.Supersteps++ // jobs
	sp := telemetry.StartSpan("mapreduce", "job:"+job.Name)
	sp.SetAttr("workers", workers)
	sp.SetAttr("records_in", len(input))
	defer sp.End()

	tc := &TaskCtx{counters: map[string]int64{}}
	errs := make([]error, workers)

	// ------------------------- map phase -------------------------
	// Each mapper serializes its emissions into per-reducer spill
	// buffers (the in-memory stand-in for map output files), probing
	// the context every CheckStride input records.
	spills := make([][][]byte, workers) // [mapper][reducer] -> buffer
	splits := splitRecords(input, workers)
	var wg sync.WaitGroup
	for m := 0; m < workers; m++ {
		spills[m] = make([][]byte, workers)
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			start := time.Now()
			emit := func(key int64, value []byte) {
				r := int(uint64(key*0x9e3779b9) % uint64(workers))
				if key < 0 {
					r = int(uint64(-key) % uint64(workers))
				}
				spills[m][r] = appendRecord(spills[m][r], key, value)
			}
			for ri, rec := range splits[m] {
				if ri%platform.CheckStride == 0 && ctx.Err() != nil {
					errs[m] = platform.CheckContextPhase(ctx, "mapreduce/map")
					break
				}
				job.Map(tc, rec, emit)
			}
			busyAdd(c.Counters, m, workers, time.Since(start))
		}(m)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}

	// --------------------- shuffle + sort phase ---------------------
	// Each reducer fetches its buffer from every mapper (cross-worker
	// fetches count as network traffic), deserializes, and sorts.
	type reduceOut struct {
		buf []byte
	}
	outs := make([]reduceOut, workers)
	var spilled, network, shuffled int64
	var statMu sync.Mutex
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			start := time.Now()
			var recs []Record
			var localSpill, localNet, count int64
			for m := 0; m < workers; m++ {
				buf := spills[m][r]
				localSpill += int64(len(buf))
				if m != r {
					localNet += int64(len(buf))
				}
				for len(buf) > 0 {
					if count%int64(platform.CheckStride) == 0 && ctx.Err() != nil {
						errs[r] = platform.CheckContextPhase(ctx, "mapreduce/shuffle")
						return
					}
					var rec Record
					rec, buf = readRecord(buf)
					recs = append(recs, rec)
					count++
				}
			}
			sortRecords(recs)

			// Group by key and reduce, serializing output (HDFS write).
			var out []byte
			emit := func(key int64, value []byte) {
				out = appendRecord(out, key, value)
			}
			groups := 0
			for i := 0; i < len(recs); {
				if groups%platform.CheckStride == 0 && ctx.Err() != nil {
					errs[r] = platform.CheckContextPhase(ctx, "mapreduce/reduce")
					return
				}
				groups++
				j := i
				for j < len(recs) && recs[j].Key == recs[i].Key {
					j++
				}
				values := make([][]byte, 0, j-i)
				for k := i; k < j; k++ {
					values = append(values, recs[k].Value)
				}
				job.Reduce(tc, recs[i].Key, values, emit)
				i = j
			}
			outs[r] = reduceOut{buf: out}
			statMu.Lock()
			spilled += localSpill + int64(len(out))
			network += localNet
			shuffled += count
			statMu.Unlock()
			busyAdd(c.Counters, r, workers, time.Since(start))
		}(r)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	c.Counters.Messages += shuffled
	c.Counters.MessageBytes += spilled
	c.Counters.SpilledBytes += spilled
	c.Counters.NetworkBytes += network

	// Deserialize job output (HDFS read of the next job), one decoder
	// per reducer output in parallel, concatenated in reducer order.
	decoded := make([][]Record, workers)
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := outs[r].buf
			var recs []Record
			for len(buf) > 0 {
				if len(recs)%platform.CheckStride == 0 && ctx.Err() != nil {
					errs[r] = platform.CheckContextPhase(ctx, "mapreduce/output")
					return
				}
				var rec Record
				rec, buf = readRecord(buf)
				recs = append(recs, rec)
			}
			decoded[r] = recs
		}(r)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	total := 0
	for _, recs := range decoded {
		total += len(recs)
	}
	output := make([]Record, 0, total)
	for _, recs := range decoded {
		output = append(output, recs...)
	}
	sortRecords(output) // deterministic chaining independent of workers
	sp.SetAttr("records_out", len(output))
	return &JobResult{Output: output, Counters: tc.counters}, nil
}

// firstError returns the lowest-indexed non-nil error from a per-worker
// error slice (deterministic pick under concurrent interruption).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

var busyMu sync.Mutex

func busyAdd(c *platform.Counters, w, workers int, d time.Duration) {
	busyMu.Lock()
	defer busyMu.Unlock()
	if len(c.WorkerBusy) < workers {
		grown := make([]time.Duration, workers)
		copy(grown, c.WorkerBusy)
		c.WorkerBusy = grown
	}
	c.WorkerBusy[w] += d
}

func splitRecords(input []Record, parts int) [][]Record {
	out := make([][]Record, parts)
	chunk := (len(input) + parts - 1) / parts
	for p := 0; p < parts; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if lo > len(input) {
			lo = len(input)
		}
		if hi > len(input) {
			hi = len(input)
		}
		out[p] = input[lo:hi]
	}
	return out
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return compareBytes(recs[i].Value, recs[j].Value) < 0
	})
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
