package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// Options configures the MapReduce platform.
type Options struct {
	// Workers is the number of map/reduce slots (default GOMAXPROCS).
	Workers int
	// RoundOverhead is the per-job scheduling cost (default 250ms; the
	// YARN analogue). Set negative for zero.
	RoundOverhead time.Duration
	// MaxJobs bounds iterative job chains (safety; default 10000).
	MaxJobs int
}

// Platform is the Hadoop MapReduce analogue.
type Platform struct {
	opts Options
}

// New returns a MapReduce platform.
func New(opts Options) *Platform {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.RoundOverhead == 0 {
		opts.RoundOverhead = 250 * time.Millisecond
	} else if opts.RoundOverhead < 0 {
		opts.RoundOverhead = 0
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 10000
	}
	return &Platform{opts: opts}
}

// Name implements platform.Platform.
func (p *Platform) Name() string { return "mapreduce" }

// StampConfig implements platform.ConfigStamper. RoundOverhead is
// included because it changes reported runtimes even though outputs are
// identical — a stamped result stores the timings too.
func (p *Platform) StampConfig() string {
	return fmt.Sprintf("mapreduce/workers=%d,roundoverhead=%s,maxjobs=%d",
		p.opts.Workers, p.opts.RoundOverhead, p.opts.MaxJobs)
}

// LoadGraph implements platform.Platform. MapReduce streams state
// through spill buffers, so there is no memory budget to enforce: ETL
// never fails for capacity reasons (§3.3).
func (p *Platform) LoadGraph(g *graph.Graph) (platform.Loaded, error) {
	return &loaded{p: p, g: g}, nil
}

type loaded struct {
	p *Platform
	g *graph.Graph
}

// Graph implements platform.Loaded.
func (l *loaded) Graph() *graph.Graph { return l.g }

// Close implements platform.Loaded.
func (l *loaded) Close() error { return nil }

// Run implements platform.Loaded.
func (l *loaded) Run(ctx context.Context, kind algo.Kind, params algo.Params) (*platform.Result, error) {
	params = params.WithDefaults(l.g.NumVertices())
	cluster := &Cluster{
		Workers:       l.p.opts.Workers,
		RoundOverhead: l.p.opts.RoundOverhead,
		Counters:      &platform.Counters{},
	}
	var out any
	var err error
	switch kind {
	case algo.BFS:
		out, err = l.runBFS(ctx, cluster, params)
	case algo.CONN:
		out, err = l.runConn(ctx, cluster, params)
	case algo.CD:
		out, err = l.runCD(ctx, cluster, params)
	case algo.STATS:
		out, err = l.runStats(ctx, cluster, params)
	case algo.EVO:
		out, err = l.runEvo(ctx, cluster, params)
	case algo.PR:
		out, err = l.runPageRank(ctx, cluster, params)
	case algo.SSSP:
		out, err = l.runSSSP(ctx, cluster, params)
	case algo.LCC:
		out, err = l.runLCC(ctx, cluster, params)
	default:
		return nil, fmt.Errorf("%w: %s on %s", platform.ErrUnsupported, kind, l.p.Name())
	}
	if err != nil {
		return nil, err
	}
	return &platform.Result{Output: out, Counters: *cluster.Counters}, nil
}

// neighborhoods precomputes N(v) for every vertex (the CD/CONN/STATS
// neighborhood). This is input preparation, analogous to reading the
// graph's HDFS input format at the head of a job chain.
func (l *loaded) neighborhoods() [][]graph.VertexID {
	n := l.g.NumVertices()
	out := make([][]graph.VertexID, n)
	for v := 0; v < n; v++ {
		out[v] = l.g.Neighborhood(graph.VertexID(v), nil)
	}
	return out
}
