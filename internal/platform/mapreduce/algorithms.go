package mapreduce

import (
	"context"
	"fmt"
	"sort"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/xrand"
)

// Record value tags.
const (
	tagState byte = 1
	tagMsg   byte = 2
)

// ------------------------------ BFS ------------------------------

// BFS state value: [tagState][updated][zigzag depth][out-adjacency].
// Msg value: [tagMsg][varint depth].
func bfsState(updated bool, depth int64, adj []graph.VertexID) []byte {
	buf := []byte{tagState, 0}
	if updated {
		buf[1] = 1
	}
	buf = appendVarint(buf, depth)
	return appendVertexList(buf, adj)
}

func (l *loaded) runBFS(ctx context.Context, c *Cluster, p algo.Params) (algo.BFSOutput, error) {
	n := l.g.NumVertices()
	input := make([]Record, n)
	for v := 0; v < n; v++ {
		depth := int64(-1)
		updated := false
		if graph.VertexID(v) == p.Source {
			depth, updated = 0, true
		}
		input[v] = Record{Key: int64(v), Value: bfsState(updated, depth, l.g.OutNeighbors(graph.VertexID(v)))}
	}

	job := Job{
		Name: "bfs-iter",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			buf := r.Value[2:]
			depth, buf := readVarint(buf)
			adj, _ := readVertexList(buf)
			emit(r.Key, r.Value)
			if r.Value[1] == 1 { // updated last round: expand frontier
				msg := appendVarint([]byte{tagMsg}, depth+1)
				for _, u := range adj {
					emit(int64(u), msg)
				}
				tc.Inc("traversed", int64(len(adj)))
			}
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			var depth int64 = -1
			var adj []graph.VertexID
			candidate := int64(-1)
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[2:]
					depth, buf = readVarint(buf)
					adj, _ = readVertexList(buf)
				case tagMsg:
					d, _ := readVarint(v[1:])
					if candidate == -1 || d < candidate {
						candidate = d
					}
				}
			}
			updated := false
			if depth == -1 && candidate != -1 {
				depth = candidate
				updated = true
				tc.Inc("updates", 1)
			}
			emit(key, bfsState(updated, depth, adj))
		},
	}

	output := input
	for i := 0; i < l.p.opts.MaxJobs; i++ {
		res, err := c.Run(ctx, output, job)
		if err != nil {
			return nil, err
		}
		output = res.Output
		c.Counters.EdgesTraversed += res.Counters["traversed"]
		if res.Counters["updates"] == 0 {
			break
		}
	}

	depths := make(algo.BFSOutput, n)
	for _, r := range output {
		if r.Value[0] != tagState {
			continue
		}
		d, _ := readVarint(r.Value[2:])
		depths[r.Key] = d
	}
	return depths, nil
}

// ------------------------------ CONN ------------------------------

// CONN state value: [tagState][updated][varint label][neighborhood].
func connState(updated bool, label int64, adj []graph.VertexID) []byte {
	buf := []byte{tagState, 0}
	if updated {
		buf[1] = 1
	}
	buf = appendVarint(buf, label)
	return appendVertexList(buf, adj)
}

func (l *loaded) runConn(ctx context.Context, c *Cluster, p algo.Params) (algo.ConnOutput, error) {
	n := l.g.NumVertices()
	nbh := l.neighborhoods()
	input := make([]Record, n)
	for v := 0; v < n; v++ {
		input[v] = Record{Key: int64(v), Value: connState(true, int64(v), nbh[v])}
	}

	job := Job{
		Name: "conn-iter",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			buf := r.Value[2:]
			label, buf := readVarint(buf)
			adj, _ := readVertexList(buf)
			emit(r.Key, r.Value)
			if r.Value[1] == 1 {
				msg := appendVarint([]byte{tagMsg}, label)
				for _, u := range adj {
					emit(int64(u), msg)
				}
				tc.Inc("traversed", int64(len(adj)))
			}
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			var label int64 = -1
			var adj []graph.VertexID
			candidate := int64(-1)
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[2:]
					label, buf = readVarint(buf)
					adj, _ = readVertexList(buf)
				case tagMsg:
					m, _ := readVarint(v[1:])
					if candidate == -1 || m < candidate {
						candidate = m
					}
				}
			}
			updated := false
			if candidate != -1 && candidate < label {
				label = candidate
				updated = true
				tc.Inc("updates", 1)
			}
			emit(key, connState(updated, label, adj))
		},
	}

	output := input
	for i := 0; i < l.p.opts.MaxJobs; i++ {
		res, err := c.Run(ctx, output, job)
		if err != nil {
			return nil, err
		}
		output = res.Output
		c.Counters.EdgesTraversed += res.Counters["traversed"]
		if res.Counters["updates"] == 0 {
			break
		}
	}

	labels := make(algo.ConnOutput, n)
	for _, r := range output {
		lbl, _ := readVarint(r.Value[2:])
		labels[r.Key] = graph.VertexID(lbl)
	}
	return labels, nil
}

// ------------------------------ CD ------------------------------

// CD state value: [tagState][varint label][float score][uvarint degree][neighborhood].
// Vote msg: [tagMsg][varint label][float score][uvarint degree].
func cdState(label int64, score float64, degree int, adj []graph.VertexID) []byte {
	buf := []byte{tagState}
	buf = appendVarint(buf, label)
	buf = appendFloat(buf, score)
	buf = appendUvarint(buf, uint64(degree))
	return appendVertexList(buf, adj)
}

func (l *loaded) runCD(ctx context.Context, c *Cluster, p algo.Params) (algo.CDOutput, error) {
	n := l.g.NumVertices()
	nbh := l.neighborhoods()
	input := make([]Record, n)
	for v := 0; v < n; v++ {
		input[v] = Record{Key: int64(v), Value: cdState(int64(v), 1, len(nbh[v]), nbh[v])}
	}

	job := Job{
		Name: "cd-iter",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			buf := r.Value[1:]
			label, buf := readVarint(buf)
			score, buf := readFloat(buf)
			degree, buf := readUvarint(buf)
			adj, _ := readVertexList(buf)
			emit(r.Key, r.Value)
			if len(adj) == 0 {
				return
			}
			msg := []byte{tagMsg}
			msg = appendVarint(msg, label)
			msg = appendFloat(msg, score)
			msg = appendUvarint(msg, degree)
			for _, u := range adj {
				emit(int64(u), msg)
			}
			tc.Inc("traversed", int64(len(adj)))
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			var label int64
			var score float64
			var degree uint64
			var adj []graph.VertexID
			votes := make([]algo.Vote, 0, len(values))
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[1:]
					label, buf = readVarint(buf)
					score, buf = readFloat(buf)
					degree, buf = readUvarint(buf)
					adj, _ = readVertexList(buf)
				case tagMsg:
					buf := v[1:]
					vl, buf := readVarint(buf)
					vs, buf := readFloat(buf)
					vd, _ := readUvarint(buf)
					votes = append(votes, algo.Vote{Label: vl, Score: vs, Degree: int32(vd)})
				}
			}
			if win, maxScore, ok := algo.TallyVotes(votes, p.CDPreference); ok {
				s := maxScore
				if win != label {
					s -= p.CDDelta
				}
				if s < 0 {
					s = 0
				}
				label, score = win, s
			}
			emit(key, cdState(label, score, int(degree), adj))
		},
	}

	output := input
	for iter := 0; iter < p.CDIterations; iter++ {
		res, err := c.Run(ctx, output, job)
		if err != nil {
			return nil, err
		}
		output = res.Output
		c.Counters.EdgesTraversed += res.Counters["traversed"]
	}

	labels := make(algo.CDOutput, n)
	for _, r := range output {
		lbl, _ := readVarint(r.Value[1:])
		labels[r.Key] = lbl
	}
	return labels, nil
}

// ------------------------------ STATS ------------------------------

// STATS job 1 state: [tagState][out-adjacency][neighborhood].
// Neighborhood msg: [tagMsg][varint from][vertex list].
// Job 1 output count msg: [tagMsg][varint count].
// Job 2 reduce emits (-1, float lcc_v); the driver sums.
func (l *loaded) runStats(ctx context.Context, c *Cluster, p algo.Params) (algo.StatsOutput, error) {
	n := l.g.NumVertices()
	nbh := l.neighborhoods()
	input := make([]Record, n)
	for v := 0; v < n; v++ {
		buf := []byte{tagState}
		buf = appendVertexList(buf, l.g.OutNeighbors(graph.VertexID(v)))
		buf = appendVertexList(buf, nbh[v])
		input[v] = Record{Key: int64(v), Value: buf}
	}

	job1 := Job{
		Name: "stats-exchange",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			buf := r.Value[1:]
			_, buf = readVertexList(buf) // out-adjacency (unused by mapper)
			adjN, _ := readVertexList(buf)
			emit(r.Key, r.Value)
			if len(adjN) < 2 {
				return
			}
			msg := appendVarint([]byte{tagMsg}, r.Key)
			msg = appendVertexList(msg, adjN)
			for _, u := range adjN {
				emit(int64(u), msg)
			}
			tc.Inc("traversed", int64(len(adjN)))
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			var out, adjN []graph.VertexID
			type ask struct {
				from int64
				nbh  []graph.VertexID
			}
			var asks []ask
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[1:]
					out, buf = readVertexList(buf)
					adjN, _ = readVertexList(buf)
				case tagMsg:
					buf := v[1:]
					from, buf := readVarint(buf)
					nb, _ := readVertexList(buf)
					asks = append(asks, ask{from: from, nbh: nb})
				}
			}
			// Pass the state through so job 2 still has |N(v)|.
			st := []byte{tagState}
			st = appendVertexList(st, nil) // out-adjacency no longer needed
			st = appendVertexList(st, adjN)
			emit(key, st)
			for _, a := range asks {
				cnt := algo.CountClosedPairs(out, a.nbh, graph.VertexID(key))
				emit(a.from, appendVarint([]byte{tagMsg}, cnt))
			}
		},
	}
	res1, err := c.Run(ctx, input, job1)
	if err != nil {
		return algo.StatsOutput{}, err
	}
	c.Counters.EdgesTraversed += res1.Counters["traversed"]

	job2 := Job{
		Name: "stats-lcc",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			emit(r.Key, r.Value)
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			var adjN []graph.VertexID
			var links int64
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[1:]
					_, buf = readVertexList(buf)
					adjN, _ = readVertexList(buf)
				case tagMsg:
					cnt, _ := readVarint(v[1:])
					links += cnt
				}
			}
			d := float64(len(adjN))
			if d >= 2 {
				emit(-1, appendFloat(nil, float64(links)/(d*(d-1))))
			}
		},
	}
	res2, err := c.Run(ctx, res1.Output, job2)
	if err != nil {
		return algo.StatsOutput{}, err
	}
	var sum float64
	for _, r := range res2.Output {
		if r.Key == -1 {
			f, _ := readFloat(r.Value)
			sum += f
		}
	}
	return algo.StatsOutput{Vertices: n, Edges: l.g.NumEdges(), MeanLCC: sum / float64(n)}, nil
}

// ------------------------------ EVO ------------------------------

// EVO state: [tagState][out-adjacency][in-adjacency][burned fires list].
// Burn request msg: [tagMsg][uvarint fire].
// Candidate output record: key = -(2+fire), value = [uvarint vertex].
func evoState(out, in []graph.VertexID, burned []uint32) []byte {
	buf := []byte{tagState}
	buf = appendVertexList(buf, out)
	buf = appendVertexList(buf, in)
	buf = appendUvarint(buf, uint64(len(burned)))
	for _, f := range burned {
		buf = appendUvarint(buf, uint64(f))
	}
	return buf
}

func readEvoState(v []byte) (out, in []graph.VertexID, burned []uint32) {
	buf := v[1:]
	out, buf = readVertexList(buf)
	in, buf = readVertexList(buf)
	nb, buf := readUvarint(buf)
	burned = make([]uint32, nb)
	for i := range burned {
		var f uint64
		f, buf = readUvarint(buf)
		burned[i] = uint32(f)
	}
	return out, in, burned
}

func (l *loaded) runEvo(ctx context.Context, c *Cluster, p algo.Params) (algo.EvoOutput, error) {
	n := l.g.NumVertices()
	k := p.EvoNewVertices

	// Driver-side master state (the job chain's coordination logic).
	burnedCount := make([]int, k)
	dead := make([]bool, k)
	allowed := make(map[graph.VertexID][]uint32) // vertex -> fires to burn this round
	for f := 0; f < k; f++ {
		a := graph.VertexID(algoAmbassador(p.Seed, n, f))
		allowed[a] = append(allowed[a], uint32(f))
		burnedCount[f] = 1
	}

	input := make([]Record, n)
	for v := 0; v < n; v++ {
		var in []graph.VertexID
		out := l.g.OutNeighbors(graph.VertexID(v))
		if l.g.Directed() && l.g.HasReverse() {
			in = l.g.InNeighbors(graph.VertexID(v))
		} else {
			in = out
		}
		input[v] = Record{Key: int64(v), Value: evoState(out, in, nil)}
	}

	output := input
	for round := 0; round < l.p.opts.MaxJobs; round++ {
		if len(allowed) == 0 {
			break
		}
		roundAllowed := allowed
		job := Job{
			Name: fmt.Sprintf("evo-level-%d", round),
			Map: func(tc *TaskCtx, r Record, emit Emit) {
				out, in, burned := readEvoState(r.Value)
				newly := roundAllowed[graph.VertexID(r.Key)]
				if len(newly) > 0 {
					burned = append(burned, newly...)
					for _, f := range newly {
						picks := algo.FirePicksFromLists(graph.VertexID(n+int(f)), graph.VertexID(r.Key), out, in, p)
						msg := appendUvarint([]byte{tagMsg}, uint64(f))
						for _, w := range picks {
							emit(int64(w), msg)
						}
						tc.Inc("traversed", int64(len(picks)))
					}
				}
				emit(r.Key, evoState(out, in, burned))
			},
			Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
				var state []byte
				var requests []uint32
				for _, v := range values {
					switch v[0] {
					case tagState:
						state = v
					case tagMsg:
						f, _ := readUvarint(v[1:])
						requests = append(requests, uint32(f))
					}
				}
				emit(key, state)
				if len(requests) == 0 {
					return
				}
				_, _, burned := readEvoState(state)
				has := func(f uint32) bool {
					for _, x := range burned {
						if x == f {
							return true
						}
					}
					return false
				}
				emitted := map[uint32]bool{}
				for _, f := range requests {
					if has(f) || emitted[f] {
						continue
					}
					emitted[f] = true
					emit(-(2 + int64(f)), appendUvarint(nil, uint64(key)))
				}
			},
		}
		res, err := c.Run(ctx, output, job)
		if err != nil {
			return algo.EvoOutput{}, err
		}
		c.Counters.EdgesTraversed += res.Counters["traversed"]

		// Split candidates from state records; run the cap verdict.
		cands := make(map[uint32][]graph.VertexID)
		output = output[:0]
		for _, r := range res.Output {
			if r.Key <= -2 {
				f := uint32(-r.Key - 2)
				v, _ := readUvarint(r.Value)
				cands[f] = append(cands[f], graph.VertexID(v))
				continue
			}
			output = append(output, r)
		}
		allowed = make(map[graph.VertexID][]uint32)
		fires := make([]int, 0, len(cands))
		for f := range cands {
			fires = append(fires, int(f))
		}
		sort.Ints(fires)
		for _, fi := range fires {
			f := uint32(fi)
			if dead[f] {
				continue
			}
			vs := cands[f]
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			uniq := vs[:0]
			var last graph.VertexID
			for i, v := range vs {
				if i == 0 || v != last {
					uniq = append(uniq, v)
					last = v
				}
			}
			room := p.EvoMaxBurn - burnedCount[f]
			if len(uniq) >= room {
				uniq = uniq[:room]
				dead[f] = true
			}
			burnedCount[f] += len(uniq)
			for _, v := range uniq {
				allowed[v] = append(allowed[v], f)
			}
		}
	}

	evo := algo.EvoOutput{NewVertices: k}
	for _, r := range output {
		_, _, burned := readEvoState(r.Value)
		for _, f := range burned {
			evo.Edges = append(evo.Edges, [2]graph.VertexID{graph.VertexID(n + int(f)), graph.VertexID(r.Key)})
		}
	}
	sort.Slice(evo.Edges, func(i, j int) bool {
		if evo.Edges[i][0] != evo.Edges[j][0] {
			return evo.Edges[i][0] < evo.Edges[j][0]
		}
		return evo.Edges[i][1] < evo.Edges[j][1]
	})
	return evo, nil
}

// algoAmbassador mirrors the reference ambassador selection
// (algo.BurnFire): Mix3(seed, newVertexID, 0) mod n.
func algoAmbassador(seed uint64, n, fire int) uint64 {
	return xrand.Mix3(seed, uint64(n+fire), 0) % uint64(n)
}
