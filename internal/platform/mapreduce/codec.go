package mapreduce

import (
	"encoding/binary"
	"math"

	"graphalytics/internal/graph"
)

// The record codec: length-prefixed (key, value) framing for spill
// buffers, plus the primitive encoders the algorithm jobs use for their
// record values. All integers are varints; vertex lists are
// delta-encoded, which is both realistic (Hadoop graph formats
// delta-compress adjacency) and cheap to decode.

// appendRecord frames (key, value) onto buf.
func appendRecord(buf []byte, key int64, value []byte) []byte {
	buf = binary.AppendVarint(buf, key)
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	return append(buf, value...)
}

// readRecord parses one framed record and returns the remaining buffer.
func readRecord(buf []byte) (Record, []byte) {
	key, n := binary.Varint(buf)
	buf = buf[n:]
	l, n := binary.Uvarint(buf)
	buf = buf[n:]
	value := buf[:l:l]
	return Record{Key: key, Value: value}, buf[l:]
}

// appendUvarint / appendVarint / appendFloat primitives.

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendVarint(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

func appendFloat(buf []byte, f float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(buf, tmp[:]...)
}

func readUvarint(buf []byte) (uint64, []byte) {
	v, n := binary.Uvarint(buf)
	return v, buf[n:]
}

func readVarint(buf []byte) (int64, []byte) {
	v, n := binary.Varint(buf)
	return v, buf[n:]
}

func readFloat(buf []byte) (float64, []byte) {
	v := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
	return v, buf[8:]
}

// appendVertexList delta-encodes a sorted vertex list.
func appendVertexList(buf []byte, vs []graph.VertexID) []byte {
	buf = appendUvarint(buf, uint64(len(vs)))
	prev := uint64(0)
	for _, v := range vs {
		buf = appendUvarint(buf, uint64(v)-prev)
		prev = uint64(v)
	}
	return buf
}

// readVertexList decodes a delta-encoded vertex list.
func readVertexList(buf []byte) ([]graph.VertexID, []byte) {
	n, buf := readUvarint(buf)
	out := make([]graph.VertexID, n)
	prev := uint64(0)
	for i := range out {
		var d uint64
		d, buf = readUvarint(buf)
		prev += d
		out[i] = graph.VertexID(prev)
	}
	return out, buf
}

// appendWeightedList delta-encodes a sorted vertex list followed by its
// parallel float64 weights (the weighted-adjacency record of SSSP). A
// nil ws encodes unit weights compactly (a zero flag byte).
func appendWeightedList(buf []byte, vs []graph.VertexID, ws []float64) []byte {
	buf = appendVertexList(buf, vs)
	if ws == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	for _, w := range ws {
		buf = appendFloat(buf, w)
	}
	return buf
}

// readWeightedList decodes a weighted adjacency record. ws is nil when
// the record was written with unit weights.
func readWeightedList(buf []byte) ([]graph.VertexID, []float64, []byte) {
	vs, buf := readVertexList(buf)
	flag := buf[0]
	buf = buf[1:]
	if flag == 0 {
		return vs, nil, buf
	}
	ws := make([]float64, len(vs))
	for i := range ws {
		ws[i], buf = readFloat(buf)
	}
	return vs, ws, buf
}
