package mapreduce

// The three LDBC Graphalytics workloads (PR, SSSP, LCC) as MapReduce
// job chains, following the idioms of algorithms.go: vertex state
// (including adjacency) flows through every job as serialized records,
// iterative chains re-run one job until a counter goes quiet, and
// driver-side scalars (PageRank's dangling mass) are recomputed between
// jobs the way a Hadoop driver reads counters between rounds.

import (
	"context"
	"math"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
)

// ------------------------------ PR ------------------------------

// PR state value: [tagState][float rank][out-adjacency].
// Contribution msg: [tagMsg][float rank/outdeg].
func prState(rank float64, adj []graph.VertexID) []byte {
	buf := []byte{tagState}
	buf = appendFloat(buf, rank)
	return appendVertexList(buf, adj)
}

func (l *loaded) runPageRank(ctx context.Context, c *Cluster, p algo.Params) (algo.PROutput, error) {
	n := l.g.NumVertices()
	d := p.PRDamping
	inv := 1.0 / float64(n)
	input := make([]Record, n)
	for v := 0; v < n; v++ {
		input[v] = Record{Key: int64(v), Value: prState(inv, l.g.OutNeighbors(graph.VertexID(v)))}
	}

	// danglingOf sums the rank of sink vertices in a state record set —
	// the driver-side scalar each iteration's reducer needs.
	danglingOf := func(recs []Record) float64 {
		var sum float64
		for _, r := range recs {
			if r.Value[0] != tagState {
				continue
			}
			rank, buf := readFloat(r.Value[1:])
			if adjLen, _ := readUvarint(buf); adjLen == 0 {
				sum += rank
			}
		}
		return sum
	}

	output := input
	for iter := 0; iter < p.PRIterations; iter++ {
		dangling := danglingOf(output)
		job := Job{
			Name: "pagerank-iter",
			Map: func(tc *TaskCtx, r Record, emit Emit) {
				rank, buf := readFloat(r.Value[1:])
				adj, _ := readVertexList(buf)
				emit(r.Key, r.Value)
				if len(adj) == 0 {
					return
				}
				msg := appendFloat([]byte{tagMsg}, rank/float64(len(adj)))
				for _, u := range adj {
					emit(int64(u), msg)
				}
				tc.Inc("traversed", int64(len(adj)))
			},
			Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
				var adj []graph.VertexID
				var sum float64
				for _, v := range values {
					switch v[0] {
					case tagState:
						buf := v[1:]
						_, buf = readFloat(buf)
						adj, _ = readVertexList(buf)
					case tagMsg:
						contrib, _ := readFloat(v[1:])
						sum += contrib
					}
				}
				rank := (1-d)*inv + d*dangling*inv + d*sum
				emit(key, prState(rank, adj))
			},
		}
		res, err := c.Run(ctx, output, job)
		if err != nil {
			return nil, err
		}
		output = res.Output
		c.Counters.EdgesTraversed += res.Counters["traversed"]
	}

	ranks := make(algo.PROutput, n)
	for _, r := range output {
		rank, _ := readFloat(r.Value[1:])
		ranks[r.Key] = rank
	}
	return ranks, nil
}

// ------------------------------ SSSP ------------------------------

// SSSP state value: [tagState][updated][float dist][weighted adjacency].
// Candidate msg: [tagMsg][float dist].
func ssspState(updated bool, dist float64, adj []graph.VertexID, ws []float64) []byte {
	buf := []byte{tagState, 0}
	if updated {
		buf[1] = 1
	}
	buf = appendFloat(buf, dist)
	return appendWeightedList(buf, adj, ws)
}

func (l *loaded) runSSSP(ctx context.Context, c *Cluster, p algo.Params) (algo.SSSPOutput, error) {
	n := l.g.NumVertices()
	inf := math.Inf(1)
	input := make([]Record, n)
	for v := 0; v < n; v++ {
		dist, updated := inf, false
		if graph.VertexID(v) == p.Source {
			dist, updated = 0, true
		}
		input[v] = Record{Key: int64(v), Value: ssspState(updated, dist,
			l.g.OutNeighbors(graph.VertexID(v)), l.g.OutWeights(graph.VertexID(v)))}
	}

	job := Job{
		Name: "sssp-iter",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			buf := r.Value[2:]
			dist, buf := readFloat(buf)
			adj, ws, _ := readWeightedList(buf)
			emit(r.Key, r.Value)
			if r.Value[1] == 1 { // improved last round: relax out-arcs
				for i, u := range adj {
					emit(int64(u), appendFloat([]byte{tagMsg}, dist+graph.WeightAt(ws, i)))
				}
				tc.Inc("traversed", int64(len(adj)))
			}
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			dist := math.Inf(1)
			var adj []graph.VertexID
			var ws []float64
			candidate := math.Inf(1)
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[2:]
					dist, buf = readFloat(buf)
					adj, ws, _ = readWeightedList(buf)
				case tagMsg:
					d, _ := readFloat(v[1:])
					if d < candidate {
						candidate = d
					}
				}
			}
			updated := false
			if candidate < dist {
				dist = candidate
				updated = true
				tc.Inc("updates", 1)
			}
			emit(key, ssspState(updated, dist, adj, ws))
		},
	}

	output := input
	for i := 0; i < l.p.opts.MaxJobs; i++ {
		res, err := c.Run(ctx, output, job)
		if err != nil {
			return nil, err
		}
		output = res.Output
		c.Counters.EdgesTraversed += res.Counters["traversed"]
		if res.Counters["updates"] == 0 {
			break
		}
	}

	dists := make(algo.SSSPOutput, n)
	for _, r := range output {
		if r.Value[0] != tagState {
			continue
		}
		d, _ := readFloat(r.Value[2:])
		dists[r.Key] = d
	}
	return dists, nil
}

// ------------------------------ LCC ------------------------------

// runLCC reuses the STATS job shapes (see runStats) but keeps the final
// division per vertex: job 1 exchanges neighborhoods and closed-pair
// counts, job 2 emits each vertex's own coefficient instead of folding
// into a global sum.
func (l *loaded) runLCC(ctx context.Context, c *Cluster, p algo.Params) (algo.LCCOutput, error) {
	n := l.g.NumVertices()
	nbh := l.neighborhoods()
	input := make([]Record, n)
	for v := 0; v < n; v++ {
		buf := []byte{tagState}
		buf = appendVertexList(buf, l.g.OutNeighbors(graph.VertexID(v)))
		buf = appendVertexList(buf, nbh[v])
		input[v] = Record{Key: int64(v), Value: buf}
	}

	job1 := Job{
		Name: "lcc-exchange",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			buf := r.Value[1:]
			_, buf = readVertexList(buf) // out-adjacency (unused by mapper)
			adjN, _ := readVertexList(buf)
			emit(r.Key, r.Value)
			if len(adjN) < 2 {
				return
			}
			msg := appendVarint([]byte{tagMsg}, r.Key)
			msg = appendVertexList(msg, adjN)
			for _, u := range adjN {
				emit(int64(u), msg)
			}
			tc.Inc("traversed", int64(len(adjN)))
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			var out, adjN []graph.VertexID
			type ask struct {
				from int64
				nbh  []graph.VertexID
			}
			var asks []ask
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[1:]
					out, buf = readVertexList(buf)
					adjN, _ = readVertexList(buf)
				case tagMsg:
					buf := v[1:]
					from, buf := readVarint(buf)
					nb, _ := readVertexList(buf)
					asks = append(asks, ask{from: from, nbh: nb})
				}
			}
			// Pass the state through so job 2 still has |N(v)|.
			st := []byte{tagState}
			st = appendVertexList(st, nil) // out-adjacency no longer needed
			st = appendVertexList(st, adjN)
			emit(key, st)
			for _, a := range asks {
				cnt := algo.CountClosedPairs(out, a.nbh, graph.VertexID(key))
				emit(a.from, appendVarint([]byte{tagMsg}, cnt))
			}
		},
	}
	res1, err := c.Run(ctx, input, job1)
	if err != nil {
		return nil, err
	}
	c.Counters.EdgesTraversed += res1.Counters["traversed"]

	job2 := Job{
		Name: "lcc-divide",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			emit(r.Key, r.Value)
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			var adjN []graph.VertexID
			var links int64
			for _, v := range values {
				switch v[0] {
				case tagState:
					buf := v[1:]
					_, buf = readVertexList(buf)
					adjN, _ = readVertexList(buf)
				case tagMsg:
					cnt, _ := readVarint(v[1:])
					links += cnt
				}
			}
			d := float64(len(adjN))
			if d >= 2 {
				emit(key, appendFloat([]byte{tagMsg}, float64(links)/(d*(d-1))))
			} else {
				emit(key, appendFloat([]byte{tagMsg}, 0))
			}
		},
	}
	res2, err := c.Run(ctx, res1.Output, job2)
	if err != nil {
		return nil, err
	}
	lcc := make(algo.LCCOutput, n)
	for _, r := range res2.Output {
		f, _ := readFloat(r.Value[1:])
		lcc[r.Key] = f
	}
	return lcc, nil
}
