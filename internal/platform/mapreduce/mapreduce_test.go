package mapreduce

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/platformtest"
)

// fast returns a platform with no per-job scheduling overhead, for tests.
func fast() *Platform { return New(Options{RoundOverhead: -1}) }

func TestConformance(t *testing.T) {
	platformtest.Conformance(t, fast())
}

func TestConformanceSingleWorker(t *testing.T) {
	platformtest.Conformance(t, New(Options{Workers: 1, RoundOverhead: -1}))
}

func TestCountersPopulated(t *testing.T) {
	platformtest.CountersPopulated(t, fast())
}

func TestName(t *testing.T) {
	if fast().Name() != "mapreduce" {
		t.Error("name")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, 42, []byte("hello"))
	buf = appendRecord(buf, -7, nil)
	buf = appendRecord(buf, 0, []byte{1, 2, 3})
	r1, rest := readRecord(buf)
	r2, rest := readRecord(rest)
	r3, rest := readRecord(rest)
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if r1.Key != 42 || string(r1.Value) != "hello" {
		t.Errorf("r1 = %+v", r1)
	}
	if r2.Key != -7 || len(r2.Value) != 0 {
		t.Errorf("r2 = %+v", r2)
	}
	if r3.Key != 0 || len(r3.Value) != 3 {
		t.Errorf("r3 = %+v", r3)
	}
}

func TestVertexListCodec(t *testing.T) {
	lists := [][]uint32{
		{},
		{0},
		{1, 5, 5, 900, 1 << 30},
	}
	for _, l := range lists {
		in := make([]graph.VertexID, len(l))
		for i, x := range l {
			in[i] = graph.VertexID(x)
		}
		buf := appendVertexList(nil, in)
		out, rest := readVertexList(buf)
		if len(rest) != 0 {
			t.Fatalf("trailing bytes for %v", l)
		}
		if len(out) != len(in) {
			t.Fatalf("len %d != %d", len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("list %v round-tripped to %v", in, out)
			}
		}
	}
}

func TestWordCount(t *testing.T) {
	// The classic sanity check: the engine is a real general-purpose
	// MapReduce, not a graph-only special case.
	input := []Record{
		{Key: 0, Value: []byte("a b a")},
		{Key: 1, Value: []byte("b a")},
	}
	job := Job{
		Name: "wordcount",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			word := int64(0)
			for _, ch := range r.Value {
				switch ch {
				case 'a':
					word = 'a'
				case 'b':
					word = 'b'
				default:
					continue
				}
				emit(word, []byte{1})
			}
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			emit(key, []byte{byte(len(values))})
		},
	}
	c := &Cluster{Workers: 3, Counters: &platform.Counters{}}
	res, err := c.Run(context.Background(), input, job)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, r := range res.Output {
		counts[r.Key] = int(r.Value[0])
	}
	if counts['a'] != 3 || counts['b'] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestJobCounters(t *testing.T) {
	job := Job{
		Name: "counting",
		Map: func(tc *TaskCtx, r Record, emit Emit) {
			tc.Inc("mapped", 1)
			emit(r.Key, r.Value)
		},
		Reduce: func(tc *TaskCtx, key int64, values [][]byte, emit Emit) {
			tc.Inc("reduced", 1)
		},
	}
	c := &Cluster{Workers: 2, Counters: &platform.Counters{}}
	input := []Record{{Key: 1}, {Key: 2}, {Key: 2}}
	res, err := c.Run(context.Background(), input, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["mapped"] != 3 {
		t.Errorf("mapped = %d", res.Counters["mapped"])
	}
	if res.Counters["reduced"] != 2 {
		t.Errorf("reduced = %d (distinct keys)", res.Counters["reduced"])
	}
}

func TestSpillAccounting(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := fast()
	loaded, _ := p.LoadGraph(g)
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), algo.BFS, algo.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.SpilledBytes == 0 {
		t.Error("BFS job chain must spill intermediate bytes")
	}
	if c.Supersteps < 2 {
		t.Errorf("expected several jobs, got %d", c.Supersteps)
	}
	// Every iteration rewrites the whole graph: spilled bytes must far
	// exceed the raw adjacency size — the physical reason Figure 4 puts
	// MapReduce orders of magnitude behind the BSP engine.
	if c.SpilledBytes < g.NumArcs()*2 {
		t.Errorf("spill volume %d suspiciously low for %d arcs over %d jobs",
			c.SpilledBytes, g.NumArcs(), c.Supersteps)
	}
}

func TestRoundOverheadPaid(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{RoundOverhead: 30 * time.Millisecond})
	loaded, _ := p.LoadGraph(g)
	defer loaded.Close()
	start := time.Now()
	res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := time.Duration(res.Counters.Supersteps) * 30 * time.Millisecond
	if elapsed := time.Since(start); elapsed < wantMin {
		t.Errorf("elapsed %v < %d jobs × 30ms", elapsed, res.Counters.Supersteps)
	}
}

func TestContextCancellation(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 1000, Seed: 3})
	p := fast()
	loaded, _ := p.LoadGraph(g)
	defer loaded.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loaded.Run(ctx, algo.CD, algo.Params{}); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestUnsupportedKind(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 100, Seed: 4})
	loaded, _ := fast().LoadGraph(g)
	defer loaded.Close()
	if _, err := loaded.Run(context.Background(), algo.Kind("XX"), algo.Params{}); !errors.Is(err, platform.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadNeverFailsOnSize(t *testing.T) {
	// The §3.3 finding: MapReduce handles any workload if given time.
	g, err := datagen.Generate(datagen.Config{Persons: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fast().LoadGraph(g); err != nil {
		t.Fatalf("MapReduce ETL must not fail on size: %v", err)
	}
}
