// Package platformtest provides the cross-platform conformance suite:
// every platform's output for every *registered* workload is checked
// against the sequential reference implementation on a matrix of
// graphs. This is the executable form of the Output Validator's
// contract, driven by the workload registry — registering a new
// workload automatically adds it to every platform's conformance run,
// under the validation policy its spec declares (exact for the
// deterministic specifications, epsilon for the float-summing ones).
package platformtest

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/workload"
)

// Graphs returns the conformance graph matrix: directed and undirected
// random graphs, a social-network graph, a disconnected graph, a
// weighted graph (exercising the weighted workloads beyond unit
// weights), and a tiny pathological graph.
func Graphs(tb testing.TB) []*graph.Graph {
	tb.Helper()
	var out []*graph.Graph

	rnd := func(name string, n, m int, seed int64, directed, weighted bool) *graph.Graph {
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(graph.Directed(directed), graph.Dedup(), graph.DropSelfLoops(), graph.WithReverse(), graph.WithName(name))
		b.SetNumVertices(n)
		for i := 0; i < m; i++ {
			u, v := graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n))
			if weighted {
				b.AddEdgeIDWeighted(u, v, 0.25+r.Float64())
			} else {
				b.AddEdgeID(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			tb.Fatal(err)
		}
		return g
	}

	out = append(out,
		rnd("rand-directed", 300, 1500, 1, true, false),
		rnd("rand-undirected", 300, 1200, 2, false, false),
		rnd("rand-sparse-disconnected", 400, 220, 3, true, false),
		rnd("rand-weighted", 300, 1400, 5, true, true),
		rnd("tiny", 8, 12, 4, false, false),
	)
	sn, err := datagen.Generate(datagen.Config{Persons: 500, Seed: 77, Name: "social"})
	if err != nil {
		tb.Fatal(err)
	}
	out = append(out, sn)
	return out
}

// Conformance runs every registered workload of p on every conformance
// graph and fails the test on any output its spec's validator rejects.
func Conformance(t *testing.T, p platform.Platform) {
	t.Helper()
	specs := workload.All()
	for _, g := range Graphs(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			loaded, err := p.LoadGraph(g)
			if err != nil {
				t.Fatalf("LoadGraph: %v", err)
			}
			defer loaded.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			params := algo.Params{Source: 0, Seed: 99, EvoNewVertices: 6}.WithDefaults(g.NumVertices())

			for _, spec := range specs {
				spec := spec
				t.Run(spec.Name(), func(t *testing.T) {
					if err := spec.Supports(g); err != nil {
						t.Skipf("unsupported: %v", err)
					}
					res, err := loaded.Run(ctx, spec.Kind, params)
					if err != nil {
						t.Fatal(err)
					}
					if v := spec.Validate(g, params, res.Output); !v.Valid {
						t.Fatalf("%s output rejected (%s policy): %s", spec.Kind, spec.Policy, v.Detail)
					}
				})
			}
		})
	}
}

// WorkersSweep runs every registered workload at worker counts 1, 2
// and 8 and asserts each parallel run matches the workers=1 run under
// the workload's validation policy: every output must pass the spec's
// validator, and exact-policy outputs must additionally be
// bit-identical to the single-worker run. factory builds the platform
// at a given worker count (whatever the engine calls it — BSP workers,
// map/reduce slots, dataset partitions).
func WorkersSweep(t *testing.T, factory func(workers int) platform.Platform) {
	t.Helper()
	counts := []int{1, 2, 8}
	gs := Graphs(t)
	sweep := []*graph.Graph{gs[0], gs[3]} // rand-directed + rand-weighted
	specs := workload.All()
	for _, g := range sweep {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			params := algo.Params{Source: 0, Seed: 99, EvoNewVertices: 6}.WithDefaults(g.NumVertices())
			outputs := make(map[int]map[algo.Kind]any, len(counts))
			for _, w := range counts {
				loaded, err := factory(w).LoadGraph(g)
				if err != nil {
					t.Fatalf("workers=%d LoadGraph: %v", w, err)
				}
				outputs[w] = map[algo.Kind]any{}
				for _, spec := range specs {
					if err := spec.Supports(g); err != nil {
						continue
					}
					res, err := loaded.Run(context.Background(), spec.Kind, params)
					if err != nil {
						t.Fatalf("workers=%d %s: %v", w, spec.Kind, err)
					}
					if v := spec.Validate(g, params, res.Output); !v.Valid {
						t.Fatalf("workers=%d %s rejected (%s policy): %s", w, spec.Kind, spec.Policy, v.Detail)
					}
					outputs[w][spec.Kind] = res.Output
				}
				loaded.Close()
			}
			for _, spec := range specs {
				if spec.Policy != workload.PolicyExact {
					continue
				}
				base, ok := outputs[counts[0]][spec.Kind]
				if !ok {
					continue
				}
				for _, w := range counts[1:] {
					if !reflect.DeepEqual(outputs[w][spec.Kind], base) {
						t.Errorf("%s: workers=%d output differs from workers=1 under the exact policy", spec.Kind, w)
					}
				}
			}
		})
	}
}

// CountersPopulated runs one algorithm and asserts the engine reported
// meaningful counters.
func CountersPopulated(t *testing.T, p platform.Platform) {
	t.Helper()
	g := Graphs(t)[0]
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Supersteps == 0 {
		t.Error("Supersteps counter not populated")
	}
	if c.Messages == 0 || c.MessageBytes == 0 {
		t.Errorf("message counters not populated: %+v", c)
	}
}
