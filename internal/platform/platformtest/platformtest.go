// Package platformtest provides the cross-platform conformance suite:
// every platform's output for every algorithm is checked against the
// sequential reference implementation on a matrix of graphs. This is the
// executable form of the Output Validator's contract — platforms must be
// *exactly* equivalent (STATS mean LCC up to floating-point epsilon).
package platformtest

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
)

// Graphs returns the conformance graph matrix: directed and undirected
// random graphs, a social-network graph, a disconnected graph, and a
// tiny pathological graph.
func Graphs(tb testing.TB) []*graph.Graph {
	tb.Helper()
	var out []*graph.Graph

	rnd := func(name string, n, m int, seed int64, directed bool) *graph.Graph {
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(graph.Directed(directed), graph.Dedup(), graph.DropSelfLoops(), graph.WithReverse(), graph.WithName(name))
		b.SetNumVertices(n)
		for i := 0; i < m; i++ {
			b.AddEdgeID(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			tb.Fatal(err)
		}
		return g
	}

	out = append(out,
		rnd("rand-directed", 300, 1500, 1, true),
		rnd("rand-undirected", 300, 1200, 2, false),
		rnd("rand-sparse-disconnected", 400, 220, 3, true),
		rnd("tiny", 8, 12, 4, false),
	)
	sn, err := datagen.Generate(datagen.Config{Persons: 500, Seed: 77, Name: "social"})
	if err != nil {
		tb.Fatal(err)
	}
	out = append(out, sn)
	return out
}

// Conformance runs every algorithm of p on every conformance graph and
// fails the test on any mismatch with the reference implementation.
func Conformance(t *testing.T, p platform.Platform) {
	t.Helper()
	for _, g := range Graphs(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			loaded, err := p.LoadGraph(g)
			if err != nil {
				t.Fatalf("LoadGraph: %v", err)
			}
			defer loaded.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			params := algo.Params{Source: 0, Seed: 99, EvoNewVertices: 6}.WithDefaults(g.NumVertices())

			t.Run("BFS", func(t *testing.T) {
				res, err := loaded.Run(ctx, algo.BFS, params)
				if err != nil {
					t.Fatal(err)
				}
				want := algo.RunBFS(g, params.Source)
				got, ok := res.Output.(algo.BFSOutput)
				if !ok {
					t.Fatalf("output type %T", res.Output)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("BFS mismatch:\n got %v\nwant %v", head(got), head(want))
				}
			})

			t.Run("CONN", func(t *testing.T) {
				res, err := loaded.Run(ctx, algo.CONN, params)
				if err != nil {
					t.Fatal(err)
				}
				want := algo.RunConn(g)
				got, ok := res.Output.(algo.ConnOutput)
				if !ok {
					t.Fatalf("output type %T", res.Output)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("CONN mismatch:\n got %v\nwant %v", head(got), head(want))
				}
			})

			t.Run("CD", func(t *testing.T) {
				res, err := loaded.Run(ctx, algo.CD, params)
				if err != nil {
					t.Fatal(err)
				}
				want := algo.RunCD(g, params)
				got, ok := res.Output.(algo.CDOutput)
				if !ok {
					t.Fatalf("output type %T", res.Output)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("CD mismatch:\n got %v\nwant %v", head(got), head(want))
				}
			})

			t.Run("STATS", func(t *testing.T) {
				res, err := loaded.Run(ctx, algo.STATS, params)
				if err != nil {
					t.Fatal(err)
				}
				want := algo.RunStats(g)
				got, ok := res.Output.(algo.StatsOutput)
				if !ok {
					t.Fatalf("output type %T", res.Output)
				}
				if got.Vertices != want.Vertices || got.Edges != want.Edges {
					t.Fatalf("STATS size mismatch: got %+v want %+v", got, want)
				}
				if math.Abs(got.MeanLCC-want.MeanLCC) > 1e-9 {
					t.Fatalf("MeanLCC = %.12f, want %.12f", got.MeanLCC, want.MeanLCC)
				}
			})

			t.Run("EVO", func(t *testing.T) {
				res, err := loaded.Run(ctx, algo.EVO, params)
				if err != nil {
					t.Fatal(err)
				}
				want := algo.RunEvo(g, params)
				got, ok := res.Output.(algo.EvoOutput)
				if !ok {
					t.Fatalf("output type %T", res.Output)
				}
				if got.NewVertices != want.NewVertices {
					t.Fatalf("NewVertices = %d, want %d", got.NewVertices, want.NewVertices)
				}
				if !reflect.DeepEqual(got.Edges, want.Edges) {
					t.Fatalf("EVO edges mismatch:\n got %v (%d)\nwant %v (%d)",
						headE(got.Edges), len(got.Edges), headE(want.Edges), len(want.Edges))
				}
			})
		})
	}
}

// CountersPopulated runs one algorithm and asserts the engine reported
// meaningful counters.
func CountersPopulated(t *testing.T, p platform.Platform) {
	t.Helper()
	g := Graphs(t)[0]
	loaded, err := p.LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Supersteps == 0 {
		t.Error("Supersteps counter not populated")
	}
	if c.Messages == 0 || c.MessageBytes == 0 {
		t.Errorf("message counters not populated: %+v", c)
	}
}

func head[T any](s []T) []T {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

func headE(s [][2]graph.VertexID) [][2]graph.VertexID {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}
