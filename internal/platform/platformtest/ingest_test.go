package platformtest

import (
	"bytes"
	"fmt"
	"testing"

	"graphalytics/internal/graph"
)

// TestParallelIngestMatchesSequentialOnConformanceGraphs is the
// acceptance oracle for the parallel ingest pipeline: every
// conformance-suite graph (including the weighted one) is written to
// the text format and loaded back with the sequential loader and with
// the parallel pipeline at several worker counts; the results must be
// indistinguishable down to every adjacency list, weight, and label.
func TestParallelIngestMatchesSequentialOnConformanceGraphs(t *testing.T) {
	for _, g := range Graphs(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			t.Parallel()
			var ebuf, vbuf bytes.Buffer
			if err := g.WriteEdgeList(&ebuf); err != nil {
				t.Fatal(err)
			}
			if err := g.WriteVertexList(&vbuf); err != nil {
				t.Fatal(err)
			}
			load := func(workers int) *graph.Graph {
				loaded, err := graph.ReadGraph(bytes.NewReader(ebuf.Bytes()), bytes.NewReader(vbuf.Bytes()),
					graph.LoadOptions{Directed: g.Directed(), Name: g.Name(), Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return loaded
			}
			seq := load(1)
			for _, workers := range []int{2, 4, 8} {
				par := load(workers)
				assertSameGraph(t, seq, par, workers)
			}
		})
	}
}

// assertSameGraph compares two graphs through the public CSR surface:
// vertex count, labels, and per-vertex sorted adjacency with weights in
// both directions — which pins the index/edges/weights arrays exactly.
func assertSameGraph(t *testing.T, want, got *graph.Graph, workers int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("workers=%d: %s", workers, fmt.Sprintf(format, args...))
	}
	if got.NumVertices() != want.NumVertices() {
		fail("vertices %d != %d", got.NumVertices(), want.NumVertices())
	}
	if got.NumArcs() != want.NumArcs() {
		fail("arcs %d != %d", got.NumArcs(), want.NumArcs())
	}
	if got.Weighted() != want.Weighted() {
		fail("weightedness differs")
	}
	if got.HasReverse() != want.HasReverse() {
		fail("reverse adjacency presence differs")
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := graph.VertexID(v)
		if got.Label(id) != want.Label(id) {
			fail("label[%d] %d != %d", v, got.Label(id), want.Label(id))
		}
		wAdj, gAdj := want.OutNeighbors(id), got.OutNeighbors(id)
		if len(wAdj) != len(gAdj) {
			fail("out-degree[%d] %d != %d", v, len(gAdj), len(wAdj))
		}
		wW, gW := want.OutWeights(id), got.OutWeights(id)
		for i := range wAdj {
			if wAdj[i] != gAdj[i] {
				fail("out adjacency of %d differs at %d", v, i)
			}
			if wW != nil && wW[i] != gW[i] {
				fail("out weights of %d differ at %d: %v != %v", v, i, gW[i], wW[i])
			}
		}
		if !want.HasReverse() {
			continue
		}
		wIn, gIn := want.InNeighbors(id), got.InNeighbors(id)
		if len(wIn) != len(gIn) {
			fail("in-degree[%d] %d != %d", v, len(gIn), len(wIn))
		}
		wIW, gIW := want.InWeights(id), got.InWeights(id)
		for i := range wIn {
			if wIn[i] != gIn[i] {
				fail("in adjacency of %d differs at %d", v, i)
			}
			if wIW != nil && wIW[i] != gIW[i] {
				fail("in weights of %d differ at %d", v, i)
			}
		}
	}
}
