package platformtest

import (
	"testing"

	"graphalytics/internal/platform"
	"graphalytics/internal/platform/dataflow"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/mapreduce"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/workload"
)

// TestRegistryConformanceMatrix is the full conformance matrix in one
// place: every registered workload × every platform, validated against
// the reference under each workload's declared policy. The per-platform
// packages run Conformance again under their own engine variants
// (worker counts, combiners off); this test pins the default
// configurations and fails loudly when a newly registered workload is
// missing a platform implementation.
func TestRegistryConformanceMatrix(t *testing.T) {
	platforms := []platform.Platform{
		pregel.New(pregel.Options{}),
		mapreduce.New(mapreduce.Options{RoundOverhead: -1}),
		dataflow.New(dataflow.Options{}),
		graphdb.New(graphdb.Options{}),
	}
	for _, p := range platforms {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			Conformance(t, p)
		})
	}
}

// TestWorkersSweepAcrossEngines sweeps the worker knob of every
// parallel engine (pregel BSP workers, mapreduce slots, dataflow
// partitions) and checks the parallel outputs against the
// single-worker run under each workload's validation policy. graphdb
// is absent by design: the record store is single-threaded.
func TestWorkersSweepAcrossEngines(t *testing.T) {
	cases := []struct {
		name    string
		factory func(workers int) platform.Platform
	}{
		{"pregel", func(w int) platform.Platform { return pregel.New(pregel.Options{Workers: w}) }},
		{"mapreduce", func(w int) platform.Platform {
			return mapreduce.New(mapreduce.Options{Workers: w, RoundOverhead: -1})
		}},
		{"dataflow", func(w int) platform.Platform { return dataflow.New(dataflow.Options{Parts: w}) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			WorkersSweep(t, c.factory)
		})
	}
}

// TestWeightedGraphReachesPlatforms asserts the conformance matrix
// actually exercises a weighted graph — the guard that keeps the SSSP
// runs from silently degrading to unit weights everywhere.
func TestWeightedGraphReachesPlatforms(t *testing.T) {
	weighted := false
	for _, g := range Graphs(t) {
		if g.Weighted() {
			weighted = true
		}
	}
	if !weighted {
		t.Fatal("conformance graph matrix contains no weighted graph")
	}
	if len(workload.All()) < 8 {
		t.Fatalf("workload registry has %d entries, want at least the 8 built-ins", len(workload.All()))
	}
}
