package platformtest

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/dataflow"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/mapreduce"
	"graphalytics/internal/platform/pregel"
)

// cancelPlatforms builds the four default engines (no scheduling
// overhead on mapreduce so the test measures kernel responsiveness, not
// sleeps).
func cancelPlatforms() []platform.Platform {
	return []platform.Platform{
		pregel.New(pregel.Options{}),
		mapreduce.New(mapreduce.Options{RoundOverhead: -1, MaxJobs: 1 << 30}),
		dataflow.New(dataflow.Options{}),
		graphdb.New(graphdb.Options{}),
	}
}

// cancelGraph is big enough that a PR cell with an absurd iteration
// count cannot finish before the cancel fires.
func cancelGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	r := rand.New(rand.NewSource(13))
	b := graph.NewBuilder(graph.Directed(false), graph.Dedup(), graph.DropSelfLoops(), graph.WithReverse(), graph.WithName("cancel"))
	const n = 2000
	b.SetNumVertices(n)
	for i := 0; i < 20000; i++ {
		b.AddEdgeIDWeighted(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)), 0.25+r.Float64())
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// TestCancelMidRunAllPlatforms is the regression test for ctx-deaf hot
// loops: a PR cell that would run effectively forever must return a
// context.Canceled error promptly after a mid-run cancellation — on
// every platform, from inside whatever loop it is in when the cancel
// lands.
func TestCancelMidRunAllPlatforms(t *testing.T) {
	g := cancelGraph(t)
	params := algo.Params{Source: 0, Seed: 1, PRIterations: 1 << 30}
	for _, p := range cancelPlatforms() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			loaded, err := p.LoadGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			defer loaded.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := loaded.Run(ctx, algo.PR, params)
				done <- err
			}()
			time.Sleep(25 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				if !errors.Is(err, platform.ErrInterrupted) {
					t.Errorf("err = %v, want it to wrap platform.ErrInterrupted", err)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("Run did not return promptly after mid-run cancel")
			}
		})
	}
}

// TestPreCancelledContextAllPlatforms pins the cheap end of the same
// contract: a dead context stops a cell before (or immediately after)
// it starts, on every platform and on both an iteration-bounded (PR)
// and a traversal (SSSP) workload.
func TestPreCancelledContextAllPlatforms(t *testing.T) {
	g := cancelGraph(t)
	params := algo.Params{Source: 0, Seed: 1}.WithDefaults(g.NumVertices())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range cancelPlatforms() {
		loaded, err := p.LoadGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []algo.Kind{algo.PR, algo.SSSP} {
			if _, err := loaded.Run(ctx, kind, params); !errors.Is(err, context.Canceled) {
				t.Errorf("%s/%s: err = %v, want context.Canceled", p.Name(), kind, err)
			}
		}
		loaded.Close()
	}
}
