package platform

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMemoryTrackerBudget(t *testing.T) {
	tr := NewMemoryTracker("test", 100)
	if err := tr.Alloc(60); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := tr.Alloc(50)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over budget err = %v", err)
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatal("error should be *OOMError")
	}
	if oom.Platform != "test" || oom.Need != 110 || oom.Budget != 100 {
		t.Errorf("oom = %+v", oom)
	}
	if oom.Error() == "" {
		t.Error("empty error string")
	}
}

func TestMemoryTrackerPeakAndFree(t *testing.T) {
	tr := NewMemoryTracker("test", 0) // unlimited
	tr.Alloc(70)
	tr.Alloc(30)
	tr.Free(50)
	if tr.Current() != 50 {
		t.Errorf("current = %d", tr.Current())
	}
	if tr.Peak() != 100 {
		t.Errorf("peak = %d", tr.Peak())
	}
	tr.Reset()
	if tr.Current() != 0 || tr.Peak() != 100 {
		t.Errorf("after reset: current %d peak %d", tr.Current(), tr.Peak())
	}
	if tr.Budget() != 0 {
		t.Errorf("budget = %d", tr.Budget())
	}
}

func TestMemoryTrackerConcurrent(t *testing.T) {
	tr := NewMemoryTracker("test", 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Alloc(3)
				tr.Free(3)
			}
		}()
	}
	wg.Wait()
	if tr.Current() != 0 {
		t.Errorf("current = %d after balanced alloc/free", tr.Current())
	}
	if tr.Peak() < 3 {
		t.Errorf("peak = %d", tr.Peak())
	}
}

func TestCountersMerge(t *testing.T) {
	a := Counters{
		Supersteps: 2, Messages: 10, MessageBytes: 100, NetworkBytes: 40,
		SpilledBytes: 5, PeakMemoryBytes: 1000, EdgesTraversed: 7,
		CacheHits: 3, CacheMisses: 1,
		ActivePerStep: []int64{5, 3},
		WorkerBusy:    []time.Duration{time.Second},
	}
	b := Counters{
		Supersteps: 1, Messages: 5, MessageBytes: 50, NetworkBytes: 10,
		SpilledBytes: 2, PeakMemoryBytes: 2000, EdgesTraversed: 3,
		CacheHits: 1, CacheMisses: 2,
		ActivePerStep: []int64{2},
		WorkerBusy:    []time.Duration{time.Second, 2 * time.Second},
	}
	a.Merge(b)
	if a.Supersteps != 3 || a.Messages != 15 || a.MessageBytes != 150 {
		t.Errorf("sums wrong: %+v", a)
	}
	if a.PeakMemoryBytes != 2000 {
		t.Errorf("peak should take max: %d", a.PeakMemoryBytes)
	}
	if len(a.ActivePerStep) != 3 {
		t.Errorf("ActivePerStep = %v", a.ActivePerStep)
	}
	if len(a.WorkerBusy) != 2 || a.WorkerBusy[0] != 2*time.Second || a.WorkerBusy[1] != 2*time.Second {
		t.Errorf("WorkerBusy = %v", a.WorkerBusy)
	}
	if a.CacheHits != 4 || a.CacheMisses != 3 {
		t.Errorf("cache counters: %+v", a)
	}
}

func TestCheckContext(t *testing.T) {
	if err := CheckContext(context.Background()); err != nil {
		t.Errorf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CheckContext(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context err = %v", err)
	}
}
