// Package platform defines the service-provider interface every
// graph-processing platform implements to join the benchmark — the
// "Platform-specific algorithm implementation" box of the Graphalytics
// architecture (Figure 2). A platform performs ETL once per graph
// (LoadGraph, untimed by the harness, matching §3.3: "does not include
// ETL") and then executes workload algorithms on the loaded graph.
//
// The package also defines the shared counter set through which engines
// expose the §2.1 choke points as measurable quantities: message and
// network volume (excessive network utilization), peak memory (large
// graph memory footprint), and per-superstep activity and per-worker
// busy time (skewed execution intensity).
package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
)

// Platform is one system under test.
type Platform interface {
	// Name identifies the platform in reports ("pregel", "mapreduce",
	// "dataflow", "graphdb").
	Name() string
	// LoadGraph ingests g (the ETL step). It may fail if the graph does
	// not fit the platform's resources (ErrOutOfMemory).
	LoadGraph(g *graph.Graph) (Loaded, error)
}

// ConcurrencyHinter is optionally implemented by platforms whose
// resources bound how many benchmark jobs the harness should run on
// them at once. A memory-budgeted engine returns 1 so its jobs
// serialize (two concurrent loads would double-count against one
// budget) while unconstrained platforms keep the campaign saturated.
type ConcurrencyHinter interface {
	// ConcurrencyLimit returns the maximum number of campaign jobs to
	// run concurrently on this platform (0 = unlimited).
	ConcurrencyLimit() int
}

// ConcurrencyLimitOf returns p's concurrency hint, or 0 (unlimited)
// for platforms that do not implement ConcurrencyHinter.
func ConcurrencyLimitOf(p Platform) int {
	if h, ok := p.(ConcurrencyHinter); ok {
		return h.ConcurrencyLimit()
	}
	return 0
}

// ConfigStamper is optionally implemented by platforms to expose a
// canonical configuration string for content-addressed fingerprints:
// everything that changes results or resource behaviour (worker budget,
// memory budget, engine knobs) and nothing that does not. The
// incremental campaign engine folds it into every cell fingerprint, so
// a stamped result is never reused across a configuration change.
type ConfigStamper interface {
	// StampConfig returns the canonical configuration string.
	StampConfig() string
}

// StampConfigOf returns p's configuration stamp, degrading to the bare
// platform name for platforms that do not implement ConfigStamper
// (wrapped or external platforms): their results then invalidate only
// on name/binary changes, which is conservative but never wrong in the
// unsafe direction as long as the wrapper is deterministic.
func StampConfigOf(p Platform) string {
	if s, ok := p.(ConfigStamper); ok {
		return s.StampConfig()
	}
	return p.Name()
}

// CachedLoader is optionally implemented by platforms whose ETL output
// can be serialized to the artifact cache and restored without
// re-running the transformation. The harness stores the blob under the
// ETL fingerprint (dataset × platform config × ETLVersion × binary) and
// feeds it back through ReadETL on later campaigns.
type CachedLoader interface {
	Platform
	// ETLVersion names the blob encoding; bump it whenever the
	// serialization or the loaded representation changes so stale
	// artifacts miss instead of mis-loading.
	ETLVersion() string
	// WriteETL serializes the platform-resident form of a loaded graph.
	WriteETL(l Loaded, w io.Writer) error
	// ReadETL reconstructs a Loaded from a blob written by WriteETL for
	// the same graph. It must enforce the same resource budgets as
	// LoadGraph (a cached load still counts against memory budgets).
	ReadETL(g *graph.Graph, r io.Reader) (Loaded, error)
}

// Loaded is a graph resident on a platform, ready to run algorithms.
type Loaded interface {
	// Run executes the algorithm and returns its output and counters.
	// Cancellation via ctx must be honored between iterations.
	Run(ctx context.Context, kind algo.Kind, params algo.Params) (*Result, error)
	// Graph returns the loaded graph.
	Graph() *graph.Graph
	// Close releases platform resources.
	Close() error
}

// Result is the outcome of one algorithm execution.
type Result struct {
	// Output is one of algo.StatsOutput, algo.BFSOutput, algo.ConnOutput,
	// algo.CDOutput, or algo.EvoOutput.
	Output any
	// Counters holds the engine-level metrics for the run.
	Counters Counters
}

// Counters is the shared metric set engines populate during a run. All
// fields are engine-maintained totals for one algorithm execution.
type Counters struct {
	// Supersteps / rounds / jobs executed.
	Supersteps int64
	// Messages delivered between vertices (BSP/dataflow) or records
	// shuffled (MapReduce).
	Messages int64
	// MessageBytes approximates the payload volume of Messages.
	MessageBytes int64
	// NetworkBytes is the subset of MessageBytes that crossed a
	// partition boundary — the "excessive network utilization" choke
	// point measure.
	NetworkBytes int64
	// SpilledBytes counts bytes materialized to (simulated) stable
	// storage between rounds (MapReduce, dataflow shuffles).
	SpilledBytes int64
	// PeakMemoryBytes is the engine's own accounting of its maximum
	// live data-structure footprint.
	PeakMemoryBytes int64
	// ActivePerStep records active vertices per superstep — the decay
	// curve behind the "skewed execution intensity" choke point.
	ActivePerStep []int64
	// WorkerBusy records cumulative busy time per worker, whose spread
	// measures load skew.
	WorkerBusy []time.Duration
	// EdgesTraversed counts edge examinations (TEPS numerator for
	// traversal algorithms).
	EdgesTraversed int64
	// CacheHits / CacheMisses report page-cache behaviour for
	// store-backed platforms (the graph database) — the "poor access
	// locality" choke point measure.
	CacheHits   int64
	CacheMisses int64
}

// Merge accumulates other into c.
func (c *Counters) Merge(other Counters) {
	c.Supersteps += other.Supersteps
	c.Messages += other.Messages
	c.MessageBytes += other.MessageBytes
	c.NetworkBytes += other.NetworkBytes
	c.SpilledBytes += other.SpilledBytes
	if other.PeakMemoryBytes > c.PeakMemoryBytes {
		c.PeakMemoryBytes = other.PeakMemoryBytes
	}
	c.ActivePerStep = append(c.ActivePerStep, other.ActivePerStep...)
	c.EdgesTraversed += other.EdgesTraversed
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	if len(other.WorkerBusy) > 0 {
		if len(c.WorkerBusy) < len(other.WorkerBusy) {
			grown := make([]time.Duration, len(other.WorkerBusy))
			copy(grown, c.WorkerBusy)
			c.WorkerBusy = grown
		}
		for i, d := range other.WorkerBusy {
			c.WorkerBusy[i] += d
		}
	}
}

// Failure taxonomy. The harness records which failure produced each
// missing value in the Figure 4 matrix.
var (
	// ErrOutOfMemory reports that the platform exceeded its memory
	// budget (the GraphX/Neo4j failure mode in §3.3).
	ErrOutOfMemory = errors.New("platform: out of memory")
	// ErrUnsupported reports that the platform cannot run the algorithm.
	ErrUnsupported = errors.New("platform: unsupported algorithm")
	// ErrInterrupted marks a kernel stopped mid-phase by context
	// cancellation or deadline. It always wraps the context's own error,
	// so errors.Is against context.Canceled / context.DeadlineExceeded
	// keeps working through it; the harness uses the sentinel to tell
	// "the campaign stopped this cell" apart from "this cell failed".
	ErrInterrupted = errors.New("platform: interrupted")
)

// OOMError wraps ErrOutOfMemory with budget context.
type OOMError struct {
	Platform string
	Need     int64
	Budget   int64
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("%s: out of memory: need %d bytes, budget %d", e.Platform, e.Need, e.Budget)
}

// Unwrap makes errors.Is(err, ErrOutOfMemory) succeed.
func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// MemoryTracker is a small atomic accounting helper engines embed to
// enforce a memory budget and record the peak.
type MemoryTracker struct {
	platform string
	budget   int64
	current  atomic.Int64
	peak     atomic.Int64
}

// NewMemoryTracker returns a tracker with the given budget
// (0 = unlimited).
func NewMemoryTracker(platform string, budget int64) *MemoryTracker {
	return &MemoryTracker{platform: platform, budget: budget}
}

// Alloc records n bytes of live data; it returns an *OOMError when the
// budget would be exceeded (the allocation is still recorded so the
// caller can Free it uniformly).
func (t *MemoryTracker) Alloc(n int64) error {
	cur := t.current.Add(n)
	for {
		peak := t.peak.Load()
		if cur <= peak || t.peak.CompareAndSwap(peak, cur) {
			break
		}
	}
	if t.budget > 0 && cur > t.budget {
		return &OOMError{Platform: t.platform, Need: cur, Budget: t.budget}
	}
	return nil
}

// Free releases n bytes.
func (t *MemoryTracker) Free(n int64) { t.current.Add(-n) }

// Reset zeroes current usage (between runs) while keeping the peak.
func (t *MemoryTracker) Reset() { t.current.Store(0) }

// Peak returns the maximum recorded usage.
func (t *MemoryTracker) Peak() int64 { return t.peak.Load() }

// Current returns the live usage.
func (t *MemoryTracker) Current() int64 { return t.current.Load() }

// Budget returns the configured budget (0 = unlimited).
func (t *MemoryTracker) Budget() int64 { return t.budget }

// CheckStride is the amortization interval for in-loop context checks:
// kernel hot loops probe the context once every CheckStride work units
// (vertices computed, records decoded, frontier pops) so the probe cost
// stays negligible while cancellation latency stays bounded by one
// stride of work.
const CheckStride = 4096

// CheckContext returns ctx.Err() wrapped in ErrInterrupted for uniform
// reporting; engines call it between supersteps/rounds.
func CheckContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, err)
	}
	return nil
}

// CheckContextPhase is CheckContext with the interrupted kernel phase
// recorded in the error ("pregel/compute", "mapreduce/map", ...), so a
// cancelled cell reports where inside the engine it stopped.
func CheckContextPhase(ctx context.Context, phase string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w in %s: %w", ErrInterrupted, phase, err)
	}
	return nil
}
