package columnstore

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"graphalytics/internal/graph"
)

// Profile is the §3.4 measurement set.
type Profile struct {
	// Reachable is the query result: vertices reachable from the source
	// (the source itself is not counted, matching COUNT over spe_to).
	Reachable int64
	// RandomLookups counts outbound-edge lookups (one per expanded
	// vertex) — 2.28e6 in the paper's run.
	RandomLookups int64
	// EdgeEndpointsVisited counts spe_to values scanned — 2.89e8 in the
	// paper's run.
	EdgeEndpointsVisited int64
	// Elapsed is the query wall-clock time.
	Elapsed time.Duration
	// MTEPS = EdgeEndpointsVisited / Elapsed / 1e6 (the paper reports
	// 41.3 MTEPS).
	MTEPS float64
	// CPUUtilization is Σ busy / elapsed × 100 (paper: 1930% of 2400%).
	CPUUtilization float64
	// Cycle shares per operator (paper: 33% hash table, 10% exchange,
	// 57% column access + decompression).
	HashTableShare float64
	ExchangeShare  float64
	ColumnShare    float64
	// Threads is the intra-query parallelism degree.
	Threads int
	// BlockDecodes counts block decompressions.
	BlockDecodes int64
}

// TransitiveCount executes the §3.4 transitive query: count the vertices
// reachable from source. threads <= 0 selects GOMAXPROCS.
//
// Physical plan: the computation state is a partitioned hash table with
// one worker thread per partition. Each iteration, every worker expands
// its partition of the border (random lookups into the compressed
// spe_to column), the exchange operator splits the produced target
// vectors by partition hash, and each worker records the new border in
// its hash-table partition.
func (t *Table) TransitiveCount(source graph.VertexID, threads int) Profile {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	start := time.Now()

	parts := threads
	partOf := func(v graph.VertexID) int {
		return int((uint64(v) * 0x9e3779b97f4a7c15 >> 33) % uint64(parts))
	}

	// Partitioned hash tables (the border state), one per worker.
	tables := make([]*hashSet, parts)
	for p := range tables {
		tables[p] = newHashSet()
	}
	// Current border, partitioned.
	border := make([][]graph.VertexID, parts)
	sp := partOf(source)
	tables[sp].insert(uint32(source))
	border[sp] = append(border[sp], source)

	type workerStats struct {
		column, exchange, hash time.Duration
		lookups, endpoints     int64
		decodes                int64
	}
	stats := make([]workerStats, parts)
	caches := make([]*blockCache, parts)
	for p := range caches {
		caches[p] = newBlockCache()
	}
	sourceReReached := make([]bool, parts)

	var reachable int64
	for {
		empty := true
		for p := range border {
			if len(border[p]) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}

		// Phase 1+2 per worker: expand own border partition (column
		// access), exchange targets into per-partition outboxes.
		outboxes := make([][][]graph.VertexID, parts) // [src][dst] -> vec
		var wg sync.WaitGroup
		for p := 0; p < parts; p++ {
			outboxes[p] = make([][]graph.VertexID, parts)
			if len(border[p]) == 0 {
				continue
			}
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				st := &stats[p]
				cache := caches[p]
				var vec []graph.VertexID
				// Vectored execution: expand the border in vectors.
				for off := 0; off < len(border[p]); off += BlockSize {
					end := off + BlockSize
					if end > len(border[p]) {
						end = len(border[p])
					}
					t0 := time.Now()
					vec = vec[:0]
					for _, v := range border[p][off:end] {
						lo, hi := t.rowRange(v)
						vec = t.scanRows(lo, hi, vec, cache)
						st.lookups++
					}
					st.endpoints += int64(len(vec))
					st.column += time.Since(t0)

					// Exchange: split the target vector by partition hash.
					t1 := time.Now()
					for _, w := range vec {
						d := partOf(w)
						outboxes[p][d] = append(outboxes[p][d], w)
					}
					st.exchange += time.Since(t1)
				}
				st.decodes = cache.decodes
			}(p)
		}
		wg.Wait()

		// Phase 3 per worker: record the new border in the owned hash
		// table partition, then sort it — vectored execution runs over
		// sorted key vectors so the next level's column scans walk blocks
		// sequentially (Virtuoso sorts lookup keys for exactly this).
		next := make([][]graph.VertexID, parts)
		for p := 0; p < parts; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				st := &stats[p]
				t0 := time.Now()
				tab := tables[p]
				for src := 0; src < parts; src++ {
					for _, w := range outboxes[src][p] {
						if w == source {
							sourceReReached[p] = true
						}
						if tab.insert(uint32(w)) {
							next[p] = append(next[p], w)
						}
					}
				}
				sortVertices(next[p])
				st.hash += time.Since(t0)
			}(p)
		}
		wg.Wait()
		border = next
	}

	for p := 0; p < parts; p++ {
		reachable += int64(tables[p].size)
	}
	// COUNT(spe_to) counts distinct reached vertices: the seeded source
	// is subtracted unless some expansion produced it as a target.
	re := false
	for _, f := range sourceReReached {
		re = re || f
	}
	if !re {
		reachable--
	}

	elapsed := time.Since(start)
	pr := Profile{
		Reachable: reachable,
		Elapsed:   elapsed,
		Threads:   threads,
	}
	var busy time.Duration
	for p := range stats {
		pr.RandomLookups += stats[p].lookups
		pr.EdgeEndpointsVisited += stats[p].endpoints
		pr.BlockDecodes += stats[p].decodes
		busy += stats[p].column + stats[p].exchange + stats[p].hash
	}
	if elapsed > 0 {
		pr.MTEPS = float64(pr.EdgeEndpointsVisited) / elapsed.Seconds() / 1e6
		pr.CPUUtilization = float64(busy) / float64(elapsed) * 100
	}
	if busy > 0 {
		var col, exch, hash time.Duration
		for p := range stats {
			col += stats[p].column
			exch += stats[p].exchange
			hash += stats[p].hash
		}
		pr.ColumnShare = float64(col) / float64(busy)
		pr.ExchangeShare = float64(exch) / float64(busy)
		pr.HashTableShare = float64(hash) / float64(busy)
	}
	return pr
}

func sortVertices(vs []graph.VertexID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// hashSet is an open-addressing uint32 set — the "hash table containing
// the border". Probing cost is the 33% the paper attributes to it.
type hashSet struct {
	slots []uint32 // value+1; 0 = empty
	size  int
}

func newHashSet() *hashSet {
	return &hashSet{slots: make([]uint32, 1024)}
}

// insert adds v and reports whether it was absent.
func (h *hashSet) insert(v uint32) bool {
	if h.size*4 >= len(h.slots)*3 {
		h.grow()
	}
	mask := uint32(len(h.slots) - 1)
	slot := (v * 0x9e3779b9) & mask
	for {
		cur := h.slots[slot]
		if cur == 0 {
			h.slots[slot] = v + 1
			h.size++
			return true
		}
		if cur == v+1 {
			return false
		}
		slot = (slot + 1) & mask
	}
}

func (h *hashSet) grow() {
	old := h.slots
	h.slots = make([]uint32, len(old)*2)
	h.size = 0
	for _, cur := range old {
		if cur != 0 {
			h.insert(cur - 1)
		}
	}
}
