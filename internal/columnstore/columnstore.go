// Package columnstore implements the OpenLink Virtuoso analogue used by
// the §3.4 experiment ("BFS on a DBMS"): a column-wise compressed edge
// table (sp_edge with columns spe_from, spe_to), vectored execution, and
// a transitive-traversal operator with intra-query parallelism and
// partitioned aggregation.
//
// The §3.4 physical plan is reproduced exactly:
//
//   - the state of the computation is a partitioned hash table, one
//     thread reading/writing each partition;
//   - an exchange operator sits between the lookup of outbound edges and
//     the recording of the new border, splitting target vectors into
//     per-partition vectors by hash;
//   - column access decompresses blocks of the spe_to column;
//   - the profiler reports the same quantities the paper does: random
//     lookups, edge endpoints visited, MTEPS, CPU utilization, and the
//     share of cycles spent in the hash table / exchange / column
//     access.
package columnstore

import (
	"encoding/binary"
	"fmt"

	"graphalytics/internal/graph"
)

// BlockSize is the vectored-execution block width (values per
// compressed block and per processing vector).
const BlockSize = 1024

// Options configures table construction.
type Options struct {
	// Compress enables delta+varint compression of the spe_to column
	// (on by default via NewTable; the ablation turns it off).
	Compress bool
}

// Table is the sp_edge table: edges sorted by (spe_from, spe_to), the
// spe_to column stored column-wise in compressed blocks, plus a sparse
// row index for random access by spe_from.
type Table struct {
	n        int
	rows     int64
	rowStart []int64 // per spe_from value: first row index

	compressed bool
	blocks     [][]byte // compressed blocks of BlockSize spe_to values
	raw        []graph.VertexID

	name string
}

// NewTable builds the edge table from g with compression enabled.
func NewTable(g *graph.Graph) *Table { return NewTableOpts(g, Options{Compress: true}) }

// NewTableOpts builds the edge table with explicit options.
func NewTableOpts(g *graph.Graph, opts Options) *Table {
	n := g.NumVertices()
	t := &Table{n: n, compressed: opts.Compress, name: g.Name()}
	t.rowStart = make([]int64, n+1)
	var tos []graph.VertexID
	for v := 0; v < n; v++ {
		t.rowStart[v] = int64(len(tos))
		tos = append(tos, g.OutNeighbors(graph.VertexID(v))...)
	}
	t.rowStart[n] = int64(len(tos))
	t.rows = int64(len(tos))

	if !opts.Compress {
		t.raw = tos
		return t
	}
	for off := 0; off < len(tos); off += BlockSize {
		end := off + BlockSize
		if end > len(tos) {
			end = len(tos)
		}
		t.blocks = append(t.blocks, compressBlock(tos[off:end]))
	}
	return t
}

// NumRows returns the edge-table row count.
func (t *Table) NumRows() int64 { return t.rows }

// NumVertices returns the vertex domain size.
func (t *Table) NumVertices() int { return t.n }

// Compressed reports whether the spe_to column is compressed.
func (t *Table) Compressed() bool { return t.compressed }

// ColumnBytes returns the stored size of the spe_to column (the
// compression ablation's memory measure).
func (t *Table) ColumnBytes() int64 {
	if !t.compressed {
		return int64(len(t.raw)) * 4
	}
	var b int64
	for _, blk := range t.blocks {
		b += int64(len(blk))
	}
	return b
}

// compressBlock encodes a block: first value raw uvarint, then zigzag
// varint deltas (spe_to is locally sorted per spe_from group, so deltas
// are small and mostly positive).
func compressBlock(vals []graph.VertexID) []byte {
	buf := make([]byte, 0, len(vals))
	prev := int64(0)
	for i, v := range vals {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(v))
		} else {
			buf = binary.AppendVarint(buf, int64(v)-prev)
		}
		prev = int64(v)
	}
	return buf
}

// decompressBlock decodes block b into out (len BlockSize capacity).
func decompressBlock(blk []byte, out []graph.VertexID) []graph.VertexID {
	first, n := binary.Uvarint(blk)
	blk = blk[n:]
	prev := int64(first)
	out = append(out, graph.VertexID(first))
	for len(blk) > 0 {
		d, n := binary.Varint(blk)
		blk = blk[n:]
		prev += d
		out = append(out, graph.VertexID(prev))
	}
	return out
}

// rowRange returns the [lo, hi) row range of spe_from = v.
func (t *Table) rowRange(v graph.VertexID) (int64, int64) {
	return t.rowStart[v], t.rowStart[v+1]
}

// scanRows appends the spe_to values of rows [lo, hi) to out,
// decompressing the covering blocks through cache (a reusable block
// decode buffer keyed by block id).
func (t *Table) scanRows(lo, hi int64, out []graph.VertexID, cache *blockCache) []graph.VertexID {
	if !t.compressed {
		return append(out, t.raw[lo:hi]...)
	}
	for row := lo; row < hi; {
		blk := int(row / BlockSize)
		vals := cache.get(t, blk)
		start := row % BlockSize
		end := int64(len(vals))
		if blkEnd := (int64(blk) + 1) * BlockSize; hi < blkEnd {
			end = hi - int64(blk)*BlockSize
		}
		out = append(out, vals[start:end]...)
		row = (int64(blk) + 1) * BlockSize
		if row > hi {
			row = hi
		}
	}
	return out
}

// blockCache memoizes the most recently decompressed block per worker
// (vectored execution re-reads neighbors in the same block often).
type blockCache struct {
	id      int
	vals    []graph.VertexID
	decodes int64
}

func newBlockCache() *blockCache { return &blockCache{id: -1} }

func (c *blockCache) get(t *Table, blk int) []graph.VertexID {
	if c.id == blk {
		return c.vals
	}
	c.vals = decompressBlock(t.blocks[blk], c.vals[:0])
	c.id = blk
	c.decodes++
	return c.vals
}

// SQL returns the §3.4 query text this table's TransitiveCount
// implements, for documentation and reports.
func (t *Table) SQL(source graph.VertexID) string {
	return fmt.Sprintf(`select count (*) from (select spe_to from
  (select transitive t_in (1) t_out (2) t_distinct
   spe_from, spe_to from sp_edge) derived_table_1
  where spe_from = %d) derived_table_2;`, source)
}
