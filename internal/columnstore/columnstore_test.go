package columnstore

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
)

func socialGraph(tb testing.TB, n int, seed uint64) *graph.Graph {
	tb.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: n, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func TestBlockCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := make([]graph.VertexID, BlockSize)
	for i := range vals {
		vals[i] = graph.VertexID(r.Intn(1 << 20))
	}
	blk := compressBlock(vals)
	got := decompressBlock(blk, nil)
	if len(got) != len(vals) {
		t.Fatalf("len %d != %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d != %d", i, got[i], vals[i])
		}
	}
}

func TestQuickBlockCodec(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 || len(raw) > BlockSize {
			return true
		}
		vals := make([]graph.VertexID, len(raw))
		for i, v := range raw {
			vals[i] = graph.VertexID(v)
		}
		got := decompressBlock(compressBlock(vals), nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableScanMatchesCSR(t *testing.T) {
	g := socialGraph(t, 1000, 1)
	for _, compress := range []bool{true, false} {
		tab := NewTableOpts(g, Options{Compress: compress})
		if tab.NumRows() != g.NumArcs() {
			t.Fatalf("rows = %d, want %d", tab.NumRows(), g.NumArcs())
		}
		cache := newBlockCache()
		for v := 0; v < g.NumVertices(); v++ {
			lo, hi := tab.rowRange(graph.VertexID(v))
			got := tab.scanRows(lo, hi, nil, cache)
			want := g.OutNeighbors(graph.VertexID(v))
			if len(got) != len(want) {
				t.Fatalf("compress=%v vertex %d: %d rows, want %d", compress, v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("compress=%v vertex %d row %d: %d != %d", compress, v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCompressionShrinksColumn(t *testing.T) {
	g := socialGraph(t, 3000, 2)
	comp := NewTableOpts(g, Options{Compress: true})
	raw := NewTableOpts(g, Options{Compress: false})
	if comp.ColumnBytes() >= raw.ColumnBytes() {
		t.Errorf("compressed %d bytes !< raw %d bytes", comp.ColumnBytes(), raw.ColumnBytes())
	}
}

func TestTransitiveCountMatchesBFS(t *testing.T) {
	g := socialGraph(t, 2000, 3)
	tab := NewTable(g)
	for _, src := range []graph.VertexID{0, 420 % graph.VertexID(g.NumVertices()), 7} {
		depths := algo.RunBFS(g, src)
		var want int64
		for v, d := range depths {
			if d >= 0 && graph.VertexID(v) != src {
				want++
			}
		}
		// Undirected graph: src is re-reached via its own neighbors, so
		// COUNT includes it when it has any edge.
		if g.OutDegree(src) > 0 {
			want++
		}
		pr := tab.TransitiveCount(src, 4)
		if pr.Reachable != want {
			t.Errorf("source %d: reachable = %d, want %d", src, pr.Reachable, want)
		}
	}
}

func TestTransitiveCountDirectedChain(t *testing.T) {
	b := graph.NewBuilder(graph.Directed(true), graph.WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 2)
	b.AddEdgeID(2, 3)
	b.AddEdgeID(4, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(g)
	pr := tab.TransitiveCount(0, 2)
	if pr.Reachable != 3 { // 1, 2, 3 (not 4; source not re-reached)
		t.Errorf("reachable = %d, want 3", pr.Reachable)
	}
	pr = tab.TransitiveCount(3, 2)
	if pr.Reachable != 0 {
		t.Errorf("sink reachable = %d, want 0", pr.Reachable)
	}
}

func TestTransitiveCountCycleCountsSource(t *testing.T) {
	b := graph.NewBuilder(graph.Directed(true), graph.WithReverse())
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(g)
	pr := tab.TransitiveCount(0, 2)
	if pr.Reachable != 2 { // 1 and 0 itself (re-reached via the cycle)
		t.Errorf("reachable = %d, want 2", pr.Reachable)
	}
}

func TestProfileQuantities(t *testing.T) {
	g := socialGraph(t, 3000, 4)
	tab := NewTable(g)
	pr := tab.TransitiveCount(0, 4)
	if pr.RandomLookups == 0 {
		t.Error("random lookups not counted")
	}
	if pr.EdgeEndpointsVisited < pr.RandomLookups {
		t.Error("endpoints must be >= lookups on a connected social graph")
	}
	if pr.MTEPS <= 0 {
		t.Errorf("MTEPS = %v", pr.MTEPS)
	}
	shares := pr.HashTableShare + pr.ExchangeShare + pr.ColumnShare
	if shares < 0.99 || shares > 1.01 {
		t.Errorf("operator shares sum to %v, want 1", shares)
	}
	if pr.Threads != 4 {
		t.Errorf("threads = %d", pr.Threads)
	}
	if pr.BlockDecodes == 0 {
		t.Error("block decodes not counted")
	}
}

func TestDeterministicResultAcrossThreads(t *testing.T) {
	g := socialGraph(t, 1500, 5)
	tab := NewTable(g)
	r1 := tab.TransitiveCount(0, 1).Reachable
	r8 := tab.TransitiveCount(0, 8).Reachable
	if r1 != r8 {
		t.Errorf("thread count changed result: %d vs %d", r1, r8)
	}
}

func TestSQLRendering(t *testing.T) {
	g := socialGraph(t, 100, 6)
	tab := NewTable(g)
	sql := tab.SQL(420)
	if !strings.Contains(sql, "transitive t_in (1) t_out (2) t_distinct") {
		t.Errorf("SQL missing transitive modifier: %s", sql)
	}
	if !strings.Contains(sql, "spe_from = 420") {
		t.Errorf("SQL missing source binding: %s", sql)
	}
}

func TestHashSet(t *testing.T) {
	h := newHashSet()
	for i := uint32(0); i < 10000; i++ {
		if !h.insert(i * 7) {
			t.Fatalf("fresh insert %d reported duplicate", i)
		}
	}
	for i := uint32(0); i < 10000; i++ {
		if h.insert(i * 7) {
			t.Fatalf("duplicate insert %d reported fresh", i)
		}
	}
	if h.size != 10000 {
		t.Fatalf("size = %d", h.size)
	}
}
