// Package rdf implements the RDF-database support the paper announces
// (§1: "we plan to support databases for RDF semantic web data and are
// working on implementing support for OpenLink Virtuoso, a popular RDF
// database"): a dictionary-encoded triple store with SPO/POS/OSP
// indexes, basic-graph-pattern (SPARQL BGP) matching, and the
// transitive property path that expresses the §3.4 reachability query
// in RDF terms:
//
//	SELECT (COUNT(DISTINCT ?x) AS ?c) WHERE { person:420 knows+ ?x }
//
// Graph workloads map onto the store via FromGraph, which encodes the
// person-knows-person graph as <person:i> knows <person:j> triples.
package rdf

import (
	"fmt"
	"sort"

	"graphalytics/internal/graph"
)

// TermID is a dictionary-encoded RDF term.
type TermID uint32

// Triple is one (subject, predicate, object) statement.
type Triple struct {
	S, P, O TermID
}

// Store is an immutable triple store with three access paths.
type Store struct {
	dict  map[string]TermID
	terms []string

	spo []Triple // sorted by (S, P, O)
	pos []Triple // sorted by (P, O, S)
	pso []Triple // sorted by (P, S, O)
}

// NewStore returns an empty store builder-style value; add triples with
// Add and call Freeze before querying.
func NewStore() *Store {
	return &Store{dict: map[string]TermID{}}
}

// Term interns a term string and returns its ID.
func (s *Store) Term(t string) TermID {
	if id, ok := s.dict[t]; ok {
		return id
	}
	id := TermID(len(s.terms))
	s.dict[t] = id
	s.terms = append(s.terms, t)
	return id
}

// Lookup returns the ID of t if it is known.
func (s *Store) Lookup(t string) (TermID, bool) {
	id, ok := s.dict[t]
	return id, ok
}

// TermString returns the string of a term ID.
func (s *Store) TermString(id TermID) string { return s.terms[id] }

// Add appends a triple (strings are interned).
func (s *Store) Add(subject, predicate, object string) {
	s.spo = append(s.spo, Triple{S: s.Term(subject), P: s.Term(predicate), O: s.Term(object)})
}

// AddTriple appends an already-encoded triple.
func (s *Store) AddTriple(t Triple) { s.spo = append(s.spo, t) }

// NumTriples returns the statement count (after Freeze, deduplicated).
func (s *Store) NumTriples() int { return len(s.spo) }

// Freeze sorts and deduplicates the indexes; queries require it.
func (s *Store) Freeze() {
	sortTriples(s.spo, cmpSPO)
	s.spo = dedup(s.spo)
	s.pos = append([]Triple(nil), s.spo...)
	sortTriples(s.pos, cmpPOS)
	s.pso = append([]Triple(nil), s.spo...)
	sortTriples(s.pso, cmpPSO)
}

func sortTriples(ts []Triple, less func(a, b Triple) bool) {
	sort.Slice(ts, func(i, j int) bool { return less(ts[i], ts[j]) })
}

func cmpSPO(a, b Triple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func cmpPOS(a, b Triple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

func cmpPSO(a, b Triple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.O < b.O
}

func dedup(ts []Triple) []Triple {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// FromGraph encodes g as RDF: one `knows` triple per arc, plus an
// rdf:type triple per vertex. Vertex v becomes IRI "person:<label>".
func FromGraph(g *graph.Graph) *Store {
	s := NewStore()
	knows := s.Term("knows")
	person := s.Term("Person")
	typ := s.Term("rdf:type")
	ids := make([]TermID, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		ids[v] = s.Term(fmt.Sprintf("person:%d", g.Label(graph.VertexID(v))))
		s.AddTriple(Triple{S: ids[v], P: typ, O: person})
	}
	g.Arcs(func(u, v graph.VertexID) {
		s.AddTriple(Triple{S: ids[u], P: knows, O: ids[v]})
	})
	s.Freeze()
	return s
}

// ---------------------------------------------------------------------
// Pattern matching.

// Wildcard marks an unbound position in a triple pattern.
const Wildcard = TermID(^uint32(0))

// Pattern is a triple pattern: fixed TermIDs or Wildcard per position.
type Pattern struct {
	S, P, O TermID
}

// Match streams all triples matching p to fn (return false to stop).
// The best index for the bound positions is chosen automatically.
func (s *Store) Match(p Pattern, fn func(Triple) bool) {
	switch {
	case p.S != Wildcard:
		// SPO index: range scan on S (and P if bound).
		lo := sort.Search(len(s.spo), func(i int) bool {
			t := s.spo[i]
			if t.S != p.S {
				return t.S >= p.S
			}
			if p.P == Wildcard {
				return true
			}
			return t.P >= p.P
		})
		for i := lo; i < len(s.spo); i++ {
			t := s.spo[i]
			if t.S != p.S || (p.P != Wildcard && t.P != p.P) {
				break
			}
			if p.O != Wildcard && t.O != p.O {
				continue
			}
			if !fn(t) {
				return
			}
		}
	case p.P != Wildcard && p.O != Wildcard:
		// POS index: range scan on (P, O).
		lo := sort.Search(len(s.pos), func(i int) bool {
			t := s.pos[i]
			if t.P != p.P {
				return t.P >= p.P
			}
			return t.O >= p.O
		})
		for i := lo; i < len(s.pos); i++ {
			t := s.pos[i]
			if t.P != p.P || t.O != p.O {
				break
			}
			if !fn(t) {
				return
			}
		}
	case p.P != Wildcard:
		// PSO index: range scan on P.
		lo := sort.Search(len(s.pso), func(i int) bool { return s.pso[i].P >= p.P })
		for i := lo; i < len(s.pso); i++ {
			t := s.pso[i]
			if t.P != p.P {
				break
			}
			if !fn(t) {
				return
			}
		}
	default:
		for _, t := range s.spo {
			if p.O != Wildcard && t.O != p.O {
				continue
			}
			if !fn(t) {
				return
			}
		}
	}
}

// Var names a query variable ("?x").
type Var string

// Atom is one position of a BGP pattern: either a bound term or a
// variable.
type Atom struct {
	Term  TermID
	Var   Var
	IsVar bool
}

// Bound returns a constant atom.
func Bound(t TermID) Atom { return Atom{Term: t} }

// V returns a variable atom.
func V(name Var) Atom { return Atom{Var: name, IsVar: true} }

// BGPPattern is one pattern of a basic graph pattern.
type BGPPattern struct {
	S, P, O Atom
}

// Binding maps variables to terms.
type Binding map[Var]TermID

// Query evaluates a basic graph pattern (conjunction of patterns) by
// index-backed nested-loop joins and returns all solution bindings.
func (s *Store) Query(patterns []BGPPattern) []Binding {
	solutions := []Binding{{}}
	for _, pat := range patterns {
		var next []Binding
		for _, b := range solutions {
			concrete := Pattern{
				S: resolveAtom(pat.S, b),
				P: resolveAtom(pat.P, b),
				O: resolveAtom(pat.O, b),
			}
			s.Match(concrete, func(t Triple) bool {
				nb := extend(b, pat, t)
				if nb != nil {
					next = append(next, nb)
				}
				return true
			})
		}
		solutions = next
		if len(solutions) == 0 {
			break
		}
	}
	return solutions
}

func resolveAtom(a Atom, b Binding) TermID {
	if !a.IsVar {
		return a.Term
	}
	if t, ok := b[a.Var]; ok {
		return t
	}
	return Wildcard
}

// extend merges t into b under pattern pat, or returns nil on conflict.
func extend(b Binding, pat BGPPattern, t Triple) Binding {
	nb := make(Binding, len(b)+3)
	for k, v := range b {
		nb[k] = v
	}
	assign := func(a Atom, term TermID) bool {
		if !a.IsVar {
			return a.Term == term
		}
		if old, ok := nb[a.Var]; ok {
			return old == term
		}
		nb[a.Var] = term
		return true
	}
	if !assign(pat.S, t.S) || !assign(pat.P, t.P) || !assign(pat.O, t.O) {
		return nil
	}
	return nb
}

// TransitiveCount evaluates the property path `start pred+ ?x` and
// returns the number of distinct reachable objects — the SPARQL form of
// the §3.4 transitive query. BFS over the SPO index.
func (s *Store) TransitiveCount(start, pred TermID) int64 {
	visited := map[TermID]bool{}
	frontier := []TermID{start}
	for len(frontier) > 0 {
		var next []TermID
		for _, cur := range frontier {
			s.Match(Pattern{S: cur, P: pred, O: Wildcard}, func(t Triple) bool {
				if !visited[t.O] {
					visited[t.O] = true
					next = append(next, t.O)
				}
				return true
			})
		}
		frontier = next
	}
	return int64(len(visited))
}
