package rdf

import (
	"fmt"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
)

func smallStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	s.Add("alice", "knows", "bob")
	s.Add("bob", "knows", "carol")
	s.Add("alice", "knows", "carol")
	s.Add("carol", "knows", "dave")
	s.Add("alice", "rdf:type", "Person")
	s.Add("bob", "rdf:type", "Person")
	s.Add("alice", "knows", "bob") // duplicate: must be removed
	s.Freeze()
	return s
}

func TestFreezeDedups(t *testing.T) {
	s := smallStore(t)
	if s.NumTriples() != 6 {
		t.Errorf("triples = %d, want 6 after dedup", s.NumTriples())
	}
}

func TestMatchBySubject(t *testing.T) {
	s := smallStore(t)
	alice, _ := s.Lookup("alice")
	knows, _ := s.Lookup("knows")
	var objs []string
	s.Match(Pattern{S: alice, P: knows, O: Wildcard}, func(tr Triple) bool {
		objs = append(objs, s.TermString(tr.O))
		return true
	})
	if len(objs) != 2 {
		t.Fatalf("alice knows %v, want 2 entries", objs)
	}
}

func TestMatchByPredicateObject(t *testing.T) {
	s := smallStore(t)
	knows, _ := s.Lookup("knows")
	carol, _ := s.Lookup("carol")
	var subs []string
	s.Match(Pattern{S: Wildcard, P: knows, O: carol}, func(tr Triple) bool {
		subs = append(subs, s.TermString(tr.S))
		return true
	})
	if len(subs) != 2 { // alice and bob know carol
		t.Fatalf("who knows carol = %v", subs)
	}
}

func TestMatchEarlyStop(t *testing.T) {
	s := smallStore(t)
	knows, _ := s.Lookup("knows")
	count := 0
	s.Match(Pattern{S: Wildcard, P: knows, O: Wildcard}, func(Triple) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBGPJoin(t *testing.T) {
	s := smallStore(t)
	knows, _ := s.Lookup("knows")
	// Friend-of-friend: ?x knows ?y . ?y knows ?z
	sols := s.Query([]BGPPattern{
		{S: V("x"), P: Bound(knows), O: V("y")},
		{S: V("y"), P: Bound(knows), O: V("z")},
	})
	// Chains: alice->bob->carol, alice->carol->dave, bob->carol->dave.
	if len(sols) != 3 {
		t.Fatalf("solutions = %d: %v", len(sols), sols)
	}
	seen := map[string]bool{}
	for _, b := range sols {
		seen[s.TermString(b["x"])+">"+s.TermString(b["z"])] = true
	}
	for _, want := range []string{"alice>carol", "alice>dave", "bob>dave"} {
		if !seen[want] {
			t.Errorf("missing chain %s in %v", want, seen)
		}
	}
}

func TestBGPWithTypeConstraint(t *testing.T) {
	s := smallStore(t)
	knows, _ := s.Lookup("knows")
	typ, _ := s.Lookup("rdf:type")
	person, _ := s.Lookup("Person")
	// ?x knows ?y . ?y rdf:type Person  — only bob is a typed target.
	sols := s.Query([]BGPPattern{
		{S: V("x"), P: Bound(knows), O: V("y")},
		{S: V("y"), P: Bound(typ), O: Bound(person)},
	})
	if len(sols) != 1 || s.TermString(sols[0]["y"]) != "bob" {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestBGPSharedVariableConflict(t *testing.T) {
	s := smallStore(t)
	knows, _ := s.Lookup("knows")
	// ?x knows ?x — nobody knows themselves here.
	sols := s.Query([]BGPPattern{{S: V("x"), P: Bound(knows), O: V("x")}})
	if len(sols) != 0 {
		t.Fatalf("self-knows solutions = %v", sols)
	}
}

func TestTransitiveCountChain(t *testing.T) {
	s := smallStore(t)
	alice, _ := s.Lookup("alice")
	dave, _ := s.Lookup("dave")
	knows, _ := s.Lookup("knows")
	if got := s.TransitiveCount(alice, knows); got != 3 { // bob, carol, dave
		t.Errorf("alice knows+ = %d, want 3", got)
	}
	if got := s.TransitiveCount(dave, knows); got != 0 {
		t.Errorf("dave knows+ = %d, want 0", got)
	}
}

func TestFromGraphAgainstBFSReference(t *testing.T) {
	// The SPARQL property-path count must equal the BFS reachability
	// count on the same graph — RDF store and graph engines agree.
	g, err := datagen.Generate(datagen.Config{Persons: 800, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s := FromGraph(g)
	knows, ok := s.Lookup("knows")
	if !ok {
		t.Fatal("knows predicate missing")
	}
	for _, src := range []graph.VertexID{0, 42, 420} {
		start, ok := s.Lookup(fmt.Sprintf("person:%d", g.Label(src)))
		if !ok {
			t.Fatalf("person:%d missing", src)
		}
		depths := algo.RunBFS(g, src)
		var want int64
		for v, d := range depths {
			if graph.VertexID(v) == src {
				continue
			}
			if d >= 0 {
				want++
			}
		}
		// Undirected graph: src re-reached through any neighbor.
		if g.OutDegree(src) > 0 {
			want++
		}
		if got := s.TransitiveCount(start, knows); got != want {
			t.Errorf("source %d: knows+ = %d, BFS says %d", src, got, want)
		}
	}
}

func TestFromGraphTripleCount(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 300, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	s := FromGraph(g)
	want := int(g.NumArcs()) + g.NumVertices() // knows + rdf:type
	if s.NumTriples() != want {
		t.Errorf("triples = %d, want %d", s.NumTriples(), want)
	}
}

func TestQueryOnGeneratedGraph(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 400, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	s := FromGraph(g)
	knows, _ := s.Lookup("knows")
	// Triangle query: ?a knows ?b . ?b knows ?c . ?c knows ?a
	sols := s.Query([]BGPPattern{
		{S: V("a"), P: Bound(knows), O: V("b")},
		{S: V("b"), P: Bound(knows), O: V("c")},
		{S: V("c"), P: Bound(knows), O: V("a")},
	})
	// Every triangle appears 6 times (3 rotations × 2 orientations on a
	// symmetrized graph)... each solution is an ordered closed walk; the
	// count must be divisible by 3 (rotations) and nonzero on a social
	// graph with clustering.
	if len(sols) == 0 {
		t.Fatal("no triangles found on a clustered social graph")
	}
	if len(sols)%3 != 0 {
		t.Errorf("triangle walk count %d not divisible by 3", len(sols))
	}
}
