package telemetry

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestSetupLoggingJSON(t *testing.T) {
	var buf strings.Builder
	if err := SetupLogging(&buf, "json", "debug"); err != nil {
		t.Fatal(err)
	}
	slog.Debug("hello", "campaign", "c1", "cell", "pregel/g/BFS")
	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "hello" || rec["cell"] != "pregel/g/BFS" {
		t.Fatalf("record: %v", rec)
	}
}

func TestSetupLoggingTextAndLevels(t *testing.T) {
	var buf strings.Builder
	if err := SetupLogging(&buf, "text", "warn"); err != nil {
		t.Fatal(err)
	}
	slog.Info("suppressed")
	slog.Warn("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Fatalf("info not filtered at warn level:\n%s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "k=v") {
		t.Fatalf("warn line missing:\n%s", out)
	}
}

func TestSetupLoggingRejectsUnknown(t *testing.T) {
	if err := SetupLogging(nil, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := SetupLogging(nil, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}
