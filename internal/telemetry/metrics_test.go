package telemetry

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs executed")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total", "") != c {
		t.Fatal("Counter is not idempotent per name")
	}

	g := r.Gauge("rss_bytes", "resident set size")
	g.Set(123.5)
	if got := g.Value(); got != 123.5 {
		t.Fatalf("gauge = %v", got)
	}

	h := r.Histogram("phase_seconds", "phase durations", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{1, 2, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 56.05 {
		t.Fatalf("count/sum = %d/%v", s.Count, s.Sum)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(2)
	r.Histogram("c", "", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s.Counters["a_total"] != 3 || s.Gauges["b"] != 2 || s.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sched_jobs_total", "jobs executed").Add(7)
	r.Gauge("monitor_rss_bytes", "resident set").Set(1024)
	h := r.Histogram("cell_seconds", "cell runtimes", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sched_jobs_total counter",
		"sched_jobs_total 7",
		"# TYPE monitor_rss_bytes gauge",
		"monitor_rss_bytes 1024",
		"# TYPE cell_seconds histogram",
		`cell_seconds_bucket{le="0.1"} 1`,
		`cell_seconds_bucket{le="1"} 2`,
		`cell_seconds_bucket{le="+Inf"} 3`,
		"cell_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Served over HTTP with the right content type.
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n", "").Inc()
				r.Gauge("g", "").Set(float64(j))
				r.Histogram("h", "", DurationBuckets).Observe(float64(j) / 100)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", "", nil).snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
