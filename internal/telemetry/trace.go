// Package telemetry is the observability spine of the harness: a
// process-wide tracer plus a metrics registry that every layer reports
// into. The tracer records cheap monotonic-clock spans and emits them
// as Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto), one complete "X" event per span; the registry holds
// counters, gauges, and histograms with a snapshot API and a Prometheus
// text exposition. Both are nil-safe and disabled by default: with no
// sink installed a span is a single atomic load, so instrumented hot
// paths cost nothing in normal runs.
//
// The LDBC Graphalytics specification calls this layer fine-grained
// performance analysis (its Granula integration); "SoK: The Faults in
// our Graph Benchmarks" faults suites that report one mean runtime with
// no phase breakdown or resource envelope. Spans give the phase
// breakdown (scheduler queue-wait vs execute, per-cell load / warmup /
// timed-rep / validate, ingest pipeline stages, engine supersteps);
// the metrics registry gives the envelope.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer writes spans as Chrome trace_event JSON. The zero Tracer is
// valid and disabled; Start installs a sink and enables it.
type Tracer struct {
	enabled atomic.Bool

	mu     sync.Mutex
	w      io.Writer
	base   time.Time // monotonic zero of the trace
	wrote  bool      // whether any event line was written yet
	closed bool
	err    error // first write error (sticky; disables further writes)
}

// Start enables the tracer, writing Chrome trace events to w. Events
// are streamed as they complete; Stop finishes the JSON array. Starting
// an already-started tracer replaces the sink.
func (t *Tracer) Start(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w = w
	t.base = time.Now()
	t.wrote = false
	t.closed = false
	t.err = nil
	if _, err := io.WriteString(w, "[\n"); err != nil {
		t.err = err
		return
	}
	t.enabled.Store(true)
}

// Stop disables the tracer and terminates the JSON array. It returns
// the first write error encountered, if any. Stop is idempotent.
func (t *Tracer) Stop() error {
	t.enabled.Store(false)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.w == nil {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		if _, err := io.WriteString(t.w, "\n]\n"); err != nil {
			t.err = err
		}
	}
	return t.err
}

// Enabled reports whether spans are currently being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Span is one traced operation. A nil *Span (tracer disabled) is valid:
// every method is a no-op, so call sites never branch on tracing.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	tid   int
	start time.Time
	attrs []attr
}

type attr struct {
	key string
	val any
}

// StartSpan opens a span in category cat. The span lanes under tid 0;
// use StartSpanT to place it in a specific lane (trace viewers render
// one row per tid).
func (t *Tracer) StartSpan(cat, name string) *Span { return t.StartSpanT(cat, name, 0) }

// StartSpanT opens a span in category cat on lane tid.
func (t *Tracer) StartSpanT(cat, name string, tid int) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Span{t: t, cat: cat, name: name, tid: tid, start: time.Now()}
}

// SetAttr attaches a key/value argument to the span (rendered in the
// viewer's args pane). Values must be JSON-encodable primitives.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attr{key: key, val: val})
}

// End completes the span and emits it as one complete ("X") trace
// event. Spans that started while the tracer was enabled still emit
// after Stop began only if the sink is open; late Ends after Stop are
// dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.t.emit(s, end)
}

// emit writes one complete event. ts/dur are microseconds, the
// trace_event clock domain.
func (t *Tracer) emit(s *Span, end time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil || t.w == nil {
		return
	}
	ts := s.start.Sub(t.base)
	if ts < 0 {
		ts = 0
	}
	dur := end.Sub(s.start)
	if dur < 0 {
		dur = 0
	}
	line := fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f`,
		jsonString(s.name), jsonString(s.cat), s.tid,
		float64(ts.Nanoseconds())/1e3, float64(dur.Nanoseconds())/1e3)
	if len(s.attrs) > 0 {
		line += `,"args":{`
		for i, a := range s.attrs {
			if i > 0 {
				line += ","
			}
			line += jsonString(a.key) + ":" + jsonValue(a.val)
		}
		line += "}"
	}
	line += "}"
	prefix := ""
	if t.wrote {
		prefix = ",\n"
	}
	if _, err := io.WriteString(t.w, prefix+line); err != nil {
		t.err = err
		return
	}
	t.wrote = true
}

// jsonString encodes s as a JSON string without allocation-heavy
// marshalling for the common no-escape case.
func jsonString(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' || c < 0x20 {
			return jsonStringSlow(s)
		}
	}
	return `"` + s + `"`
}

func jsonStringSlow(s string) string {
	out := make([]byte, 0, len(s)+8)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			out = append(out, '\\', '"')
		case c == '\\':
			out = append(out, '\\', '\\')
		case c < 0x20:
			out = append(out, fmt.Sprintf(`\u%04x`, c)...)
		default:
			out = append(out, c)
		}
	}
	return string(append(out, '"'))
}

func jsonValue(v any) string {
	switch x := v.(type) {
	case string:
		return jsonString(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int:
		return fmt.Sprintf("%d", x)
	case int64:
		return fmt.Sprintf("%d", x)
	case uint64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	case time.Duration:
		return fmt.Sprintf("%d", x.Microseconds())
	default:
		return jsonString(fmt.Sprint(x))
	}
}

// ---------------------------------------------------------------------
// Process-wide defaults.

// defaultTracer is the process-wide tracer every instrumented layer
// reports into. Disabled until StartTrace installs a sink.
var defaultTracer Tracer

// StartTrace enables the process-wide tracer on w.
func StartTrace(w io.Writer) { defaultTracer.Start(w) }

// StopTrace disables the process-wide tracer and finishes the JSON
// array, returning the first sink write error.
func StopTrace() error { return defaultTracer.Stop() }

// TraceEnabled reports whether the process-wide tracer is recording.
func TraceEnabled() bool { return defaultTracer.Enabled() }

// StartSpan opens a span on the process-wide tracer (nil when tracing
// is disabled — all Span methods are nil-safe).
func StartSpan(cat, name string) *Span { return defaultTracer.StartSpan(cat, name) }

// StartSpanT opens a span on the process-wide tracer in lane tid.
func StartSpanT(cat, name string, tid int) *Span { return defaultTracer.StartSpanT(cat, name, tid) }

// sortedKeys returns m's keys sorted (shared by the metrics renderers).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
