package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// traceEvent mirrors the Chrome trace_event fields the sink emits.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func parseTrace(t *testing.T, data []byte) []traceEvent {
	t.Helper()
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	return events
}

func TestTracerEmitsCompleteEvents(t *testing.T) {
	var buf bytes.Buffer
	var tr Tracer
	tr.Start(&buf)

	s := tr.StartSpanT("sched", "job:load/pregel/g1", 3)
	s.SetAttr("attempt", 1)
	s.SetAttr("queue_wait_us", time.Millisecond)
	s.SetAttr("note", `quote " and \ back`)
	time.Sleep(time.Millisecond)
	s.End()
	tr.StartSpan("cell", "rep").End()
	if err := tr.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	events := parseTrace(t, buf.Bytes())
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	e := events[0]
	if e.Ph != "X" || e.Cat != "sched" || e.Name != "job:load/pregel/g1" || e.Tid != 3 {
		t.Fatalf("bad event: %+v", e)
	}
	if e.Dur < 900 { // slept 1ms = 1000us
		t.Fatalf("dur %v too short for a 1ms span", e.Dur)
	}
	if e.Args["attempt"] != float64(1) {
		t.Fatalf("args = %v", e.Args)
	}
	if e.Args["note"] != `quote " and \ back` {
		t.Fatalf("escaped attr round-trip failed: %q", e.Args["note"])
	}
}

func TestTracerDisabledIsNilSafe(t *testing.T) {
	var tr Tracer
	s := tr.StartSpan("x", "y")
	if s != nil {
		t.Fatal("disabled tracer must return nil spans")
	}
	s.SetAttr("k", "v") // must not panic
	s.End()

	// The process-wide default is disabled in tests too.
	sp := StartSpan("a", "b")
	if sp != nil {
		t.Fatal("default tracer should be disabled")
	}
	sp.End()
}

func TestTracerStopIdempotentAndOrdered(t *testing.T) {
	var buf bytes.Buffer
	var tr Tracer
	tr.Start(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tr.StartSpanT("load", "chunk", i).End()
			}
		}(i)
	}
	wg.Wait()
	if err := tr.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := tr.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if tr.StartSpan("late", "late") != nil {
		t.Fatal("span after Stop should be nil")
	}

	events := parseTrace(t, buf.Bytes())
	if len(events) != 160 {
		t.Fatalf("got %d events, want 160", len(events))
	}
	// Events are written at span End under one mutex, so file order is
	// completion order: end timestamps (ts+dur) never decrease.
	last := -1.0
	for _, e := range events {
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("negative ts/dur: %+v", e)
		}
		if end := e.Ts + e.Dur; end < last-0.002 { // float /1e3 rounding slack
			t.Fatalf("end time went backwards: %v after %v", end, last)
		} else if end > last {
			last = end
		}
	}
}

func TestTracerRestart(t *testing.T) {
	var first, second bytes.Buffer
	var tr Tracer
	tr.Start(&first)
	tr.StartSpan("a", "one").End()
	if err := tr.Stop(); err != nil {
		t.Fatal(err)
	}
	tr.Start(&second)
	tr.StartSpan("a", "two").End()
	if err := tr.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := parseTrace(t, first.Bytes()); len(got) != 1 || got[0].Name != "one" {
		t.Fatalf("first trace: %+v", got)
	}
	if got := parseTrace(t, second.Bytes()); len(got) != 1 || got[0].Name != "two" {
		t.Fatalf("second trace: %+v", got)
	}
}

func TestJSONStringEscaping(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", `"plain"`},
		{`a"b`, `"a\"b"`},
		{`a\b`, `"a\\b"`},
		{"a\nb", `"a\u000ab"`},
	} {
		if got := jsonString(tc.in); got != tc.want {
			t.Errorf("jsonString(%q) = %s, want %s", tc.in, got, tc.want)
		}
		var back string
		if err := json.Unmarshal([]byte(jsonString(tc.in)), &back); err != nil || back != tc.in {
			t.Errorf("round trip %q failed: %v %q", tc.in, err, back)
		}
	}
}

func TestTraceContainsNoTrailingComma(t *testing.T) {
	var buf bytes.Buffer
	var tr Tracer
	tr.Start(&buf)
	tr.StartSpan("a", "b").End()
	tr.Stop()
	s := buf.String()
	if strings.Contains(s, ",\n]") {
		t.Fatalf("trailing comma before ]:\n%s", s)
	}
}
