package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// logLevel is the process-wide minimum level; SetupLogging installs it
// so verbosity can change without rebuilding handlers.
var logLevel = new(slog.LevelVar)

// SetupLogging installs the process-wide slog default handler writing
// to w (nil = stderr). format is "text" or "json"; level is one of
// debug/info/warn/error. Long campaigns log one structured line per
// event with stable keys (job, platform, graph, algorithm, …), so both
// grep and jq work on the same stream.
func SetupLogging(w io.Writer, format, level string) error {
	if w == nil {
		w = os.Stderr
	}
	switch strings.ToLower(level) {
	case "", "info":
		logLevel.Set(slog.LevelInfo)
	case "debug":
		logLevel.Set(slog.LevelDebug)
	case "warn", "warning":
		logLevel.Set(slog.LevelWarn)
	case "error":
		logLevel.Set(slog.LevelError)
	default:
		return fmt.Errorf("telemetry: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: logLevel}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return fmt.Errorf("telemetry: unknown log format %q (text|json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}
