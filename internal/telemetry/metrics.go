package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Metric constructors are idempotent:
// asking for an existing name returns the same instrument, so packages
// can declare their metrics independently without wiring.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Metrics is the process-wide registry every layer reports into.
var Metrics = NewRegistry()

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: each bucket counts observations ≤ its upper bound).
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	mu     sync.Mutex
	counts []uint64 // len(bounds)+1
	sum    float64
	n      uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // per-bucket (not cumulative); last is +Inf
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: h.bounds,
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given sorted bucket upper bounds. Bounds are fixed at first creation.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// DurationBuckets is a decade ladder of seconds suited to benchmark
// phases (1ms … 1000s).
var DurationBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range sortedKeys(r.counters) {
		if err := writeHeader(w, name, r.help[name], "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if err := writeHeader(w, name, r.help[name], "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		if err := writeHeader(w, name, r.help[name], "histogram"); err != nil {
			return err
		}
		s := r.hists[name].snapshot()
		var cum uint64
		for i, bound := range s.Bounds {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, s.Sum, name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
