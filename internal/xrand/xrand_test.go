package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 1, 2)
	b := New(42, 1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(11)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	p := 0.7
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / float64(n)
	want := p / (1 - p)
	if math.Abs(mean-want) > 0.05*want+0.02 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(5)
	if r.Geometric(0) != 0 {
		t.Error("Geometric(0) should be 0")
	}
	if v := r.Geometric(1); v < 0 {
		t.Errorf("Geometric(1) = %d, want >= 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMixersAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix2(123, 456)
	flipped := Mix2(123, 457)
	diff := base ^ flipped
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Errorf("avalanche bits = %d, want ~32", bits)
	}
}

func TestQuickMixersDeterministic(t *testing.T) {
	f := func(seed, a, b, c uint64) bool {
		return Mix2(seed, a) == Mix2(seed, a) &&
			Mix3(seed, a, b) == Mix3(seed, a, b) &&
			Mix4(seed, a, b, c) == Mix4(seed, a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloat64FromWord(t *testing.T) {
	f := func(x uint64) bool {
		v := Float64(x)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
