// Package xrand provides the deterministic pseudo-random primitives used
// throughout the reproduction. Every generator and randomized algorithm
// derives per-entity streams from (seed, entity...) tuples via SplitMix64
// so that results are bit-identical across worker counts, platforms, and
// runs — the property the paper requires of Datagen ("it is
// deterministic, guaranteeing reproducible results and fair
// comparisons").
package xrand

import "math"

// SplitMix64 advances the SplitMix64 state x and returns the next output.
// It is a high-quality 64-bit mixer (Steele, Lea, Flood 2014).
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix2 deterministically mixes a seed with one stream identifier.
func Mix2(seed, a uint64) uint64 {
	return SplitMix64(SplitMix64(seed) ^ (a * 0xff51afd7ed558ccd))
}

// Mix3 deterministically mixes a seed with two stream identifiers.
func Mix3(seed, a, b uint64) uint64 {
	return SplitMix64(Mix2(seed, a) ^ (b * 0xc4ceb9fe1a85ec53))
}

// Mix4 deterministically mixes a seed with three stream identifiers.
func Mix4(seed, a, b, c uint64) uint64 {
	return SplitMix64(Mix3(seed, a, b) ^ (c * 0x9e3779b97f4a7c15))
}

// Float64 maps a 64-bit word to a uniform float in [0, 1).
func Float64(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// edgeWeightSalt decorrelates the edge-weight stream from any
// structural randomness drawn from the same seed, so turning weights on
// never changes a generated topology.
const edgeWeightSalt = 0x77656967687453 // "weightS"

// EdgeWeight derives the deterministic weight in (0, 1] of edge {u, v}
// as a pure function of (seed, endpoints), canonically ordered so both
// arcs of an undirected edge agree. It is the shared weight derivation
// of the graph generators (datagen, rmat).
func EdgeWeight(seed, u, v uint64) float64 {
	if u > v {
		u, v = v, u
	}
	return 1 - Float64(Mix3(seed^edgeWeightSalt, u, v)) // (0, 1]
}

// Rand is a tiny deterministic generator with an explicit SplitMix64
// state, cheaper and reproducible compared to math/rand across Go
// versions.
type Rand struct {
	state uint64
}

// New returns a Rand seeded from the given stream tuple.
func New(seed uint64, stream ...uint64) *Rand {
	s := seed
	for _, id := range stream {
		s = Mix2(s, id)
	}
	return &Rand{state: s}
}

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 { return Float64(r.Uint64()) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Geometric samples the number of successes before failure with success
// probability p, i.e. a geometric distribution on {0, 1, 2, ...} with
// mean p/(1-p). Used by the forest-fire EVO algorithm (burn link counts).
func (r *Rand) Geometric(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	u := r.Float64()
	// P(X >= k) = p^k  =>  X = floor(log(u) / log(p)).
	k := int(math.Floor(math.Log(1-u) / math.Log(p)))
	if k < 0 {
		k = 0
	}
	return k
}

// Perm fills out with a deterministic Fisher-Yates permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
