// Package report implements the Report Generator of the Graphalytics
// architecture (Figure 2): it "produces the main outcome of
// Graphalytics, a detailed report on the performance of the SUT during
// the benchmark, which includes all relevant configuration information",
// with "consistent reporting that facilitates comparisons between all
// possible combinations of platforms, datasets, and algorithms" (§2).
//
// The text renderers reproduce the shapes of the paper's evaluation:
// Figure 4 (runtime matrix: algorithms × platforms per graph, missing
// values marked) and Figure 5 (kTEPS for CONN).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/monitor"
	"graphalytics/internal/platform"
	"graphalytics/internal/validation"
	"graphalytics/internal/workload"
)

// Status classifies one benchmark run.
type Status string

// Run statuses. Failed runs appear as "missing values" in the matrix,
// exactly like Figure 4's gaps.
const (
	StatusSuccess   Status = "success"
	StatusOOM       Status = "oom"
	StatusTimeout   Status = "timeout"
	StatusError     Status = "error"
	StatusInvalid   Status = "invalid"
	StatusLoadError Status = "load-failed"
	// StatusCancelled marks a cell interrupted by campaign cancellation
	// (operator abort), not a platform failure: it never consumes retry
	// budget and does not count against the platform.
	StatusCancelled Status = "cancelled"
)

// RunResult is the outcome of one (platform, graph, algorithm) cell.
type RunResult struct {
	Platform  string        `json:"platform"`
	Graph     string        `json:"graph"`
	Algorithm algo.Kind     `json:"algorithm"`
	Status    Status        `json:"status"`
	Runtime   time.Duration `json:"runtime_ns"`
	LoadTime  time.Duration `json:"load_time_ns"`
	// KTEPS is |E| / runtime / 1000 — the Figure 5 metric ("the size of
	// the processed graph is included in this metric").
	KTEPS      float64           `json:"kteps"`
	GraphEdges int64             `json:"graph_edges"`
	Counters   platform.Counters `json:"counters"`
	Monitor    monitor.Report    `json:"-"`
	Validation validation.Result `json:"validation"`
	Err        string            `json:"error,omitempty"`
	Config     map[string]string `json:"config,omitempty"`
	// Reps holds per-cell repetition statistics when the campaign ran
	// the cell more than once (warm-ups or repetitions configured);
	// Runtime then reports the mean of the timed repetitions.
	Reps *RepStats `json:"reps,omitempty"`
	// Attempts counts executions of this cell including scheduler
	// retries of transient failures (0 and 1 both mean one attempt).
	Attempts int `json:"attempts,omitempty"`
	// Resources is the monitoring envelope of the cell (peaks,
	// percentiles, CPU/GC totals); nil when monitoring was disabled.
	Resources *monitor.Resources `json:"resources,omitempty"`
	// Provenance records where the cell's numbers came from:
	// ProvenanceLive (executed this campaign), ProvenanceResumed
	// (restored from the resume journal), ProvenanceUptodate (restored
	// from the stamped result store — the cell's fingerprint matched a
	// prior campaign), or ProvenanceETLCache (executed, but the platform
	// load came from the ETL artifact cache).
	Provenance Provenance `json:"provenance,omitempty"`
}

// Provenance labels the origin of a cell's numbers in reports.
type Provenance string

// Provenance values, from "all work done now" to "no work done at all".
const (
	// ProvenanceLive marks a cell fully executed in this campaign.
	ProvenanceLive Provenance = ""
	// ProvenanceETLCache marks a cell whose kernels executed in this
	// campaign but whose platform ETL was restored from the artifact
	// cache (LoadTime measures the restore, not the transformation).
	ProvenanceETLCache Provenance = "etl-cache"
	// ProvenanceResumed marks a cell restored from the resume journal of
	// an interrupted run of this same campaign.
	ProvenanceResumed Provenance = "resumed"
	// ProvenanceUptodate marks a cell restored from the stamped result
	// store: its content fingerprint matched a previous campaign, so no
	// kernel ran (the incremental-build UPTODATE state).
	ProvenanceUptodate Provenance = "uptodate"
)

// IngestStat records the ingest phase of one dataset: the wall-clock
// cost of parsing/generating the graph and building its CSR arrays,
// before any platform ETL or algorithm run. LDBC Graphalytics reports
// this separately from processing time (makespan vs. processing-time,
// with an edges-per-second loading figure); IngestStat is that split
// for the host-graph build.
type IngestStat struct {
	Graph    string        `json:"graph"`
	Source   string        `json:"source,omitempty"` // file path or generator spec
	Vertices int           `json:"vertices"`
	Edges    int64         `json:"edges"`
	Duration time.Duration `json:"duration_ns"`
	// Workers is the ingest parallelism the dataset was loaded with
	// (the -load-workers setting; 0 means all cores).
	Workers int `json:"workers,omitempty"`
	// EVPS is edges per second loaded — the LDBC loading metric.
	EVPS float64 `json:"evps"`
}

// Report is a full benchmark report.
type Report struct {
	Started  time.Time   `json:"started"`
	Finished time.Time   `json:"finished"`
	Results  []RunResult `json:"results"`
	// Ingests is the per-dataset ingest (graph load) phase, reported
	// separately from the per-cell processing times in Results.
	Ingests []IngestStat `json:"ingests,omitempty"`
}

// Cell renders one matrix cell: the runtime in seconds, or the failure
// marker (Figure 4: "Missing values indicate failures").
func (r RunResult) Cell() string {
	if r.Status == StatusSuccess {
		return formatSeconds(r.Runtime)
	}
	return "—(" + string(r.Status) + ")"
}

func formatSeconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.1f s", s)
	default:
		return fmt.Sprintf("%.3f s", s)
	}
}

// kindsOf returns the workload rows to render: every registered
// workload in registry order, then any kinds present in the results but
// unknown to the registry (first-seen order), so external results still
// render. Report row order is registry-driven, not hardcoded.
func kindsOf(results []RunResult) []algo.Kind {
	out := workload.Kinds()
	known := make(map[algo.Kind]bool, len(out))
	for _, k := range out {
		known[k] = true
	}
	for _, r := range results {
		if !known[r.Algorithm] {
			known[r.Algorithm] = true
			out = append(out, r.Algorithm)
		}
	}
	return out
}

// graphsOf returns the distinct graph names in first-seen order.
func graphsOf(results []RunResult) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Graph] {
			seen[r.Graph] = true
			out = append(out, r.Graph)
		}
	}
	return out
}

func platformsOf(results []RunResult) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Platform] {
			seen[r.Platform] = true
			out = append(out, r.Platform)
		}
	}
	sort.Strings(out)
	return out
}

// Figure4Table renders the runtime matrix in the shape of Figure 4:
// one block per graph, rows = algorithms, columns = platforms.
func Figure4Table(results []RunResult) string {
	var b strings.Builder
	platforms := platformsOf(results)
	cell := map[string]RunResult{}
	for _, r := range results {
		cell[r.Graph+"|"+string(r.Algorithm)+"|"+r.Platform] = r
	}
	kinds := kindsOf(results)
	for _, g := range graphsOf(results) {
		fmt.Fprintf(&b, "=== %s ===\n", g)
		fmt.Fprintf(&b, "%-8s", "")
		for _, p := range platforms {
			fmt.Fprintf(&b, "%16s", p)
		}
		b.WriteString("\n")
		for _, a := range kinds {
			row := false
			for _, p := range platforms {
				if _, okC := cell[g+"|"+string(a)+"|"+p]; okC {
					row = true
				}
			}
			if !row {
				continue
			}
			fmt.Fprintf(&b, "%-8s", a)
			for _, p := range platforms {
				if r, okC := cell[g+"|"+string(a)+"|"+p]; okC {
					fmt.Fprintf(&b, "%16s", r.Cell())
				} else {
					fmt.Fprintf(&b, "%16s", "")
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure5Table renders the CONN kTEPS matrix in the shape of Figure 5.
func Figure5Table(results []RunResult) string {
	return KTEPSTable(results, algo.CONN)
}

// KTEPSTable renders the kTEPS (|E| / runtime / 1000) matrix of one
// workload in the shape of Figure 5. For weighted workloads (SSSP) the
// metric is the weighted-graph edge throughput: the edge count is the
// loaded (weighted) graph's |E|, so weighted and unweighted campaigns
// stay comparable per edge.
func KTEPSTable(results []RunResult, kind algo.Kind) string {
	var b strings.Builder
	platforms := platformsOf(results)
	cell := map[string]RunResult{}
	for _, r := range results {
		if r.Algorithm == kind {
			cell[r.Graph+"|"+r.Platform] = r
		}
	}
	fmt.Fprintf(&b, "%s kTEPS (|E| / runtime / 1000)\n", kind)
	fmt.Fprintf(&b, "%-16s", "graph")
	for _, p := range platforms {
		fmt.Fprintf(&b, "%16s", p)
	}
	b.WriteString("\n")
	for _, g := range graphsOf(results) {
		fmt.Fprintf(&b, "%-16s", g)
		for _, p := range platforms {
			r, okC := cell[g+"|"+p]
			switch {
			case !okC:
				fmt.Fprintf(&b, "%16s", "")
			case r.Status != StatusSuccess:
				fmt.Fprintf(&b, "%16s", "—("+string(r.Status)+")")
			default:
				fmt.Fprintf(&b, "%16.0f", r.KTEPS)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// IngestTable renders the per-dataset load table: ingest time and
// edges per second (EVPS), the loading metric LDBC Graphalytics
// standardized, reported as its own phase ahead of the runtime matrix.
func IngestTable(ingests []IngestStat) string {
	if len(ingests) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("=== ingest (graph load) ===\n")
	fmt.Fprintf(&b, "%-16s %12s %14s %8s %12s %14s  %s\n",
		"graph", "vertices", "edges", "workers", "time", "EVPS", "source")
	for _, in := range ingests {
		workers := "all"
		if in.Workers > 0 {
			workers = fmt.Sprintf("%d", in.Workers)
		}
		fmt.Fprintf(&b, "%-16s %12d %14d %8s %12s %14.0f  %s\n",
			in.Graph, in.Vertices, in.Edges, workers,
			in.Duration.Round(10*time.Microsecond), in.EVPS, in.Source)
	}
	return b.String()
}

// ResourceTable renders the per-cell phase breakdown (load vs compute
// wall time) and resource envelope (peak RSS, peak heap, mean CPU, GC
// pause) sampled by the System Monitor. Cells with neither monitoring
// data nor a provenance mark are omitted; restored cells (resumed /
// uptodate) always render, with their envelope columns carried from the
// original run when it was serialized and "n/a" otherwise — restored
// monitor data is labeled, never silently dropped or passed off as
// fresh samples.
func ResourceTable(results []RunResult) string {
	any := false
	for _, r := range results {
		if r.Resources != nil || r.Provenance != ProvenanceLive {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("=== resources (per cell: phase breakdown + envelope) ===\n")
	fmt.Fprintf(&b, "%-10s %-12s %-6s %10s %10s %10s %10s %8s %10s  %s\n",
		"platform", "graph", "algo", "load", "compute", "peak RSS", "peak heap", "CPU%", "GC pause", "origin")
	for _, r := range results {
		if r.Resources == nil && r.Provenance == ProvenanceLive {
			continue
		}
		rss, heap, cpu, gc := "n/a", "n/a", "n/a", "n/a"
		if res := r.Resources; res != nil {
			if res.PeakRSSBytes > 0 {
				rss = formatBytes(res.PeakRSSBytes)
			}
			heap = formatBytes(res.PeakHeapBytes)
			if res.CPUMeanPercent > 0 {
				cpu = fmt.Sprintf("%.0f", res.CPUMeanPercent)
			}
			gc = res.GCPauseTotal.Round(time.Microsecond).String()
		}
		origin := "live"
		if r.Provenance != ProvenanceLive {
			origin = string(r.Provenance)
		}
		fmt.Fprintf(&b, "%-10s %-12s %-6s %10s %10s %10s %10s %8s %10s  %s\n",
			r.Platform, r.Graph, r.Algorithm,
			formatSeconds(r.LoadTime), formatSeconds(r.Runtime),
			rss, heap, cpu, gc, origin)
	}
	return b.String()
}

// Regression flags one series whose throughput metric dropped beyond
// threshold against its own trailing history in the results database —
// the history-aware comparison the benchmarking literature demands
// before a slowdown claim means anything. For processing regressions
// the metric is kTEPS (per platform, graph, algorithm); for ingest
// regressions it is EVPS (per graph, Platform = "ingest", no
// algorithm).
type Regression struct {
	Platform  string `json:"platform"`
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm,omitempty"`
	Metric    string `json:"metric"` // "kteps" or "evps"
	// Baseline is the trailing-window mean the latest point is judged
	// against; Latest is the newest submission's value.
	Baseline float64 `json:"baseline"`
	Latest   float64 `json:"latest"`
	// Drop is the relative decline (baseline-latest)/baseline, 0..1.
	Drop float64 `json:"drop"`
	// Threshold is the effective relative threshold the drop exceeded
	// (noise-widened when the baseline window is noisy).
	Threshold float64 `json:"threshold"`
	// Points is the number of history points behind the baseline.
	Points int `json:"points"`
	// SubmissionID is the submission that introduced the drop.
	SubmissionID int64 `json:"submission_id,omitempty"`
}

// RegressionTable renders the regression/trend section of report.txt:
// one row per flagged series. Empty input renders an empty string so
// callers can substitute a "no regressions" line.
func RegressionTable(regs []Regression) string {
	if len(regs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("=== regressions (vs trailing submission history) ===\n")
	fmt.Fprintf(&b, "%-10s %-14s %-6s %-6s %12s %12s %8s %8s %6s\n",
		"platform", "graph", "algo", "metric", "baseline", "latest", "drop", "thresh", "hist")
	for _, r := range regs {
		algoName := r.Algorithm
		if algoName == "" {
			algoName = "-"
		}
		fmt.Fprintf(&b, "%-10s %-14s %-6s %-6s %12.1f %12.1f %7.1f%% %7.1f%% %6d\n",
			r.Platform, r.Graph, algoName, r.Metric,
			r.Baseline, r.Latest, r.Drop*100, r.Threshold*100, r.Points)
	}
	return b.String()
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// WriteCSV writes all results as CSV.
func WriteCSV(w io.Writer, results []RunResult) error {
	if _, err := fmt.Fprintln(w, "platform,graph,algorithm,status,runtime_ms,load_ms,kteps,edges,messages,network_bytes,supersteps,peak_memory,valid,reps,runtime_min_ms,runtime_max_ms,runtime_stddev_ms"); err != nil {
		return err
	}
	for _, r := range results {
		reps, minMS, maxMS, stddevMS := 1, float64(r.Runtime)/1e6, float64(r.Runtime)/1e6, 0.0
		if r.Reps != nil {
			reps = r.Reps.Reps
			minMS = float64(r.Reps.Min) / 1e6
			maxMS = float64(r.Reps.Max) / 1e6
			stddevMS = float64(r.Reps.Stddev) / 1e6
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%.3f,%.3f,%.1f,%d,%d,%d,%d,%d,%v,%d,%.3f,%.3f,%.3f\n",
			r.Platform, r.Graph, r.Algorithm, r.Status,
			float64(r.Runtime)/1e6, float64(r.LoadTime)/1e6, r.KTEPS, r.GraphEdges,
			r.Counters.Messages, r.Counters.NetworkBytes, r.Counters.Supersteps,
			r.Counters.PeakMemoryBytes, r.Validation.Valid,
			reps, minMS, maxMS, stddevMS); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the full report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Summary returns a one-paragraph textual summary (counts per status,
// plus how many cells were restored rather than executed).
func (rep *Report) Summary() string {
	counts := map[Status]int{}
	prov := map[Provenance]int{}
	for _, r := range rep.Results {
		counts[r.Status]++
		prov[r.Provenance]++
	}
	parts := make([]string, 0, len(counts))
	for _, s := range []Status{StatusSuccess, StatusOOM, StatusTimeout, StatusError, StatusInvalid, StatusLoadError, StatusCancelled} {
		if counts[s] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[s], s))
		}
	}
	for _, p := range []Provenance{ProvenanceUptodate, ProvenanceResumed, ProvenanceETLCache} {
		if prov[p] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", prov[p], p))
		}
	}
	return fmt.Sprintf("%d runs (%s) in %s",
		len(rep.Results), strings.Join(parts, ", "), rep.Finished.Sub(rep.Started).Round(time.Millisecond))
}
