package report

import (
	"strings"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/validation"
)

func sampleResults() []RunResult {
	return []RunResult{
		{Platform: "pregel", Graph: "g500", Algorithm: algo.BFS, Status: StatusSuccess,
			Runtime: 86 * time.Second, KTEPS: 1500, GraphEdges: 1000, Validation: validation.Result{Valid: true}},
		{Platform: "mapreduce", Graph: "g500", Algorithm: algo.BFS, Status: StatusSuccess,
			Runtime: 6179 * time.Second, KTEPS: 20, GraphEdges: 1000, Validation: validation.Result{Valid: true}},
		{Platform: "dataflow", Graph: "g500", Algorithm: algo.BFS, Status: StatusOOM, GraphEdges: 1000},
		{Platform: "pregel", Graph: "g500", Algorithm: algo.CONN, Status: StatusSuccess,
			Runtime: time.Second, KTEPS: 6272, GraphEdges: 1000, Validation: validation.Result{Valid: true}},
		{Platform: "pregel", Graph: "patents", Algorithm: algo.CONN, Status: StatusTimeout, GraphEdges: 500},
	}
}

func TestCellRendering(t *testing.T) {
	cases := []struct {
		r    RunResult
		want string
	}{
		{RunResult{Status: StatusSuccess, Runtime: 250 * time.Second}, "250 s"},
		{RunResult{Status: StatusSuccess, Runtime: 2500 * time.Millisecond}, "2.5 s"},
		{RunResult{Status: StatusSuccess, Runtime: 42 * time.Millisecond}, "0.042 s"},
		{RunResult{Status: StatusOOM}, "—(oom)"},
		{RunResult{Status: StatusTimeout}, "—(timeout)"},
	}
	for _, c := range cases {
		if got := c.r.Cell(); got != c.want {
			t.Errorf("Cell() = %q, want %q", got, c.want)
		}
	}
}

func TestFigure4TableLayout(t *testing.T) {
	table := Figure4Table(sampleResults())
	// One block per graph, algorithms as rows, platforms as columns.
	if !strings.Contains(table, "=== g500 ===") || !strings.Contains(table, "=== patents ===") {
		t.Fatalf("missing graph blocks:\n%s", table)
	}
	for _, want := range []string{"BFS", "CONN", "pregel", "mapreduce", "dataflow", "—(oom)", "—(timeout)"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// The patents block has no BFS results, so no BFS row there.
	patentsBlock := table[strings.Index(table, "=== patents ==="):]
	if strings.Contains(patentsBlock, "BFS") {
		t.Errorf("patents block should not have a BFS row:\n%s", patentsBlock)
	}
}

func TestFigure5TableLayout(t *testing.T) {
	table := Figure5Table(sampleResults())
	if !strings.Contains(table, "kTEPS") {
		t.Fatal("missing header")
	}
	if !strings.Contains(table, "6272") {
		t.Errorf("missing pregel CONN kTEPS:\n%s", table)
	}
	if !strings.Contains(table, "—(timeout)") {
		t.Errorf("failed CONN cells must be marked:\n%s", table)
	}
	// BFS rows never appear in the Figure 5 view.
	if strings.Contains(table, "1500") {
		t.Errorf("BFS kTEPS leaked into Figure 5:\n%s", table)
	}
}

func TestWriteCSVShape(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sampleResults()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(sampleResults())+1 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "platform,graph,algorithm,status") {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != strings.Count(lines[0], ",") {
			t.Errorf("column count mismatch: %q", line)
		}
	}
}

func TestReportJSONAndSummary(t *testing.T) {
	rep := &Report{
		Started:  time.Date(2015, 5, 31, 12, 0, 0, 0, time.UTC),
		Finished: time.Date(2015, 5, 31, 12, 5, 0, 0, time.UTC),
		Results:  sampleResults(),
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"results\"", "\"pregel\"", "\"oom\""} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	s := rep.Summary()
	for _, want := range []string{"5 runs", "3 success", "1 oom", "1 timeout", "5m0s"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}

func TestEmptyResults(t *testing.T) {
	if got := Figure4Table(nil); got != "" {
		t.Errorf("empty Figure4Table = %q", got)
	}
	table := Figure5Table(nil)
	if !strings.Contains(table, "kTEPS") {
		t.Errorf("Figure5Table should still print a header: %q", table)
	}
}

func TestResourceTableProvenance(t *testing.T) {
	results := []RunResult{
		{Platform: "pregel", Graph: "g", Algorithm: algo.BFS, Status: StatusSuccess,
			Runtime: time.Second, Provenance: ProvenanceUptodate},
		{Platform: "pregel", Graph: "g", Algorithm: algo.CONN, Status: StatusSuccess,
			Runtime: time.Second, Provenance: ProvenanceResumed},
		// Live cell without monitor data: excluded, as before.
		{Platform: "pregel", Graph: "g", Algorithm: algo.PR, Status: StatusSuccess,
			Runtime: time.Second},
	}
	table := ResourceTable(results)
	if !strings.Contains(table, "origin") {
		t.Fatalf("resource table lacks an origin column:\n%s", table)
	}
	if !strings.Contains(table, "uptodate") || !strings.Contains(table, "resumed") {
		t.Errorf("restored cells dropped from resource table:\n%s", table)
	}
	// Restored rows have no monitor samples: they render n/a, not zeros.
	if !strings.Contains(table, "n/a") {
		t.Errorf("restored rows must render n/a for missing resources:\n%s", table)
	}
	if strings.Contains(table, string(algo.PR)) {
		t.Errorf("live cell without resources leaked into the table:\n%s", table)
	}
}

func TestSummaryProvenanceCounts(t *testing.T) {
	results := sampleResults()
	results[0].Provenance = ProvenanceUptodate
	results[1].Provenance = ProvenanceResumed
	results[3].Provenance = ProvenanceETLCache
	rep := &Report{Results: results}
	s := rep.Summary()
	for _, want := range []string{"uptodate", "resumed", "etl-cache"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary lacks %q count:\n%s", want, s)
		}
	}
	// All-live reports stay unchanged: no provenance noise.
	if s := (&Report{Results: sampleResults()}).Summary(); strings.Contains(s, "uptodate") {
		t.Errorf("all-live summary mentions provenance:\n%s", s)
	}
}
