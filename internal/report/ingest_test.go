package report

import (
	"strings"
	"testing"
	"time"
)

func TestIngestTable(t *testing.T) {
	if IngestTable(nil) != "" {
		t.Error("empty ingest list should render nothing")
	}
	out := IngestTable([]IngestStat{
		{Graph: "social-500", Source: "social:500", Vertices: 500, Edges: 7000,
			Duration: 14 * time.Millisecond, Workers: 8, EVPS: 500000},
		{Graph: "patents", Source: "file:patents.e", Vertices: 100, Edges: 200,
			Duration: time.Millisecond, EVPS: 200000},
	})
	for _, want := range []string{
		"ingest (graph load)", "EVPS", "social-500", "social:500",
		"500000", "file:patents.e",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ingest table missing %q:\n%s", want, out)
		}
	}
	// Workers 0 renders as "all" (the all-cores default).
	if !strings.Contains(out, "all") {
		t.Errorf("workers=0 should render as \"all\":\n%s", out)
	}
}
