package report

import (
	"math"
	"time"
)

// RepStats aggregates the repeated-run methodology over one matrix
// cell: W untimed warm-up executions followed by R timed repetitions,
// the scheme LDBC Graphalytics later standardized to defend against
// single-run, non-reproducible measurements. Aggregates (Min/Mean/Max/
// Stddev) cover the timed repetitions only; First and WarmMean expose
// the cold-start vs warmed-up split across all executions.
type RepStats struct {
	// Warmup is the number of untimed warm-up executions that preceded
	// the timed repetitions.
	Warmup int `json:"warmup"`
	// Reps is the number of timed repetitions aggregated below.
	Reps int `json:"reps"`
	// Min/Mean/Max/Stddev summarize the timed repetition runtimes.
	Min    time.Duration `json:"min_ns"`
	Mean   time.Duration `json:"mean_ns"`
	Max    time.Duration `json:"max_ns"`
	Stddev time.Duration `json:"stddev_ns"`
	// First is the very first execution's runtime (cold caches, JIT
	// analogue); WarmMean averages every execution after the first.
	First    time.Duration `json:"first_ns"`
	WarmMean time.Duration `json:"warm_mean_ns"`
	// Runtimes lists every execution in order, warm-ups first.
	Runtimes []time.Duration `json:"runtimes_ns"`
}

// NewRepStats summarizes the per-execution runtimes of one cell, of
// which the first warmup entries were warm-up executions. It returns
// nil for an empty sample.
func NewRepStats(warmup int, runtimes []time.Duration) *RepStats {
	if len(runtimes) == 0 || warmup >= len(runtimes) {
		return nil
	}
	timed := runtimes[warmup:]
	s := &RepStats{
		Warmup:   warmup,
		Reps:     len(timed),
		Min:      timed[0],
		Max:      timed[0],
		First:    runtimes[0],
		Runtimes: runtimes,
	}
	var sum float64
	for _, d := range timed {
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		sum += float64(d)
	}
	mean := sum / float64(len(timed))
	s.Mean = time.Duration(mean)
	var sq float64
	for _, d := range timed {
		diff := float64(d) - mean
		sq += diff * diff
	}
	s.Stddev = time.Duration(math.Sqrt(sq / float64(len(timed))))
	if warm := runtimes[1:]; len(warm) > 0 {
		var wsum float64
		for _, d := range warm {
			wsum += float64(d)
		}
		s.WarmMean = time.Duration(wsum / float64(len(warm)))
	} else {
		s.WarmMean = s.First
	}
	return s
}
