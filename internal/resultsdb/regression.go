package resultsdb

import (
	"math"
	"net/http"
	"sort"
	"strconv"

	"graphalytics/internal/report"
)

// The regression detector closes the loop the ROADMAP calls for: the
// results database already accumulates submissions over time, so every
// (platform, graph, algorithm) series doubles as that platform's
// performance history. A submission whose kTEPS (or a graph's ingest
// EVPS) falls beyond threshold below the trailing baseline of its own
// history is flagged — with the threshold widened on noisy series so a
// jittery-but-flat platform is not paged on.

// RegressionOptions tunes the history comparison.
type RegressionOptions struct {
	// Threshold is the minimum relative drop vs the trailing baseline
	// considered a regression (default 0.15 = 15%).
	Threshold float64
	// Window is the trailing-baseline length: the latest point is
	// compared against the mean of up to Window prior points
	// (default 5).
	Window int
	// NoiseSigmas widens the threshold to k·σ_rel of the baseline
	// window (default 2), so noisy-but-flat series stay quiet.
	NoiseSigmas float64
}

func (o RegressionOptions) withDefaults() RegressionOptions {
	if o.Threshold <= 0 {
		o.Threshold = 0.15
	}
	if o.Window <= 0 {
		o.Window = 5
	}
	if o.NoiseSigmas <= 0 {
		o.NoiseSigmas = 2
	}
	return o
}

// MetricPoint is one submission's value in a metric series.
type MetricPoint struct {
	SubmissionID int64   `json:"submission_id"`
	Value        float64 `json:"value"`
}

// KTEPSHistory returns the per-submission kTEPS series of one
// (platform, graph, algorithm), oldest first. Each submission
// contributes its best successful run (the same selection Compare
// uses), so repetitions within one report do not read as history.
func (s *Store) KTEPSHistory(platform, graphName, algorithm string) []MetricPoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []MetricPoint
	for _, sub := range s.subs {
		best, ok := 0.0, false
		for _, r := range sub.Report.Results {
			if r.Platform != platform || r.Graph != graphName || string(r.Algorithm) != algorithm {
				continue
			}
			if r.Status != report.StatusSuccess || r.KTEPS <= 0 {
				continue
			}
			if !ok || r.KTEPS > best {
				best, ok = r.KTEPS, true
			}
		}
		if ok {
			out = append(out, MetricPoint{SubmissionID: sub.ID, Value: best})
		}
	}
	return out
}

// seriesKey identifies one metric history.
type seriesKey struct {
	platform  string
	graph     string
	algorithm string
	metric    string // "kteps" or "evps"
}

// series collects every metric history in the store, oldest first
// (submissions are stored in ID order). Caller holds at least a read
// lock.
func (s *Store) series() map[seriesKey][]MetricPoint {
	out := map[seriesKey][]MetricPoint{}
	for _, sub := range s.subs {
		// Best successful kTEPS per (platform, graph, algorithm).
		best := map[seriesKey]float64{}
		for _, r := range sub.Report.Results {
			if r.Status != report.StatusSuccess || r.KTEPS <= 0 {
				continue
			}
			k := seriesKey{r.Platform, r.Graph, string(r.Algorithm), "kteps"}
			if r.KTEPS > best[k] {
				best[k] = r.KTEPS
			}
		}
		// Best ingest EVPS per graph.
		for _, in := range sub.Report.Ingests {
			if in.EVPS <= 0 {
				continue
			}
			k := seriesKey{"ingest", in.Graph, "", "evps"}
			if in.EVPS > best[k] {
				best[k] = in.EVPS
			}
		}
		for k, v := range best {
			out[k] = append(out[k], MetricPoint{SubmissionID: sub.ID, Value: v})
		}
	}
	return out
}

// Regressions scans every metric history and returns the flagged
// series (sorted by drop, worst first) plus the number of series
// checked. Series with fewer than two points can have no baseline and
// never flag.
func (s *Store) Regressions(opts RegressionOptions) ([]report.Regression, int) {
	opts = opts.withDefaults()
	s.mu.RLock()
	all := s.series()
	s.mu.RUnlock()

	var regs []report.Regression
	for k, pts := range all {
		if r, ok := judge(k, pts, opts); ok {
			regs = append(regs, r)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Drop != regs[j].Drop {
			return regs[i].Drop > regs[j].Drop
		}
		a, b := regs[i], regs[j]
		return a.Platform+"|"+a.Graph+"|"+a.Algorithm < b.Platform+"|"+b.Graph+"|"+b.Algorithm
	})
	return regs, len(all)
}

// judge compares the latest point of one series against its trailing
// baseline.
func judge(k seriesKey, pts []MetricPoint, opts RegressionOptions) (report.Regression, bool) {
	if len(pts) < 2 {
		return report.Regression{}, false
	}
	latest := pts[len(pts)-1]
	window := pts[:len(pts)-1]
	if len(window) > opts.Window {
		window = window[len(window)-opts.Window:]
	}
	var sum float64
	for _, p := range window {
		sum += p.Value
	}
	mean := sum / float64(len(window))
	if mean <= 0 {
		return report.Regression{}, false
	}
	// Noise widening: relative stddev of the baseline window (0 for a
	// single-point window, which leaves the static threshold).
	var relStddev float64
	if len(window) > 1 {
		var sq float64
		for _, p := range window {
			d := p.Value - mean
			sq += d * d
		}
		relStddev = math.Sqrt(sq/float64(len(window)-1)) / mean
	}
	threshold := math.Max(opts.Threshold, opts.NoiseSigmas*relStddev)
	drop := (mean - latest.Value) / mean
	if drop <= threshold {
		return report.Regression{}, false
	}
	return report.Regression{
		Platform:     k.platform,
		Graph:        k.graph,
		Algorithm:    k.algorithm,
		Metric:       k.metric,
		Baseline:     mean,
		Latest:       latest.Value,
		Drop:         drop,
		Threshold:    threshold,
		Points:       len(window),
		SubmissionID: latest.SubmissionID,
	}, true
}

// regressionsResponse is the /api/v1/regressions document.
type regressionsResponse struct {
	Checked     int                 `json:"checked"`
	Threshold   float64             `json:"threshold"`
	Window      int                 `json:"window"`
	Regressions []report.Regression `json:"regressions"`
}

func (s *Store) handleRegressions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "method not allowed"})
		return
	}
	q := r.URL.Query()
	opts := RegressionOptions{}
	if v := q.Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f >= 1 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "threshold must be in (0, 1)"})
			return
		}
		opts.Threshold = f
	}
	if v := q.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "window must be a positive integer"})
			return
		}
		opts.Window = n
	}
	regs, checked := s.Regressions(opts)
	eff := opts.withDefaults()
	if regs == nil {
		regs = []report.Regression{}
	}
	writeJSON(w, http.StatusOK, regressionsResponse{
		Checked:     checked,
		Threshold:   eff.Threshold,
		Window:      eff.Window,
		Regressions: regs,
	})
}
