package resultsdb

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/report"
	"graphalytics/internal/telemetry"
)

// ktepsReport builds a one-cell successful report with the given kTEPS.
func ktepsReport(platform, graphName string, kteps float64) *report.Report {
	return &report.Report{
		Started:  time.Now().Add(-time.Minute),
		Finished: time.Now(),
		Results: []report.RunResult{{
			Platform: platform, Graph: graphName, Algorithm: algo.CONN,
			Status: report.StatusSuccess, Runtime: time.Second, KTEPS: kteps,
		}},
	}
}

// submitSeries submits one report per kTEPS value, oldest first.
func submitSeries(t *testing.T, s *Store, platform string, kteps ...float64) {
	t.Helper()
	for _, v := range kteps {
		if _, err := s.Submit(Submission{Submitter: "ci", Report: ktepsReport(platform, "snb-1000", v)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegressionsEmptyHistory(t *testing.T) {
	s := NewStore()
	regs, checked := s.Regressions(RegressionOptions{})
	if len(regs) != 0 || checked != 0 {
		t.Fatalf("empty store: regs=%v checked=%d", regs, checked)
	}
}

func TestRegressionsSinglePointNeverFlags(t *testing.T) {
	s := NewStore()
	submitSeries(t, s, "pregel", 1000)
	regs, checked := s.Regressions(RegressionOptions{})
	if checked != 1 {
		t.Fatalf("checked = %d, want 1", checked)
	}
	if len(regs) != 0 {
		t.Fatalf("single point flagged: %+v", regs)
	}
}

func TestRegressionsGenuineDrop(t *testing.T) {
	s := NewStore()
	// Stable around 1000 kTEPS, then the last submission halves.
	submitSeries(t, s, "pregel", 1000, 1020, 980, 500)
	regs, _ := s.Regressions(RegressionOptions{})
	if len(regs) != 1 {
		t.Fatalf("regs = %+v", regs)
	}
	r := regs[0]
	if r.Platform != "pregel" || r.Graph != "snb-1000" || r.Algorithm != "CONN" || r.Metric != "kteps" {
		t.Fatalf("identity: %+v", r)
	}
	if r.Latest != 500 || r.Baseline < 990 || r.Baseline > 1010 {
		t.Fatalf("values: %+v", r)
	}
	if r.Drop < 0.45 || r.Drop > 0.55 {
		t.Fatalf("drop: %+v", r)
	}
	if r.SubmissionID != 4 {
		t.Fatalf("submission id: %+v", r)
	}
}

func TestRegressionsNoisyButFlatStaysQuiet(t *testing.T) {
	s := NewStore()
	// ±25% swings are this series' normal; the final point sits inside
	// that noise band even though it is >15% below the window mean.
	submitSeries(t, s, "pregel", 1000, 1400, 800, 1200, 820)
	regs, _ := s.Regressions(RegressionOptions{})
	if len(regs) != 0 {
		t.Fatalf("noisy-but-flat flagged: %+v", regs)
	}
	// A tight series with the same relative final drop must flag.
	s2 := NewStore()
	submitSeries(t, s2, "pregel", 1000, 1010, 990, 1000, 780)
	regs, _ = s2.Regressions(RegressionOptions{})
	if len(regs) != 1 {
		t.Fatalf("tight-series drop missed: %+v", regs)
	}
}

func TestRegressionsRecoveryNotFlagged(t *testing.T) {
	s := NewStore()
	// A past dip that already recovered must not flag: only the latest
	// point is judged.
	submitSeries(t, s, "pregel", 1000, 400, 1000, 1010)
	regs, _ := s.Regressions(RegressionOptions{})
	if len(regs) != 0 {
		t.Fatalf("recovered series flagged: %+v", regs)
	}
}

func TestRegressionsIngestEVPS(t *testing.T) {
	s := NewStore()
	mk := func(evps float64) *report.Report {
		rep := ktepsReport("pregel", "snb-1000", 1000)
		rep.Ingests = []report.IngestStat{{Graph: "snb-1000", Vertices: 10, Edges: 100, Duration: time.Second, EVPS: evps}}
		return rep
	}
	for _, evps := range []float64{5e6, 5.1e6, 4.9e6, 2e6} {
		if _, err := s.Submit(Submission{Submitter: "ci", Report: mk(evps)}); err != nil {
			t.Fatal(err)
		}
	}
	regs, checked := s.Regressions(RegressionOptions{})
	if checked != 2 { // kteps series + evps series
		t.Fatalf("checked = %d, want 2", checked)
	}
	if len(regs) != 1 || regs[0].Metric != "evps" || regs[0].Platform != "ingest" {
		t.Fatalf("evps regression: %+v", regs)
	}
}

func TestKTEPSHistoryUsesBestPerSubmission(t *testing.T) {
	s := NewStore()
	rep := ktepsReport("pregel", "snb-1000", 700)
	// A second (slower) rep of the same cell in the same submission must
	// not create a second history point.
	rep.Results = append(rep.Results, report.RunResult{
		Platform: "pregel", Graph: "snb-1000", Algorithm: algo.CONN,
		Status: report.StatusSuccess, Runtime: 2 * time.Second, KTEPS: 350,
	})
	if _, err := s.Submit(Submission{Submitter: "ci", Report: rep}); err != nil {
		t.Fatal(err)
	}
	pts := s.KTEPSHistory("pregel", "snb-1000", "CONN")
	if len(pts) != 1 || pts[0].Value != 700 {
		t.Fatalf("history: %+v", pts)
	}
	if pts := s.KTEPSHistory("pregel", "snb-1000", "BFS"); len(pts) != 0 {
		t.Fatalf("BFS history should be empty: %+v", pts)
	}
}

func TestRegressionsEndpoint(t *testing.T) {
	s := NewStore()
	submitSeries(t, s, "pregel", 1000, 1020, 980, 500)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/regressions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	var body struct {
		Checked     int                 `json:"checked"`
		Threshold   float64             `json:"threshold"`
		Regressions []report.Regression `json:"regressions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Checked != 1 || body.Threshold != 0.15 {
		t.Fatalf("body: %+v", body)
	}
	if len(body.Regressions) != 1 || body.Regressions[0].Platform != "pregel" {
		t.Fatalf("regressions: %+v", body.Regressions)
	}

	// An empty store returns an empty array, not null.
	empty := httptest.NewServer(NewStore().Handler())
	defer empty.Close()
	resp2, err := http.Get(empty.URL + "/api/v1/regressions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["regressions"]) != "[]" {
		t.Fatalf("empty regressions = %s", raw["regressions"])
	}

	// Parameter validation.
	for _, q := range []string{"?threshold=2", "?threshold=abc", "?window=0", "?window=x"} {
		resp, err := http.Get(srv.URL + "/api/v1/regressions" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %s, want 400", q, resp.Status)
		}
	}
	// A loose threshold still returns 200 with no regressions flagged.
	resp3, err := http.Get(srv.URL + "/api/v1/regressions?threshold=0.9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if err := json.NewDecoder(resp3.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Regressions) != 0 {
		t.Fatalf("0.9 threshold flagged: %+v", body.Regressions)
	}
}

func TestSubmitPersistFailureSurfacesAndCounts(t *testing.T) {
	s := NewStore()
	// Point persistence into a missing directory so the atomic write
	// fails after validation passes.
	s.path = filepath.Join(t.TempDir(), "missing-dir", "results.json")
	before := telemetry.Metrics.Counter("resultsdb_persist_failures_total", "").Value()

	_, err := s.Submit(Submission{Submitter: "ci", Report: ktepsReport("pregel", "g", 100)})
	if err == nil {
		t.Fatal("persist failure not surfaced")
	}
	if len(s.List()) != 0 {
		t.Fatal("failed submission left in memory")
	}
	after := telemetry.Metrics.Counter("resultsdb_persist_failures_total", "").Value()
	if after != before+1 {
		t.Fatalf("persist failure counter: %d -> %d", before, after)
	}

	// The HTTP caller sees a 500, not a silent 201.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body, _ := json.Marshal(Submission{Submitter: "ci", Report: ktepsReport("pregel", "g", 100)})
	resp, err := http.Post(srv.URL+"/api/v1/submissions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %s, want 500", resp.Status)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Error == "" {
		t.Fatal("500 body missing the persist error")
	}
	_ = os.Remove(s.path)
}
