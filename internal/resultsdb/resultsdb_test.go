package resultsdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/report"
)

func sampleReport(platform string, runtimeMS float64) *report.Report {
	return &report.Report{
		Started:  time.Now().Add(-time.Minute),
		Finished: time.Now(),
		Results: []report.RunResult{
			{
				Platform: platform, Graph: "snb-1000", Algorithm: algo.CONN,
				Status: report.StatusSuccess, Runtime: time.Duration(runtimeMS * 1e6),
				KTEPS: 1000,
			},
			{
				Platform: platform, Graph: "snb-1000", Algorithm: algo.BFS,
				Status: report.StatusOOM,
			},
		},
	}
}

func TestSubmitAndGet(t *testing.T) {
	s := NewStore()
	id, err := s.Submit(Submission{Submitter: "tudelft", Environment: "10-node cluster", Report: sampleReport("pregel", 50)})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id = %d", id)
	}
	sub, ok := s.Get(id)
	if !ok || sub.Submitter != "tudelft" {
		t.Fatalf("Get: %v %v", sub, ok)
	}
	if sub.SubmittedAt.IsZero() {
		t.Error("SubmittedAt not stamped")
	}
	if _, ok := s.Get(99); ok {
		t.Error("Get(99) should miss")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewStore()
	cases := []Submission{
		{},
		{Submitter: "x"},
		{Submitter: "x", Report: &report.Report{}},
		{Report: sampleReport("pregel", 1)},
		{Submitter: "x", Report: &report.Report{Results: []report.RunResult{{}}}},
	}
	for i, sub := range cases {
		if _, err := s.Submit(sub); !errors.Is(err, ErrInvalidSubmission) {
			t.Errorf("case %d: err = %v, want ErrInvalidSubmission", i, err)
		}
	}
}

func TestListSummaries(t *testing.T) {
	s := NewStore()
	s.Submit(Submission{Submitter: "a", Report: sampleReport("pregel", 10)})
	s.Submit(Submission{Submitter: "b", Report: sampleReport("mapreduce", 500)})
	list := s.List()
	if len(list) != 2 {
		t.Fatalf("list = %d entries", len(list))
	}
	if list[0].ID != 2 || list[1].ID != 1 {
		t.Error("list must be newest first")
	}
	if list[0].Runs != 2 || len(list[0].Platforms) != 1 || list[0].Platforms[0] != "mapreduce" {
		t.Errorf("summary = %+v", list[0])
	}
}

func TestResultsFilter(t *testing.T) {
	s := NewStore()
	s.Submit(Submission{Submitter: "a", Report: sampleReport("pregel", 10)})
	s.Submit(Submission{Submitter: "b", Report: sampleReport("mapreduce", 500)})
	if rows := s.Results(Filter{}); len(rows) != 4 {
		t.Errorf("unfiltered rows = %d, want 4", len(rows))
	}
	if rows := s.Results(Filter{Platform: "pregel"}); len(rows) != 2 {
		t.Errorf("pregel rows = %d, want 2", len(rows))
	}
	if rows := s.Results(Filter{Algorithm: "CONN"}); len(rows) != 2 {
		t.Errorf("CONN rows = %d, want 2", len(rows))
	}
	if rows := s.Results(Filter{Graph: "nope"}); len(rows) != 0 {
		t.Errorf("nope rows = %d, want 0", len(rows))
	}
}

func TestCompareLeaderboard(t *testing.T) {
	s := NewStore()
	s.Submit(Submission{Submitter: "slow", Report: sampleReport("pregel", 100)})
	s.Submit(Submission{Submitter: "fast", Report: sampleReport("pregel", 20)})
	s.Submit(Submission{Submitter: "mr", Report: sampleReport("mapreduce", 900)})
	cmp := s.Compare("snb-1000", "CONN")
	if len(cmp.Best) != 2 {
		t.Fatalf("best = %v", cmp.Best)
	}
	if cmp.Best["pregel"].Submitter != "fast" || cmp.Best["pregel"].RuntimeMS != 20 {
		t.Errorf("pregel best = %+v", cmp.Best["pregel"])
	}
	// Failed runs (the BFS OOM rows) never enter the leaderboard.
	if _, ok := s.Compare("snb-1000", "BFS").Best["pregel"]; ok {
		t.Error("OOM run must not win a leaderboard cell")
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	s1, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(Submission{Submitter: "a", Report: sampleReport("pregel", 10)})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := s2.Get(id)
	if !ok || sub.Submitter != "a" {
		t.Fatal("submission lost across reopen")
	}
	// IDs continue after reload.
	id2, err := s2.Submit(Submission{Submitter: "b", Report: sampleReport("graphdb", 5)})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Errorf("id after reload = %d, want %d", id2, id+1)
	}
}

func TestOpenStoreCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Error("corrupt store should fail to open")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// ---------------------------------------------------------------------
// HTTP API tests.

func newServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	s := NewStore()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func TestHTTPSubmitListGet(t *testing.T) {
	_, srv := newServer(t)

	body, _ := json.Marshal(Submission{Submitter: "web", Environment: "laptop", Report: sampleReport("pregel", 42)})
	resp, err := http.Post(srv.URL+"/api/v1/submissions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var created map[string]int64
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if created["id"] != 1 {
		t.Fatalf("created id = %d", created["id"])
	}

	resp, err = http.Get(srv.URL + "/api/v1/submissions")
	if err != nil {
		t.Fatal(err)
	}
	var list []Summary
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].Submitter != "web" {
		t.Fatalf("list = %+v", list)
	}

	resp, err = http.Get(srv.URL + "/api/v1/submissions/1")
	if err != nil {
		t.Fatal(err)
	}
	var sub Submission
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if sub.Environment != "laptop" {
		t.Fatalf("sub = %+v", sub)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newServer(t)

	// Bad JSON.
	resp, _ := http.Post(srv.URL+"/api/v1/submissions", "application/json", bytes.NewReader([]byte("{")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Invalid submission.
	body, _ := json.Marshal(Submission{Submitter: ""})
	resp, _ = http.Post(srv.URL+"/api/v1/submissions", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid submission status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing submission.
	resp, _ = http.Get(srv.URL + "/api/v1/submissions/42")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing submission status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad ID.
	resp, _ = http.Get(srv.URL + "/api/v1/submissions/zzz")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wrong method.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/submissions", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Compare without parameters.
	resp, _ = http.Get(srv.URL + "/api/v1/compare")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("compare status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPResultsAndCompare(t *testing.T) {
	s, srv := newServer(t)
	s.Submit(Submission{Submitter: "a", Report: sampleReport("pregel", 10)})
	s.Submit(Submission{Submitter: "b", Report: sampleReport("mapreduce", 700)})

	resp, err := http.Get(srv.URL + "/api/v1/results?platform=pregel&algorithm=CONN")
	if err != nil {
		t.Fatal(err)
	}
	var rows []ResultRow
	json.NewDecoder(resp.Body).Decode(&rows)
	resp.Body.Close()
	if len(rows) != 1 || rows[0].Submitter != "a" {
		t.Fatalf("rows = %+v", rows)
	}

	resp, err = http.Get(srv.URL + "/api/v1/compare?graph=snb-1000&algorithm=CONN")
	if err != nil {
		t.Fatal(err)
	}
	var cmp Comparison
	json.NewDecoder(resp.Body).Decode(&cmp)
	resp.Body.Close()
	if len(cmp.Best) != 2 || cmp.Best["pregel"].RuntimeMS != 10 {
		t.Fatalf("compare = %+v", cmp)
	}
}
