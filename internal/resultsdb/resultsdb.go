// Package resultsdb implements the Results database of the Graphalytics
// architecture (Figure 2): "a database for Results that is hosted by us
// online and accepts results submissions from Graphalytics users",
// which the paper's vision says "will evolve into a public database of
// useful results" (§4).
//
// The store keeps submissions (a benchmark report plus submitter
// metadata) in a file-backed JSON log and serves them over HTTP:
//
//	POST /api/v1/submissions          submit a report (JSON body)
//	GET  /api/v1/submissions          list submissions (summaries)
//	GET  /api/v1/submissions/{id}     fetch one submission
//	GET  /api/v1/results?platform=&graph=&algorithm=   filtered results
//	GET  /api/v1/compare?graph=&algorithm=             per-platform best runtimes
//	GET  /api/v1/regressions?threshold=&window=        platforms whose kTEPS/EVPS dropped vs their history
//
// Everything is stdlib net/http + encoding/json; the store is safe for
// concurrent use.
package resultsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphalytics/internal/report"
	"graphalytics/internal/telemetry"
)

// Submission is one user-contributed benchmark report.
type Submission struct {
	ID          int64          `json:"id"`
	Submitter   string         `json:"submitter"`
	Environment string         `json:"environment"` // free-form SUT description
	SubmittedAt time.Time      `json:"submitted_at"`
	Report      *report.Report `json:"report"`
}

// Summary is the listing view of a submission.
type Summary struct {
	ID          int64     `json:"id"`
	Submitter   string    `json:"submitter"`
	Environment string    `json:"environment"`
	SubmittedAt time.Time `json:"submitted_at"`
	Runs        int       `json:"runs"`
	Platforms   []string  `json:"platforms"`
	Graphs      []string  `json:"graphs"`
}

// Store is the submission database.
type Store struct {
	mu     sync.RWMutex
	nextID int64
	subs   []*Submission
	path   string // persistence file ("" = memory only)
}

// NewStore returns an empty in-memory store.
func NewStore() *Store { return &Store{nextID: 1} }

// OpenStore loads (or creates) a file-backed store.
func OpenStore(path string) (*Store, error) {
	s := NewStore()
	s.path = path
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s, nil
	case err != nil:
		return nil, err
	}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &s.subs); err != nil {
			return nil, fmt.Errorf("resultsdb: corrupt store %s: %w", path, err)
		}
	}
	for _, sub := range s.subs {
		if sub.ID >= s.nextID {
			s.nextID = sub.ID + 1
		}
	}
	return s, nil
}

// persist writes the store to disk (caller holds the write lock).
func (s *Store) persist() error {
	if s.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(s.subs, "", " ")
	if err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}

// ErrInvalidSubmission reports a rejected submission.
var ErrInvalidSubmission = errors.New("resultsdb: invalid submission")

// Submit validates and stores a submission, returning its assigned ID.
func (s *Store) Submit(sub Submission) (int64, error) {
	if sub.Report == nil || len(sub.Report.Results) == 0 {
		return 0, fmt.Errorf("%w: empty report", ErrInvalidSubmission)
	}
	if sub.Submitter == "" {
		return 0, fmt.Errorf("%w: submitter required", ErrInvalidSubmission)
	}
	for _, r := range sub.Report.Results {
		if r.Platform == "" || r.Graph == "" || r.Algorithm == "" {
			return 0, fmt.Errorf("%w: result missing platform/graph/algorithm", ErrInvalidSubmission)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sub.ID = s.nextID
	s.nextID++
	if sub.SubmittedAt.IsZero() {
		sub.SubmittedAt = time.Now().UTC()
	}
	stored := sub
	s.subs = append(s.subs, &stored)
	if err := s.persist(); err != nil {
		// Roll back so memory never claims a submission the disk lost;
		// the caller (and its HTTP 500) sees the persist error, and the
		// counter makes a flaky volume visible on /metrics instead of
		// one-off response bodies.
		s.subs = s.subs[:len(s.subs)-1]
		s.nextID--
		telemetry.Metrics.Counter("resultsdb_persist_failures_total",
			"submissions rejected because the store could not be persisted").Inc()
		return 0, fmt.Errorf("resultsdb: persisting submission: %w", err)
	}
	return stored.ID, nil
}

// Get returns the submission with the given ID.
func (s *Store) Get(id int64) (*Submission, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sub := range s.subs {
		if sub.ID == id {
			return sub, true
		}
	}
	return nil, false
}

// List returns submission summaries, newest first.
func (s *Store) List() []Summary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Summary, 0, len(s.subs))
	for _, sub := range s.subs {
		sm := Summary{
			ID: sub.ID, Submitter: sub.Submitter, Environment: sub.Environment,
			SubmittedAt: sub.SubmittedAt, Runs: len(sub.Report.Results),
		}
		seenP, seenG := map[string]bool{}, map[string]bool{}
		for _, r := range sub.Report.Results {
			if !seenP[r.Platform] {
				seenP[r.Platform] = true
				sm.Platforms = append(sm.Platforms, r.Platform)
			}
			if !seenG[r.Graph] {
				seenG[r.Graph] = true
				sm.Graphs = append(sm.Graphs, r.Graph)
			}
		}
		sort.Strings(sm.Platforms)
		sort.Strings(sm.Graphs)
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Filter selects results across all submissions. Empty fields match
// everything.
type Filter struct {
	Platform  string
	Graph     string
	Algorithm string
}

// ResultRow is one filtered result with its provenance.
type ResultRow struct {
	SubmissionID int64            `json:"submission_id"`
	Submitter    string           `json:"submitter"`
	Result       report.RunResult `json:"result"`
}

// Results returns all result rows matching f.
func (s *Store) Results(f Filter) []ResultRow {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ResultRow
	for _, sub := range s.subs {
		for _, r := range sub.Report.Results {
			if f.Platform != "" && r.Platform != f.Platform {
				continue
			}
			if f.Graph != "" && r.Graph != f.Graph {
				continue
			}
			if f.Algorithm != "" && string(r.Algorithm) != f.Algorithm {
				continue
			}
			out = append(out, ResultRow{SubmissionID: sub.ID, Submitter: sub.Submitter, Result: r})
		}
	}
	return out
}

// Comparison is the per-platform best successful runtime for one
// (graph, algorithm) — the cross-submission leaderboard view the public
// database exists to provide.
type Comparison struct {
	Graph     string              `json:"graph"`
	Algorithm string              `json:"algorithm"`
	Best      map[string]BestCell `json:"best"`
}

// BestCell is one platform's best entry.
type BestCell struct {
	RuntimeMS    float64 `json:"runtime_ms"`
	KTEPS        float64 `json:"kteps"`
	SubmissionID int64   `json:"submission_id"`
	Submitter    string  `json:"submitter"`
}

// Compare computes the leaderboard for (graph, algorithm).
func (s *Store) Compare(graphName, algorithm string) Comparison {
	rows := s.Results(Filter{Graph: graphName, Algorithm: algorithm})
	cmp := Comparison{Graph: graphName, Algorithm: algorithm, Best: map[string]BestCell{}}
	for _, row := range rows {
		if row.Result.Status != report.StatusSuccess {
			continue
		}
		ms := float64(row.Result.Runtime) / 1e6
		cur, ok := cmp.Best[row.Result.Platform]
		if !ok || ms < cur.RuntimeMS {
			cmp.Best[row.Result.Platform] = BestCell{
				RuntimeMS:    ms,
				KTEPS:        row.Result.KTEPS,
				SubmissionID: row.SubmissionID,
				Submitter:    row.Submitter,
			}
		}
	}
	return cmp
}

// ---------------------------------------------------------------------
// HTTP service.

// Handler returns the HTTP API for the store.
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/submissions", s.handleSubmissions)
	mux.HandleFunc("/api/v1/submissions/", s.handleSubmission)
	mux.HandleFunc("/api/v1/results", s.handleResults)
	mux.HandleFunc("/api/v1/compare", s.handleCompare)
	mux.HandleFunc("/api/v1/regressions", s.handleRegressions)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Store) handleSubmissions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.List())
	case http.MethodPost:
		var sub Submission
		if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad JSON: " + err.Error()})
			return
		}
		id, err := s.Submit(sub)
		if errors.Is(err, ErrInvalidSubmission) {
			writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
			return
		}
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "method not allowed"})
	}
}

func (s *Store) handleSubmission(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "method not allowed"})
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/submissions/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad submission id"})
		return
	}
	sub, ok := s.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such submission"})
		return
	}
	writeJSON(w, http.StatusOK, sub)
}

func (s *Store) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "method not allowed"})
		return
	}
	q := r.URL.Query()
	rows := s.Results(Filter{
		Platform:  q.Get("platform"),
		Graph:     q.Get("graph"),
		Algorithm: q.Get("algorithm"),
	})
	writeJSON(w, http.StatusOK, rows)
}

func (s *Store) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "method not allowed"})
		return
	}
	q := r.URL.Query()
	graphName, algorithm := q.Get("graph"), q.Get("algorithm")
	if graphName == "" || algorithm == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "graph and algorithm query parameters required"})
		return
	}
	writeJSON(w, http.StatusOK, s.Compare(graphName, algorithm))
}
