package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"graphalytics/internal/graph"
	"graphalytics/internal/stamp"
	"graphalytics/internal/telemetry"
)

// Cache is a content-addressed artifact store rooted at one directory.
type Cache struct {
	dir string
	// Verify enables verify-on-read: graph artifacts recompute their
	// GALB content checksum, ETL blobs are checked against their .sum
	// sidecar. Off by default (the formats' own parsers already catch
	// gross corruption; full verification costs one hash pass per read).
	Verify bool
}

// Open prepares the cache directories under dir.
func Open(dir string) (*Cache, error) {
	for _, sub := range []string{"graphs", "etl"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: creating cache: %w", err)
		}
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// StampStorePath returns the path of the stamped result store that
// lives alongside the artifacts.
func (c *Cache) StampStorePath() string { return filepath.Join(c.dir, "stamps.jsonl") }

// GraphPath returns the artifact path of a dataset fingerprint.
func (c *Cache) GraphPath(fp stamp.Fingerprint) string {
	return filepath.Join(c.dir, "graphs", fp.String()+".galb")
}

func etlPath(dir string, fp stamp.Fingerprint) string {
	return filepath.Join(dir, "etl", fp.String()+".bin")
}

// LoadGraph fetches the graph stored under fp. It returns (nil, false,
// nil) on a clean miss and a non-nil error when the artifact exists but
// is unreadable or fails verification — the caller regenerates and
// overwrites in both of the latter cases.
func (c *Cache) LoadGraph(fp stamp.Fingerprint, workers int) (*graph.Graph, bool, error) {
	path := c.GraphPath(fp)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		counter("artifact_graph_misses_total", "graph artifact cache misses").Inc()
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("artifact: reading graph %s: %w", fp.Short(), err)
	}
	sp := telemetry.StartSpan("artifact", "graph-load:"+fp.Short())
	defer sp.End()
	var g *graph.Graph
	if c.Verify {
		g, err = graph.ReadBinaryVerify(data, workers)
	} else {
		g, err = graph.ReadBinaryWorkers(readerOf(data), workers)
	}
	if err != nil {
		counter("artifact_verify_failures_total", "artifacts that failed verification or parsing on read").Inc()
		return nil, false, fmt.Errorf("artifact: graph %s: %w", fp.Short(), err)
	}
	counter("artifact_graph_hits_total", "graph artifact cache hits").Inc()
	return g, true, nil
}

// StoreGraph writes g under fp (checksummed, atomically). An existing
// artifact is overwritten — the fingerprint names the content, so a
// rewrite is only ever a repair.
func (c *Cache) StoreGraph(fp stamp.Fingerprint, g *graph.Graph) error {
	sp := telemetry.StartSpan("artifact", "graph-store:"+fp.Short())
	defer sp.End()
	return atomicWrite(c.GraphPath(fp), func(w io.Writer) error {
		_, err := g.WriteBinaryChecksummed(w)
		return err
	})
}

// OpenETL fetches the ETL blob stored under fp. Returns (nil, false,
// nil) on a clean miss; with Verify set, the blob is hashed against its
// .sum sidecar first and a mismatch is an error (treat as corrupt and
// regenerate).
func (c *Cache) OpenETL(fp stamp.Fingerprint) (io.ReadCloser, bool, error) {
	path := etlPath(c.dir, fp)
	if c.Verify {
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			counter("artifact_etl_misses_total", "ETL artifact cache misses").Inc()
			return nil, false, nil
		}
		if err != nil {
			return nil, false, fmt.Errorf("artifact: reading ETL %s: %w", fp.Short(), err)
		}
		want, err := os.ReadFile(path + ".sum")
		if err != nil {
			counter("artifact_verify_failures_total", "artifacts that failed verification or parsing on read").Inc()
			return nil, false, fmt.Errorf("artifact: ETL %s: missing checksum sidecar: %w", fp.Short(), err)
		}
		if got := sha256.Sum256(data); hex.EncodeToString(got[:]) != string(want) {
			counter("artifact_verify_failures_total", "artifacts that failed verification or parsing on read").Inc()
			return nil, false, fmt.Errorf("artifact: ETL %s: checksum mismatch", fp.Short())
		}
		counter("artifact_etl_hits_total", "ETL artifact cache hits").Inc()
		return io.NopCloser(readerOf(data)), true, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		counter("artifact_etl_misses_total", "ETL artifact cache misses").Inc()
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("artifact: reading ETL %s: %w", fp.Short(), err)
	}
	counter("artifact_etl_hits_total", "ETL artifact cache hits").Inc()
	return f, true, nil
}

// StoreETL writes an ETL blob under fp via the platform-provided write
// function, atomically, with a checksum sidecar computed on write.
func (c *Cache) StoreETL(fp stamp.Fingerprint, write func(io.Writer) error) error {
	sp := telemetry.StartSpan("artifact", "etl-store:"+fp.Short())
	defer sp.End()
	path := etlPath(c.dir, fp)
	h := sha256.New()
	if err := atomicWrite(path, func(w io.Writer) error {
		return write(io.MultiWriter(w, h))
	}); err != nil {
		return err
	}
	sum := h.Sum(nil)
	return atomicWrite(path+".sum", func(w io.Writer) error {
		_, err := io.WriteString(w, hex.EncodeToString(sum))
		return err
	})
}

// atomicWrite writes via a temp file in the target directory and
// renames into place, so readers never observe a partial artifact.
func atomicWrite(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	return nil
}

func counter(name, help string) *telemetry.Counter {
	return telemetry.Metrics.Counter(name, help)
}

func readerOf(data []byte) *bytes.Reader { return bytes.NewReader(data) }
