package artifact

import (
	"io"
	"os"
	"strings"
	"testing"

	"graphalytics/internal/graph"
	"graphalytics/internal/stamp"
)

func testGraph(name string) *graph.Graph {
	return graph.FromArcs(name, 5,
		[]graph.VertexID{0, 1, 2, 3},
		[]graph.VertexID{1, 2, 3, 4},
		false)
}

func openCache(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGraphStoreLoadRoundTrip(t *testing.T) {
	c := openCache(t)
	c.Verify = true
	g := testGraph("cached")
	fp := stamp.Dataset("test", "g=1")

	if got, hit, err := c.LoadGraph(fp, 0); got != nil || hit || err != nil {
		t.Fatalf("empty cache: %v, %v, %v", got, hit, err)
	}
	if err := c.StoreGraph(fp, g); err != nil {
		t.Fatal(err)
	}
	back, hit, err := c.LoadGraph(fp, 0)
	if err != nil || !hit {
		t.Fatalf("LoadGraph = hit=%v err=%v", hit, err)
	}
	if back.Name() != g.Name() || back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("restored graph differs: %v vs %v", back, g)
	}
}

// A corrupted graph artifact must surface as an error (so the caller
// regenerates), never as a silently wrong graph.
func TestGraphVerifyOnReadDetectsCorruption(t *testing.T) {
	c := openCache(t)
	c.Verify = true
	fp := stamp.Dataset("test", "g=2")
	if err := c.StoreGraph(fp, testGraph("rot")); err != nil {
		t.Fatal(err)
	}
	path := c.GraphPath(fp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.LoadGraph(fp, 0); err == nil {
		t.Fatal("corrupted graph artifact loaded without error")
	}
	// Overwrite repairs the artifact.
	if err := c.StoreGraph(fp, testGraph("rot")); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.LoadGraph(fp, 0); !hit || err != nil {
		t.Fatalf("after repair: hit=%v err=%v", hit, err)
	}
}

func TestETLStoreOpenRoundTrip(t *testing.T) {
	c := openCache(t)
	c.Verify = true
	fp := stamp.ETL(stamp.Dataset("test", "g=3"), "graphdb", "cfg", "v1", "bin")

	if _, hit, err := c.OpenETL(fp); hit || err != nil {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}
	blob := "platform-defined ETL payload"
	if err := c.StoreETL(fp, func(w io.Writer) error {
		_, err := io.WriteString(w, blob)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rc, hit, err := c.OpenETL(fp)
	if err != nil || !hit {
		t.Fatalf("OpenETL = hit=%v err=%v", hit, err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != blob {
		t.Fatalf("restored blob %q err=%v", got, err)
	}
}

func TestETLVerifyOnReadDetectsCorruption(t *testing.T) {
	c := openCache(t)
	c.Verify = true
	fp := stamp.ETL(stamp.Dataset("test", "g=4"), "graphdb", "cfg", "v1", "bin")
	if err := c.StoreETL(fp, func(w io.Writer) error {
		_, err := io.WriteString(w, "payload")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	path := etlPath(c.Dir(), fp)
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.OpenETL(fp)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered ETL blob: err = %v, want checksum mismatch", err)
	}
}

// Without Verify, reads skip hashing but a clean miss still reports
// (nil, false, nil).
func TestETLNoVerifyPath(t *testing.T) {
	c := openCache(t)
	fp := stamp.ETL(stamp.Dataset("test", "g=5"), "graphdb", "cfg", "v1", "bin")
	if _, hit, err := c.OpenETL(fp); hit || err != nil {
		t.Fatalf("miss: hit=%v err=%v", hit, err)
	}
	if err := c.StoreETL(fp, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rc, hit, err := c.OpenETL(fp)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	rc.Close()
}
