// Package artifact implements the content-addressed artifact cache of
// the incremental campaign engine: expensive intermediates — generated
// datagen/R-MAT graphs and per-(platform, graph) ETL outputs — are
// stored on disk under their fingerprint and reused across campaign
// runs, so iterating on one platform never regenerates the world.
//
// Layout under the cache root (the -cache-dir flag):
//
//	graphs/<fp>.galb   checksummed GALB graph (content hash on write)
//	etl/<fp>.bin       platform-defined ETL blob + .sum sidecar
//	stamps.jsonl       the stamped result store (see internal/stamp)
//
// Writes are atomic (temp file + rename), so a crashed run never leaves
// a half-written artifact behind a valid name. Verification on read is
// optional (Verify field / -cache-verify): a corrupted artifact is
// reported to the caller, which regenerates and overwrites it — never
// trusted.
//
// The same cache backs every execution mode: local campaigns fill and
// read it directly, a distributed campaign manager serves blobs out of
// it to runners, and runner processes keep their own cache so an
// artifact crosses the wire at most once per machine (see
// internal/dist and docs/OPERATIONS.md).
package artifact
