package workload

import (
	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/validation"
)

// The built-in workload suite: the source paper's five algorithms in
// its reporting order, then the three LDBC Graphalytics v1.0.1
// additions. Registration order is the report row order.
//
// Aliases follow the LDBC naming: WCC for CONN, CDLP for CD, PAGERANK
// for PR. Each Validate asserts its output type before delegating to
// the typed validator, so a platform returning the wrong type is an
// invalid result, not a panic.
func init() {
	Register(Spec{
		Kind:        algo.BFS,
		Description: "breadth-first search depths from a seed vertex",
		Policy:      PolicyExact,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunBFS(g, p.Source)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.BFSOutput)
			if !okT {
				return validation.Fail("BFS output has type %T", output)
			}
			return validation.ValidateBFS(g, p.Source, got)
		},
	})
	Register(Spec{
		Kind:         algo.CD,
		Aliases:      []string{"CDLP"},
		Description:  "community detection by Leung label propagation",
		Policy:       PolicyExact,
		NeedsReverse: true,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunCD(g, p)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.CDOutput)
			if !okT {
				return validation.Fail("CD output has type %T", output)
			}
			return validation.ValidateCD(g, p, got)
		},
	})
	Register(Spec{
		Kind:         algo.CONN,
		Aliases:      []string{"WCC"},
		Description:  "connected components (weak, labels = component minima)",
		Policy:       PolicyExact,
		NeedsReverse: true,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunConn(g)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.ConnOutput)
			if !okT {
				return validation.Fail("CONN output has type %T", output)
			}
			return validation.ValidateConn(g, got)
		},
	})
	Register(Spec{
		Kind:         algo.EVO,
		Description:  "forest-fire graph evolution prediction",
		Policy:       PolicyExact,
		NeedsReverse: true,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunEvo(g, p)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.EvoOutput)
			if !okT {
				return validation.Fail("EVO output has type %T", output)
			}
			return validation.ValidateEvo(g, p, got)
		},
	})
	Register(Spec{
		Kind:         algo.STATS,
		Description:  "vertex/edge counts and mean local clustering coefficient",
		Policy:       PolicyEpsilon,
		NeedsReverse: true,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunStats(g)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.StatsOutput)
			if !okT {
				return validation.Fail("STATS output has type %T", output)
			}
			return validation.ValidateStats(g, got)
		},
	})
	Register(Spec{
		Kind:        algo.PR,
		Aliases:     []string{"PAGERANK"},
		Description: "PageRank, damping 0.85, fixed iteration count",
		Policy:      PolicyEpsilon,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunPageRank(g, p)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.PROutput)
			if !okT {
				return validation.Fail("PR output has type %T", output)
			}
			return validation.ValidatePageRank(g, p, got)
		},
	})
	Register(Spec{
		Kind:         algo.SSSP,
		Description:  "single-source shortest paths over float64 edge weights",
		Policy:       PolicyExact,
		NeedsWeights: true,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunSSSP(g, p.Source)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.SSSPOutput)
			if !okT {
				return validation.Fail("SSSP output has type %T", output)
			}
			return validation.ValidateSSSP(g, p.Source, got)
		},
	})
	Register(Spec{
		Kind:         algo.LCC,
		Description:  "per-vertex local clustering coefficient",
		Policy:       PolicyEpsilon,
		NeedsReverse: true,
		Reference: func(g *graph.Graph, p algo.Params) any {
			return algo.RunLCC(g)
		},
		Validate: func(g *graph.Graph, p algo.Params, output any) validation.Result {
			got, okT := output.(algo.LCCOutput)
			if !okT {
				return validation.Fail("LCC output has type %T", output)
			}
			return validation.ValidateLCC(g, got)
		},
	})
}
