// Package workload is the workload registry: the single place where a
// benchmark workload is described — its name and aliases, its reference
// implementation, its output-validation policy, and the graph
// capabilities it needs. The harness (internal/core), the Report
// Generator (internal/report), the conformance suite
// (internal/platform/platformtest), and the CLI all iterate this
// registry instead of a hardcoded algorithm list, so adding a workload
// is one Register call plus platform implementations — not an edit in
// every layer.
//
// The built-in registrations (builtin.go) cover the source paper's five
// workloads (BFS, CD, CONN, EVO, STATS) and the three the LDBC
// Graphalytics benchmark v1.0.1 added (PR, SSSP, LCC).
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/validation"
)

// Policy names the output-comparison policy a workload validates under.
// The policies themselves live in internal/validation; the registry
// records which one a workload's Validate function applies so reports
// and docs can state the acceptance criterion.
type Policy string

// The validation policies.
const (
	// PolicyExact: outputs must match the reference bit-identically.
	PolicyExact Policy = "exact"
	// PolicyEpsilon: float outputs must match within a per-element
	// tolerance.
	PolicyEpsilon Policy = "epsilon"
	// PolicyRankTolerant: the induced ordering must match up to ties
	// within a tolerance (applied in addition to epsilon for PR).
	PolicyRankTolerant Policy = "rank-tolerant"
)

// Spec is one self-describing workload.
type Spec struct {
	// Kind is the algorithm identifier platforms dispatch on.
	Kind algo.Kind
	// Aliases are alternate names Parse accepts (e.g. the LDBC names
	// "wcc" for CONN and "cdlp" for CD). Case-insensitive.
	Aliases []string
	// Description is a one-line summary for reports and -help output.
	Description string
	// Policy names the validation policy Validate applies.
	Policy Policy
	// NeedsWeights marks workloads that consume edge weights (SSSP).
	// Unweighted graphs still run them with unit weights.
	NeedsWeights bool
	// NeedsReverse marks workloads whose specification reads in-edges
	// (the N(v) = out ∪ in neighborhood), which directed graphs only
	// have when built with reverse adjacency.
	NeedsReverse bool
	// Reference runs the sequential reference implementation — the
	// Output Validator's gold standard.
	Reference func(g *graph.Graph, p algo.Params) any
	// Validate checks a platform output against the reference under the
	// workload's policy. Params must already carry defaults.
	Validate func(g *graph.Graph, p algo.Params, output any) validation.Result
}

// Name returns the canonical workload name (the Kind string).
func (s Spec) Name() string { return string(s.Kind) }

// Supports reports whether g satisfies the workload's hard graph
// capability requirements (a nil error means it runs; soft requirements
// like weights degrade to unit weights instead of failing).
func (s Spec) Supports(g *graph.Graph) error {
	if s.NeedsReverse && g.Directed() && !g.HasReverse() {
		return fmt.Errorf("workload %s needs reverse adjacency on directed graphs (build with WithReverse)", s.Kind)
	}
	return nil
}

// registry state. Registration happens in package init functions
// (builtin.go) and, for external workloads, from user init code; reads
// dominate after startup, so a plain mutex is fine.
var (
	mu      sync.RWMutex
	ordered []Spec                   // registration order = report order
	byKind  = map[algo.Kind]int{}    // kind -> index in ordered
	byName  = map[string]algo.Kind{} // lowercased name/alias -> kind
)

// Register adds a workload to the registry. It panics on a duplicate
// kind or alias, or on a spec missing its Reference or Validate
// function — these are programming errors caught at init.
func Register(s Spec) {
	if s.Kind == "" || s.Reference == nil || s.Validate == nil {
		panic("workload: Register needs Kind, Reference, and Validate")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byKind[s.Kind]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %s", s.Kind))
	}
	for _, name := range append([]string{string(s.Kind)}, s.Aliases...) {
		key := strings.ToLower(name)
		if prev, dup := byName[key]; dup {
			panic(fmt.Sprintf("workload: name %q already registered by %s", name, prev))
		}
		byName[key] = s.Kind
	}
	byKind[s.Kind] = len(ordered)
	ordered = append(ordered, s)
}

// All returns every registered workload in registration order (the
// canonical report row order).
func All() []Spec {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Spec, len(ordered))
	copy(out, ordered)
	return out
}

// Kinds returns the registered algorithm kinds in registration order.
func Kinds() []algo.Kind {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]algo.Kind, len(ordered))
	for i, s := range ordered {
		out[i] = s.Kind
	}
	return out
}

// Lookup returns the spec registered for kind.
func Lookup(kind algo.Kind) (Spec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	i, okL := byKind[kind]
	if !okL {
		return Spec{}, false
	}
	return ordered[i], true
}

// Parse resolves a workload name or alias (any case) to its spec. The
// error lists the known names, so a typo in -algorithms is
// self-explaining.
func Parse(name string) (Spec, error) {
	mu.RLock()
	defer mu.RUnlock()
	kind, okN := byName[strings.ToLower(strings.TrimSpace(name))]
	if !okN {
		known := make([]string, 0, len(byName))
		for n := range byName {
			known = append(known, n)
		}
		sort.Strings(known)
		return Spec{}, fmt.Errorf("workload: unknown workload %q (known: %s)", name, strings.Join(known, ", "))
	}
	return ordered[byKind[kind]], nil
}

// Validate checks a platform output for kind against its registered
// reference. It is the Output Validator's dispatch: the harness calls
// it with whatever a platform returned.
func Validate(g *graph.Graph, kind algo.Kind, p algo.Params, output any) validation.Result {
	s, okL := Lookup(kind)
	if !okL {
		return validation.Fail("unknown workload %s", kind)
	}
	return s.Validate(g, p, output)
}
