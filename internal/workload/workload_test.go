package workload

import (
	"strings"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuiltinRegistrations(t *testing.T) {
	specs := All()
	if len(specs) != 8 {
		t.Fatalf("registered workloads = %d, want 8", len(specs))
	}
	// The paper's five first (its reporting order), then the LDBC three.
	wantOrder := []algo.Kind{algo.BFS, algo.CD, algo.CONN, algo.EVO, algo.STATS, algo.PR, algo.SSSP, algo.LCC}
	for i, k := range Kinds() {
		if k != wantOrder[i] {
			t.Errorf("Kinds()[%d] = %s, want %s", i, k, wantOrder[i])
		}
	}
	for _, s := range specs {
		if s.Description == "" || s.Policy == "" {
			t.Errorf("%s: incomplete spec %+v", s.Kind, s)
		}
		if _, okL := Lookup(s.Kind); !okL {
			t.Errorf("Lookup(%s) failed", s.Kind)
		}
	}
}

func TestParseNamesAndAliases(t *testing.T) {
	cases := map[string]algo.Kind{
		"BFS":      algo.BFS,
		"bfs":      algo.BFS,
		"wcc":      algo.CONN,
		"CDLP":     algo.CD,
		"pagerank": algo.PR,
		"pr":       algo.PR,
		"sssp":     algo.SSSP,
		"Lcc":      algo.LCC,
		" stats ":  algo.STATS,
	}
	for name, want := range cases {
		s, err := Parse(name)
		if err != nil || s.Kind != want {
			t.Errorf("Parse(%q) = %v, %v; want %s", name, s.Kind, err, want)
		}
	}
	if _, err := Parse("nope"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("Parse of unknown name should list known workloads, got %v", err)
	}
}

func TestValidateDispatch(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{Source: 0, Seed: 5}.WithDefaults(g.NumVertices())
	for _, s := range All() {
		out := s.Reference(g, params)
		if r := Validate(g, s.Kind, params, out); !r.Valid {
			t.Errorf("%s: reference output rejected: %s", s.Kind, r.Detail)
		}
		if r := Validate(g, s.Kind, params, "bogus"); r.Valid {
			t.Errorf("%s: wrong output type accepted", s.Kind)
		}
	}
	if r := Validate(g, algo.Kind("XX"), params, nil); r.Valid {
		t.Error("unknown kind accepted")
	}
}

func TestSupports(t *testing.T) {
	// A directed graph without reverse adjacency cannot run the
	// neighborhood workloads.
	b := graph.NewBuilder(graph.Directed(true))
	b.AddEdgeID(0, 1)
	b.AddEdgeID(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lcc, _ := Lookup(algo.LCC)
	if err := lcc.Supports(g); err == nil {
		t.Error("LCC on directed graph without reverse adjacency should be unsupported")
	}
	bfs, _ := Lookup(algo.BFS)
	if err := bfs.Supports(g); err != nil {
		t.Errorf("BFS should be supported: %v", err)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	Register(All()[0])
}
