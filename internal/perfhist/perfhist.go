// Package perfhist is the analysis layer over the benchmark snapshots
// the observability spine emits (BENCH_*.json from cmd/benchsnap): it
// parses `go test -bench` output into snapshots, aggregates repeated
// samples (-count N) into per-benchmark statistics, and compares two
// snapshots with noise-aware thresholds, producing a typed verdict per
// benchmark (improved / unchanged / regressed / new / removed).
//
// The comparison follows the methodology the benchmarking literature
// insists on: a relative-delta threshold alone flags noise, so the
// effective threshold per benchmark widens with the measured variance
// (when multi-sample data is present) and an absolute minimum-effect
// floor suppresses microsecond jitter on sub-millisecond benchmarks.
package perfhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line (one sample; `-count N`
// yields N entries with the same name).
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds the remaining per-op columns (B/op, allocs/op, and
	// any b.ReportMetric units) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one BENCH_*.json file.
type Snapshot struct {
	Group     string `json:"group"` // "core" or "ingest"
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Generated string `json:"generated"`        // RFC 3339
	Commit    string `json:"commit,omitempty"` // git revision the snapshot was taken at
	// Count is the -count the suite ran with (0/1 = single sample per
	// benchmark; >1 gives Compare variance to reason about).
	Count      int     `json:"count,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   100   123456 ns/op   extra...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// Parse extracts benchmark entries from go test -bench output. Repeated
// names (from -count) stay separate entries in input order.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		// The tail alternates "value unit" pairs (B/op, allocs/op,
		// b.ReportMetric units).
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[fields[i+1]] = v
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// ReadSnapshot loads one BENCH_*.json file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perfhist: %s: %w", path, err)
	}
	return &s, nil
}

// Stat is the aggregate of one benchmark's samples within a snapshot.
type Stat struct {
	Name string `json:"name"`
	// N is the number of samples (entries with this name).
	N      int     `json:"n"`
	Mean   float64 `json:"mean_ns_per_op"`
	Min    float64 `json:"min_ns_per_op"`
	Max    float64 `json:"max_ns_per_op"`
	Stddev float64 `json:"stddev_ns_per_op,omitempty"`
	// Metrics holds the per-unit sample means (B/op, allocs/op, custom
	// b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// RelStddev is the coefficient of variation (stddev/mean), 0 for
// single-sample or zero-mean stats.
func (s Stat) RelStddev() float64 {
	if s.N < 2 || s.Mean <= 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// Aggregate folds a snapshot's entries into one Stat per benchmark
// name, sorted by name.
func Aggregate(s *Snapshot) []Stat {
	byName := map[string][]Entry{}
	var order []string
	for _, e := range s.Benchmarks {
		if _, ok := byName[e.Name]; !ok {
			order = append(order, e.Name)
		}
		byName[e.Name] = append(byName[e.Name], e)
	}
	sort.Strings(order)
	out := make([]Stat, 0, len(order))
	for _, name := range order {
		out = append(out, aggregateSamples(name, byName[name]))
	}
	return out
}

func aggregateSamples(name string, samples []Entry) Stat {
	st := Stat{Name: name, N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	metricSums := map[string]float64{}
	metricNs := map[string]int{}
	for _, e := range samples {
		sum += e.NsPerOp
		st.Min = math.Min(st.Min, e.NsPerOp)
		st.Max = math.Max(st.Max, e.NsPerOp)
		for unit, v := range e.Metrics {
			metricSums[unit] += v
			metricNs[unit]++
		}
	}
	st.Mean = sum / float64(st.N)
	if st.N > 1 {
		var sq float64
		for _, e := range samples {
			d := e.NsPerOp - st.Mean
			sq += d * d
		}
		st.Stddev = math.Sqrt(sq / float64(st.N-1))
	}
	if len(metricSums) > 0 {
		st.Metrics = make(map[string]float64, len(metricSums))
		for unit, s := range metricSums {
			st.Metrics[unit] = s / float64(metricNs[unit])
		}
	}
	return st
}

// Verdict classifies one benchmark across two snapshots.
type Verdict string

// Comparison verdicts.
const (
	Improved  Verdict = "improved"  // significantly faster
	Unchanged Verdict = "unchanged" // within noise/threshold
	Regressed Verdict = "regressed" // significantly slower
	New       Verdict = "new"       // only in the new snapshot
	Removed   Verdict = "removed"   // only in the old snapshot
)

// Options tunes the noise model of Compare.
type Options struct {
	// Threshold is the minimum relative ns/op delta considered
	// significant (default 0.10 = 10%).
	Threshold float64
	// MinEffectNs is the absolute floor: deltas smaller than this many
	// ns/op are always Unchanged regardless of the relative change
	// (default 50µs). Sub-millisecond benchmarks jitter by scheduling
	// noise alone; without a floor they dominate every diff.
	MinEffectNs float64
	// NoiseSigmas widens the effective threshold to k·σ_rel when both
	// sides carry multi-sample variance (default 3): the threshold
	// becomes max(Threshold, NoiseSigmas·sqrt(relVar_old+relVar_new)).
	NoiseSigmas float64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 0.10
	}
	if o.MinEffectNs <= 0 {
		o.MinEffectNs = 50_000 // 50µs
	}
	if o.NoiseSigmas <= 0 {
		o.NoiseSigmas = 3
	}
	return o
}

// Delta is the comparison outcome for one benchmark.
type Delta struct {
	Name    string  `json:"name"`
	Verdict Verdict `json:"verdict"`
	// OldMean/NewMean are mean ns/op (0 for the missing side of
	// new/removed).
	OldMean float64 `json:"old_ns_per_op,omitempty"`
	NewMean float64 `json:"new_ns_per_op,omitempty"`
	OldN    int     `json:"old_n,omitempty"`
	NewN    int     `json:"new_n,omitempty"`
	// Ratio is new/old (>1 = slower). 0 for new/removed.
	Ratio float64 `json:"ratio,omitempty"`
	// Threshold is the effective relative threshold used for this
	// benchmark after noise widening.
	Threshold float64 `json:"threshold,omitempty"`
}

// RelDelta is (new-old)/old; positive means slower.
func (d Delta) RelDelta() float64 {
	if d.OldMean <= 0 {
		return 0
	}
	return (d.NewMean - d.OldMean) / d.OldMean
}

// Compare classifies every benchmark across two snapshots. Results are
// sorted: regressions first (worst ratio first), then improvements,
// then new/removed, then unchanged, each name-sorted within its class.
func Compare(old, cur *Snapshot, opts Options) []Delta {
	opts = opts.withDefaults()
	oldStats := statMap(Aggregate(old))
	newStats := statMap(Aggregate(cur))

	names := map[string]bool{}
	for n := range oldStats {
		names[n] = true
	}
	for n := range newStats {
		names[n] = true
	}

	out := make([]Delta, 0, len(names))
	for name := range names {
		o, hasOld := oldStats[name]
		n, hasNew := newStats[name]
		switch {
		case !hasOld:
			out = append(out, Delta{Name: name, Verdict: New, NewMean: n.Mean, NewN: n.N})
		case !hasNew:
			out = append(out, Delta{Name: name, Verdict: Removed, OldMean: o.Mean, OldN: o.N})
		default:
			out = append(out, classify(o, n, opts))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if ra, rb := verdictRank(a.Verdict), verdictRank(b.Verdict); ra != rb {
			return ra < rb
		}
		if a.Verdict == Regressed && a.Ratio != b.Ratio {
			return a.Ratio > b.Ratio // worst slowdown first
		}
		return a.Name < b.Name
	})
	return out
}

func verdictRank(v Verdict) int {
	switch v {
	case Regressed:
		return 0
	case Improved:
		return 1
	case New:
		return 2
	case Removed:
		return 3
	}
	return 4
}

func statMap(stats []Stat) map[string]Stat {
	m := make(map[string]Stat, len(stats))
	for _, s := range stats {
		m[s.Name] = s
	}
	return m
}

// classify applies the noise model to one paired benchmark.
func classify(o, n Stat, opts Options) Delta {
	d := Delta{
		Name:    o.Name,
		OldMean: o.Mean, NewMean: n.Mean,
		OldN: o.N, NewN: n.N,
	}
	if o.Mean > 0 {
		d.Ratio = n.Mean / o.Mean
	}
	// Effective threshold: the static floor, widened to k·σ_rel when
	// variance is available on either side (single-sample sides
	// contribute zero, which keeps the static floor in charge).
	relVar := o.RelStddev()*o.RelStddev() + n.RelStddev()*n.RelStddev()
	d.Threshold = math.Max(opts.Threshold, opts.NoiseSigmas*math.Sqrt(relVar))

	rel := d.RelDelta()
	abs := math.Abs(n.Mean - o.Mean)
	switch {
	case abs < opts.MinEffectNs || math.Abs(rel) <= d.Threshold:
		d.Verdict = Unchanged
	case rel > 0:
		d.Verdict = Regressed
	default:
		d.Verdict = Improved
	}
	return d
}

// Summary counts deltas per verdict.
func Summary(deltas []Delta) map[Verdict]int {
	m := map[Verdict]int{}
	for _, d := range deltas {
		m[d.Verdict]++
	}
	return m
}

// FormatNs renders a ns/op value with an adaptive unit for tables.
func FormatNs(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}
