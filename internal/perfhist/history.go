package perfhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// HistoryEntry is one line of the append-only BENCH_history.jsonl
// trend file: the aggregated stats of one snapshot, keyed by commit.
// One line per (commit, group) makes the file trivially greppable and
// mergeable — append-only, never rewritten.
type HistoryEntry struct {
	Commit    string `json:"commit"`
	Group     string `json:"group"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version,omitempty"`
	Stats     []Stat `json:"stats"`
}

// HistoryFromSnapshot aggregates a snapshot into its history line.
func HistoryFromSnapshot(s *Snapshot) HistoryEntry {
	return HistoryEntry{
		Commit:    s.Commit,
		Group:     s.Group,
		Generated: s.Generated,
		GoVersion: s.GoVersion,
		Stats:     Aggregate(s),
	}
}

// AppendHistory appends one entry to the JSONL trend file, creating it
// if needed. Entries for a commit already present are appended anyway:
// the reader keeps the last line per (commit, group), so re-running a
// snapshot supersedes rather than corrupts.
func AppendHistory(path string, e HistoryEntry) error {
	if e.Commit == "" {
		return fmt.Errorf("perfhist: history entry needs a commit key")
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadHistory loads the trend file, newest last, keeping only the last
// line per (commit, group). Blank lines are skipped; a malformed line
// fails with its line number so a bad merge is findable.
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var entries []HistoryEntry
	last := map[string]int{} // commit|group → index in entries
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("perfhist: %s:%d: %w", path, line, err)
		}
		key := e.Commit + "|" + e.Group
		if i, ok := last[key]; ok {
			entries[i] = e
			continue
		}
		last[key] = len(entries)
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// Trend extracts one benchmark's mean ns/op across history entries (in
// file order, i.e. oldest first), for trend lines across commits.
type TrendPoint struct {
	Commit  string  `json:"commit"`
	NsPerOp float64 `json:"ns_per_op"`
	N       int     `json:"n"`
}

// Trend returns the per-commit series for one benchmark name (entries
// lacking the benchmark are skipped).
func Trend(entries []HistoryEntry, name string) []TrendPoint {
	var out []TrendPoint
	for _, e := range entries {
		for _, s := range e.Stats {
			if s.Name == name {
				out = append(out, TrendPoint{Commit: e.Commit, NsPerOp: s.Mean, N: s.N})
				break
			}
		}
	}
	return out
}
