package perfhist

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: graphalytics
BenchmarkPageRankHotLoop/social-5000-8         	     100	  123456 ns/op	  2048 B/op	      12 allocs/op
BenchmarkPageRankHotLoop/social-5000-8         	     100	  123800 ns/op	  2048 B/op	      12 allocs/op
BenchmarkLoadEdgeList/parallel-8               	       1	 9876543 ns/op	 5000000 edges/s
BenchmarkBuildCSR-8                            	       2	  456789.5 ns/op
not a bench line
PASS
`

func TestParseKeepsRepeatedSamples(t *testing.T) {
	entries, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("got %d entries, want 4: %+v", len(entries), entries)
	}
	if entries[0].Name != entries[1].Name {
		t.Fatalf("repeated -count samples should keep the same name: %q vs %q", entries[0].Name, entries[1].Name)
	}
	if entries[0].Metrics["B/op"] != 2048 || entries[0].Metrics["allocs/op"] != 12 {
		t.Fatalf("memory metrics: %v", entries[0].Metrics)
	}
	if entries[2].Metrics["edges/s"] != 5000000 {
		t.Fatalf("custom metric: %v", entries[2].Metrics)
	}
}

func TestAggregate(t *testing.T) {
	entries, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	stats := Aggregate(&Snapshot{Benchmarks: entries})
	if len(stats) != 3 {
		t.Fatalf("got %d stats, want 3: %+v", len(stats), stats)
	}
	var pr *Stat
	for i := range stats {
		if stats[i].Name == "BenchmarkPageRankHotLoop/social-5000" {
			pr = &stats[i]
		}
	}
	if pr == nil {
		t.Fatal("PageRank stat missing")
	}
	if pr.N != 2 {
		t.Fatalf("N = %d, want 2", pr.N)
	}
	if want := (123456.0 + 123800.0) / 2; math.Abs(pr.Mean-want) > 1e-9 {
		t.Fatalf("mean = %f, want %f", pr.Mean, want)
	}
	if pr.Min != 123456 || pr.Max != 123800 {
		t.Fatalf("min/max = %f/%f", pr.Min, pr.Max)
	}
	if pr.Stddev <= 0 {
		t.Fatalf("stddev = %f, want > 0 for 2 samples", pr.Stddev)
	}
	if pr.Metrics["B/op"] != 2048 {
		t.Fatalf("aggregated metrics: %v", pr.Metrics)
	}
}

func snap(entries ...Entry) *Snapshot {
	return &Snapshot{Group: "core", Benchmarks: entries}
}

func entry(name string, ns float64) Entry {
	return Entry{Name: name, Iterations: 1, NsPerOp: ns}
}

func find(deltas []Delta, name string) *Delta {
	for i := range deltas {
		if deltas[i].Name == name {
			return &deltas[i]
		}
	}
	return nil
}

func TestCompareIdenticalIsUnchanged(t *testing.T) {
	s := snap(entry("BenchmarkA", 5e6), entry("BenchmarkB", 2e8))
	deltas := Compare(s, s, Options{})
	for _, d := range deltas {
		if d.Verdict != Unchanged {
			t.Errorf("%s: verdict %s on identical snapshots", d.Name, d.Verdict)
		}
	}
}

func TestCompareDetectsSlowdownAndSpeedup(t *testing.T) {
	old := snap(entry("BenchmarkSlow", 5e6), entry("BenchmarkFast", 8e6))
	cur := snap(entry("BenchmarkSlow", 10e6), entry("BenchmarkFast", 4e6))
	deltas := Compare(old, cur, Options{})
	if d := find(deltas, "BenchmarkSlow"); d == nil || d.Verdict != Regressed {
		t.Fatalf("2x slowdown: %+v", d)
	} else if math.Abs(d.Ratio-2) > 1e-9 {
		t.Fatalf("ratio = %f, want 2", d.Ratio)
	}
	if d := find(deltas, "BenchmarkFast"); d == nil || d.Verdict != Improved {
		t.Fatalf("2x speedup: %+v", d)
	}
	// Regressions sort first.
	if deltas[0].Verdict != Regressed {
		t.Fatalf("order: %+v", deltas)
	}
}

func TestCompareNewAndRemoved(t *testing.T) {
	old := snap(entry("BenchmarkGone", 1e6))
	cur := snap(entry("BenchmarkBorn", 1e6))
	deltas := Compare(old, cur, Options{})
	if d := find(deltas, "BenchmarkGone"); d == nil || d.Verdict != Removed {
		t.Fatalf("removed: %+v", d)
	}
	if d := find(deltas, "BenchmarkBorn"); d == nil || d.Verdict != New {
		t.Fatalf("new: %+v", d)
	}
}

func TestCompareMinEffectFloor(t *testing.T) {
	// 3x slower but only 3µs absolute: below the 50µs default floor,
	// so it must read as noise, not regression.
	old := snap(entry("BenchmarkTiny", 1_000))
	cur := snap(entry("BenchmarkTiny", 4_000))
	deltas := Compare(old, cur, Options{})
	if d := find(deltas, "BenchmarkTiny"); d.Verdict != Unchanged {
		t.Fatalf("sub-floor delta flagged: %+v", d)
	}
	// The same relative change above the floor regresses.
	old = snap(entry("BenchmarkBig", 1e8))
	cur = snap(entry("BenchmarkBig", 4e8))
	deltas = Compare(old, cur, Options{})
	if d := find(deltas, "BenchmarkBig"); d.Verdict != Regressed {
		t.Fatalf("above-floor delta missed: %+v", d)
	}
}

func TestCompareVarianceWidensThreshold(t *testing.T) {
	// A noisy benchmark (~±30% across samples) whose means differ by
	// 20%: a naive 10% threshold would flag it, the σ-widened one must
	// not.
	old := snap(
		entry("BenchmarkNoisy", 7e6), entry("BenchmarkNoisy", 10e6), entry("BenchmarkNoisy", 13e6))
	cur := snap(
		entry("BenchmarkNoisy", 8.4e6), entry("BenchmarkNoisy", 12e6), entry("BenchmarkNoisy", 15.6e6))
	deltas := Compare(old, cur, Options{})
	d := find(deltas, "BenchmarkNoisy")
	if d.Verdict != Unchanged {
		t.Fatalf("noisy-but-flat flagged %s (threshold %f, rel %f)", d.Verdict, d.Threshold, d.RelDelta())
	}
	if d.Threshold <= 0.10 {
		t.Fatalf("threshold not widened by variance: %f", d.Threshold)
	}

	// A tight benchmark (<1% noise) with the same 20% shift must flag.
	old = snap(
		entry("BenchmarkTight", 9.99e6), entry("BenchmarkTight", 10e6), entry("BenchmarkTight", 10.01e6))
	cur = snap(
		entry("BenchmarkTight", 11.99e6), entry("BenchmarkTight", 12e6), entry("BenchmarkTight", 12.01e6))
	deltas = Compare(old, cur, Options{})
	if d := find(deltas, "BenchmarkTight"); d.Verdict != Regressed {
		t.Fatalf("tight-series regression missed: %+v", d)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	s1 := snap(entry("BenchmarkA", 1e6))
	s1.Commit = "aaa111"
	s2 := snap(entry("BenchmarkA", 2e6))
	s2.Commit = "bbb222"
	if err := AppendHistory(path, HistoryFromSnapshot(s1)); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, HistoryFromSnapshot(s2)); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Commit != "aaa111" || entries[1].Commit != "bbb222" {
		t.Fatalf("history: %+v", entries)
	}
	pts := Trend(entries, "BenchmarkA")
	if len(pts) != 2 || pts[0].NsPerOp != 1e6 || pts[1].NsPerOp != 2e6 {
		t.Fatalf("trend: %+v", pts)
	}

	// Re-snapshotting the same commit supersedes, not duplicates.
	s3 := snap(entry("BenchmarkA", 3e6))
	s3.Commit = "bbb222"
	if err := AppendHistory(path, HistoryFromSnapshot(s3)); err != nil {
		t.Fatal(err)
	}
	entries, err = ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || Trend(entries, "BenchmarkA")[1].NsPerOp != 3e6 {
		t.Fatalf("supersede: %+v", entries)
	}
}

func TestAppendHistoryRequiresCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	if err := AppendHistory(path, HistoryEntry{Group: "core"}); err == nil {
		t.Fatal("commitless history entry accepted")
	}
}
