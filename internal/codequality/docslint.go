// Markdown link linting for the repository docs. The same spirit as
// the Go-side checks in this package, applied to prose: a doc that
// points at a file that no longer exists is a bug report waiting to
// happen, so CI runs CheckMarkdownLinks over README.md, docs/ and the
// examples READMEs.
package codequality

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// LinkIssue is one broken (or malformed) markdown link.
type LinkIssue struct {
	File    string // the markdown file containing the link
	Line    int
	Target  string // the link target as written
	Message string
}

func (i LinkIssue) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", i.File, i.Line, i.Target, i.Message)
}

// inline markdown links: [text](target). Images (![alt](target)) match
// too via the same pattern, which is what we want.
var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// CheckMarkdownLinks verifies every relative link in the given markdown
// files (paths relative to root) resolves to an existing file or
// directory. Absolute URLs (scheme://), mailto: and pure in-page
// anchors (#...) are skipped; a fragment suffix on a relative link is
// stripped before the existence check. Links are resolved against the
// directory of the file that contains them, exactly as a reader
// browsing the tree would resolve them.
func CheckMarkdownLinks(root string, files []string) ([]LinkIssue, error) {
	var issues []LinkIssue
	for _, rel := range files {
		path := filepath.Join(root, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("docslint: %w", err)
		}
		inFence := false
		for ln, line := range strings.Split(string(data), "\n") {
			// Skip fenced code blocks: shell snippets legitimately
			// contain `](...)`-shaped text that is not a link.
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLinkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLinkTarget(target) {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
					if target == "" {
						continue
					}
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					issues = append(issues, LinkIssue{
						File:    rel,
						Line:    ln + 1,
						Target:  m[1],
						Message: "target does not exist",
					})
				}
			}
		}
	}
	return issues, nil
}

func skipLinkTarget(target string) bool {
	if strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
		return true
	}
	return strings.Contains(target, "://")
}

// RepoMarkdownFiles lists the markdown files the docs lint covers:
// README.md, everything under docs/, and the per-example READMEs.
// Paths are returned relative to root, slash-separated.
func RepoMarkdownFiles(root string) ([]string, error) {
	var files []string
	add := func(rel string) {
		if _, err := os.Stat(filepath.Join(root, rel)); err == nil {
			files = append(files, rel)
		}
	}
	add("README.md")
	for _, dir := range []string{"docs", "examples"} {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".md") {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			files = append(files, filepath.ToSlash(rel))
			return nil
		})
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return files, nil
}
