package codequality

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckMarkdownLinks(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"README.md": `# Top

Good: [docs](docs/GUIDE.md), [section](docs/GUIDE.md#setup),
[anchor](#local), [web](https://example.com/x), [dir](docs).

Bad: [gone](docs/MISSING.md).

` + "```sh\nawk '{ print $1 }' [not](a/link.md)\n```" + `
`,
		"docs/GUIDE.md": `# Guide

Relative to docs/: [up](../README.md), [broken](./nope.md).
`,
	})
	issues, err := CheckMarkdownLinks(dir, []string{"README.md", "docs/GUIDE.md"})
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 2 {
		t.Fatalf("issues = %d (%v), want 2", len(issues), issues)
	}
	if issues[0].File != "README.md" || issues[0].Target != "docs/MISSING.md" {
		t.Errorf("issue 0 = %v", issues[0])
	}
	if issues[1].File != "docs/GUIDE.md" || issues[1].Target != "./nope.md" {
		t.Errorf("issue 1 = %v", issues[1])
	}
}

func TestRepoMarkdownFiles(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"README.md":            "# r\n",
		"docs/A.md":            "# a\n",
		"docs/B.md":            "# b\n",
		"examples/x/README.md": "# x\n",
		"examples/x/main.go":   "package main\n",
	})
	files, err := RepoMarkdownFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"README.md", "docs/A.md", "docs/B.md", "examples/x/README.md"}
	if len(files) != len(want) {
		t.Fatalf("files = %v, want %v", files, want)
	}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("files = %v, want %v", files, want)
		}
	}
}

// TestRepoDocsLinks is the docs lint CI runs: every relative link in
// the repository's own markdown must resolve.
func TestRepoDocsLinks(t *testing.T) {
	root := moduleRoot(t)
	files, err := RepoMarkdownFiles(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("found only %d markdown files under %s; lint coverage lost", len(files), root)
	}
	issues, err := CheckMarkdownLinks(root, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range issues {
		t.Errorf("broken doc link: %s", i)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestLinkIssueString(t *testing.T) {
	s := LinkIssue{File: "docs/A.md", Line: 7, Target: "x.md", Message: "target does not exist"}.String()
	if !strings.Contains(s, "docs/A.md:7") || !strings.Contains(s, "x.md") {
		t.Errorf("String() = %q", s)
	}
}
