package codequality

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree creates a temp module tree for analysis.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestComplexityAndNesting(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"a/a.go": `package a

// Simple has complexity 1.
func Simple() int { return 1 }

// Branchy has complexity 1 + if + for + 2 cases + && = 6.
func Branchy(x int) int {
	if x > 0 && x < 10 {
		for i := 0; i < x; i++ {
			x++
		}
	}
	switch x {
	case 1:
		return 1
	case 2:
		return 2
	}
	return 0
}
`,
	})
	rep, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packages) != 1 {
		t.Fatalf("packages = %d", len(rep.Packages))
	}
	p := rep.Packages[0]
	if len(p.Functions) != 2 {
		t.Fatalf("functions = %d", len(p.Functions))
	}
	byName := map[string]FunctionReport{}
	for _, f := range p.Functions {
		byName[f.Name] = f
	}
	if c := byName["Simple"].Complexity; c != 1 {
		t.Errorf("Simple complexity = %d, want 1", c)
	}
	if c := byName["Branchy"].Complexity; c != 6 {
		t.Errorf("Branchy complexity = %d, want 6", c)
	}
	if n := byName["Branchy"].MaxNesting; n != 2 {
		t.Errorf("Branchy nesting = %d, want 2 (if>for)", n)
	}
	if p.MaxComplexity != 6 {
		t.Errorf("MaxComplexity = %d", p.MaxComplexity)
	}
}

func TestBugPatterns(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"b/b.go": `package b

func Buggy(x int) int {
	if x > 0 {
	}
	if true {
		x = x
	}
	if x == x {
		return 1
	}
	return x
}
`,
	})
	rep, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string]int{}
	for _, is := range rep.AllIssues() {
		rules[is.Rule]++
	}
	for _, want := range []string{"empty-branch", "constant-condition", "self-assignment", "identical-operands"} {
		if rules[want] == 0 {
			t.Errorf("rule %s not triggered: %v", want, rules)
		}
	}
}

func TestMethodNamesAndTestFilesSkipped(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"c/c.go": `package c

type T struct{}

// M is a method.
func (t *T) M() {}
`,
		"c/c_test.go": `package c

func TestIgnored(t *testing.T) {}
`,
	})
	rep, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Packages[0]
	if len(p.Functions) != 1 {
		t.Fatalf("functions = %d (test files must be skipped)", len(p.Functions))
	}
	if p.Functions[0].Name != "(*T).M" {
		t.Errorf("method name = %q", p.Functions[0].Name)
	}
}

func TestCommentDensityCounted(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"d/d.go": "package d\n\n// one\n// two\n// three\nfunc F() {}\n",
	})
	rep, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packages[0].CommentLines < 3 {
		t.Errorf("comment lines = %d, want >= 3", rep.Packages[0].CommentLines)
	}
}

func TestAnalyzeOwnRepository(t *testing.T) {
	// The §3.5 loop: the reference implementations ship with a quality
	// report. The repo root is two levels up from this package.
	rep, err := AnalyzeDir("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packages) < 10 {
		t.Fatalf("analyzed only %d packages of the repository", len(rep.Packages))
	}
	out := rep.Render()
	if !strings.Contains(out, "TOTAL") {
		t.Error("render missing TOTAL row")
	}
	worst := rep.WorstFunctions(5)
	if len(worst) != 5 {
		t.Fatalf("WorstFunctions = %d", len(worst))
	}
	for i := 1; i < len(worst); i++ {
		if worst[i-1].Complexity < worst[i].Complexity {
			t.Fatal("WorstFunctions not sorted")
		}
	}
}

func TestParseErrorSurfaced(t *testing.T) {
	dir := writeTree(t, map[string]string{"e/broken.go": "package e\nfunc {"})
	if _, err := AnalyzeDir(dir); err == nil {
		t.Error("syntax error should surface")
	}
}
