// Package codequality implements the §3.5 practice of the paper:
// "in Graphalytics, the code for the reference implementations is
// accompanied by code quality reports, such as code complexity, bugs
// discovered through static analysis, etc."
//
// The analyzer (a SonarQube stand-in built on go/ast) measures, per
// package and per function: cyclomatic complexity, maximum nesting
// depth, function length, comment density, and a set of static
// bug-pattern checks (empty branch bodies, self-assignments, constant
// conditions, shadowed error variables). The repository's own reference
// implementations are the analysis target, closing the loop the paper
// describes.
package codequality

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// FunctionReport holds the metrics of one function.
type FunctionReport struct {
	Package    string
	File       string
	Name       string
	Line       int
	Complexity int // cyclomatic complexity
	MaxNesting int
	Lines      int
}

// Issue is one static-analysis finding.
type Issue struct {
	File    string
	Line    int
	Rule    string
	Message string
}

// PackageReport aggregates one package's metrics.
type PackageReport struct {
	Package        string
	Files          int
	Lines          int
	CommentLines   int
	Functions      []FunctionReport
	Issues         []Issue
	MeanComplexity float64
	MaxComplexity  int
}

// Report is a whole-tree analysis result.
type Report struct {
	Packages []PackageReport
}

// AnalyzeDir analyzes every non-test Go file under root (recursively,
// skipping vendor and hidden directories).
func AnalyzeDir(root string) (*Report, error) {
	byPkg := map[string]*PackageReport{}
	fset := token.NewFileSet()

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil // never skip the analysis root itself
			}
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("codequality: %s: %w", path, err)
		}
		pkgPath := filepath.Dir(path)
		pr, ok := byPkg[pkgPath]
		if !ok {
			pr = &PackageReport{Package: pkgPath}
			byPkg[pkgPath] = pr
		}
		analyzeFile(fset, path, file, pr)
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	keys := make([]string, 0, len(byPkg))
	for k := range byPkg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pr := byPkg[k]
		var total int
		for _, f := range pr.Functions {
			total += f.Complexity
			if f.Complexity > pr.MaxComplexity {
				pr.MaxComplexity = f.Complexity
			}
		}
		if len(pr.Functions) > 0 {
			pr.MeanComplexity = float64(total) / float64(len(pr.Functions))
		}
		sort.Slice(pr.Issues, func(i, j int) bool {
			if pr.Issues[i].File != pr.Issues[j].File {
				return pr.Issues[i].File < pr.Issues[j].File
			}
			return pr.Issues[i].Line < pr.Issues[j].Line
		})
		rep.Packages = append(rep.Packages, *pr)
	}
	return rep, nil
}

func analyzeFile(fset *token.FileSet, path string, file *ast.File, pr *PackageReport) {
	pr.Files++
	tf := fset.File(file.Pos())
	pr.Lines += tf.LineCount()
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			pr.CommentLines += strings.Count(c.Text, "\n") + 1
		}
	}

	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		start := fset.Position(fn.Pos())
		end := fset.Position(fn.End())
		fr := FunctionReport{
			Package:    pr.Package,
			File:       filepath.Base(path),
			Name:       funcName(fn),
			Line:       start.Line,
			Complexity: cyclomatic(fn),
			MaxNesting: maxNesting(fn.Body, 0),
			Lines:      end.Line - start.Line + 1,
		}
		pr.Functions = append(pr.Functions, fr)
	}
	pr.Issues = append(pr.Issues, lintFile(fset, path, file)...)
}

func funcName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		return fmt.Sprintf("(%s).%s", typeName(fn.Recv.List[0].Type), fn.Name.Name)
	}
	return fn.Name.Name
}

func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeName(t.X)
	case *ast.IndexExpr:
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	default:
		return "?"
	}
}

// cyclomatic computes McCabe complexity: 1 + decision points.
func cyclomatic(fn *ast.FuncDecl) int {
	c := 1
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.CaseClause, *ast.CommClause:
			c++
		case *ast.BinaryExpr:
			if node.Op == token.LAND || node.Op == token.LOR {
				c++
			}
		}
		return true
	})
	return c
}

// maxNesting returns the deepest block nesting within body.
func maxNesting(body ast.Node, depth int) int {
	max := depth
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if d := maxNesting(s.Body, depth+1); d > max {
				max = d
			}
			if s.Else != nil {
				if d := maxNesting(s.Else, depth+1); d > max {
					max = d
				}
			}
			return false
		case *ast.ForStmt:
			if d := maxNesting(s.Body, depth+1); d > max {
				max = d
			}
			return false
		case *ast.RangeStmt:
			if d := maxNesting(s.Body, depth+1); d > max {
				max = d
			}
			return false
		case *ast.SwitchStmt:
			if d := maxNesting(s.Body, depth+1); d > max {
				max = d
			}
			return false
		case *ast.TypeSwitchStmt:
			if d := maxNesting(s.Body, depth+1); d > max {
				max = d
			}
			return false
		case *ast.SelectStmt:
			if d := maxNesting(s.Body, depth+1); d > max {
				max = d
			}
			return false
		}
		return true
	})
	return max
}

// lintFile runs the bug-pattern checks.
func lintFile(fset *token.FileSet, path string, file *ast.File) []Issue {
	var issues []Issue
	add := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		issues = append(issues, Issue{File: filepath.Base(path), Line: p.Line, Rule: rule, Message: msg})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.IfStmt:
			// empty-branch: `if cond { }`.
			if len(node.Body.List) == 0 {
				add(node.Pos(), "empty-branch", "if statement with empty body")
			}
			// constant-condition: `if true` / `if false`.
			if id, ok := node.Cond.(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") {
				add(node.Pos(), "constant-condition", "condition is the constant "+id.Name)
			}
		case *ast.AssignStmt:
			// self-assignment: `x = x`.
			if node.Tok == token.ASSIGN && len(node.Lhs) == len(node.Rhs) {
				for i := range node.Lhs {
					if sameIdent(node.Lhs[i], node.Rhs[i]) {
						add(node.Pos(), "self-assignment", "value assigned to itself")
					}
				}
			}
		case *ast.BinaryExpr:
			// identical-operands: `x == x`, `x != x`, `x - x` on identifiers.
			switch node.Op {
			case token.EQL, token.NEQ, token.SUB, token.QUO:
				if sameIdent(node.X, node.Y) {
					add(node.Pos(), "identical-operands", "both operands of "+node.Op.String()+" are identical")
				}
			}
		}
		return true
	})
	return issues
}

func sameIdent(a, b ast.Expr) bool {
	ia, okA := a.(*ast.Ident)
	ib, okB := b.(*ast.Ident)
	return okA && okB && ia.Name == ib.Name && ia.Name != "_"
}

// Render writes a human-readable report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-46s %5s %7s %8s %9s %6s\n", "package", "files", "lines", "comment%", "mean-cplx", "issues")
	var files, lines, comments, issues int
	for _, p := range r.Packages {
		ratio := 0.0
		if p.Lines > 0 {
			ratio = 100 * float64(p.CommentLines) / float64(p.Lines)
		}
		fmt.Fprintf(&b, "%-46s %5d %7d %7.1f%% %9.2f %6d\n",
			p.Package, p.Files, p.Lines, ratio, p.MeanComplexity, len(p.Issues))
		files += p.Files
		lines += p.Lines
		comments += p.CommentLines
		issues += len(p.Issues)
	}
	fmt.Fprintf(&b, "%-46s %5d %7d %7.1f%% %9s %6d\n", "TOTAL", files, lines,
		100*float64(comments)/float64(maxInt(lines, 1)), "", issues)
	return b.String()
}

// WorstFunctions returns the k highest-complexity functions tree-wide.
func (r *Report) WorstFunctions(k int) []FunctionReport {
	var all []FunctionReport
	for _, p := range r.Packages {
		all = append(all, p.Functions...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Complexity != all[j].Complexity {
			return all[i].Complexity > all[j].Complexity
		}
		return all[i].Name < all[j].Name
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// AllIssues returns every finding tree-wide.
func (r *Report) AllIssues() []Issue {
	var out []Issue
	for _, p := range r.Packages {
		out = append(out, p.Issues...)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
