package stats

import (
	"math"
	"sort"
)

// Fit is the result of fitting one model family to a sample.
type Fit struct {
	Model         Model
	LogLikelihood float64
	KS            float64 // Kolmogorov-Smirnov distance
	AIC           float64 // 2k - 2 lnL
	NumParams     int
}

// Sample is a degree sample with cached summary statistics.
type Sample struct {
	Data []int
	n    float64
	mean float64
}

// NewSample wraps data (values must be >= 1; zeros are clamped to 1, as
// degree-distribution fits in the paper are over connected vertices).
func NewSample(data []int) (*Sample, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	clean := make([]int, len(data))
	var sum float64
	for i, v := range data {
		if v < 1 {
			v = 1
		}
		clean[i] = v
		sum += float64(v)
	}
	return &Sample{Data: clean, n: float64(len(clean)), mean: sum / float64(len(clean))}, nil
}

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return s.mean }

// histogram returns value -> count, and the sorted distinct values.
func (s *Sample) histogram() (map[int]int, []int) {
	h := make(map[int]int)
	for _, v := range s.Data {
		h[v]++
	}
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return h, keys
}

// logLikelihood of model m over the sample, computed from the histogram.
func (s *Sample) logLikelihood(m Model) float64 {
	h, keys := s.histogram()
	var ll float64
	for _, k := range keys {
		p := m.PMF(k)
		if p <= 0 {
			p = 1e-300
		}
		ll += float64(h[k]) * math.Log(p)
	}
	return ll
}

// KSDistance returns the Kolmogorov-Smirnov statistic between the sample
// ECDF and the model CDF. The model CDF is accumulated incrementally from
// the PMF so heavy-tailed samples stay O(max value), not O(max value²).
func (s *Sample) KSDistance(m Model) float64 {
	h, keys := s.histogram()
	var cum float64
	var d float64
	mc := 0.0 // model CDF at current k
	nextK := 1
	for _, k := range keys {
		mcPrev := mc
		for ; nextK <= k; nextK++ {
			if nextK == k {
				mcPrev = mc
			}
			mc += m.PMF(nextK)
		}
		prev := cum / s.n
		cum += float64(h[k])
		ecdf := cum / s.n
		if diff := math.Abs(ecdf - mc); diff > d {
			d = diff
		}
		// ECDF jumps at k; also compare the model against the pre-jump value.
		if diff := math.Abs(prev - mcPrev); diff > d {
			d = diff
		}
	}
	return d
}

// FitZeta estimates the Zeta exponent by maximum likelihood: maximize
// -s Σ ln(x_i) - n ln ζ(s) via golden-section search on s in (1, 20].
func (s *Sample) FitZeta() Fit {
	sumLog := 0.0
	for _, v := range s.Data {
		sumLog += math.Log(float64(v))
	}
	nll := func(sv float64) float64 {
		return sv*sumLog + s.n*math.Log(RiemannZeta(sv))
	}
	sHat := goldenMin(nll, 1.0001, 20)
	m := NewZeta(sHat)
	return s.finish(m, 1)
}

// FitGeometric estimates p by MLE: p = 1/mean (support starting at 1).
func (s *Sample) FitGeometric() Fit {
	p := 1 / s.mean
	if p > 1 {
		p = 1
	}
	return s.finish(NewGeometric(p), 1)
}

// FitPoisson estimates λ of the shifted Poisson by MLE: λ = mean - 1.
func (s *Sample) FitPoisson() Fit {
	lambda := s.mean - 1
	if lambda < 1e-9 {
		lambda = 1e-9
	}
	return s.finish(NewPoisson(lambda), 1)
}

// FitWeibull estimates (q, beta) of the discrete Weibull by maximizing
// the likelihood with a nested golden-section search: for each beta, the
// optimal q is found by 1-D search too.
func (s *Sample) FitWeibull() Fit {
	nllBeta := func(beta float64) float64 {
		q := s.bestWeibullQ(beta)
		return -s.logLikelihood(NewWeibull(q, beta))
	}
	beta := goldenMin(nllBeta, 0.05, 5)
	q := s.bestWeibullQ(beta)
	return s.finish(NewWeibull(q, beta), 2)
}

func (s *Sample) bestWeibullQ(beta float64) float64 {
	nll := func(q float64) float64 {
		return -s.logLikelihood(NewWeibull(q, beta))
	}
	return goldenMin(nll, 1e-6, 1-1e-6)
}

func (s *Sample) finish(m Model, k int) Fit {
	ll := s.logLikelihood(m)
	return Fit{
		Model:         m,
		LogLikelihood: ll,
		KS:            s.KSDistance(m),
		AIC:           2*float64(k) - 2*ll,
		NumParams:     k,
	}
}

// FitAll fits all four model families and returns the fits sorted by
// ascending AIC (best first). This reproduces the paper's observation
// that "depending on the graph, the best fitting model changed".
func (s *Sample) FitAll() []Fit {
	fits := []Fit{s.FitZeta(), s.FitGeometric(), s.FitWeibull(), s.FitPoisson()}
	sort.Slice(fits, func(i, j int) bool { return fits[i].AIC < fits[j].AIC })
	return fits
}

// BestFit returns the model family with the lowest AIC.
func (s *Sample) BestFit() Fit { return s.FitAll()[0] }

// goldenMin minimizes f over [lo, hi] by golden-section search.
func goldenMin(f func(float64) float64, lo, hi float64) float64 {
	const phi = 1.6180339887498949
	const tol = 1e-7
	a, b := lo, hi
	c := b - (b-a)/phi
	d := a + (b-a)/phi
	fc, fd := f(c), f(d)
	for math.Abs(b-a) > tol*(math.Abs(a)+math.Abs(b)+1e-9) {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)/phi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)/phi
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// Descriptive summary statistics used in reports.
type Descriptive struct {
	N      int
	Mean   float64
	StdDev float64
	Min    int
	Max    int
	Median float64
}

// Describe computes descriptive statistics of the sample.
func (s *Sample) Describe() Descriptive {
	d := Descriptive{N: len(s.Data), Mean: s.mean, Min: s.Data[0], Max: s.Data[0]}
	var ss float64
	for _, v := range s.Data {
		if v < d.Min {
			d.Min = v
		}
		if v > d.Max {
			d.Max = v
		}
		dv := float64(v) - s.mean
		ss += dv * dv
	}
	d.StdDev = math.Sqrt(ss / s.n)
	sorted := make([]int, len(s.Data))
	copy(sorted, s.Data)
	sort.Ints(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		d.Median = float64(sorted[mid])
	} else {
		d.Median = (float64(sorted[mid-1]) + float64(sorted[mid])) / 2
	}
	return d
}
