// Package stats implements the discrete distribution models the paper
// fits to real degree distributions (§2.2): Zeta (discrete power law),
// Geometric, Weibull, and Poisson — with maximum-likelihood estimation,
// goodness-of-fit statistics (log-likelihood, Kolmogorov-Smirnov
// distance), and model selection. It also provides the numeric special
// functions the models need (Riemann/Hurwitz zeta, log-gamma), built on
// the standard library only.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Model is a discrete probability distribution over positive integers
// (degree values; support starts at 1 unless stated otherwise).
type Model interface {
	// Name identifies the model family ("zeta", "geometric", ...).
	Name() string
	// PMF returns P(X = k) for k >= 1.
	PMF(k int) float64
	// CDF returns P(X <= k).
	CDF(k int) float64
	// Mean returns the distribution mean (may be +Inf for heavy tails).
	Mean() float64
	// Params returns a human-readable parameter description.
	Params() string
}

// ---------------------------------------------------------------------
// Zeta (discrete power law): P(k) ∝ k^-s, k >= 1. The paper generates
// graphs with Zeta(s=1.7) in Figure 1.

// Zeta is the zeta (Zipf over all positive integers) distribution with
// exponent S > 1.
type Zeta struct {
	S    float64
	norm float64 // ζ(S)
}

// NewZeta returns a Zeta model with exponent s (> 1).
func NewZeta(s float64) *Zeta {
	return &Zeta{S: s, norm: RiemannZeta(s)}
}

// Name implements Model.
func (z *Zeta) Name() string { return "zeta" }

// Params implements Model.
func (z *Zeta) Params() string { return fmt.Sprintf("s=%.4f", z.S) }

// PMF implements Model.
func (z *Zeta) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	return math.Pow(float64(k), -z.S) / z.norm
}

// CDF implements Model.
func (z *Zeta) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	// Partial sum up to k; cheap because CDF is evaluated at data points.
	var s float64
	for i := 1; i <= k; i++ {
		s += math.Pow(float64(i), -z.S)
	}
	return s / z.norm
}

// Mean implements Model. Mean is ζ(s-1)/ζ(s), infinite for s <= 2.
func (z *Zeta) Mean() float64 {
	if z.S <= 2 {
		return math.Inf(1)
	}
	return RiemannZeta(z.S-1) / z.norm
}

// ---------------------------------------------------------------------
// Geometric on {1, 2, ...}: P(k) = (1-p)^(k-1) p. Figure 1 uses p=0.12.

// Geometric is the geometric distribution with success probability P,
// supported on k >= 1.
type Geometric struct {
	P float64
}

// NewGeometric returns a Geometric model with parameter p in (0, 1].
func NewGeometric(p float64) *Geometric { return &Geometric{P: p} }

// Name implements Model.
func (g *Geometric) Name() string { return "geometric" }

// Params implements Model.
func (g *Geometric) Params() string { return fmt.Sprintf("p=%.4f", g.P) }

// PMF implements Model.
func (g *Geometric) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	return math.Pow(1-g.P, float64(k-1)) * g.P
}

// CDF implements Model.
func (g *Geometric) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	return 1 - math.Pow(1-g.P, float64(k))
}

// Mean implements Model.
func (g *Geometric) Mean() float64 { return 1 / g.P }

// ---------------------------------------------------------------------
// Poisson shifted to {1, 2, ...}: degree = 1 + Poisson(λ). Degree data
// has no zeros, so the fit uses the shifted form.

// Poisson is a shifted Poisson model: X = 1 + Pois(Lambda).
type Poisson struct {
	Lambda float64
}

// NewPoisson returns a shifted Poisson model with rate lambda >= 0.
func NewPoisson(lambda float64) *Poisson { return &Poisson{Lambda: lambda} }

// Name implements Model.
func (p *Poisson) Name() string { return "poisson" }

// Params implements Model.
func (p *Poisson) Params() string { return fmt.Sprintf("lambda=%.4f", p.Lambda) }

// PMF implements Model.
func (p *Poisson) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	x := float64(k - 1)
	return math.Exp(x*math.Log(p.Lambda) - p.Lambda - LogGamma(x+1))
}

// CDF implements Model.
func (p *Poisson) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	var s float64
	for i := 1; i <= k; i++ {
		s += p.PMF(i)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Mean implements Model.
func (p *Poisson) Mean() float64 { return 1 + p.Lambda }

// ---------------------------------------------------------------------
// Discrete Weibull (type I, Nakagawa-Osaki): P(X > k) = q^(k^beta),
// supported on {1, 2, ...} via shift: S(k) = q^((k)^beta), P(k) =
// q^((k-1)^beta) - q^(k^beta).

// Weibull is the discrete Weibull distribution with scale Q in (0,1) and
// shape Beta > 0.
type Weibull struct {
	Q    float64
	Beta float64
}

// NewWeibull returns a discrete Weibull model.
func NewWeibull(q, beta float64) *Weibull { return &Weibull{Q: q, Beta: beta} }

// Name implements Model.
func (w *Weibull) Name() string { return "weibull" }

// Params implements Model.
func (w *Weibull) Params() string { return fmt.Sprintf("q=%.4f beta=%.4f", w.Q, w.Beta) }

// survival returns P(X > k) = q^(k^beta) for k >= 0.
func (w *Weibull) survival(k int) float64 {
	if k < 0 {
		return 1
	}
	return math.Pow(w.Q, math.Pow(float64(k), w.Beta))
}

// PMF implements Model.
func (w *Weibull) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	return w.survival(k-1) - w.survival(k)
}

// CDF implements Model.
func (w *Weibull) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	return 1 - w.survival(k)
}

// Mean implements Model. Computed by summing the survival function.
func (w *Weibull) Mean() float64 {
	var s float64
	for k := 0; k < 1_000_000; k++ {
		sv := w.survival(k)
		s += sv
		if sv < 1e-15 {
			break
		}
	}
	return s
}

// ---------------------------------------------------------------------
// Special functions.

// RiemannZeta computes ζ(s) for s > 1 using Euler-Maclaurin acceleration.
func RiemannZeta(s float64) float64 {
	if s <= 1 {
		return math.Inf(1)
	}
	// Direct sum of N terms plus integral tail correction terms.
	const N = 64
	var sum float64
	for k := 1; k < N; k++ {
		sum += math.Pow(float64(k), -s)
	}
	n := float64(N)
	sum += math.Pow(n, -s) / 2
	sum += math.Pow(n, 1-s) / (s - 1)
	// First Bernoulli correction: B2/2! * s * n^(-s-1), B2 = 1/6.
	sum += s * math.Pow(n, -s-1) / 12
	// Second correction: -s(s+1)(s+2)/720 * n^(-s-3).
	sum -= s * (s + 1) * (s + 2) * math.Pow(n, -s-3) / 720
	return sum
}

// HurwitzZeta computes ζ(s, a) = Σ_{k>=0} (k+a)^-s for s > 1, a > 0.
func HurwitzZeta(s, a float64) float64 {
	if s <= 1 {
		return math.Inf(1)
	}
	const N = 64
	var sum float64
	for k := 0; k < N; k++ {
		sum += math.Pow(float64(k)+a, -s)
	}
	n := float64(N) + a
	sum += math.Pow(n, -s) / 2
	sum += math.Pow(n, 1-s) / (s - 1)
	sum += s * math.Pow(n, -s-1) / 12
	sum -= s * (s + 1) * (s + 2) * math.Pow(n, -s-3) / 720
	return sum
}

// LogGamma returns ln Γ(x) for x > 0 (thin wrapper with sign dropped,
// valid for positive arguments).
func LogGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// ErrNoData is returned by fitting functions when the sample is empty.
var ErrNoData = errors.New("stats: empty sample")
