package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRiemannZetaKnownValues(t *testing.T) {
	cases := []struct{ s, want float64 }{
		{2, math.Pi * math.Pi / 6},
		{4, math.Pow(math.Pi, 4) / 90},
		{3, 1.2020569031595943}, // Apery's constant
		{1.5, 2.6123753486854883},
	}
	for _, c := range cases {
		if got := RiemannZeta(c.s); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("zeta(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestHurwitzZetaReducesToRiemann(t *testing.T) {
	for _, s := range []float64{1.5, 2, 3.7} {
		if got, want := HurwitzZeta(s, 1), RiemannZeta(s); math.Abs(got-want) > 1e-9 {
			t.Errorf("hurwitz(%v,1) = %v, want %v", s, got, want)
		}
	}
}

func TestPMFsSumToOne(t *testing.T) {
	models := []Model{
		NewZeta(2.5),
		NewGeometric(0.12),
		NewPoisson(4.2),
		NewWeibull(0.8, 1.3),
	}
	for _, m := range models {
		var sum float64
		for k := 1; k <= 200000; k++ {
			sum += m.PMF(k)
			if 1-sum < 1e-10 {
				break
			}
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("%s: PMF sums to %v", m.Name(), sum)
		}
	}
}

func TestCDFMatchesPMFSums(t *testing.T) {
	models := []Model{NewZeta(1.7), NewGeometric(0.3), NewPoisson(2), NewWeibull(0.6, 0.9)}
	for _, m := range models {
		var sum float64
		for k := 1; k <= 50; k++ {
			sum += m.PMF(k)
			if math.Abs(m.CDF(k)-sum) > 1e-9 {
				t.Errorf("%s: CDF(%d) = %v, PMF sum = %v", m.Name(), k, m.CDF(k), sum)
				break
			}
		}
	}
}

func TestGeometricMean(t *testing.T) {
	g := NewGeometric(0.25)
	if math.Abs(g.Mean()-4) > 1e-12 {
		t.Errorf("geometric mean = %v, want 4", g.Mean())
	}
}

func TestZetaMean(t *testing.T) {
	z := NewZeta(3)
	want := RiemannZeta(2) / RiemannZeta(3)
	if math.Abs(z.Mean()-want) > 1e-9 {
		t.Errorf("zeta(3) mean = %v, want %v", z.Mean(), want)
	}
	if !math.IsInf(NewZeta(1.7).Mean(), 1) {
		t.Error("zeta(1.7) mean should be +Inf")
	}
}

func sampleFrom(m Model, n int, seed int64) []int {
	// Inverse-CDF sampling with incremental PMF accumulation (test helper).
	r := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		u := r.Float64()
		k, cdf := 1, m.PMF(1)
		for cdf < u && k < 100000 {
			k++
			cdf += m.PMF(k)
		}
		out[i] = k
	}
	return out
}

func TestFitGeometricRecoversParameter(t *testing.T) {
	data := sampleFrom(NewGeometric(0.12), 4000, 1)
	s, err := NewSample(data)
	if err != nil {
		t.Fatal(err)
	}
	fit := s.FitGeometric()
	p := fit.Model.(*Geometric).P
	if math.Abs(p-0.12) > 0.02 {
		t.Errorf("fitted p = %v, want ~0.12", p)
	}
	if fit.KS > 0.05 {
		t.Errorf("KS = %v, want small", fit.KS)
	}
}

func TestFitZetaRecoversParameter(t *testing.T) {
	data := sampleFrom(NewZeta(1.7), 4000, 2)
	s, err := NewSample(data)
	if err != nil {
		t.Fatal(err)
	}
	fit := s.FitZeta()
	sv := fit.Model.(*Zeta).S
	if math.Abs(sv-1.7) > 0.1 {
		t.Errorf("fitted s = %v, want ~1.7", sv)
	}
}

func TestFitPoissonRecoversParameter(t *testing.T) {
	data := sampleFrom(NewPoisson(5), 3000, 3)
	s, err := NewSample(data)
	if err != nil {
		t.Fatal(err)
	}
	fit := s.FitPoisson()
	l := fit.Model.(*Poisson).Lambda
	if math.Abs(l-5) > 0.3 {
		t.Errorf("fitted lambda = %v, want ~5", l)
	}
}

func TestFitWeibullReasonable(t *testing.T) {
	data := sampleFrom(NewWeibull(0.7, 1.2), 2000, 4)
	s, err := NewSample(data)
	if err != nil {
		t.Fatal(err)
	}
	fit := s.FitWeibull()
	if fit.KS > 0.08 {
		t.Errorf("weibull self-fit KS = %v, want small", fit.KS)
	}
}

func TestModelSelectionPicksGeneratingFamily(t *testing.T) {
	cases := []struct {
		gen  Model
		want string
	}{
		{NewZeta(1.7), "zeta"},
		{NewGeometric(0.12), "geometric"},
		{NewPoisson(6), "poisson"},
	}
	for _, c := range cases {
		data := sampleFrom(c.gen, 3000, 7)
		s, _ := NewSample(data)
		best := s.BestFit()
		if best.Model.Name() != c.want {
			t.Errorf("data from %s: best fit = %s (AIC %.1f)", c.want, best.Model.Name(), best.AIC)
		}
	}
}

func TestFitAllSortedByAIC(t *testing.T) {
	data := sampleFrom(NewGeometric(0.2), 1000, 9)
	s, _ := NewSample(data)
	fits := s.FitAll()
	if len(fits) != 4 {
		t.Fatalf("FitAll returned %d fits", len(fits))
	}
	for i := 1; i < len(fits); i++ {
		if fits[i-1].AIC > fits[i].AIC {
			t.Fatal("FitAll not sorted by AIC")
		}
	}
}

func TestNewSampleValidation(t *testing.T) {
	if _, err := NewSample(nil); err != ErrNoData {
		t.Errorf("NewSample(nil) err = %v, want ErrNoData", err)
	}
	s, err := NewSample([]int{0, -3, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Data {
		if v < 1 {
			t.Errorf("NewSample kept value %d < 1", v)
		}
	}
}

func TestDescribe(t *testing.T) {
	s, _ := NewSample([]int{1, 2, 3, 4, 100})
	d := s.Describe()
	if d.N != 5 || d.Min != 1 || d.Max != 100 {
		t.Errorf("Describe = %+v", d)
	}
	if d.Median != 3 {
		t.Errorf("median = %v, want 3", d.Median)
	}
	if math.Abs(d.Mean-22) > 1e-12 {
		t.Errorf("mean = %v, want 22", d.Mean)
	}
}

func TestKSDistanceZeroForPerfectModel(t *testing.T) {
	// Degenerate sample all 1s vs geometric p=1 (all mass at 1): KS = 0.
	s, _ := NewSample([]int{1, 1, 1, 1})
	if ks := s.KSDistance(NewGeometric(1)); ks > 1e-12 {
		t.Errorf("KS = %v, want 0", ks)
	}
}

// Property: KS distance is always in [0, 1].
func TestQuickKSInRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]int, 50)
		for i := range data {
			data[i] = 1 + r.Intn(30)
		}
		s, err := NewSample(data)
		if err != nil {
			return false
		}
		for _, m := range []Model{NewZeta(2), NewGeometric(0.3), NewPoisson(3), NewWeibull(0.5, 1)} {
			ks := s.KSDistance(m)
			if ks < 0 || ks > 1 || math.IsNaN(ks) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: goldenMin finds the minimum of a convex parabola.
func TestQuickGoldenMin(t *testing.T) {
	f := func(c float64) bool {
		center := math.Mod(math.Abs(c), 5) + 1 // in [1, 6]
		got := goldenMin(func(x float64) float64 { return (x - center) * (x - center) }, 0, 10)
		return math.Abs(got-center) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
