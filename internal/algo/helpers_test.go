package algo

import (
	"math"
	"reflect"
	"testing"

	"graphalytics/internal/graph"
)

func TestLocalCCPerVertex(t *testing.T) {
	// Kite: triangle 0-1-2 plus pendant 2-3.
	g := undirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	lcc := LocalCC(g)
	want := []float64{1, 1, 1.0 / 3.0, 0}
	for v := range want {
		if math.Abs(lcc[v]-want[v]) > 1e-12 {
			t.Errorf("LCC(%d) = %v, want %v", v, lcc[v], want[v])
		}
	}
}

func TestCountClosedPairs(t *testing.T) {
	out := []graph.VertexID{1, 3, 5, 7}
	nbh := []graph.VertexID{3, 5, 9}
	if got := CountClosedPairs(out, nbh, 99); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	// The skip vertex is excluded from matches.
	if got := CountClosedPairs(out, nbh, 3); got != 1 {
		t.Errorf("count with skip = %d, want 1", got)
	}
	if got := CountClosedPairs(nil, nbh, 0); got != 0 {
		t.Errorf("empty out = %d", got)
	}
}

func TestComponentAndCommunitySizes(t *testing.T) {
	conn := ConnOutput{0, 0, 2, 2, 2}
	sizes := ComponentSizes(conn)
	if sizes[0] != 2 || sizes[2] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	if NumComponents(conn) != 2 {
		t.Errorf("components = %d", NumComponents(conn))
	}
	cd := CDOutput{7, 7, 7, 1}
	cs := CommunitySizes(cd)
	if cs[7] != 3 || cs[1] != 1 {
		t.Errorf("community sizes = %v", cs)
	}
}

func TestFirePicksFromListsMatchesGraphPath(t *testing.T) {
	g := randomGraph(t, 50, 200, 3, true)
	p := Params{Seed: 9}.WithDefaults(g.NumVertices())
	for v := graph.VertexID(0); v < 50; v++ {
		direct := FirePicks(g, 60, v, p)
		fromLists := FirePicksFromLists(60, v, g.OutNeighbors(v), g.InNeighbors(v), p)
		if !reflect.DeepEqual(direct, fromLists) {
			t.Fatalf("vertex %d: FirePicks %v != FirePicksFromLists %v", v, direct, fromLists)
		}
	}
}

func TestBurnFireDeterministicAndSorted(t *testing.T) {
	g := randomGraph(t, 100, 500, 5, false)
	p := Params{Seed: 11}.WithDefaults(g.NumVertices())
	a := BurnFire(g, 100, p)
	b := BurnFire(g, 100, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BurnFire not deterministic")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			t.Fatal("BurnFire output not strictly sorted")
		}
	}
	if len(a) == 0 {
		t.Fatal("a fire always burns its ambassador")
	}
}

func TestFireLevelFiltersBurned(t *testing.T) {
	g := undirected(t, [][2]int64{{0, 1}, {0, 2}, {0, 3}})
	p := Params{Seed: 1, EvoPForward: 0.99}.WithDefaults(g.NumVertices())
	burned := map[graph.VertexID]bool{0: true, 1: true}
	next := FireLevel(g, 4, []graph.VertexID{0}, burned, p)
	for _, w := range next {
		if burned[w] {
			t.Fatalf("FireLevel returned already-burned vertex %d", w)
		}
	}
}
