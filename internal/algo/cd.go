package algo

import (
	"math"
	"sort"

	"graphalytics/internal/graph"
)

// The CD workload implements community detection by label propagation
// following Leung et al. (Phys. Rev. E 79, 2009), the algorithm the
// paper cites: score-carried labels with hop attenuation δ and node
// preference deg^m.
//
// Deterministic specification (all platforms must follow it exactly):
//
//   - Initially every vertex holds label = its own ID with score 1.
//   - Rounds are synchronous. In every round each vertex v collects one
//     vote (label, score, degree) from every neighbor in
//     N(v) = out ∪ in. A label's weight is Σ score·deg^m over the votes
//     carrying it, accumulated in ascending (label, score, degree)
//     order (fixed order ⇒ identical floating-point rounding on every
//     platform).
//   - v adopts the label with the maximum weight, ties broken by the
//     smallest label. Its new score is the maximum score among the votes
//     that carried the winning label, minus δ if the label differs from
//     v's current one (hop attenuation), floored at 0.
//   - Vertices without neighbors keep their state. After a fixed number
//     of rounds the labels are the community assignment.

// Vote is one neighbor's contribution to the CD label election.
type Vote struct {
	Label  int64
	Score  float64
	Degree int32
}

// TallyVotes elects the winning label from votes under the CD
// specification and returns the label and the maximum score among the
// winning label's votes. The slice is sorted in place. TallyVotes is
// shared by every platform implementation so the floating-point
// accumulation is bit-identical everywhere. ok is false when votes is
// empty.
func TallyVotes(votes []Vote, preference float64) (label int64, maxScore float64, ok bool) {
	if len(votes) == 0 {
		return 0, 0, false
	}
	sort.Slice(votes, func(i, j int) bool {
		a, b := votes[i], votes[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Degree < b.Degree
	})
	bestLabel := votes[0].Label
	bestWeight := math.Inf(-1)
	bestScore := 0.0

	curLabel := votes[0].Label
	curWeight := 0.0
	curScore := 0.0
	flush := func() {
		if curWeight > bestWeight {
			bestWeight = curWeight
			bestLabel = curLabel
			bestScore = curScore
		}
	}
	for _, v := range votes {
		if v.Label != curLabel {
			flush()
			curLabel = v.Label
			curWeight = 0
			curScore = 0
		}
		curWeight += v.Score * math.Pow(float64(v.Degree), preference)
		if v.Score > curScore {
			curScore = v.Score
		}
	}
	flush()
	return bestLabel, bestScore, true
}

// cdDegree returns |N(v)| under the CD spec (neighborhood size).
func cdDegree(g *graph.Graph, v graph.VertexID, buf []graph.VertexID) int {
	return len(g.Neighborhood(v, buf[:0]))
}

// RunCD computes the CD workload reference result.
func RunCD(g *graph.Graph, p Params) CDOutput {
	p = p.WithDefaults(g.NumVertices())
	n := g.NumVertices()

	labels := make([]int64, n)
	scores := make([]float64, n)
	degs := make([]int32, n)
	var buf []graph.VertexID
	for v := 0; v < n; v++ {
		labels[v] = int64(v)
		scores[v] = 1
		degs[v] = int32(cdDegree(g, graph.VertexID(v), buf))
	}

	newLabels := make([]int64, n)
	newScores := make([]float64, n)
	votes := make([]Vote, 0, 64)
	for iter := 0; iter < p.CDIterations; iter++ {
		for v := 0; v < n; v++ {
			buf = g.Neighborhood(graph.VertexID(v), buf[:0])
			votes = votes[:0]
			for _, u := range buf {
				votes = append(votes, Vote{Label: labels[u], Score: scores[u], Degree: degs[u]})
			}
			win, maxScore, ok := TallyVotes(votes, p.CDPreference)
			if !ok {
				newLabels[v] = labels[v]
				newScores[v] = scores[v]
				continue
			}
			newLabels[v] = win
			s := maxScore
			if win != labels[v] {
				s -= p.CDDelta
			}
			if s < 0 {
				s = 0
			}
			newScores[v] = s
		}
		labels, newLabels = newLabels, labels
		scores, newScores = newScores, scores
	}
	return CDOutput(labels)
}

// CommunitySizes returns label -> member count.
func CommunitySizes(out CDOutput) map[int64]int {
	sizes := make(map[int64]int)
	for _, l := range out {
		sizes[l]++
	}
	return sizes
}

// Modularity computes the Newman modularity of the labeling on the
// undirected view of g; the Output Validator uses it as the quality
// measure for CD results.
func Modularity(g *graph.Graph, labels CDOutput) float64 {
	u := graph.Undirect(g)
	m2 := float64(u.NumArcs()) // 2m
	if m2 == 0 {
		return 0
	}
	internal := make(map[int64]float64) // arcs inside each community
	degSum := make(map[int64]float64)   // Σ degrees per community
	u.Arcs(func(a, b graph.VertexID) {
		if labels[a] == labels[b] {
			internal[labels[a]]++
		}
	})
	for v := 0; v < u.NumVertices(); v++ {
		degSum[labels[v]] += float64(u.OutDegree(graph.VertexID(v)))
	}
	var q float64
	for l, in := range internal {
		q += in / m2
		_ = l
	}
	for _, d := range degSum {
		q -= (d / m2) * (d / m2)
	}
	return q
}
