package algo

import "graphalytics/internal/graph"

// RunPageRank computes the PR workload under the LDBC Graphalytics
// specification: starting from rank 1/|V|, run exactly PRIterations
// synchronous updates of
//
//	PR(v) = (1-d)/|V| + d·( Σ_{u→v} PR(u)/outdeg(u) + D/|V| )
//
// where d is the damping factor and D the total rank held by dangling
// vertices (outdeg 0) in the previous iteration — the dangling mass is
// redistributed uniformly, so ranks always sum to 1.
//
// The reference scatters contributions in ascending source order so its
// float64 sums are deterministic. Platforms sum in their own orders, so
// the Output Validator compares ranks within an epsilon, not exactly.
func RunPageRank(g *graph.Graph, p Params) PROutput {
	n := g.NumVertices()
	ranks := make(PROutput, n)
	if n == 0 {
		return ranks
	}
	p = p.WithDefaults(n)
	d := p.PRDamping
	inv := 1.0 / float64(n)
	for v := range ranks {
		ranks[v] = inv
	}
	next := make(PROutput, n)
	for iter := 0; iter < p.PRIterations; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if g.OutDegree(graph.VertexID(v)) == 0 {
				dangling += ranks[v]
			}
		}
		base := (1-d)*inv + d*dangling*inv
		for v := range next {
			next[v] = base
		}
		for u := 0; u < n; u++ {
			adj := g.OutNeighbors(graph.VertexID(u))
			if len(adj) == 0 {
				continue
			}
			share := d * ranks[u] / float64(len(adj))
			for _, v := range adj {
				next[v] += share
			}
		}
		ranks, next = next, ranks
	}
	return ranks
}
