package algo

import (
	"container/heap"
	"math"

	"graphalytics/internal/graph"
)

// RunSSSP computes the SSSP workload: the shortest-path distance of
// every vertex from the source along out-edges, using the graph's
// float64 edge weights (unit weights when the graph is unweighted).
// Unreachable vertices get +Inf.
//
// The reference is Dijkstra's algorithm with a binary heap. Because a
// distance is the float64 sum of the weights along its shortest path,
// evaluated in path order, and the min-plus fixpoint is unique, every
// correct platform implementation (label-correcting BSP, iterated
// MapReduce relaxation, dataflow joins, store traversal) converges to
// bit-identical distances — so the Output Validator checks SSSP exactly.
// Weights must be non-negative (the loader enforces this).
func RunSSSP(g *graph.Graph, source graph.VertexID) SSSPOutput {
	n := g.NumVertices()
	dist := make(SSSPOutput, n)
	inf := math.Inf(1)
	for i := range dist {
		dist[i] = inf
	}
	if int(source) >= n {
		return dist
	}
	dist[source] = 0
	pq := &distHeap{{v: source, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue // stale entry
		}
		adj := g.OutNeighbors(it.v)
		ws := g.OutWeights(it.v)
		for i, u := range adj {
			nd := it.d + graph.WeightAt(ws, i)
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{v: u, d: nd})
			}
		}
	}
	return dist
}

// SSSPTraversedEdges returns the number of edges examined by the
// shortest-path computation: the sum of out-degrees of all reached
// vertices (the weighted-workload TEPS numerator).
func SSSPTraversedEdges(g *graph.Graph, dist SSSPOutput) int64 {
	var m int64
	for v, d := range dist {
		if !math.IsInf(d, 1) {
			m += int64(g.OutDegree(graph.VertexID(v)))
		}
	}
	return m
}

// distItem is one (vertex, tentative distance) heap entry.
type distItem struct {
	v graph.VertexID
	d float64
}

// distHeap is a binary min-heap over distance, vertex-ID tie-broken for
// a deterministic pop order.
type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}
func (h distHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)   { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
