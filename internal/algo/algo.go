// Package algo defines the Graphalytics workload algorithms and provides
// their sequential reference implementations, which serve as the gold
// standard the Output Validator checks every platform against.
//
// The five workloads of the source paper (§3.2):
//
//   - STATS: vertex/edge counts and mean local clustering coefficient;
//   - BFS:   breadth-first search depths from a seed vertex;
//   - CONN:  connected components (weakly connected for directed graphs);
//   - CD:    community detection by Leung et al. label propagation with
//     hop attenuation and node-degree preference;
//   - EVO:   graph evolution prediction with the Leskovec et al.
//     forest-fire model.
//
// Plus the three workloads the LDBC Graphalytics benchmark v1.0.1 added
// to the suite:
//
//   - PR:    PageRank with damping 0.85 and a fixed iteration count
//     (dangling mass redistributed uniformly, the LDBC definition);
//   - SSSP:  single-source shortest paths over float64 edge weights
//     (unit weights when the graph is unweighted);
//   - LCC:   the per-vertex local clustering coefficient (STATS reports
//     only the mean; LCC reports the full vector).
//
// Every algorithm is specified deterministically (fixed iteration styles,
// ordered tie-breaking, per-entity seeded randomness) so that all four
// platform implementations produce byte-identical outputs — the property
// that makes exact output validation possible. PR and LCC relax this to
// an epsilon per vertex because platforms sum floats in different orders.
package algo

import (
	"fmt"
	"strings"

	"graphalytics/internal/graph"
)

// Kind names a workload algorithm.
type Kind string

// The workload algorithms: the paper's five plus the three LDBC
// Graphalytics additions.
const (
	STATS Kind = "STATS"
	BFS   Kind = "BFS"
	CONN  Kind = "CONN"
	CD    Kind = "CD"
	EVO   Kind = "EVO"
	PR    Kind = "PR"
	SSSP  Kind = "SSSP"
	LCC   Kind = "LCC"
)

// Kinds lists all algorithms: the paper's five in its reporting order,
// then the LDBC additions. The workload registry
// (internal/workload) is the authoritative iteration order for the
// harness; this list only enumerates the Kind constants.
var Kinds = []Kind{BFS, CD, CONN, EVO, STATS, PR, SSSP, LCC}

// ParseKind converts a string (any case) to a Kind. The workload
// registry's Parse additionally resolves aliases ("wcc", "pagerank");
// ParseKind only matches the canonical names.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if strings.EqualFold(string(k), s) {
			return k, nil
		}
	}
	return "", fmt.Errorf("algo: unknown algorithm %q", s)
}

// Params carries per-algorithm parameters. Zero values select the
// benchmark defaults.
type Params struct {
	// Source is the BFS seed vertex.
	Source graph.VertexID

	// CDIterations caps label-propagation rounds (default 10).
	CDIterations int
	// CDDelta is the Leung hop attenuation δ (default 0.05).
	CDDelta float64
	// CDPreference is the node preference exponent m on degree
	// (default 0.1, the value Leung et al. recommend).
	CDPreference float64

	// EvoNewVertices is the number of vertices EVO adds (default
	// max(1, |V|/100)).
	EvoNewVertices int
	// EvoPForward is the forward burning probability (default 0.35).
	EvoPForward float64
	// EvoRBackward is the backward burning ratio (default 0.32).
	EvoRBackward float64
	// EvoMaxBurn caps the vertices burned per fire (default 4096).
	EvoMaxBurn int
	// Seed drives EVO's randomized burning.
	Seed uint64

	// PRIterations is the fixed PageRank iteration count (default 10,
	// the LDBC Graphalytics convention of a parameterized fixed count).
	PRIterations int
	// PRDamping is the PageRank damping factor (default 0.85).
	PRDamping float64

	// MaxIterations is a safety bound for fixpoint algorithms
	// (default 2×|V|+1 supersteps; CONN always converges sooner).
	MaxIterations int
}

// WithDefaults returns p with zero fields replaced by the benchmark
// defaults for a graph with n vertices.
func (p Params) WithDefaults(n int) Params {
	if p.CDIterations <= 0 {
		p.CDIterations = 10
	}
	if p.CDDelta == 0 {
		p.CDDelta = 0.05
	}
	if p.CDPreference == 0 {
		p.CDPreference = 0.1
	}
	if p.EvoNewVertices <= 0 {
		p.EvoNewVertices = n / 100
		if p.EvoNewVertices < 1 {
			p.EvoNewVertices = 1
		}
	}
	if p.EvoPForward == 0 {
		p.EvoPForward = 0.35
	}
	if p.EvoRBackward == 0 {
		p.EvoRBackward = 0.32
	}
	if p.EvoMaxBurn <= 0 {
		p.EvoMaxBurn = 4096
	}
	if p.PRIterations <= 0 {
		p.PRIterations = 10
	}
	if p.PRDamping <= 0 || p.PRDamping >= 1 {
		p.PRDamping = 0.85
	}
	if p.MaxIterations <= 0 {
		p.MaxIterations = 2*n + 1
	}
	return p
}

// StatsOutput is the STATS result.
type StatsOutput struct {
	Vertices int
	Edges    int64
	MeanLCC  float64
}

// BFSOutput holds the BFS depth of every vertex (-1 = unreachable).
type BFSOutput []int64

// ConnOutput holds, per vertex, the smallest vertex ID in its component.
type ConnOutput []graph.VertexID

// CDOutput holds the community label of every vertex (labels are vertex
// IDs of community "founders").
type CDOutput []int64

// EvoOutput is the EVO result: the vertices added and the new edges
// created, sorted lexicographically.
type EvoOutput struct {
	NewVertices int
	Edges       [][2]graph.VertexID
}

// PROutput holds the PageRank of every vertex (sums to 1).
type PROutput []float64

// SSSPOutput holds the shortest-path distance of every vertex from the
// source (+Inf = unreachable).
type SSSPOutput []float64

// LCCOutput holds the local clustering coefficient of every vertex.
type LCCOutput []float64
