// Package algo defines the five Graphalytics workload algorithms (§3.2)
// and provides their sequential reference implementations, which serve as
// the gold standard the Output Validator checks every platform against:
//
//   - STATS: vertex/edge counts and mean local clustering coefficient;
//   - BFS:   breadth-first search depths from a seed vertex;
//   - CONN:  connected components (weakly connected for directed graphs);
//   - CD:    community detection by Leung et al. label propagation with
//     hop attenuation and node-degree preference;
//   - EVO:   graph evolution prediction with the Leskovec et al.
//     forest-fire model.
//
// Every algorithm is specified deterministically (fixed iteration styles,
// ordered tie-breaking, per-entity seeded randomness) so that all four
// platform implementations produce byte-identical outputs — the property
// that makes exact output validation possible.
package algo

import (
	"fmt"

	"graphalytics/internal/graph"
)

// Kind names a workload algorithm.
type Kind string

// The five Graphalytics algorithms.
const (
	STATS Kind = "STATS"
	BFS   Kind = "BFS"
	CONN  Kind = "CONN"
	CD    Kind = "CD"
	EVO   Kind = "EVO"
)

// Kinds lists all algorithms in the paper's reporting order.
var Kinds = []Kind{BFS, CD, CONN, EVO, STATS}

// ParseKind converts a string (any case) to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if string(k) == s || lower(string(k)) == lower(s) {
			return k, nil
		}
	}
	return "", fmt.Errorf("algo: unknown algorithm %q", s)
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// Params carries per-algorithm parameters. Zero values select the
// benchmark defaults.
type Params struct {
	// Source is the BFS seed vertex.
	Source graph.VertexID

	// CDIterations caps label-propagation rounds (default 10).
	CDIterations int
	// CDDelta is the Leung hop attenuation δ (default 0.05).
	CDDelta float64
	// CDPreference is the node preference exponent m on degree
	// (default 0.1, the value Leung et al. recommend).
	CDPreference float64

	// EvoNewVertices is the number of vertices EVO adds (default
	// max(1, |V|/100)).
	EvoNewVertices int
	// EvoPForward is the forward burning probability (default 0.35).
	EvoPForward float64
	// EvoRBackward is the backward burning ratio (default 0.32).
	EvoRBackward float64
	// EvoMaxBurn caps the vertices burned per fire (default 4096).
	EvoMaxBurn int
	// Seed drives EVO's randomized burning.
	Seed uint64

	// MaxIterations is a safety bound for fixpoint algorithms
	// (default 2×|V|+1 supersteps; CONN always converges sooner).
	MaxIterations int
}

// WithDefaults returns p with zero fields replaced by the benchmark
// defaults for a graph with n vertices.
func (p Params) WithDefaults(n int) Params {
	if p.CDIterations <= 0 {
		p.CDIterations = 10
	}
	if p.CDDelta == 0 {
		p.CDDelta = 0.05
	}
	if p.CDPreference == 0 {
		p.CDPreference = 0.1
	}
	if p.EvoNewVertices <= 0 {
		p.EvoNewVertices = n / 100
		if p.EvoNewVertices < 1 {
			p.EvoNewVertices = 1
		}
	}
	if p.EvoPForward == 0 {
		p.EvoPForward = 0.35
	}
	if p.EvoRBackward == 0 {
		p.EvoRBackward = 0.32
	}
	if p.EvoMaxBurn <= 0 {
		p.EvoMaxBurn = 4096
	}
	if p.MaxIterations <= 0 {
		p.MaxIterations = 2*n + 1
	}
	return p
}

// StatsOutput is the STATS result.
type StatsOutput struct {
	Vertices int
	Edges    int64
	MeanLCC  float64
}

// BFSOutput holds the BFS depth of every vertex (-1 = unreachable).
type BFSOutput []int64

// ConnOutput holds, per vertex, the smallest vertex ID in its component.
type ConnOutput []graph.VertexID

// CDOutput holds the community label of every vertex (labels are vertex
// IDs of community "founders").
type CDOutput []int64

// EvoOutput is the EVO result: the vertices added and the new edges
// created, sorted lexicographically.
type EvoOutput struct {
	NewVertices int
	Edges       [][2]graph.VertexID
}
