package algo

import "graphalytics/internal/graph"

// RunLCC computes the LCC workload: the local clustering coefficient of
// every vertex, under the same specification STATS uses for its mean
// (see RunStats): with N(v) = (out ∪ in) \ {v} and d = |N(v)|, LCC(v)
// is the number of ordered pairs (u, w) ∈ N(v)², u ≠ w, with an arc
// u→w, divided by d(d−1); vertices with d < 2 have LCC 0.
//
// Each per-vertex value is an exact int64 triangle count divided by
// d(d−1), so the reference is deterministic; the Output Validator still
// compares within an epsilon (the LDBC policy for LCC) to stay robust
// to platforms that accumulate the numerator in floating point.
func RunLCC(g *graph.Graph) LCCOutput {
	return LCCOutput(LocalCC(g))
}
