package algo

// Cancellable, worker-gated variants of the reference runners. The
// sequential functions (RunBFS, RunPageRank) stay the gold standard the
// Output Validator compares against; these kernels are what the harness
// benchmarks and what callers with a context and a worker budget use.
//
// Determinism contract:
//
//   - RunBFSOpt returns depths bit-identical to RunBFS for every worker
//     count (level numbers do not depend on visit order within a level);
//   - RunPageRankOpt with workers > 1 pulls contributions in fixed
//     in-neighbor order, so its output is bit-identical across all
//     parallel worker counts, and epsilon-identical to the sequential
//     push reference (float sums associate differently) — exactly the
//     tolerance the PR validation policy grants every platform.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"graphalytics/internal/graph"
)

// kernelCheckStride mirrors platform.CheckStride (package platform
// imports algo, so the constant cannot be shared): hot loops probe the
// context once every this many work units.
const kernelCheckStride = 4096

// interrupted wraps ctx.Err() with the kernel that was stopped, keeping
// errors.Is(err, context.Canceled / DeadlineExceeded) intact.
func interrupted(ctx context.Context, kernel string) error {
	return fmt.Errorf("algo: %s interrupted: %w", kernel, ctx.Err())
}

// Beamer direction-optimizing switch constants: go bottom-up when the
// frontier's out-edges exceed 1/alpha of the unexplored edges, return
// top-down when the frontier shrinks below n/beta vertices.
const (
	bfsAlpha = 14
	bfsBeta  = 24
)

// RunBFSOpt computes the BFS workload with a worker budget. workers <= 1
// runs the retained sequential level-synchronous path (plus amortized
// context checks); workers > 1 runs a direction-optimizing frontier
// kernel (top-down/bottom-up switching per Beamer's heuristic) with the
// frontier chunked across workers. Output is identical to RunBFS for
// any worker count. Bottom-up steps need in-neighbor access, so on a
// directed graph without a reverse index the kernel stays top-down.
func RunBFSOpt(ctx context.Context, g *graph.Graph, source graph.VertexID, workers int) (BFSOutput, error) {
	n := g.NumVertices()
	depth := make(BFSOutput, n)
	for i := range depth {
		depth[i] = -1
	}
	if int(source) >= n {
		return depth, nil
	}
	if workers <= 1 {
		return depth, bfsSequential(ctx, g, source, depth)
	}

	canBottomUp := !g.Directed() || g.HasReverse()
	inOf := g.OutNeighbors // undirected: adjacency is symmetric
	if g.Directed() && g.HasReverse() {
		inOf = g.InNeighbors
	}

	depth[source] = 0
	frontier := []graph.VertexID{source}
	remaining := g.NumArcs() - int64(g.OutDegree(source))
	frontierEdges := int64(g.OutDegree(source))
	bottomUp := false
	errs := make([]error, workers)
	var inFrontier []bool // lazily sized; marks the previous level during a bottom-up step

	for level := int64(1); len(frontier) > 0; level++ {
		if canBottomUp {
			if !bottomUp && frontierEdges > remaining/bfsAlpha {
				bottomUp = true
			} else if bottomUp && int64(len(frontier)) < int64(n)/bfsBeta {
				bottomUp = false
			}
		}
		nexts := make([][]graph.VertexID, workers)
		var wg sync.WaitGroup
		if bottomUp {
			// Bottom-up: every unvisited vertex scans its in-neighbors for
			// a parent on the previous level, read from a frontier bitmap
			// built at the barrier. The bitmap is immutable during the
			// step and each chunk owner writes only its own depth cells,
			// so the scan needs no atomics at all.
			if inFrontier == nil {
				inFrontier = make([]bool, n)
			}
			for _, v := range frontier {
				inFrontier[v] = true
			}
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo, hi := w*chunk, (w+1)*chunk
				if lo >= n {
					break
				}
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					var local []graph.VertexID
					for v := lo; v < hi; v++ {
						if (v-lo)%kernelCheckStride == 0 && ctx.Err() != nil {
							errs[w] = interrupted(ctx, "bfs")
							return
						}
						if depth[v] != -1 {
							continue
						}
						for _, u := range inOf(graph.VertexID(v)) {
							if inFrontier[u] {
								depth[v] = level
								local = append(local, graph.VertexID(v))
								break
							}
						}
					}
					nexts[w] = local
				}(w, lo, hi)
			}
		} else {
			// Top-down: the frontier is chunked; workers claim unvisited
			// neighbors by compare-and-swap so each vertex joins exactly
			// one worker's next list.
			chunk := (len(frontier) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo, hi := w*chunk, (w+1)*chunk
				if lo >= len(frontier) {
					break
				}
				if hi > len(frontier) {
					hi = len(frontier)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					var local []graph.VertexID
					for i := lo; i < hi; i++ {
						if (i-lo)%kernelCheckStride == 0 && ctx.Err() != nil {
							errs[w] = interrupted(ctx, "bfs")
							return
						}
						for _, u := range g.OutNeighbors(frontier[i]) {
							if atomic.LoadInt64(&depth[u]) == -1 &&
								atomic.CompareAndSwapInt64(&depth[u], -1, level) {
								local = append(local, u)
							}
						}
					}
					nexts[w] = local
				}(w, lo, hi)
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		frontier = frontier[:0]
		frontierEdges = 0
		for _, local := range nexts {
			frontier = append(frontier, local...)
		}
		for _, v := range frontier {
			frontierEdges += int64(g.OutDegree(v))
		}
		remaining -= frontierEdges
	}
	return depth, nil
}

// bfsSequential is RunBFS with amortized context checks, writing into
// depth (source already validated).
func bfsSequential(ctx context.Context, g *graph.Graph, source graph.VertexID, depth BFSOutput) error {
	depth[source] = 0
	frontier := []graph.VertexID{source}
	next := make([]graph.VertexID, 0, 64)
	visited := 0
	for level := int64(1); len(frontier) > 0; level++ {
		next = next[:0]
		for _, v := range frontier {
			if visited%kernelCheckStride == 0 && ctx.Err() != nil {
				return interrupted(ctx, "bfs")
			}
			visited++
			for _, u := range g.OutNeighbors(v) {
				if depth[u] == -1 {
					depth[u] = level
					next = append(next, u)
				}
			}
		}
		frontier, next = next, frontier
	}
	return nil
}

// RunPageRankOpt computes the PR workload with a worker budget.
// workers <= 1 runs the retained sequential push path (plus amortized
// context checks), bit-identical to RunPageRank. workers > 1 runs a
// parallel pull kernel over the in-adjacency: contributions are
// precomputed per source, then every vertex sums its in-neighbors'
// contributions in fixed order — no write contention, and the output is
// bit-identical across all parallel worker counts. A directed graph
// without a reverse index falls back to the sequential path (pulling
// needs in-neighbors).
func RunPageRankOpt(ctx context.Context, g *graph.Graph, p Params, workers int) (PROutput, error) {
	n := g.NumVertices()
	ranks := make(PROutput, n)
	if n == 0 {
		return ranks, nil
	}
	p = p.WithDefaults(n)
	if workers <= 1 || (g.Directed() && !g.HasReverse()) {
		return pagerankSequential(ctx, g, p, ranks)
	}
	inOf := g.OutNeighbors
	if g.Directed() {
		inOf = g.InNeighbors
	}

	d := p.PRDamping
	inv := 1.0 / float64(n)
	outdeg := make([]int32, n)
	var dangling []graph.VertexID
	for v := 0; v < n; v++ {
		outdeg[v] = int32(g.OutDegree(graph.VertexID(v)))
		if outdeg[v] == 0 {
			dangling = append(dangling, graph.VertexID(v))
		}
	}
	for v := range ranks {
		ranks[v] = inv
	}
	contrib := make([]float64, n)
	next := make(PROutput, n)
	errs := make([]error, workers)
	chunk := (n + workers - 1) / workers

	parallel := func(kernel string, body func(lo, hi int)) error {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				if ctx.Err() != nil {
					errs[w] = interrupted(ctx, kernel)
					return
				}
				body(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	for iter := 0; iter < p.PRIterations; iter++ {
		// Dangling mass: summed sequentially in ascending vertex order so
		// the scalar (and with it the whole output) does not depend on
		// the worker count. The list is usually a tiny fraction of n.
		var danglingMass float64
		for _, v := range dangling {
			danglingMass += ranks[v]
		}
		base := (1-d)*inv + d*danglingMass*inv
		if err := parallel("pagerank", func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if outdeg[u] > 0 {
					contrib[u] = d * ranks[u] / float64(outdeg[u])
				} else {
					contrib[u] = 0
				}
			}
		}); err != nil {
			return nil, err
		}
		if err := parallel("pagerank", func(lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := base
				for _, u := range inOf(graph.VertexID(v)) {
					sum += contrib[u]
				}
				next[v] = sum
			}
		}); err != nil {
			return nil, err
		}
		ranks, next = next, ranks
	}
	return ranks, nil
}

// pagerankSequential is RunPageRank with amortized context checks,
// writing into ranks.
func pagerankSequential(ctx context.Context, g *graph.Graph, p Params, ranks PROutput) (PROutput, error) {
	n := g.NumVertices()
	d := p.PRDamping
	inv := 1.0 / float64(n)
	for v := range ranks {
		ranks[v] = inv
	}
	next := make(PROutput, n)
	for iter := 0; iter < p.PRIterations; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if v%kernelCheckStride == 0 && ctx.Err() != nil {
				return nil, interrupted(ctx, "pagerank")
			}
			if g.OutDegree(graph.VertexID(v)) == 0 {
				dangling += ranks[v]
			}
		}
		base := (1-d)*inv + d*dangling*inv
		for v := range next {
			next[v] = base
		}
		for u := 0; u < n; u++ {
			if u%kernelCheckStride == 0 && ctx.Err() != nil {
				return nil, interrupted(ctx, "pagerank")
			}
			adj := g.OutNeighbors(graph.VertexID(u))
			if len(adj) == 0 {
				continue
			}
			share := d * ranks[u] / float64(len(adj))
			for _, v := range adj {
				next[v] += share
			}
		}
		ranks, next = next, ranks
	}
	return ranks, nil
}
