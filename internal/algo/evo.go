package algo

import (
	"runtime"
	"sort"
	"sync"

	"graphalytics/internal/graph"
	"graphalytics/internal/xrand"
)

// The EVO workload predicts graph evolution with the forest-fire model
// (Leskovec, Kleinberg, Faloutsos, KDD 2005), the model the paper cites.
//
// Deterministic specification (all platforms must follow it exactly):
//
//   - k new vertices n, n+1, ..., n+k−1 are added. All k fires burn
//     simultaneously and independently over the ORIGINAL graph; the new
//     edges materialize only after every fire has finished. (Independent
//     fires are what makes the workload executable as level-synchronous
//     job waves on every platform — one wave per fire level, not per
//     fire.)
//   - New vertex v picks its ambassador among the original vertices,
//     uniformly: a = Mix3(seed, v, 0) mod n.
//   - A fire spreads level-synchronously. Level 0 burns {a}. In each
//     level, every vertex u burning in that level draws
//     x = Geometric(pf) and y = Geometric(pf·rb) from the stream
//     (seed, v, u) — x first, then y — and targets its x smallest-ID
//     out-neighbors and y smallest-ID in-neighbors, regardless of burn
//     state; requests to already-burned vertices are absorbed. The union
//     of targeted unburned vertices burns in the next level; if the burn
//     cap would be exceeded, the smallest-ID candidates burn first until
//     the cap. The fire stops when a level burns nothing new or the cap
//     is hit.
//   - v creates an edge to every vertex its fire burned.
//
// Targeting "regardless of burn state" (rather than skipping burned
// neighbors) is what lets a vertex-centric implementation make its picks
// from local adjacency alone, with burn-state resolution happening at
// the receiver — identical results on every platform.
func RunEvo(g *graph.Graph, p Params) EvoOutput {
	p = p.WithDefaults(g.NumVertices())
	n := g.NumVertices()
	k := p.EvoNewVertices

	out := EvoOutput{NewVertices: k}
	type fireResult struct {
		newV    graph.VertexID
		targets []graph.VertexID
	}
	results := make([]fireResult, k)

	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	chunk := (k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				newV := graph.VertexID(n + i)
				results[i] = fireResult{newV: newV, targets: BurnFire(g, newV, p)}
			}
		}(lo, hi)
	}
	wg.Wait()

	for _, r := range results {
		for _, w := range r.targets {
			out.Edges = append(out.Edges, [2]graph.VertexID{r.newV, w})
		}
	}
	sortEdges(out.Edges)
	return out
}

// BurnFire runs the forest fire of new vertex newV over g and returns
// the burned vertices in ascending ID order. It is exported so platform
// tests can compare level-by-level burning against the reference.
func BurnFire(g *graph.Graph, newV graph.VertexID, p Params) []graph.VertexID {
	n := g.NumVertices()
	a := graph.VertexID(xrand.Mix3(p.Seed, uint64(newV), 0) % uint64(n))

	burned := map[graph.VertexID]bool{a: true}
	level := []graph.VertexID{a}
	for len(level) > 0 && len(burned) < p.EvoMaxBurn {
		next := FireLevel(g, newV, level, burned, p)
		if room := p.EvoMaxBurn - len(burned); len(next) > room {
			next = next[:room]
		}
		for _, w := range next {
			burned[w] = true
		}
		level = next
	}
	targets := make([]graph.VertexID, 0, len(burned))
	for w := range burned {
		targets = append(targets, w)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets
}

// FireLevel computes one fire level: the sorted, deduplicated set of
// unburned vertices targeted by the burning vertices. Platforms reuse it
// per-vertex (pass a single burning vertex) or whole-level; the rule is
// identical either way.
func FireLevel(g *graph.Graph, newV graph.VertexID, level []graph.VertexID, burned map[graph.VertexID]bool, p Params) []graph.VertexID {
	inNext := make(map[graph.VertexID]bool)
	next := make([]graph.VertexID, 0)
	for _, u := range level {
		for _, w := range FirePicks(g, newV, u, p) {
			if burned[w] || inNext[w] {
				continue
			}
			inNext[w] = true
			next = append(next, w)
		}
	}
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	return next
}

// FirePicks returns the neighbors vertex u targets when burning in the
// fire of newV: its x smallest out-neighbors and y smallest in-neighbors
// with x = Geometric(pf), y = Geometric(pf·rb) drawn from the stream
// (seed, newV, u). Burn-state filtering happens at the caller.
func FirePicks(g *graph.Graph, newV, u graph.VertexID, p Params) []graph.VertexID {
	outN := g.OutNeighbors(u)
	inN := outN
	if g.Directed() && g.HasReverse() {
		inN = g.InNeighbors(u)
	}
	return FirePicksFromLists(newV, u, outN, inN, p)
}

// FirePicksFromLists is FirePicks for callers that carry adjacency in
// records instead of a Graph (the MapReduce and column-store paths).
// outN and inN must be sorted ascending.
func FirePicksFromLists(newV, u graph.VertexID, outN, inN []graph.VertexID, p Params) []graph.VertexID {
	rng := xrand.New(p.Seed, uint64(newV), uint64(u))
	x := rng.Geometric(p.EvoPForward)
	y := rng.Geometric(p.EvoPForward * p.EvoRBackward)
	if x > len(outN) {
		x = len(outN)
	}
	picks := make([]graph.VertexID, 0, x+y)
	picks = append(picks, outN[:x]...)
	if y > len(inN) {
		y = len(inN)
	}
	picks = append(picks, inN[:y]...)
	return picks
}

// ApplyEvo returns the evolved graph: g plus the new vertices and edges.
func ApplyEvo(g *graph.Graph, out EvoOutput) *graph.Graph {
	grown := graph.AddVertices(g, out.NewVertices)
	srcs := make([]graph.VertexID, len(out.Edges))
	dsts := make([]graph.VertexID, len(out.Edges))
	for i, e := range out.Edges {
		srcs[i], dsts[i] = e[0], e[1]
	}
	return graph.WithEdges(grown, srcs, dsts)
}

func sortEdges(edges [][2]graph.VertexID) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
}
