package algo

import "graphalytics/internal/graph"

// RunBFS computes the BFS workload: the depth of every vertex from
// source following out-edges, level-synchronously. Unreachable vertices
// get depth −1. This is the reference implementation; it matches the
// Graph500-style definition the paper inherits.
func RunBFS(g *graph.Graph, source graph.VertexID) BFSOutput {
	n := g.NumVertices()
	depth := make(BFSOutput, n)
	for i := range depth {
		depth[i] = -1
	}
	if int(source) >= n {
		return depth
	}
	depth[source] = 0
	frontier := []graph.VertexID{source}
	next := make([]graph.VertexID, 0, 64)
	for level := int64(1); len(frontier) > 0; level++ {
		next = next[:0]
		for _, v := range frontier {
			for _, u := range g.OutNeighbors(v) {
				if depth[u] == -1 {
					depth[u] = level
					next = append(next, u)
				}
			}
		}
		frontier, next = next, frontier
	}
	return depth
}

// BFSTraversedEdges returns the number of edges examined by a BFS from
// source: the sum of out-degrees of all reached vertices. It is the
// numerator of the Graph500 TEPS metric.
func BFSTraversedEdges(g *graph.Graph, depths BFSOutput) int64 {
	var m int64
	for v, d := range depths {
		if d >= 0 {
			m += int64(g.OutDegree(graph.VertexID(v)))
		}
	}
	return m
}
