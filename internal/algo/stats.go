package algo

import (
	"runtime"
	"sync"

	"graphalytics/internal/graph"
)

// RunStats computes the STATS workload: |V|, |E| and the mean local
// clustering coefficient.
//
// Specification (identical across all platforms): for vertex v let
// N(v) = (out-neighbors ∪ in-neighbors) \ {v} and d = |N(v)|. The LCC of
// v is the number of ordered pairs (u, w) ∈ N(v)², u ≠ w, with an arc
// u→w, divided by d(d−1); vertices with d < 2 have LCC 0. On a
// symmetrized undirected graph this equals the classic undirected LCC.
// MeanLCC averages over every vertex.
func RunStats(g *graph.Graph) StatsOutput {
	n := g.NumVertices()
	out := StatsOutput{Vertices: n, Edges: g.NumEdges()}
	if n == 0 {
		return out
	}
	sums := parallelLCCSums(g)
	var total float64
	for _, s := range sums {
		total += s
	}
	out.MeanLCC = total / float64(n)
	return out
}

// LocalCC returns the per-vertex local clustering coefficients under the
// STATS specification.
func LocalCC(g *graph.Graph) []float64 {
	return parallelLCCSums(g)
}

func parallelLCCSums(g *graph.Graph) []float64 {
	n := g.NumVertices()
	lcc := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var nbuf []graph.VertexID
			for v := lo; v < hi; v++ {
				nbuf = g.Neighborhood(graph.VertexID(v), nbuf[:0])
				lcc[v] = lccOf(g, graph.VertexID(v), nbuf)
			}
		}(lo, hi)
	}
	wg.Wait()
	return lcc
}

// lccOf computes the LCC of v given its sorted neighborhood.
func lccOf(g *graph.Graph, v graph.VertexID, nbh []graph.VertexID) float64 {
	d := len(nbh)
	if d < 2 {
		return 0
	}
	var links int64
	for _, u := range nbh {
		links += sortedIntersectExcluding(g.OutNeighbors(u), nbh, u)
	}
	return float64(links) / (float64(d) * float64(d-1))
}

// CountClosedPairs counts, given the sorted out-adjacency of a vertex u
// and the sorted neighborhood of another vertex, the elements common to
// both excluding u itself. It is the STATS arithmetic kernel shared by
// every platform implementation so numerators are identical everywhere.
func CountClosedPairs(outU, neighborhood []graph.VertexID, u graph.VertexID) int64 {
	return sortedIntersectExcluding(outU, neighborhood, u)
}

// sortedIntersectExcluding counts elements common to the two sorted
// lists, excluding the value skip (no self-pairs).
func sortedIntersectExcluding(a, b []graph.VertexID, skip graph.VertexID) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] != skip {
				c++
			}
			i++
			j++
		}
	}
	return c
}
