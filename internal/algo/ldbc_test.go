package algo

import (
	"math"
	"testing"

	"graphalytics/internal/graph"
)

// ------------------------- PR -------------------------

func TestPageRankCycle(t *testing.T) {
	// A directed 3-cycle is perfectly symmetric: ranks stay 1/3.
	g := directed(t, 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	ranks := RunPageRank(g, Params{}.WithDefaults(3))
	for v, r := range ranks {
		if math.Abs(r-1.0/3.0) > 1e-12 {
			t.Errorf("vertex %d: rank %v, want 1/3", v, r)
		}
	}
}

func TestPageRankSumsToOneWithDangling(t *testing.T) {
	// Vertex 2 is dangling; its mass must be redistributed, keeping the
	// total at 1.
	g := directed(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 0}})
	ranks := RunPageRank(g, Params{PRIterations: 25}.WithDefaults(4))
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
	// The sink collects the most mass, the unreferenced source the least.
	if !(ranks[2] > ranks[0] && ranks[3] < ranks[0]) {
		t.Errorf("rank ordering wrong: %v", ranks)
	}
}

func TestPageRankOneIterationByHand(t *testing.T) {
	// 0→1, 0→2: after one iteration from uniform 1/3 with d=0.85:
	// PR(0) = 0.15/3 + 0.85·(D/3), D = PR(1)+PR(2) = 2/3 (both dangling)
	g := directed(t, 3, [][2]int{{0, 1}, {0, 2}})
	ranks := RunPageRank(g, Params{PRIterations: 1}.WithDefaults(3))
	d, n := 0.85, 3.0
	dang := 2.0 / 3.0
	want0 := (1-d)/n + d*dang/n
	want1 := (1-d)/n + d*dang/n + d*(1.0/3.0)/2
	if math.Abs(ranks[0]-want0) > 1e-12 || math.Abs(ranks[1]-want1) > 1e-12 {
		t.Errorf("ranks = %v, want [%v %v %v]", ranks, want0, want1, want1)
	}
}

// ------------------------- SSSP -------------------------

func weightedDigraph(t *testing.T, n int, edges [][3]float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Directed(true), graph.WithReverse())
	b.SetNumVertices(n)
	for _, e := range edges {
		b.AddEdgeIDWeighted(graph.VertexID(e[0]), graph.VertexID(e[1]), e[2])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSSSPWeighted(t *testing.T) {
	// 0 →(1) 1 →(2) 2, and a direct 0 →(5) 2: the two-hop path wins.
	// Vertex 3 is unreachable.
	g := weightedDigraph(t, 4, [][3]float64{
		{0, 1, 1}, {1, 2, 2}, {0, 2, 5},
	})
	dist := RunSSSP(g, 0)
	want := SSSPOutput{0, 1, 3, math.Inf(1)}
	for v := range want {
		if dist[v] != want[v] && !(math.IsInf(dist[v], 1) && math.IsInf(want[v], 1)) {
			t.Errorf("vertex %d: dist %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestSSSPUnweightedMatchesBFS(t *testing.T) {
	g := randomGraph(t, 200, 600, 7, true)
	dist := RunSSSP(g, 0)
	depths := RunBFS(g, 0)
	for v := range depths {
		switch {
		case depths[v] == -1:
			if !math.IsInf(dist[v], 1) {
				t.Errorf("vertex %d: unreachable in BFS but dist %v", v, dist[v])
			}
		case dist[v] != float64(depths[v]):
			t.Errorf("vertex %d: dist %v, BFS depth %d", v, dist[v], depths[v])
		}
	}
}

func TestSSSPOutOfRangeSource(t *testing.T) {
	g := directed(t, 3, [][2]int{{0, 1}})
	dist := RunSSSP(g, 99)
	for v, d := range dist {
		if !math.IsInf(d, 1) {
			t.Errorf("vertex %d: dist %v, want +Inf", v, d)
		}
	}
}

// ------------------------- LCC -------------------------

func TestLCCTriangleAndKite(t *testing.T) {
	g := undirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	lcc := RunLCC(g)
	want := []float64{1, 1, 1.0 / 3.0, 0}
	for v := range want {
		if math.Abs(lcc[v]-want[v]) > 1e-12 {
			t.Errorf("vertex %d: LCC %v, want %v", v, lcc[v], want[v])
		}
	}
}

func TestLCCMeanMatchesStats(t *testing.T) {
	g := randomGraph(t, 300, 1500, 9, true)
	lcc := RunLCC(g)
	var sum float64
	for _, c := range lcc {
		sum += c
	}
	stats := RunStats(g)
	if math.Abs(sum/float64(len(lcc))-stats.MeanLCC) > 1e-12 {
		t.Errorf("mean of LCC = %v, STATS MeanLCC = %v", sum/float64(len(lcc)), stats.MeanLCC)
	}
}
