package algo

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestBFSOptMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		n, m int
		dir  bool
	}{
		{"directed", 300, 1500, true},
		{"undirected", 300, 1500, false},
		{"sparse", 400, 300, false},
		{"dense", 120, 4000, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := randomGraph(t, tc.n, tc.m, 17, tc.dir)
			want := RunBFS(g, 0)
			for _, workers := range []int{1, 2, 8} {
				got, err := RunBFSOpt(context.Background(), g, 0, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: depths diverge from RunBFS", workers)
				}
			}
		})
	}
}

func TestBFSOptOutOfRangeSource(t *testing.T) {
	g := randomGraph(t, 10, 20, 1, false)
	out, err := RunBFSOpt(context.Background(), g, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range out {
		if d != -1 {
			t.Fatal("out-of-range source must leave every vertex unreached")
		}
	}
}

func TestPageRankOptMatchesReference(t *testing.T) {
	for _, dir := range []bool{true, false} {
		g := randomGraph(t, 250, 1200, 23, dir)
		p := Params{PRIterations: 20}
		want := RunPageRank(g, p)
		for _, workers := range []int{1, 2, 8} {
			got, err := RunPageRankOpt(context.Background(), g, p, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d: length %d, want %d", workers, len(got), len(want))
			}
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9 {
					t.Fatalf("workers=%d dir=%v: rank[%d] = %v, want %v", workers, dir, v, got[v], want[v])
				}
			}
		}
	}
}

func TestPageRankOptParallelDeterministic(t *testing.T) {
	g := randomGraph(t, 200, 900, 5, false)
	p := Params{PRIterations: 15}
	a, err := RunPageRankOpt(context.Background(), g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPageRankOpt(context.Background(), g, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The pull kernel sums in fixed in-neighbor order, so parallel
	// outputs are bit-identical across worker counts.
	if !reflect.DeepEqual(a, b) {
		t.Fatal("pull PageRank output depends on worker count")
	}
}

func TestKernelsCancelled(t *testing.T) {
	g := randomGraph(t, 2000, 20000, 7, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := RunBFSOpt(ctx, g, 0, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("BFS workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if _, err := RunPageRankOpt(ctx, g, Params{PRIterations: 1000}, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("PR workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestPageRankOptCancelMidRun(t *testing.T) {
	g := randomGraph(t, 3000, 30000, 3, false)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunPageRankOpt(ctx, g, Params{PRIterations: 1 << 30}, 4)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PageRank did not return promptly after cancel")
	}
}
