package algo

import "graphalytics/internal/graph"

// RunConn computes the CONN workload: for every vertex, the smallest
// vertex ID in its connected component (weakly connected for directed
// graphs — the HashMin fixpoint every platform implements). The
// reference implementation uses union-find, which produces the identical
// labeling in near-linear time.
func RunConn(g *graph.Graph) ConnOutput {
	n := g.NumVertices()
	parent := make([]graph.VertexID, n)
	for i := range parent {
		parent[i] = graph.VertexID(i)
	}
	var find func(graph.VertexID) graph.VertexID
	find = func(v graph.VertexID) graph.VertexID {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	union := func(a, b graph.VertexID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Union by min ID keeps the invariant root = smallest member, so
		// no relabeling pass is needed.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	g.Arcs(union)

	labels := make(ConnOutput, n)
	for v := 0; v < n; v++ {
		labels[v] = find(graph.VertexID(v))
	}
	return labels
}

// ComponentSizes returns a map component label -> size.
func ComponentSizes(labels ConnOutput) map[graph.VertexID]int {
	sizes := make(map[graph.VertexID]int)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// NumComponents returns the number of connected components.
func NumComponents(labels ConnOutput) int {
	return len(ComponentSizes(labels))
}
