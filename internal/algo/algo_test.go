package algo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
)

func undirected(t testing.TB, edges [][2]int64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Directed(false), graph.DropSelfLoops())
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func directed(t testing.TB, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Directed(true), graph.WithReverse(), graph.Dedup())
	b.SetNumVertices(n)
	for _, e := range edges {
		b.AddEdgeID(graph.VertexID(e[0]), graph.VertexID(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(tb testing.TB, n, m int, seed int64, dir bool) *graph.Graph {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(graph.Directed(dir), graph.Dedup(), graph.DropSelfLoops(), graph.WithReverse())
	b.SetNumVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdgeID(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseKind(%s) = %v, %v", k, got, err)
		}
	}
	if k, err := ParseKind("bfs"); err != nil || k != BFS {
		t.Errorf("lowercase parse failed: %v %v", k, err)
	}
	if _, err := ParseKind("pagerank"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults(500)
	if p.CDIterations != 10 || p.CDDelta != 0.05 || p.CDPreference != 0.1 {
		t.Errorf("CD defaults wrong: %+v", p)
	}
	if p.EvoNewVertices != 5 {
		t.Errorf("EvoNewVertices = %d, want 5 (n/100)", p.EvoNewVertices)
	}
	if p.EvoPForward != 0.35 || p.EvoRBackward != 0.32 {
		t.Errorf("EVO defaults wrong: %+v", p)
	}
}

// ------------------------- STATS -------------------------

func TestStatsTriangle(t *testing.T) {
	g := undirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 0}})
	s := RunStats(g)
	if s.Vertices != 3 || s.Edges != 3 {
		t.Fatalf("size = %d/%d", s.Vertices, s.Edges)
	}
	if math.Abs(s.MeanLCC-1) > 1e-12 {
		t.Errorf("MeanLCC = %v, want 1", s.MeanLCC)
	}
}

func TestStatsKite(t *testing.T) {
	g := undirected(t, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	s := RunStats(g)
	want := (1 + 1 + 1.0/3.0 + 0) / 4
	if math.Abs(s.MeanLCC-want) > 1e-12 {
		t.Errorf("MeanLCC = %v, want %v", s.MeanLCC, want)
	}
}

func TestStatsDirectedNeighborhood(t *testing.T) {
	// Directed: 0->1, 1->2, 2->0 plus 0->2.
	// N(0)={1,2}, arcs inside: 1->2 and 2->... 2->0 not inside pair set;
	// ordered pairs in N(0)²: (1,2) has arc 1->2 ✓; (2,1) no arc. LCC(0)=1/2.
	// N(1)={0,2}: pairs (0,2): arc ✓, (2,0): arc ✓ => LCC(1)=1.
	// N(2)={0,1}: (0,1) arc ✓, (1,0) no => LCC(2)=1/2.
	g := directed(t, 3, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 2}})
	s := RunStats(g)
	want := (0.5 + 1 + 0.5) / 3
	if math.Abs(s.MeanLCC-want) > 1e-12 {
		t.Errorf("MeanLCC = %v, want %v", s.MeanLCC, want)
	}
}

func TestStatsEmptyNeighborhoods(t *testing.T) {
	g := directed(t, 4, [][2]int{{0, 1}})
	s := RunStats(g)
	if s.MeanLCC != 0 {
		t.Errorf("MeanLCC = %v, want 0", s.MeanLCC)
	}
	if s.Vertices != 4 || s.Edges != 1 {
		t.Errorf("size = %d/%d", s.Vertices, s.Edges)
	}
}

// ------------------------- BFS -------------------------

func TestBFSPath(t *testing.T) {
	g := directed(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	d := RunBFS(g, 0)
	want := BFSOutput{0, 1, 2, 3, -1}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("depths = %v, want %v", d, want)
	}
}

func TestBFSDirectionality(t *testing.T) {
	g := directed(t, 3, [][2]int{{1, 0}, {1, 2}})
	d := RunBFS(g, 0)
	if d[1] != -1 || d[2] != -1 {
		t.Errorf("BFS must follow out-edges only: %v", d)
	}
}

func TestBFSUndirected(t *testing.T) {
	g := undirected(t, [][2]int64{{0, 1}, {1, 2}})
	d := RunBFS(g, 2)
	want := BFSOutput{2, 1, 0}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("depths = %v, want %v", d, want)
	}
}

func TestBFSTraversedEdges(t *testing.T) {
	g := directed(t, 4, [][2]int{{0, 1}, {1, 2}, {3, 0}})
	d := RunBFS(g, 0)
	// Reached: 0,1,2 with out-degrees 1,1,0.
	if m := BFSTraversedEdges(g, d); m != 2 {
		t.Errorf("traversed = %d, want 2", m)
	}
}

// Property: BFS depths satisfy the triangle property — along any arc
// (u,v) with u reached, depth[v] <= depth[u]+1 and v is reached.
func TestQuickBFSDepthInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 60, 200, seed, true)
		d := RunBFS(g, 0)
		ok := true
		g.Arcs(func(u, v graph.VertexID) {
			if d[u] >= 0 {
				if d[v] < 0 || d[v] > d[u]+1 {
					ok = false
				}
			}
		})
		return ok && d[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// ------------------------- CONN -------------------------

func TestConnTwoComponents(t *testing.T) {
	g := directed(t, 6, [][2]int{{0, 1}, {1, 2}, {4, 3}})
	c := RunConn(g)
	want := ConnOutput{0, 0, 0, 3, 3, 5}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("labels = %v, want %v", c, want)
	}
	if NumComponents(c) != 3 {
		t.Errorf("components = %d, want 3", NumComponents(c))
	}
}

func TestConnWeaklyConnected(t *testing.T) {
	// Directed arcs both ways around: weakly connected regardless.
	g := directed(t, 4, [][2]int{{1, 0}, {1, 2}, {3, 2}})
	c := RunConn(g)
	for v, l := range c {
		if l != 0 {
			t.Fatalf("vertex %d label %d, want 0 (weak connectivity)", v, l)
		}
	}
}

// Property: labels are the minimum ID of the component, and two vertices
// joined by an arc always share a label.
func TestQuickConnInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 50, 120, seed, true)
		c := RunConn(g)
		ok := true
		g.Arcs(func(u, v graph.VertexID) {
			if c[u] != c[v] {
				ok = false
			}
		})
		for v, l := range c {
			if l > graph.VertexID(v) {
				ok = false // label must be the min member, never larger
			}
			if c[l] != l {
				ok = false // label vertex carries its own label
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// ------------------------- CD -------------------------

func TestTallyVotesBasics(t *testing.T) {
	if _, _, ok := TallyVotes(nil, 0.1); ok {
		t.Error("empty votes should report !ok")
	}
	votes := []Vote{
		{Label: 5, Score: 1, Degree: 2},
		{Label: 3, Score: 0.5, Degree: 2},
		{Label: 3, Score: 0.6, Degree: 2},
	}
	// Weights (m=0): label 5 -> 1.0, label 3 -> 1.1. Winner 3, max score 0.6.
	l, s, ok := TallyVotes(votes, 0)
	if !ok || l != 3 || math.Abs(s-0.6) > 1e-12 {
		t.Fatalf("TallyVotes = %d/%v/%v", l, s, ok)
	}
}

func TestTallyVotesTieBreak(t *testing.T) {
	votes := []Vote{
		{Label: 9, Score: 1, Degree: 1},
		{Label: 2, Score: 1, Degree: 1},
	}
	l, _, _ := TallyVotes(votes, 0)
	if l != 2 {
		t.Fatalf("tie must break to smallest label, got %d", l)
	}
}

func TestTallyVotesOrderInvariant(t *testing.T) {
	votes := []Vote{
		{Label: 1, Score: 0.31, Degree: 5},
		{Label: 2, Score: 0.77, Degree: 3},
		{Label: 1, Score: 0.55, Degree: 8},
		{Label: 2, Score: 0.12, Degree: 2},
	}
	rev := make([]Vote, len(votes))
	for i, v := range votes {
		rev[len(votes)-1-i] = v
	}
	l1, s1, _ := TallyVotes(votes, 0.1)
	l2, s2, _ := TallyVotes(rev, 0.1)
	if l1 != l2 || s1 != s2 {
		t.Fatal("TallyVotes must be input-order invariant")
	}
}

func TestCDTwoCliques(t *testing.T) {
	// Two 4-cliques joined by a single bridge edge: CD must separate
	// them. Built with dense IDs so vertex v is literally ID v.
	b := graph.NewBuilder(graph.Directed(false), graph.DropSelfLoops())
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdgeID(graph.VertexID(i), graph.VertexID(j))
			b.AddEdgeID(graph.VertexID(i+4), graph.VertexID(j+4))
		}
	}
	b.AddEdgeID(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := RunCD(g, Params{})
	if out[0] != out[1] || out[1] != out[2] {
		t.Errorf("clique A not one community: %v", out)
	}
	if out[4] != out[5] || out[5] != out[6] {
		t.Errorf("clique B not one community: %v", out)
	}
	if out[0] == out[7] {
		t.Errorf("cliques merged: %v", out)
	}
	if q := Modularity(g, out); q < 0.3 {
		t.Errorf("modularity = %v, want decent community structure", q)
	}
}

func TestCDIsolatedVertexKeepsOwnLabel(t *testing.T) {
	g := directed(t, 3, [][2]int{{0, 1}})
	out := RunCD(g, Params{})
	if out[2] != 2 {
		t.Errorf("isolated vertex label = %d, want 2", out[2])
	}
}

func TestCDDeterministic(t *testing.T) {
	g := randomGraph(t, 200, 800, 5, false)
	a := RunCD(g, Params{})
	b := RunCD(g, Params{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("CD not deterministic")
	}
}

func TestModularityRange(t *testing.T) {
	g := randomGraph(t, 100, 300, 7, false)
	out := RunCD(g, Params{})
	q := Modularity(g, out)
	if q < -1 || q > 1 {
		t.Errorf("modularity out of range: %v", q)
	}
	// Single community has modularity 0.
	all := make(CDOutput, g.NumVertices())
	if q := Modularity(g, all); math.Abs(q) > 1e-9 {
		t.Errorf("single-community modularity = %v, want 0", q)
	}
}

// ------------------------- EVO -------------------------

func TestEvoAddsVerticesAndEdges(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{Persons: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := RunEvo(g, Params{EvoNewVertices: 10, Seed: 42})
	if out.NewVertices != 10 {
		t.Fatalf("NewVertices = %d", out.NewVertices)
	}
	if len(out.Edges) < 10 {
		t.Fatalf("each new vertex must link at least its ambassador; got %d edges", len(out.Edges))
	}
	seen := map[graph.VertexID]bool{}
	for _, e := range out.Edges {
		if int(e[0]) < 500 {
			t.Fatalf("edge source %d is not a new vertex", e[0])
		}
		if e[1] >= e[0] {
			t.Fatalf("edge target %d not an earlier vertex than %d", e[1], e[0])
		}
		seen[e[0]] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d new vertices created edges", len(seen))
	}
}

func TestEvoDeterministic(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 400, Seed: 4})
	a := RunEvo(g, Params{EvoNewVertices: 8, Seed: 1})
	b := RunEvo(g, Params{EvoNewVertices: 8, Seed: 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("EVO not deterministic")
	}
	c := RunEvo(g, Params{EvoNewVertices: 8, Seed: 2})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should burn differently")
	}
}

func TestEvoEdgesSorted(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 300, Seed: 5})
	out := RunEvo(g, Params{EvoNewVertices: 6, Seed: 9})
	for i := 1; i < len(out.Edges); i++ {
		a, b := out.Edges[i-1], out.Edges[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("edges not strictly sorted at %d: %v %v", i, a, b)
		}
	}
}

func TestApplyEvo(t *testing.T) {
	g, _ := datagen.Generate(datagen.Config{Persons: 300, Seed: 6})
	out := RunEvo(g, Params{EvoNewVertices: 5, Seed: 11})
	grown := ApplyEvo(g, out)
	if grown.NumVertices() != 305 {
		t.Fatalf("vertices = %d, want 305", grown.NumVertices())
	}
	if grown.NumEdges() != g.NumEdges()+int64(len(out.Edges)) {
		t.Fatalf("edges = %d, want %d", grown.NumEdges(), g.NumEdges()+int64(len(out.Edges)))
	}
	for _, e := range out.Edges {
		if !grown.HasArc(e[0], e[1]) {
			t.Fatalf("missing new arc %v", e)
		}
	}
}

func TestEvoBurnCap(t *testing.T) {
	// A dense graph with pf ~ 1 would burn everything; the cap must hold.
	g := randomGraph(t, 200, 4000, 8, false)
	out := RunEvo(g, Params{EvoNewVertices: 1, EvoPForward: 0.95, EvoMaxBurn: 50, Seed: 3})
	if len(out.Edges) > 50 {
		t.Errorf("burn cap exceeded: %d edges from one fire", len(out.Edges))
	}
}

// Property: EVO on any graph produces edges only from new vertices to
// strictly older vertices, with no duplicates.
func TestQuickEvoInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 80, 240, seed, false)
		out := RunEvo(g, Params{EvoNewVertices: 5, Seed: uint64(seed) + 7})
		seen := map[[2]graph.VertexID]bool{}
		for _, e := range out.Edges {
			if int(e[0]) < 80 || e[1] >= e[0] || seen[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
