package core

import (
	"context"
	"errors"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/report"
	"graphalytics/internal/sched"
	"graphalytics/internal/stamp"
	"graphalytics/internal/telemetry"
)

// CellSpec is the self-contained description of one matrix cell handed
// to a CellExecutor: everything a process that has never seen this
// campaign needs to execute the cell and reproduce the exact result a
// local run would have produced — the coordinates, the full repetition
// protocol, and the content fingerprints that key artifact fetching and
// the stamped result store.
type CellSpec struct {
	// Platform is the platform name ("pregel", "graphdb", ...). The
	// executor resolves it to a concrete configuration; the distributed
	// lease pool ships the platform's construction parameters in the
	// lease so every runner builds an identical engine.
	Platform string
	// Graph is the dataset name as it appears in reports.
	Graph string
	// Algorithm is the workload to run.
	Algorithm algo.Kind
	// Params are the raw campaign parameters (defaults are applied
	// against the graph's vertex count by whoever executes the cell,
	// exactly as the local pool does).
	Params algo.Params

	// Timeout, Validate, Reps, Warmup, and MonitorInterval carry the
	// campaign's per-cell execution protocol.
	Timeout         time.Duration
	Validate        bool
	Reps            int
	Warmup          int
	MonitorInterval time.Duration

	// GraphFP is the dataset fingerprint (generator identity or content
	// hash) — the content address under which the graph artifact can be
	// fetched from a cache or from the campaign manager.
	GraphFP stamp.Fingerprint
	// CellFP is the cell's own content fingerprint (zero only when
	// stamping is fully disabled).
	CellFP stamp.Fingerprint
	// Binary is the binary/kernel version folded into fingerprints, so
	// a remote executor stamps results under the campaign's identity,
	// not its own.
	Binary string
	// GraphEdges is |E| of the dataset, used to fill missing-value rows
	// when the executor fails without producing a result.
	GraphEdges int64
}

// CellExecutor is the execution seam of the campaign engine: the
// scheduler, restore logic, journaling, stamping, and report collation
// are identical for every campaign, and only the way a pending cell
// turns into a RunResult differs. The default (Benchmark.Executor ==
// nil) is the local pool — the in-process DAG with one ETL per
// (platform, graph) pair feeding per-cell run jobs. internal/dist's
// Manager implements this interface as a remote lease pool that leases
// cells to runner processes over the network.
//
// ExecuteCell returns the finished cell and the raw execution error
// (nil for success and for validation failures, mirroring the local
// pool): the campaign's retry policy classifies the error, and on the
// final attempt the RunResult — complete either way — is recorded. An
// executor that cannot produce a result at all returns a zero
// RunResult; the campaign then synthesizes the missing-value row.
// ExecuteCell must be safe for concurrent use: the scheduler overlaps
// cells up to the campaign parallelism.
type CellExecutor interface {
	ExecuteCell(ctx context.Context, spec CellSpec) (report.RunResult, error)
}

// cellSpec assembles the executor hand-off for one pending cell.
func (c *campaign) cellSpec(p platform.Platform, g *graph.Graph, a algo.Kind, fp stamp.Fingerprint) CellSpec {
	b := c.b
	return CellSpec{
		Platform:        p.Name(),
		Graph:           g.Name(),
		Algorithm:       a,
		Params:          b.Params,
		Timeout:         b.Timeout,
		Validate:        b.Validate,
		Reps:            b.Reps,
		Warmup:          b.Warmup,
		MonitorInterval: b.MonitorInterval,
		GraphFP:         c.graphFPs[g.Name()],
		CellFP:          fp,
		Binary:          c.binary,
		GraphEdges:      g.NumEdges(),
	}
}

// executorJobs plans the pending cells of one (platform, graph) pair as
// independent executor jobs: no local load job exists — ETL is the
// executor's concern (a remote runner amortizes it through its own
// artifact cache) — and cells only depend on the executor having
// capacity, which it expresses by blocking ExecuteCell.
func (c *campaign) executorJobs(p platform.Platform, g *graph.Graph, pending []pendingCell) []sched.Job {
	jobs := make([]sched.Job, 0, len(pending))
	for _, cell := range pending {
		cell := cell
		spec := c.cellSpec(p, g, cell.alg, cell.fp)
		jobs = append(jobs, sched.Job{
			ID:    cell.key,
			Class: p.Name(),
			Run: func(ctx context.Context, attempt int) error {
				return c.runExecutorCell(ctx, spec, cell, attempt)
			},
		})
	}
	return jobs
}

// runExecutorCell drives one cell through the executor seam with the
// same outcome discipline as the local pool: cancelled cells are never
// recorded (a resumed campaign must re-run them), transient failures
// propagate for the scheduler to retry, and the final attempt always
// records a complete row — the executor's own if it produced one, a
// synthesized missing value otherwise.
func (c *campaign) runExecutorCell(ctx context.Context, spec CellSpec, cell pendingCell, attempt int) error {
	sp := telemetry.StartSpan("cell", "execute:"+spec.Platform+"/"+spec.Graph+"/"+string(spec.Algorithm))
	sp.SetAttr("attempt", attempt)
	r, execErr := c.b.Executor.ExecuteCell(ctx, spec)
	if execErr != nil {
		sp.SetAttr("error", execErr.Error())
	}
	sp.End()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if execErr != nil && !c.finalAttempt(execErr, attempt) {
		return execErr
	}
	if r.Platform == "" {
		r = missingValue(spec, execErr)
	}
	r.Attempts = attempt
	c.finishCell(cell.slot, cell.key, cell.fp, r)
	return execErr
}

// missingValue synthesizes the report row for a cell whose executor
// failed without producing a result, classifying terminal states the
// way the local pool does.
func missingValue(spec CellSpec, err error) report.RunResult {
	r := report.RunResult{
		Platform:   spec.Platform,
		Graph:      spec.Graph,
		Algorithm:  spec.Algorithm,
		Status:     report.StatusError,
		GraphEdges: spec.GraphEdges,
	}
	if err != nil {
		r.Err = err.Error()
		switch {
		case errors.Is(err, platform.ErrOutOfMemory):
			r.Status = report.StatusOOM
		case errors.Is(err, context.DeadlineExceeded):
			r.Status = report.StatusTimeout
		}
	} else {
		r.Err = "executor returned no result"
	}
	return r
}
