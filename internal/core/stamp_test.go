package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/artifact"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
	"graphalytics/internal/stamp"
)

// StampConfig forwards the wrapped platform's config stamp, so stamped
// campaigns over a countingPlatform fingerprint the real configuration
// instead of falling back to the wrapper's name.
func (c *countingPlatform) StampConfig() string { return platform.StampConfigOf(c.Platform) }

func openStamps(t *testing.T, path string) *stamp.Store {
	t.Helper()
	s, err := stamp.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// The tentpole acceptance test: a second identical campaign over a
// stamped result store executes zero ETL and zero kernels, yet renders
// a complete report with full runtimes, marked uptodate.
func TestStampedRerunIsNoOp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stamps.jsonl")
	g := smokeGraph(t, 200, "stamped")

	cp1 := &countingPlatform{Platform: pregel.New(pregel.Options{})}
	b1 := &Benchmark{
		Platforms:     []platform.Platform{cp1},
		Graphs:        []*graph.Graph{g},
		Validate:      true,
		Stamps:        openStamps(t, path),
		BinaryVersion: "v1",
	}
	rep1, err := b1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cp1.runs.Load() != int64(len(algo.Kinds)) {
		t.Fatalf("first campaign executed %d cells, want %d", cp1.runs.Load(), len(algo.Kinds))
	}

	cp2 := &countingPlatform{Platform: pregel.New(pregel.Options{})}
	b2 := &Benchmark{
		Platforms:     []platform.Platform{cp2},
		Graphs:        []*graph.Graph{g},
		Validate:      true,
		Stamps:        openStamps(t, path),
		BinaryVersion: "v1",
	}
	rep2, err := b2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cp2.loads.Load() != 0 || cp2.runs.Load() != 0 {
		t.Fatalf("unchanged matrix still executed %d loads, %d runs", cp2.loads.Load(), cp2.runs.Load())
	}
	if len(rep2.Results) != len(rep1.Results) {
		t.Fatalf("restored report has %d results, want %d", len(rep2.Results), len(rep1.Results))
	}
	for i, r := range rep2.Results {
		if r.Provenance != report.ProvenanceUptodate {
			t.Errorf("%s: provenance = %q, want uptodate", r.Algorithm, r.Provenance)
		}
		if r.Status != report.StatusSuccess {
			t.Errorf("%s: status = %s", r.Algorithm, r.Status)
		}
		// Restored cells carry the original run's full numbers.
		orig := rep1.Results[i]
		if r.Runtime != orig.Runtime || r.KTEPS != orig.KTEPS || r.GraphEdges != orig.GraphEdges {
			t.Errorf("%s: restored numbers diverge: %v/%v kTEPS=%v/%v", r.Algorithm,
				r.Runtime, orig.Runtime, r.KTEPS, orig.KTEPS)
		}
		if orig.Reps != nil && (r.Reps == nil || r.Reps.Mean != orig.Reps.Mean) {
			t.Errorf("%s: repetition statistics lost on restore", r.Algorithm)
		}
	}
	if s := rep2.Summary(); !strings.Contains(s, "uptodate") {
		t.Errorf("summary does not surface uptodate cells:\n%s", s)
	}
}

// Every fingerprint input must invalidate cells on its own: graph seed,
// weights flag, platform worker budget, workload policy, binary version.
func TestStampInvalidation(t *testing.T) {
	mkGraph := func(t *testing.T, seed uint64, weighted bool) *graph.Graph {
		g, err := datagen.Generate(datagen.Config{Persons: 150, Seed: seed, Weighted: weighted, Name: "inv"})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	type cfg struct {
		seed     uint64
		weighted bool
		workers  int
		validate bool
		binary   string
	}
	base := cfg{seed: 1, workers: 1, validate: true, binary: "v1"}
	run := func(t *testing.T, s *stamp.Store, c cfg) int64 {
		cp := &countingPlatform{Platform: pregel.New(pregel.Options{Workers: c.workers})}
		b := &Benchmark{
			Platforms:     []platform.Platform{cp},
			Graphs:        []*graph.Graph{mkGraph(t, c.seed, c.weighted)},
			Algorithms:    []algo.Kind{algo.BFS},
			Validate:      c.validate,
			Stamps:        s,
			BinaryVersion: c.binary,
		}
		if _, err := b.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return cp.runs.Load()
	}
	variants := map[string]cfg{
		"unchanged": base,
		"seed":      {seed: 2, workers: 1, validate: true, binary: "v1"},
		"weights":   {seed: 1, weighted: true, workers: 1, validate: true, binary: "v1"},
		"workers":   {seed: 1, workers: 2, validate: true, binary: "v1"},
		"workload":  {seed: 1, workers: 1, validate: false, binary: "v1"},
		"binary":    {seed: 1, workers: 1, validate: true, binary: "v2"},
	}
	for name, variant := range variants {
		t.Run(name, func(t *testing.T) {
			s := openStamps(t, filepath.Join(t.TempDir(), "stamps.jsonl"))
			if got := run(t, s, base); got != 1 {
				t.Fatalf("base campaign executed %d cells, want 1", got)
			}
			got := run(t, s, variant)
			if name == "unchanged" {
				if got != 0 {
					t.Errorf("identical re-run executed %d cells, want 0", got)
				}
			} else if got != 1 {
				t.Errorf("changing %s re-executed %d cells, want 1 (stale cell reused)", name, got)
			}
		})
	}
}

// Satellite bugfix: a journaled result from a different binary (or any
// other fingerprint input) must not be silently reused on resume — the
// mismatched entry is rejected and the cell re-executes.
func TestResumeRejectsMismatchedJournal(t *testing.T) {
	checkpoint := filepath.Join(t.TempDir(), "campaign.journal")
	g := smokeGraph(t, 150, "mismatch")
	run := func(binary string) (*countingPlatform, *report.Report) {
		cp := &countingPlatform{Platform: pregel.New(pregel.Options{})}
		b := &Benchmark{
			Platforms:      []platform.Platform{cp},
			Graphs:         []*graph.Graph{g},
			Algorithms:     []algo.Kind{algo.BFS, algo.CONN},
			CheckpointPath: checkpoint,
			BinaryVersion:  binary,
		}
		rep, err := b.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return cp, rep
	}

	if cp, _ := run("v1"); cp.runs.Load() != 2 {
		t.Fatalf("first campaign executed %d cells", cp.runs.Load())
	}
	// Same checkpoint, same binary: everything resumes.
	if cp, rep := run("v1"); cp.runs.Load() != 0 {
		t.Errorf("same-binary resume executed %d cells, want 0", cp.runs.Load())
	} else {
		for _, r := range rep.Results {
			if r.Provenance != report.ProvenanceResumed {
				t.Errorf("%s: provenance = %q, want resumed", r.Algorithm, r.Provenance)
			}
		}
	}
	// Same checkpoint, different binary: the stale entries must NOT be
	// reused — every cell re-executes live.
	cp, rep := run("v2")
	if cp.runs.Load() != 2 {
		t.Errorf("new-binary resume executed %d cells, want 2 (stale journal reused?)", cp.runs.Load())
	}
	for _, r := range rep.Results {
		if r.Provenance != report.ProvenanceLive {
			t.Errorf("%s: provenance = %q, want live", r.Algorithm, r.Provenance)
		}
	}
}

// The ETL artifact cache: a second campaign over the same (platform,
// graph) restores the graph database's record stores instead of
// rebuilding them, and the report says so.
func TestETLCacheProvenance(t *testing.T) {
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := smokeGraph(t, 200, "etl")
	run := func() *report.Report {
		b := &Benchmark{
			Platforms:  []platform.Platform{graphdb.New(graphdb.Options{})},
			Graphs:     []*graph.Graph{g},
			Algorithms: []algo.Kind{algo.BFS, algo.CONN},
			Artifacts:  cache,
		}
		rep, err := b.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, r := range run().Results {
		if r.Status != report.StatusSuccess || r.Provenance != report.ProvenanceLive {
			t.Fatalf("first campaign %s: status=%s provenance=%q", r.Algorithm, r.Status, r.Provenance)
		}
	}
	for _, r := range run().Results {
		if r.Status != report.StatusSuccess {
			t.Errorf("cached campaign %s: %s (%s)", r.Algorithm, r.Status, r.Err)
		}
		if r.Provenance != report.ProvenanceETLCache {
			t.Errorf("%s: provenance = %q, want etl-cache", r.Algorithm, r.Provenance)
		}
	}
}

// A corrupted ETL artifact is detected on read (verify-on-read), the
// campaign falls back to a live ETL, and the cell still succeeds.
func TestETLCacheCorruptionFallsBackToLive(t *testing.T) {
	dir := t.TempDir()
	cache, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.Verify = true
	g := smokeGraph(t, 200, "etl-rot")
	run := func() *report.Report {
		b := &Benchmark{
			Platforms:  []platform.Platform{graphdb.New(graphdb.Options{})},
			Graphs:     []*graph.Graph{g},
			Algorithms: []algo.Kind{algo.BFS},
			Artifacts:  cache,
		}
		rep, err := b.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	run()

	// Tamper with every ETL blob behind the cache's back.
	blobs, err := filepath.Glob(filepath.Join(dir, "etl", "*.bin"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("no ETL artifacts written: %v, %v", blobs, err)
	}
	for _, blob := range blobs {
		if err := os.WriteFile(blob, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rep := run()
	r := rep.Results[0]
	if r.Status != report.StatusSuccess {
		t.Fatalf("campaign over corrupted cache: %s (%s)", r.Status, r.Err)
	}
	if r.Provenance != report.ProvenanceLive {
		t.Errorf("provenance = %q, want live (corrupt blob must not count as a cache hit)", r.Provenance)
	}
}
