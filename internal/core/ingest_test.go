package core

import (
	"context"
	"errors"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
)

func ingestTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Directed(false), graph.WithName("tiny"))
	for i := 0; i < 16; i++ {
		b.AddEdgeID(graph.VertexID(i), graph.VertexID((i+1)%16))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIngestHelper(t *testing.T) {
	g, stat, err := Ingest("spec:tiny", 4, func() (*graph.Graph, error) {
		return ingestTestGraph(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stat.Graph != "tiny" || stat.Source != "spec:tiny" || stat.Workers != 4 {
		t.Errorf("stat = %+v", stat)
	}
	if stat.Vertices != g.NumVertices() || stat.Edges != g.NumEdges() {
		t.Errorf("stat sizes = %+v, graph %v", stat, g)
	}
	if stat.Duration <= 0 || stat.EVPS <= 0 {
		t.Errorf("ingest timing not populated: %+v", stat)
	}

	boom := errors.New("boom")
	if _, _, err := Ingest("x", 0, func() (*graph.Graph, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("build error not propagated: %v", err)
	}
}

func TestBenchmarkCarriesIngestsIntoReport(t *testing.T) {
	g := ingestTestGraph(t)
	bench := &Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.BFS},
		Ingests: []report.IngestStat{{
			Graph: "tiny", Vertices: g.NumVertices(), Edges: g.NumEdges(),
		}},
	}
	rep, err := bench.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ingests) != 1 || rep.Ingests[0].Graph != "tiny" {
		t.Fatalf("report ingests = %+v", rep.Ingests)
	}
}
