package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
)

// fakeExecutor scripts ExecuteCell outcomes per cell for seam tests.
type fakeExecutor struct {
	mu    sync.Mutex
	calls map[string]int
	run   func(spec CellSpec, call int) (report.RunResult, error)
}

func (f *fakeExecutor) ExecuteCell(_ context.Context, spec CellSpec) (report.RunResult, error) {
	key := spec.Platform + "/" + spec.Graph + "/" + string(spec.Algorithm)
	f.mu.Lock()
	f.calls[key]++
	call := f.calls[key]
	f.mu.Unlock()
	return f.run(spec, call)
}

func okResult(spec CellSpec) report.RunResult {
	return report.RunResult{
		Platform:   spec.Platform,
		Graph:      spec.Graph,
		Algorithm:  spec.Algorithm,
		Status:     report.StatusSuccess,
		Runtime:    1,
		GraphEdges: spec.GraphEdges,
	}
}

func executorBench(t *testing.T, exec CellExecutor, algs ...algo.Kind) *Benchmark {
	t.Helper()
	return &Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{smokeGraph(t, 120, "seam")},
		Algorithms: algs,
		Executor:   exec,
	}
}

func TestExecutorSeamCollatesResults(t *testing.T) {
	exec := &fakeExecutor{calls: map[string]int{}, run: func(spec CellSpec, _ int) (report.RunResult, error) {
		if spec.CellFP.IsZero() || spec.GraphFP.IsZero() {
			t.Errorf("%s/%s: executor spec missing fingerprints", spec.Platform, string(spec.Algorithm))
		}
		if spec.Binary == "" {
			t.Errorf("executor spec missing binary version")
		}
		return okResult(spec), nil
	}}
	rep, err := executorBench(t, exec, algo.BFS, algo.CONN, algo.PR).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	// Collation is by matrix coordinates regardless of completion order.
	for i, want := range []algo.Kind{algo.BFS, algo.CONN, algo.PR} {
		if rep.Results[i].Algorithm != want {
			t.Errorf("result %d = %s, want %s", i, rep.Results[i].Algorithm, want)
		}
	}
}

func TestExecutorSeamRetriesTransientErrors(t *testing.T) {
	exec := &fakeExecutor{calls: map[string]int{}, run: func(spec CellSpec, call int) (report.RunResult, error) {
		if call == 1 {
			return report.RunResult{}, fmt.Errorf("transient network burp")
		}
		return okResult(spec), nil
	}}
	b := executorBench(t, exec, algo.BFS)
	b.Retries = 2
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Status != report.StatusSuccess {
		t.Fatalf("status = %s after retry, want success (%s)", r.Status, r.Err)
	}
	if r.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", r.Attempts)
	}
	if exec.calls["pregel/seam/BFS"] != 2 {
		t.Errorf("executor called %d times, want 2", exec.calls["pregel/seam/BFS"])
	}
}

func TestExecutorSeamTerminalErrorsDoNotRetry(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want report.Status
	}{
		{"oom", fmt.Errorf("runner: %w", platform.ErrOutOfMemory), report.StatusOOM},
		{"timeout", fmt.Errorf("runner: %w", context.DeadlineExceeded), report.StatusTimeout},
	} {
		t.Run(tc.name, func(t *testing.T) {
			exec := &fakeExecutor{calls: map[string]int{}, run: func(CellSpec, int) (report.RunResult, error) {
				return report.RunResult{}, tc.err
			}}
			b := executorBench(t, exec, algo.BFS)
			b.Retries = 3
			rep, err := b.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			r := rep.Results[0]
			if r.Status != tc.want {
				t.Fatalf("status = %s, want %s", r.Status, tc.want)
			}
			if got := exec.calls["pregel/seam/BFS"]; got != 1 {
				t.Errorf("terminal error retried: %d calls", got)
			}
		})
	}
}

func TestExecutorSeamSynthesizesMissingValue(t *testing.T) {
	exec := &fakeExecutor{calls: map[string]int{}, run: func(CellSpec, int) (report.RunResult, error) {
		return report.RunResult{}, errors.New("runner exploded")
	}}
	b := executorBench(t, exec, algo.BFS)
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Status != report.StatusError || r.Err != "runner exploded" {
		t.Fatalf("missing value not synthesized: %+v", r)
	}
	if r.GraphEdges <= 0 {
		t.Errorf("missing value lost graph metadata: %+v", r)
	}
}

func TestExecutorSeamCancelledCellsNotRecorded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	exec := &fakeExecutor{calls: map[string]int{}, run: func(spec CellSpec, _ int) (report.RunResult, error) {
		if calls.Add(1) == 1 {
			cancel()
			return report.RunResult{}, ctx.Err()
		}
		return okResult(spec), nil
	}}
	b := executorBench(t, exec, algo.BFS, algo.CONN, algo.PR)
	b.Parallelism = 1
	_, err := b.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
}

func TestExecutorSeamUptodateSkipsExecutor(t *testing.T) {
	store := openStamps(t, t.TempDir()+"/stamps.jsonl")
	exec := &fakeExecutor{calls: map[string]int{}, run: func(spec CellSpec, _ int) (report.RunResult, error) {
		return okResult(spec), nil
	}}
	b := executorBench(t, exec, algo.BFS, algo.CONN)
	b.Stamps = store
	if _, err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := len(exec.calls); n != 2 {
		t.Fatalf("first campaign: %d cells executed, want 2", n)
	}

	// Same campaign again: every cell is UPTODATE, the executor must
	// never be consulted.
	exec2 := &fakeExecutor{calls: map[string]int{}, run: func(spec CellSpec, _ int) (report.RunResult, error) {
		t.Error("executor called for an up-to-date cell")
		return okResult(spec), nil
	}}
	b2 := executorBench(t, exec2, algo.BFS, algo.CONN)
	b2.Graphs = b.Graphs
	b2.Platforms = b.Platforms
	b2.Stamps = store
	rep, err := b2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Provenance != report.ProvenanceUptodate {
			t.Errorf("%s: provenance %q, want uptodate", r.Cell(), r.Provenance)
		}
	}
}
