// Package core implements the Benchmark Core of the Graphalytics
// architecture (Figure 2): "the benchmark harness that binds together
// Graphalytics". It drives the full run matrix (platforms × graphs ×
// algorithms), times each execution excluding ETL (§3.3: "The runtime
// measures the complete execution of an algorithm, from job submission
// to result availability, but does not include ETL"), enforces per-run
// timeouts, captures failures as missing values, validates every output
// against the reference implementations, monitors the system during
// runs, and hands the results to the Report Generator.
//
// Campaigns execute through the internal/sched scheduler: the matrix
// becomes a DAG with one ETL/load job per (platform, graph) pair
// feeding one run job per algorithm cell, executed by a bounded worker
// pool with per-platform concurrency limits. Each cell may repeat
// (warm-ups plus timed repetitions, the methodology LDBC Graphalytics
// standardized), transient failures retry while OOM/timeout stay
// terminal, and completed cells journal to a checkpoint file so an
// interrupted campaign resumes without re-running finished work. The
// report is collated by matrix coordinates, so its ordering is
// identical regardless of schedule.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/artifact"
	"graphalytics/internal/graph"
	"graphalytics/internal/monitor"
	"graphalytics/internal/platform"
	"graphalytics/internal/report"
	"graphalytics/internal/sched"
	"graphalytics/internal/stamp"
	"graphalytics/internal/telemetry"
	"graphalytics/internal/validation"
	"graphalytics/internal/workload"
)

// Benchmark is one configured benchmark campaign.
type Benchmark struct {
	// Platforms are the systems under test. Names must be unique: they
	// key the report matrix and the resume journal.
	Platforms []platform.Platform
	// Graphs are the datasets. Names must be unique.
	Graphs []*graph.Graph
	// Algorithms is the workload selection (nil = every workload in the
	// registry, in registry order).
	Algorithms []algo.Kind
	// Params carries algorithm parameters (zero fields take defaults).
	Params algo.Params
	// Timeout bounds each algorithm execution (0 = no timeout). Timed
	// out cells appear as missing values, the way the paper reports
	// "Due to time constraints, MapReduce was not able to complete some
	// algorithms on Graph500".
	Timeout time.Duration
	// Validate enables the Output Validator on every successful run.
	Validate bool
	// MonitorInterval sets the System Monitor sampling period
	// (0 disables monitoring).
	MonitorInterval time.Duration
	// Progress, when non-nil, receives a line per completed cell. Under
	// a parallel schedule cells complete out of matrix order; the final
	// report is collated by coordinates regardless.
	Progress func(r report.RunResult)

	// Parallelism bounds concurrently executing campaign jobs
	// (0 = runtime.NumCPU()). Parallelism 1 reproduces the sequential
	// nested-loop schedule: load a graph, run its cells, unload, next.
	Parallelism int
	// Reps is the number of timed repetitions per cell (<= 1 = one).
	// With more than one, RunResult.Runtime is the mean of the timed
	// repetitions and RunResult.Reps carries the full statistics.
	Reps int
	// Warmup is the number of untimed warm-up executions before the
	// timed repetitions of each cell.
	Warmup int
	// Retries is the number of extra attempts granted to transiently
	// failed cells. Out-of-memory and timeout are terminal states and
	// never retry.
	Retries int
	// RetryBackoff is the wait before the first retry (doubling per
	// retry; 0 = immediate).
	RetryBackoff time.Duration
	// CheckpointPath, when non-empty, journals every finished cell to
	// this file; re-running the same campaign with the same path skips
	// the journaled cells and re-executes only unfinished ones.
	// (Monitor samples are not preserved across a resume.)
	CheckpointPath string
	// Ingests records the host-graph ingest phase (parse + CSR build)
	// of each dataset, carried into the report as a first-class phase
	// alongside the per-cell processing times. Drivers populate it via
	// core.Ingest while building Graphs.
	Ingests []report.IngestStat
	// Tracker, when non-nil, observes the live schedule so a driver can
	// serve campaign progress (per-job state, per-worker occupation,
	// ETA) while the matrix runs — the "/status" view.
	Tracker *sched.Tracker

	// Stamps, when non-nil, enables the incremental campaign engine:
	// every successful cell is recorded in this stamped result store
	// under its content fingerprint (dataset identity × workload and
	// validation policy × platform configuration including the worker
	// budget × binary version), and a cell whose fingerprint is already
	// stored is marked UPTODATE — its full report entry (runtimes,
	// RepStats, kTEPS) restores and no kernel runs. Drivers normally
	// open the store at artifact.Cache.StampStorePath() so stamps live
	// next to the cached artifacts.
	Stamps *stamp.Store
	// GraphStamps maps graph names to dataset fingerprints supplied by
	// the driver (generator kind + seed + parameters — cheaper and more
	// precise than content hashing). Graphs without an entry are
	// fingerprinted by content (one serialization pass) whenever
	// stamping, journaling, or artifact caching is active.
	GraphStamps map[string]stamp.Fingerprint
	// Artifacts, when non-nil, caches platform ETL outputs under their
	// fingerprint for platforms implementing platform.CachedLoader, so a
	// later campaign restores the loaded form instead of re-running the
	// transformation.
	Artifacts *artifact.Cache
	// BinaryVersion overrides stamp.BinaryVersion() as the binary /
	// kernel version folded into fingerprints. Tests use it to simulate
	// a rebuilt binary invalidating stamped results.
	BinaryVersion string

	// Executor, when non-nil, replaces the local pool with an external
	// cell executor — the seam the distributed campaign manager
	// (internal/dist) plugs into: every pending cell becomes one
	// scheduler job that hands a self-contained CellSpec to the
	// executor and records whatever comes back through the same
	// journal/stamp/collation path as local execution. Platforms are
	// never loaded in this process; ETL happens wherever the executor
	// runs the cell. Local execution (nil) is the default and its
	// schedule, job structure, and report output are unchanged.
	Executor CellExecutor
}

// Ingest runs build, timing it as a dataset's ingest phase — the
// makespan-vs-processing split LDBC Graphalytics standardized. source
// names where the graph came from (a file path or generator spec) and
// workers is the ingest parallelism it was built with (0 = all cores).
func Ingest(source string, workers int, build func() (*graph.Graph, error)) (*graph.Graph, report.IngestStat, error) {
	start := time.Now()
	g, err := build()
	d := time.Since(start)
	if err != nil {
		return nil, report.IngestStat{}, err
	}
	st := report.IngestStat{
		Graph:    g.Name(),
		Source:   source,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Duration: d,
		Workers:  workers,
	}
	if d > 0 {
		st.EVPS = float64(g.NumEdges()) / d.Seconds()
	}
	return g, st, nil
}

// Run executes the full matrix and returns the report. The context
// cancels the whole campaign.
func (b *Benchmark) Run(ctx context.Context) (*report.Report, error) {
	if len(b.Platforms) == 0 {
		return nil, errors.New("core: no platforms configured")
	}
	if len(b.Graphs) == 0 {
		return nil, errors.New("core: no graphs configured")
	}
	if err := checkUniqueNames(b.Platforms, b.Graphs); err != nil {
		return nil, err
	}
	algs := b.Algorithms
	if len(algs) == 0 {
		algs = workload.Kinds()
	}
	seenAlg := map[algo.Kind]bool{}
	for _, a := range algs {
		if seenAlg[a] {
			return nil, fmt.Errorf("core: duplicate algorithm %q", a)
		}
		if _, okW := workload.Lookup(a); !okW {
			return nil, fmt.Errorf("core: algorithm %q is not in the workload registry", a)
		}
		seenAlg[a] = true
	}

	c := &campaign{
		b:     b,
		algs:  algs,
		cells: make([]*report.RunResult, len(b.Platforms)*len(b.Graphs)*len(algs)),
		retry: sched.RetryPolicy{
			MaxAttempts: b.Retries + 1,
			Backoff:     b.RetryBackoff,
			Retryable:   transient,
		},
	}
	if b.CheckpointPath != "" {
		j, err := sched.OpenJournal(b.CheckpointPath)
		if err != nil {
			return nil, fmt.Errorf("core: opening checkpoint: %w", err)
		}
		defer j.Close()
		c.journal = j
	}
	if err := c.setupStamps(algs); err != nil {
		return nil, err
	}

	rep := &report.Report{Started: time.Now()}
	rep.Ingests = append(rep.Ingests, b.Ingests...)
	jobs := c.buildJobs()
	slog.Info("core: campaign start",
		"platforms", len(b.Platforms), "graphs", len(b.Graphs), "algorithms", len(algs),
		"cells", len(c.cells), "jobs", len(jobs), "reps", b.Reps, "warmup", b.Warmup)
	parallelism := b.Parallelism
	limits := c.classLimits()
	if b.Executor != nil {
		// Lease-pool mode: jobs spend their time blocked in ExecuteCell
		// waiting for remote capacity, so the real concurrency bound is
		// the executor's, not this process's core count. Default to one
		// goroutine per cell and drop the per-platform class limits —
		// platform resource budgets belong to the process that loads the
		// graph, and that is the runner.
		if parallelism == 0 {
			parallelism = len(jobs)
		}
		limits = nil
	}
	_, schedErr := sched.Run(ctx, jobs, sched.Options{
		Parallelism: parallelism,
		ClassLimits: limits,
		Retry:       c.retry,
		Tracker:     b.Tracker,
	})
	// Unload any graph whose cells did not all finish (cancellation).
	for _, pg := range c.pgs {
		if pg.loaded != nil && pg.remaining.Load() > 0 {
			pg.loaded.Close()
		}
	}
	if schedErr != nil {
		return nil, schedErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Deterministic collation: matrix coordinates, never schedule order.
	for i, r := range c.cells {
		if r == nil {
			// Every path (success, failure, load failure, journal)
			// fills its slot; this is a harness bug, not a missing value.
			return nil, fmt.Errorf("core: internal error: cell %d not executed", i)
		}
		rep.Results = append(rep.Results, *r)
	}
	rep.Finished = time.Now()
	return rep, nil
}

// transient classifies errors the scheduler may retry: everything
// except the terminal missing-value states (out of memory, timeout)
// and interruption. platform.ErrInterrupted always wraps the context
// error, so the two context checks already cover it; the explicit
// sentinel check keeps a cancelled kernel out of the retry budget even
// if a platform ever wraps the sentinel without the cause.
func transient(err error) bool {
	return !errors.Is(err, platform.ErrOutOfMemory) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, platform.ErrInterrupted)
}

func checkUniqueNames(platforms []platform.Platform, graphs []*graph.Graph) error {
	seen := map[string]bool{}
	for _, p := range platforms {
		if seen[p.Name()] {
			return fmt.Errorf("core: duplicate platform name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	seen = map[string]bool{}
	for _, g := range graphs {
		if seen[g.Name()] {
			return fmt.Errorf("core: duplicate graph name %q", g.Name())
		}
		seen[g.Name()] = true
	}
	return nil
}

// campaign is the shared state of one Benchmark.Run: the cell slots the
// jobs fill, the per-(platform, graph) load states, and the journal.
type campaign struct {
	b       *Benchmark
	algs    []algo.Kind
	retry   sched.RetryPolicy
	journal *sched.Journal
	// cells has one slot per matrix coordinate; each slot is written by
	// exactly one job (or restored from the journal before scheduling).
	cells []*report.RunResult
	pgs   []*pgState
	// progressMu serializes the Progress callback across workers.
	progressMu sync.Mutex

	// stamping is true when cell fingerprints are computed at all —
	// whenever a journal, stamped result store, or artifact cache is
	// configured. Without any of them the campaign pays zero hashing.
	stamping bool
	// binary is the resolved binary/kernel version in fingerprints.
	binary string
	// graphFPs maps graph names to dataset fingerprints.
	graphFPs map[string]stamp.Fingerprint
	// wlStamps maps each algorithm to its workload identity stamp
	// (kind + validation policy + whether validation runs).
	wlStamps map[algo.Kind]string
	// staleWarned gates the once-per-campaign warning about journal
	// entries whose fingerprints no longer match (buildJobs only, so no
	// lock needed).
	staleWarned bool
}

// setupStamps resolves the fingerprint inputs: the binary version, one
// dataset fingerprint per graph (driver-supplied generator identity, or
// content hash as fallback), and one workload stamp per algorithm.
func (c *campaign) setupStamps(algs []algo.Kind) error {
	b := c.b
	// An external executor always stamps: the dataset fingerprint is the
	// content address under which runners fetch graph artifacts, and the
	// cell fingerprint keeps manager- and runner-side stamp stores
	// coherent.
	c.stamping = c.journal != nil || b.Stamps != nil || b.Artifacts != nil || b.Executor != nil
	if !c.stamping {
		return nil
	}
	c.binary = b.BinaryVersion
	if c.binary == "" {
		c.binary = stamp.BinaryVersion()
	}
	c.graphFPs = make(map[string]stamp.Fingerprint, len(b.Graphs))
	for _, g := range b.Graphs {
		if fp, ok := b.GraphStamps[g.Name()]; ok && !fp.IsZero() {
			c.graphFPs[g.Name()] = fp
			continue
		}
		sp := telemetry.StartSpan("stamp", "graph-fingerprint:"+g.Name())
		fp, err := stamp.OfGraph(g)
		sp.End()
		if err != nil {
			return fmt.Errorf("core: fingerprinting graph %s: %w", g.Name(), err)
		}
		c.graphFPs[g.Name()] = fp
	}
	c.wlStamps = make(map[algo.Kind]string, len(algs))
	for _, a := range algs {
		spec, _ := workload.Lookup(a)
		c.wlStamps[a] = fmt.Sprintf("%s/policy=%s/validate=%t", a, spec.Policy, b.Validate)
	}
	return nil
}

// cellFP is the content fingerprint of one matrix cell — everything
// that determines its result. The zero fingerprint means stamping is
// off.
func (c *campaign) cellFP(p platform.Platform, g *graph.Graph, a algo.Kind) stamp.Fingerprint {
	if !c.stamping {
		return stamp.Fingerprint{}
	}
	return stamp.Cell(stamp.CellInputs{
		Graph:          c.graphFPs[g.Name()],
		Workload:       c.wlStamps[a],
		Params:         stamp.JSON(c.b.Params.WithDefaults(g.NumVertices())),
		Platform:       p.Name(),
		PlatformConfig: platform.StampConfigOf(p),
		Binary:         c.binary,
	})
}

// pgState is the lifecycle of one (platform, graph) pair: the loaded
// graph handle, its ETL time, and the countdown of unfinished cells
// that decides when to unload.
type pgState struct {
	p        platform.Platform
	g        *graph.Graph
	loaded   platform.Loaded
	loadTime time.Duration
	// etlCached marks that loaded came from the ETL artifact cache, so
	// the pair's cells report ETL-cache provenance.
	etlCached bool
	// remaining counts this pair's run jobs still owing a final
	// outcome; the job that decrements it to zero closes loaded.
	remaining atomic.Int64
	// pendingCells lists the (slot, algorithm) pairs the load job must
	// fill with missing values if ETL terminally fails.
	pendingCells []pendingCell
}

type pendingCell struct {
	slot int
	alg  algo.Kind
	key  string
	fp   stamp.Fingerprint
}

// cellKey is the base journal and job identity of one matrix cell; it
// must be stable across processes for resume to work. When stamping is
// active the journal key is cellKey + "@" + fingerprint.Short(), so a
// journaled result from a different configuration or binary never
// matches — it is reported as stale instead of silently resumed.
func cellKey(p, g string, a algo.Kind) string {
	return "cell/" + p + "/" + g + "/" + string(a)
}

// buildJobs turns the matrix into scheduler jobs. Cells restored from
// the stamped result store (UPTODATE) or the resume journal create no
// job; the remainder is planned by the active execution path — the
// local pool (per (platform, graph) pair one load job feeding one run
// job per algorithm; a pair whose cells all restored skips its load job
// too, so a re-run of an unchanged matrix performs zero loads and zero
// kernel runs) or, with an Executor configured, one independent
// executor job per cell.
func (c *campaign) buildJobs() []sched.Job {
	b := c.b
	var jobs []sched.Job
	for pi, p := range b.Platforms {
		for gi, g := range b.Graphs {
			pending := c.pendingCellsFor(pi, p, gi, g)
			if len(pending) == 0 {
				continue
			}
			if b.Executor != nil {
				jobs = append(jobs, c.executorJobs(p, g, pending)...)
				continue
			}
			jobs = append(jobs, c.localJobs(p, g, pending)...)
		}
	}
	return jobs
}

// pendingCellsFor restores what it can of one (platform, graph) pair's
// cells and returns the rest — the cells some executor must actually
// run — with their slots, journal keys, and fingerprints resolved.
func (c *campaign) pendingCellsFor(pi int, p platform.Platform, gi int, g *graph.Graph) []pendingCell {
	b := c.b
	var pending []pendingCell
	for ai, a := range c.algs {
		slot := (pi*len(b.Graphs)+gi)*len(c.algs) + ai
		base := cellKey(p.Name(), g.Name(), a)
		fp := c.cellFP(p, g, a)
		key := base
		if !fp.IsZero() {
			key = base + "@" + fp.Short()
		}
		if c.restoreCell(slot, key, fp) {
			continue
		}
		if b.Stamps != nil {
			telemetry.Metrics.Counter("stamp_cell_misses_total",
				"matrix cells whose fingerprint was not in the stamped result store").Inc()
		}
		if c.journal != nil && !fp.IsZero() &&
			(c.journal.Has(base) || c.journal.HasPrefix(base+"@")) {
			c.warnStale(key)
		}
		pending = append(pending, pendingCell{slot: slot, alg: a, key: key, fp: fp})
	}
	return pending
}

// localJobs plans one (platform, graph) pair for the local pool: a load
// job (the ETL step, run once) feeding one run job per pending cell.
func (c *campaign) localJobs(p platform.Platform, g *graph.Graph, pending []pendingCell) []sched.Job {
	pg := &pgState{p: p, g: g, pendingCells: pending}
	loadID := "load/" + p.Name() + "/" + g.Name()
	jobs := make([]sched.Job, 0, len(pending)+1)
	jobs = append(jobs, sched.Job{
		ID:    loadID,
		Class: p.Name(),
		Run: func(ctx context.Context, attempt int) error {
			return c.loadJob(pg, attempt)
		},
	})
	for _, cell := range pending {
		cell := cell
		jobs = append(jobs, sched.Job{
			ID:    cell.key,
			Deps:  []string{loadID},
			Class: p.Name(),
			Run: func(ctx context.Context, attempt int) error {
				return c.runCellJob(ctx, pg, cell.alg, cell.slot, cell.key, cell.fp, attempt)
			},
		})
	}
	pg.remaining.Store(int64(len(pending)))
	c.pgs = append(c.pgs, pg)
	return jobs
}

// warnStale reports (once per campaign, plus a counter) journal entries
// whose coordinates match a cell but whose fingerprint does not: the
// entry was recorded under a different platform configuration, worker
// budget, dataset, or binary, and is deliberately not reused.
func (c *campaign) warnStale(key string) {
	telemetry.Metrics.Counter("core_journal_stale_entries_total",
		"journaled cells rejected on resume because their fingerprint no longer matches").Inc()
	if c.staleWarned {
		return
	}
	c.staleWarned = true
	slog.Warn("core: journal holds entries for this cell under a different fingerprint "+
		"(configuration or binary changed); re-running instead of resuming",
		"cell", key)
}

// classLimits maps each platform to its concurrency hint so that
// memory-budgeted engines serialize their own jobs while the rest of
// the campaign proceeds.
func (c *campaign) classLimits() map[string]int {
	limits := map[string]int{}
	for _, p := range c.b.Platforms {
		if n := platform.ConcurrencyLimitOf(p); n > 0 {
			limits[p.Name()] = n
		}
	}
	return limits
}

// restoreCell fills a slot without executing anything, trying the
// stamped result store first (the cell is UPTODATE: some prior campaign
// produced this exact fingerprint) and the resume journal second (an
// interrupted run of this campaign finished it). Restored results carry
// a provenance mark so reports never pass restored numbers off as fresh
// measurements.
func (c *campaign) restoreCell(slot int, key string, fp stamp.Fingerprint) bool {
	if c.b.Stamps != nil && !fp.IsZero() {
		var r report.RunResult
		if ok, err := c.b.Stamps.Get(fp, &r); ok && err == nil {
			r.Provenance = report.ProvenanceUptodate
			c.cells[slot] = &r
			telemetry.Metrics.Counter("stamp_cell_hits_total",
				"matrix cells restored from the stamped result store (UPTODATE)").Inc()
			return true
		}
	}
	if c.journal == nil {
		return false
	}
	var r report.RunResult
	ok, err := c.journal.Get(key, &r)
	if !ok || err != nil {
		// An unreadable entry just re-runs the cell.
		return false
	}
	r.Provenance = report.ProvenanceResumed
	c.cells[slot] = &r
	return true
}

// finalAttempt reports whether the scheduler will not re-run the job
// after err, so jobs record results only on their last attempt. The
// decision is the scheduler's own retry predicate, not a copy of it.
func (c *campaign) finalAttempt(err error, attempt int) bool {
	return !c.retry.WillRetry(err, attempt)
}

// loadJob performs the ETL step for one (platform, graph) pair. On
// terminal failure every pending cell of the pair becomes a missing
// value (the Neo4j/GraphX behaviour on oversized graphs) and the
// returned error makes the scheduler skip the pair's run jobs.
func (c *campaign) loadJob(pg *pgState, attempt int) error {
	sp := telemetry.StartSpan("cell", "load:"+pg.p.Name()+"/"+pg.g.Name())
	sp.SetAttr("platform", pg.p.Name())
	sp.SetAttr("graph", pg.g.Name())
	sp.SetAttr("attempt", attempt)
	loadStart := time.Now()
	loaded, cached, err := c.loadOrRestore(pg)
	pg.loadTime = time.Since(loadStart)
	pg.etlCached = cached
	if cached {
		sp.SetAttr("etl", "cache")
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if err != nil {
		if c.finalAttempt(err, attempt) {
			status := report.StatusLoadError
			if errors.Is(err, platform.ErrOutOfMemory) {
				status = report.StatusOOM
			}
			for _, cell := range pg.pendingCells {
				r := report.RunResult{
					Platform: pg.p.Name(), Graph: pg.g.Name(), Algorithm: cell.alg,
					Status: status, LoadTime: pg.loadTime,
					GraphEdges: pg.g.NumEdges(), Err: err.Error(),
					Attempts: attempt,
				}
				c.finishCell(cell.slot, cell.key, cell.fp, r)
			}
		}
		return err
	}
	pg.loaded = loaded
	return nil
}

// loadOrRestore performs the ETL step, going through the artifact cache
// when the platform supports it: a cached blob restores via ReadETL
// (budget-checked like a live load); a miss runs LoadGraph and stores
// the result for the next campaign; a corrupt or unreadable artifact is
// reported, regenerated, and overwritten — never trusted.
func (c *campaign) loadOrRestore(pg *pgState) (platform.Loaded, bool, error) {
	cl, ok := pg.p.(platform.CachedLoader)
	if !ok || c.b.Artifacts == nil || !c.stamping {
		l, err := pg.p.LoadGraph(pg.g)
		return l, false, err
	}
	fp := stamp.ETL(c.graphFPs[pg.g.Name()], pg.p.Name(),
		platform.StampConfigOf(pg.p), cl.ETLVersion(), c.binary)
	rc, hit, err := c.b.Artifacts.OpenETL(fp)
	if err != nil {
		slog.Warn("core: corrupt ETL artifact; re-running ETL",
			"platform", pg.p.Name(), "graph", pg.g.Name(), "err", err)
	} else if hit {
		l, rerr := cl.ReadETL(pg.g, rc)
		rc.Close()
		if rerr == nil {
			return l, true, nil
		}
		if errors.Is(rerr, platform.ErrOutOfMemory) {
			// The blob restored fine but does not fit the budget — the
			// same terminal failure a live load would hit.
			return nil, false, rerr
		}
		slog.Warn("core: unreadable ETL artifact; re-running ETL",
			"platform", pg.p.Name(), "graph", pg.g.Name(), "err", rerr)
	}
	l, err := pg.p.LoadGraph(pg.g)
	if err != nil {
		return nil, false, err
	}
	if serr := c.b.Artifacts.StoreETL(fp, func(w io.Writer) error {
		return cl.WriteETL(l, w)
	}); serr != nil {
		slog.Warn("core: storing ETL artifact failed; next campaign re-runs ETL",
			"platform", pg.p.Name(), "graph", pg.g.Name(), "err", serr)
	}
	return l, false, nil
}

// runCellJob executes one matrix cell (warm-ups + repetitions) and, on
// its final attempt, records the result and possibly unloads the
// graph. Transient failures propagate so the scheduler can retry.
func (c *campaign) runCellJob(ctx context.Context, pg *pgState, a algo.Kind, slot int, key string, fp stamp.Fingerprint, attempt int) error {
	r, execErr := c.runCell(ctx, pg, a)
	r.Attempts = attempt
	if ctx.Err() != nil {
		// Never record or journal a cancelled cell: the resumed
		// campaign must re-run it.
		return ctx.Err()
	}
	if !c.finalAttempt(execErr, attempt) {
		return execErr
	}
	c.finishCell(slot, key, fp, r)
	if pg.remaining.Add(-1) == 0 {
		pg.loaded.Close()
	}
	return nil
}

// journalWarnOnce gates the Warn-level line for journal write failures
// (one per process; later failures log at Debug so a full disk cannot
// flood a long campaign's log).
var journalWarnOnce sync.Once

// finishCell publishes a final cell outcome: slot write (collation),
// journal entry (resume), stamp-store entry (successes only — failures
// must re-run next campaign, they are circumstances, not content),
// progress callback (live output). Journal and stamp writes are
// best-effort — a failed write only means the cell re-runs later — but
// they are counted and warned about, never silently dropped: a full
// disk showing up as a mysteriously non-resumable campaign is a
// debugging trap.
func (c *campaign) finishCell(slot int, key string, fp stamp.Fingerprint, r report.RunResult) {
	c.cells[slot] = &r
	slog.Debug("core: cell finished",
		"cell", key, "platform", r.Platform, "graph", r.Graph, "algorithm", string(r.Algorithm),
		"status", string(r.Status), "runtime", r.Runtime, "attempts", r.Attempts)
	if c.journal != nil {
		if err := c.journal.Record(key, r); err != nil {
			telemetry.Metrics.Counter("core_journal_write_failures_total",
				"cell results that failed to journal (cell re-runs on resume)").Inc()
			warned := false
			journalWarnOnce.Do(func() {
				warned = true
				slog.Warn("core: journal write failed; affected cells will re-run on resume",
					"cell", key, "err", err)
			})
			if !warned {
				slog.Debug("core: journal write failed", "cell", key, "err", err)
			}
		}
	}
	if c.b.Stamps != nil && !fp.IsZero() && r.Status == report.StatusSuccess {
		if err := c.b.Stamps.Put(fp, r); err != nil {
			telemetry.Metrics.Counter("stamp_store_write_failures_total",
				"successful cells that failed to record in the stamped result store").Inc()
			slog.Debug("core: stamp store write failed", "cell", key, "err", err)
		}
	}
	if c.b.Progress != nil {
		c.progressMu.Lock()
		c.b.Progress(r)
		c.progressMu.Unlock()
	}
}

// runCell executes the repetition sequence of one cell: Warmup untimed
// executions, then max(1, Reps) timed repetitions. The returned error
// is the raw execution error (nil on success) for the retry policy;
// the RunResult is complete either way.
func (c *campaign) runCell(ctx context.Context, pg *pgState, a algo.Kind) (report.RunResult, error) {
	b := c.b
	r := report.RunResult{
		Platform: pg.p.Name(), Graph: pg.g.Name(), Algorithm: a,
		LoadTime: pg.loadTime, GraphEdges: pg.g.NumEdges(),
	}
	if pg.etlCached {
		// The kernels run live, but LoadTime measured an artifact
		// restore, not the platform's ETL — reports must say so.
		r.Provenance = report.ProvenanceETLCache
	}
	reps := b.Reps
	if reps < 1 {
		reps = 1
	}
	warmup := b.Warmup
	if warmup < 0 {
		warmup = 0
	}
	total := warmup + reps

	var mon *monitor.Monitor
	if b.MonitorInterval > 0 {
		mon = monitor.New(b.MonitorInterval)
		mon.Start()
	}
	stopMonitor := func() {
		if mon != nil {
			r.Monitor = mon.Stop()
			mon = nil
			if len(r.Monitor.Samples) > 0 || r.Monitor.Duration > 0 {
				env := r.Monitor.Resources()
				r.Resources = &env
			}
		}
	}

	cellTag := pg.p.Name() + "/" + pg.g.Name() + "/" + string(a)
	runtimes := make([]time.Duration, 0, total)
	var res *platform.Result
	for i := 0; i < total; i++ {
		runCtx, cancel := ctx, func() {}
		if b.Timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, b.Timeout)
		}
		phase := "rep"
		if i < warmup {
			phase = "warmup"
		}
		sp := telemetry.StartSpan("cell", phase+":"+cellTag)
		sp.SetAttr("rep", i)
		start := time.Now()
		out, err := pg.loaded.Run(runCtx, a, b.Params)
		d := time.Since(start)
		cancel()
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		telemetry.Metrics.Histogram("core_rep_seconds",
			"single algorithm execution time (warm-ups included)", telemetry.DurationBuckets).
			Observe(d.Seconds())
		if err != nil {
			stopMonitor()
			r.Runtime = d
			r.Err = err.Error()
			switch {
			case errors.Is(err, platform.ErrOutOfMemory):
				r.Status = report.StatusOOM
			case errors.Is(err, context.DeadlineExceeded):
				r.Status = report.StatusTimeout
			case errors.Is(err, context.Canceled):
				// The platform was interrupted (platform.ErrInterrupted
				// wraps the context error), not broken: the cell is
				// cancelled, never a platform failure.
				r.Status = report.StatusCancelled
			default:
				r.Status = report.StatusError
			}
			return r, err
		}
		runtimes = append(runtimes, d)
		res = out
	}
	stopMonitor()

	// §3.3 runtime: with repetitions, the mean of the timed runs.
	timed := runtimes[warmup:]
	var sum time.Duration
	for _, d := range timed {
		sum += d
	}
	r.Runtime = sum / time.Duration(len(timed))
	if total > 1 {
		r.Reps = report.NewRepStats(warmup, runtimes)
	}
	r.Status = report.StatusSuccess
	r.Counters = res.Counters
	if r.Runtime > 0 {
		r.KTEPS = float64(pg.g.NumEdges()) / r.Runtime.Seconds() / 1000
	}
	if b.Validate {
		vsp := telemetry.StartSpan("cell", "validate:"+cellTag)
		r.Validation = workload.Validate(pg.g, a, b.Params.WithDefaults(pg.g.NumVertices()), res.Output)
		vsp.SetAttr("valid", r.Validation.Valid)
		vsp.End()
		if !r.Validation.Valid {
			r.Status = report.StatusInvalid
			r.Err = fmt.Sprintf("validation: %s", r.Validation.Detail)
		}
	} else {
		r.Validation = validation.Result{Valid: true}
	}
	return r, nil
}
