// Package core implements the Benchmark Core of the Graphalytics
// architecture (Figure 2): "the benchmark harness that binds together
// Graphalytics". It drives the full run matrix (platforms × graphs ×
// algorithms), times each execution excluding ETL (§3.3: "The runtime
// measures the complete execution of an algorithm, from job submission
// to result availability, but does not include ETL"), enforces per-run
// timeouts, captures failures as missing values, validates every output
// against the reference implementations, monitors the system during
// runs, and hands the results to the Report Generator.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/monitor"
	"graphalytics/internal/platform"
	"graphalytics/internal/report"
	"graphalytics/internal/validation"
)

// Benchmark is one configured benchmark campaign.
type Benchmark struct {
	// Platforms are the systems under test.
	Platforms []platform.Platform
	// Graphs are the datasets.
	Graphs []*graph.Graph
	// Algorithms is the workload selection (nil = all five).
	Algorithms []algo.Kind
	// Params carries algorithm parameters (zero fields take defaults).
	Params algo.Params
	// Timeout bounds each algorithm execution (0 = no timeout). Timed
	// out cells appear as missing values, the way the paper reports
	// "Due to time constraints, MapReduce was not able to complete some
	// algorithms on Graph500".
	Timeout time.Duration
	// Validate enables the Output Validator on every successful run.
	Validate bool
	// MonitorInterval sets the System Monitor sampling period
	// (0 disables monitoring).
	MonitorInterval time.Duration
	// Progress, when non-nil, receives a line per completed run.
	Progress func(r report.RunResult)
}

// Run executes the full matrix and returns the report. The context
// cancels the whole campaign.
func (b *Benchmark) Run(ctx context.Context) (*report.Report, error) {
	if len(b.Platforms) == 0 {
		return nil, errors.New("core: no platforms configured")
	}
	if len(b.Graphs) == 0 {
		return nil, errors.New("core: no graphs configured")
	}
	algs := b.Algorithms
	if len(algs) == 0 {
		algs = algo.Kinds
	}

	rep := &report.Report{Started: time.Now()}
	for _, p := range b.Platforms {
		for _, g := range b.Graphs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b.runGraph(ctx, p, g, algs, rep)
		}
	}
	rep.Finished = time.Now()
	return rep, nil
}

// runGraph loads g on p (ETL, untimed) and executes all algorithms.
func (b *Benchmark) runGraph(ctx context.Context, p platform.Platform, g *graph.Graph, algs []algo.Kind, rep *report.Report) {
	loadStart := time.Now()
	loaded, err := p.LoadGraph(g)
	loadTime := time.Since(loadStart)
	if err != nil {
		// ETL failure: every cell of this (platform, graph) pair is a
		// missing value (the Neo4j/GraphX behaviour on oversized graphs).
		for _, a := range algs {
			r := report.RunResult{
				Platform: p.Name(), Graph: g.Name(), Algorithm: a,
				Status: report.StatusLoadError, LoadTime: loadTime,
				GraphEdges: g.NumEdges(), Err: err.Error(),
			}
			if errors.Is(err, platform.ErrOutOfMemory) {
				r.Status = report.StatusOOM
			}
			b.record(rep, r)
		}
		return
	}
	defer loaded.Close()

	for _, a := range algs {
		if ctx.Err() != nil {
			return
		}
		b.record(rep, b.runOne(ctx, p, loaded, g, a, loadTime))
	}
}

// runOne executes one cell of the matrix.
func (b *Benchmark) runOne(ctx context.Context, p platform.Platform, loaded platform.Loaded, g *graph.Graph, a algo.Kind, loadTime time.Duration) report.RunResult {
	r := report.RunResult{
		Platform: p.Name(), Graph: g.Name(), Algorithm: a,
		LoadTime: loadTime, GraphEdges: g.NumEdges(),
	}
	runCtx := ctx
	cancel := func() {}
	if b.Timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, b.Timeout)
	}
	defer cancel()

	var mon *monitor.Monitor
	if b.MonitorInterval > 0 {
		mon = monitor.New(b.MonitorInterval)
		mon.Start()
	}
	start := time.Now()
	res, err := loaded.Run(runCtx, a, b.Params)
	r.Runtime = time.Since(start)
	if mon != nil {
		r.Monitor = mon.Stop()
	}

	switch {
	case err == nil:
		r.Status = report.StatusSuccess
		r.Counters = res.Counters
		if r.Runtime > 0 {
			r.KTEPS = float64(g.NumEdges()) / r.Runtime.Seconds() / 1000
		}
		if b.Validate {
			r.Validation = validation.Validate(g, a, b.Params.WithDefaults(g.NumVertices()), res.Output)
			if !r.Validation.Valid {
				r.Status = report.StatusInvalid
				r.Err = fmt.Sprintf("validation: %s", r.Validation.Detail)
			}
		} else {
			r.Validation = validation.Result{Valid: true}
		}
	case errors.Is(err, platform.ErrOutOfMemory):
		r.Status = report.StatusOOM
		r.Err = err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		r.Status = report.StatusTimeout
		r.Err = err.Error()
	default:
		r.Status = report.StatusError
		r.Err = err.Error()
	}
	return r
}

func (b *Benchmark) record(rep *report.Report, r report.RunResult) {
	rep.Results = append(rep.Results, r)
	if b.Progress != nil {
		b.Progress(r)
	}
}
