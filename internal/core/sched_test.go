package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/mapreduce"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
	"graphalytics/internal/sched"
)

// countingPlatform wraps a platform and counts ETL and run executions,
// so resume and retry tests can assert exactly how much work re-ran.
type countingPlatform struct {
	platform.Platform
	loads atomic.Int64
	runs  atomic.Int64
	// failFirst injects a transient error into the first N algorithm
	// executions (scheduler-retryable, unlike OOM/timeout).
	failFirst int64
}

func (c *countingPlatform) LoadGraph(g *graph.Graph) (platform.Loaded, error) {
	c.loads.Add(1)
	loaded, err := c.Platform.LoadGraph(g)
	if err != nil {
		return nil, err
	}
	return &countingLoaded{Loaded: loaded, p: c}, nil
}

type countingLoaded struct {
	platform.Loaded
	p *countingPlatform
}

var errFlaky = errors.New("injected transient failure")

func (l *countingLoaded) Run(ctx context.Context, kind algo.Kind, params algo.Params) (*platform.Result, error) {
	n := l.p.runs.Add(1)
	if n <= l.p.failFirst {
		return nil, errFlaky
	}
	return l.Loaded.Run(ctx, kind, params)
}

// sameCell compares everything about two results except timings and
// monitor samples — the acceptance bar for schedule independence.
func sameCell(t *testing.T, seq, par report.RunResult) {
	t.Helper()
	if seq.Platform != par.Platform || seq.Graph != par.Graph || seq.Algorithm != par.Algorithm {
		t.Fatalf("cell coordinates diverge: %s/%s/%s vs %s/%s/%s",
			seq.Platform, seq.Graph, seq.Algorithm, par.Platform, par.Graph, par.Algorithm)
	}
	id := seq.Platform + "/" + seq.Graph + "/" + string(seq.Algorithm)
	if seq.Status != par.Status {
		t.Errorf("%s: status %s vs %s", id, seq.Status, par.Status)
	}
	if seq.Err != par.Err {
		t.Errorf("%s: err %q vs %q", id, seq.Err, par.Err)
	}
	if seq.GraphEdges != par.GraphEdges {
		t.Errorf("%s: edges %d vs %d", id, seq.GraphEdges, par.GraphEdges)
	}
	if seq.Validation.Valid != par.Validation.Valid {
		t.Errorf("%s: valid %v vs %v", id, seq.Validation.Valid, par.Validation.Valid)
	}
	if seq.Counters.Messages != par.Counters.Messages || seq.Counters.Supersteps != par.Counters.Supersteps {
		t.Errorf("%s: counters diverge: %d/%d msgs, %d/%d supersteps", id,
			seq.Counters.Messages, par.Counters.Messages,
			seq.Counters.Supersteps, par.Counters.Supersteps)
	}
}

// The tentpole acceptance test: a Parallelism-4 campaign over
// 2 platforms × 2 graphs × 5 algorithms produces a report with
// identical results (modulo timings) in identical order to the
// sequential campaign. Run under -race in CI, this also proves the
// scheduler's cell bookkeeping is data-race free.
func TestParallelMatchesSequential(t *testing.T) {
	graphs := []*graph.Graph{
		smokeGraph(t, 250, "g-one"),
		smokeGraph(t, 180, "g-two"),
	}
	build := func(parallelism int) *Benchmark {
		return &Benchmark{
			Platforms: []platform.Platform{
				pregel.New(pregel.Options{}),
				mapreduce.New(mapreduce.Options{RoundOverhead: -1}),
			},
			Graphs:      graphs,
			Validate:    true,
			Params:      algo.Params{Source: 0, Seed: 9, EvoNewVertices: 4},
			Parallelism: parallelism,
		}
	}
	seq, err := build(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par, err := build(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * len(algo.Kinds)
	if len(seq.Results) != want || len(par.Results) != want {
		t.Fatalf("results: seq %d, par %d, want %d", len(seq.Results), len(par.Results), want)
	}
	for i := range seq.Results {
		sameCell(t, seq.Results[i], par.Results[i])
	}
}

func TestRepetitionStatistics(t *testing.T) {
	b := &Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{smokeGraph(t, 200, "reps")},
		Algorithms: []algo.Kind{algo.BFS, algo.CONN},
		Reps:       3,
		Warmup:     1,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Status != report.StatusSuccess {
			t.Fatalf("%s: %s (%s)", r.Algorithm, r.Status, r.Err)
		}
		s := r.Reps
		if s == nil {
			t.Fatalf("%s: no repetition statistics", r.Algorithm)
		}
		if s.Warmup != 1 || s.Reps != 3 || len(s.Runtimes) != 4 {
			t.Errorf("%s: shape = %d warmup, %d reps, %d runtimes", r.Algorithm, s.Warmup, s.Reps, len(s.Runtimes))
		}
		if s.Min <= 0 || s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("%s: min/mean/max not ordered: %v/%v/%v", r.Algorithm, s.Min, s.Mean, s.Max)
		}
		if s.Stddev < 0 {
			t.Errorf("%s: negative stddev", r.Algorithm)
		}
		if s.First != s.Runtimes[0] {
			t.Errorf("%s: first-run split broken: %v vs %v", r.Algorithm, s.First, s.Runtimes[0])
		}
		if r.Runtime != s.Mean {
			t.Errorf("%s: Runtime %v is not the repetition mean %v", r.Algorithm, r.Runtime, s.Mean)
		}
	}
}

func TestSingleRunHasNoRepStats(t *testing.T) {
	b := &Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{smokeGraph(t, 200, "single")},
		Algorithms: []algo.Kind{algo.BFS},
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Reps != nil {
		t.Error("single-run cell must not carry repetition statistics")
	}
}

// TestResumeSkipsFinishedCells interrupts a campaign mid-way and
// verifies the checkpoint makes the re-run execute only the cells the
// first run did not finish.
func TestResumeSkipsFinishedCells(t *testing.T) {
	checkpoint := filepath.Join(t.TempDir(), "campaign.journal")
	g := smokeGraph(t, 200, "resume")

	// First campaign: cancel after two finished cells.
	cp1 := &countingPlatform{Platform: pregel.New(pregel.Options{})}
	ctx, cancel := context.WithCancel(context.Background())
	finished := 0
	b1 := &Benchmark{
		Platforms:      []platform.Platform{cp1},
		Graphs:         []*graph.Graph{g},
		Parallelism:    1,
		CheckpointPath: checkpoint,
		Progress: func(report.RunResult) {
			if finished++; finished == 2 {
				cancel()
			}
		},
	}
	if _, err := b1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign err = %v, want context.Canceled", err)
	}

	j, err := sched.OpenJournal(checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	journaled := j.Len()
	j.Close()
	if journaled < 2 || journaled >= len(algo.Kinds) {
		t.Fatalf("journaled cells = %d, want partial progress", journaled)
	}

	// Resumed campaign: only the unfinished cells may execute.
	cp2 := &countingPlatform{Platform: pregel.New(pregel.Options{})}
	b2 := &Benchmark{
		Platforms:      []platform.Platform{cp2},
		Graphs:         []*graph.Graph{g},
		Parallelism:    1,
		CheckpointPath: checkpoint,
	}
	rep, err := b2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(algo.Kinds) {
		t.Fatalf("resumed report has %d results, want %d", len(rep.Results), len(algo.Kinds))
	}
	for i, r := range rep.Results {
		if r.Status != report.StatusSuccess {
			t.Errorf("cell %d (%s): %s (%s)", i, r.Algorithm, r.Status, r.Err)
		}
		if r.Algorithm != algo.Kinds[i] {
			t.Errorf("cell %d out of order: %s", i, r.Algorithm)
		}
	}
	if got, want := cp2.runs.Load(), int64(len(algo.Kinds)-journaled); got != want {
		t.Errorf("resumed campaign executed %d cells, want %d (journal had %d)", got, want, journaled)
	}

	// A third run over the complete journal re-executes nothing, not
	// even the ETL.
	cp3 := &countingPlatform{Platform: pregel.New(pregel.Options{})}
	b3 := &Benchmark{
		Platforms:      []platform.Platform{cp3},
		Graphs:         []*graph.Graph{g},
		CheckpointPath: checkpoint,
	}
	rep3, err := b3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Results) != len(algo.Kinds) {
		t.Fatalf("third report has %d results", len(rep3.Results))
	}
	if cp3.loads.Load() != 0 || cp3.runs.Load() != 0 {
		t.Errorf("fully journaled campaign still executed %d loads, %d runs", cp3.loads.Load(), cp3.runs.Load())
	}
}

func TestTransientFailureRetried(t *testing.T) {
	cp := &countingPlatform{Platform: pregel.New(pregel.Options{}), failFirst: 1}
	b := &Benchmark{
		Platforms:  []platform.Platform{cp},
		Graphs:     []*graph.Graph{smokeGraph(t, 200, "flaky")},
		Algorithms: []algo.Kind{algo.BFS},
		Retries:    2,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Status != report.StatusSuccess {
		t.Fatalf("status = %s (%s), want success after retry", r.Status, r.Err)
	}
	if r.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", r.Attempts)
	}
}

func TestTransientFailureWithoutRetriesFails(t *testing.T) {
	cp := &countingPlatform{Platform: pregel.New(pregel.Options{}), failFirst: 1}
	b := &Benchmark{
		Platforms:  []platform.Platform{cp},
		Graphs:     []*graph.Graph{smokeGraph(t, 200, "flaky2")},
		Algorithms: []algo.Kind{algo.BFS},
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Status != report.StatusError {
		t.Errorf("status = %s, want error", rep.Results[0].Status)
	}
}

func TestOOMNotRetried(t *testing.T) {
	// An OOM load is terminal: retries must not re-attempt the ETL.
	inner := &countingPlatform{Platform: pregel.New(pregel.Options{MemoryBudget: 16})}
	b := &Benchmark{
		Platforms: []platform.Platform{inner},
		Graphs:    []*graph.Graph{smokeGraph(t, 500, "oom")},
		Retries:   3,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if inner.loads.Load() != 1 {
		t.Errorf("OOM load attempted %d times, want 1", inner.loads.Load())
	}
	for _, r := range rep.Results {
		if r.Status != report.StatusOOM {
			t.Errorf("%s: status = %s, want oom", r.Algorithm, r.Status)
		}
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	g := smokeGraph(t, 100, "dup")
	b := &Benchmark{
		Platforms: []platform.Platform{pregel.New(pregel.Options{}), pregel.New(pregel.Options{})},
		Graphs:    []*graph.Graph{g},
	}
	if _, err := b.Run(context.Background()); err == nil {
		t.Error("duplicate platform names must be rejected")
	}
	b2 := &Benchmark{
		Platforms: []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:    []*graph.Graph{g, g},
	}
	if _, err := b2.Run(context.Background()); err == nil {
		t.Error("duplicate graph names must be rejected")
	}
}

// TestBudgetedPlatformSerializes verifies the platform concurrency
// hint reaches the scheduler: a memory-budgeted engine never hosts two
// concurrent jobs even in a wide parallel campaign.
func TestBudgetedPlatformSerializes(t *testing.T) {
	if platform.ConcurrencyLimitOf(pregel.New(pregel.Options{MemoryBudget: 1 << 30})) != 1 {
		t.Fatal("budgeted pregel must hint limit 1")
	}
	if platform.ConcurrencyLimitOf(pregel.New(pregel.Options{})) != 0 {
		t.Fatal("unbudgeted pregel must be unlimited")
	}
	b := &Benchmark{
		Platforms: []platform.Platform{
			pregel.New(pregel.Options{MemoryBudget: 1 << 30}),
			mapreduce.New(mapreduce.Options{RoundOverhead: -1}),
		},
		Graphs:      []*graph.Graph{smokeGraph(t, 200, "ser-a"), smokeGraph(t, 150, "ser-b")},
		Parallelism: 8,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Status != report.StatusSuccess {
			t.Errorf("%s/%s/%s: %s (%s)", r.Platform, r.Graph, r.Algorithm, r.Status, r.Err)
		}
	}
}

func TestParallelCampaignIsFasterShape(t *testing.T) {
	// Not a timing assertion (CI noise), just the structural claim: a
	// parallel campaign over many cells completes and the report spans
	// every coordinate exactly once.
	graphs := []*graph.Graph{smokeGraph(t, 150, "w1"), smokeGraph(t, 120, "w2")}
	b := &Benchmark{
		Platforms: []platform.Platform{
			pregel.New(pregel.Options{}),
			mapreduce.New(mapreduce.Options{RoundOverhead: -1}),
		},
		Graphs:      graphs,
		Parallelism: 4,
		Timeout:     time.Minute,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range rep.Results {
		seen[r.Platform+"/"+r.Graph+"/"+string(r.Algorithm)]++
	}
	if len(seen) != 2*2*len(algo.Kinds) {
		t.Fatalf("distinct cells = %d", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("cell %s appears %d times", k, n)
		}
	}
}

func TestNegativeWarmupClamped(t *testing.T) {
	b := &Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{smokeGraph(t, 150, "negwarm")},
		Algorithms: []algo.Kind{algo.BFS},
		Warmup:     -3,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Status != report.StatusSuccess {
		t.Errorf("status = %s", rep.Results[0].Status)
	}
}

func TestDuplicateAlgorithmsRejected(t *testing.T) {
	b := &Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{smokeGraph(t, 150, "dupalg")},
		Algorithms: []algo.Kind{algo.BFS, algo.BFS},
	}
	if _, err := b.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "duplicate algorithm") {
		t.Errorf("err = %v, want duplicate algorithm rejection", err)
	}
}
