package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/dataflow"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/mapreduce"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
)

func smokeGraph(t *testing.T, n int, name string) *graph.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: n, Seed: 1, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFullMatrixAllPlatformsValidated(t *testing.T) {
	g := smokeGraph(t, 300, "smoke")
	b := &Benchmark{
		Platforms: []platform.Platform{
			pregel.New(pregel.Options{}),
			mapreduce.New(mapreduce.Options{RoundOverhead: -1}),
			dataflow.New(dataflow.Options{}),
			graphdb.New(graphdb.Options{}),
		},
		Graphs:          []*graph.Graph{g},
		Validate:        true,
		MonitorInterval: time.Millisecond,
		Params:          algo.Params{Source: 0, Seed: 3, EvoNewVertices: 4},
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4*len(algo.Kinds) {
		t.Fatalf("results = %d, want %d", len(rep.Results), 4*len(algo.Kinds))
	}
	for _, r := range rep.Results {
		if r.Status != report.StatusSuccess {
			t.Errorf("%s/%s/%s: status %s (%s)", r.Platform, r.Graph, r.Algorithm, r.Status, r.Err)
		}
		if !r.Validation.Valid {
			t.Errorf("%s/%s/%s: invalid output: %s", r.Platform, r.Graph, r.Algorithm, r.Validation.Detail)
		}
		if r.Runtime <= 0 {
			t.Errorf("%s/%s/%s: runtime not recorded", r.Platform, r.Graph, r.Algorithm)
		}
		if r.Algorithm == algo.CONN && r.KTEPS <= 0 {
			t.Errorf("CONN KTEPS not computed")
		}
	}
}

func TestOOMBecomesMissingValue(t *testing.T) {
	g := smokeGraph(t, 2000, "big")
	b := &Benchmark{
		Platforms: []platform.Platform{graphdb.New(graphdb.Options{MemoryBudget: 512})},
		Graphs:    []*graph.Graph{g},
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(algo.Kinds) {
		t.Fatalf("results = %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Status != report.StatusOOM {
			t.Errorf("%s: status %s, want oom", r.Algorithm, r.Status)
		}
	}
	// The Figure 4 rendering must show the failures as missing values.
	table := report.Figure4Table(rep.Results)
	if !strings.Contains(table, "oom") {
		t.Errorf("Figure 4 table must mark OOM cells:\n%s", table)
	}
}

func TestTimeoutBecomesMissingValue(t *testing.T) {
	g := smokeGraph(t, 3000, "slow")
	b := &Benchmark{
		Platforms:  []platform.Platform{mapreduce.New(mapreduce.Options{RoundOverhead: 200 * time.Millisecond})},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.CD},
		Timeout:    50 * time.Millisecond,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Status != report.StatusTimeout {
		t.Fatalf("status = %s, want timeout", rep.Results[0].Status)
	}
}

func TestProgressCallback(t *testing.T) {
	g := smokeGraph(t, 200, "cb")
	var seen int
	b := &Benchmark{
		Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.BFS, algo.CONN},
		Progress:   func(report.RunResult) { seen++ },
	}
	if _, err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("progress callbacks = %d, want 2", seen)
	}
}

func TestEmptyConfigRejected(t *testing.T) {
	if _, err := (&Benchmark{}).Run(context.Background()); err == nil {
		t.Error("no platforms should error")
	}
	if _, err := (&Benchmark{Platforms: []platform.Platform{pregel.New(pregel.Options{})}}).Run(context.Background()); err == nil {
		t.Error("no graphs should error")
	}
}

// fakeCancelPlatform counts Run invocations and delegates to a
// configurable body — the instrument for the cancelled-vs-failed cell
// distinction tests.
type fakeCancelPlatform struct {
	name string
	runs atomic.Int32
	run  func(ctx context.Context) error
}

func (p *fakeCancelPlatform) Name() string { return p.name }
func (p *fakeCancelPlatform) LoadGraph(g *graph.Graph) (platform.Loaded, error) {
	return &fakeCancelLoaded{p: p, g: g}, nil
}

type fakeCancelLoaded struct {
	p *fakeCancelPlatform
	g *graph.Graph
}

func (l *fakeCancelLoaded) Graph() *graph.Graph { return l.g }
func (l *fakeCancelLoaded) Close() error        { return nil }
func (l *fakeCancelLoaded) Run(ctx context.Context, _ algo.Kind, _ algo.Params) (*platform.Result, error) {
	l.p.runs.Add(1)
	return nil, l.p.run(ctx)
}

func TestCancelledCellNotRecordedOrRetried(t *testing.T) {
	g := smokeGraph(t, 50, "cancel-mid")
	p := &fakeCancelPlatform{name: "fake"}
	p.run = func(ctx context.Context) error {
		<-ctx.Done()
		return platform.CheckContextPhase(ctx, "fake/loop")
	}
	b := &Benchmark{
		Platforms:  []platform.Platform{p},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.PR},
		Retries:    5,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := b.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if n := p.runs.Load(); n != 1 {
		t.Errorf("platform ran %d times, want 1: cancellation must not burn the retry budget", n)
	}
}

func TestPlatformCancellationRecordedAsCancelled(t *testing.T) {
	// The platform reports an interrupted kernel while the campaign
	// context is still alive: the cell must land as cancelled (not a
	// platform failure) after exactly one attempt.
	g := smokeGraph(t, 50, "cancel-rec")
	p := &fakeCancelPlatform{name: "fake"}
	p.run = func(context.Context) error {
		return fmt.Errorf("engine stop: %w", context.Canceled)
	}
	b := &Benchmark{
		Platforms:  []platform.Platform{p},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.BFS},
		Retries:    3,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Status != report.StatusCancelled {
		t.Errorf("status = %s, want %s", r.Status, report.StatusCancelled)
	}
	if r.Attempts != 1 {
		t.Errorf("attempts = %d, want 1: a cancelled cell must not retry", r.Attempts)
	}
	if n := p.runs.Load(); n != 1 {
		t.Errorf("platform ran %d times, want 1", n)
	}
}

func TestCampaignCancellation(t *testing.T) {
	g := smokeGraph(t, 200, "cancel")
	b := &Benchmark{
		Platforms: []platform.Platform{pregel.New(pregel.Options{})},
		Graphs:    []*graph.Graph{g},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Run(ctx); err == nil {
		t.Error("cancelled campaign should error")
	}
}

func TestReportRenderers(t *testing.T) {
	g := smokeGraph(t, 300, "render")
	b := &Benchmark{
		Platforms: []platform.Platform{
			pregel.New(pregel.Options{}),
			graphdb.New(graphdb.Options{}),
		},
		Graphs:     []*graph.Graph{g},
		Algorithms: []algo.Kind{algo.BFS, algo.CONN},
		Validate:   true,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f4 := report.Figure4Table(rep.Results)
	for _, want := range []string{"render", "BFS", "CONN", "pregel", "graphdb"} {
		if !strings.Contains(f4, want) {
			t.Errorf("Figure4Table missing %q:\n%s", want, f4)
		}
	}
	f5 := report.Figure5Table(rep.Results)
	if !strings.Contains(f5, "kTEPS") || !strings.Contains(f5, "render") {
		t.Errorf("Figure5Table malformed:\n%s", f5)
	}
	var csv strings.Builder
	if err := report.WriteCSV(&csv, rep.Results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(rep.Results)+1 {
		t.Errorf("CSV lines = %d, want %d", lines, len(rep.Results)+1)
	}
	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"results\"") {
		t.Error("JSON missing results")
	}
	if s := rep.Summary(); !strings.Contains(s, "4 runs") {
		t.Errorf("Summary = %q", s)
	}
}

func TestMonitorCapturesSamples(t *testing.T) {
	g := smokeGraph(t, 2000, "mon")
	b := &Benchmark{
		Platforms:       []platform.Platform{mapreduce.New(mapreduce.Options{RoundOverhead: -1})},
		Graphs:          []*graph.Graph{g},
		Algorithms:      []algo.Kind{algo.CD},
		MonitorInterval: time.Millisecond,
	}
	rep, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mon := rep.Results[0].Monitor
	if len(mon.Samples) < 2 {
		t.Errorf("monitor samples = %d, want several", len(mon.Samples))
	}
	if mon.PeakHeapBytes == 0 {
		t.Error("peak heap not recorded")
	}
}
