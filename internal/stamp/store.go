package stamp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the stamped result store: an append-only file of JSON lines
// mapping fingerprints to finished results, persisted next to the
// resume journal. Where the journal answers "which cells of THIS
// campaign already ran" (keyed by coordinates), the store answers "has
// ANY campaign ever produced this exact cell" (keyed by content
// address), which is what turns a re-run of an unchanged matrix into a
// no-op that still renders complete reports. A torn final line (crash
// mid-write) is skipped on reload; a re-recorded fingerprint overrides
// earlier entries (last write wins).
type Store struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[Fingerprint]json.RawMessage
}

// storeEntry is the on-disk line format.
type storeEntry struct {
	FP    string          `json:"fp"`
	Value json.RawMessage `json:"value,omitempty"`
}

// OpenStore loads the stamped result store at path (creating it and
// its parent directory if absent) and opens it for appending.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, entries: make(map[Fingerprint]json.RawMessage)}
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
		for sc.Scan() {
			var e storeEntry
			// Skip malformed lines (torn writes) instead of failing:
			// losing one stamp only re-runs its cell, which is safe.
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.FP == "" {
				continue
			}
			fp, err := Parse(e.FP)
			if err != nil {
				continue
			}
			s.entries[fp] = e.Value
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("stamp: reading store: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("stamp: creating store directory: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stamp: opening store: %w", err)
	}
	s.f = f
	return s, nil
}

// Get unmarshals the stored value for fp into v and reports whether the
// fingerprint was present.
func (s *Store) Get(fp Fingerprint, v any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.entries[fp]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if v == nil || len(raw) == 0 {
		return true, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return true, fmt.Errorf("stamp: store entry %s: %w", fp.Short(), err)
	}
	return true, nil
}

// Has reports whether fp is stored.
func (s *Store) Has(fp Fingerprint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[fp]
	return ok
}

// Put records fp with value and flushes the line to disk before
// returning, so a kill after Put never loses the stamp.
func (s *Store) Put(fp Fingerprint, value any) error {
	e := storeEntry{FP: fp.String()}
	if value != nil {
		raw, err := json.Marshal(value)
		if err != nil {
			return fmt.Errorf("stamp: storing %s: %w", fp.Short(), err)
		}
		e.Value = raw
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("stamp: storing %s: %w", fp.Short(), err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("stamp: syncing store: %w", err)
	}
	s.entries[fp] = e.Value
	return nil
}

// Len returns the number of stored stamps.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Close closes the underlying file. The Store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
