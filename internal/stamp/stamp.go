package stamp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"runtime/debug"
	"sync"

	"graphalytics/internal/graph"
)

// Fingerprint is a SHA-256 content address.
type Fingerprint [32]byte

// String returns the full lowercase hex form.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex characters — enough to key journal
// entries and cache file names without collisions in practice while
// keeping keys readable.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:])[:12] }

// IsZero reports whether f is the zero fingerprint (meaning "unset").
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// Parse decodes a full-hex fingerprint.
func Parse(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(f) {
		return f, fmt.Errorf("stamp: bad fingerprint %q", s)
	}
	copy(f[:], b)
	return f, nil
}

// Hasher accumulates labeled fields into a fingerprint. Every field is
// written length-prefixed so no concatenation of values is ambiguous
// ("ab"+"c" never hashes like "a"+"bc"), and the domain separates
// fingerprint kinds (a cell fingerprint can never collide with an ETL
// fingerprint over the same inputs).
type Hasher struct {
	h hash.Hash
}

// NewHasher returns a Hasher in the given domain ("cell", "etl",
// "dataset", ...).
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Field("domain", domain)
	return h
}

// Field adds one labeled string field.
func (h *Hasher) Field(name, value string) {
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[:4], uint32(len(name)))
	binary.LittleEndian.PutUint32(pre[4:], uint32(len(value)))
	h.h.Write(pre[:])
	h.h.Write([]byte(name))
	h.h.Write([]byte(value))
}

// Fingerprint adds a nested fingerprint as a field.
func (h *Hasher) Fingerprint(name string, fp Fingerprint) {
	h.Field(name, fp.String())
}

// Sum finalizes the fingerprint.
func (h *Hasher) Sum() Fingerprint {
	var f Fingerprint
	copy(f[:], h.h.Sum(nil))
	return f
}

// JSON canonicalizes any value for fingerprinting via encoding/json
// (struct fields marshal in declaration order, so equal values always
// produce equal bytes within one binary; a struct change is a code
// change, which the binary-version field invalidates anyway).
func JSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Fingerprint inputs are plain parameter structs; a marshal
		// failure is a programming error, not a runtime condition.
		panic(fmt.Sprintf("stamp: unmarshalable fingerprint input: %v", err))
	}
	return string(b)
}

// OfGraph fingerprints a graph by content: the full CSR (direction,
// name, adjacency, weights, labels) via the deterministic GALB
// serialization. Two graphs hash equal iff they serialize identically.
// This is the fallback dataset fingerprint when no generator spec is
// known; generated datasets prefer Dataset over the cheaper-to-compare
// generator parameters.
func OfGraph(g *graph.Graph) (Fingerprint, error) {
	h := NewHasher("graph-content")
	if err := g.WriteBinary(hashWriter{h.h}); err != nil {
		return Fingerprint{}, err
	}
	return h.Sum(), nil
}

type hashWriter struct{ h hash.Hash }

func (w hashWriter) Write(p []byte) (int, error) { return w.h.Write(p) }

// Dataset fingerprints a dataset by its generator identity: the
// generator kind ("social", "rmat", "file", ...) plus the canonical
// parameter string the generator's Config.Stamp() produces (seed,
// sizes, weights flag, distribution — everything that changes the
// output, nothing that does not, like worker counts).
func Dataset(kind, params string) Fingerprint {
	h := NewHasher("dataset")
	h.Field("kind", kind)
	h.Field("params", params)
	return h.Sum()
}

// CellInputs is everything that determines a matrix cell's result.
type CellInputs struct {
	// Graph is the dataset fingerprint (generator params or content).
	Graph Fingerprint
	// Workload is the workload identity: name + validation policy.
	Workload string
	// Params is the canonical algorithm parameter string (after
	// defaults, so parameter-default changes invalidate too).
	Params string
	// Platform is the platform name.
	Platform string
	// PlatformConfig is the platform's configuration stamp (worker
	// budget, memory budget, engine knobs).
	PlatformConfig string
	// Binary is the binary / kernel version (BinaryVersion() unless
	// overridden).
	Binary string
}

// Cell fingerprints one matrix cell.
func Cell(in CellInputs) Fingerprint {
	h := NewHasher("cell")
	h.Fingerprint("graph", in.Graph)
	h.Field("workload", in.Workload)
	h.Field("params", in.Params)
	h.Field("platform", in.Platform)
	h.Field("platform-config", in.PlatformConfig)
	h.Field("binary", in.Binary)
	return h.Sum()
}

// ETL fingerprints one (platform, graph) ETL artifact: the dataset, the
// platform identity and configuration, the platform's ETL encoding
// version, and the binary version.
func ETL(graphFP Fingerprint, platformName, platformConfig, etlVersion, binary string) Fingerprint {
	h := NewHasher("etl")
	h.Fingerprint("graph", graphFP)
	h.Field("platform", platformName)
	h.Field("platform-config", platformConfig)
	h.Field("etl-version", etlVersion)
	h.Field("binary", binary)
	return h.Sum()
}

var binaryVersionOnce struct {
	sync.Once
	v string
}

// BinaryVersion identifies the running binary for fingerprinting: the
// main module version plus the VCS revision (and a dirty marker) from
// the embedded build info. Binaries built from different code report
// different versions, so stale stamped results are never reused across
// kernel changes; a dev build without VCS info degrades to the module
// version string, which is stable within one working tree.
func BinaryVersion() string {
	binaryVersionOnce.Do(func() {
		v := "dev"
		if info, ok := debug.ReadBuildInfo(); ok {
			v = info.Main.Version
			var rev, dirty string
			for _, s := range info.Settings {
				switch s.Key {
				case "vcs.revision":
					rev = s.Value
				case "vcs.modified":
					if s.Value == "true" {
						dirty = "+dirty"
					}
				}
			}
			if rev != "" {
				v += "@" + rev + dirty
			}
		}
		binaryVersionOnce.v = v
	})
	return binaryVersionOnce.v
}
