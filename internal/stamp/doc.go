// Package stamp implements content-addressed fingerprints for the
// incremental campaign engine: every matrix cell, dataset, and ETL
// artifact is identified by a SHA-256 over its inputs (graph content or
// generator parameters, workload spec and validation policy, platform
// name and configuration including the worker budget, and the binary /
// kernel version). Equal fingerprints mean "re-running would reproduce
// this result", so the harness can mark unchanged cells UPTODATE and
// restore their report entries instead of executing kernels — the
// BuildStamp/UPTODATE shape of incremental build graphs applied to the
// benchmark matrix. Any single changed input changes the fingerprint
// and re-executes exactly the affected cells.
//
// The fingerprint functions are pure derivations over explicit inputs:
// Cell for one matrix cell, Dataset for a generated graph's parameters,
// OfGraph for a graph's content, ETL for a platform's transformed form
// of a dataset, and BinaryVersion for the running binary's identity
// (module version plus VCS revision, so two binaries built from the
// same tree agree). Store is the durable side: an append-only JSONL
// file ("stamps.jsonl" in the artifact cache) mapping fingerprints to
// stored cell results, crash-tolerant and last-write-wins on replay.
//
// Fingerprints are also the distribution currency: distributed
// campaigns (internal/dist) ship them in leases so runner processes
// stamp results and address artifacts under exactly the identity the
// campaign manager computed.
package stamp
