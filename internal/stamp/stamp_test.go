package stamp

import (
	"os"
	"path/filepath"
	"testing"

	"graphalytics/internal/graph"
)

func baseInputs() CellInputs {
	return CellInputs{
		Graph:          Dataset("social", "persons=1000,seed=42"),
		Workload:       "bfs/policy=exact/validate=true",
		Params:         `{"Source":0}`,
		Platform:       "pregel",
		PlatformConfig: "pregel/workers=4,mem=0,combiners=true,partitioner=hash",
		Binary:         "v1",
	}
}

func TestCellFingerprintDeterministic(t *testing.T) {
	if Cell(baseInputs()) != Cell(baseInputs()) {
		t.Fatal("equal inputs fingerprint differently")
	}
}

// Every single input must invalidate the cell fingerprint on its own.
func TestCellFingerprintSensitivity(t *testing.T) {
	base := Cell(baseInputs())
	mutations := map[string]func(*CellInputs){
		"graph":           func(in *CellInputs) { in.Graph = Dataset("social", "persons=1000,seed=43") },
		"workload":        func(in *CellInputs) { in.Workload = "bfs/policy=exact/validate=false" },
		"params":          func(in *CellInputs) { in.Params = `{"Source":1}` },
		"platform":        func(in *CellInputs) { in.Platform = "dataflow" },
		"platform-config": func(in *CellInputs) { in.PlatformConfig = "pregel/workers=8,mem=0,combiners=true,partitioner=hash" },
		"binary":          func(in *CellInputs) { in.Binary = "v2" },
	}
	for name, mutate := range mutations {
		in := baseInputs()
		mutate(&in)
		if Cell(in) == base {
			t.Errorf("changing %s did not change the cell fingerprint", name)
		}
	}
}

// Length-prefixed fields: shifting bytes between adjacent fields must
// change the hash ("ab"+"c" vs "a"+"bc").
func TestHasherFieldBoundaries(t *testing.T) {
	h1 := NewHasher("t")
	h1.Field("ab", "c")
	h2 := NewHasher("t")
	h2.Field("a", "bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("field boundary ambiguity: ab|c == a|bc")
	}
}

func TestDomainSeparation(t *testing.T) {
	d := NewHasher("dataset")
	d.Field("x", "y")
	e := NewHasher("etl")
	e.Field("x", "y")
	if d.Sum() == e.Sum() {
		t.Fatal("domains do not separate fingerprints")
	}
}

func TestParseRoundTrip(t *testing.T) {
	fp := Dataset("rmat", "scale=10")
	back, err := Parse(fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != fp {
		t.Fatal("Parse(String()) round trip failed")
	}
	if len(fp.Short()) != 12 {
		t.Fatalf("Short() length = %d, want 12", len(fp.Short()))
	}
	if fp.IsZero() {
		t.Fatal("real fingerprint reports zero")
	}
	if !(Fingerprint{}).IsZero() {
		t.Fatal("zero fingerprint does not report zero")
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("Parse accepted junk")
	}
}

func TestOfGraphMatchesContent(t *testing.T) {
	mk := func(name string) *graph.Graph {
		return graph.FromArcs(name, 4, []graph.VertexID{0, 1, 2}, []graph.VertexID{1, 2, 3}, false)
	}
	a, err := OfGraph(mk("g"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := OfGraph(mk("g"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical graphs fingerprint differently")
	}
	c, err := OfGraph(mk("h"))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different graphs fingerprint equal")
	}
}

type storedResult struct {
	Runtime int64  `json:"runtime"`
	Status  string `json:"status"`
}

func TestStoreRoundTripAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "stamps.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fp := Dataset("social", "n=1")
	if s.Has(fp) {
		t.Fatal("empty store has a stamp")
	}
	if err := s.Put(fp, storedResult{Runtime: 42, Status: "success"}); err != nil {
		t.Fatal(err)
	}
	var got storedResult
	ok, err := s.Get(fp, &got)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if got.Runtime != 42 || got.Status != "success" {
		t.Fatalf("got %+v", got)
	}
	s.Close()

	// Reopen: the entry must survive the process boundary.
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 || !s2.Has(fp) {
		t.Fatalf("reloaded store: len=%d has=%v", s2.Len(), s2.Has(fp))
	}
}

func TestStoreLastWriteWinsAndTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stamps.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fp := Dataset("x", "1")
	if err := s.Put(fp, storedResult{Runtime: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fp, storedResult{Runtime: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a torn trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"dead`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got storedResult
	if ok, err := s2.Get(fp, &got); !ok || err != nil {
		t.Fatalf("Get after torn line = %v, %v", ok, err)
	}
	if got.Runtime != 2 {
		t.Fatalf("last write did not win: runtime = %d", got.Runtime)
	}
	if s2.Len() != 1 {
		t.Fatalf("torn line counted: len = %d", s2.Len())
	}
}

func TestBinaryVersionNonEmpty(t *testing.T) {
	if BinaryVersion() == "" {
		t.Fatal("BinaryVersion() is empty")
	}
	if BinaryVersion() != BinaryVersion() {
		t.Fatal("BinaryVersion() is unstable")
	}
}
