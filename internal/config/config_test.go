package config

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLoadBasics(t *testing.T) {
	src := `
# comment
! also a comment
benchmark.run.algorithms = BFS, CONN , CD
benchmark.run.timeout = 30s
graphs.root: /data/graphs
workers = 8
ratio = 0.5
verbose = true
long.value = a\
b\
c
`
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.List("benchmark.run.algorithms"); len(got) != 3 || got[0] != "BFS" || got[2] != "CD" {
		t.Errorf("List = %v", got)
	}
	if d, err := p.Duration("benchmark.run.timeout", 0); err != nil || d != 30*time.Second {
		t.Errorf("Duration = %v, %v", d, err)
	}
	if v := p.String("graphs.root", ""); v != "/data/graphs" {
		t.Errorf("colon separator: %q", v)
	}
	if n, err := p.Int("workers", 0); err != nil || n != 8 {
		t.Errorf("Int = %d, %v", n, err)
	}
	if f, err := p.Float("ratio", 0); err != nil || f != 0.5 {
		t.Errorf("Float = %v, %v", f, err)
	}
	if b, err := p.Bool("verbose", false); err != nil || !b {
		t.Errorf("Bool = %v, %v", b, err)
	}
	if v := p.String("long.value", ""); v != "abc" {
		t.Errorf("continuation: %q", v)
	}
}

func TestDefaults(t *testing.T) {
	p := New()
	if v := p.String("missing", "dflt"); v != "dflt" {
		t.Errorf("String default: %q", v)
	}
	if n, err := p.Int("missing", 42); err != nil || n != 42 {
		t.Errorf("Int default: %d %v", n, err)
	}
	if d, err := p.Duration("missing", time.Minute); err != nil || d != time.Minute {
		t.Errorf("Duration default: %v %v", d, err)
	}
	if p.List("missing") != nil {
		t.Error("List default should be nil")
	}
	if p.Has("missing") {
		t.Error("Has on missing key")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"novalue\n",
		"= bare\n",
		"dangling = x\\\n",
	}
	for _, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q) should fail", src)
		}
	}
	p := New()
	p.Set("x", "notanint")
	if _, err := p.Int("x", 0); err == nil {
		t.Error("Int on garbage should fail")
	}
	if _, err := p.Bool("x", false); err == nil {
		t.Error("Bool on garbage should fail")
	}
	if _, err := p.Float("x", 0); err == nil {
		t.Error("Float on garbage should fail")
	}
	if _, err := p.Duration("x", 0); err == nil {
		t.Error("Duration on garbage should fail")
	}
}

func TestWithPrefix(t *testing.T) {
	p := New()
	p.Set("benchmark.run.algorithms", "BFS")
	p.Set("benchmark.run.graphs", "patents")
	p.Set("platform.pregel.workers", "4")
	sub := p.WithPrefix("benchmark.run")
	if !sub.Has("algorithms") || !sub.Has("graphs") || sub.Has("platform.pregel.workers") {
		t.Errorf("WithPrefix keys = %v", sub.Keys())
	}
}

func TestSetOverridesAndKeysOrder(t *testing.T) {
	p := New()
	p.Set("a", "1")
	p.Set("b", "2")
	p.Set("a", "3")
	if v := p.String("a", ""); v != "3" {
		t.Errorf("override: %q", v)
	}
	keys := p.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	p := New()
	p.Set("z.key", "val1")
	p.Set("a.key", "val2")
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.String("z.key", "") != "val1" || p2.String("a.key", "") != "val2" {
		t.Errorf("round trip failed: %v", p2.Keys())
	}
}
