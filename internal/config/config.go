// Package config parses the Java-style .properties configuration files
// Graphalytics uses ("Users must setup the platforms and configure
// Graphalytics according to this", §2.3): key = value lines, #/!
// comments, and \ line continuations, with typed accessors and
// hierarchical key prefixes.
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Properties is a parsed properties file.
type Properties struct {
	values map[string]string
	keys   []string // insertion order
}

// New returns an empty Properties.
func New() *Properties {
	return &Properties{values: map[string]string{}}
}

// Load parses properties from r.
func Load(r io.Reader) (*Properties, error) {
	p := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var pending string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if pending != "" {
			line = pending + line
			pending = ""
		}
		if line == "" || line[0] == '#' || line[0] == '!' {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			pending = strings.TrimSuffix(line, "\\")
			continue
		}
		sep := strings.IndexAny(line, "=:")
		if sep < 0 {
			return nil, fmt.Errorf("config: line %d: missing separator in %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:sep])
		val := strings.TrimSpace(line[sep+1:])
		if key == "" {
			return nil, fmt.Errorf("config: line %d: empty key", lineNo)
		}
		p.Set(key, val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pending != "" {
		return nil, fmt.Errorf("config: dangling line continuation")
	}
	return p, nil
}

// LoadFile parses the properties file at path.
func LoadFile(path string) (*Properties, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Set stores key = value.
func (p *Properties) Set(key, value string) {
	if _, exists := p.values[key]; !exists {
		p.keys = append(p.keys, key)
	}
	p.values[key] = value
}

// Has reports whether key is present.
func (p *Properties) Has(key string) bool {
	_, ok := p.values[key]
	return ok
}

// String returns key's value or def when absent.
func (p *Properties) String(key, def string) string {
	if v, ok := p.values[key]; ok {
		return v
	}
	return def
}

// Int returns key's value parsed as int, or def.
func (p *Properties) Int(key string, def int) (int, error) {
	v, ok := p.values[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("config: %s: %w", key, err)
	}
	return n, nil
}

// Int64 returns key's value parsed as int64, or def.
func (p *Properties) Int64(key string, def int64) (int64, error) {
	v, ok := p.values[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("config: %s: %w", key, err)
	}
	return n, nil
}

// Float returns key's value parsed as float64, or def.
func (p *Properties) Float(key string, def float64) (float64, error) {
	v, ok := p.values[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("config: %s: %w", key, err)
	}
	return f, nil
}

// Bool returns key's value parsed as bool, or def.
func (p *Properties) Bool(key string, def bool) (bool, error) {
	v, ok := p.values[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("config: %s: %w", key, err)
	}
	return b, nil
}

// Duration returns key's value parsed as a Go duration, or def.
func (p *Properties) Duration(key string, def time.Duration) (time.Duration, error) {
	v, ok := p.values[key]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("config: %s: %w", key, err)
	}
	return d, nil
}

// List returns key's value split on commas (trimmed, empties dropped).
func (p *Properties) List(key string) []string {
	v, ok := p.values[key]
	if !ok {
		return nil
	}
	var out []string
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Keys returns all keys in insertion order.
func (p *Properties) Keys() []string {
	out := make([]string, len(p.keys))
	copy(out, p.keys)
	return out
}

// WithPrefix returns the sub-properties under "prefix." with the prefix
// stripped (e.g. WithPrefix("benchmark.run") maps
// benchmark.run.algorithms -> algorithms).
func (p *Properties) WithPrefix(prefix string) *Properties {
	out := New()
	full := prefix + "."
	for _, k := range p.keys {
		if strings.HasPrefix(k, full) {
			out.Set(strings.TrimPrefix(k, full), p.values[k])
		}
	}
	return out
}

// Write serializes the properties (sorted by key) to w.
func (p *Properties) Write(w io.Writer) error {
	keys := make([]string, 0, len(p.values))
	for k := range p.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "%s = %s\n", k, p.values[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
