package validation

import (
	"math"
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidReferenceOutputs(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{Source: 0, Seed: 5}.WithDefaults(g.NumVertices())
	cases := []struct {
		kind algo.Kind
		res  Result
	}{
		{algo.STATS, ValidateStats(g, algo.RunStats(g))},
		{algo.BFS, ValidateBFS(g, 0, algo.RunBFS(g, 0))},
		{algo.CONN, ValidateConn(g, algo.RunConn(g))},
		{algo.CD, ValidateCD(g, params, algo.RunCD(g, params))},
		{algo.EVO, ValidateEvo(g, params, algo.RunEvo(g, params))},
		{algo.PR, ValidatePageRank(g, params, algo.RunPageRank(g, params))},
		{algo.SSSP, ValidateSSSP(g, 0, algo.RunSSSP(g, 0))},
		{algo.LCC, ValidateLCC(g, algo.RunLCC(g))},
	}
	for _, c := range cases {
		if !c.res.Valid {
			t.Errorf("%s: reference output rejected: %s", c.kind, c.res.Detail)
		}
	}
}

func TestPageRankRejections(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{}.WithDefaults(g.NumVertices())
	want := algo.RunPageRank(g, params)

	bad := make(algo.PROutput, len(want))
	copy(bad, want)
	bad[0] += 1e-3
	if r := ValidatePageRank(g, params, bad); r.Valid {
		t.Error("perturbed rank accepted")
	}
	// Noise within epsilon is fine.
	near := make(algo.PROutput, len(want))
	copy(near, want)
	near[0] += 1e-13
	if r := ValidatePageRank(g, params, near); !r.Valid {
		t.Errorf("epsilon-close ranks rejected: %s", r.Detail)
	}
	if r := ValidatePageRank(g, params, want[:len(want)-1]); r.Valid {
		t.Error("truncated output accepted")
	}
	// NaN must never validate — NaN comparisons are false both ways, so
	// epsilon checks alone would let an all-NaN output through.
	nan := make(algo.PROutput, len(want))
	for i := range nan {
		nan[i] = math.NaN()
	}
	if r := ValidatePageRank(g, params, nan); r.Valid {
		t.Error("all-NaN ranks accepted")
	}
}

func TestSSSPRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunSSSP(g, 0)
	bad := make(algo.SSSPOutput, len(want))
	copy(bad, want)
	bad[len(bad)/2] += 0.5
	if r := ValidateSSSP(g, 0, bad); r.Valid {
		t.Error("corrupted distance accepted")
	}
	if r := ValidateSSSP(g, 0, want[:len(want)-1]); r.Valid {
		t.Error("truncated output accepted")
	}
}

func TestLCCRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunLCC(g)
	bad := make(algo.LCCOutput, len(want))
	copy(bad, want)
	bad[0] = 1.5 // outside [0, 1]
	if r := ValidateLCC(g, bad); r.Valid {
		t.Error("out-of-range coefficient accepted")
	}
	copy(bad, want)
	bad[1] += 0.01
	if r := ValidateLCC(g, bad); r.Valid {
		t.Error("perturbed coefficient accepted")
	}
}

func TestRankTolerantPolicy(t *testing.T) {
	want := []float64{0.5, 0.3, 0.1, 0.1}
	// Swapping the tied pair is fine.
	if r := RankTolerant([]float64{0.5, 0.3, 0.0999, 0.1001}, want, 1e-2); !r.Valid {
		t.Errorf("tie swap rejected: %s", r.Detail)
	}
	// A genuine inversion is not.
	if r := RankTolerant([]float64{0.3, 0.5, 0.1, 0.1}, want, 1e-2); r.Valid {
		t.Error("rank inversion accepted")
	}
	if r := RankTolerant([]float64{1}, []float64{1, 2}, 0); r.Valid {
		t.Error("length mismatch accepted")
	}
}

func TestStatsRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunStats(g)

	bad := want
	bad.Vertices++
	if r := ValidateStats(g, bad); r.Valid {
		t.Error("wrong vertex count accepted")
	}
	bad = want
	bad.Edges--
	if r := ValidateStats(g, bad); r.Valid {
		t.Error("wrong edge count accepted")
	}
	bad = want
	bad.MeanLCC += 0.001
	if r := ValidateStats(g, bad); r.Valid {
		t.Error("wrong LCC accepted")
	}
	// Tiny float noise within epsilon is fine.
	near := want
	near.MeanLCC += 1e-12
	if r := ValidateStats(g, near); !r.Valid {
		t.Errorf("epsilon-close LCC rejected: %s", r.Detail)
	}
}

func TestBFSRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunBFS(g, 0)
	bad := make(algo.BFSOutput, len(want))
	copy(bad, want)
	bad[len(bad)/2]++
	if r := ValidateBFS(g, 0, bad); r.Valid {
		t.Error("corrupted depth accepted")
	}
	if r := ValidateBFS(g, 0, want[:len(want)-1]); r.Valid {
		t.Error("truncated output accepted")
	}
}

func TestConnRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunConn(g)
	bad := make(algo.ConnOutput, len(want))
	copy(bad, want)
	bad[0] = 99
	if r := ValidateConn(g, bad); r.Valid {
		t.Error("corrupted label accepted")
	}
}

func TestCDRejections(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{}.WithDefaults(g.NumVertices())
	want := algo.RunCD(g, params)
	bad := make(algo.CDOutput, len(want))
	copy(bad, want)
	bad[3] = int64(g.NumVertices()) + 5 // out of domain
	if r := ValidateCD(g, params, bad); r.Valid {
		t.Error("out-of-domain label accepted")
	}
	copy(bad, want)
	bad[3] = want[(len(want)+3)/2]
	if bad[3] == want[3] {
		bad[3] = 0
	}
	if bad[3] != want[3] {
		if r := ValidateCD(g, params, bad); r.Valid {
			t.Error("wrong label accepted")
		}
	}
}

func TestEvoRejections(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{Seed: 5}.WithDefaults(g.NumVertices())
	want := algo.RunEvo(g, params)

	bad := want
	bad.NewVertices++
	if r := ValidateEvo(g, params, bad); r.Valid {
		t.Error("wrong vertex count accepted")
	}

	bad = want
	bad.Edges = append([][2]graph.VertexID{}, want.Edges...)
	if len(bad.Edges) > 0 {
		bad.Edges = bad.Edges[:len(bad.Edges)-1]
		if r := ValidateEvo(g, params, bad); r.Valid {
			t.Error("truncated edge set accepted")
		}
	}

	// Structurally invalid: edge from an original vertex.
	bad = want
	bad.Edges = append([][2]graph.VertexID{{0, 1}}, want.Edges...)
	if r := ValidateEvo(g, params, bad); r.Valid {
		t.Error("edge from original vertex accepted")
	}
}
