package validation

import (
	"testing"

	"graphalytics/internal/algo"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{Persons: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidReferenceOutputs(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{Source: 0, Seed: 5}.WithDefaults(g.NumVertices())
	cases := []struct {
		kind algo.Kind
		out  any
	}{
		{algo.STATS, algo.RunStats(g)},
		{algo.BFS, algo.RunBFS(g, 0)},
		{algo.CONN, algo.RunConn(g)},
		{algo.CD, algo.RunCD(g, params)},
		{algo.EVO, algo.RunEvo(g, params)},
	}
	for _, c := range cases {
		if r := Validate(g, c.kind, params, c.out); !r.Valid {
			t.Errorf("%s: reference output rejected: %s", c.kind, r.Detail)
		}
	}
}

func TestWrongTypeRejected(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{}
	for _, k := range algo.Kinds {
		if r := Validate(g, k, params, "bogus"); r.Valid {
			t.Errorf("%s: wrong output type accepted", k)
		}
	}
	if r := Validate(g, algo.Kind("XX"), params, nil); r.Valid {
		t.Error("unknown kind accepted")
	}
}

func TestStatsRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunStats(g)

	bad := want
	bad.Vertices++
	if r := ValidateStats(g, bad); r.Valid {
		t.Error("wrong vertex count accepted")
	}
	bad = want
	bad.Edges--
	if r := ValidateStats(g, bad); r.Valid {
		t.Error("wrong edge count accepted")
	}
	bad = want
	bad.MeanLCC += 0.001
	if r := ValidateStats(g, bad); r.Valid {
		t.Error("wrong LCC accepted")
	}
	// Tiny float noise within epsilon is fine.
	near := want
	near.MeanLCC += 1e-12
	if r := ValidateStats(g, near); !r.Valid {
		t.Errorf("epsilon-close LCC rejected: %s", r.Detail)
	}
}

func TestBFSRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunBFS(g, 0)
	bad := make(algo.BFSOutput, len(want))
	copy(bad, want)
	bad[len(bad)/2]++
	if r := ValidateBFS(g, 0, bad); r.Valid {
		t.Error("corrupted depth accepted")
	}
	if r := ValidateBFS(g, 0, want[:len(want)-1]); r.Valid {
		t.Error("truncated output accepted")
	}
}

func TestConnRejections(t *testing.T) {
	g := testGraph(t)
	want := algo.RunConn(g)
	bad := make(algo.ConnOutput, len(want))
	copy(bad, want)
	bad[0] = 99
	if r := ValidateConn(g, bad); r.Valid {
		t.Error("corrupted label accepted")
	}
}

func TestCDRejections(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{}.WithDefaults(g.NumVertices())
	want := algo.RunCD(g, params)
	bad := make(algo.CDOutput, len(want))
	copy(bad, want)
	bad[3] = int64(g.NumVertices()) + 5 // out of domain
	if r := ValidateCD(g, params, bad); r.Valid {
		t.Error("out-of-domain label accepted")
	}
	copy(bad, want)
	bad[3] = want[(len(want)+3)/2]
	if bad[3] == want[3] {
		bad[3] = 0
	}
	if bad[3] != want[3] {
		if r := ValidateCD(g, params, bad); r.Valid {
			t.Error("wrong label accepted")
		}
	}
}

func TestEvoRejections(t *testing.T) {
	g := testGraph(t)
	params := algo.Params{Seed: 5}.WithDefaults(g.NumVertices())
	want := algo.RunEvo(g, params)

	bad := want
	bad.NewVertices++
	if r := ValidateEvo(g, params, bad); r.Valid {
		t.Error("wrong vertex count accepted")
	}

	bad = want
	bad.Edges = append([][2]graph.VertexID{}, want.Edges...)
	if len(bad.Edges) > 0 {
		bad.Edges = bad.Edges[:len(bad.Edges)-1]
		if r := ValidateEvo(g, params, bad); r.Valid {
			t.Error("truncated edge set accepted")
		}
	}

	// Structurally invalid: edge from an original vertex.
	bad = want
	bad.Edges = append([][2]graph.VertexID{{0, 1}}, want.Edges...)
	if r := ValidateEvo(g, params, bad); r.Valid {
		t.Error("edge from original vertex accepted")
	}
}
