// Package validation implements the Output Validator of the
// Graphalytics architecture (Figure 2): it "checks the outcome of the
// benchmark to ensure correctness" by comparing every platform result
// against the sequential reference implementation.
//
// Validation rules per algorithm:
//
//   - STATS: vertex and edge counts must match exactly; the mean local
//     clustering coefficient must match within epsilon (different
//     platforms sum per-vertex LCC values in different orders).
//   - BFS: depths must match exactly.
//   - CONN: labels must match exactly (the specification fixes labels to
//     component minima, so equivalence-up-to-relabeling is not needed).
//   - CD: labels must match the reference exactly (the deterministic
//     Leung specification), and additionally the labeling must be a
//     structurally valid partition whose modularity matches.
//   - EVO: the new edge set must match exactly (deterministic fires).
package validation

import (
	"fmt"
	"math"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
)

// Epsilon is the floating-point tolerance for STATS MeanLCC.
const Epsilon = 1e-9

// Result is one validation outcome.
type Result struct {
	Valid  bool
	Detail string // human-readable failure description ("" when valid)
}

func ok() Result { return Result{Valid: true} }

func fail(format string, args ...any) Result {
	return Result{Valid: false, Detail: fmt.Sprintf(format, args...)}
}

// Validate checks output (a platform result) for algorithm kind on g
// against the reference implementation run with params.
func Validate(g *graph.Graph, kind algo.Kind, params algo.Params, output any) Result {
	params = params.WithDefaults(g.NumVertices())
	switch kind {
	case algo.STATS:
		got, okT := output.(algo.StatsOutput)
		if !okT {
			return fail("STATS output has type %T", output)
		}
		return ValidateStats(g, got)
	case algo.BFS:
		got, okT := output.(algo.BFSOutput)
		if !okT {
			return fail("BFS output has type %T", output)
		}
		return ValidateBFS(g, params.Source, got)
	case algo.CONN:
		got, okT := output.(algo.ConnOutput)
		if !okT {
			return fail("CONN output has type %T", output)
		}
		return ValidateConn(g, got)
	case algo.CD:
		got, okT := output.(algo.CDOutput)
		if !okT {
			return fail("CD output has type %T", output)
		}
		return ValidateCD(g, params, got)
	case algo.EVO:
		got, okT := output.(algo.EvoOutput)
		if !okT {
			return fail("EVO output has type %T", output)
		}
		return ValidateEvo(g, params, got)
	default:
		return fail("unknown algorithm %s", kind)
	}
}

// ValidateStats checks a STATS output.
func ValidateStats(g *graph.Graph, got algo.StatsOutput) Result {
	want := algo.RunStats(g)
	if got.Vertices != want.Vertices {
		return fail("vertices = %d, want %d", got.Vertices, want.Vertices)
	}
	if got.Edges != want.Edges {
		return fail("edges = %d, want %d", got.Edges, want.Edges)
	}
	if math.Abs(got.MeanLCC-want.MeanLCC) > Epsilon {
		return fail("mean LCC = %.12f, want %.12f (|Δ| > %g)", got.MeanLCC, want.MeanLCC, Epsilon)
	}
	return ok()
}

// ValidateBFS checks a BFS output.
func ValidateBFS(g *graph.Graph, source graph.VertexID, got algo.BFSOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	want := algo.RunBFS(g, source)
	for v := range want {
		if got[v] != want[v] {
			return fail("vertex %d: depth %d, want %d", v, got[v], want[v])
		}
	}
	return ok()
}

// ValidateConn checks a CONN output.
func ValidateConn(g *graph.Graph, got algo.ConnOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	want := algo.RunConn(g)
	for v := range want {
		if got[v] != want[v] {
			return fail("vertex %d: label %d, want %d", v, got[v], want[v])
		}
	}
	return ok()
}

// ValidateCD checks a CD output: exact label match plus structural
// sanity (labels must be existing vertex IDs) and modularity agreement.
func ValidateCD(g *graph.Graph, params algo.Params, got algo.CDOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	for v, l := range got {
		if l < 0 || l >= int64(g.NumVertices()) {
			return fail("vertex %d: label %d outside vertex ID domain", v, l)
		}
	}
	want := algo.RunCD(g, params)
	for v := range want {
		if got[v] != want[v] {
			return fail("vertex %d: label %d, want %d", v, got[v], want[v])
		}
	}
	if qGot, qWant := algo.Modularity(g, got), algo.Modularity(g, want); math.Abs(qGot-qWant) > Epsilon {
		return fail("modularity %.9f, want %.9f", qGot, qWant)
	}
	return ok()
}

// ValidateEvo checks an EVO output: exact new-edge-set match plus
// structural sanity (sources are new vertices, targets are older).
func ValidateEvo(g *graph.Graph, params algo.Params, got algo.EvoOutput) Result {
	n := graph.VertexID(g.NumVertices())
	for _, e := range got.Edges {
		if e[0] < n {
			return fail("edge source %d is not a new vertex", e[0])
		}
		if e[1] >= e[0] {
			return fail("edge (%d,%d) does not point to an older vertex", e[0], e[1])
		}
	}
	want := algo.RunEvo(g, params)
	if got.NewVertices != want.NewVertices {
		return fail("new vertices = %d, want %d", got.NewVertices, want.NewVertices)
	}
	if len(got.Edges) != len(want.Edges) {
		return fail("new edges = %d, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			return fail("edge %d: %v, want %v", i, got.Edges[i], want.Edges[i])
		}
	}
	return ok()
}
