// Package validation implements the Output Validator of the
// Graphalytics architecture (Figure 2): it "checks the outcome of the
// benchmark to ensure correctness" by comparing every platform result
// against the sequential reference implementation.
//
// The package provides the per-workload validators and the three
// comparison policies the workload registry (internal/workload) binds
// them with:
//
//   - exact: every element must match bit-identically (BFS, CONN, CD,
//     EVO, SSSP — their specifications are deterministic across
//     platforms);
//   - epsilon: float vectors must match within a per-element tolerance
//     (PR, LCC, STATS MeanLCC — platforms sum floats in different
//     orders);
//   - rank-tolerant: the ordering induced by a float vector must match
//     up to ties within a tolerance (a looser PR acceptance criterion,
//     checked in addition to epsilon).
//
// Dispatch from an algo.Kind to its validator lives in the workload
// registry, not here, so adding a workload does not edit this package.
package validation

import (
	"fmt"
	"math"
	"sort"

	"graphalytics/internal/algo"
	"graphalytics/internal/graph"
)

// Epsilon is the floating-point tolerance for STATS MeanLCC, per-vertex
// LCC, and PageRank values.
const Epsilon = 1e-9

// Result is one validation outcome.
type Result struct {
	Valid  bool
	Detail string // human-readable failure description ("" when valid)
}

func ok() Result { return Result{Valid: true} }

func fail(format string, args ...any) Result {
	return Result{Valid: false, Detail: fmt.Sprintf(format, args...)}
}

// Fail builds an invalid Result with a formatted detail message. It is
// exported for the workload registry's own dispatch errors.
func Fail(format string, args ...any) Result { return fail(format, args...) }

// ---------------------------------------------------------------------
// Comparison policies.

// ExactFloats compares two float vectors element-wise for bit equality
// (+Inf equals +Inf). It is the policy for SSSP distances, which are
// deterministic path sums.
func ExactFloats(got, want []float64) Result {
	if len(got) != len(want) {
		return fail("output has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] && !(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) {
			return fail("vertex %d: value %v, want %v", i, got[i], want[i])
		}
	}
	return ok()
}

// EpsilonFloats compares two float vectors element-wise within an
// absolute tolerance eps (+Inf matches +Inf). NaN never validates:
// a NaN comparison is false both ways, so without the explicit check a
// broken platform emitting NaN would slip through.
func EpsilonFloats(got, want []float64, eps float64) Result {
	if len(got) != len(want) {
		return fail("output has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if math.IsNaN(got[i]) {
			return fail("vertex %d: value NaN", i)
		}
		if math.IsInf(want[i], 1) {
			if !math.IsInf(got[i], 1) {
				return fail("vertex %d: value %v, want +Inf", i, got[i])
			}
			continue
		}
		if math.Abs(got[i]-want[i]) > eps {
			return fail("vertex %d: value %.12g, want %.12g (|Δ| > %g)", i, got[i], want[i], eps)
		}
	}
	return ok()
}

// RankTolerant checks that the descending ordering induced by got is
// consistent with want up to ties within eps: walking got's order, each
// next reference value may exceed its predecessor's by at most eps.
// It accepts any permutation among near-equal values while rejecting
// genuine rank inversions — the tolerant acceptance criterion for
// ranking workloads like PageRank.
func RankTolerant(got, want []float64, eps float64) Result {
	if len(got) != len(want) {
		return fail("output has %d entries, want %d", len(got), len(want))
	}
	idx := make([]int, len(got))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if got[idx[a]] != got[idx[b]] {
			return got[idx[a]] > got[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for k := 0; k+1 < len(idx); k++ {
		hi, lo := idx[k], idx[k+1]
		if want[lo] > want[hi]+eps {
			return fail("rank inversion: vertex %d (ref %.12g) ordered above vertex %d (ref %.12g)",
				hi, want[hi], lo, want[lo])
		}
	}
	return ok()
}

// ValidateStats checks a STATS output.
func ValidateStats(g *graph.Graph, got algo.StatsOutput) Result {
	want := algo.RunStats(g)
	if got.Vertices != want.Vertices {
		return fail("vertices = %d, want %d", got.Vertices, want.Vertices)
	}
	if got.Edges != want.Edges {
		return fail("edges = %d, want %d", got.Edges, want.Edges)
	}
	if math.Abs(got.MeanLCC-want.MeanLCC) > Epsilon {
		return fail("mean LCC = %.12f, want %.12f (|Δ| > %g)", got.MeanLCC, want.MeanLCC, Epsilon)
	}
	return ok()
}

// ValidateBFS checks a BFS output.
func ValidateBFS(g *graph.Graph, source graph.VertexID, got algo.BFSOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	want := algo.RunBFS(g, source)
	for v := range want {
		if got[v] != want[v] {
			return fail("vertex %d: depth %d, want %d", v, got[v], want[v])
		}
	}
	return ok()
}

// ValidateConn checks a CONN output.
func ValidateConn(g *graph.Graph, got algo.ConnOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	want := algo.RunConn(g)
	for v := range want {
		if got[v] != want[v] {
			return fail("vertex %d: label %d, want %d", v, got[v], want[v])
		}
	}
	return ok()
}

// ValidateCD checks a CD output: exact label match plus structural
// sanity (labels must be existing vertex IDs) and modularity agreement.
func ValidateCD(g *graph.Graph, params algo.Params, got algo.CDOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	for v, l := range got {
		if l < 0 || l >= int64(g.NumVertices()) {
			return fail("vertex %d: label %d outside vertex ID domain", v, l)
		}
	}
	want := algo.RunCD(g, params)
	for v := range want {
		if got[v] != want[v] {
			return fail("vertex %d: label %d, want %d", v, got[v], want[v])
		}
	}
	if qGot, qWant := algo.Modularity(g, got), algo.Modularity(g, want); math.Abs(qGot-qWant) > Epsilon {
		return fail("modularity %.9f, want %.9f", qGot, qWant)
	}
	return ok()
}

// ValidateEvo checks an EVO output: exact new-edge-set match plus
// structural sanity (sources are new vertices, targets are older).
func ValidateEvo(g *graph.Graph, params algo.Params, got algo.EvoOutput) Result {
	n := graph.VertexID(g.NumVertices())
	for _, e := range got.Edges {
		if e[0] < n {
			return fail("edge source %d is not a new vertex", e[0])
		}
		if e[1] >= e[0] {
			return fail("edge (%d,%d) does not point to an older vertex", e[0], e[1])
		}
	}
	want := algo.RunEvo(g, params)
	if got.NewVertices != want.NewVertices {
		return fail("new vertices = %d, want %d", got.NewVertices, want.NewVertices)
	}
	if len(got.Edges) != len(want.Edges) {
		return fail("new edges = %d, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			return fail("edge %d: %v, want %v", i, got.Edges[i], want.Edges[i])
		}
	}
	return ok()
}

// ValidatePageRank checks a PR output: structural sanity (ranks sum to
// 1), per-vertex epsilon agreement with the reference, and rank-order
// consistency.
func ValidatePageRank(g *graph.Graph, params algo.Params, got algo.PROutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	var sum float64
	for _, r := range got {
		sum += r
	}
	if g.NumVertices() > 0 && math.Abs(sum-1) > 1e-6 {
		return fail("ranks sum to %.9f, want 1", sum)
	}
	want := algo.RunPageRank(g, params)
	if r := EpsilonFloats(got, want, Epsilon); !r.Valid {
		return r
	}
	return RankTolerant(got, want, Epsilon)
}

// ValidateSSSP checks an SSSP output: exact distance agreement with the
// Dijkstra reference (distances are deterministic path sums; see
// algo.RunSSSP).
func ValidateSSSP(g *graph.Graph, source graph.VertexID, got algo.SSSPOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	return ExactFloats(got, algo.RunSSSP(g, source))
}

// ValidateLCC checks an LCC output: per-vertex agreement with the
// reference within epsilon, and every coefficient in [0, 1].
func ValidateLCC(g *graph.Graph, got algo.LCCOutput) Result {
	if len(got) != g.NumVertices() {
		return fail("output has %d entries, want %d", len(got), g.NumVertices())
	}
	for v, c := range got {
		if c < 0 || c > 1 || math.IsNaN(c) {
			return fail("vertex %d: LCC %v outside [0, 1]", v, c)
		}
	}
	return EpsilonFloats(got, algo.RunLCC(g), Epsilon)
}
