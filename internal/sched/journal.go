package sched

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Journal is the campaign checkpoint: an append-only file of JSON
// lines, one per completed job, so an interrupted campaign can resume
// without re-running finished work. Each line is {"key": ..., "value":
// ...}; a torn final line (crash mid-write) is ignored on reload, and
// a re-recorded key overrides earlier entries (last write wins).
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	done map[string]json.RawMessage
}

// journalEntry is the on-disk line format.
type journalEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value,omitempty"`
}

// OpenJournal loads the checkpoint at path (creating it if absent) and
// opens it for appending.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, done: make(map[string]json.RawMessage)}
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
		for sc.Scan() {
			var e journalEntry
			// Skip malformed lines (torn writes) instead of failing the
			// resume: losing one cell re-runs it, which is always safe.
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
				continue
			}
			j.done[e.Key] = e.Value
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("sched: reading journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sched: opening journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Has reports whether key is journaled.
func (j *Journal) Has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[key]
	return ok
}

// HasPrefix reports whether any journaled key starts with prefix. The
// campaign engine uses it to detect stale entries whose coordinates
// match a cell but whose fingerprint suffix does not (same cell, run
// under a different configuration or binary): those must not be
// silently resumed, only reported.
func (j *Journal) HasPrefix(prefix string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for k := range j.done {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// Get unmarshals the journaled value for key into v and reports whether
// the key was present.
func (j *Journal) Get(key string, v any) (bool, error) {
	j.mu.Lock()
	raw, ok := j.done[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if v == nil || len(raw) == 0 {
		return true, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return true, fmt.Errorf("sched: journal entry %q: %w", key, err)
	}
	return true, nil
}

// Record journals key with value (which may be nil) and flushes the
// line to disk before returning, so a kill after Record never loses
// the entry.
func (j *Journal) Record(key string, value any) error {
	e := journalEntry{Key: key}
	if value != nil {
		raw, err := json.Marshal(value)
		if err != nil {
			return fmt.Errorf("sched: journaling %q: %w", key, err)
		}
		e.Value = raw
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sched: journaling %q: %w", key, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sched: syncing journal: %w", err)
	}
	j.done[key] = e.Value
	return nil
}

// Keys returns the journaled keys, sorted.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.done))
	for k := range j.done {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of journaled entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Close closes the underlying file. The Journal must not be used after.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
