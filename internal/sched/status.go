package sched

import (
	"sort"
	"sync"
	"time"
)

// JobState is the live scheduling state of one job, as exposed by the
// status Tracker (coarser than the final Status: it also covers jobs
// that have not resolved yet).
type JobState string

// Live job states.
const (
	StatePending JobState = "pending" // waiting on dependencies
	StateReady   JobState = "ready"   // dispatchable, waiting for a slot
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	StateSkipped JobState = "skipped" // dependency failure or journal hit
)

// Tracker observes one campaign's schedule and serves point-in-time
// snapshots of its progress — the live "/status" view. A nil *Tracker
// is valid and ignores every observation, so the scheduler hot path
// never branches on configuration. Safe for concurrent use: the
// scheduler writes from its workers and scheduling goroutine while any
// number of HTTP handlers snapshot.
type Tracker struct {
	mu      sync.Mutex
	started time.Time
	workers int
	jobs    []trackedJob
	index   map[string]int
	// perWorker[w] is the index of the job worker w is executing (-1 =
	// idle).
	perWorker []int
	counts    Counts
	// Sums for crude averages/ETA.
	queueWaitSum time.Duration
	queueWaitN   int
	execSum      time.Duration
	execN        int
	finished     bool
}

type trackedJob struct {
	id        string
	class     string
	state     JobState
	worker    int
	queueWait time.Duration
	startedAt time.Time
	attempts  int
}

// Counts is the per-state job tally of a snapshot.
type Counts struct {
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Ready   int `json:"ready"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Skipped int `json:"skipped"`
}

// WorkerStatus is one worker's current occupation.
type WorkerStatus struct {
	Worker int    `json:"worker"`
	JobID  string `json:"job_id,omitempty"` // empty = idle
	Class  string `json:"class,omitempty"`
	// RunningFor is how long the current job has been executing.
	RunningFor time.Duration `json:"running_for_ns,omitempty"`
}

// RunningJob is one in-flight job in a snapshot.
type RunningJob struct {
	ID         string        `json:"id"`
	Class      string        `json:"class,omitempty"`
	Worker     int           `json:"worker"`
	QueueWait  time.Duration `json:"queue_wait_ns"`
	RunningFor time.Duration `json:"running_for_ns"`
	Attempts   int           `json:"attempts"`
}

// Snapshot is a point-in-time view of campaign progress.
type Snapshot struct {
	Started  time.Time      `json:"started"`
	Elapsed  time.Duration  `json:"elapsed_ns"`
	Finished bool           `json:"finished"`
	Counts   Counts         `json:"counts"`
	Workers  []WorkerStatus `json:"workers"`
	Running  []RunningJob   `json:"running"`
	// MeanQueueWait / MeanExec average over jobs dispatched / resolved
	// so far.
	MeanQueueWait time.Duration `json:"mean_queue_wait_ns"`
	MeanExec      time.Duration `json:"mean_exec_ns"`
	// ETA is a crude remaining-time estimate: mean execution time of
	// resolved jobs × unresolved jobs ÷ workers. Zero until at least
	// one job has resolved.
	ETA time.Duration `json:"eta_ns"`
}

// NewTracker returns an empty tracker; pass it in Options.Tracker (and
// keep a reference to serve snapshots).
func NewTracker() *Tracker { return &Tracker{} }

// begin resets the tracker for a campaign run.
func (t *Tracker) begin(jobs []Job, workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.started = time.Now()
	t.workers = workers
	t.finished = false
	t.jobs = make([]trackedJob, len(jobs))
	t.index = make(map[string]int, len(jobs))
	for i, j := range jobs {
		t.jobs[i] = trackedJob{id: j.ID, class: j.Class, state: StatePending, worker: -1}
		t.index[j.ID] = i
	}
	t.perWorker = make([]int, workers)
	for w := range t.perWorker {
		t.perWorker[w] = -1
	}
	t.counts = Counts{Total: len(jobs), Pending: len(jobs)}
	t.queueWaitSum, t.queueWaitN, t.execSum, t.execN = 0, 0, 0, 0
}

// ready marks a job dispatchable.
func (t *Tracker) ready(idx int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.transition(idx, StateReady)
}

// start marks a job as executing on a worker.
func (t *Tracker) start(idx, worker int, queueWait time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.transition(idx, StateRunning)
	j := &t.jobs[idx]
	j.worker = worker
	j.queueWait = queueWait
	j.startedAt = time.Now()
	if worker >= 0 && worker < len(t.perWorker) {
		t.perWorker[worker] = idx
	}
	t.queueWaitSum += queueWait
	t.queueWaitN++
}

// resolve records a job's final outcome (from any prior state: skipped
// jobs resolve without ever running).
func (t *Tracker) resolve(idx int, r JobResult) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	j := &t.jobs[idx]
	if j.state == StateRunning {
		t.execSum += time.Since(j.startedAt)
		t.execN++
		if j.worker >= 0 && j.worker < len(t.perWorker) && t.perWorker[j.worker] == idx {
			t.perWorker[j.worker] = -1
		}
	}
	j.attempts = r.Attempts
	switch r.Status {
	case Done:
		t.transition(idx, StateDone)
	case Failed:
		t.transition(idx, StateFailed)
	default: // SkippedDep, SkippedJournal
		t.transition(idx, StateSkipped)
	}
}

// finish marks the campaign complete.
func (t *Tracker) finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.finished = true
	t.mu.Unlock()
}

// transition moves a job between states, keeping counts consistent.
// Caller holds the lock.
func (t *Tracker) transition(idx int, to JobState) {
	j := &t.jobs[idx]
	t.countOf(j.state, -1)
	j.state = to
	t.countOf(to, +1)
}

func (t *Tracker) countOf(s JobState, d int) {
	switch s {
	case StatePending:
		t.counts.Pending += d
	case StateReady:
		t.counts.Ready += d
	case StateRunning:
		t.counts.Running += d
	case StateDone:
		t.counts.Done += d
	case StateFailed:
		t.counts.Failed += d
	case StateSkipped:
		t.counts.Skipped += d
	}
}

// Snapshot returns the current progress view. Safe to call at any time,
// including before the campaign starts (zero-value snapshot) and after
// it finishes.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	s := Snapshot{
		Started:  t.started,
		Finished: t.finished,
		Counts:   t.counts,
	}
	if !t.started.IsZero() {
		s.Elapsed = now.Sub(t.started)
	}
	s.Workers = make([]WorkerStatus, len(t.perWorker))
	for w, idx := range t.perWorker {
		ws := WorkerStatus{Worker: w}
		if idx >= 0 {
			j := t.jobs[idx]
			ws.JobID = j.id
			ws.Class = j.class
			ws.RunningFor = now.Sub(j.startedAt)
		}
		s.Workers[w] = ws
	}
	for idx, j := range t.jobs {
		if j.state != StateRunning {
			continue
		}
		s.Running = append(s.Running, RunningJob{
			ID: j.id, Class: j.class, Worker: j.worker,
			QueueWait: j.queueWait, RunningFor: now.Sub(j.startedAt),
			Attempts: t.jobs[idx].attempts,
		})
	}
	sort.Slice(s.Running, func(i, k int) bool { return s.Running[i].ID < s.Running[k].ID })
	if t.queueWaitN > 0 {
		s.MeanQueueWait = t.queueWaitSum / time.Duration(t.queueWaitN)
	}
	if t.execN > 0 {
		s.MeanExec = t.execSum / time.Duration(t.execN)
		unresolved := t.counts.Total - t.counts.Done - t.counts.Failed - t.counts.Skipped
		if unresolved > 0 && t.workers > 0 {
			s.ETA = s.MeanExec * time.Duration(unresolved) / time.Duration(t.workers)
		}
	}
	return s
}
