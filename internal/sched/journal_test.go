package sched

import (
	"os"
	"path/filepath"
	"testing"
)

type cellPayload struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("cell-1", cellPayload{Name: "bfs", N: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("cell-2", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Has("cell-1") || !j2.Has("cell-2") || j2.Has("cell-3") {
		t.Errorf("keys = %v", j2.Keys())
	}
	var p cellPayload
	ok, err := j2.Get("cell-1", &p)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if p.Name != "bfs" || p.N != 7 {
		t.Errorf("payload = %+v", p)
	}
	if ok, _ := j2.Get("missing", &p); ok {
		t.Error("Get(missing) = true")
	}
	if j2.Len() != 2 {
		t.Errorf("Len = %d", j2.Len())
	}
}

func TestJournalLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Record("k", cellPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var p cellPayload
	if _, err := j2.Get("k", &p); err != nil {
		t.Fatal(err)
	}
	if p.N != 3 {
		t.Errorf("N = %d, want last write 3", p.N)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("good", cellPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-append: a truncated JSON line at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Has("good") {
		t.Error("intact entry lost")
	}
	if j2.Has("torn") {
		t.Error("torn entry must be discarded")
	}
	// The journal must remain appendable after a torn tail.
	if err := j2.Record("after", nil); err != nil {
		t.Fatal(err)
	}
}

func TestJournalHasPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("cell/pregel/g/bfs@abcdef123456", nil); err != nil {
		t.Fatal(err)
	}
	if !j.HasPrefix("cell/pregel/g/bfs@") {
		t.Error("HasPrefix misses a stamped key")
	}
	// A sibling algorithm whose name extends the base must not match:
	// stale detection probes "<base>@", not the bare base.
	if j.HasPrefix("cell/pregel/g/bfs-wide@") {
		t.Error("HasPrefix matches an unrelated algorithm")
	}
	if j.HasPrefix("cell/pregel/g/pr@") {
		t.Error("HasPrefix matches a missing key")
	}
}
