package sched

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.begin(nil, 0)
	tr.ready(0)
	tr.start(0, 0, 0)
	tr.resolve(0, JobResult{})
	tr.finish()
	if s := tr.Snapshot(); s.Counts.Total != 0 {
		t.Fatalf("nil tracker snapshot: %+v", s)
	}
}

func TestTrackerMidCampaignSnapshot(t *testing.T) {
	tr := NewTracker()
	release := make(chan struct{})
	var once sync.Once
	inB := make(chan struct{})

	jobs := []Job{
		{ID: "a", Run: func(context.Context, int) error { return nil }},
		{ID: "b", Deps: []string{"a"}, Class: "slow", Run: func(context.Context, int) error {
			once.Do(func() { close(inB) })
			<-release
			return nil
		}},
		{ID: "c", Deps: []string{"b"}, Run: func(context.Context, int) error { return nil }},
	}

	var results Results
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		results, runErr = Run(context.Background(), jobs, Options{Parallelism: 2, Tracker: tr})
	}()

	<-inB // b is executing, c still pending
	s := tr.Snapshot()
	if s.Finished {
		t.Error("snapshot mid-campaign reports finished")
	}
	if s.Counts.Total != 3 || s.Counts.Done != 1 || s.Counts.Running != 1 || s.Counts.Pending != 1 {
		t.Errorf("mid-campaign counts: %+v", s.Counts)
	}
	if len(s.Running) != 1 || s.Running[0].ID != "b" || s.Running[0].Class != "slow" {
		t.Errorf("running jobs: %+v", s.Running)
	}
	busy := 0
	for _, w := range s.Workers {
		if w.JobID == "b" {
			busy++
			if w.RunningFor <= 0 {
				t.Errorf("worker running_for: %+v", w)
			}
		}
	}
	if busy != 1 {
		t.Errorf("workers: %+v", s.Workers)
	}
	if s.MeanExec <= 0 {
		t.Errorf("mean exec after one resolved job: %v", s.MeanExec)
	}
	if s.ETA <= 0 {
		t.Errorf("ETA with unresolved jobs: %v", s.ETA)
	}
	// The snapshot must be JSON-serializable (it backs /status).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}

	close(release)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(results) != 3 {
		t.Fatalf("results: %+v", results)
	}

	s = tr.Snapshot()
	if !s.Finished {
		t.Error("final snapshot not finished")
	}
	if s.Counts.Done != 3 || s.Counts.Running != 0 || s.Counts.Pending != 0 {
		t.Errorf("final counts: %+v", s.Counts)
	}
	if s.ETA != 0 {
		t.Errorf("final ETA: %v", s.ETA)
	}
	for _, w := range s.Workers {
		if w.JobID != "" {
			t.Errorf("worker busy after finish: %+v", w)
		}
	}
}

func TestTrackerCountsFailuresAndSkips(t *testing.T) {
	tr := NewTracker()
	boom := errors.New("boom")
	jobs := []Job{
		{ID: "a", Run: func(context.Context, int) error { return boom }},
		{ID: "b", Deps: []string{"a"}, Run: func(context.Context, int) error { return nil }},
		{ID: "c", Run: func(context.Context, int) error { return nil }},
	}
	if _, err := Run(context.Background(), jobs, Options{Parallelism: 1, Tracker: tr}); err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	if s.Counts.Failed != 1 || s.Counts.Skipped != 1 || s.Counts.Done != 1 {
		t.Fatalf("counts: %+v", s.Counts)
	}
}

func TestTrackerConcurrentSnapshots(t *testing.T) {
	tr := NewTracker()
	var jobs []Job
	for i := 0; i < 40; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		jobs = append(jobs, Job{ID: id, Run: func(context.Context, int) error {
			time.Sleep(time.Millisecond)
			return nil
		}})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = tr.Snapshot()
				}
			}
		}()
	}
	if _, err := Run(context.Background(), jobs, Options{Parallelism: 4, Tracker: tr}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if s := tr.Snapshot(); s.Counts.Done != len(jobs) {
		t.Fatalf("final: %+v", s.Counts)
	}
}
