package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func noop(context.Context, int) error { return nil }

func TestDependencyOrderRespected(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(id string) func(context.Context, int) error {
		return func(context.Context, int) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	jobs := []Job{
		{ID: "c", Deps: []string{"a", "b"}, Run: record("c")},
		{ID: "a", Run: record("a")},
		{ID: "b", Deps: []string{"a"}, Run: record("b")},
		{ID: "d", Deps: []string{"c"}, Run: record("d")},
	}
	res, err := Run(context.Background(), jobs, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, dep := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}, {"c", "d"}} {
		if pos[dep[0]] > pos[dep[1]] {
			t.Errorf("%s ran after its dependent %s (order %v)", dep[0], dep[1], order)
		}
	}
}

func TestSequentialIsIndexOrdered(t *testing.T) {
	var order []int
	var jobs []Job
	for i := 0; i < 10; i++ {
		i := i
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Run: func(context.Context, int) error {
			order = append(order, i)
			return nil
		}})
	}
	if _, err := Run(context.Background(), jobs, Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestMalformedDAGs(t *testing.T) {
	cases := []struct {
		name string
		jobs []Job
		want string
	}{
		{"cycle", []Job{
			{ID: "a", Deps: []string{"b"}, Run: noop},
			{ID: "b", Deps: []string{"a"}, Run: noop},
		}, "cycle"},
		{"self-loop", []Job{{ID: "a", Deps: []string{"a"}, Run: noop}}, "itself"},
		{"unknown-dep", []Job{{ID: "a", Deps: []string{"ghost"}, Run: noop}}, "unknown"},
		{"duplicate-id", []Job{{ID: "a", Run: noop}, {ID: "a", Run: noop}}, "duplicate"},
		{"empty-id", []Job{{Run: noop}}, "empty ID"},
		{"nil-run", []Job{{ID: "a"}}, "nil Run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(context.Background(), c.jobs, Options{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestParallelismBound(t *testing.T) {
	const bound = 3
	var cur, peak atomic.Int64
	var jobs []Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Run: func(context.Context, int) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		}})
	}
	if _, err := Run(context.Background(), jobs, Options{Parallelism: bound}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > bound {
		t.Errorf("observed %d concurrent jobs, bound %d", p, bound)
	}
}

func TestClassLimits(t *testing.T) {
	var serialCur, serialPeak atomic.Int64
	var jobs []Job
	for i := 0; i < 20; i++ {
		class := "free"
		if i%2 == 0 {
			class = "serial"
		}
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Class: class, Run: func(context.Context, int) error {
			if class == "serial" {
				n := serialCur.Add(1)
				for {
					p := serialPeak.Load()
					if n <= p || serialPeak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				serialCur.Add(-1)
			}
			return nil
		}})
	}
	res, err := Run(context.Background(), jobs, Options{
		Parallelism: 8,
		ClassLimits: map[string]int{"serial": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("results = %d", len(res))
	}
	if p := serialPeak.Load(); p > 1 {
		t.Errorf("class limit violated: %d concurrent serial jobs", p)
	}
}

func TestRetryTransientFailure(t *testing.T) {
	var calls atomic.Int64
	transient := errors.New("flaky")
	jobs := []Job{{ID: "flaky", Run: func(_ context.Context, attempt int) error {
		calls.Add(1)
		if attempt < 3 {
			return transient
		}
		return nil
	}}}
	res, err := Run(context.Background(), jobs, Options{
		Parallelism: 1,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			Retryable:   func(err error) bool { return errors.Is(err, transient) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res["flaky"]
	if r.Status != Done || r.Attempts != 3 || calls.Load() != 3 {
		t.Errorf("result = %+v, calls = %d", r, calls.Load())
	}
}

func TestTerminalErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	terminal := errors.New("oom")
	jobs := []Job{{ID: "dies", Run: func(context.Context, int) error {
		calls.Add(1)
		return terminal
	}}}
	res, err := Run(context.Background(), jobs, Options{
		Retry: RetryPolicy{
			MaxAttempts: 5,
			Retryable:   func(err error) bool { return !errors.Is(err, terminal) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res["dies"]
	if r.Status != Failed || calls.Load() != 1 {
		t.Errorf("result = %+v, calls = %d", r, calls.Load())
	}
}

func TestDependentsOfFailureSkipped(t *testing.T) {
	boom := errors.New("boom")
	ran := map[string]bool{}
	var mu sync.Mutex
	mark := func(id string) func(context.Context, int) error {
		return func(context.Context, int) error {
			mu.Lock()
			ran[id] = true
			mu.Unlock()
			return nil
		}
	}
	jobs := []Job{
		{ID: "load", Run: func(context.Context, int) error { return boom }},
		{ID: "run1", Deps: []string{"load"}, Run: mark("run1")},
		{ID: "run2", Deps: []string{"run1"}, Run: mark("run2")},
		{ID: "other", Run: mark("other")},
	}
	res, err := Run(context.Background(), jobs, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res["load"].Status != Failed {
		t.Errorf("load = %+v", res["load"])
	}
	for _, id := range []string{"run1", "run2"} {
		r := res[id]
		if r.Status != SkippedDep {
			t.Errorf("%s status = %s, want skipped-dep", id, r.Status)
		}
		if !errors.Is(r.Err, boom) {
			t.Errorf("%s err = %v, want wrapped boom", id, r.Err)
		}
		if ran[id] {
			t.Errorf("%s ran despite failed dependency", id)
		}
	}
	if res["other"].Status != Done || !ran["other"] {
		t.Errorf("independent job affected by failure: %+v", res["other"])
	}
}

func TestJournalSkipsCompletedJobs(t *testing.T) {
	j, err := OpenJournal(t.TempDir() + "/journal.json")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("done-before", 1); err != nil {
		t.Fatal(err)
	}
	var ranSkipped, ranDependent atomic.Bool
	jobs := []Job{
		{ID: "done-before", Run: func(context.Context, int) error { ranSkipped.Store(true); return nil }},
		{ID: "after", Deps: []string{"done-before"}, Run: func(context.Context, int) error { ranDependent.Store(true); return nil }},
	}
	res, err := Run(context.Background(), jobs, Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if ranSkipped.Load() {
		t.Error("journaled job was re-run")
	}
	if res["done-before"].Status != SkippedJournal {
		t.Errorf("status = %s", res["done-before"].Status)
	}
	if !ranDependent.Load() || res["after"].Status != Done {
		t.Error("dependent of journaled job must still run")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, []Job{{ID: "a", Run: noop}}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}

	// Mid-campaign cancellation drains and reports the context error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var jobs []Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Run: func(c context.Context, _ int) error {
			cancel2()
			<-c.Done()
			return c.Err()
		}})
	}
	if _, err := Run(ctx2, jobs, Options{Parallelism: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-campaign err = %v", err)
	}
}

func TestOnDoneObservesEveryJob(t *testing.T) {
	var seen []string
	jobs := []Job{
		{ID: "a", Run: noop},
		{ID: "b", Deps: []string{"a"}, Run: func(context.Context, int) error { return errors.New("x") }},
		{ID: "c", Deps: []string{"b"}, Run: noop},
	}
	_, err := Run(context.Background(), jobs, Options{
		Parallelism: 2,
		OnDone:      func(r JobResult) { seen = append(seen, r.ID+":"+string(r.Status)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("OnDone calls = %v", seen)
	}
}

// TestManyJobsRace is a stress shape for the -race detector: a wide
// diamond DAG with shared counters.
func TestManyJobsRace(t *testing.T) {
	var total atomic.Int64
	jobs := []Job{{ID: "root", Run: noop}}
	for i := 0; i < 200; i++ {
		jobs = append(jobs, Job{
			ID:   fmt.Sprintf("mid%d", i),
			Deps: []string{"root"},
			Run:  func(context.Context, int) error { total.Add(1); return nil },
		})
	}
	var deps []string
	for i := 0; i < 200; i++ {
		deps = append(deps, fmt.Sprintf("mid%d", i))
	}
	jobs = append(jobs, Job{ID: "sink", Deps: deps, Run: noop})
	res, err := Run(context.Background(), jobs, Options{Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 200 || len(res) != 202 {
		t.Fatalf("total = %d, results = %d", total.Load(), len(res))
	}
	if res["sink"].Status != Done {
		t.Errorf("sink = %+v", res["sink"])
	}
}

// TestJournalSkipChainResolvesOnce: a chain whose first two jobs are
// journaled must resolve each job exactly once and still run the tail
// (regression: the seed scan used to re-enqueue dependents unblocked
// by inline journal-skip cascades).
func TestJournalSkipChainResolvesOnce(t *testing.T) {
	j, err := OpenJournal(t.TempDir() + "/journal.json")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("b", nil); err != nil {
		t.Fatal(err)
	}
	var bRuns, cRuns atomic.Int64
	jobs := []Job{
		{ID: "a", Run: noop},
		{ID: "b", Deps: []string{"a"}, Run: func(context.Context, int) error { bRuns.Add(1); return nil }},
		{ID: "c", Deps: []string{"b"}, Run: func(context.Context, int) error { cRuns.Add(1); return nil }},
	}
	res, err := Run(context.Background(), jobs, Options{Parallelism: 4, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res["a"].Status != SkippedJournal || res["b"].Status != SkippedJournal {
		t.Errorf("journaled chain: a=%s b=%s", res["a"].Status, res["b"].Status)
	}
	if bRuns.Load() != 0 {
		t.Errorf("journaled job b ran %d times", bRuns.Load())
	}
	if res["c"].Status != Done || cRuns.Load() != 1 {
		t.Errorf("tail job c: status=%s runs=%d, want done/1", res["c"].Status, cRuns.Load())
	}
}
