package sched

import (
	"fmt"
	"strings"
)

// dag is the validated dependency graph over a job slice: for every job
// it knows who waits on it (dependents) and how many jobs it waits on
// (indegree). Jobs are addressed by their index in the input slice so
// the hot scheduling path never touches strings.
type dag struct {
	jobs       []Job
	index      map[string]int // ID → slice index
	dependents [][]int        // edges dependency → dependent
	indegree   []int
}

// buildDAG validates jobs (unique IDs, known dependencies, no cycles)
// and returns the adjacency structure the scheduler executes.
func buildDAG(jobs []Job) (*dag, error) {
	d := &dag{
		jobs:       jobs,
		index:      make(map[string]int, len(jobs)),
		dependents: make([][]int, len(jobs)),
		indegree:   make([]int, len(jobs)),
	}
	for i, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("sched: job %d has empty ID", i)
		}
		if j.Run == nil {
			return nil, fmt.Errorf("sched: job %q has nil Run", j.ID)
		}
		if prev, ok := d.index[j.ID]; ok {
			return nil, fmt.Errorf("sched: duplicate job ID %q (indices %d and %d)", j.ID, prev, i)
		}
		d.index[j.ID] = i
	}
	for i, j := range jobs {
		for _, dep := range j.Deps {
			di, ok := d.index[dep]
			if !ok {
				return nil, fmt.Errorf("sched: job %q depends on unknown job %q", j.ID, dep)
			}
			if di == i {
				return nil, fmt.Errorf("sched: job %q depends on itself", j.ID)
			}
			d.dependents[di] = append(d.dependents[di], i)
			d.indegree[i]++
		}
	}
	if cycle := d.findCycle(); len(cycle) > 0 {
		return nil, fmt.Errorf("sched: dependency cycle: %s", strings.Join(cycle, " → "))
	}
	return d, nil
}

// findCycle runs Kahn's algorithm on a scratch copy of the indegrees;
// any job left unprocessed sits on (or downstream of) a cycle. It
// returns one concrete cycle for the error message, or nil.
func (d *dag) findCycle() []string {
	deg := make([]int, len(d.indegree))
	copy(deg, d.indegree)
	queue := make([]int, 0, len(deg))
	for i, n := range deg {
		if n == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		for _, dep := range d.dependents[i] {
			if deg[dep]--; deg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if processed == len(d.jobs) {
		return nil
	}
	// Walk dependency edges among the remaining jobs until a repeat.
	start := -1
	for i, n := range deg {
		if n > 0 {
			start = i
			break
		}
	}
	onPath := map[int]int{}
	var path []string
	for i := start; ; {
		if pos, seen := onPath[i]; seen {
			return append(path[pos:], d.jobs[i].ID)
		}
		onPath[i] = len(path)
		path = append(path, d.jobs[i].ID)
		for _, dep := range d.jobs[i].Deps {
			if di := d.index[dep]; deg[di] > 0 {
				i = di
				break
			}
		}
	}
}
