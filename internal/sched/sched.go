// Package sched is the campaign scheduler of the benchmark harness: a
// dependency-aware job runner in the build-graph style. A campaign is
// a DAG of jobs (ETL/load jobs feeding per-cell run jobs); the
// scheduler executes it on a bounded worker pool with per-class
// concurrency limits (so memory-budgeted platforms can serialize their
// own jobs while others proceed), a retry policy that distinguishes
// transient from terminal failures, and an optional journal that lets
// an interrupted campaign resume without re-running finished jobs.
//
// The scheduler guarantees: dependencies complete before dependents
// start; dependents of a failed job are skipped (not run); the full
// job set is accounted for in the returned Results regardless of
// schedule; and with Parallelism = 1 jobs run one at a time in a
// deterministic (index) order.
package sched

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"time"

	"graphalytics/internal/telemetry"
)

// Job is one schedulable unit of campaign work.
type Job struct {
	// ID uniquely names the job within one campaign.
	ID string
	// Deps lists the IDs of jobs that must succeed before this one runs.
	Deps []string
	// Class optionally assigns the job to a concurrency class; jobs in
	// the same class are additionally bounded by Options.ClassLimits.
	Class string
	// Run performs the work. attempt counts from 1 so a job can tell a
	// retry from a first try (and, knowing the policy, a final attempt).
	Run func(ctx context.Context, attempt int) error
}

// RetryPolicy bounds re-execution of failed jobs.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per job (<= 1 disables
	// retries).
	MaxAttempts int
	// Backoff is the wait before the first retry; it doubles per retry.
	Backoff time.Duration
	// Retryable classifies errors; nil retries nothing. Terminal states
	// (out-of-memory, deadline exceeded) should return false.
	Retryable func(error) bool
}

// WillRetry reports whether a job that failed with err on the given
// attempt (counting from 1) gets another try under the policy. Jobs
// that must act only on their last attempt share this predicate with
// the scheduler instead of re-deriving it.
func (p RetryPolicy) WillRetry(err error, attempt int) bool {
	return err != nil && attempt < p.MaxAttempts && p.Retryable != nil && p.Retryable(err)
}

// Status classifies how a job finished.
type Status string

// Job outcomes.
const (
	// Done: Run returned nil (possibly after retries).
	Done Status = "done"
	// Failed: Run returned a non-retryable error or exhausted retries.
	Failed Status = "failed"
	// SkippedDep: a (transitive) dependency failed; Run never executed.
	SkippedDep Status = "skipped-dep"
	// SkippedJournal: the journal already holds this job; Run never
	// executed and dependents treat it as Done.
	SkippedJournal Status = "skipped-journal"
)

// JobResult is the scheduler's account of one job.
type JobResult struct {
	ID       string
	Status   Status
	Err      error
	Attempts int
}

// Results maps job ID → outcome for every job of the campaign.
type Results map[string]JobResult

// Options configures a campaign execution.
type Options struct {
	// Parallelism bounds concurrently running jobs (0 = NumCPU).
	Parallelism int
	// ClassLimits bounds concurrent jobs per class (absent/0 =
	// unlimited within Parallelism).
	ClassLimits map[string]int
	// Retry is the re-execution policy for failed jobs.
	Retry RetryPolicy
	// Journal, when non-nil, marks jobs whose ID it already contains as
	// SkippedJournal without running them.
	Journal *Journal
	// OnDone, when non-nil, observes each job outcome as it resolves
	// (called from the scheduling goroutine, never concurrently).
	OnDone func(JobResult)
	// Tracker, when non-nil, observes the live schedule (per-job state,
	// per-worker occupation, queue wait, crude ETA) and serves progress
	// snapshots — the campaign "/status" view.
	Tracker *Tracker
}

// Run executes the job DAG to completion and returns per-job results.
// It returns an error for a malformed DAG or a cancelled context; job
// failures are reported in Results, not as an error, so one broken
// cell never aborts a campaign.
func Run(ctx context.Context, jobs []Job, opts Options) (Results, error) {
	d, err := buildDAG(jobs)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}

	s := &state{
		dag:     d,
		opts:    opts,
		workers: workers,
		results: make(Results, len(jobs)),
		doomed:  make([]error, len(jobs)),
		readyAt: make([]time.Time, len(jobs)),
		active:  make(map[string]int),
	}
	opts.Tracker.begin(jobs, workers)
	defer opts.Tracker.finish()
	slog.Info("sched: campaign start", "jobs", len(jobs), "workers", workers)
	return s.run(ctx)
}

// state is the single-goroutine scheduling loop's mutable view of the
// campaign. Workers only ever see job indices and report completions;
// all bookkeeping (ready queue, class counters, cascades) stays here.
type state struct {
	dag     *dag
	opts    Options
	workers int
	results Results
	// doomed[i] holds the first failed-dependency error for job i.
	doomed []error
	// ready holds dispatchable job indices, kept sorted: the scheduler
	// always starts the lowest-index eligible job, so Parallelism = 1
	// reproduces the sequential nested-loop schedule exactly.
	ready []int
	// readyAt records when each job entered the ready queue, so the
	// trace can split queue wait from execution time.
	readyAt []time.Time
	// active counts running jobs per class.
	active   map[string]int
	inflight int
	resolved int
}

// completion is a worker's report for one executed job.
type completion struct {
	idx      int
	err      error
	attempts int
}

// dispatched is what a worker receives per job: the job index and how
// long the job sat in the ready queue before a slot opened.
type dispatched struct {
	idx       int
	queueWait time.Duration
}

func (s *state) run(ctx context.Context) (Results, error) {
	jobs := s.dag.jobs
	// Buffered so neither side ever blocks: at most len(jobs) dispatches
	// and completions flow through each channel.
	dispatch := make(chan dispatched, len(jobs))
	completed := make(chan completion, len(jobs))
	for w := 0; w < s.workers; w++ {
		go func(worker int) {
			for d := range dispatch {
				job := jobs[d.idx]
				s.opts.Tracker.start(d.idx, worker, d.queueWait)
				sp := telemetry.StartSpanT("sched", "job:"+job.ID, worker)
				sp.SetAttr("class", job.Class)
				sp.SetAttr("queue_wait_us", d.queueWait)
				execStart := time.Now()
				err, attempts := runWithRetry(ctx, job, s.opts.Retry)
				exec := time.Since(execStart)
				sp.SetAttr("attempts", attempts)
				if err != nil {
					sp.SetAttr("error", err.Error())
				}
				sp.End()
				telemetry.Metrics.Histogram("sched_queue_wait_seconds",
					"time jobs spent ready but undispatched", telemetry.DurationBuckets).
					Observe(d.queueWait.Seconds())
				telemetry.Metrics.Histogram("sched_execute_seconds",
					"job execution time (including retries)", telemetry.DurationBuckets).
					Observe(exec.Seconds())
				completed <- completion{idx: d.idx, err: err, attempts: attempts}
			}
		}(w)
	}
	defer close(dispatch)

	// Seed: jobs with no dependencies are ready. Snapshot the roots
	// first — journal skips resolve inline and their cascades decrement
	// indegrees, so scanning the live slice while enqueueing would see
	// freshly-unblocked dependents as roots and enqueue them twice.
	var roots []int
	for i, n := range s.dag.indegree {
		if n == 0 {
			roots = append(roots, i)
		}
	}
	for _, i := range roots {
		s.enqueue(i)
	}
	s.dispatchReady(dispatch)

	for s.resolved < len(jobs) {
		if s.inflight == 0 {
			// Nothing running and nothing resolvable: the DAG validated
			// acyclic, so this cannot happen; guard against livelock.
			return nil, fmt.Errorf("sched: stalled with %d/%d jobs resolved", s.resolved, len(jobs))
		}
		select {
		case c := <-completed:
			s.inflight--
			s.active[jobs[c.idx].Class]--
			if c.err != nil {
				s.resolve(c.idx, JobResult{ID: jobs[c.idx].ID, Status: Failed, Err: c.err, Attempts: c.attempts})
			} else {
				s.resolve(c.idx, JobResult{ID: jobs[c.idx].ID, Status: Done, Attempts: c.attempts})
			}
			s.dispatchReady(dispatch)
		case <-ctx.Done():
			// Drain running jobs (they observe ctx themselves) so no
			// worker writes after we return.
			for s.inflight > 0 {
				<-completed
				s.inflight--
			}
			return nil, ctx.Err()
		}
	}
	return s.results, nil
}

// enqueue admits a dependency-free job: journal hits resolve
// immediately, everything else joins the ready queue in index order.
func (s *state) enqueue(i int) {
	job := s.dag.jobs[i]
	if s.doomed[i] != nil {
		s.resolve(i, JobResult{ID: job.ID, Status: SkippedDep, Err: s.doomed[i]})
		return
	}
	if s.opts.Journal != nil && s.opts.Journal.Has(job.ID) {
		s.resolve(i, JobResult{ID: job.ID, Status: SkippedJournal})
		return
	}
	at := sort.SearchInts(s.ready, i)
	s.ready = append(s.ready, 0)
	copy(s.ready[at+1:], s.ready[at:])
	s.ready[at] = i
	s.readyAt[i] = time.Now()
	s.opts.Tracker.ready(i)
}

// dispatchReady starts ready jobs while worker slots remain, always
// picking the lowest-index job whose class has capacity. Jobs whose
// class is saturated (or that exceed the worker count) stay in the
// ready queue for the next completion to reconsider.
func (s *state) dispatchReady(dispatch chan<- dispatched) {
	for s.inflight < s.workers {
		picked := -1
		for k, i := range s.ready {
			class := s.dag.jobs[i].Class
			if limit, ok := s.opts.ClassLimits[class]; ok && limit > 0 && s.active[class] >= limit {
				continue
			}
			picked = k
			break
		}
		if picked < 0 {
			return
		}
		i := s.ready[picked]
		s.ready = append(s.ready[:picked], s.ready[picked+1:]...)
		s.active[s.dag.jobs[i].Class]++
		s.inflight++
		dispatch <- dispatched{idx: i, queueWait: time.Since(s.readyAt[i])}
	}
}

// resolve records a job outcome and cascades to dependents: a success
// (or journal skip) unblocks them, a failure dooms them. Cascades are
// processed inline, so by the time resolve returns every transitively
// affected job is accounted for.
func (s *state) resolve(i int, r JobResult) {
	s.results[r.ID] = r
	s.resolved++
	telemetry.Metrics.Counter("sched_jobs_"+statusMetric(r.Status)+"_total",
		"jobs resolved with status "+string(r.Status)).Inc()
	s.opts.Tracker.resolve(i, r)
	switch r.Status {
	case Failed:
		slog.Warn("sched: job failed",
			"job", r.ID, "class", s.dag.jobs[i].Class, "attempts", r.Attempts, "err", r.Err)
	case SkippedDep:
		slog.Debug("sched: job skipped (dependency failed)", "job", r.ID, "err", r.Err)
	default:
		slog.Debug("sched: job resolved", "job", r.ID, "status", string(r.Status), "attempts", r.Attempts)
	}
	if s.opts.OnDone != nil {
		s.opts.OnDone(r)
	}
	ok := r.Status == Done || r.Status == SkippedJournal
	for _, dep := range s.dag.dependents[i] {
		if !ok && s.doomed[dep] == nil {
			s.doomed[dep] = fmt.Errorf("sched: dependency %q %s: %w", r.ID, r.Status, firstErr(r.Err, s.doomed[i]))
		}
		if s.dag.indegree[dep]--; s.dag.indegree[dep] == 0 {
			s.enqueue(dep)
		}
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return fmt.Errorf("dependency failed")
}

// statusMetric maps a job status to a metric-name-safe token.
func statusMetric(s Status) string {
	switch s {
	case Done:
		return "done"
	case Failed:
		return "failed"
	case SkippedDep:
		return "skipped_dep"
	case SkippedJournal:
		return "skipped_journal"
	}
	return "unknown"
}

// runWithRetry executes one job under the retry policy and reports the
// final error and the number of attempts made.
func runWithRetry(ctx context.Context, job Job, policy RetryPolicy) (error, int) {
	backoff := policy.Backoff
	for attempt := 1; ; attempt++ {
		err := job.Run(ctx, attempt)
		if err == nil || ctx.Err() != nil {
			return err, attempt
		}
		if !policy.WillRetry(err, attempt) {
			return err, attempt
		}
		telemetry.Metrics.Counter("sched_job_retries_total",
			"job attempts re-run after a retryable failure").Inc()
		slog.Debug("sched: retrying job", "job", job.ID, "attempt", attempt, "err", err.Error())
		if backoff > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return err, attempt
			}
			backoff *= 2
		}
	}
}
