// Package monitor implements the System Monitor of the Graphalytics
// architecture (Figure 2): it is "responsible for gathering resource
// utilization statistics from the SUT" while a benchmark job runs. The
// monitor samples the Go runtime (heap, goroutines, GC) on a fixed
// interval and reports a timeline plus peak values.
package monitor

import (
	"runtime"
	"sync"
	"time"
)

// Sample is one resource-utilization observation.
type Sample struct {
	At         time.Duration // offset from monitor start
	HeapBytes  uint64
	Goroutines int
	GCCount    uint32
}

// Report summarizes a monitoring session.
type Report struct {
	Samples        []Sample
	PeakHeapBytes  uint64
	PeakGoroutines int
	GCCycles       uint32
	Duration       time.Duration
}

// Monitor samples resource usage in the background.
type Monitor struct {
	interval time.Duration
	mu       sync.Mutex
	samples  []Sample
	stop     chan struct{}
	done     chan struct{}
	start    time.Time
	startGC  uint32
	running  bool
}

// New returns a monitor sampling at the given interval (default 10ms).
func New(interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Monitor{interval: interval}
}

// Start begins sampling. It is an error to start a running monitor.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.samples = nil
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	m.start = time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.startGC = ms.NumGC
	go m.loop()
}

func (m *Monitor) loop() {
	defer close(m.done)
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	m.sample()
	for {
		select {
		case <-m.stop:
			m.sample()
			return
		case <-tick.C:
			m.sample()
		}
	}
}

func (m *Monitor) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Sample{
		At:         time.Since(m.start),
		HeapBytes:  ms.HeapAlloc,
		Goroutines: runtime.NumGoroutine(),
		GCCount:    ms.NumGC,
	}
	m.mu.Lock()
	m.samples = append(m.samples, s)
	m.mu.Unlock()
}

// Stop ends sampling and returns the report.
func (m *Monitor) Stop() Report {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return Report{}
	}
	m.running = false
	m.mu.Unlock()
	close(m.stop)
	<-m.done

	m.mu.Lock()
	defer m.mu.Unlock()
	r := Report{Samples: m.samples, Duration: time.Since(m.start)}
	for _, s := range m.samples {
		if s.HeapBytes > r.PeakHeapBytes {
			r.PeakHeapBytes = s.HeapBytes
		}
		if s.Goroutines > r.PeakGoroutines {
			r.PeakGoroutines = s.Goroutines
		}
	}
	if n := len(m.samples); n > 0 {
		r.GCCycles = m.samples[n-1].GCCount - m.startGC
	}
	return r
}
