// Package monitor implements the System Monitor of the Graphalytics
// architecture (Figure 2): it is "responsible for gathering resource
// utilization statistics from the SUT" while a benchmark job runs. The
// monitor samples the Go runtime (heap, goroutines, GC) and, where the
// OS exposes it (Linux /proc), process-level CPU time and resident-set
// size on a fixed interval; it reports the timeline, peak values,
// percentiles over the sampled timeline, and the CPU/GC envelope of
// the session.
package monitor

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"graphalytics/internal/telemetry"
)

// Sample is one resource-utilization observation.
type Sample struct {
	At         time.Duration // offset from monitor start
	HeapBytes  uint64
	Goroutines int
	GCCount    uint32
	// RSSBytes is the OS-reported resident set size (0 where the OS
	// probe is unavailable).
	RSSBytes uint64
	// CPUTime is cumulative process CPU (user+system) consumed since
	// monitoring started (0 where unavailable).
	CPUTime time.Duration
}

// Report summarizes a monitoring session.
type Report struct {
	Samples        []Sample
	PeakHeapBytes  uint64
	PeakGoroutines int
	GCCycles       uint32
	Duration       time.Duration
	// PeakRSSBytes is the maximum sampled resident set size (0 where
	// the OS probe is unavailable).
	PeakRSSBytes uint64
	// CPUTime is the process CPU (user+system) consumed during the
	// session (0 where unavailable).
	CPUTime time.Duration
	// GCPauseTotal is the stop-the-world pause time accumulated during
	// the session.
	GCPauseTotal time.Duration
}

// Resources is the JSON-friendly envelope of a monitoring session: the
// peaks, the CPU/GC totals, and percentiles over the sampled timeline
// — the summary the report layer embeds per cell instead of dropping
// the timeline on the floor.
type Resources struct {
	Samples        int           `json:"samples"`
	Duration       time.Duration `json:"duration_ns"`
	PeakHeapBytes  uint64        `json:"peak_heap_bytes"`
	HeapP50Bytes   uint64        `json:"heap_p50_bytes,omitempty"`
	HeapP95Bytes   uint64        `json:"heap_p95_bytes,omitempty"`
	HeapP99Bytes   uint64        `json:"heap_p99_bytes,omitempty"`
	PeakGoroutines int           `json:"peak_goroutines"`
	GCCycles       uint32        `json:"gc_cycles"`
	GCPauseTotal   time.Duration `json:"gc_pause_total_ns,omitempty"`
	PeakRSSBytes   uint64        `json:"peak_rss_bytes,omitempty"`
	RSSP50Bytes    uint64        `json:"rss_p50_bytes,omitempty"`
	RSSP99Bytes    uint64        `json:"rss_p99_bytes,omitempty"`
	CPUTime        time.Duration `json:"cpu_time_ns,omitempty"`
	// CPUMeanPercent is mean CPU utilization over the session: 100 ×
	// cpu-seconds per wall-second (a 4-core-saturating run reads 400).
	CPUMeanPercent float64 `json:"cpu_mean_percent,omitempty"`
}

// Resources summarizes the report, reducing the sampled timeline to
// percentiles.
func (r Report) Resources() Resources {
	res := Resources{
		Samples:        len(r.Samples),
		Duration:       r.Duration,
		PeakHeapBytes:  r.PeakHeapBytes,
		PeakGoroutines: r.PeakGoroutines,
		GCCycles:       r.GCCycles,
		GCPauseTotal:   r.GCPauseTotal,
		PeakRSSBytes:   r.PeakRSSBytes,
		CPUTime:        r.CPUTime,
	}
	if len(r.Samples) > 0 {
		heap := make([]uint64, len(r.Samples))
		rss := make([]uint64, len(r.Samples))
		for i, s := range r.Samples {
			heap[i] = s.HeapBytes
			rss[i] = s.RSSBytes
		}
		sortU64(heap)
		sortU64(rss)
		res.HeapP50Bytes = percentileU64(heap, 50)
		res.HeapP95Bytes = percentileU64(heap, 95)
		res.HeapP99Bytes = percentileU64(heap, 99)
		if res.PeakRSSBytes > 0 {
			res.RSSP50Bytes = percentileU64(rss, 50)
			res.RSSP99Bytes = percentileU64(rss, 99)
		}
	}
	if r.Duration > 0 && r.CPUTime > 0 {
		res.CPUMeanPercent = 100 * float64(r.CPUTime) / float64(r.Duration)
	}
	return res
}

func sortU64(v []uint64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// percentileU64 returns the p-th percentile (nearest-rank) of sorted v.
func percentileU64(sorted []uint64, p int) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// session is the state of one Start..Stop interval. Every sampling
// goroutine owns exactly one session, so a Start racing a draining
// Stop can never mix two sessions' samples.
type session struct {
	mu       sync.Mutex
	samples  []Sample
	stop     chan struct{}
	done     chan struct{}
	start    time.Time
	startGC  uint32
	startCPU time.Duration
	startGCP uint64 // PauseTotalNs at start
}

// Monitor samples resource usage in the background. Start and Stop may
// be called repeatedly and concurrently: Start on a running monitor is
// a no-op, Stop on a stopped monitor returns the last completed
// session's report, and a stopped monitor restarts cleanly.
type Monitor struct {
	interval time.Duration
	mu       sync.Mutex
	cur      *session // non-nil while running
	last     Report   // report of the most recent completed session
}

// New returns a monitor sampling at the given interval (default 10ms).
func New(interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Monitor{interval: interval}
}

// Start begins sampling. Starting a running monitor is a no-op.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur != nil {
		return
	}
	s := &session{
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.startGC = ms.NumGC
	s.startGCP = ms.PauseTotalNs
	if os, ok := readOSStats(); ok {
		s.startCPU = os.cpu
	}
	m.cur = s
	go m.loop(s)
}

func (m *Monitor) loop(s *session) {
	defer close(s.done)
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	s.sample()
	for {
		select {
		case <-s.stop:
			s.sample()
			return
		case <-tick.C:
			s.sample()
		}
	}
}

func (s *session) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	smp := Sample{
		At:         time.Since(s.start),
		HeapBytes:  ms.HeapAlloc,
		Goroutines: runtime.NumGoroutine(),
		GCCount:    ms.NumGC,
	}
	if os, ok := readOSStats(); ok {
		smp.RSSBytes = os.rssBytes
		if d := os.cpu - s.startCPU; d > 0 {
			smp.CPUTime = d
		}
	}
	// Live view for the -metrics-addr Prometheus listener.
	telemetry.Metrics.Gauge("monitor_heap_bytes", "sampled Go heap in use").Set(float64(smp.HeapBytes))
	telemetry.Metrics.Gauge("monitor_goroutines", "sampled goroutine count").Set(float64(smp.Goroutines))
	if smp.RSSBytes > 0 {
		telemetry.Metrics.Gauge("monitor_rss_bytes", "sampled resident set size").Set(float64(smp.RSSBytes))
	}
	s.mu.Lock()
	s.samples = append(s.samples, smp)
	s.mu.Unlock()
}

// Stop ends sampling and returns the report. Stopping an already
// stopped monitor returns the previous session's report (idempotent);
// stopping a never-started monitor returns an empty report.
func (m *Monitor) Stop() Report {
	m.mu.Lock()
	s := m.cur
	if s == nil {
		last := m.last
		m.mu.Unlock()
		return last
	}
	m.cur = nil
	m.mu.Unlock()

	close(s.stop)
	<-s.done

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s.mu.Lock()
	r := Report{Samples: s.samples, Duration: time.Since(s.start)}
	s.mu.Unlock()
	for _, smp := range r.Samples {
		if smp.HeapBytes > r.PeakHeapBytes {
			r.PeakHeapBytes = smp.HeapBytes
		}
		if smp.Goroutines > r.PeakGoroutines {
			r.PeakGoroutines = smp.Goroutines
		}
		if smp.RSSBytes > r.PeakRSSBytes {
			r.PeakRSSBytes = smp.RSSBytes
		}
		if smp.CPUTime > r.CPUTime {
			r.CPUTime = smp.CPUTime
		}
	}
	if n := len(r.Samples); n > 0 {
		r.GCCycles = r.Samples[n-1].GCCount - s.startGC
	}
	if ms.PauseTotalNs >= s.startGCP {
		r.GCPauseTotal = time.Duration(ms.PauseTotalNs - s.startGCP)
	}

	m.mu.Lock()
	m.last = r
	m.mu.Unlock()
	return r
}
