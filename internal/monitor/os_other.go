//go:build !linux

package monitor

import "time"

// osStats is one OS-level observation of this process.
type osStats struct {
	rssBytes uint64
	hwmBytes uint64
	cpu      time.Duration
}

// readOSStats is the portable fallback: no OS-level sampling. The
// monitor degrades to Go-runtime-only metrics (heap, goroutines, GC)
// and the report's RSS/CPU fields stay zero.
func readOSStats() (osStats, bool) { return osStats{}, false }
