package monitor

import (
	"testing"
	"time"
)

func TestMonitorCollectsSamples(t *testing.T) {
	m := New(time.Millisecond)
	m.Start()
	// Allocate something observable while sampling.
	buf := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		buf = append(buf, make([]byte, 1<<16))
		time.Sleep(200 * time.Microsecond)
	}
	_ = buf
	rep := m.Stop()
	if len(rep.Samples) < 3 {
		t.Fatalf("samples = %d, want several", len(rep.Samples))
	}
	if rep.PeakHeapBytes == 0 {
		t.Error("peak heap is zero")
	}
	if rep.PeakGoroutines == 0 {
		t.Error("peak goroutines is zero")
	}
	if rep.Duration <= 0 {
		t.Error("duration not recorded")
	}
	// Sample offsets must be non-decreasing.
	for i := 1; i < len(rep.Samples); i++ {
		if rep.Samples[i].At < rep.Samples[i-1].At {
			t.Fatal("sample offsets decreasing")
		}
	}
}

func TestStopWithoutStart(t *testing.T) {
	m := New(time.Millisecond)
	rep := m.Stop()
	if len(rep.Samples) != 0 {
		t.Error("unstarted monitor should return empty report")
	}
}

func TestDoubleStartIsSafe(t *testing.T) {
	m := New(time.Millisecond)
	m.Start()
	m.Start() // no-op
	time.Sleep(5 * time.Millisecond)
	rep := m.Stop()
	if len(rep.Samples) == 0 {
		t.Error("no samples after start")
	}
}

func TestRestartAfterStop(t *testing.T) {
	m := New(time.Millisecond)
	m.Start()
	time.Sleep(3 * time.Millisecond)
	first := m.Stop()
	m.Start()
	time.Sleep(3 * time.Millisecond)
	second := m.Stop()
	if len(first.Samples) == 0 || len(second.Samples) == 0 {
		t.Error("restart lost samples")
	}
}
