package monitor

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestStopIsIdempotent(t *testing.T) {
	m := New(time.Millisecond)
	m.Start()
	time.Sleep(5 * time.Millisecond)
	first := m.Stop()
	second := m.Stop()
	if len(first.Samples) == 0 {
		t.Fatal("no samples")
	}
	if len(second.Samples) != len(first.Samples) || second.Duration != first.Duration {
		t.Fatalf("second Stop differs: %d/%v vs %d/%v",
			len(second.Samples), second.Duration, len(first.Samples), first.Duration)
	}
}

func TestOSLevelSampling(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("OS probe is Linux-only; fallback degrades to runtime metrics")
	}
	os, ok := readOSStats()
	if !ok {
		t.Fatal("readOSStats failed on Linux")
	}
	if os.rssBytes == 0 {
		t.Error("VmRSS is zero")
	}
	if os.hwmBytes < os.rssBytes {
		t.Errorf("VmHWM %d < VmRSS %d", os.hwmBytes, os.rssBytes)
	}

	m := New(time.Millisecond)
	m.Start()
	// Burn CPU so utime moves past a 10ms tick.
	deadline := time.Now().Add(30 * time.Millisecond)
	x := rand.New(rand.NewSource(1))
	var sink float64
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			sink += x.Float64()
		}
	}
	_ = sink
	rep := m.Stop()
	if rep.PeakRSSBytes == 0 {
		t.Error("peak RSS not sampled")
	}
	res := rep.Resources()
	if res.RSSP50Bytes == 0 || res.RSSP50Bytes > res.PeakRSSBytes {
		t.Errorf("RSS p50 %d vs peak %d", res.RSSP50Bytes, res.PeakRSSBytes)
	}
	// CPU time moves in 10ms ticks; a 30ms burn may still read zero on
	// an overloaded machine, so only sanity-check when present.
	if rep.CPUTime > 0 && res.CPUMeanPercent <= 0 {
		t.Error("CPU time recorded but mean percent is zero")
	}
}

func TestResourcesPercentiles(t *testing.T) {
	rep := Report{Duration: time.Second, CPUTime: 2 * time.Second}
	for i := 1; i <= 100; i++ {
		rep.Samples = append(rep.Samples, Sample{
			HeapBytes: uint64(i) * 10,
			RSSBytes:  uint64(i) * 100,
		})
		if uint64(i)*100 > rep.PeakRSSBytes {
			rep.PeakRSSBytes = uint64(i) * 100
		}
	}
	res := rep.Resources()
	if res.HeapP50Bytes != 500 || res.HeapP95Bytes != 950 || res.HeapP99Bytes != 990 {
		t.Errorf("heap percentiles: p50=%d p95=%d p99=%d", res.HeapP50Bytes, res.HeapP95Bytes, res.HeapP99Bytes)
	}
	if res.RSSP50Bytes != 5000 || res.RSSP99Bytes != 9900 {
		t.Errorf("rss percentiles: p50=%d p99=%d", res.RSSP50Bytes, res.RSSP99Bytes)
	}
	if res.CPUMeanPercent != 200 {
		t.Errorf("cpu mean = %v, want 200", res.CPUMeanPercent)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := percentileU64(nil, 50); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	if got := percentileU64([]uint64{7}, 99); got != 7 {
		t.Errorf("single-sample p99 = %d", got)
	}
	if got := percentileU64([]uint64{1, 2}, 1); got != 1 {
		t.Errorf("p1 of two = %d", got)
	}
}

// TestConcurrentStartStop hammers Start/Stop from many goroutines; the
// race detector verifies no session state is shared unsafely and no
// late sampler writes into a newer session.
func TestConcurrentStartStop(t *testing.T) {
	m := New(100 * time.Microsecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if (i+j)%2 == 0 {
					m.Start()
				} else {
					m.Stop()
				}
				time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	m.Stop() // leave it stopped

	// The monitor must still work after the storm.
	m.Start()
	time.Sleep(3 * time.Millisecond)
	rep := m.Stop()
	if len(rep.Samples) == 0 {
		t.Fatal("monitor unusable after concurrent start/stop storm")
	}
}
