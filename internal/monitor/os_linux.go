//go:build linux

package monitor

import (
	"bytes"
	"os"
	"strconv"
	"time"
)

// userHZ is the kernel clock-tick rate /proc/self/stat counts CPU time
// in. USER_HZ has been fixed at 100 on every Linux ABI Go supports;
// reading it via sysconf would need cgo, which the repo avoids.
const userHZ = 100

// osStats is one OS-level observation of this process.
type osStats struct {
	rssBytes uint64        // current resident set size (VmRSS)
	hwmBytes uint64        // high-water resident set size (VmHWM)
	cpu      time.Duration // cumulative user+system CPU time
}

// readOSStats samples /proc/self/stat (CPU) and /proc/self/status
// (RSS). It reports ok=false if either file is unreadable — callers
// then fall back to runtime-only sampling.
func readOSStats() (osStats, bool) {
	var st osStats
	stat, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return st, false
	}
	// Fields after the comm field, which is parenthesised and may
	// contain spaces: cut at the last ')'. utime and stime are fields
	// 14 and 15 (1-based), i.e. indices 11 and 12 of the remainder.
	i := bytes.LastIndexByte(stat, ')')
	if i < 0 || i+2 > len(stat) {
		return st, false
	}
	fields := bytes.Fields(stat[i+2:])
	if len(fields) < 13 {
		return st, false
	}
	utime, err1 := strconv.ParseUint(string(fields[11]), 10, 64)
	stime, err2 := strconv.ParseUint(string(fields[12]), 10, 64)
	if err1 != nil || err2 != nil {
		return st, false
	}
	st.cpu = time.Duration(utime+stime) * (time.Second / userHZ)

	status, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return st, false
	}
	st.rssBytes = statusKB(status, "VmRSS:") * 1024
	st.hwmBytes = statusKB(status, "VmHWM:") * 1024
	return st, true
}

// statusKB extracts a "Key:   N kB" value from /proc/self/status.
func statusKB(status []byte, key string) uint64 {
	i := bytes.Index(status, []byte(key))
	if i < 0 {
		return 0
	}
	rest := status[i+len(key):]
	if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
		rest = rest[:nl]
	}
	fields := bytes.Fields(rest)
	if len(fields) == 0 {
		return 0
	}
	n, err := strconv.ParseUint(string(fields[0]), 10, 64)
	if err != nil {
		return 0
	}
	return n
}
