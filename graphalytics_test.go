// Integration tests of the public facade: the API surface a downstream
// user programs against.
package graphalytics_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"graphalytics"
)

func TestFacadeGenerators(t *testing.T) {
	sn, err := graphalytics.GenerateSocialNetwork(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sn.NumVertices() != 1000 || sn.Directed() {
		t.Errorf("social network: %v", sn)
	}

	rm, err := graphalytics.GenerateRMAT(10, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rm.NumVertices() != 1024 {
		t.Errorf("rmat: %v", rm)
	}

	sur, err := graphalytics.GenerateSurrogate("amazon", 256)
	if err != nil {
		t.Fatal(err)
	}
	if sur.Name() != "amazon" {
		t.Errorf("surrogate: %v", sur)
	}
	if _, err := graphalytics.GenerateSurrogate("nope", 0); err == nil {
		t.Error("unknown surrogate should fail")
	}
}

func TestFacadeDegreePlugins(t *testing.T) {
	z, err := graphalytics.NewZetaDegrees(1.7, 100)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphalytics.GenerateSocialNetworkConfig(graphalytics.DatagenConfig{
		Persons: 800, Seed: 3, Degrees: z, Name: "zeta-sn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "zeta-sn" {
		t.Errorf("name = %q", g.Name())
	}
	if _, err := graphalytics.NewGeometricDegrees(2, 0); err == nil {
		t.Error("invalid geometric parameter should fail")
	}
}

func TestFacadeLoadSaveRoundTrip(t *testing.T) {
	g, err := graphalytics.GenerateSocialNetwork(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(t.TempDir(), "g")
	if err := g.SaveFiles(prefix); err != nil {
		t.Fatal(err)
	}
	back, err := graphalytics.LoadGraph(prefix+".e", prefix+".v", false)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %v vs %v", back, g)
	}
	if _, err := graphalytics.LoadGraph(filepath.Join(t.TempDir(), "missing.e"), "", false); err == nil {
		t.Error("missing file should fail")
	}
	_ = os.Remove(prefix + ".e")
}

func TestFacadeMeasureAndRewire(t *testing.T) {
	g, err := graphalytics.GenerateSocialNetwork(600, 7)
	if err != nil {
		t.Fatal(err)
	}
	before := graphalytics.Measure(g)
	if before.Vertices != 600 {
		t.Fatalf("measure: %+v", before)
	}
	rewired, err := graphalytics.Rewire(g, graphalytics.RewireTarget{
		AvgCC: before.AvgCC + 0.1, MaxSwaps: 20000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := graphalytics.Measure(rewired)
	if after.AvgCC <= before.AvgCC {
		t.Errorf("rewire did not raise clustering: %.4f -> %.4f", before.AvgCC, after.AvgCC)
	}
	if after.Edges != before.Edges {
		t.Errorf("rewire changed edge count")
	}
}

func TestFacadeReferenceImplementations(t *testing.T) {
	g, err := graphalytics.GenerateSocialNetwork(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	depths := graphalytics.RunReferenceBFS(g, 0)
	if len(depths) != 400 || depths[0] != 0 {
		t.Errorf("BFS: len %d, d0 %d", len(depths), depths[0])
	}
	st := graphalytics.RunReferenceStats(g)
	if st.Vertices != 400 {
		t.Errorf("stats: %+v", st)
	}
	conn := graphalytics.RunReferenceConn(g)
	if len(conn) != 400 {
		t.Errorf("conn: %d", len(conn))
	}
	params := graphalytics.Params{Seed: 4}
	cd := graphalytics.RunReferenceCD(g, params)
	if q := graphalytics.Modularity(g, cd); q < -1 || q > 1 {
		t.Errorf("modularity %v", q)
	}
	evo := graphalytics.RunReferenceEvo(g, params)
	if evo.NewVertices < 1 {
		t.Errorf("evo: %+v", evo)
	}
}

func TestFacadeEndToEndBenchmark(t *testing.T) {
	g, err := graphalytics.GenerateSocialNetwork(400, 11)
	if err != nil {
		t.Fatal(err)
	}
	g.SetName("facade")
	bench := &graphalytics.Benchmark{
		Platforms:  []graphalytics.Platform{graphalytics.NewPregel(graphalytics.PregelOptions{})},
		Graphs:     []*graphalytics.Graph{g},
		Algorithms: []graphalytics.Algorithm{graphalytics.BFS, graphalytics.STATS},
		Params:     graphalytics.Params{Source: 0, Seed: 13},
		Timeout:    time.Minute,
		Validate:   true,
	}
	rep, err := bench.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results: %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !r.Validation.Valid {
			t.Errorf("%s invalid: %s", r.Algorithm, r.Validation.Detail)
		}
	}
	table := graphalytics.Figure4Table(rep.Results)
	if table == "" {
		t.Error("empty Figure 4 table")
	}
	if graphalytics.Figure5Table(rep.Results) == "" {
		t.Error("empty Figure 5 table")
	}
}

// Cross-platform determinism at the facade level: the same algorithm on
// two different platforms yields identical outputs (the paper's fair
// comparison requirement).
func TestFacadeCrossPlatformEquality(t *testing.T) {
	g, err := graphalytics.GenerateSocialNetwork(500, 15)
	if err != nil {
		t.Fatal(err)
	}
	params := graphalytics.Params{Source: 3, Seed: 17}
	run := func(p graphalytics.Platform) any {
		loaded, err := p.LoadGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		res, err := loaded.Run(context.Background(), graphalytics.CD, params)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	a := run(graphalytics.NewPregel(graphalytics.PregelOptions{}))
	b := run(graphalytics.NewGraphDB(graphalytics.GraphDBOptions{}))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("pregel and graphdb CD outputs differ")
	}
}

func TestFacadeStatsAgreesWithMeasure(t *testing.T) {
	// Two independent code paths to the mean LCC: the STATS workload
	// spec and the Table 1 metrics on an undirected graph must agree.
	g, err := graphalytics.GenerateSocialNetwork(300, 19)
	if err != nil {
		t.Fatal(err)
	}
	st := graphalytics.RunReferenceStats(g)
	m := graphalytics.Measure(g)
	if math.Abs(st.MeanLCC-m.AvgCC) > 1e-9 {
		t.Errorf("STATS MeanLCC %.9f != gmetrics AvgCC %.9f", st.MeanLCC, m.AvgCC)
	}
}
