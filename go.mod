module graphalytics

go 1.24
