// Platform comparison: a miniature Figure 4/5 — run the whole workload
// matrix (all five algorithms on all four platforms) on one graph,
// validate every output, and print the runtime and CONN-kTEPS tables.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphalytics"
)

func main() {
	g, err := graphalytics.GenerateSocialNetwork(8000, 3)
	if err != nil {
		log.Fatal(err)
	}
	g.SetName("social-8k")
	fmt.Println("benchmarking", g)

	bench := &graphalytics.Benchmark{
		Platforms: graphalytics.AllPlatforms(),
		Graphs:    []*graphalytics.Graph{g},
		Params:    graphalytics.Params{Source: 0, Seed: 11},
		Timeout:   2 * time.Minute,
		Validate:  true,
		Progress: func(r graphalytics.RunResult) {
			fmt.Printf("  %-10s %-6s %-8s %s\n", r.Platform, r.Algorithm, r.Status, r.Cell())
		},
	}
	rep, err := bench.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(graphalytics.Figure4Table(rep.Results))
	fmt.Print(graphalytics.Figure5Table(rep.Results))
	fmt.Println()
	fmt.Println(rep.Summary())
}
