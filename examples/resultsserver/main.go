// Results database walkthrough: run a small benchmark, submit the
// report to an in-process results service over HTTP (Figure 2's public
// "database for Results"), and query the cross-submission leaderboard.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"graphalytics"
	"graphalytics/internal/resultsdb"
)

func main() {
	// 1. Produce a report worth submitting.
	g, err := graphalytics.GenerateSocialNetwork(2000, 31)
	if err != nil {
		log.Fatal(err)
	}
	g.SetName("snb-demo")
	bench := &graphalytics.Benchmark{
		Platforms: []graphalytics.Platform{
			graphalytics.NewPregel(graphalytics.PregelOptions{}),
			graphalytics.NewGraphDB(graphalytics.GraphDBOptions{}),
		},
		Graphs:     []*graphalytics.Graph{g},
		Algorithms: []graphalytics.Algorithm{graphalytics.BFS, graphalytics.CONN},
		Validate:   true,
	}
	rep, err := bench.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark:", rep.Summary())

	// 2. Host the results service (in-process for the example; the same
	//    handler serves a real listener in production).
	store := resultsdb.NewStore()
	server := httptest.NewServer(store.Handler())
	defer server.Close()

	// 3. Submit over HTTP.
	body, _ := json.Marshal(resultsdb.Submission{
		Submitter:   "examples/resultsserver",
		Environment: "laptop, in-process engines",
		Report:      rep,
	})
	resp, err := http.Post(server.URL+"/api/v1/submissions", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var created map[string]int64
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	fmt.Printf("submitted as id %d\n", created["id"])

	// 4. Query the leaderboard for CONN on our graph.
	resp, err = http.Get(server.URL + "/api/v1/compare?graph=snb-demo&algorithm=CONN")
	if err != nil {
		log.Fatal(err)
	}
	var cmp resultsdb.Comparison
	json.NewDecoder(resp.Body).Decode(&cmp)
	resp.Body.Close()

	fmt.Println("leaderboard (CONN on snb-demo):")
	for platform, best := range cmp.Best {
		fmt.Printf("  %-10s %8.1f ms  (%0.f kTEPS, submission %d by %s)\n",
			platform, best.RuntimeMS, best.KTEPS, best.SubmissionID, best.Submitter)
	}
}
