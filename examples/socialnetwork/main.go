// Social-network analysis: generate an SNB-style graph with a heavy-
// tailed degree distribution, detect communities with the CD workload
// (Leung label propagation), and report community structure and
// modularity — the kind of real-world analysis the paper's workloads
// are drawn from.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"graphalytics"
)

func main() {
	// A Zeta-degree social network (the Figure 1 configuration).
	zeta, err := graphalytics.NewZetaDegrees(1.7, 200)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graphalytics.GenerateSocialNetworkConfig(graphalytics.DatagenConfig{
		Persons: 20000,
		Seed:    7,
		Degrees: zeta,
		Name:    "snb-zeta",
	})
	if err != nil {
		log.Fatal(err)
	}
	c := graphalytics.Measure(g)
	fmt.Printf("generated %s\n", g)
	fmt.Printf("  global CC %.4f, avg CC %.4f, assortativity %.4f\n",
		c.GlobalCC, c.AvgCC, c.Assortativity)

	// Detect communities on the BSP platform.
	platform := graphalytics.NewPregel(graphalytics.PregelOptions{})
	loaded, err := platform.LoadGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Run(context.Background(), graphalytics.CD, graphalytics.Params{})
	if err != nil {
		log.Fatal(err)
	}
	labels := res.Output.(graphalytics.CDOutput)

	// Community structure summary.
	sizes := map[int64]int{}
	for _, l := range labels {
		sizes[l]++
	}
	type comm struct {
		label int64
		size  int
	}
	var communities []comm
	for l, s := range sizes {
		communities = append(communities, comm{l, s})
	}
	sort.Slice(communities, func(i, j int) bool { return communities[i].size > communities[j].size })

	fmt.Printf("communities: %d (modularity %.4f)\n",
		len(communities), graphalytics.Modularity(g, labels))
	fmt.Println("largest communities:")
	for i, cm := range communities {
		if i >= 10 {
			break
		}
		fmt.Printf("  #%2d: %5d members (label %d)\n", i+1, cm.size, cm.label)
	}
	fmt.Printf("engine: %d supersteps, %d votes exchanged\n",
		res.Counters.Supersteps, res.Counters.Messages)
}
