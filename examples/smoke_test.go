// Smoke test: every example program must build and run to completion.
// Each example is a full benchmark in miniature, so the sweep costs
// real time — it runs only when GRAPHALYTICS_EXAMPLES_SMOKE=1 (CI sets
// it; `go test ./...` stays fast).
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if os.Getenv("GRAPHALYTICS_EXAMPLES_SMOKE") != "1" {
		t.Skip("set GRAPHALYTICS_EXAMPLES_SMOKE=1 to run the examples smoke sweep")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		if _, err := os.Stat(filepath.Join(dir, "main.go")); err != nil {
			continue
		}
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			cmd := exec.Command("go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed after %s: %v\n%s", dir, time.Since(start).Round(time.Millisecond), err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
}
