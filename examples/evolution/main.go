// Graph evolution: run the EVO workload (forest-fire model, Leskovec et
// al.) to predict how a social network grows, then compare structural
// characteristics before and after — densification is the signature the
// forest-fire model was designed to reproduce.
package main

import (
	"context"
	"fmt"
	"log"

	"graphalytics"
	"graphalytics/internal/algo"
)

func main() {
	g, err := graphalytics.GenerateSocialNetwork(6000, 13)
	if err != nil {
		log.Fatal(err)
	}
	before := graphalytics.Measure(g)
	fmt.Printf("before: %d vertices, %d edges, avg degree %.2f, avg CC %.4f\n",
		before.Vertices, before.Edges,
		2*float64(before.Edges)/float64(before.Vertices), before.AvgCC)

	// Predict growth by 10% new vertices on the graph database platform.
	platform := graphalytics.NewGraphDB(graphalytics.GraphDBOptions{})
	loaded, err := platform.LoadGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()

	params := graphalytics.Params{EvoNewVertices: 600, Seed: 99}
	res, err := loaded.Run(context.Background(), graphalytics.EVO, params)
	if err != nil {
		log.Fatal(err)
	}
	evo := res.Output.(algo.EvoOutput)
	fmt.Printf("forest fire: %d new vertices created %d edges (%.2f per newcomer)\n",
		evo.NewVertices, len(evo.Edges), float64(len(evo.Edges))/float64(evo.NewVertices))

	// Apply the evolution and re-measure.
	grown := algo.ApplyEvo(g, evo)
	after := graphalytics.Measure(grown)
	fmt.Printf("after:  %d vertices, %d edges, avg degree %.2f, avg CC %.4f\n",
		after.Vertices, after.Edges,
		2*float64(after.Edges)/float64(after.Vertices), after.AvgCC)

	if d0, d1 := 2*float64(before.Edges)/float64(before.Vertices), 2*float64(after.Edges)/float64(after.Vertices); d1 > d0 {
		fmt.Printf("densification: average degree grew %.2f -> %.2f, as the forest-fire model predicts\n", d0, d1)
	}
}
