// Quickstart: generate a small social network, run BFS on the BSP
// (Giraph-analogue) platform through the public API, validate the
// result against the reference implementation, and print a summary.
package main

import (
	"context"
	"fmt"
	"log"

	"graphalytics"
)

func main() {
	// 1. A dataset: 5000-person social network from the Datagen
	//    reimplementation (deterministic for a fixed seed).
	g, err := graphalytics.GenerateSocialNetwork(5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// 2. A platform: the Pregel/BSP engine.
	platform := graphalytics.NewPregel(graphalytics.PregelOptions{})
	loaded, err := platform.LoadGraph(g) // ETL — untimed by the harness
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()

	// 3. Run BFS from vertex 0.
	res, err := loaded.Run(context.Background(), graphalytics.BFS, graphalytics.Params{Source: 0})
	if err != nil {
		log.Fatal(err)
	}
	depths := res.Output.(graphalytics.BFSOutput)

	// 4. Validate against the sequential reference.
	want := graphalytics.RunReferenceBFS(g, 0)
	mismatches := 0
	reached := 0
	maxDepth := int64(0)
	for v := range depths {
		if depths[v] != want[v] {
			mismatches++
		}
		if depths[v] >= 0 {
			reached++
			if depths[v] > maxDepth {
				maxDepth = depths[v]
			}
		}
	}
	fmt.Printf("BFS from vertex 0: reached %d/%d vertices, eccentricity %d\n",
		reached, g.NumVertices(), maxDepth)
	fmt.Printf("validation: %d mismatches vs reference\n", mismatches)
	fmt.Printf("engine: %d supersteps, %d messages, %.1f MB shuffled\n",
		res.Counters.Supersteps, res.Counters.Messages,
		float64(res.Counters.MessageBytes)/1e6)
}
