// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§2.2, §3), plus choke-point ablations (§2.1).
// Running
//
//	go test -bench=. -benchmem
//
// regenerates every experiment at laptop scale and prints tables in the
// same shape the paper reports. EXPERIMENTS.md records paper-vs-measured
// for each one. Scale knobs:
//
//	GRAPHALYTICS_SCALE_DIV   surrogate downscale divisor (default 64)
//	GRAPHALYTICS_RMAT_SCALE  Graph500 workload scale (default 14)
package graphalytics_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"graphalytics"
	"graphalytics/internal/algo"
	"graphalytics/internal/artifact"
	"graphalytics/internal/codequality"
	"graphalytics/internal/columnstore"
	"graphalytics/internal/core"
	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/gen/dist"
	"graphalytics/internal/gen/surrogate"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph/gmetrics"
	"graphalytics/internal/platform"
	"graphalytics/internal/platform/dataflow"
	"graphalytics/internal/platform/graphdb"
	"graphalytics/internal/platform/mapreduce"
	"graphalytics/internal/platform/pregel"
	"graphalytics/internal/report"
	"graphalytics/internal/stamp"
	"graphalytics/internal/stats"
	"graphalytics/internal/workload"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// ---------------------------------------------------------------------
// Table 1: Characteristics of real graphs.

func BenchmarkTable1Characteristics(b *testing.B) {
	div := envInt("GRAPHALYTICS_SCALE_DIV", 64)
	for i := 0; i < b.N; i++ {
		rows := make([]gmetrics.Characteristics, 0, len(surrogate.Table1))
		for _, spec := range surrogate.Table1 {
			g, err := surrogate.Generate(spec, surrogate.Options{ScaleDiv: div, Rewire: true, MaxSwaps: 200000})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, gmetrics.Measure(g))
		}
		if i == 0 {
			fmt.Printf("\n--- Table 1: characteristics of surrogate graphs (1/%d scale; paper values in parens) ---\n", div)
			fmt.Printf("%-12s %10s %12s %16s %16s %18s\n", "Dataset", "Nodes", "Edges", "Gl. CC", "Avg. CC", "Asrt.")
			for j, c := range rows {
				spec := surrogate.Table1[j]
				fmt.Printf("%-12s %10d %12d %7.4f (%.4f) %7.4f (%.4f) %8.4f (%+.4f)\n",
					c.Name, c.Vertices, c.Edges, c.GlobalCC, spec.GlobalCC, c.AvgCC, spec.AvgCC, c.Assortativity, spec.Asrt)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Figure 1: Datagen degree distributions vs Zeta/Geometric models.

func BenchmarkFigure1DegreeDistributions(b *testing.B) {
	type cfg struct {
		name  string
		model stats.Model
		plug  func() (dist.Distribution, error)
	}
	cfgs := []cfg{
		{"zeta(1.7)", stats.NewZeta(1.7), func() (dist.Distribution, error) { return dist.NewZeta(1.7, 200) }},
		{"geometric(0.12)", stats.NewGeometric(0.12), func() (dist.Distribution, error) { return dist.NewGeometric(0.12, 200) }},
	}
	for i := 0; i < b.N; i++ {
		for _, c := range cfgs {
			plug, err := c.plug()
			if err != nil {
				b.Fatal(err)
			}
			g, err := datagen.Generate(datagen.Config{Persons: 30000, Seed: 5, Degrees: plug})
			if err != nil {
				b.Fatal(err)
			}
			degs := gmetrics.Degrees(g)
			sample, err := stats.NewSample(degs)
			if err != nil {
				b.Fatal(err)
			}
			ks := sample.KSDistance(c.model)
			if i == 0 {
				fmt.Printf("\n--- Figure 1: Datagen degree distribution vs %s model (30k persons) ---\n", c.name)
				fmt.Printf("%8s %12s %12s\n", "degree", "observed", "model")
				hist := gmetrics.DegreeHistogram(g)
				n := float64(g.NumVertices())
				for _, d := range []int{1, 2, 5, 10, 20, 50, 100} {
					fmt.Printf("%8d %12d %12.0f\n", d, hist[d], c.model.PMF(d)*n)
				}
				fmt.Printf("KS distance observed-vs-model: %.4f (paper: visually overlapping curves)\n", ks)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Figure 3: Datagen scalability, single machine vs cluster.

func BenchmarkFigure3DatagenScalability(b *testing.B) {
	single := datagen.ClusterSim{Nodes: 1, CoresPerNode: 2, DiskMBps: 4}
	cluster := datagen.ClusterSim{Nodes: 4, CoresPerNode: 2, DiskMBps: 4, StartupOverhead: 500 * time.Millisecond}
	sizes := []int{4000, 8000, 16000, 32000, 64000}
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- Figure 3: Datagen scalability (disk 4 MB/s per node; cluster pays 500ms startup) ---\n")
			fmt.Printf("%10s %12s %14s %14s %10s\n", "persons", "edges", "single", "cluster(4)", "winner")
		}
		for _, n := range sizes {
			cfg := datagen.Config{Persons: n, Seed: 9}
			rs, err := single.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rc, err := cluster.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				winner := "single"
				if rc.Elapsed < rs.Elapsed {
					winner = "cluster"
				}
				fmt.Printf("%10d %12d %14s %14s %10s\n", n, rs.Edges,
					rs.Elapsed.Round(time.Millisecond), rc.Elapsed.Round(time.Millisecond), winner)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Figure 4 + Figure 5: the platform × graph × algorithm matrix.

var figure4Once struct {
	sync.Once
	graphs  []*graph.Graph
	budget  int64 // dataflow memory budget (calibrated)
	dbLimit int64 // graphdb memory budget
}

// figure4Graphs builds the three scaled workload graphs and calibrates
// platform memory budgets the way a cluster's fixed per-node RAM does:
// the dataflow budget is sized to fit the two smaller graphs' most
// expensive runs with 30% headroom, so the largest graph's heavier
// workloads exceed it — the GraphX missing-value pattern of Figure 4.
func figure4Setup(b *testing.B) ([]*graph.Graph, int64, int64) {
	figure4Once.Do(func() {
		scale := envInt("GRAPHALYTICS_RMAT_SCALE", 14)
		g500, err := graphalytics.GenerateRMAT(scale, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		patents, err := surrogate.Generate(mustSpec(b, "patents"), surrogate.Options{ScaleDiv: 256})
		if err != nil {
			b.Fatal(err)
		}
		snb, err := datagen.Generate(datagen.Config{Persons: 5000, Seed: 2, Name: "snb-1000"})
		if err != nil {
			b.Fatal(err)
		}
		graphs := []*graph.Graph{g500, patents, snb}

		// Calibrate the dataflow budget on the two smaller graphs.
		var maxPeak int64
		for _, g := range graphs[1:] {
			for _, a := range algo.Kinds {
				p := dataflow.New(dataflow.Options{})
				loaded, err := p.LoadGraph(g)
				if err != nil {
					b.Fatal(err)
				}
				res, err := loaded.Run(context.Background(), a, algo.Params{Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				if res.Counters.PeakMemoryBytes > maxPeak {
					maxPeak = res.Counters.PeakMemoryBytes
				}
				loaded.Close()
			}
		}
		figure4Once.budget = maxPeak + maxPeak/3

		// The graph database budget sits between the largest store and
		// the second largest, so only the largest graph fails to load.
		storeBytes := func(g *graph.Graph) int64 { return 4*int64(g.NumVertices()) + 16*g.NumEdges() }
		largest, second := int64(0), int64(0)
		for _, g := range graphs {
			sb := storeBytes(g)
			if sb > largest {
				largest, second = sb, largest
			} else if sb > second {
				second = sb
			}
		}
		figure4Once.dbLimit = (largest + second) / 2
		figure4Once.graphs = graphs
	})
	return figure4Once.graphs, figure4Once.budget, figure4Once.dbLimit
}

func mustSpec(b *testing.B, name string) surrogate.Spec {
	spec, err := surrogate.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

func figure4Platforms(budget, dbLimit int64) []platform.Platform {
	return []platform.Platform{
		pregel.New(pregel.Options{}),
		mapreduce.New(mapreduce.Options{}),
		dataflow.New(dataflow.Options{MemoryBudget: budget}),
		graphdb.New(graphdb.Options{MemoryBudget: dbLimit}),
	}
}

func BenchmarkFigure4Runtimes(b *testing.B) {
	graphs, budget, dbLimit := figure4Setup(b)
	for i := 0; i < b.N; i++ {
		bench := &core.Benchmark{
			Platforms: figure4Platforms(budget, dbLimit),
			Graphs:    graphs,
			Params:    algo.Params{Source: 0, Seed: 42},
			Timeout:   5 * time.Minute,
			Validate:  false, // validation is covered by tests; keep timing clean
			// One cell at a time: concurrent cells would contend and
			// distort the per-cell runtimes this figure reports.
			Parallelism: 1,
		}
		rep, err := bench.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n--- Figure 4: runtimes, all algorithms × platforms × graphs (missing values = failures) ---\n")
			fmt.Print(report.Figure4Table(rep.Results))
		}
	}
}

func BenchmarkFigure5ConnTEPS(b *testing.B) {
	graphs, budget, dbLimit := figure4Setup(b)
	for i := 0; i < b.N; i++ {
		bench := &core.Benchmark{
			Platforms:  figure4Platforms(budget, dbLimit),
			Graphs:     graphs,
			Algorithms: []algo.Kind{algo.CONN},
			Params:     algo.Params{Seed: 42},
			Timeout:    5 * time.Minute,
			// One cell at a time, as in BenchmarkFigure4Runtimes.
			Parallelism: 1,
		}
		rep, err := bench.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n--- Figure 5: CONN kTEPS (missing values = failures) ---\n")
			fmt.Print(report.Figure5Table(rep.Results))
		}
	}
}

// ---------------------------------------------------------------------
// §3.4: BFS on a DBMS (column store, transitive query).

func BenchmarkSection34ColumnStoreBFS(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 20000, Seed: 2, Name: "snb"})
	if err != nil {
		b.Fatal(err)
	}
	table := columnstore.NewTable(g)
	source := graph.VertexID(420)
	b.ResetTimer()
	var pr columnstore.Profile
	for i := 0; i < b.N; i++ {
		pr = table.TransitiveCount(source, 0)
	}
	b.StopTimer()
	b.ReportMetric(pr.MTEPS, "MTEPS")
	fmt.Printf("\n--- §3.4: BFS on a DBMS (transitive query from vertex %d on %s) ---\n", source, g)
	fmt.Println(table.SQL(source))
	fmt.Printf("reachable vertices:        %d\n", pr.Reachable)
	fmt.Printf("random lookups:            %.2fM   (paper: 2.28M)\n", float64(pr.RandomLookups)/1e6)
	fmt.Printf("edge endpoints visited:    %.2fM   (paper: 289M)\n", float64(pr.EdgeEndpointsVisited)/1e6)
	fmt.Printf("elapsed:                   %s      (paper: 7 s on 24 threads)\n", pr.Elapsed.Round(time.Microsecond))
	fmt.Printf("MTEPS:                     %.1f    (paper: 41.3)\n", pr.MTEPS)
	fmt.Printf("CPU utilization:           %.0f%%  of %d00%% (paper: 1930%% of 2400%%)\n", pr.CPUUtilization, pr.Threads)
	fmt.Printf("cycles: hash table %.0f%%, exchange %.0f%%, column access %.0f%% (paper: 33%% / 10%% / 57%%)\n",
		100*pr.HashTableShare, 100*pr.ExchangeShare, 100*pr.ColumnShare)
}

// ---------------------------------------------------------------------
// §3.5: code quality of the reference implementations.

func BenchmarkSection35CodeQuality(b *testing.B) {
	var rep *codequality.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = codequality.AnalyzeDir(".")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	issues := rep.AllIssues()
	fmt.Printf("\n--- §3.5: code-quality report over this repository ---\n")
	fmt.Print(rep.Render())
	fmt.Printf("static-analysis findings: %d\n", len(issues))
	for _, f := range rep.WorstFunctions(3) {
		fmt.Printf("most complex: %s (cplx %d, %s:%d)\n", f.Name, f.Complexity, f.File, f.Line)
	}
}

// ---------------------------------------------------------------------
// §2.2: degree-distribution model selection per graph.

func BenchmarkDegreeModelSelection(b *testing.B) {
	div := envInt("GRAPHALYTICS_SCALE_DIV", 64)
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- §2.2: best-fitting degree model per dataset (paper: 'the best fitting model changed') ---\n")
			fmt.Printf("%-12s %-10s %-22s %8s\n", "dataset", "best", "params", "KS")
		}
		for _, spec := range surrogate.Table1 {
			g, err := surrogate.Generate(spec, surrogate.Options{ScaleDiv: div})
			if err != nil {
				b.Fatal(err)
			}
			sample, err := stats.NewSample(gmetrics.Degrees(g))
			if err != nil {
				b.Fatal(err)
			}
			best := sample.BestFit()
			if i == 0 {
				fmt.Printf("%-12s %-10s %-22s %8.4f\n", spec.Name, best.Model.Name(), best.Model.Params(), best.KS)
			}
		}
	}
}

// ---------------------------------------------------------------------
// ETL times — §3.3's declared future work ("Comparing ETL times of
// different platforms is left as future work"), implemented: LoadGraph
// is timed separately from every algorithm run.

func BenchmarkETLTimes(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 20000, Seed: 12, Name: "etl"})
	if err != nil {
		b.Fatal(err)
	}
	plats := []platform.Platform{
		pregel.New(pregel.Options{}),
		mapreduce.New(mapreduce.Options{}),
		dataflow.New(dataflow.Options{}),
		graphdb.New(graphdb.Options{}),
	}
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- ETL times (§3.3 future work): graph import per platform, %s ---\n", g)
		}
		for _, p := range plats {
			start := time.Now()
			loaded, err := p.LoadGraph(g)
			etl := time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			loaded.Close()
			if i == 0 {
				fmt.Printf("%12s %12s\n", p.Name(), etl.Round(10*time.Microsecond))
			}
		}
	}
}

// ---------------------------------------------------------------------
// Choke-point ablations (§2.1).

// BenchmarkAblationCombiner: message combining against the "excessive
// network utilization" choke point.
func BenchmarkAblationCombiner(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 10000, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "combiner-on"
		if disable {
			name = "combiner-off"
		}
		b.Run(name, func(b *testing.B) {
			p := pregel.New(pregel.Options{DisableCombiners: disable})
			loaded, err := p.LoadGraph(g)
			if err != nil {
				b.Fatal(err)
			}
			defer loaded.Close()
			var msgs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Counters.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// BenchmarkAblationPartitioning: partitioning strategy vs network bytes.
func BenchmarkAblationPartitioning(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 10000, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	ordered := graph.Remap(g, graph.BFSOrder(g, 0))
	parts := 8
	partitioners := map[string]graph.Partitioner{
		"hash":   graph.NewHashPartitioner(parts),
		"range":  graph.NewRangePartitioner(parts, ordered.NumVertices()),
		"greedy": graph.NewGreedyPartitioner(ordered, parts),
	}
	for _, name := range []string{"hash", "range", "greedy"} {
		part := partitioners[name]
		b.Run(name, func(b *testing.B) {
			p := pregel.New(pregel.Options{Workers: parts, Partitioner: part})
			loaded, err := p.LoadGraph(ordered)
			if err != nil {
				b.Fatal(err)
			}
			defer loaded.Close()
			var netBytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
				if err != nil {
					b.Fatal(err)
				}
				netBytes = res.Counters.NetworkBytes
			}
			b.ReportMetric(float64(netBytes), "net-bytes")
			b.ReportMetric(graph.CutFraction(ordered, part)*100, "cut-%")
		})
	}
}

// BenchmarkAblationColumnCompression: the "large graph memory footprint"
// choke point — compressed vs raw spe_to column, space and speed.
func BenchmarkAblationColumnCompression(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 20000, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, compress := range []bool{true, false} {
		name := "compressed"
		if !compress {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			table := columnstore.NewTableOpts(g, columnstore.Options{Compress: compress})
			b.ReportMetric(float64(table.ColumnBytes()), "column-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				table.TransitiveCount(0, 0)
			}
		})
	}
}

// BenchmarkAblationVertexOrdering: the "poor access locality" choke
// point — graphdb page-cache hit rate under different vertex orders.
func BenchmarkAblationVertexOrdering(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 20000, Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	orders := map[string]*graph.Graph{
		"random": graph.Remap(g, graph.RandomOrder(g, 3)),
		"bfs":    graph.Remap(g, graph.BFSOrder(g, 0)),
		"degree": graph.Remap(g, graph.DegreeOrder(g)),
	}
	for _, name := range []string{"random", "bfs", "degree"} {
		gg := orders[name]
		b.Run(name, func(b *testing.B) {
			p := graphdb.New(graphdb.Options{PageCachePages: 16})
			loaded, err := p.LoadGraph(gg)
			if err != nil {
				b.Fatal(err)
			}
			defer loaded.Close()
			var hitRate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := loaded.Run(context.Background(), algo.BFS, algo.Params{Source: 0})
				if err != nil {
					b.Fatal(err)
				}
				total := res.Counters.CacheHits + res.Counters.CacheMisses
				hitRate = float64(res.Counters.CacheHits) / float64(total)
			}
			b.ReportMetric(hitRate*100, "cache-hit-%")
		})
	}
}

// BenchmarkAblationSkew: the "skewed execution intensity" choke point.
// Hash partitioning balances vertex counts but not edge counts: on a
// heavy-tailed (R-MAT) graph some workers own far more edge work than
// others, while a geometric-degree graph balances naturally. The bench
// reports the per-worker edge-load imbalance (max/mean) plus the
// active-vertex decay tail that the paper calls out ("iterative
// algorithms often have a varying workload in the diverse iterations").
func BenchmarkAblationSkew(b *testing.B) {
	skewed, err := graphalytics.GenerateRMAT(13, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	uniform, err := datagen.Generate(datagen.Config{Persons: skewed.NumVertices(), Seed: 7, Name: "uniform",
		Degrees: mustGeometric(b)})
	if err != nil {
		b.Fatal(err)
	}
	const workers = 8
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"rmat-skewed", skewed}, {"uniform", uniform}} {
		b.Run(tc.name, func(b *testing.B) {
			part := graph.NewHashPartitioner(workers)
			loads := make([]int64, workers)
			for v := 0; v < tc.g.NumVertices(); v++ {
				loads[part.Assign(graph.VertexID(v))] += int64(tc.g.OutDegree(graph.VertexID(v)))
			}
			var max, total int64
			for _, l := range loads {
				total += l
				if l > max {
					max = l
				}
			}
			imbalance := float64(max) * float64(workers) / float64(total)

			p := pregel.New(pregel.Options{Workers: workers, Partitioner: part})
			loaded, err := p.LoadGraph(tc.g)
			if err != nil {
				b.Fatal(err)
			}
			defer loaded.Close()
			var tailSteps int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := loaded.Run(context.Background(), algo.CONN, algo.Params{})
				if err != nil {
					b.Fatal(err)
				}
				// Count trailing supersteps with <10% of peak activity —
				// the "many final iterations with little work" tail.
				var peak int64
				for _, a := range res.Counters.ActivePerStep {
					if a > peak {
						peak = a
					}
				}
				tailSteps = 0
				for _, a := range res.Counters.ActivePerStep {
					if a > 0 && a < peak/10 {
						tailSteps++
					}
				}
			}
			b.ReportMetric(imbalance, "edge-imbalance")
			b.ReportMetric(float64(tailSteps), "low-work-steps")
		})
	}
}

func mustGeometric(b *testing.B) dist.Distribution {
	d, err := dist.NewGeometric(0.05, 200) // mean 20, light tail
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// ---------------------------------------------------------------------
// Campaign scheduler: parallel matrix execution vs the sequential
// nested loop, and the repeated-run methodology.

func BenchmarkCampaignSchedulerSpeedup(b *testing.B) {
	graphs := make([]*graph.Graph, 0, 3)
	for i, persons := range []int{2000, 1500, 1000} {
		g, err := datagen.Generate(datagen.Config{Persons: persons, Seed: uint64(10 + i), Name: fmt.Sprintf("sched-%d", persons)})
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	platforms := func() []platform.Platform {
		return []platform.Platform{
			pregel.New(pregel.Options{}),
			mapreduce.New(mapreduce.Options{RoundOverhead: -1}),
			dataflow.New(dataflow.Options{}),
		}
	}
	campaign := func(parallelism int) time.Duration {
		bench := &core.Benchmark{
			Platforms:   platforms(),
			Graphs:      graphs,
			Params:      algo.Params{Seed: 42},
			Parallelism: parallelism,
			Timeout:     5 * time.Minute,
		}
		start := time.Now()
		if _, err := bench.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		seq := campaign(1)
		par := campaign(runtime.NumCPU())
		if i == 0 {
			fmt.Printf("\n--- Campaign scheduler: 3 platforms × 3 graphs × %d algorithms ---\n", len(workload.Kinds()))
			fmt.Printf("sequential (parallel=1):  %v\n", seq.Round(time.Millisecond))
			fmt.Printf("parallel   (parallel=%d): %v\n", runtime.NumCPU(), par.Round(time.Millisecond))
			fmt.Printf("speedup: %.2fx\n", float64(seq)/float64(par))
		}
		b.ReportMetric(float64(seq)/float64(par), "speedup")
	}
}

func BenchmarkCampaignRepetitions(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 2000, Seed: 21, Name: "reps"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		bench := &core.Benchmark{
			Platforms:  []platform.Platform{pregel.New(pregel.Options{})},
			Graphs:     []*graph.Graph{g},
			Algorithms: []algo.Kind{algo.BFS, algo.CONN},
			Params:     algo.Params{Seed: 42},
			Warmup:     1,
			Reps:       5,
		}
		rep, err := bench.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n--- Repeated-run methodology: 1 warm-up + 5 timed repetitions ---\n")
			fmt.Printf("%-6s %12s %12s %12s %12s %12s %12s\n", "algo", "first", "min", "mean", "max", "stddev", "warm-mean")
			for _, r := range rep.Results {
				s := r.Reps
				fmt.Printf("%-6s %12v %12v %12v %12v %12v %12v\n", r.Algorithm,
					s.First.Round(time.Microsecond), s.Min.Round(time.Microsecond),
					s.Mean.Round(time.Microsecond), s.Max.Round(time.Microsecond),
					s.Stddev.Round(time.Microsecond), s.WarmMean.Round(time.Microsecond))
			}
		}
	}
}

// ---------------------------------------------------------------------
// LDBC workload hot loops: the reference PageRank scatter and the
// Dijkstra relaxation loop, the kernels every platform implementation
// is measured against. Tracked so the perf trajectory of the weighted
// graph core (weight-array reads on every relaxation) has data points.

func ldbcBenchGraph(b *testing.B, weighted bool) *graph.Graph {
	b.Helper()
	g, err := datagen.Generate(datagen.Config{
		Persons: 20000, Seed: 11, Name: "ldbc-bench", Weighted: weighted,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkPageRankHotLoop(b *testing.B) {
	g := ldbcBenchGraph(b, false)
	params := algo.Params{}.WithDefaults(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranks := algo.RunPageRank(g, params)
		if len(ranks) != g.NumVertices() {
			b.Fatal("bad output")
		}
	}
	edgesPerOp := float64(g.NumArcs()) * float64(params.PRIterations)
	b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
}

// ---------------------------------------------------------------------
// Ingest hot loops: the parallel load pipeline (chunked parsing,
// concurrent interning, parallel CSR construction) vs the sequential
// loader. The paper calls data ingestion a choke point (§2.1) and LDBC
// Graphalytics reports loading as its own EVPS metric; these benches
// put the ingest speedup on the perf trajectory. workers=1 is the
// retained sequential path; both produce byte-identical graphs.

var ingestBenchOnce struct {
	sync.Once
	dir   string
	edges map[bool]int64 // weighted? -> |E|
	err   error
}

func ingestBenchFiles(b *testing.B) (string, map[bool]int64) {
	b.Helper()
	ingestBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ingest-bench")
		if err != nil {
			ingestBenchOnce.err = err
			return
		}
		ingestBenchOnce.dir = dir
		ingestBenchOnce.edges = map[bool]int64{}
		for _, weighted := range []bool{false, true} {
			g, err := datagen.Generate(datagen.Config{
				Persons: 30000, Seed: 17, Name: "ingest-bench", Weighted: weighted,
			})
			if err != nil {
				ingestBenchOnce.err = err
				return
			}
			if err := g.SaveFiles(filepath.Join(dir, prefixFor(weighted))); err != nil {
				ingestBenchOnce.err = err
				return
			}
			ingestBenchOnce.edges[weighted] = g.NumEdges()
		}
	})
	if ingestBenchOnce.err != nil {
		b.Fatal(ingestBenchOnce.err)
	}
	return ingestBenchOnce.dir, ingestBenchOnce.edges
}

func prefixFor(weighted bool) string {
	if weighted {
		return "weighted"
	}
	return "unweighted"
}

// ingestWorkerCounts is the workers axis of the ingest benches: the
// sequential path and, on multi-core machines, the full fan-out.
func ingestWorkerCounts() []int {
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	return counts
}

func BenchmarkLoadEdgeList(b *testing.B) {
	dir, edges := ingestBenchFiles(b)
	for _, weighted := range []bool{false, true} {
		for _, workers := range ingestWorkerCounts() {
			name := fmt.Sprintf("%s/workers=%d", prefixFor(weighted), workers)
			b.Run(name, func(b *testing.B) {
				prefix := filepath.Join(dir, prefixFor(weighted))
				var g *graph.Graph
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					g, err = graph.LoadEdgeList(prefix+".e", prefix+".v", graph.LoadOptions{Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if g.NumEdges() != edges[weighted] {
					b.Fatalf("loaded %d edges, want %d", g.NumEdges(), edges[weighted])
				}
				b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
			})
		}
	}
}

func BenchmarkBuildCSR(b *testing.B) {
	// Arc arrays straight into CSR construction, isolating the builder
	// (histogram + scatter + sort/dedup) from file parsing.
	const n, m = 1 << 16, 1 << 20
	srcs := make([]graph.VertexID, m)
	dsts := make([]graph.VertexID, m)
	ws := make([]float64, m)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range srcs {
		s = s*6364136223846793005 + 1442695040888963407
		srcs[i] = graph.VertexID((s >> 33) % n)
		s = s*6364136223846793005 + 1442695040888963407
		dsts[i] = graph.VertexID((s >> 33) % n)
		ws[i] = float64(s%1024) / 64
	}
	for _, weighted := range []bool{false, true} {
		for _, workers := range ingestWorkerCounts() {
			name := fmt.Sprintf("%s/workers=%d", prefixFor(weighted), workers)
			b.Run(name, func(b *testing.B) {
				var w []float64
				if weighted {
					w = ws
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := graph.FromWeightedArcsWorkers("csr-bench", n, srcs, dsts, w, true, workers)
					if g.NumArcs() != m {
						b.Fatal("bad build")
					}
				}
				b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Marcs/s")
			})
		}
	}
}

// ---------------------------------------------------------------------
// Platform kernel parallelism: the worker-gated kernels at workers=1
// (the retained sequential paths) vs workers=4. The reference kernels
// change algorithm on the parallel path (direction-optimizing BFS,
// pull-based PR), so their speedup has an algorithmic component that
// shows even on one core; the engine benchmarks scale with real cores.

func kernelWorkerCounts() []int { return []int{1, 4} }

func BenchmarkKernelBFS(b *testing.B) {
	social := ldbcBenchGraph(b, false)
	// Fixed scale, like ldbcBenchGraph: the kernel benchmarks track
	// kernel performance across commits, so the input must not shrink
	// with the CI scale knobs (at tiny scales the spawn overhead of the
	// parallel path drowns the measurement in noise).
	rmat, err := graphalytics.GenerateRMAT(12, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"social", social}, {"rmat", rmat}} {
		for _, workers := range kernelWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				ctx := context.Background()
				var out algo.BFSOutput
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					out, err = algo.RunBFSOpt(ctx, tc.g, 0, workers)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				traversed := algo.BFSTraversedEdges(tc.g, out)
				b.ReportMetric(float64(traversed)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
			})
		}
	}
}

func BenchmarkKernelPageRank(b *testing.B) {
	g := ldbcBenchGraph(b, false)
	params := algo.Params{}.WithDefaults(g.NumVertices())
	for _, workers := range kernelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ranks, err := algo.RunPageRankOpt(ctx, g, params, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(ranks) != g.NumVertices() {
					b.Fatal("bad output")
				}
			}
			edgesPerOp := float64(g.NumArcs()) * float64(params.PRIterations)
			b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
		})
	}
}

// benchEngineKernel benchmarks one platform workload at a given worker
// count (ETL excluded).
func benchEngineKernel(b *testing.B, p platform.Platform, g *graph.Graph, kind algo.Kind) {
	b.Helper()
	loaded, err := p.LoadGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	defer loaded.Close()
	ctx := context.Background()
	params := algo.Params{Source: 0, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loaded.Run(ctx, kind, params); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumArcs())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Marcs/s")
}

func BenchmarkKernelPregelPR(b *testing.B) {
	g := ldbcBenchGraph(b, false)
	for _, workers := range kernelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchEngineKernel(b, pregel.New(pregel.Options{Workers: workers}), g, algo.PR)
		})
	}
}

func BenchmarkKernelDataflowPR(b *testing.B) {
	g := ldbcBenchGraph(b, false)
	for _, parts := range kernelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", parts), func(b *testing.B) {
			benchEngineKernel(b, dataflow.New(dataflow.Options{Parts: parts}), g, algo.PR)
		})
	}
}

func BenchmarkKernelMapReduceCONN(b *testing.B) {
	g := ldbcBenchGraph(b, false)
	for _, workers := range kernelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchEngineKernel(b, mapreduce.New(mapreduce.Options{Workers: workers, RoundOverhead: -1}), g, algo.CONN)
		})
	}
}

func BenchmarkSSSPHotLoop(b *testing.B) {
	for _, weighted := range []bool{false, true} {
		name := "unit-weights"
		if weighted {
			name = "seeded-weights"
		}
		b.Run(name, func(b *testing.B) {
			g := ldbcBenchGraph(b, weighted)
			b.ResetTimer()
			var traversed int64
			for i := 0; i < b.N; i++ {
				dist := algo.RunSSSP(g, 0)
				traversed = algo.SSSPTraversedEdges(g, dist)
			}
			b.ReportMetric(float64(traversed)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
		})
	}
}

// ---------------------------------------------------------------------
// Incremental campaign engine: fingerprinting and cache cost (PR 9).
// Fingerprinting must be cheap enough to be free next to any kernel;
// the hit/miss benchmarks bound the per-cell overhead a warm and a cold
// cache add to a campaign.

func BenchmarkStampFingerprint(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 2000, Seed: 1, Name: "stamp-bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cell", func(b *testing.B) {
		in := stamp.CellInputs{
			Graph:          stamp.Dataset("social", "persons=2000,seed=1"),
			Workload:       "bfs/policy=exact/validate=true",
			Params:         `{"Source":0,"Seed":9}`,
			Platform:       "pregel",
			PlatformConfig: "pregel/workers=4,mem=0,combiners=true,partitioner=hash",
			Binary:         "v1",
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = stamp.Cell(in)
		}
	})
	b.Run("graph-content", func(b *testing.B) {
		b.SetBytes(g.NumEdges() * 8)
		for i := 0; i < b.N; i++ {
			if _, err := stamp.OfGraph(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStampStore(b *testing.B) {
	type cell struct {
		Runtime time.Duration `json:"runtime"`
		Status  string        `json:"status"`
	}
	b.Run("hit", func(b *testing.B) {
		s, err := stamp.OpenStore(filepath.Join(b.TempDir(), "stamps.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		fp := stamp.Dataset("bench", "hit")
		if err := s.Put(fp, cell{Runtime: time.Second, Status: "success"}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var c cell
			if ok, err := s.Get(fp, &c); !ok || err != nil {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		s, err := stamp.OpenStore(filepath.Join(b.TempDir(), "stamps.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		fp := stamp.Dataset("bench", "miss")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var c cell
			if ok, _ := s.Get(fp, &c); ok {
				b.Fatal("phantom hit")
			}
		}
	})
}

func BenchmarkArtifactGraphCache(b *testing.B) {
	g, err := datagen.Generate(datagen.Config{Persons: 2000, Seed: 1, Name: "artifact-bench"})
	if err != nil {
		b.Fatal(err)
	}
	fp := stamp.Dataset("bench", "graph")
	b.Run("store", func(b *testing.B) {
		cache, err := artifact.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(g.NumEdges() * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cache.StoreGraph(fp, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, verify := range []bool{false, true} {
		name := "load"
		if verify {
			name = "load-verify"
		}
		b.Run(name, func(b *testing.B) {
			cache, err := artifact.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			cache.Verify = verify
			if err := cache.StoreGraph(fp, g); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(g.NumEdges() * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, hit, err := cache.LoadGraph(fp, 0); !hit || err != nil {
					b.Fatal(hit, err)
				}
			}
		})
	}
}
