package main

import "testing"

func TestPickDistribution(t *testing.T) {
	cases := []struct {
		name  string
		param float64
		want  string
	}{
		{"facebook", 0, "facebook"},
		{"facebook", 40, "facebook"},
		{"zeta", 0, "zeta"},
		{"zeta", 2.1, "zeta"},
		{"geometric", 0, "geometric"},
		{"geometric", 0.3, "geometric"},
	}
	for _, c := range cases {
		d, err := pickDistribution(c.name, c.param)
		if err != nil {
			t.Fatalf("pickDistribution(%s, %v): %v", c.name, c.param, err)
		}
		if d.Name() != c.want {
			t.Errorf("pickDistribution(%s) = %s", c.name, d.Name())
		}
		if d.Mean() <= 0 {
			t.Errorf("%s mean = %v", c.name, d.Mean())
		}
	}
	if _, err := pickDistribution("powerlaw", 0); err == nil {
		t.Error("unknown distribution should fail")
	}
	if _, err := pickDistribution("zeta", 0.5); err == nil {
		t.Error("invalid zeta exponent should fail")
	}
}

func TestDefaultParameters(t *testing.T) {
	// The Figure 1 defaults: zeta 1.7 and geometric 0.12.
	z, err := pickDistribution("zeta", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zeta(1.7) has a heavy tail: quantile at 0.999 far above the median.
	if q := z.Quantile(0.999); q < 10 {
		t.Errorf("zeta default tail too light: q999 = %d", q)
	}
	g, err := pickDistribution("geometric", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := g.Mean(); m < 8 || m > 9 {
		t.Errorf("geometric default mean = %v, want 1/0.12", m)
	}
}
