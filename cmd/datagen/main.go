// Command datagen generates synthetic social-network graphs with the
// Datagen reimplementation (§2.2): pluggable degree distributions,
// deterministic parallel generation, and the optional rewiring
// post-processor toward a target clustering coefficient and
// assortativity.
//
// Usage:
//
//	datagen -persons 100000 -dist zeta -param 1.7 -out /tmp/social
//	datagen -persons 50000 -dist geometric -param 0.12 -target-cc 0.3 -out sn
package main

import (
	"flag"
	"fmt"
	"os"

	"graphalytics/internal/gen/datagen"
	"graphalytics/internal/gen/dist"
	"graphalytics/internal/gen/rewire"
	"graphalytics/internal/graph/gmetrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		persons  = flag.Int("persons", 10000, "number of persons (vertices)")
		seed     = flag.Uint64("seed", 42, "generator seed")
		distName = flag.String("dist", "facebook", "degree distribution: facebook, zeta, geometric")
		param    = flag.Float64("param", 0, "distribution parameter (zeta s / geometric p / facebook mean)")
		out      = flag.String("out", "social", "output file prefix (<out>.v and <out>.e)")
		workers  = flag.Int("workers", 0, "generation workers (0 = all cores)")
		targetCC = flag.Float64("target-cc", -1, "rewire toward this average clustering coefficient (<0 = off)")
		assort   = flag.Float64("assort", 0, "rewire toward this assortativity (0 = unconstrained)")
		maxSwaps = flag.Int("max-swaps", 0, "rewiring swap budget (0 = default)")
		stats    = flag.Bool("stats", true, "print Table-1-style characteristics")
	)
	flag.Parse()

	dd, err := pickDistribution(*distName, *param)
	if err != nil {
		return err
	}
	g, err := datagen.Generate(datagen.Config{
		Persons: *persons,
		Seed:    *seed,
		Degrees: dd,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("generated %s\n", g)

	if *targetCC >= 0 || *assort != 0 {
		fmt.Printf("rewiring (target cc %.3f, assortativity %.3f)...\n", *targetCC, *assort)
		res, err := rewire.Rewire(g, rewire.Target{
			AvgCC:         *targetCC,
			Assortativity: *assort,
			MaxSwaps:      *maxSwaps,
			Seed:          *seed + 1,
		})
		if err != nil {
			return err
		}
		fmt.Printf("rewired: %d/%d swaps accepted, avg cc %.4f, assortativity %.4f, converged=%v\n",
			res.SwapsAccepted, res.SwapsAttempted, res.AvgCC, res.Assortativity, res.Converged)
		g = res.Graph
	}

	if *stats {
		c := gmetrics.Measure(g)
		fmt.Printf("characteristics: |V|=%d |E|=%d globalCC=%.4f avgCC=%.4f assortativity=%.4f\n",
			c.Vertices, c.Edges, c.GlobalCC, c.AvgCC, c.Assortativity)
	}
	if err := g.SaveFiles(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s.v and %s.e\n", *out, *out)
	return nil
}

func pickDistribution(name string, param float64) (dist.Distribution, error) {
	switch name {
	case "facebook":
		return dist.NewFacebook(param), nil
	case "zeta":
		if param == 0 {
			param = 1.7
		}
		return dist.NewZeta(param, 0)
	case "geometric":
		if param == 0 {
			param = 0.12
		}
		return dist.NewGeometric(param, 0)
	default:
		return nil, fmt.Errorf("unknown distribution %q", name)
	}
}
